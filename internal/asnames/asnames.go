// Package asnames implements the paper's §7 future-work direction:
// learning regexes that extract AS *names* from router hostnames
// (figure 1's telia.net and seabone.net conventions name the neighbor,
// not its number). The paper estimates at least 3x more suffixes embed
// AS names than AS numbers.
//
// The learner mirrors Hoiho's ASN pipeline — base regexes from
// punctuation structure, ATP = TP − (FP + FN) ranking, regex sets — with
// an alphabetic capture ([a-z]+) in place of (\d+). Training names come
// from the AS-to-organization database (the paper's harder goal of
// dictionary-free learning is noted in §7 as open; this implementation
// is the dictionary-assisted variant, with the dictionary supplied by
// training labels the same way ASNs are).
package asnames

import (
	"fmt"
	"sort"
	"strings"

	"hoiho/internal/hostname"
	"hoiho/internal/psl"
	"hoiho/internal/rex"
)

// Item is one training observation: a hostname and the short name of the
// AS operating the router (e.g. "telia", from AS2Org).
type Item struct {
	Hostname string
	Name     string
}

// prepped caches parsing work per item.
type prepped struct {
	Item
	name     hostname.Name
	apparent bool
}

// Set is the training data for one suffix.
type Set struct {
	Suffix string
	items  []prepped
}

// Congruent reports whether an extracted alphabetic token names the
// training AS: exact match, or a prefix/abbreviation of at least four
// characters (operators shorten names: "vodafone" -> "voda").
func Congruent(extracted, trainName string) bool {
	if extracted == "" || trainName == "" {
		return false
	}
	if extracted == trainName {
		return true
	}
	return len(extracted) >= 4 && strings.HasPrefix(trainName, extracted)
}

// hasApparentName reports whether the hostname contains an alphabetic
// run congruent with the training name.
func hasApparentName(p prepped) bool {
	for _, part := range p.name.Parts {
		for _, run := range alphaRuns(part.Text) {
			if Congruent(run, p.Name) {
				return true
			}
		}
	}
	return false
}

// alphaRuns returns the maximal alphabetic substrings of s.
func alphaRuns(s string) []string {
	var runs []string
	i := 0
	for i < len(s) {
		if !hostname.IsAlpha(s[i]) {
			i++
			continue
		}
		j := i
		for j < len(s) && hostname.IsAlpha(s[j]) {
			j++
		}
		runs = append(runs, s[i:j])
		i = j
	}
	return runs
}

// NewSet parses and indexes training items for one suffix.
func NewSet(suffix string, items []Item) (*Set, error) {
	if suffix == "" {
		return nil, fmt.Errorf("asnames: empty suffix")
	}
	s := &Set{Suffix: suffix}
	for _, it := range items {
		it.Name = strings.ToLower(strings.TrimSpace(it.Name))
		if it.Name == "" {
			continue
		}
		n, err := hostname.Parse(it.Hostname)
		if err != nil {
			continue
		}
		if _, ok := n.SuffixParts(suffix); !ok {
			continue
		}
		p := prepped{Item: it, name: n}
		p.apparent = hasApparentName(p)
		s.items = append(s.items, p)
	}
	return s, nil
}

// Len returns the number of usable training items.
func (s *Set) Len() int { return len(s.items) }

// Eval aggregates outcomes, as in Hoiho's ASN evaluation.
type Eval struct {
	TP, FP, FN int
	Matches    int
	UniqueTP   int
}

// ATP is TP − (FP + FN).
func (e Eval) ATP() int { return e.TP - (e.FP + e.FN) }

// PPV is TP/(TP+FP).
func (e Eval) PPV() float64 {
	if e.Matches == 0 {
		return 0
	}
	return float64(e.TP) / float64(e.Matches)
}

// Evaluate scores an ordered regex set; the first matching regex decides
// each hostname.
func (s *Set) Evaluate(regexes ...*rex.Regex) Eval {
	var e Eval
	unique := make(map[string]struct{})
	for i := range s.items {
		p := &s.items[i]
		matched := false
		for _, r := range regexes {
			ext, _, _, ok := r.Extract(p.name.Full)
			if !ok {
				continue
			}
			matched = true
			if Congruent(ext, p.Name) {
				e.TP++
				unique[ext] = struct{}{}
			} else {
				e.FP++
			}
			e.Matches++
			break
		}
		if !matched && p.apparent {
			e.FN++
		}
	}
	e.UniqueTP = len(unique)
	return e
}

// NC is a learned name-extracting convention.
type NC struct {
	Suffix  string
	Regexes []*rex.Regex
	Eval    Eval
	Good    bool // >= 3 unique congruent names with PPV >= 0.8
}

// Extract applies the NC to a hostname.
func (nc *NC) Extract(host string) (string, bool) {
	for _, r := range nc.Regexes {
		if name, _, _, ok := r.Extract(host); ok {
			return name, true
		}
	}
	return "", false
}

// Strings renders the NC's regexes.
func (nc *NC) Strings() []string {
	out := make([]string, len(nc.Regexes))
	for i, r := range nc.Regexes {
		out[i] = r.String()
	}
	return out
}

// Learn runs the pipeline: generate, rank by ATP, build a set greedily.
func (s *Set) Learn() *NC {
	pool := s.generate()
	if len(pool) == 0 {
		return nil
	}
	type scored struct {
		r *rex.Regex
		e Eval
	}
	cands := make([]scored, 0, len(pool))
	for _, r := range pool {
		if _, err := r.Compile(); err != nil {
			continue
		}
		cands = append(cands, scored{r, s.Evaluate(r)})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.e.ATP() != b.e.ATP() {
			return a.e.ATP() > b.e.ATP()
		}
		if a.e.TP != b.e.TP {
			return a.e.TP > b.e.TP
		}
		return a.r.String() < b.r.String()
	})
	if len(cands) == 0 {
		return nil
	}
	set := []*rex.Regex{cands[0].r}
	cur := cands[0].e
	for j := 1; j < len(cands) && len(set) < 4; j++ {
		trial := append(append([]*rex.Regex(nil), set...), cands[j].r)
		if ev := s.Evaluate(trial...); ev.ATP() > cur.ATP() {
			set, cur = trial, ev
		}
	}
	nc := &NC{Suffix: s.Suffix, Regexes: set, Eval: cur}
	nc.Good = cur.UniqueTP >= 3 && cur.PPV() >= 0.8
	return nc
}

// generate builds base regexes: for every congruent alphabetic run, the
// structural skeletons Hoiho uses for ASNs, with ([a-z]+) capturing the
// name.
func (s *Set) generate() []*rex.Regex {
	seen := make(map[string]*rex.Regex)
	count := 0
	for i := range s.items {
		p := &s.items[i]
		if !p.apparent || count >= 192 {
			continue
		}
		count++
		for _, r := range s.candidates(p) {
			if _, ok := seen[r.String()]; !ok {
				seen[r.String()] = r
			}
		}
	}
	out := make([]*rex.Regex, 0, len(seen))
	for _, r := range seen {
		out = append(out, r)
	}
	return out
}

func (s *Set) candidates(p *prepped) []*rex.Regex {
	sufParts, ok := p.name.SuffixParts(s.Suffix)
	if !ok {
		return nil
	}
	parts := p.name.Parts
	sufStart := len(parts) - sufParts
	if sufStart <= 0 {
		return nil
	}
	sufLit := string(parts[sufStart-1].Delim) + p.name.Full[parts[sufStart].Start:]
	var out []*rex.Regex
	for k := 0; k < sufStart; k++ {
		part := parts[k]
		for _, run := range alphaRuns(part.Text) {
			if !Congruent(run, p.Name) {
				continue
			}
			idx := strings.Index(part.Text, run)
			ctxPre, ctxPost := part.Text[:idx], part.Text[idx+len(run):]
			for _, leftKind := range []string{"full", "dotplus", "open"} {
				for _, rightKind := range []string{"full", "dotplus"} {
					if leftKind == "dotplus" && rightKind == "dotplus" {
						continue
					}
					if r := s.assemble(p, k, ctxPre, ctxPost, sufStart, sufLit, leftKind, rightKind); r != nil {
						out = append(out, r)
					}
				}
			}
		}
	}
	return out
}

func (s *Set) assemble(p *prepped, k int, ctxPre, ctxPost string, sufStart int, sufLit, leftKind, rightKind string) *rex.Regex {
	parts := p.name.Parts
	var toks []rex.Token
	leftOpen := false
	switch leftKind {
	case "full":
		for j := 0; j < k; j++ {
			toks = append(toks, component(parts, j), rex.Lit(string(parts[j].Delim)))
		}
	case "dotplus":
		if k == 0 {
			return nil
		}
		toks = append(toks, rex.DotPlus(), rex.Lit(string(parts[k-1].Delim)))
	case "open":
		if k == 0 {
			return nil
		}
		leftOpen = true
	}
	toks = append(toks, rex.Lit(ctxPre), rex.CaptureAlpha(), rex.Lit(ctxPost))
	switch rightKind {
	case "full":
		for j := k + 1; j < sufStart; j++ {
			toks = append(toks, rex.Lit(string(parts[j-1].Delim)), component(parts, j))
		}
	case "dotplus":
		if k+1 >= sufStart {
			return nil
		}
		toks = append(toks, rex.Lit(string(parts[k].Delim)), rex.DotPlus())
	}
	toks = append(toks, rex.Lit(sufLit))
	var (
		r   *rex.Regex
		err error
	)
	if leftOpen {
		r, err = rex.NewOpen(toks...)
	} else {
		r, err = rex.New(toks...)
	}
	if err != nil {
		return nil
	}
	return r
}

// component mirrors Hoiho's exclusion components for non-name parts.
func component(parts []hostname.Part, j int) rex.Token {
	if parts[j].Text == "" {
		return rex.Lit("")
	}
	var excl []byte
	if j > 0 && parts[j-1].Delim != 0 {
		excl = append(excl, parts[j-1].Delim)
	}
	if parts[j].Delim != 0 && (len(excl) == 0 || excl[0] != parts[j].Delim) {
		excl = append(excl, parts[j].Delim)
	}
	if len(excl) == 0 {
		excl = []byte{'.'}
	}
	return rex.Excl(string(excl))
}

// Learner runs the pipeline over many suffixes.
type Learner struct {
	// MinItems is the minimum usable items per suffix (default 4).
	MinItems int
}

// LearnAll groups items by registered domain and learns per suffix.
func (l *Learner) LearnAll(list *psl.List, items []Item) ([]*NC, error) {
	if list == nil {
		return nil, fmt.Errorf("asnames: nil public suffix list")
	}
	min := l.MinItems
	if min <= 0 {
		min = 4
	}
	groups := make(map[string][]Item)
	for _, it := range items {
		if reg, ok := list.RegisteredDomain(it.Hostname); ok {
			groups[reg] = append(groups[reg], it)
		}
	}
	suffixes := make([]string, 0, len(groups))
	for s := range groups {
		suffixes = append(suffixes, s)
	}
	sort.Strings(suffixes)
	var out []*NC
	for _, suf := range suffixes {
		set, err := NewSet(suf, groups[suf])
		if err != nil {
			return nil, err
		}
		if set.Len() < min {
			continue
		}
		if nc := set.Learn(); nc != nil {
			out = append(out, nc)
		}
	}
	return out, nil
}
