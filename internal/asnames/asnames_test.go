package asnames

import (
	"fmt"
	"testing"

	"hoiho/internal/psl"
)

// figure1Items mirrors the paper's figure 1: telia.net and seabone.net
// embed the neighbor's *name*.
func figure1Items() []Item {
	return []Item{
		{Hostname: "vodafone-ic-324966-prs-b1.c.telia.net", Name: "vodafone"},
		{Hostname: "bloomberg-ic-324982-ash-b1.c.telia.net", Name: "bloomberg"},
		{Hostname: "comcast-ic-324571-sjo-b21.c.telia.net", Name: "comcast"},
		{Hostname: "akamai-ic-301765-nyk-b4.c.telia.net", Name: "akamai"},
		{Hostname: "microsoft-ic-317600-ldn-b3.c.telia.net", Name: "microsoft"},
		{Hostname: "netflix-ic-315133-fra-b5.c.telia.net", Name: "netflix"},
	}
}

func TestCongruent(t *testing.T) {
	cases := []struct {
		ext, name string
		want      bool
	}{
		{"vodafone", "vodafone", true},
		{"voda", "vodafone", true},   // abbreviation (>= 4 chars)
		{"vod", "vodafone", false},   // too short
		{"telia", "vodafone", false}, // different
		{"", "vodafone", false},
		{"vodafone", "", false},
		{"vodafonex", "vodafone", false}, // extension, not prefix
	}
	for _, c := range cases {
		if got := Congruent(c.ext, c.name); got != c.want {
			t.Errorf("Congruent(%q,%q) = %v, want %v", c.ext, c.name, got, c.want)
		}
	}
}

func TestAlphaRuns(t *testing.T) {
	got := alphaRuns("vodafone-ic1b")
	// per part this is called on part text without punctuation; emulate
	want := []string{"vodafone", "ic", "b"}
	_ = want
	if len(got) != 3 || got[0] != "vodafone" || got[1] != "ic" || got[2] != "b" {
		t.Errorf("alphaRuns = %v", got)
	}
	if runs := alphaRuns("12345"); runs != nil {
		t.Errorf("digit-only runs = %v", runs)
	}
}

func TestLearnTeliaConvention(t *testing.T) {
	set, err := NewSet("telia.net", figure1Items())
	if err != nil {
		t.Fatal(err)
	}
	nc := set.Learn()
	if nc == nil {
		t.Fatal("no NC learned")
	}
	t.Logf("telia NC: %v (TP=%d FP=%d FN=%d)", nc.Strings(), nc.Eval.TP, nc.Eval.FP, nc.Eval.FN)
	if nc.Eval.TP != 6 || nc.Eval.FP != 0 || nc.Eval.FN != 0 {
		t.Errorf("TP/FP/FN = %d/%d/%d, want 6/0/0", nc.Eval.TP, nc.Eval.FP, nc.Eval.FN)
	}
	if !nc.Good {
		t.Error("six unique names at PPV 1.0 should be good")
	}
	// Applies to unseen hostnames.
	if name, ok := nc.Extract("google-ic-322001-sto-b2.c.telia.net"); !ok || name != "google" {
		t.Errorf("Extract = %q,%v", name, ok)
	}
}

func TestLearnSeaboneStyle(t *testing.T) {
	items := []Item{
		{Hostname: "vodafone.mil51.seabone.net", Name: "vodafone"},
		{Hostname: "orange.pal3.seabone.net", Name: "orange"},
		{Hostname: "telecomitalia.mia2.seabone.net", Name: "telecomitalia"},
		{Hostname: "claro.gru11.seabone.net", Name: "claro"},
		{Hostname: "fastweb.mil51.seabone.net", Name: "fastweb"},
	}
	set, err := NewSet("seabone.net", items)
	if err != nil {
		t.Fatal(err)
	}
	nc := set.Learn()
	if nc == nil {
		t.Fatal("no NC learned")
	}
	if nc.Eval.TP != 5 || !nc.Good {
		t.Errorf("NC = %v eval=%+v", nc.Strings(), nc.Eval)
	}
}

func TestNoApparentNames(t *testing.T) {
	items := []Item{
		{Hostname: "xe0-1.nyc.plain.net", Name: "vodafone"},
		{Hostname: "core1.lax.plain.net", Name: "orange"},
		{Hostname: "lo0.fra.plain.net", Name: "claro"},
		{Hostname: "ge2.lhr.plain.net", Name: "fastweb"},
	}
	set, err := NewSet("plain.net", items)
	if err != nil {
		t.Fatal(err)
	}
	if nc := set.Learn(); nc != nil {
		t.Errorf("learned from name-free hostnames: %v", nc.Strings())
	}
}

func TestEvaluateOutcomes(t *testing.T) {
	items := []Item{
		{Hostname: "vodafone-1.x.ex.net", Name: "vodafone"},
		{Hostname: "orange-2.y.ex.net", Name: "orange"},
		{Hostname: "wrongname-3.z.ex.net", Name: "claro"},        // FP when matched
		{Hostname: "claro.unmatched.zz.q.ex.net", Name: "claro"}, // FN shape
	}
	set, err := NewSet("ex.net", items)
	if err != nil {
		t.Fatal(err)
	}
	// A regex matching the first three shapes only.
	nc := set.Learn()
	if nc == nil {
		t.Fatal("no NC")
	}
	ev := set.Evaluate(nc.Regexes...)
	if ev.TP < 2 {
		t.Errorf("eval = %+v (%v)", ev, nc.Strings())
	}
	if ev.ATP() != ev.TP-ev.FP-ev.FN {
		t.Error("ATP arithmetic broken")
	}
}

func TestNewSetValidation(t *testing.T) {
	if _, err := NewSet("", nil); err == nil {
		t.Error("empty suffix should error")
	}
	set, err := NewSet("x.net", []Item{
		{Hostname: "bad host", Name: "a"},
		{Hostname: "ok.other.org", Name: "b"},
		{Hostname: "voda.x.net", Name: ""},
	})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 0 {
		t.Errorf("Len = %d, want 0", set.Len())
	}
}

func TestLearnAll(t *testing.T) {
	var items []Item
	items = append(items, figure1Items()...)
	for i := 0; i < 5; i++ {
		items = append(items, Item{
			Hostname: fmt.Sprintf("carrier%c.pop%d.otherix.de", 'a'+i, i),
			Name:     fmt.Sprintf("carrier%c", 'a'+i),
		})
	}
	l := &Learner{}
	ncs, err := l.LearnAll(psl.Default(), items)
	if err != nil {
		t.Fatal(err)
	}
	if len(ncs) != 2 {
		t.Fatalf("learned %d NCs, want 2", len(ncs))
	}
	if ncs[0].Suffix != "otherix.de" || ncs[1].Suffix != "telia.net" {
		t.Errorf("suffixes: %s, %s", ncs[0].Suffix, ncs[1].Suffix)
	}
	if _, err := l.LearnAll(nil, items); err == nil {
		t.Error("nil PSL should error")
	}
}

func TestMinItems(t *testing.T) {
	l := &Learner{MinItems: 10}
	ncs, err := l.LearnAll(psl.Default(), figure1Items())
	if err != nil {
		t.Fatal(err)
	}
	if len(ncs) != 0 {
		t.Errorf("MinItems not honored: %d NCs", len(ncs))
	}
}

func BenchmarkLearnTelia(b *testing.B) {
	items := figure1Items()
	for i := 0; i < b.N; i++ {
		set, err := NewSet("telia.net", items)
		if err != nil {
			b.Fatal(err)
		}
		if set.Learn() == nil {
			b.Fatal("no NC")
		}
	}
}
