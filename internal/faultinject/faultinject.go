// Package faultinject is the test-only chaos hook layer for hoiho's
// long-running pipelines. The learner and the extraction engine call
// Fire at named stages ("core.learn.suffix", "extract.stream.chunk",
// ...); in production no plan is active and Fire is a single atomic
// load. Chaos tests activate a Plan that deterministically injects
// panics, stalls, and transient errors at chosen stages, so the
// recovery paths — per-suffix quarantine, cancellation latency,
// checkpoint durability — are exercised under -race with reproducible
// schedules.
//
// Determinism: whether a rule fires for a (stage, key) pair is a pure
// function of the plan seed and the pair, via an FNV-1a hash — never of
// wall-clock time or a global RNG — so a failing chaos run replays
// exactly.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// Stage names instrumented by the pipelines. Keys are the per-firing
// discriminator: the suffix being learned, or the chunk sequence number.
const (
	// StageLearnSuffix fires once per suffix at the start of learning.
	StageLearnSuffix = "core.learn.suffix"
	// StageMatrixBatch fires once per match-matrix column batch.
	StageMatrixBatch = "core.matrix.batch"
	// StageBatchChunk fires once per ExtractBatch work chunk.
	StageBatchChunk = "extract.batch.chunk"
	// StageStreamChunk fires once per ExtractStream micro-batch.
	StageStreamChunk = "extract.stream.chunk"
	// StageServeRequest fires once per admitted daemon extraction
	// request, after admission and before the corpus is applied; the key
	// is the requested hostname. Stall rules here hold requests in
	// flight, which is how the serve chaos tests saturate the admission
	// queue and exercise drain.
	StageServeRequest = "serve.request"
	// StageServeReload fires once per corpus reload attempt, before the
	// candidate file is read; the key is the corpus path. Error rules
	// here model a reload that fails before validation.
	StageServeReload = "serve.reload"
	// StageClusterForward fires once per router forwarding attempt,
	// before the request leaves the router; the key is the target node
	// name. Error rules here model an unreachable or flapping node, which
	// is how the cluster chaos tests force per-request failover and
	// hedging without tearing down real listeners.
	StageClusterForward = "cluster.forward"
	// StageClusterRollout fires once per rollout phase step, before the
	// coordinator contacts a node; the key is "<phase>:<node>"
	// (e.g. "prepare:node2"). Error rules here model a coordinator-side
	// failure mid-rollout, which must abort the epoch and leave every
	// node on the prior generation.
	StageClusterRollout = "cluster.rollout"
	// StageCorpusbinDelta fires once per HBD delta application, after the
	// base fingerprint check and before the patched corpus is assembled;
	// the key is the target fingerprint in %016x form. Error rules here
	// model a delta that dies mid-apply, which must leave the caller's
	// base corpus untouched and serving.
	StageCorpusbinDelta = "corpusbin.delta"
	// StageClusterJournal fires once per rollout-journal write, before
	// the state file is persisted; the key is the phase about to be
	// recorded ("prepare", "validate", "commit", "committed", "aborted").
	// Panic rules here simulate a coordinator crash at an exact point in
	// the rollout state machine, which the journal-resume path must
	// recover from on restart.
	StageClusterJournal = "cluster.journal"
	// StageClusterAntiEntropy fires once per anti-entropy repair attempt,
	// before the coordinator contacts the divergent node; the key is the
	// node name. Error rules here model a repair that fails transiently,
	// which the next sweep must retry.
	StageClusterAntiEntropy = "cluster.antientropy"
)

// Kind is the failure mode a rule injects.
type Kind int

const (
	// KindError makes Fire return ErrInjected (a transient failure the
	// caller is expected to surface, e.g. as a quarantined suffix).
	KindError Kind = iota
	// KindPanic makes Fire panic with an InjectedPanic value.
	KindPanic
	// KindStall makes Fire sleep for the rule's Stall duration (or until
	// the context is cancelled, whichever comes first).
	KindStall
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindStall:
		return "stall"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrInjected is the transient error KindError rules surface.
var ErrInjected = errors.New("faultinject: injected transient error")

// InjectedPanic is the value KindPanic rules panic with.
type InjectedPanic struct {
	Stage string
	Key   string
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s[%s]", p.Stage, p.Key)
}

// Rule selects firings at one stage. The zero Prob never fires; Prob 1
// with an empty Key fires on every call at the stage.
type Rule struct {
	// Stage must equal the Fire call's stage exactly.
	Stage string
	// Key, when non-empty, must equal the Fire call's key exactly;
	// empty matches every key.
	Key string
	// Kind is the injected failure mode.
	Kind Kind
	// Prob in [0,1] is the chance a matching call fires, decided
	// deterministically from the plan seed and the (stage, key) pair.
	Prob float64
	// Stall is the sleep duration for KindStall rules.
	Stall time.Duration
	// Times, when positive, caps how often the rule fires; 0 is
	// unlimited.
	Times int
}

// Plan is one activated chaos schedule.
type Plan struct {
	Seed  int64
	Rules []Rule

	mu    sync.Mutex
	fired map[int]int // rule index -> firings so far
}

// Fired returns how many times rule i has fired.
func (p *Plan) Fired(i int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired[i]
}

// active is the process-wide plan; nil in production. Only tests call
// Activate, and the atomic pointer keeps Fire race-free under -race.
var active atomic.Pointer[Plan]

// Activate installs p as the process-wide plan and returns a restore
// function that removes it. Intended for tests only:
//
//	defer faultinject.Activate(&faultinject.Plan{...})()
func Activate(p *Plan) (restore func()) {
	if p != nil {
		p.mu.Lock()
		if p.fired == nil {
			p.fired = make(map[int]int)
		}
		p.mu.Unlock()
	}
	prev := active.Swap(p)
	return func() { active.Store(prev) }
}

// Active reports whether a plan is installed.
func Active() bool { return active.Load() != nil }

// Fire is the pipeline-side hook: a no-op (one atomic load) unless a
// plan is active. With a plan, the first matching rule that decides to
// fire injects its failure: KindError returns ErrInjected, KindPanic
// panics with an InjectedPanic, KindStall sleeps (bounded by ctx).
func Fire(ctx context.Context, stage, key string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.fire(ctx, stage, key)
}

//hoiho:hotalloc budgeted cold region: fire only runs with a chaos plan installed; the production path exits Fire on one atomic load
func (p *Plan) fire(ctx context.Context, stage, key string) error {
	for i, r := range p.Rules {
		if r.Stage != stage || (r.Key != "" && r.Key != key) {
			continue
		}
		if !decide(p.Seed, stage, key, r.Prob) {
			continue
		}
		p.mu.Lock()
		if r.Times > 0 && p.fired[i] >= r.Times {
			p.mu.Unlock()
			continue
		}
		p.fired[i]++
		p.mu.Unlock()
		switch r.Kind {
		case KindPanic:
			panic(InjectedPanic{Stage: stage, Key: key})
		case KindStall:
			t := time.NewTimer(r.Stall)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
			}
			return nil
		default:
			return fmt.Errorf("%w at %s[%s]", ErrInjected, stage, key)
		}
	}
	return nil
}

// decide hashes (seed, stage, key) into [0,1) and compares against prob.
// Prob >= 1 always fires and 0 never does, independent of the hash.
func decide(seed int64, stage, key string, prob float64) bool {
	if prob >= 1 {
		return true
	}
	if prob <= 0 {
		return false
	}
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(stage))
	h.Write([]byte{0})
	h.Write([]byte(key))
	// 53 bits of the hash give an exact float64 in [0,1).
	u := h.Sum64() >> 11
	return float64(u)/float64(1<<53) < prob
}
