package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFireNoPlanIsNoop(t *testing.T) {
	if Active() {
		t.Fatal("plan active at test start")
	}
	if err := Fire(context.Background(), StageLearnSuffix, "example.com"); err != nil {
		t.Fatalf("Fire without plan = %v", err)
	}
}

func TestErrorInjectionTargetsKey(t *testing.T) {
	restore := Activate(&Plan{Rules: []Rule{
		{Stage: StageLearnSuffix, Key: "bad.net", Kind: KindError, Prob: 1},
	}})
	defer restore()
	ctx := context.Background()
	if err := Fire(ctx, StageLearnSuffix, "good.net"); err != nil {
		t.Fatalf("non-matching key fired: %v", err)
	}
	if err := Fire(ctx, StageMatrixBatch, "bad.net"); err != nil {
		t.Fatalf("non-matching stage fired: %v", err)
	}
	err := Fire(ctx, StageLearnSuffix, "bad.net")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestPanicInjection(t *testing.T) {
	restore := Activate(&Plan{Rules: []Rule{
		{Stage: StageLearnSuffix, Key: "boom.org", Kind: KindPanic, Prob: 1},
	}})
	defer restore()
	defer func() {
		r := recover()
		ip, ok := r.(InjectedPanic)
		if !ok {
			t.Fatalf("recovered %v (%T), want InjectedPanic", r, r)
		}
		if ip.Stage != StageLearnSuffix || ip.Key != "boom.org" {
			t.Fatalf("panic payload = %+v", ip)
		}
	}()
	Fire(context.Background(), StageLearnSuffix, "boom.org")
	t.Fatal("Fire did not panic")
}

func TestStallHonorsContext(t *testing.T) {
	restore := Activate(&Plan{Rules: []Rule{
		{Stage: StageStreamChunk, Kind: KindStall, Prob: 1, Stall: time.Minute},
	}})
	defer restore()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := Fire(ctx, StageStreamChunk, "0"); err != nil {
		t.Fatalf("stall returned error: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("stall ignored cancelled context (took %v)", d)
	}
}

func TestTimesCapsFirings(t *testing.T) {
	p := &Plan{Rules: []Rule{
		{Stage: StageLearnSuffix, Kind: KindError, Prob: 1, Times: 2},
	}}
	defer Activate(p)()
	ctx := context.Background()
	errs := 0
	for i := 0; i < 5; i++ {
		if Fire(ctx, StageLearnSuffix, "x.com") != nil {
			errs++
		}
	}
	if errs != 2 || p.Fired(0) != 2 {
		t.Fatalf("fired %d times (counter %d), want 2", errs, p.Fired(0))
	}
}

// TestDecideDeterministic: the same (seed, stage, key) always decides
// the same way, and the firing rate tracks Prob.
func TestDecideDeterministic(t *testing.T) {
	keys := []string{"a.com", "b.net", "c.org", "d.io", "e.de", "f.fr", "g.jp", "h.uk"}
	for _, k := range keys {
		first := decide(42, StageLearnSuffix, k, 0.5)
		for i := 0; i < 10; i++ {
			if decide(42, StageLearnSuffix, k, 0.5) != first {
				t.Fatalf("decide flapped for key %s", k)
			}
		}
	}
	hits := 0
	n := 10000
	for i := 0; i < n; i++ {
		if decide(7, StageLearnSuffix, string(rune('a'+i%26))+string(rune('0'+i/26%10))+string(rune('0'+i/260)), 0.3) {
			hits++
		}
	}
	if rate := float64(hits) / float64(n); rate < 0.25 || rate > 0.35 {
		t.Fatalf("firing rate %.3f, want ~0.3", rate)
	}
	if decide(1, "s", "k", 0) {
		t.Fatal("Prob 0 fired")
	}
	if !decide(1, "s", "k", 1) {
		t.Fatal("Prob 1 did not fire")
	}
}
