// Package hostname parses router interface hostnames (DNS PTR records)
// into the punctuation-delimited structure that Hoiho's regex learner
// reasons about (paper §3.2), and detects numeric strings that are really
// fragments of an embedded IP address rather than ASNs (paper §3.1,
// figure 3b).
//
// A hostname such as "te0-0-24.01.p.bre.ch.as15576.nts.ch" is viewed as a
// sequence of parts ("te0", "0", "24", "01", ...) separated by
// punctuation ('.', '-', '_'). Operators place ASN annotations inside a
// single part, optionally surrounded by alphabetic context ("as15576"),
// which is why Hoiho builds candidate regexes part by part.
package hostname

import (
	"fmt"
	"net/netip"
	"strings"
)

// Punctuation characters that delimit hostname parts. DNS labels only
// permit '-' internally and '.' between labels, but PTR records in the
// wild also contain '_', so it is treated as punctuation too.
const Punctuation = ".-_"

// IsPunct reports whether c is a hostname part delimiter.
func IsPunct(c byte) bool { return c == '.' || c == '-' || c == '_' }

// IsDigit reports whether c is an ASCII decimal digit.
func IsDigit(c byte) bool { return '0' <= c && c <= '9' }

// IsAlpha reports whether c is an ASCII lowercase letter. Hostnames are
// normalized to lowercase before parsing.
func IsAlpha(c byte) bool { return 'a' <= c && c <= 'z' }

// Part is one punctuation-delimited component of a hostname.
type Part struct {
	Text  string // the part's characters (no punctuation)
	Start int    // byte offset of the part in the normalized hostname
	Delim byte   // punctuation character after the part; 0 for the last part
}

// End returns the byte offset just past the part.
func (p Part) End() int { return p.Start + len(p.Text) }

// Name is a parsed hostname.
type Name struct {
	Full  string // normalized (lowercased, trailing dot removed) hostname
	Parts []Part
}

// Parse normalizes and splits a hostname. It lowercases the input,
// removes one trailing dot, and rejects hostnames containing characters
// outside [a-z0-9._-] or that are empty after normalization.
func Parse(s string) (Name, error) {
	full, parts, err := AppendParse(nil, s)
	if err != nil {
		return Name{}, err
	}
	return Name{Full: full, Parts: parts}, nil
}

// AppendParse is Parse with caller-provided Parts storage: the parsed
// parts are appended to dst and the extended slice is returned alongside
// the normalized hostname. Bulk callers (the learner's item arena) parse
// thousands of names into one backing slice instead of one heap slice
// per name; the caller slices the tail back out by offset.
func AppendParse(dst []Part, s string) (string, []Part, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	s = strings.TrimSuffix(s, ".")
	if s == "" {
		return "", dst, fmt.Errorf("hostname: empty name")
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !IsAlpha(c) && !IsDigit(c) && !IsPunct(c) {
			return "", dst, fmt.Errorf("hostname: %q: invalid character %q at %d", s, c, i)
		}
	}
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || IsPunct(s[i]) {
			var delim byte
			if i < len(s) {
				delim = s[i]
			}
			dst = append(dst, Part{Text: s[start:i], Start: start, Delim: delim})
			start = i + 1
		}
	}
	return s, dst, nil
}

// String returns the normalized hostname.
func (n Name) String() string { return n.Full }

// Run is a maximal run of decimal digits within a hostname.
type Run struct {
	Text  string // the digits
	Start int    // byte offset in the normalized hostname
	Part  int    // index into Name.Parts of the containing part
}

// End returns the byte offset just past the run.
func (r Run) End() int { return r.Start + len(r.Text) }

// DigitRuns returns every maximal digit run in the hostname, in order of
// appearance. Runs never span punctuation.
func (n Name) DigitRuns() []Run {
	return n.AppendDigitRuns(nil)
}

// AppendDigitRuns appends every maximal digit run to dst (see DigitRuns)
// and returns the extended slice, so bulk callers can pool the run
// storage for many names in one backing slice.
func (n Name) AppendDigitRuns(dst []Run) []Run {
	runs := dst
	for pi, p := range n.Parts {
		i := 0
		for i < len(p.Text) {
			if !IsDigit(p.Text[i]) {
				i++
				continue
			}
			j := i
			for j < len(p.Text) && IsDigit(p.Text[j]) {
				j++
			}
			runs = append(runs, Run{Text: p.Text[i:j], Start: p.Start + i, Part: pi})
			i = j
		}
	}
	return runs
}

// Span is a half-open byte range [Start, End) in a normalized hostname.
type Span struct{ Start, End int }

// Contains reports whether the span fully contains [start, end).
func (s Span) Contains(start, end int) bool { return start >= s.Start && end <= s.End }

// Overlaps reports whether the span intersects [start, end).
func (s Span) Overlaps(start, end int) bool { return start < s.End && end > s.Start }

// EmbeddedIPSpans returns spans of the hostname that encode the interface
// address addr, so that digit runs inside them can be disqualified as ASN
// candidates (figure 3b of the paper: "hostnames can embed an IP address,
// with portions the same as the training ASN, by coincidence").
//
// Recognized encodings, for IPv4 address a.b.c.d:
//
//   - four consecutive parts equal to the octets, in order (a-b-c-d,
//     a.b.c.d) or reversed (d.c.b.a, common in generated PTR names),
//     with or without zero padding ("050");
//   - the 32-bit address written as a single decimal or zero-padded
//     ("0x%08x"-style) hex part.
//
// If addr is the zero Addr, or not IPv4, no spans are returned.
func (n Name) EmbeddedIPSpans(addr netip.Addr) []Span {
	return n.AppendEmbeddedIPSpans(nil, addr)
}

// AppendEmbeddedIPSpans appends the embedded-IP spans to dst (see
// EmbeddedIPSpans) and returns the extended slice; the appended tail is
// sorted and coalesced in place, so dst's existing contents are
// untouched.
func (n Name) AppendEmbeddedIPSpans(dst []Span, addr netip.Addr) []Span {
	if !addr.Is4() {
		return dst
	}
	oct := addr.As4()
	off := len(dst)
	spans := dst
	// Forward and reversed octet sequences over consecutive parts.
	for _, order := range [][4]byte{
		{oct[0], oct[1], oct[2], oct[3]},
		{oct[3], oct[2], oct[1], oct[0]},
	} {
		for i := 0; i+4 <= len(n.Parts); i++ {
			if partsMatchOctets(n.Parts[i:i+4], order) {
				spans = append(spans, Span{n.Parts[i].Start, n.Parts[i+3].End()})
			}
		}
	}
	// Whole-address decimal in one part.
	dec := fmt.Sprintf("%d", uint32(oct[0])<<24|uint32(oct[1])<<16|uint32(oct[2])<<8|uint32(oct[3]))
	hex := fmt.Sprintf("%02x%02x%02x%02x", oct[0], oct[1], oct[2], oct[3])
	for _, p := range n.Parts {
		if p.Text == dec || p.Text == hex {
			spans = append(spans, Span{p.Start, p.End()})
		}
	}
	merged := mergeSpans(spans[off:])
	return spans[:off+len(merged)]
}

// partsMatchOctets reports whether the four parts are exactly the decimal
// octets (allowing leading-zero padding to width 3).
func partsMatchOctets(parts []Part, oct [4]byte) bool {
	for i, p := range parts {
		if !octetMatch(p.Text, oct[i]) {
			return false
		}
	}
	return true
}

func octetMatch(text string, octet byte) bool {
	if text == "" || len(text) > 3 {
		return false
	}
	v := 0
	for i := 0; i < len(text); i++ {
		if !IsDigit(text[i]) {
			return false
		}
		v = v*10 + int(text[i]-'0')
	}
	return v == int(octet)
}

// mergeSpans sorts and coalesces overlapping spans.
func mergeSpans(spans []Span) []Span {
	if len(spans) <= 1 {
		return spans
	}
	// insertion sort: span lists are tiny
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j].Start < spans[j-1].Start; j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
	out := spans[:1]
	for _, s := range spans[1:] {
		last := &out[len(out)-1]
		if s.Start <= last.End {
			if s.End > last.End {
				last.End = s.End
			}
		} else {
			out = append(out, s)
		}
	}
	return out
}

// SuffixParts returns how many trailing parts of the hostname make up the
// registered domain suffix (e.g. 2 for "equinix.com", 3 for
// "antel.net.uy"), and whether the hostname actually ends with that
// suffix as whole parts. A hostname equal to its suffix yields
// len(n.Parts), true.
func (n Name) SuffixParts(suffix string) (int, bool) {
	if suffix == "" {
		return 0, false
	}
	if n.Full == suffix {
		return len(n.Parts), true
	}
	if !strings.HasSuffix(n.Full, "."+suffix) {
		return 0, false
	}
	cut := len(n.Full) - len(suffix)
	// cut must land exactly at the start of a part.
	count := 0
	for i := len(n.Parts) - 1; i >= 0; i-- {
		count++
		if n.Parts[i].Start == cut {
			return count, true
		}
		if n.Parts[i].Start < cut {
			return 0, false
		}
	}
	return 0, false
}
