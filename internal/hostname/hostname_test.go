package hostname

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

// MustParse is Parse for known-good literal inputs; it panics on error.
// It lives in the test files so the library itself stays panic-free.
func MustParse(s string) Name {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

func TestParseParts(t *testing.T) {
	n := MustParse("te0-0-24.01.p.bre.ch.as15576.nts.ch")
	want := []string{"te0", "0", "24", "01", "p", "bre", "ch", "as15576", "nts", "ch"}
	if len(n.Parts) != len(want) {
		t.Fatalf("parts = %d, want %d: %+v", len(n.Parts), len(want), n.Parts)
	}
	for i, w := range want {
		if n.Parts[i].Text != w {
			t.Errorf("part %d = %q, want %q", i, n.Parts[i].Text, w)
		}
	}
	// Offsets reconstruct the original string.
	for _, p := range n.Parts {
		if n.Full[p.Start:p.End()] != p.Text {
			t.Errorf("offset mismatch for %q", p.Text)
		}
	}
	// Delimiters: last part has none.
	if n.Parts[len(n.Parts)-1].Delim != 0 {
		t.Error("last part should have no delimiter")
	}
	if n.Parts[0].Delim != '-' {
		t.Errorf("first delim = %q, want '-'", n.Parts[0].Delim)
	}
}

func TestParseNormalization(t *testing.T) {
	n, err := Parse("  P714.SGW.Equinix.COM.  ")
	if err != nil {
		t.Fatal(err)
	}
	if n.Full != "p714.sgw.equinix.com" {
		t.Errorf("Full = %q", n.Full)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", ".", "host name", "a/b.com", "ab\x00.com", "日本.com"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseEmptyParts(t *testing.T) {
	// Consecutive punctuation yields empty parts; the parser keeps them so
	// offsets stay faithful to the raw string.
	n := MustParse("a--b.com")
	want := []string{"a", "", "b", "com"}
	if len(n.Parts) != len(want) {
		t.Fatalf("parts = %+v", n.Parts)
	}
	for i, w := range want {
		if n.Parts[i].Text != w {
			t.Errorf("part %d = %q, want %q", i, n.Parts[i].Text, w)
		}
	}
}

func TestDigitRuns(t *testing.T) {
	n := MustParse("mlg4bras1-be127-605.antel.net.uy")
	runs := n.DigitRuns()
	want := []string{"4", "1", "127", "605"}
	if len(runs) != len(want) {
		t.Fatalf("runs = %+v", runs)
	}
	for i, w := range want {
		if runs[i].Text != w {
			t.Errorf("run %d = %q, want %q", i, runs[i].Text, w)
		}
		r := runs[i]
		if n.Full[r.Start:r.End()] != r.Text {
			t.Errorf("run %d offsets wrong", i)
		}
		if !strings.Contains(n.Parts[r.Part].Text, r.Text) {
			t.Errorf("run %d part index wrong", i)
		}
	}
}

func TestDigitRunsNoneAndAll(t *testing.T) {
	if runs := MustParse("alpha.beta.net").DigitRuns(); len(runs) != 0 {
		t.Errorf("expected no runs, got %+v", runs)
	}
	runs := MustParse("123.net").DigitRuns()
	if len(runs) != 1 || runs[0].Text != "123" || runs[0].Start != 0 {
		t.Errorf("runs = %+v", runs)
	}
}

func TestEmbeddedIPSpansDashed(t *testing.T) {
	n := MustParse("50-236-216-122-static.hfc.comcastbusiness.net")
	addr := netip.MustParseAddr("50.236.216.122")
	spans := n.EmbeddedIPSpans(addr)
	if len(spans) != 1 {
		t.Fatalf("spans = %+v", spans)
	}
	if n.Full[spans[0].Start:spans[0].End] != "50-236-216-122" {
		t.Errorf("span covers %q", n.Full[spans[0].Start:spans[0].End])
	}
	// The digit run "122" must fall inside the span.
	for _, r := range n.DigitRuns() {
		if r.Text == "122" && r.Part == 3 {
			if !spans[0].Contains(r.Start, r.End()) {
				t.Error("octet 122 not inside IP span")
			}
		}
	}
}

func TestEmbeddedIPSpansMixedDelims(t *testing.T) {
	n := MustParse("209-201-58-109.dia.stat.centurylink.net")
	spans := n.EmbeddedIPSpans(netip.MustParseAddr("209.201.58.109"))
	if len(spans) != 1 || n.Full[spans[0].Start:spans[0].End] != "209-201-58-109" {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestEmbeddedIPSpansReversed(t *testing.T) {
	// Reverse-octet PTR style.
	n := MustParse("109.58.201.209.rev.example.net")
	spans := n.EmbeddedIPSpans(netip.MustParseAddr("209.201.58.109"))
	if len(spans) != 1 || n.Full[spans[0].Start:spans[0].End] != "109.58.201.209" {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestEmbeddedIPSpansZeroPadded(t *testing.T) {
	n := MustParse("050-004-216-122.example.net")
	spans := n.EmbeddedIPSpans(netip.MustParseAddr("50.4.216.122"))
	if len(spans) != 1 {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestEmbeddedIPSpansDecimalAndHex(t *testing.T) {
	addr := netip.MustParseAddr("10.0.0.1")
	// 10.0.0.1 = 167772161 = 0x0a000001
	n := MustParse("h167772161.example.net")
	// decimal must be the entire part to match
	if spans := n.EmbeddedIPSpans(addr); len(spans) != 0 {
		t.Fatalf("partial part should not match: %+v", spans)
	}
	n = MustParse("167772161.example.net")
	if spans := n.EmbeddedIPSpans(addr); len(spans) != 1 {
		t.Fatalf("decimal spans = %+v", spans)
	}
	n = MustParse("0a000001.example.net")
	if spans := n.EmbeddedIPSpans(addr); len(spans) != 1 {
		t.Fatalf("hex spans = %+v", spans)
	}
}

func TestEmbeddedIPSpansNoFalsePositive(t *testing.T) {
	n := MustParse("gw-as20732.init7.net")
	if spans := n.EmbeddedIPSpans(netip.MustParseAddr("192.0.2.1")); len(spans) != 0 {
		t.Errorf("spans = %+v", spans)
	}
	if spans := n.EmbeddedIPSpans(netip.Addr{}); spans != nil {
		t.Errorf("zero addr should yield nil, got %+v", spans)
	}
	if spans := n.EmbeddedIPSpans(netip.MustParseAddr("2001:db8::1")); spans != nil {
		t.Errorf("v6 addr should yield nil, got %+v", spans)
	}
}

func TestSpanOps(t *testing.T) {
	s := Span{5, 10}
	if !s.Contains(5, 10) || !s.Contains(6, 9) || s.Contains(4, 6) || s.Contains(9, 11) {
		t.Error("Contains wrong")
	}
	if !s.Overlaps(9, 11) || !s.Overlaps(0, 6) || s.Overlaps(0, 5) || s.Overlaps(10, 12) {
		t.Error("Overlaps wrong")
	}
}

func TestSuffixParts(t *testing.T) {
	n := MustParse("p714.sgw.equinix.com")
	if c, ok := n.SuffixParts("equinix.com"); !ok || c != 2 {
		t.Errorf("got %d,%v", c, ok)
	}
	n = MustParse("mlg4bras1-be127-605.antel.net.uy")
	if c, ok := n.SuffixParts("antel.net.uy"); !ok || c != 3 {
		t.Errorf("got %d,%v", c, ok)
	}
	// suffix boundary must fall on a part boundary: "x.com" inside "equinix.com" does not count
	n = MustParse("p714.sgw.equinix.com")
	if _, ok := n.SuffixParts("x.com"); ok {
		t.Error("non-part-aligned suffix should not match")
	}
	if _, ok := n.SuffixParts("other.com"); ok {
		t.Error("wrong suffix should not match")
	}
	if c, ok := MustParse("equinix.com").SuffixParts("equinix.com"); !ok || c != 2 {
		t.Errorf("self suffix: got %d,%v", c, ok)
	}
	if _, ok := n.SuffixParts(""); ok {
		t.Error("empty suffix should not match")
	}
}

// Property: parsing then rejoining parts with their delimiters
// reconstructs the normalized hostname, and every digit run lies within
// its claimed part.
func TestParseRoundTripQuick(t *testing.T) {
	f := func(raw []byte) bool {
		// Map arbitrary bytes into the hostname alphabet.
		const alphabet = "abc019.-_"
		if len(raw) == 0 || len(raw) > 40 {
			return true
		}
		b := make([]byte, len(raw))
		for i, c := range raw {
			b[i] = alphabet[int(c)%len(alphabet)]
		}
		s := strings.TrimSuffix(string(b), ".")
		if s == "" {
			return true
		}
		n, err := Parse(s)
		if err != nil {
			return true
		}
		var sb strings.Builder
		for _, p := range n.Parts {
			sb.WriteString(p.Text)
			if p.Delim != 0 {
				sb.WriteByte(p.Delim)
			}
		}
		if sb.String() != n.Full {
			return false
		}
		for _, r := range n.DigitRuns() {
			p := n.Parts[r.Part]
			if r.Start < p.Start || r.End() > p.End() {
				return false
			}
			for i := r.Start; i < r.End(); i++ {
				if !IsDigit(n.Full[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse("te0-0-24.01.p.bre.ch.as15576.nts.ch"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmbeddedIPSpans(b *testing.B) {
	n := MustParse("50-236-216-122-static.hfc.comcastbusiness.net")
	addr := netip.MustParseAddr("50.236.216.122")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.EmbeddedIPSpans(addr)
	}
}
