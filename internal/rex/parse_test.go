package rex

import (
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		`^(\d+)\.[^\.]+\.equinix\.com$`,
		`^p(\d+)\.[^\.]+\.equinix\.com$`,
		`^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$`,
		`^(\d+)-.+\.equinix\.com$`,
		`as(\d+)\.nts\.ch$`,
		`^.+\.as(\d+)\.nts\.ch$`,
		`^as(\d+)-[^-]+-[^\.-]+\.example\.com$`,
		`^[a-z]+(\d+)\d+\.y\.net$`,
		`^(?:p|s)(\d+)\.x\.com$`,
		`^as(\d+)_[a-z]+\.x\.com$`,
	}
	for _, src := range srcs {
		r, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if got := r.String(); got != src {
			t.Errorf("Parse(%q).String() = %q", src, got)
		}
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"",
		"^as(\\d+)\\.x\\.com", // no $
		`^(\d+)(\d+)$`,        // two captures would fail build
		`^[^\.]+$`,            // no capture
		`^(\d+)[a-$`,          // unterminated class
		`^(?:p|s(\d+)$`,       // unterminated group
		`^(\d+)*$`,            // stray metachar
		`^(\d+)\$`,            // trailing backslash before $ consumed
		`^a|b(\d+)$`,          // top-level alternation unsupported
	}
	for _, src := range bad {
		if r, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) = %q, want error", src, r)
		}
	}
}

// mustParse parses src, failing the test on error (the error-propagating
// replacement for the removed package-level MustParse panic helper).
func mustParse(t *testing.T, src string) *Regex {
	t.Helper()
	r, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return r
}

func TestParseSemantics(t *testing.T) {
	r := mustParse(t, `^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$`)
	if asn, _, _, ok := r.Extract("s24115.tyo.equinix.com"); !ok || asn != "24115" {
		t.Errorf("Extract = %q,%v", asn, ok)
	}
	open := mustParse(t, `as(\d+)\.nts\.ch$`)
	if !open.LeftOpen() {
		t.Error("should be left-open")
	}
	if asn, _, _, ok := open.Extract("01.r.cba.ch.bl.cust.as15576.nts.ch"); !ok || asn != "15576" {
		t.Errorf("open Extract = %q,%v", asn, ok)
	}
}

// Property: rendering then parsing reproduces an equal regex for randomly
// assembled token sequences.
func TestParseRenderQuick(t *testing.T) {
	f := func(a, b, c uint8, opt, open bool) bool {
		toks := []Token{}
		switch a % 4 {
		case 0:
			toks = append(toks, Lit("as"))
		case 1:
			toks = append(toks, Alt(opt, "p", "s"))
		case 2:
			toks = append(toks, Excl(".-"))
		case 3:
			toks = append(toks, ClassTok(Class(b%3)))
		}
		toks = append(toks, Capture())
		switch c % 3 {
		case 0:
			toks = append(toks, Lit("."), DotPlus())
		case 1:
			toks = append(toks, Lit("-"), Excl("-"))
		case 2:
			toks = append(toks, ClassTok(Class(c%3)))
		}
		toks = append(toks, Lit(".example.com"))
		var (
			r   *Regex
			err error
		)
		if open {
			r, err = NewOpen(toks...)
		} else {
			r, err = New(toks...)
		}
		if err != nil {
			return false
		}
		p, err := Parse(r.String())
		if err != nil {
			return false
		}
		return p.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeableAltsGuards(t *testing.T) {
	a := MustNew(Capture(), Lit("-"), DotPlus(), Lit(".equinix.com"))
	b := MustNew(Capture(), Lit("."), DotPlus(), Lit(".equinix.com"))
	if m, ok := Merge(a, b); ok {
		t.Errorf("punctuation alternation should not merge: %v", m)
	}
	// Alphanumeric differences still merge.
	c := MustNew(Lit("p"), Capture(), Lit(".x.com"))
	d := MustNew(Lit("s"), Capture(), Lit(".x.com"))
	if _, ok := Merge(c, d); !ok {
		t.Error("p/s should merge")
	}
	// Shared punctuation prefix with alnum difference merges.
	e := MustNew(Excl("."), Lit("-as"), Capture(), Lit(".x.com"))
	f := MustNew(Excl("."), Lit("-"), Capture(), Lit(".x.com"))
	m, ok := Merge(e, f)
	if !ok {
		t.Fatal("-as/- should merge")
	}
	if m.String() != `^[^\.]+(?:-|-as)(\d+)\.x\.com$` {
		t.Errorf("merged = %q", m.String())
	}
	// Left-open and anchored regexes never merge.
	g := MustNew(Lit("as"), Capture(), Lit(".x.com"))
	h, err := NewOpen(Lit("as"), Capture(), Lit(".x.com"))
	if err != nil {
		t.Fatal(err)
	}
	hp := h
	if _, ok := Merge(g, hp); ok {
		t.Error("anchoring mismatch should not merge")
	}
}
