// Package rex provides a small structured representation of the regular
// expressions Hoiho learns (paper §3). Instead of manipulating regex
// source strings, the learner works with token sequences, which makes the
// paper's phase-2 merge ("regexes that differ by a single simple string",
// §3.3) and phase-3 character-class embedding (§3.4) well-defined
// structural transforms. Tokens render to the exact syntax the paper
// prints (e.g. "[^\.]+", "(?:p|s)?", "[a-z\d]+") and compile to the
// standard library's regexp for matching.
//
// Every Regex is implicitly anchored: it renders with a leading "^" and a
// trailing "$".
package rex

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Kind discriminates token types.
type Kind uint8

const (
	// KindLit is a literal string, escaped on render ("\.equinix\.com").
	KindLit Kind = iota
	// KindCapture is the ASN capture group "(\d+)".
	KindCapture
	// KindExcl is an exclusion component "[^...]+" matching one or more
	// characters that are none of the excluded punctuation.
	KindExcl
	// KindClass is a character-class component: "[a-z]+", "\d+", or
	// "[a-z\d]+" (phase 3).
	KindClass
	// KindDotPlus is ".+", used at most once per regex (§3.2).
	KindDotPlus
	// KindAlt is a non-capturing alternation of literals "(?:p|s)",
	// optionally followed by "?" when one alternative is empty (§3.3).
	KindAlt
	// KindCaptureAlpha is the AS-name capture group "([a-z]+)" used by
	// the §7 extension that learns name-extracting conventions.
	KindCaptureAlpha
)

// Class enumerates the character classes phase 3 may embed.
type Class uint8

const (
	ClassAlpha Class = iota // [a-z]+
	ClassDigit              // \d+
	ClassAlnum              // [a-z\d]+
)

// Token is one component of a learned regex.
type Token struct {
	Kind Kind
	// Lit holds the literal text for KindLit.
	Lit string
	// Excl holds the excluded punctuation characters for KindExcl, in
	// render order (e.g. ".-").
	Excl string
	// Class holds the class for KindClass.
	Class Class
	// Alts holds the alternatives for KindAlt, sorted; Opt marks the
	// trailing "?".
	Alts []string
	Opt  bool
}

// Lit returns a literal token. Empty literals are legal inside builders
// but are dropped by New.
func Lit(s string) Token { return Token{Kind: KindLit, Lit: s} }

// Capture returns the "(\d+)" token.
func Capture() Token { return Token{Kind: KindCapture} }

// CaptureAlpha returns the "([a-z]+)" token (AS-name extraction, §7).
func CaptureAlpha() Token { return Token{Kind: KindCaptureAlpha} }

// Excl returns an exclusion component excluding the given punctuation.
func Excl(chars string) Token { return Token{Kind: KindExcl, Excl: chars} }

// ClassTok returns a character-class component.
func ClassTok(c Class) Token { return Token{Kind: KindClass, Class: c} }

// DotPlus returns the ".+" token.
func DotPlus() Token { return Token{Kind: KindDotPlus} }

// Alt returns an alternation token over alts; opt appends "?".
func Alt(opt bool, alts ...string) Token {
	sorted := append([]string(nil), alts...)
	sort.Strings(sorted)
	return Token{Kind: KindAlt, Alts: sorted, Opt: opt}
}

// render appends the token's regex syntax to sb.
func (t Token) render(sb *strings.Builder) {
	switch t.Kind {
	case KindLit:
		writeEscLit(sb, t.Lit)
	case KindCapture:
		sb.WriteString(`(\d+)`)
	case KindCaptureAlpha:
		sb.WriteString(`([a-z]+)`)
	case KindExcl:
		sb.WriteString("[^")
		writeClassChars(sb, t.Excl)
		sb.WriteString("]+")
	case KindClass:
		switch t.Class {
		case ClassAlpha:
			sb.WriteString("[a-z]+")
		case ClassDigit:
			sb.WriteString(`\d+`)
		default:
			sb.WriteString(`[a-z\d]+`)
		}
	case KindDotPlus:
		sb.WriteString(".+")
	case KindAlt:
		sb.WriteString("(?:")
		for i, a := range t.Alts {
			if i > 0 {
				sb.WriteByte('|')
			}
			writeEscLit(sb, a)
		}
		sb.WriteByte(')')
		if t.Opt {
			sb.WriteByte('?')
		}
	}
}

// renderMax is a cheap upper bound on the token's rendered byte length,
// used to size the String builder in one allocation.
func (t Token) renderMax() int {
	switch t.Kind {
	case KindLit:
		return 2 * len(t.Lit)
	case KindExcl:
		return 3 + 2*len(t.Excl)
	case KindAlt:
		n := 5
		for _, a := range t.Alts {
			n += 2*len(a) + 1
		}
		return n
	default:
		return 8 // the widest fixed form is "([a-z]+)"
	}
}

// equal reports deep equality of tokens.
func (t Token) equal(u Token) bool {
	if t.Kind != u.Kind || t.Lit != u.Lit || t.Excl != u.Excl ||
		t.Class != u.Class || t.Opt != u.Opt || len(t.Alts) != len(u.Alts) {
		return false
	}
	for i := range t.Alts {
		if t.Alts[i] != u.Alts[i] {
			return false
		}
	}
	return true
}

// escapeLit escapes regex metacharacters in hostname literals. Hostname
// alphabets only contain [a-z0-9.-_]; '.' and '-' are the characters that
// need care ('-' only inside classes, but the paper escapes neither '-'
// nor '_' in literals).
func escapeLit(s string) string {
	// QuoteMeta rather than dot-only: a literal containing \ or a
	// quantifier character would otherwise render into a string that
	// re-parses (and compiles) as a different regex, breaking the
	// String/Parse round-trip FuzzParse pins. Normalized hostnames never
	// contain those bytes, so real renders are unchanged.
	return regexp.QuoteMeta(s)
}

// litMeta marks the bytes regexp.QuoteMeta escapes; writeEscLit keeps
// byte-for-byte parity with escapeLit without QuoteMeta's intermediate
// string (candidate generation renders thousands of regexes per suffix).
var litMeta = func() (t [256]bool) {
	for _, b := range []byte(`\.+*?()|[]{}^$`) {
		t[b] = true
	}
	return
}()

// writeEscLit writes s with regex metacharacters escaped, equivalent to
// sb.WriteString(escapeLit(s)) with zero intermediate allocation.
func writeEscLit(sb *strings.Builder, s string) {
	for i := 0; i < len(s); i++ {
		if litMeta[s[i]] {
			sb.WriteByte('\\')
		}
		sb.WriteByte(s[i])
	}
}

// writeClassChars renders characters inside [^...] the way the paper
// prints them: dot escaped, dash last.
func writeClassChars(sb *strings.Builder, chars string) {
	dash := false
	for i := 0; i < len(chars); i++ {
		switch chars[i] {
		case '.':
			sb.WriteString(`\.`)
		case '-':
			dash = true
		default:
			sb.WriteByte(chars[i])
		}
	}
	if dash {
		sb.WriteByte('-')
	}
}

// Regex is a token sequence with exactly one Capture token. It is always
// anchored at the end ("$"); by default it is anchored at the start too,
// but a left-open regex (see NewOpen) omits the "^", as in the paper's
// "as(\d+)\.nts\.ch$" (figure 2), matching anywhere up to the end of the
// hostname.
type Regex struct {
	tokens   []Token
	leftOpen bool
	// str and re are lazily populated caches; a Regex is immutable after
	// construction.
	str   string
	re    *regexp.Regexp
	inRe  *regexp.Regexp // instrumented: every token in its own group
	inIdx []int          // token index -> instrumented group number
}

// New builds a Regex from tokens. Empty literal tokens are dropped and
// adjacent literals coalesced. New returns an error if the sequence does
// not contain exactly one Capture, or contains more than one DotPlus
// (§3.2 allows ".+" at most once per regex).
func New(tokens ...Token) (*Regex, error) {
	return build(false, tokens)
}

// NewOpen builds a left-open Regex: anchored at the end only.
func NewOpen(tokens ...Token) (*Regex, error) {
	return build(true, tokens)
}

func build(leftOpen bool, tokens []Token) (*Regex, error) {
	cleaned := make([]Token, 0, len(tokens))
	for _, t := range tokens {
		if t.Kind == KindLit && t.Lit == "" {
			continue
		}
		if len(cleaned) > 0 && t.Kind == KindLit && cleaned[len(cleaned)-1].Kind == KindLit {
			cleaned[len(cleaned)-1].Lit += t.Lit
			continue
		}
		cleaned = append(cleaned, t)
	}
	captures, dots := 0, 0
	for _, t := range cleaned {
		switch t.Kind {
		case KindCapture, KindCaptureAlpha:
			captures++
		case KindDotPlus:
			dots++
		}
	}
	if captures != 1 {
		return nil, fmt.Errorf("rex: %d capture tokens, want 1", captures)
	}
	if dots > 1 {
		return nil, fmt.Errorf("rex: %d .+ tokens, want at most 1", dots)
	}
	return &Regex{tokens: cleaned, leftOpen: leftOpen}, nil
}

// MustNew is New that panics on error, for literal construction in tests.
func MustNew(tokens ...Token) *Regex {
	r, err := New(tokens...)
	if err != nil {
		//hoiho:panic-ok invariant on literal token data: New only rejects malformed literal constructions, a programmer error any test run catches
		panic(err)
	}
	return r
}

// Tokens returns a copy of the token sequence.
func (r *Regex) Tokens() []Token {
	return append([]Token(nil), r.tokens...)
}

// NumTokens returns the number of tokens.
func (r *Regex) NumTokens() int { return len(r.tokens) }

// LeftOpen reports whether the regex omits the start anchor.
func (r *Regex) LeftOpen() bool { return r.leftOpen }

// String renders the regex in the paper's syntax, including anchors.
func (r *Regex) String() string {
	if r.str == "" {
		size := 2
		for _, t := range r.tokens {
			size += t.renderMax()
		}
		var sb strings.Builder
		sb.Grow(size)
		if !r.leftOpen {
			sb.WriteByte('^')
		}
		for _, t := range r.tokens {
			t.render(&sb)
		}
		sb.WriteByte('$')
		r.str = sb.String()
	}
	return r.str
}

// Equal reports whether two regexes have identical token sequences and
// anchoring.
func (r *Regex) Equal(o *Regex) bool {
	if r.leftOpen != o.leftOpen || len(r.tokens) != len(o.tokens) {
		return false
	}
	for i := range r.tokens {
		if !r.tokens[i].equal(o.tokens[i]) {
			return false
		}
	}
	return true
}

// Compile returns the compiled form (cached).
func (r *Regex) Compile() (*regexp.Regexp, error) {
	if r.re == nil {
		//hoiho:recompile-ok this is the compile-once cache itself: the result is stored on r.re and every later call returns it
		re, err := regexp.Compile(r.String())
		if err != nil {
			return nil, fmt.Errorf("rex: compile %q: %w", r.String(), err)
		}
		r.re = re
	}
	return r.re, nil
}

// Extract runs the regex against hostname and returns the captured ASN
// digits along with the capture's byte offsets. ok is false when the
// regex does not match.
func (r *Regex) Extract(hostname string) (asn string, start, end int, ok bool) {
	re, err := r.Compile()
	if err != nil {
		return "", 0, 0, false
	}
	m := re.FindStringSubmatchIndex(hostname)
	if m == nil {
		return "", 0, 0, false
	}
	// Group 1 is the single Capture token.
	s, e := m[2], m[3]
	if s < 0 {
		return "", 0, 0, false
	}
	return hostname[s:e], s, e, true
}

// TokenSpans matches hostname with an instrumented compilation in which
// every token is its own group, returning the byte span covered by each
// token (aligned with Tokens()). ok is false when the regex does not
// match. Optional alternations that matched nothing yield a zero-width
// span.
func (r *Regex) TokenSpans(hostname string) (spans [][2]int, ok bool) {
	return r.AppendTokenSpans(nil, hostname)
}

// AppendTokenSpans is TokenSpans with caller-provided span storage: the
// spans are appended to dst[:0]'s backing array when it has capacity, so
// a caller probing many hostnames against one regex (phase-3 class
// embedding) reuses a single buffer instead of allocating per match.
func (r *Regex) AppendTokenSpans(dst [][2]int, hostname string) (spans [][2]int, ok bool) {
	if r.inRe == nil {
		var sb strings.Builder
		if !r.leftOpen {
			sb.WriteByte('^')
		}
		r.inIdx = make([]int, len(r.tokens))
		group := 0
		for i, t := range r.tokens {
			group++
			r.inIdx[i] = group
			sb.WriteByte('(')
			switch t.Kind {
			case KindAlt:
				// render without the outer (?:...) since we add our own group
				sb.WriteString("(?:")
				for j, a := range t.Alts {
					if j > 0 {
						sb.WriteByte('|')
					}
					sb.WriteString(escapeLit(a))
				}
				sb.WriteByte(')')
				if t.Opt {
					sb.WriteByte('?')
				}
			case KindCapture:
				sb.WriteString(`\d+`)
			case KindCaptureAlpha:
				sb.WriteString(`[a-z]+`)
			default:
				var tb strings.Builder
				t.render(&tb)
				sb.WriteString(tb.String())
			}
			sb.WriteByte(')')
		}
		sb.WriteByte('$')
		//hoiho:recompile-ok compile-once cache for the instrumented span matcher: stored on r.inRe, rebuilt never
		re, err := regexp.Compile(sb.String())
		if err != nil {
			return dst[:0], false
		}
		r.inRe = re
	}
	m := r.inRe.FindStringSubmatchIndex(hostname)
	if m == nil {
		return dst[:0], false
	}
	spans = dst[:0]
	for i := range r.tokens {
		g := r.inIdx[i]
		spans = append(spans, [2]int{m[2*g], m[2*g+1]})
	}
	return spans, true
}

// Merge attempts the paper's §3.3 merge of two regexes that differ by a
// single simple string. It succeeds when
//
//   - the token sequences are equal everywhere except one position where
//     both tokens are literals (or alternations of literals), producing an
//     alternation; or
//   - one sequence has exactly one extra literal (or alternation) token
//     and is otherwise equal, producing an optional alternation.
//
// The merged regex is returned with ok=true; otherwise ok is false.
func Merge(a, b *Regex) (*Regex, bool) {
	if a.leftOpen != b.leftOpen {
		return nil, false
	}
	switch {
	case len(a.tokens) == len(b.tokens):
		return mergeSameLen(a, b)
	case len(a.tokens) == len(b.tokens)+1:
		return mergeExtra(a, b)
	case len(b.tokens) == len(a.tokens)+1:
		return mergeExtra(b, a)
	}
	return nil, false
}

// altValues extracts the set of literal alternatives a token contributes
// to a merge, with ok=false for non-literal tokens.
func altValues(t Token) (alts []string, opt bool, ok bool) {
	switch t.Kind {
	case KindLit:
		return []string{t.Lit}, false, true
	case KindAlt:
		return t.Alts, t.Opt, true
	}
	return nil, false, false
}

// mergeableAlts reports whether an alternative set is a "single simple
// string" difference in the paper's sense: after removing the longest
// common prefix and suffix, the differing portions must be purely
// alphanumeric. This permits merging context strings like "p"/"s" or
// "-as"/"-" while refusing to alternate structural punctuation
// ("-" vs "."), which a human would never write as (?:-|\.).
func mergeableAlts(alts []string) bool {
	if len(alts) < 2 {
		return true
	}
	pre := alts[0]
	for _, a := range alts[1:] {
		for !strings.HasPrefix(a, pre) {
			pre = pre[:len(pre)-1]
		}
	}
	suf := alts[0]
	for _, a := range alts[1:] {
		for !strings.HasSuffix(a, suf) {
			suf = suf[1:]
		}
	}
	for _, a := range alts {
		mid := a[len(pre):]
		// Guard against prefix/suffix overlap on the shortest alternative.
		if len(suf) <= len(mid) {
			mid = mid[:len(mid)-len(suf)]
		}
		for i := 0; i < len(mid); i++ {
			c := mid[i]
			if !('a' <= c && c <= 'z' || '0' <= c && c <= '9') {
				return false
			}
		}
	}
	return true
}

func mergeSameLen(a, b *Regex) (*Regex, bool) {
	diff := -1
	for i := range a.tokens {
		if !a.tokens[i].equal(b.tokens[i]) {
			if diff >= 0 {
				return nil, false
			}
			diff = i
		}
	}
	if diff < 0 {
		// identical regexes: nothing to merge
		return nil, false
	}
	av, aopt, ok := altValues(a.tokens[diff])
	if !ok {
		return nil, false
	}
	bv, bopt, ok := altValues(b.tokens[diff])
	if !ok {
		return nil, false
	}
	merged := unionAlts(av, bv)
	if !mergeableAlts(merged) {
		return nil, false
	}
	toks := a.Tokens()
	toks[diff] = Alt(aopt || bopt, merged...)
	r, err := build(a.leftOpen, toks)
	if err != nil {
		return nil, false
	}
	return r, true
}

// mergeExtra merges long (len n+1) with short (len n): the extra token in
// long must be a literal/alternation and everything else aligned.
func mergeExtra(long, short *Regex) (*Regex, bool) {
	// Try removing each literal-ish token from long and compare.
	for i, t := range long.tokens {
		av, _, ok := altValues(t)
		if !ok || !mergeableAlts(append([]string{""}, av...)) {
			continue
		}
		if !tokensEqual(long.tokens[:i], short.tokens[:i]) ||
			!tokensEqual(long.tokens[i+1:], short.tokens[i:]) {
			continue
		}
		toks := long.Tokens()
		toks[i] = Alt(true, av...)
		if r, err := build(long.leftOpen, toks); err == nil {
			return r, true
		}
	}
	return nil, false
}

func tokensEqual(a, b []Token) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].equal(b[i]) {
			return false
		}
	}
	return true
}

func unionAlts(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, s := range a {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range b {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// WithToken returns a copy of r with token i replaced by t.
func (r *Regex) WithToken(i int, t Token) (*Regex, error) {
	if i < 0 || i >= len(r.tokens) {
		return nil, fmt.Errorf("rex: token index %d out of range", i)
	}
	toks := r.Tokens()
	toks[i] = t
	return build(r.leftOpen, toks)
}

// NarrowestClass returns the narrowest character class covering every
// string in samples: [a-z]+ if all-alphabetic, \d+ if all-numeric,
// [a-z\d]+ if alphanumeric. ok is false when a sample contains a
// character outside [a-z0-9] or samples is empty (no basis to
// generalize).
func NarrowestClass(samples []string) (Class, bool) {
	if len(samples) == 0 {
		return 0, false
	}
	hasAlpha, hasDigit := false, false
	for _, s := range samples {
		if s == "" {
			return 0, false
		}
		for i := 0; i < len(s); i++ {
			c := s[i]
			switch {
			case 'a' <= c && c <= 'z':
				hasAlpha = true
			case '0' <= c && c <= '9':
				hasDigit = true
			default:
				return 0, false
			}
		}
	}
	switch {
	case hasAlpha && hasDigit:
		return ClassAlnum, true
	case hasDigit:
		return ClassDigit, true
	default:
		return ClassAlpha, true
	}
}
