package rex

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRenderPaperSyntax(t *testing.T) {
	cases := []struct {
		r    *Regex
		want string
	}{
		{
			MustNew(Capture(), Lit("."), Excl("."), Lit(".equinix.com")),
			`^(\d+)\.[^\.]+\.equinix\.com$`,
		},
		{
			MustNew(Lit("p"), Capture(), Lit("."), Excl("."), Lit(".equinix.com")),
			`^p(\d+)\.[^\.]+\.equinix\.com$`,
		},
		{
			MustNew(Capture(), Lit("-"), DotPlus(), Lit(".equinix.com")),
			`^(\d+)-.+\.equinix\.com$`,
		},
		{
			MustNew(Alt(true, "p", "s"), Capture(), Lit("."), ClassTok(ClassAlnum), Lit(".equinix.com")),
			`^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$`,
		},
		{
			MustNew(Lit("as"), Capture(), Lit(".nts.ch")),
			`^as(\d+)\.nts\.ch$`,
		},
		{
			MustNew(Capture(), Lit("-"), Excl("-"), Lit("-"), Excl("-."), Lit(".x.net")),
			`^(\d+)-[^-]+-[^\.-]+\.x\.net$`,
		},
		{
			MustNew(ClassTok(ClassAlpha), Capture(), ClassTok(ClassDigit), Lit(".y.net")),
			`^[a-z]+(\d+)\d+\.y\.net$`,
		},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Lit("a")); err == nil {
		t.Error("no capture should error")
	}
	if _, err := New(Capture(), Capture()); err == nil {
		t.Error("two captures should error")
	}
	if _, err := New(Capture(), DotPlus(), Lit("."), DotPlus()); err == nil {
		t.Error("two .+ should error")
	}
	// Empty literals dropped, adjacent literals coalesced.
	r := MustNew(Lit(""), Lit("as"), Lit("n"), Capture(), Lit(""))
	if r.NumTokens() != 2 {
		t.Errorf("tokens = %d, want 2 (%s)", r.NumTokens(), r)
	}
	if r.String() != `^asn(\d+)$` {
		t.Errorf("String = %q", r.String())
	}
}

func TestExtract(t *testing.T) {
	r := MustNew(Alt(true, "p", "s"), Capture(), Lit("."), ClassTok(ClassAlnum), Lit(".equinix.com"))
	cases := []struct {
		host, asn string
		ok        bool
	}{
		{"714.os.equinix.com", "714", true},
		{"p714.sgw.equinix.com", "714", true},
		{"s24115.tyo.equinix.com", "24115", true},
		{"24482-fr5-ix.equinix.com", "", false},
		{"netflix.zh2.corp.eu.equinix.com", "", false},
		{"x714.sgw.equinix.com", "", false},
	}
	for _, c := range cases {
		asn, s, e, ok := r.Extract(c.host)
		if ok != c.ok || asn != c.asn {
			t.Errorf("Extract(%q) = %q,%v want %q,%v", c.host, asn, ok, c.asn, c.ok)
		}
		if ok && c.host[s:e] != asn {
			t.Errorf("Extract(%q) offsets wrong: %d..%d", c.host, s, e)
		}
	}
}

func TestExtractAnchored(t *testing.T) {
	r := MustNew(Lit("as"), Capture(), Lit(".nts.ch"))
	if _, _, _, ok := r.Extract("x.as15576.nts.ch"); ok {
		t.Error("should be anchored at start")
	}
	if _, _, _, ok := r.Extract("as15576.nts.ch.x"); ok {
		t.Error("should be anchored at end")
	}
	if asn, _, _, ok := r.Extract("as15576.nts.ch"); !ok || asn != "15576" {
		t.Errorf("got %q,%v", asn, ok)
	}
}

func TestTokenSpans(t *testing.T) {
	r := MustNew(Alt(true, "p", "s"), Capture(), Lit("."), Excl("."), Lit(".equinix.com"))
	spans, ok := r.TokenSpans("p714.sgw.equinix.com")
	if !ok {
		t.Fatal("no match")
	}
	host := "p714.sgw.equinix.com"
	if host[spans[0][0]:spans[0][1]] != "p" {
		t.Errorf("alt span = %v", spans[0])
	}
	if host[spans[1][0]:spans[1][1]] != "714" {
		t.Errorf("capture span = %v", spans[1])
	}
	if host[spans[3][0]:spans[3][1]] != "sgw" {
		t.Errorf("excl span = %v", spans[3])
	}
	// Optional alternation absent: span is zero-width.
	spans, ok = r.TokenSpans("714.os.equinix.com")
	if !ok {
		t.Fatal("no match")
	}
	if spans[0][0] != spans[0][1] {
		t.Errorf("absent alt span = %v", spans[0])
	}
}

func TestMergeSameLength(t *testing.T) {
	a := MustNew(Lit("p"), Capture(), Lit("."), Excl("."), Lit(".equinix.com"))
	b := MustNew(Lit("s"), Capture(), Lit("."), Excl("."), Lit(".equinix.com"))
	m, ok := Merge(a, b)
	if !ok {
		t.Fatal("merge failed")
	}
	if m.String() != `^(?:p|s)(\d+)\.[^\.]+\.equinix\.com$` {
		t.Errorf("merged = %q", m.String())
	}
}

func TestMergeOptional(t *testing.T) {
	// Figure 4, phase 2: regexes #1 (no prefix), #2 ("p"), #3 ("s")
	// merge into ^(?:p|s)?(\d+)\.[^\.]+\.equinix\.com$.
	r1 := MustNew(Capture(), Lit("."), Excl("."), Lit(".equinix.com"))
	r2 := MustNew(Lit("p"), Capture(), Lit("."), Excl("."), Lit(".equinix.com"))
	r3 := MustNew(Lit("s"), Capture(), Lit("."), Excl("."), Lit(".equinix.com"))
	m12, ok := Merge(r2, r1)
	if !ok {
		t.Fatal("merge r2,r1 failed")
	}
	if m12.String() != `^(?:p)?(\d+)\.[^\.]+\.equinix\.com$` {
		t.Errorf("m12 = %q", m12.String())
	}
	m, ok := Merge(m12, r3)
	if !ok {
		t.Fatal("merge m12,r3 failed")
	}
	if m.String() != `^(?:p|s)?(\d+)\.[^\.]+\.equinix\.com$` {
		t.Errorf("m = %q", m.String())
	}
	// And the merged regex matches all three shapes.
	for host, want := range map[string]string{
		"109.sgw.equinix.com":    "109",
		"p714.sgw.equinix.com":   "714",
		"s24115.tyo.equinix.com": "24115",
	} {
		if got, _, _, ok := m.Extract(host); !ok || got != want {
			t.Errorf("Extract(%q) = %q,%v", host, got, ok)
		}
	}
}

func TestMergeRejects(t *testing.T) {
	a := MustNew(Lit("p"), Capture(), Lit(".x.com"))
	b := MustNew(Lit("s"), Capture(), Lit(".y.com"))
	if _, ok := Merge(a, b); ok {
		t.Error("two differing positions should not merge")
	}
	c := MustNew(Excl("."), Capture(), Lit(".x.com"))
	d := MustNew(DotPlus(), Capture(), Lit(".x.com"))
	if _, ok := Merge(c, d); ok {
		t.Error("non-literal difference should not merge")
	}
	if _, ok := Merge(a, a); ok {
		t.Error("identical regexes should not merge")
	}
	long := MustNew(Lit("p"), Capture(), Lit("."), Excl("."), Lit(".x.com"))
	short := MustNew(Capture(), Lit(".x.com"))
	if _, ok := Merge(long, short); ok {
		t.Error("length difference of 2 should not merge")
	}
}

func TestMergeExtraNonAdjacent(t *testing.T) {
	// Extra literal token in the middle.
	long := MustNew(Capture(), Lit("-"), Lit("x"), Excl("."), Lit(".a.com"))
	// After coalescing, long is [Capture, Lit("-x"), Excl, Lit(".a.com")]
	// so the short variant differs structurally; construct a true
	// extra-token case with non-literal neighbors instead.
	long = MustNew(Capture(), Excl("-"), Lit("ix"), Excl("."), Lit(".a.com"))
	short := MustNew(Capture(), Excl("-"), Excl("."), Lit(".a.com"))
	m, ok := Merge(long, short)
	if !ok {
		t.Fatal("merge failed")
	}
	if !strings.Contains(m.String(), "(?:ix)?") {
		t.Errorf("merged = %q", m.String())
	}
}

func TestWithToken(t *testing.T) {
	r := MustNew(Capture(), Lit("."), Excl("."), Lit(".equinix.com"))
	r2, err := r.WithToken(2, ClassTok(ClassAlnum))
	if err != nil {
		t.Fatal(err)
	}
	if r2.String() != `^(\d+)\.[a-z\d]+\.equinix\.com$` {
		t.Errorf("r2 = %q", r2.String())
	}
	// Original unchanged.
	if r.String() != `^(\d+)\.[^\.]+\.equinix\.com$` {
		t.Errorf("r mutated: %q", r.String())
	}
	if _, err := r.WithToken(99, Lit("x")); err == nil {
		t.Error("out of range should error")
	}
}

func TestNarrowestClass(t *testing.T) {
	cases := []struct {
		samples []string
		class   Class
		ok      bool
	}{
		{[]string{"sgw", "os", "tyo"}, ClassAlpha, true},
		{[]string{"01", "02"}, ClassDigit, true},
		{[]string{"sgw", "me1", "tyo"}, ClassAlnum, true},
		{[]string{"fr5", "ix2"}, ClassAlnum, true},
		{[]string{}, 0, false},
		{[]string{"a-b"}, 0, false},
		{[]string{""}, 0, false},
	}
	for _, c := range cases {
		cl, ok := NarrowestClass(c.samples)
		if ok != c.ok || (ok && cl != c.class) {
			t.Errorf("NarrowestClass(%v) = %v,%v want %v,%v", c.samples, cl, ok, c.class, c.ok)
		}
	}
}

func TestEqual(t *testing.T) {
	a := MustNew(Lit("as"), Capture(), Lit(".x.com"))
	b := MustNew(Lit("as"), Capture(), Lit(".x.com"))
	c := MustNew(Lit("gw"), Capture(), Lit(".x.com"))
	if !a.Equal(b) || a.Equal(c) {
		t.Error("Equal wrong")
	}
	d := MustNew(Alt(false, "p", "s"), Capture(), Lit(".x.com"))
	e := MustNew(Alt(true, "p", "s"), Capture(), Lit(".x.com"))
	if d.Equal(e) {
		t.Error("Opt flag should distinguish")
	}
}

// Property: every regex we can render also compiles, and Extract's result
// is always a digit string found inside the hostname at the reported
// offsets.
func TestCompileAndExtractQuick(t *testing.T) {
	f := func(prefix, mid uint8, useDot bool) bool {
		litPrefix := []string{"", "p", "s", "as", "gw-"}[int(prefix)%5]
		var midTok Token
		switch mid % 4 {
		case 0:
			midTok = Excl(".")
		case 1:
			midTok = Excl("-.")
		case 2:
			midTok = ClassTok(ClassAlnum)
		default:
			midTok = ClassTok(ClassAlpha)
		}
		toks := []Token{Lit(litPrefix), Capture(), Lit(".")}
		if useDot {
			toks = append(toks, DotPlus())
		} else {
			toks = append(toks, midTok)
		}
		toks = append(toks, Lit(".example.com"))
		r, err := New(toks...)
		if err != nil {
			return false
		}
		if _, err := r.Compile(); err != nil {
			return false
		}
		host := litPrefix + "12345.abc.example.com"
		asn, s, e, ok := r.Extract(host)
		if !ok {
			// ClassAlpha does not match "abc"? it does; all should match
			return false
		}
		return asn == "12345" && host[s:e] == asn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging is symmetric in match semantics — the merged regex
// matches everything either input matched.
func TestMergeCoversInputs(t *testing.T) {
	a := MustNew(Lit("p"), Capture(), Lit("."), Excl("."), Lit(".equinix.com"))
	b := MustNew(Capture(), Lit("."), Excl("."), Lit(".equinix.com"))
	m, ok := Merge(a, b)
	if !ok {
		t.Fatal("merge failed")
	}
	hosts := []string{"p714.sgw.equinix.com", "109.sgw.equinix.com"}
	for _, h := range hosts {
		_, _, _, aok := a.Extract(h)
		_, _, _, bok := b.Extract(h)
		_, _, _, mok := m.Extract(h)
		if (aok || bok) && !mok {
			t.Errorf("merged regex lost coverage of %q", h)
		}
	}
}

func BenchmarkExtract(b *testing.B) {
	r := MustNew(Alt(true, "p", "s"), Capture(), Lit("."), ClassTok(ClassAlnum), Lit(".equinix.com"))
	if _, err := r.Compile(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Extract("p714.sgw.equinix.com")
	}
}

func BenchmarkCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := MustNew(Alt(true, "p", "s"), Capture(), Lit("."), ClassTok(ClassAlnum), Lit(".equinix.com"))
		if _, err := r.Compile(); err != nil {
			b.Fatal(err)
		}
	}
}
