package rex

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary strings through the dialect parser. Parse
// guards the JSON load path (corpora and learned NCs round-trip through
// String renders), so it must reject garbage with an error — never a
// panic — and anything it accepts must re-render and re-parse to an
// equal regex (the round-trip invariant the serialization relies on).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`^as(\d+)\.example\.net$`,
		`^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$`,
		`as(\d+)\.nts\.ch$`,
		`^[^\.]+-as(\d+)\.[^-]+\.example\.com$`,
		`^.+\.as(\d+)\.example\.org$`,
		`^(?:as|AS)(\d+)\.\d+\.example\.net$`,
		`^a\\b(\d+)\.x$`,
		`^([a-z]+)\.peer\.example\.net$`,
		`(\d+)$`,
		`^$`,
		``,
		`^((((`,
		`^[^`,
		`^(?:a|b`,
		"\\",
		strings.Repeat(`(?:a|b)?`, 40) + `(\d+)$`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		r, err := Parse(src)
		if err != nil {
			return
		}
		render := r.String()
		r2, err := Parse(render)
		if err != nil {
			t.Fatalf("Parse(%q) ok but re-parse of render %q failed: %v", src, render, err)
		}
		if !r.Equal(r2) {
			t.Fatalf("round-trip changed regex: %q -> %q -> %q", src, render, r2.String())
		}
		if got := r2.String(); got != render {
			t.Fatalf("render not a fixed point: %q -> %q", render, got)
		}
	})
}
