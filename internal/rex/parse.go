package rex

import (
	"fmt"
	"strings"
)

// Parse reconstructs a Regex from the dialect String renders, so learned
// conventions serialized to JSON round-trip into identical structured
// regexes. Only this package's output dialect is accepted — arbitrary
// regular expressions are rejected.
func Parse(src string) (*Regex, error) {
	s := src
	leftOpen := true
	if strings.HasPrefix(s, "^") {
		leftOpen = false
		s = s[1:]
	}
	if !strings.HasSuffix(s, "$") {
		return nil, fmt.Errorf("rex: parse %q: missing end anchor", src)
	}
	s = s[:len(s)-1]

	var toks []Token
	var lit strings.Builder
	flush := func() {
		if lit.Len() > 0 {
			toks = append(toks, Lit(lit.String()))
			lit.Reset()
		}
	}
	i := 0
	for i < len(s) {
		switch {
		case strings.HasPrefix(s[i:], `(\d+)`):
			flush()
			toks = append(toks, Capture())
			i += 5
		case strings.HasPrefix(s[i:], `([a-z]+)`):
			flush()
			toks = append(toks, CaptureAlpha())
			i += 8
		case strings.HasPrefix(s[i:], `\d+`):
			flush()
			toks = append(toks, ClassTok(ClassDigit))
			i += 3
		case strings.HasPrefix(s[i:], `[a-z]+`):
			flush()
			toks = append(toks, ClassTok(ClassAlpha))
			i += 6
		case strings.HasPrefix(s[i:], `[a-z\d]+`):
			flush()
			toks = append(toks, ClassTok(ClassAlnum))
			i += 8
		case strings.HasPrefix(s[i:], ".+"):
			flush()
			toks = append(toks, DotPlus())
			i += 2
		case strings.HasPrefix(s[i:], "[^"):
			end := strings.Index(s[i:], "]+")
			if end < 0 {
				return nil, fmt.Errorf("rex: parse %q: unterminated class at %d", src, i)
			}
			body := s[i+2 : i+end]
			var chars []byte
			for j := 0; j < len(body); j++ {
				if body[j] == '\\' && j+1 < len(body) {
					j++
				}
				chars = append(chars, body[j])
			}
			flush()
			toks = append(toks, Excl(string(chars)))
			i += end + 2
		case strings.HasPrefix(s[i:], "(?:"):
			end := findGroupEnd(s, i+3)
			if end < 0 {
				return nil, fmt.Errorf("rex: parse %q: unterminated group at %d", src, i)
			}
			body := s[i+3 : end]
			alts, err := splitAlts(body)
			if err != nil {
				return nil, fmt.Errorf("rex: parse %q: %w", src, err)
			}
			opt := false
			next := end + 1
			if next < len(s) && s[next] == '?' {
				opt = true
				next++
			}
			flush()
			toks = append(toks, Alt(opt, alts...))
			i = next
		case s[i] == '\\':
			if i+1 >= len(s) {
				return nil, fmt.Errorf("rex: parse %q: trailing backslash", src)
			}
			lit.WriteByte(s[i+1])
			i += 2
		case s[i] == '(' || s[i] == ')' || s[i] == '[' || s[i] == ']' ||
			s[i] == '^' || s[i] == '$' || s[i] == '+' || s[i] == '*' ||
			s[i] == '?' || s[i] == '|' || s[i] == '{' || s[i] == '}':
			return nil, fmt.Errorf("rex: parse %q: unexpected metacharacter %q at %d", src, s[i], i)
		default:
			lit.WriteByte(s[i])
			i++
		}
	}
	flush()
	return build(leftOpen, toks)
}

// findGroupEnd returns the index of the ')' closing the group whose body
// starts at i, skipping escaped characters; -1 when unterminated.
func findGroupEnd(s string, i int) int {
	for ; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case ')':
			return i
		}
	}
	return -1
}

// splitAlts splits an alternation body on unescaped '|' and unescapes the
// alternatives.
func splitAlts(body string) ([]string, error) {
	var alts []string
	var cur strings.Builder
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			if i+1 >= len(body) {
				return nil, fmt.Errorf("trailing backslash in alternation")
			}
			cur.WriteByte(body[i+1])
			i++
		case '|':
			alts = append(alts, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(body[i])
		}
	}
	alts = append(alts, cur.String())
	return alts, nil
}
