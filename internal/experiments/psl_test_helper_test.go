package experiments

import "hoiho/internal/psl"

func pslDefault() *psl.List { return psl.Default() }
