package experiments

// Synthetic benchmark workloads shared by the repo-level benchmarks
// (bench_test.go) and cmd/experiments -benchjson, so the recorded perf
// trajectory (BENCH_PR2.json and successors) always measures the same
// shapes.

import (
	"fmt"

	"hoiho/internal/asn"
	"hoiho/internal/core"
	"hoiho/internal/rex"
)

// LargeSuffixItems fabricates one dominant suffix with n items across
// four coexisting hostname formats (start-style, end-style, bare with
// POP, and noise rows that create FPs and FNs) — the shape that makes
// the §3.5 set phase expensive: many candidate regexes, several of
// which must combine into the final NC.
func LargeSuffixItems(n int) []core.Item {
	pops := []string{"nyc", "lax", "fra", "lhr", "sin", "syd", "ams", "cdg", "waw", "yyz"}
	items := make([]core.Item, 0, n)
	for i := 0; i < n; i++ {
		a := 2000 + (i%97)*31
		pop := pops[i%len(pops)]
		var host string
		switch i % 5 {
		case 0:
			host = fmt.Sprintf("as%d-%s-%d.bigcarrier.net", a, pop, i%4)
		case 1:
			host = fmt.Sprintf("xe%d.cust.as%d.bigcarrier.net", i%8, a)
		case 2:
			host = fmt.Sprintf("%d.%s%d.bigcarrier.net", a, pop, i%3)
		case 3:
			host = fmt.Sprintf("p%d.%s.bigcarrier.net", a, pop)
		default:
			// Noise: apparent ASN the conventions miss (FN pressure) or
			// plain infrastructure names.
			if i%2 == 0 {
				host = fmt.Sprintf("lo0-as%d.core.%s.bigcarrier.net", a, pop)
			} else {
				host = fmt.Sprintf("ge0-%d.core%d.%s.bigcarrier.net", i%4, i%30, pop)
			}
		}
		items = append(items, core.Item{Hostname: host, ASN: asn.ASN(a)})
	}
	return items
}

// Figure4Items is the training data of the paper's worked example
// (figure 4, rows a-p); the full pipeline lands at ATP 8 on it.
func Figure4Items() []core.Item {
	return []core.Item{
		{Hostname: "109.sgw.equinix.com", ASN: 109},
		{Hostname: "714.os.equinix.com", ASN: 714},
		{Hostname: "714.me1.equinix.com", ASN: 714},
		{Hostname: "p714.sgw.equinix.com", ASN: 714},
		{Hostname: "s714.sgw.equinix.com", ASN: 714},
		{Hostname: "p24115.mel.equinix.com", ASN: 24115},
		{Hostname: "s24115.tyo.equinix.com", ASN: 24115},
		{Hostname: "22822-2.tyo.equinix.com", ASN: 22282},
		{Hostname: "24482-fr5-ix.equinix.com", ASN: 24482},
		{Hostname: "54827-dc5-ix2.equinix.com", ASN: 54827},
		{Hostname: "55247-ch3-ix.equinix.com", ASN: 55247},
		{Hostname: "netflix.zh2.corp.eu.equinix.com", ASN: 2906},
		{Hostname: "ipv4.dosarrest.eqix.equinix.com", ASN: 19324},
		{Hostname: "8069.tyo.equinix.com", ASN: 8075},
		{Hostname: "8074.hkg.equinix.com", ASN: 8075},
		{Hostname: "45437-sy1-ix.equinix.com", ASN: 55923},
	}
}

// CorpusWorkload builds a serving-scale workload: nNCs conventions over
// distinct registered domains and nHosts hostnames, roughly half of
// which match some convention (the rest miss by shape or suffix).
func CorpusWorkload(nNCs, nHosts int) ([]*core.NC, []string) {
	ncs := make([]*core.NC, nNCs)
	for i := range ncs {
		suffix := fmt.Sprintf("carrier%04d.net", i)
		r := rex.MustNew(rex.Lit("as"), rex.Capture(), rex.Lit("-"), rex.Excl("."), rex.Lit("."+suffix))
		ncs[i] = &core.NC{Suffix: suffix, Regexes: []*rex.Regex{r}, Class: core.Good}
	}
	hosts := make([]string, nHosts)
	for i := range hosts {
		suffix := fmt.Sprintf("carrier%04d.net", i%nNCs)
		switch i % 4 {
		case 0, 1:
			hosts[i] = fmt.Sprintf("as%d-pop%d.%s", 1000+i%60000, i%40, suffix)
		case 2:
			hosts[i] = fmt.Sprintf("lo0.core%d.%s", i%100, suffix) // suffix hit, regex miss
		default:
			hosts[i] = fmt.Sprintf("as%d-pop%d.unknown%d.org", 1000+i%60000, i%40, i%500) // unknown suffix
		}
	}
	return ncs, hosts
}
