package experiments

import (
	"context"
	"fmt"
	"sort"

	"hoiho/internal/bdrmapit"
	"hoiho/internal/core"
	"hoiho/internal/extract"
	"hoiho/internal/topo"
)

// Section5Result captures the §5 evaluation: how feeding Hoiho's NCs into
// bdrmapIT changes the agreement between extracted and inferred ASNs.
type Section5Result struct {
	// AgreementBefore/After: fraction of hostname-extracted ASNs that
	// match the router's (initial/final) annotation. The paper reports
	// 87.4% -> 97.1%.
	AgreementBefore, AgreementAfter float64
	// ErrOneInBefore/After render the error rate as "1 in N" (paper:
	// 1/7.9 -> 1/34.5).
	ErrOneInBefore, ErrOneInAfter float64
	// Decisions: interfaces whose extracted ASN differed from the
	// initial inference (the paper's 723).
	Decisions int
	// UsedTotal: how many of those the modification used (paper: 72.8%).
	UsedTotal int
	// PerClass: used/total by NC class (paper: 82.5% good, 44.0%
	// promising, 18.2% poor).
	PerClass map[core.Classification][2]int
	// Result carries the raw annotator output.
	Result *bdrmapit.Result
}

// RunSection5 re-processes a run's graph with the modified bdrmapIT,
// supplying every learned NC (good, promising, and poor, as the paper
// does). ctx flows into every extraction.
func RunSection5(ctx context.Context, run *Run) *Section5Result {
	an := &bdrmapit.Annotator{
		Graph: run.Graph,
		Rel:   run.World.Rel,
		Orgs:  run.World.Orgs,
		IXPs:  ixpSet(run.World),
	}
	// One shared corpus drives both the annotator and the agreement
	// accounting: the NC machines are compiled once for the whole section.
	corpus := extract.New(run.NCs)
	res := an.AnnotateWithCorpus(ctx, corpus)
	out := &Section5Result{
		Result:   res,
		PerClass: make(map[core.Classification][2]int),
	}

	// Agreement over extracted interfaces, before and after.
	agreeB, agreeA, total := 0, 0, 0
	for _, n := range run.Graph.Nodes {
		for _, addr := range n.Ifaces {
			host := run.Graph.Hostnames[addr]
			if host == "" {
				continue
			}
			m, ok := corpus.Extract(ctx, host)
			if !ok {
				continue
			}
			total++
			if m.ASN == res.Initial[n.ID] {
				agreeB++
			}
			if m.ASN == res.Annotations[n.ID] {
				agreeA++
			}
		}
	}
	if total > 0 {
		out.AgreementBefore = float64(agreeB) / float64(total)
		out.AgreementAfter = float64(agreeA) / float64(total)
		if d := total - agreeB; d > 0 {
			out.ErrOneInBefore = float64(total) / float64(d)
		}
		if d := total - agreeA; d > 0 {
			out.ErrOneInAfter = float64(total) / float64(d)
		}
	}

	out.Decisions = len(res.Decisions)
	for _, d := range res.Decisions {
		c := out.PerClass[d.NCClass]
		c[1]++
		if d.Used {
			c[0]++
			out.UsedTotal++
		}
		out.PerClass[d.NCClass] = c
	}
	return out
}

// Table2Row is one validation line: decision outcomes against ground
// truth for one operator bucket.
type Table2Row struct {
	Label string
	// CorrectUsed (TP): the hostname had the right ASN and the
	// modification used it. CorrectUnused (FN): right but rejected.
	// IncorrectUsed (FP): wrong but used. IncorrectUnused (TN): wrong
	// and rejected.
	CorrectUsed, CorrectUnused, IncorrectUsed, IncorrectUnused int
}

// Table2 validates the §5 decisions against the generator's ground
// truth, bucketed by the class of the AS whose DNS supplied the
// hostname — the synthetic analogue of the paper's five operators plus
// PeeringDB cross-validation.
func Table2(run *Run, res *bdrmapit.Result) ([]Table2Row, int, int) {
	buckets := map[topo.Class]string{
		topo.Tier1:   "Transit provider",
		topo.Transit: "Transit provider",
		topo.Access:  "Access ISP",
		topo.REN:     "R&E network",
		topo.IXP:     "IXP (PeeringDB)",
		topo.Stub:    "Stub",
	}
	rows := make(map[string]*Table2Row)
	order := []string{"Transit provider", "Access ISP", "R&E network", "IXP (PeeringDB)", "Stub"}
	for _, label := range order {
		rows[label] = &Table2Row{Label: label}
	}
	correctTotal, total := 0, 0
	for _, d := range res.Decisions {
		ifc := run.World.Interface(d.Addr)
		if ifc == nil {
			continue
		}
		supplier := run.World.AS(ifc.Supplier)
		if supplier == nil {
			continue
		}
		// The paper's validation covered operators whose conventions
		// label neighbor ASNs (five carriers plus PeeringDB IXPs); it had
		// no ground truth for supplier-labelled (figure 2) suffixes, so
		// those decisions stay unvalidated here too.
		if supplier.Naming == nil || !supplier.Naming.LabelsNeighbor {
			continue
		}
		row := rows[buckets[supplier.Class]]
		truth := ifc.Router.Owner
		correct := d.Extracted == truth || run.World.Orgs.Siblings(d.Extracted, truth)
		total++
		switch {
		case correct && d.Used:
			row.CorrectUsed++
			correctTotal++
		case correct && !d.Used:
			row.CorrectUnused++
		case !correct && d.Used:
			row.IncorrectUsed++
		default:
			row.IncorrectUnused++
			correctTotal++
		}
	}
	out := make([]Table2Row, 0, len(order))
	for _, label := range order {
		r := rows[label]
		if r.CorrectUsed+r.CorrectUnused+r.IncorrectUsed+r.IncorrectUnused > 0 {
			out = append(out, *r)
		}
	}
	return out, correctTotal, total
}

// Figure7Result is the §7 OpenINTEL-style expansion: usable-NC matches
// among traceroute-observed hostnames versus the full delegated PTR
// space.
type Figure7Result struct {
	ObservedMatches int
	FullMatches     int
	Factor          float64
}

// Figure7 applies the run's usable NCs to (a) hostnames observed in the
// traceroute-derived graph and (b) every named interface in the world.
// Cancelling ctx aborts the full-zone batch; the error is ctx.Err().
func Figure7(ctx context.Context, run *Run) (Figure7Result, error) {
	corpus := extract.New(run.NCs, extract.UsableOnly())
	var res Figure7Result
	for _, host := range run.Graph.Hostnames {
		if _, ok := corpus.Extract(ctx, host); ok {
			res.ObservedMatches++
		}
	}
	// The full PTR zone is the batch workload the corpus engine exists
	// for: collect every named interface and shard it over the pool.
	var hosts []string
	for _, ifc := range run.World.Interfaces() {
		if ifc.Hostname != "" {
			hosts = append(hosts, ifc.Hostname)
		}
	}
	results, err := corpus.ExtractBatch(ctx, hosts)
	if err != nil {
		return res, err
	}
	for _, r := range results {
		if r.OK {
			res.FullMatches++
		}
	}
	if res.ObservedMatches > 0 {
		res.Factor = float64(res.FullMatches) / float64(res.ObservedMatches)
	}
	return res, nil
}

// SortDecisionsByNode orders decisions deterministically for reporting.
func SortDecisionsByNode(ds []bdrmapit.Decision) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Node != ds[j].Node {
			return ds[i].Node < ds[j].Node
		}
		return ds[i].Addr.Less(ds[j].Addr)
	})
}

// OneIn renders an error rate the way the paper does ("1/7.9").
func OneIn(v float64) string {
	if v <= 0 {
		return "1/inf"
	}
	return fmt.Sprintf("1/%.1f", v)
}
