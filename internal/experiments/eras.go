// Package experiments regenerates every table and figure in the paper's
// evaluation (§4-§5) on the synthetic substrate: 17 ITDK-style training
// sets spanning 2010-2020 (RouterToAsAssignment through February 2017,
// bdrmapIT after) plus two PeeringDB snapshots, the NC classification
// series (figure 5), training-data PPV series (figure 6), the taxonomy
// (table 1), the modified-bdrmapIT validation (table 2 and the §5
// headline numbers), the single-NC suffix analysis (§4), and the
// full-PTR expansion (§7).
package experiments

import (
	"context"
	"fmt"
	"net/netip"

	"hoiho/internal/asn"
	"hoiho/internal/bdrmapit"
	"hoiho/internal/core"
	"hoiho/internal/itdk"
	"hoiho/internal/peeringdb"
	"hoiho/internal/psl"
	"hoiho/internal/rtaa"
	"hoiho/internal/topo"
)

// Era describes one training-set vintage.
type Era struct {
	Name   string
	Index  int
	Method string // "rtaa" or "bdrmapit"
	// frac is the era's position in [0,1] across the decade; sizing and
	// quality knobs scale with it.
	frac float64
}

// ITDKEras returns the 17 ITDK vintages: 12 annotated by
// RouterToAsAssignment (July 2010 - February 2017) and 5 by bdrmapIT
// (August 2017 - January 2020), as in the paper.
func ITDKEras() []Era {
	names := []string{
		"2010-07", "2011-01", "2011-07", "2012-01", "2012-07", "2013-01",
		"2013-07", "2014-04", "2015-01", "2015-08", "2016-03", "2017-02",
		"2017-08", "2018-03", "2019-01", "2019-04", "2020-01",
	}
	eras := make([]Era, len(names))
	for i, n := range names {
		method := "rtaa"
		if i >= 12 {
			method = "bdrmapit"
		}
		eras[i] = Era{
			Name:   "itdk-" + n,
			Index:  i,
			Method: method,
			frac:   float64(i) / float64(len(names)-1),
		}
	}
	return eras
}

// Scale shrinks or grows every era's AS counts; 1.0 is the full-size
// reproduction, smaller values give fast test/bench runs over the same
// code paths.
type Scale float64

func (s Scale) apply(n float64) int {
	v := int(n * float64(s))
	if v < 1 {
		return 1
	}
	return v
}

// eraConfig derives the topology configuration for an era.
func eraConfig(e Era, scale Scale) topo.Config {
	grow := 0.55 + 0.45*e.frac // the Internet grows over the decade
	cfg := topo.Config{
		Seed:                7000 + int64(e.Index),
		Tier1:               5,
		Transit:             scale.apply(48 * grow),
		Access:              scale.apply(36 * grow),
		REN:                 scale.apply(8),
		Stub:                scale.apply(220 * grow),
		IXPs:                scale.apply(34 * grow),
		AdoptionTransit:     0.30 + 0.38*e.frac,
		AdoptionIXP:         0.60 + 0.32*e.frac,
		OwnASNRate:          0.30,
		StaleRate:           0.02,
		TypoRate:            0.008,
		MissingRate:         0.08,
		PlainNameRate:       0.6,
		IPNameRate:          0.5,
		SiblingRate:         0.12,
		VPs:                 12 + e.Index,
		IXPMemberProb:       0.32,
		IXPPeerProb:         0.75,
		NeighborsPerBorder:  8,
		HopLossRate:         0.01,
		ProbeFilterRate:     0.12,
		RespondLoopbackRate: 0.25,
		SiblingLabelRate:    0.10,
		BackupLinkRate:      3.0,
		ProbeCoverage:       0.75,
		ThirdPartyRate:      0.08,
	}
	return cfg
}

// aliasCompleteness improves over the decade (MIDAR and friends).
func aliasCompleteness(e Era) float64 { return 0.60 + 0.20*e.frac }

// Run is the product of one era's pipeline.
type Run struct {
	Era      Era
	World    *topo.Internet
	Graph    *itdk.Graph
	Snapshot *itdk.Snapshot
	Items    []core.Item
	NCs      []*core.NC
	// Annotations are the per-node training annotations used.
	Annotations map[int]asn.ASN
}

// ixpSet returns the ASNs of the world's IXP LANs.
func ixpSet(world *topo.Internet) map[asn.ASN]bool {
	out := make(map[asn.ASN]bool)
	for _, a := range world.ASes {
		if a.Class == topo.IXP {
			out[a.ASN] = true
		}
	}
	return out
}

func ptrFor(world *topo.Internet) func(netip.Addr) string {
	return func(a netip.Addr) string {
		if ifc := world.Interface(a); ifc != nil {
			return ifc.Hostname
		}
		return ""
	}
}

// RunITDKEra executes the full pipeline for one ITDK era: build the
// world, probe it, assemble the ITDK, annotate routers with the era's
// method, and learn NCs. Cancelling ctx aborts mid-learning.
func RunITDKEra(ctx context.Context, e Era, scale Scale, list *psl.List) (*Run, error) {
	world, err := topo.Build(eraConfig(e, scale))
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", e.Name, err)
	}
	corpus := world.TraceAll()
	aliases := itdk.TruthAliases(world).Degrade(eraConfig(e, scale).Seed^0xa11a5, aliasCompleteness(e))
	graph := itdk.BuildGraph(corpus, aliases, world.Table, ptrFor(world))

	var ann map[int]asn.ASN
	switch e.Method {
	case "rtaa":
		ann = rtaa.Annotate(graph, world.Rel)
	case "bdrmapit":
		an := &bdrmapit.Annotator{Graph: graph, Rel: world.Rel, Orgs: world.Orgs, IXPs: ixpSet(world)}
		ann = an.Annotate()
	default:
		return nil, fmt.Errorf("experiments: unknown method %q", e.Method)
	}
	snap := itdk.FromGraph(graph, ann, e.Name, e.Method)
	items := snap.TrainingItems()
	learner := &core.Learner{}
	ncs, err := learner.LearnAll(ctx, list, items)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", e.Name, err)
	}
	return &Run{
		Era: e, World: world, Graph: graph, Snapshot: snap,
		Items: items, NCs: ncs, Annotations: ann,
	}, nil
}

// RunPDBEra builds a PeeringDB training set from an already-built world
// and learns NCs from the member-recorded ASNs.
func RunPDBEra(ctx context.Context, name string, world *topo.Internet, seed int64, list *psl.List) (*Run, error) {
	snap := peeringdb.Synthesize(world, name, peeringdb.SynthOptions{
		Seed:        seed,
		ErrorRate:   0.02,
		OrgMainRate: 0.02,
	})
	items := snap.TrainingItems(ptrFor(world))
	learner := &core.Learner{}
	ncs, err := learner.LearnAll(ctx, list, items)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", name, err)
	}
	return &Run{
		Era:   Era{Name: name, Method: "peeringdb"},
		World: world, Items: items, NCs: ncs,
	}, nil
}

// ClassCounts tallies NC classifications.
type ClassCounts struct {
	Good, Promising, Poor int
	Usable, Single        int
}

// Count classifies a learned NC set.
func Count(ncs []*core.NC) ClassCounts {
	var c ClassCounts
	for _, nc := range ncs {
		switch nc.Class {
		case core.Good:
			c.Good++
		case core.Promising:
			c.Promising++
		default:
			c.Poor++
		}
		if nc.Class.Usable() {
			c.Usable++
		}
		if nc.Single {
			c.Single++
		}
	}
	return c
}
