package experiments

import (
	"context"
	"testing"

	"hoiho/internal/asn"
	"hoiho/internal/bdrmapit"
	"hoiho/internal/core"
	"hoiho/internal/extract"
	"hoiho/internal/itdk"
	"hoiho/internal/psl"
	"hoiho/internal/rtaa"
	"hoiho/internal/topo"
)

// testScale keeps integration tests fast while exercising the full
// pipeline; the full-size reproduction runs at Scale(1).
const testScale = Scale(0.35)

func TestEraDefinitions(t *testing.T) {
	eras := ITDKEras()
	if len(eras) != 17 {
		t.Fatalf("eras = %d, want 17", len(eras))
	}
	rtaaN, bdrN := 0, 0
	for i, e := range eras {
		if e.Index != i {
			t.Errorf("era %d index %d", i, e.Index)
		}
		switch e.Method {
		case "rtaa":
			rtaaN++
		case "bdrmapit":
			bdrN++
		default:
			t.Errorf("unknown method %q", e.Method)
		}
	}
	// The paper: 12 ITDKs used RouterToAsAssignment, 5 used bdrmapIT.
	if rtaaN != 12 || bdrN != 5 {
		t.Errorf("methods = %d rtaa, %d bdrmapit; want 12/5", rtaaN, bdrN)
	}
	if eras[0].Name != "itdk-2010-07" || eras[16].Name != "itdk-2020-01" {
		t.Errorf("era names wrong: %s .. %s", eras[0].Name, eras[16].Name)
	}
}

// trainPPV measures, over named ASN-embedding interfaces of annotated
// nodes, how often the training annotation matches the embedded ASN.
func trainPPV(world *topo.Internet, g *itdk.Graph, ann map[int]asn.ASN) float64 {
	match, total := 0, 0
	for _, n := range g.Nodes {
		if ann[n.ID] == asn.None {
			continue
		}
		for _, a := range n.Ifaces {
			ifc := world.Interface(a)
			if ifc == nil || ifc.EmbeddedASN == asn.None || ifc.Hostname == "" {
				continue
			}
			total++
			if ann[n.ID] == ifc.EmbeddedASN {
				match++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(match) / float64(total)
}

// TestMethodQualityOrdering verifies the paper's central premise on the
// same observed world: conventions learned from bdrmapIT annotations
// agree with their training data more often than those learned from
// RouterToAsAssignment (figure 6's gap, measured the way the paper does
// — over usable NCs).
func TestMethodQualityOrdering(t *testing.T) {
	list := psl.Default()
	e := ITDKEras()[16]
	world, err := topo.Build(eraConfig(e, testScale))
	if err != nil {
		t.Fatal(err)
	}
	corpus := world.TraceAll()
	al := itdk.TruthAliases(world).Degrade(1, aliasCompleteness(e))
	g := itdk.BuildGraph(corpus, al, world.Table, ptrFor(world))
	learner := &core.Learner{}

	measure := func(method string, ann map[int]asn.ASN) float64 {
		snap := itdk.FromGraph(g, ann, "cmp", method)
		items := snap.TrainingItems()
		ncs, err := learner.LearnAll(context.Background(), list, items)
		if err != nil {
			t.Fatal(err)
		}
		ppv, _, m := PPVOnTraining(extract.New(ncs, extract.UsableOnly()), items, list, world.Orgs, false)
		t.Logf("%s: ncs=%d ppv=%.3f matches=%d", method, len(ncs), ppv, m)
		return ppv
	}
	rt := measure("rtaa", rtaa.Annotate(g, world.Rel))
	an := &bdrmapit.Annotator{Graph: g, Rel: world.Rel, Orgs: world.Orgs, IXPs: ixpSet(world)}
	bd := measure("bdrmapit", an.Annotate())
	if bd <= rt {
		t.Errorf("bdrmapIT PPV (%.3f) should beat RTAA's (%.3f)", bd, rt)
	}
	if bd < 0.78 || bd > 0.97 {
		t.Errorf("bdrmapIT PPV %.3f outside plausible band", bd)
	}
	if rt < 0.55 || rt > 0.92 {
		t.Errorf("RTAA PPV %.3f outside plausible band", rt)
	}
}

// TestEraGrowth: the number of good NCs grows across the decade
// (figure 5's headline shape) and the late-era PPV lands near the
// paper's bdrmapIT band.
func TestEraGrowth(t *testing.T) {
	list := psl.Default()
	eras := ITDKEras()
	early, err := RunITDKEra(context.Background(), eras[0], testScale, list)
	if err != nil {
		t.Fatal(err)
	}
	late, err := RunITDKEra(context.Background(), eras[16], testScale, list)
	if err != nil {
		t.Fatal(err)
	}
	ce, cl := Count(early.NCs), Count(late.NCs)
	t.Logf("early: %+v late: %+v", ce, cl)
	if cl.Good <= ce.Good {
		t.Errorf("good NCs should grow: early %d late %d", ce.Good, cl.Good)
	}
	if cl.Good < 5 {
		t.Errorf("late era good = %d, too few even at test scale", cl.Good)
	}
	lateCorpus := extract.New(late.NCs, extract.UsableOnly())
	ppv, _, m := PPVOnTraining(lateCorpus, late.Items, list, late.World.Orgs, false)
	if m == 0 || ppv < 0.7 || ppv > 0.97 {
		t.Errorf("late-era PPV = %.3f over %d matches", ppv, m)
	}
	// Sibling credit never lowers PPV and usually raises it.
	sib, _, _ := PPVOnTraining(lateCorpus, late.Items, list, late.World.Orgs, true)
	if sib < ppv {
		t.Errorf("sibling credit lowered PPV: %.3f < %.3f", sib, ppv)
	}
}

// TestPDBQuality: PeeringDB-recorded training ASNs beat heuristic
// inferences (the paper's 96% PPV argument).
func TestPDBQuality(t *testing.T) {
	list := psl.Default()
	e := ITDKEras()[16]
	itdkRun, err := RunITDKEra(context.Background(), e, testScale, list)
	if err != nil {
		t.Fatal(err)
	}
	pdbRun, err := RunPDBEra(context.Background(), "pdb-test", itdkRun.World, 501, list)
	if err != nil {
		t.Fatal(err)
	}
	if len(pdbRun.NCs) == 0 {
		t.Fatal("no PDB NCs learned")
	}
	pdbPPV, _, m := PPVOnTraining(extract.New(pdbRun.NCs, extract.UsableOnly()), pdbRun.Items, list, itdkRun.World.Orgs, false)
	itdkPPV, _, _ := PPVOnTraining(extract.New(itdkRun.NCs, extract.UsableOnly()), itdkRun.Items, list, itdkRun.World.Orgs, false)
	t.Logf("pdb=%.3f (m=%d) itdk=%.3f", pdbPPV, m, itdkPPV)
	if pdbPPV <= itdkPPV {
		t.Errorf("PDB PPV (%.3f) should exceed ITDK PPV (%.3f)", pdbPPV, itdkPPV)
	}
	if pdbPPV < 0.9 {
		t.Errorf("PDB PPV = %.3f, want >= 0.9", pdbPPV)
	}
}

// TestSection5: the modified bdrmapIT raises extracted/inferred agreement
// and its decisions are mostly correct against ground truth (table 2's
// 92.5%).
func TestSection5(t *testing.T) {
	list := psl.Default()
	run, err := RunITDKEra(context.Background(), ITDKEras()[16], testScale, list)
	if err != nil {
		t.Fatal(err)
	}
	res := RunSection5(context.Background(), run)
	t.Logf("agreement %.3f -> %.3f (%s -> %s), decisions=%d used=%d",
		res.AgreementBefore, res.AgreementAfter,
		OneIn(res.ErrOneInBefore), OneIn(res.ErrOneInAfter),
		res.Decisions, res.UsedTotal)
	if res.AgreementAfter <= res.AgreementBefore {
		t.Errorf("agreement did not improve: %.3f -> %.3f", res.AgreementBefore, res.AgreementAfter)
	}
	if res.AgreementAfter < 0.84 {
		t.Errorf("agreement after = %.3f, want >= 0.84", res.AgreementAfter)
	}
	if res.AgreementAfter-res.AgreementBefore < 0.03 {
		t.Errorf("improvement too small: %.3f -> %.3f", res.AgreementBefore, res.AgreementAfter)
	}
	if res.Decisions == 0 {
		t.Fatal("no decisions")
	}
	rows, correct, total := Table2(run, res.Result)
	if total == 0 {
		t.Fatal("no validated decisions")
	}
	frac := float64(correct) / float64(total)
	t.Logf("table2: correct %d/%d = %.3f rows=%+v", correct, total, frac, rows)
	if frac < 0.75 {
		t.Errorf("correct-decision rate = %.3f, want >= 0.75", frac)
	}
	if len(rows) == 0 {
		t.Error("no table 2 rows")
	}
}

// TestFigure7: applying usable NCs to the full PTR space matches more
// hostnames than the traceroute-observed subset (§7's 5.4K -> 22.5K).
func TestFigure7(t *testing.T) {
	list := psl.Default()
	run, err := RunITDKEra(context.Background(), ITDKEras()[16], testScale, list)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Figure7(context.Background(), run)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("observed=%d full=%d factor=%.2f", res.ObservedMatches, res.FullMatches, res.Factor)
	if res.ObservedMatches == 0 {
		t.Fatal("no observed matches")
	}
	if res.FullMatches <= res.ObservedMatches {
		t.Errorf("full space (%d) should exceed observed (%d)", res.FullMatches, res.ObservedMatches)
	}
}

// TestTable1: the taxonomy covers multiple styles and percentages sum
// to ~100 within each column.
func TestTable1(t *testing.T) {
	list := psl.Default()
	itdkRun, err := RunITDKEra(context.Background(), ITDKEras()[16], testScale, list)
	if err != nil {
		t.Fatal(err)
	}
	pdbRun, err := RunPDBEra(context.Background(), "pdb-t1", itdkRun.World, 502, list)
	if err != nil {
		t.Fatal(err)
	}
	rows := Table1(itdkRun, pdbRun)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	var usableSum, singleSum float64
	styles := 0
	for _, r := range rows {
		usableSum += r.UsablePct
		singleSum += r.SinglePct
		if r.UsableCount > 0 {
			styles++
		}
		t.Logf("%-8s usable %5.1f%% (%d)  single %5.1f%% (%d)",
			r.Style, r.UsablePct, r.UsableCount, r.SinglePct, r.SingleCount)
	}
	if usableSum < 99.0 || usableSum > 101.0 {
		t.Errorf("usable percentages sum to %.1f", usableSum)
	}
	if styles < 3 {
		t.Errorf("only %d styles represented", styles)
	}
}

// TestSuffixOrigin: most single NCs belong to the organization whose ASN
// they extract (§4's 79.5%).
func TestSuffixOrigin(t *testing.T) {
	list := psl.Default()
	run, err := RunITDKEra(context.Background(), ITDKEras()[16], testScale, list)
	if err != nil {
		t.Fatal(err)
	}
	own, other := SuffixOriginAnalysis(run)
	t.Logf("single NCs: ownOrg=%d other=%d", own, other)
	if own+other == 0 {
		t.Skip("no single NCs at this scale")
	}
	if own <= other {
		t.Errorf("most single NCs should belong to the extracted org: %d vs %d", own, other)
	}
}

// TestRunDeterminism: identical era runs produce identical NC sets.
func TestRunDeterminism(t *testing.T) {
	list := psl.Default()
	e := ITDKEras()[3]
	a, err := RunITDKEra(context.Background(), e, testScale, list)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunITDKEra(context.Background(), e, testScale, list)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.NCs) != len(b.NCs) {
		t.Fatalf("NC counts differ: %d vs %d", len(a.NCs), len(b.NCs))
	}
	for i := range a.NCs {
		sa, sb := a.NCs[i].Strings(), b.NCs[i].Strings()
		if a.NCs[i].Suffix != b.NCs[i].Suffix || len(sa) != len(sb) {
			t.Fatalf("NC %d differs", i)
		}
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("NC %d regex %d differs: %s vs %s", i, j, sa[j], sb[j])
			}
		}
	}
}

// TestAblationReasonableness compares the §5 reasonableness rule against
// "always trust the hostname" on ground truth: trusting everything must
// accept more wrong hostnames.
func TestAblationReasonableness(t *testing.T) {
	list := psl.Default()
	run, err := RunITDKEra(context.Background(), ITDKEras()[16], testScale, list)
	if err != nil {
		t.Fatal(err)
	}
	res := RunSection5(context.Background(), run)
	wrongUsed, wrongTotal := 0, 0
	for _, d := range res.Result.Decisions {
		ifc := run.World.Interface(d.Addr)
		if ifc == nil {
			continue
		}
		truth := ifc.Router.Owner
		if d.Extracted != truth && !run.World.Orgs.Siblings(d.Extracted, truth) {
			wrongTotal++
			if d.Used {
				wrongUsed++
			}
		}
	}
	t.Logf("wrong hostnames: %d, used (FP) %d", wrongTotal, wrongUsed)
	if wrongTotal == 0 {
		t.Skip("no wrong hostnames among decisions at this scale")
	}
	// "Always trust the hostname" would use all wrongTotal; the
	// reasonableness rule must reject at least some. (It cannot reject
	// all: the paper's own FPs are wrong hostnames that pass the test
	// because the extracted ASN is coincidentally a provider of the
	// actual owner, and figure-2-style supplier conventions hit exactly
	// that case.)
	if wrongUsed >= wrongTotal {
		t.Errorf("reasonableness rejected nothing: %d/%d wrong hostnames used", wrongUsed, wrongTotal)
	}
}

func BenchmarkRunEraSmall(b *testing.B) {
	list := psl.Default()
	e := ITDKEras()[16]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunITDKEra(context.Background(), e, Scale(0.2), list); err != nil {
			b.Fatal(err)
		}
	}
}
