package experiments

import (
	"context"
	"testing"
)

func TestFormatTable(t *testing.T) {
	got := FormatTable([]string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	want := "| a | b |\n| --- | --- |\n| 1 | 2 |\n| 3 | 4 |\n"
	if got != want {
		t.Errorf("FormatTable:\n%q\nwant\n%q", got, want)
	}
}

func TestPct(t *testing.T) {
	if Pct(1, 2) != "50.0%" || Pct(0, 0) != "n/a" || Pct(3, 3) != "100.0%" {
		t.Error("Pct wrong")
	}
}

func TestOneIn(t *testing.T) {
	if OneIn(7.94) != "1/7.9" || OneIn(0) != "1/inf" || OneIn(-1) != "1/inf" {
		t.Errorf("OneIn wrong: %s %s", OneIn(7.94), OneIn(0))
	}
}

func TestScaleApply(t *testing.T) {
	if Scale(0.5).apply(10) != 5 || Scale(0.01).apply(10) != 1 || Scale(2).apply(3) != 6 {
		t.Error("Scale.apply wrong")
	}
}

func TestCountClassifications(t *testing.T) {
	run, err := RunITDKEra(context.Background(), ITDKEras()[16], 0.2, pslDefault())
	if err != nil {
		t.Fatal(err)
	}
	c := Count(run.NCs)
	if c.Good+c.Promising+c.Poor != len(run.NCs) {
		t.Errorf("counts do not partition: %+v over %d NCs", c, len(run.NCs))
	}
	if c.Usable != c.Good+c.Promising {
		t.Errorf("usable != good+promising: %+v", c)
	}
}
