package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"hoiho/internal/asn"
	"hoiho/internal/core"
	"hoiho/internal/extract"
	"hoiho/internal/psl"
)

// Figure5Row is one point of figure 5: NC classification counts per
// training set.
type Figure5Row struct {
	Name      string
	Method    string
	Good      int
	Promising int
	Poor      int
}

// Figure6Row is one point of figure 6: agreement between training and
// extracted ASNs over the usable NCs, with and without sibling credit.
type Figure6Row struct {
	Name       string
	Method     string
	PPV        float64
	PPVSibling float64
	TPs        int
	Matches    int
}

// PPVOnTraining computes figure 6's quantity for one run: aggregate
// TP/(TP+FP) of the corpus's NCs evaluated on their training items. The
// caller builds the corpus (typically extract.New(ncs,
// extract.UsableOnly()), shared across sibling-credit variants) and the
// items are grouped by suffix exactly once. With sibling credit,
// extractions whose ASN is a sibling of the training ASN count as
// agreeing (the paper: siblings added ~1% for RTAA and ~2% for bdrmapIT
// inferences).
func PPVOnTraining(corpus *extract.Corpus, items []core.Item, list *psl.List, orgs *asn.Orgs, siblingCredit bool) (ppv float64, tps, matches int) {
	groups, _ := core.GroupItems(list, items)
	for _, suffix := range corpus.Suffixes() {
		cv, ok := corpus.Conventions(suffix)
		if !ok {
			continue
		}
		set, err := core.NewSet(suffix, groups[suffix], core.Options{})
		if err != nil {
			continue
		}
		_, exts := set.EvaluateDetailed(cv.Regexes()...)
		for _, e := range exts {
			switch e.Outcome {
			case core.OutcomeTP:
				tps++
				matches++
			case core.OutcomeFP:
				matches++
				if siblingCredit && orgs != nil {
					if a, err := asn.Parse(e.ASN); err == nil && orgs.Siblings(a, e.Item.ASN) {
						tps++
					}
				}
			}
		}
	}
	if matches == 0 {
		return 0, 0, 0
	}
	return float64(tps) / float64(matches), tps, matches
}

// Figure5 runs every ITDK era plus the PeeringDB snapshots and returns
// the classification series. The final two worlds double as the
// PeeringDB sources. It also returns the runs for reuse by downstream
// experiments.
func Figure5(ctx context.Context, scale Scale, list *psl.List) ([]Figure5Row, []Figure6Row, []*Run, error) {
	var f5 []Figure5Row
	var f6 []Figure6Row
	var runs []*Run
	for _, e := range ITDKEras() {
		run, err := RunITDKEra(ctx, e, scale, list)
		if err != nil {
			return nil, nil, nil, err
		}
		runs = append(runs, run)
		c := Count(run.NCs)
		f5 = append(f5, Figure5Row{Name: e.Name, Method: e.Method, Good: c.Good, Promising: c.Promising, Poor: c.Poor})
		corpus := extract.New(run.NCs, extract.UsableOnly())
		ppv, tps, m := PPVOnTraining(corpus, run.Items, list, run.World.Orgs, false)
		sib, _, _ := PPVOnTraining(corpus, run.Items, list, run.World.Orgs, true)
		f6 = append(f6, Figure6Row{Name: e.Name, Method: e.Method, PPV: ppv, PPVSibling: sib, TPs: tps, Matches: m})
	}
	// Two PeeringDB snapshots from the two most recent worlds.
	pdbWorlds := []*Run{runs[len(runs)-2], runs[len(runs)-1]}
	pdbNames := []string{"pdb-2019-08", "pdb-2020-02"}
	for i, src := range pdbWorlds {
		run, err := RunPDBEra(ctx, pdbNames[i], src.World, 500+int64(i), list)
		if err != nil {
			return nil, nil, nil, err
		}
		runs = append(runs, run)
		c := Count(run.NCs)
		f5 = append(f5, Figure5Row{Name: run.Era.Name, Method: "peeringdb", Good: c.Good, Promising: c.Promising, Poor: c.Poor})
		corpus := extract.New(run.NCs, extract.UsableOnly())
		ppv, tps, m := PPVOnTraining(corpus, run.Items, list, src.World.Orgs, false)
		sib, _, _ := PPVOnTraining(corpus, run.Items, list, src.World.Orgs, true)
		f6 = append(f6, Figure6Row{Name: run.Era.Name, Method: "peeringdb", PPV: ppv, PPVSibling: sib, TPs: tps, Matches: m})
	}
	return f5, f6, runs, nil
}

// Table1Row is one taxonomy line: the share of usable (multi-ASN) and
// single (own-ASN) conventions in each style.
type Table1Row struct {
	Style       core.Style
	UsablePct   float64
	SinglePct   float64
	UsableCount int
	SingleCount int
}

// Table1 classifies the union of usable and single NCs from the final
// ITDK and PeeringDB runs into the paper's taxonomy.
func Table1(itdkRun, pdbRun *Run) []Table1Row {
	// Union by suffix; the ITDK training set takes precedence (the paper
	// observed that larger training sets yield less specific regexes).
	bySuffix := make(map[string]*core.NC)
	for _, nc := range pdbRun.NCs {
		bySuffix[nc.Suffix] = nc
	}
	for _, nc := range itdkRun.NCs {
		bySuffix[nc.Suffix] = nc
	}
	suffixes := make([]string, 0, len(bySuffix))
	for suf := range bySuffix {
		suffixes = append(suffixes, suf)
	}
	sort.Strings(suffixes)
	var usable, single []*core.NC
	for _, suf := range suffixes {
		nc := bySuffix[suf]
		switch {
		case nc.Single:
			single = append(single, nc)
		case nc.Class.Usable():
			usable = append(usable, nc)
		}
	}
	counts := make(map[core.Style][2]int)
	for _, nc := range usable {
		c := counts[core.StyleOf(nc)]
		c[0]++
		counts[core.StyleOf(nc)] = c
	}
	for _, nc := range single {
		c := counts[core.StyleOf(nc)]
		c[1]++
		counts[core.StyleOf(nc)] = c
	}
	styles := []core.Style{core.StyleSimple, core.StyleStart, core.StyleEnd, core.StyleBare, core.StyleComplex}
	rows := make([]Table1Row, 0, len(styles))
	for _, st := range styles {
		c := counts[st]
		row := Table1Row{Style: st, UsableCount: c[0], SingleCount: c[1]}
		if len(usable) > 0 {
			row.UsablePct = 100 * float64(c[0]) / float64(len(usable))
		}
		if len(single) > 0 {
			row.SinglePct = 100 * float64(c[1]) / float64(len(single))
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable renders rows of cells as a markdown table.
func FormatTable(header []string, rows [][]string) string {
	var sb strings.Builder
	sb.WriteString("| " + strings.Join(header, " | ") + " |\n")
	seps := make([]string, len(header))
	for i := range seps {
		seps[i] = "---"
	}
	sb.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, r := range rows {
		sb.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return sb.String()
}

// SuffixOriginAnalysis reproduces §4's single-NC investigation: the
// share of single NCs whose suffix belongs to the organization of the
// extracted ASN.
func SuffixOriginAnalysis(run *Run) (ownOrg, other int) {
	suffixOwner := make(map[string]asn.ASN)
	for _, a := range run.World.ASes {
		suffixOwner[a.Suffix] = a.ASN
	}
	// Group once, index once: each suffix's items are re-extracted through
	// the corpus, which resolves them back to that suffix's own NC.
	corpus := extract.New(run.NCs)
	groups, _ := core.GroupItems(psl.Default(), run.Items)
	for _, suffix := range corpus.Suffixes() {
		cv, ok := corpus.Conventions(suffix)
		if !ok {
			continue
		}
		// Only conventions with enough matches constitute the paper's
		// "single NCs"; degenerate one-extraction regexes are noise.
		if !cv.Single() || cv.Eval().TP < 3 {
			continue
		}
		// Dominant extracted ASN over the suffix's items.
		votes := make(map[asn.ASN]int)
		for _, it := range groups[suffix] {
			if m, ok := corpus.Extract(context.Background(), it.Hostname); ok {
				votes[m.ASN]++
			}
		}
		if len(votes) == 0 {
			continue
		}
		var best asn.ASN
		bestN := -1
		keys := make([]asn.ASN, 0, len(votes))
		for a := range votes {
			keys = append(keys, a)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, a := range keys {
			if votes[a] > bestN {
				best, bestN = a, votes[a]
			}
		}
		if owner, ok := suffixOwner[suffix]; ok && run.World.Orgs.Siblings(owner, best) {
			ownOrg++
		} else {
			other++
		}
	}
	return ownOrg, other
}

// Pct formats a ratio as a percentage string.
func Pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}
