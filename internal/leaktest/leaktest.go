// Package leaktest is the shared goroutine-leak check used by the chaos
// suites (internal/core, internal/extract, internal/serve). Each suite
// snapshots the goroutine count before spinning up a pipeline and, after
// tearing it down, polls until the count returns to the baseline — any
// worker, chunker, or reorderer that outlived its cancellation shows up
// as a timeout with a full stack dump for the post-mortem.
//
// The check is count-based rather than stack-diff-based: it tolerates
// runtime-internal goroutines that were already running at snapshot time
// but catches everything the code under test spawned and failed to reap.
package leaktest

import (
	"runtime"
	"testing"
	"time"
)

// timeout bounds how long Wait polls before declaring a leak. Drains in
// the pipelines are bounded by contexts, so a healthy teardown finishes
// in milliseconds; ten seconds absorbs CI scheduling noise.
const timeout = 10 * time.Second

// Check snapshots the current goroutine count and returns a function
// that fails t if the count has not returned to that baseline within the
// package timeout. Use it around the code under test:
//
//	defer leaktest.Check(t)()
//	... spawn and tear down the pipeline ...
func Check(t testing.TB) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() { Wait(t, base) }
}

// Wait polls until the process goroutine count drops back to base,
// dumping all goroutine stacks on timeout — the leak report.
func Wait(t testing.TB, base int) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not drain: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
