package bgp

import (
	"fmt"
	"net/netip"
)

// Allocator hands out consecutive, non-overlapping subnets from a parent
// prefix. The synthetic topology generator uses one allocator per AS
// block to carve loopbacks and /30 or /31 interconnection subnets, the
// address-efficiency practice the paper notes operators follow for
// private interconnection (§2.1).
type Allocator struct {
	parent netip.Prefix
	next   uint32 // next free address within parent
	limit  uint32 // one past the last address of parent
}

// NewAllocator returns an allocator carving from parent (IPv4 only).
func NewAllocator(parent netip.Prefix) (*Allocator, error) {
	if !parent.Addr().Is4() {
		return nil, fmt.Errorf("bgp: allocator parent %v is not IPv4", parent)
	}
	parent = parent.Masked()
	base := ipv4Bits(parent.Addr())
	size := uint32(1) << (32 - parent.Bits())
	return &Allocator{parent: parent, next: base, limit: base + size}, nil
}

// Parent returns the prefix being carved.
func (a *Allocator) Parent() netip.Prefix { return a.parent }

// Subnet allocates the next aligned subnet of the given length (bits),
// e.g. Subnet(30) yields consecutive /30s. It fails when the parent is
// exhausted or bits is outside (parent length, 32].
func (a *Allocator) Subnet(bits int) (netip.Prefix, error) {
	if bits <= a.parent.Bits() || bits > 32 {
		return netip.Prefix{}, fmt.Errorf("bgp: subnet length /%d invalid for parent %v", bits, a.parent)
	}
	size := uint32(1) << (32 - bits)
	// Align upward.
	start := (a.next + size - 1) &^ (size - 1)
	if start < a.next || start+size > a.limit || start+size < start {
		return netip.Prefix{}, fmt.Errorf("bgp: parent %v exhausted", a.parent)
	}
	a.next = start + size
	return netip.PrefixFrom(bitsToAddr(start), bits), nil
}

// Addr allocates a single address (equivalent to Subnet(32) but returns
// the address).
func (a *Allocator) Addr() (netip.Addr, error) {
	p, err := a.Subnet(32)
	if err != nil {
		return netip.Addr{}, err
	}
	return p.Addr(), nil
}

// Remaining returns how many addresses are still unallocated.
func (a *Allocator) Remaining() int {
	return int(a.limit - a.next)
}

// PointToPoint allocates a /30 and returns its two usable addresses
// (network+1 and network+2), the convention for private interconnection
// links. The paper's figure 1 shows the supplying AS assigning one of
// the pair to its neighbor's interface.
func (a *Allocator) PointToPoint() (supplier, neighbor netip.Addr, sub netip.Prefix, err error) {
	sub, err = a.Subnet(30)
	if err != nil {
		return netip.Addr{}, netip.Addr{}, netip.Prefix{}, err
	}
	base := ipv4Bits(sub.Addr())
	return bitsToAddr(base + 1), bitsToAddr(base + 2), sub, nil
}
