// Package bgp implements the routing-table substrate the router-ownership
// heuristics rely on: an IPv4 longest-prefix-match table mapping address
// space to origin ASes, and an address allocator the synthetic topology
// generator uses to carve prefixes the way operators do (a block per AS,
// /30 or /31 subnets for private interconnection, per §2.1 of the paper).
package bgp

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strings"

	"hoiho/internal/asn"
)

// Table is an IPv4 prefix table with longest-prefix-match lookup,
// implemented as a binary trie. The zero value is an empty table.
type Table struct {
	root *node
	n    int
}

type node struct {
	child  [2]*node
	origin asn.ASN
	set    bool
	prefix netip.Prefix
}

// Announce inserts prefix with the given origin AS, replacing any
// previous origin for exactly that prefix. Only IPv4 prefixes are
// accepted.
func (t *Table) Announce(prefix netip.Prefix, origin asn.ASN) error {
	if !prefix.Addr().Is4() {
		return fmt.Errorf("bgp: prefix %v is not IPv4", prefix)
	}
	prefix = prefix.Masked()
	if t.root == nil {
		t.root = &node{}
	}
	cur := t.root
	addr := ipv4Bits(prefix.Addr())
	for i := 0; i < prefix.Bits(); i++ {
		b := (addr >> (31 - i)) & 1
		if cur.child[b] == nil {
			cur.child[b] = &node{}
		}
		cur = cur.child[b]
	}
	if !cur.set {
		t.n++
	}
	cur.set = true
	cur.origin = origin
	cur.prefix = prefix
	return nil
}

// Withdraw removes exactly prefix from the table, reporting whether it
// was present.
func (t *Table) Withdraw(prefix netip.Prefix) bool {
	if !prefix.Addr().Is4() || t.root == nil {
		return false
	}
	prefix = prefix.Masked()
	cur := t.root
	addr := ipv4Bits(prefix.Addr())
	for i := 0; i < prefix.Bits(); i++ {
		b := (addr >> (31 - i)) & 1
		if cur.child[b] == nil {
			return false
		}
		cur = cur.child[b]
	}
	if !cur.set {
		return false
	}
	cur.set = false
	cur.origin = asn.None
	t.n--
	return true
}

// Lookup returns the longest matching prefix for addr and its origin.
// ok is false when no prefix covers addr.
func (t *Table) Lookup(addr netip.Addr) (netip.Prefix, asn.ASN, bool) {
	if !addr.Is4() || t.root == nil {
		return netip.Prefix{}, asn.None, false
	}
	bits := ipv4Bits(addr)
	cur := t.root
	var best *node
	if cur.set {
		best = cur
	}
	for i := 0; i < 32; i++ {
		b := (bits >> (31 - i)) & 1
		cur = cur.child[b]
		if cur == nil {
			break
		}
		if cur.set {
			best = cur
		}
	}
	if best == nil {
		return netip.Prefix{}, asn.None, false
	}
	return best.prefix, best.origin, true
}

// Origin returns the origin AS of the longest matching prefix, or
// asn.None when addr is unrouted.
func (t *Table) Origin(addr netip.Addr) asn.ASN {
	_, origin, ok := t.Lookup(addr)
	if !ok {
		return asn.None
	}
	return origin
}

// Len returns the number of announced prefixes.
func (t *Table) Len() int { return t.n }

// Entry is one announced prefix.
type Entry struct {
	Prefix netip.Prefix
	Origin asn.ASN
}

// Entries returns all announcements sorted by prefix address then length.
func (t *Table) Entries() []Entry {
	var out []Entry
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.set {
			out = append(out, Entry{n.prefix, n.origin})
		}
		walk(n.child[0])
		walk(n.child[1])
	}
	walk(t.root)
	sort.Slice(out, func(i, j int) bool {
		ai, aj := out[i].Prefix.Addr(), out[j].Prefix.Addr()
		if ai != aj {
			return ai.Less(aj)
		}
		return out[i].Prefix.Bits() < out[j].Prefix.Bits()
	})
	return out
}

// WriteTo serializes the table as "prefix|origin" lines.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, e := range t.Entries() {
		c, err := fmt.Fprintf(w, "%s|%d\n", e.Prefix, e.Origin)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ParseTable reads "prefix|origin" lines ('#' comments ignored).
func ParseTable(r io.Reader) (*Table, error) {
	t := &Table{}
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		p, o, ok := strings.Cut(line, "|")
		if !ok {
			return nil, fmt.Errorf("bgp: line %d: want prefix|origin", lineno)
		}
		prefix, err := netip.ParsePrefix(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bgp: line %d: %w", lineno, err)
		}
		origin, err := asn.Parse(o)
		if err != nil {
			return nil, fmt.Errorf("bgp: line %d: %w", lineno, err)
		}
		if err := t.Announce(prefix, origin); err != nil {
			return nil, fmt.Errorf("bgp: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

func ipv4Bits(addr netip.Addr) uint32 {
	b := addr.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func bitsToAddr(bits uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(bits >> 24), byte(bits >> 16), byte(bits >> 8), byte(bits)})
}
