package bgp

import (
	"bytes"
	"math/rand"
	"net/netip"
	"strings"
	"testing"

	"hoiho/internal/asn"
)

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func mustAddr(s string) netip.Addr     { return netip.MustParseAddr(s) }

func TestLongestPrefixMatch(t *testing.T) {
	var tbl Table
	checks := []struct {
		prefix string
		origin asn.ASN
	}{
		{"10.0.0.0/8", 100},
		{"10.1.0.0/16", 200},
		{"10.1.2.0/24", 300},
		{"10.1.2.0/30", 400},
		{"0.0.0.0/0", 1},
	}
	for _, c := range checks {
		if err := tbl.Announce(mustPrefix(c.prefix), c.origin); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Len() != 5 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	cases := []struct {
		addr   string
		origin asn.ASN
		prefix string
	}{
		{"10.1.2.1", 400, "10.1.2.0/30"},
		{"10.1.2.5", 300, "10.1.2.0/24"},
		{"10.1.3.1", 200, "10.1.0.0/16"},
		{"10.2.0.1", 100, "10.0.0.0/8"},
		{"192.0.2.1", 1, "0.0.0.0/0"},
	}
	for _, c := range cases {
		p, o, ok := tbl.Lookup(mustAddr(c.addr))
		if !ok || o != c.origin || p != mustPrefix(c.prefix) {
			t.Errorf("Lookup(%s) = %v,%v,%v want %v,%v", c.addr, p, o, ok, c.prefix, c.origin)
		}
	}
}

func TestLookupMisses(t *testing.T) {
	var tbl Table
	if _, _, ok := tbl.Lookup(mustAddr("10.0.0.1")); ok {
		t.Error("empty table should miss")
	}
	if err := tbl.Announce(mustPrefix("10.0.0.0/8"), 100); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := tbl.Lookup(mustAddr("11.0.0.1")); ok {
		t.Error("uncovered addr should miss")
	}
	if _, _, ok := tbl.Lookup(mustAddr("2001:db8::1")); ok {
		t.Error("IPv6 should miss")
	}
	if tbl.Origin(mustAddr("11.0.0.1")) != asn.None {
		t.Error("Origin should be None for miss")
	}
	if tbl.Origin(mustAddr("10.5.5.5")) != 100 {
		t.Error("Origin should be 100")
	}
}

func TestAnnounceReplaceAndWithdraw(t *testing.T) {
	var tbl Table
	p := mustPrefix("10.0.0.0/8")
	if err := tbl.Announce(p, 100); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Announce(p, 200); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 || tbl.Origin(mustAddr("10.0.0.1")) != 200 {
		t.Error("replace failed")
	}
	if !tbl.Withdraw(p) || tbl.Len() != 0 {
		t.Error("withdraw failed")
	}
	if tbl.Withdraw(p) {
		t.Error("double withdraw should be false")
	}
	if tbl.Withdraw(mustPrefix("11.0.0.0/8")) {
		t.Error("withdraw of absent prefix should be false")
	}
	if err := tbl.Announce(mustPrefix("2001:db8::/32"), 100); err == nil {
		t.Error("IPv6 announce should error")
	}
}

func TestAnnounceMasksHostBits(t *testing.T) {
	var tbl Table
	if err := tbl.Announce(mustPrefix("10.1.2.3/24"), 100); err != nil {
		t.Fatal(err)
	}
	p, _, ok := tbl.Lookup(mustAddr("10.1.2.200"))
	if !ok || p != mustPrefix("10.1.2.0/24") {
		t.Errorf("Lookup = %v,%v", p, ok)
	}
}

func TestEntriesAndRoundTrip(t *testing.T) {
	var tbl Table
	for _, e := range []struct {
		p string
		o asn.ASN
	}{
		{"10.1.0.0/16", 2},
		{"10.0.0.0/8", 1},
		{"192.0.2.0/24", 3},
	} {
		if err := tbl.Announce(mustPrefix(e.p), e.o); err != nil {
			t.Fatal(err)
		}
	}
	es := tbl.Entries()
	if len(es) != 3 || es[0].Prefix != mustPrefix("10.0.0.0/8") || es[2].Origin != 3 {
		t.Fatalf("Entries = %v", es)
	}
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 || got.Origin(mustAddr("10.1.5.5")) != 2 {
		t.Error("round trip lost data")
	}
	for _, bad := range []string{"10.0.0.0/8", "x/8|1", "10.0.0.0/8|x", "2001:db8::/32|5"} {
		if _, err := ParseTable(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTable(%q) should error", bad)
		}
	}
}

// TestLookupAgainstLinearScan cross-checks the trie against a brute-force
// longest-match over random tables and probes.
func TestLookupAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		var tbl Table
		var entries []Entry
		for i := 0; i < 50; i++ {
			bits := 8 + rng.Intn(25) // /8../32
			raw := rng.Uint32()
			p := netip.PrefixFrom(bitsToAddr(raw), bits).Masked()
			o := asn.ASN(rng.Intn(1000) + 1)
			if err := tbl.Announce(p, o); err != nil {
				t.Fatal(err)
			}
			// mimic replace semantics in the reference copy
			replaced := false
			for j := range entries {
				if entries[j].Prefix == p {
					entries[j].Origin = o
					replaced = true
					break
				}
			}
			if !replaced {
				entries = append(entries, Entry{p, o})
			}
		}
		for probe := 0; probe < 200; probe++ {
			addr := bitsToAddr(rng.Uint32())
			var best *Entry
			for i := range entries {
				e := &entries[i]
				if e.Prefix.Contains(addr) && (best == nil || e.Prefix.Bits() > best.Prefix.Bits()) {
					best = e
				}
			}
			p, o, ok := tbl.Lookup(addr)
			if best == nil {
				if ok {
					t.Fatalf("trie found %v for %v; reference found none", p, addr)
				}
				continue
			}
			if !ok || p != best.Prefix || o != best.Origin {
				t.Fatalf("trie %v/%v/%v != reference %v for %v", p, o, ok, *best, addr)
			}
		}
	}
}

func TestAllocatorSubnets(t *testing.T) {
	a, err := NewAllocator(mustPrefix("10.0.0.0/24"))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := a.Subnet(30)
	if err != nil || p1 != mustPrefix("10.0.0.0/30") {
		t.Fatalf("p1 = %v, %v", p1, err)
	}
	p2, _ := a.Subnet(30)
	if p2 != mustPrefix("10.0.0.4/30") {
		t.Fatalf("p2 = %v", p2)
	}
	// A /28 after two /30s aligns to .16.
	p3, _ := a.Subnet(28)
	if p3 != mustPrefix("10.0.0.16/28") {
		t.Fatalf("p3 = %v", p3)
	}
	if a.Remaining() != 256-32 {
		t.Errorf("Remaining = %d", a.Remaining())
	}
	if _, err := a.Subnet(24); err == nil {
		t.Error("subnet >= parent length should error")
	}
	if _, err := a.Subnet(33); err == nil {
		t.Error("/33 should error")
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a, err := NewAllocator(mustPrefix("10.0.0.0/30"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := a.Addr(); err != nil {
			t.Fatalf("addr %d: %v", i, err)
		}
	}
	if _, err := a.Addr(); err == nil {
		t.Error("exhausted allocator should error")
	}
	if _, err := NewAllocator(mustPrefix("2001:db8::/32")); err == nil {
		t.Error("IPv6 parent should error")
	}
}

func TestPointToPoint(t *testing.T) {
	a, err := NewAllocator(mustPrefix("10.0.0.0/29"))
	if err != nil {
		t.Fatal(err)
	}
	sup, nbr, sub, err := a.PointToPoint()
	if err != nil {
		t.Fatal(err)
	}
	if sub != mustPrefix("10.0.0.0/30") || sup != mustAddr("10.0.0.1") || nbr != mustAddr("10.0.0.2") {
		t.Errorf("got %v %v %v", sup, nbr, sub)
	}
	sup2, nbr2, _, err := a.PointToPoint()
	if err != nil {
		t.Fatal(err)
	}
	if sup2 != mustAddr("10.0.0.5") || nbr2 != mustAddr("10.0.0.6") {
		t.Errorf("second p2p = %v %v", sup2, nbr2)
	}
	if _, _, _, err := a.PointToPoint(); err == nil {
		t.Error("exhausted p2p should error")
	}
}

func BenchmarkLookup(b *testing.B) {
	var tbl Table
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100000; i++ {
		p := netip.PrefixFrom(bitsToAddr(rng.Uint32()), 8+rng.Intn(17)).Masked()
		if err := tbl.Announce(p, asn.ASN(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		addrs[i] = bitsToAddr(rng.Uint32())
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(addrs[i%len(addrs)])
	}
}

func BenchmarkAnnounce(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	prefixes := make([]netip.Prefix, 4096)
	for i := range prefixes {
		prefixes[i] = netip.PrefixFrom(bitsToAddr(rng.Uint32()), 8+rng.Intn(17)).Masked()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tbl Table
		for _, p := range prefixes {
			if err := tbl.Announce(p, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
}
