package analysis

import (
	"go/token"
)

// hotalloc statically proves the PR 6 contract the benchgate measures:
// after Precompile, per-hostname extraction allocates nothing. It walks
// the typed call graph from Config.ZeroAllocRoots — following method
// values, interface dispatch, and closures, the edges the old
// ident-based graph missed — and flags every allocation site
// (allocSites in dataflow.go) in every reachable function.
//
// Two escape hatches, both spelled //hoiho:hotalloc <reason>:
//
//   - on a statement, the annotation budgets that one site (the batch
//     result slice, the worker closures — allocations that happen once
//     per call, not once per hostname);
//   - on a function declaration's doc comment, it marks the whole
//     function a budgeted cold region and stops traversal into its
//     callees (the compile-once fallbacks reached behind sync.Once).
//
// Function literals passed directly to (*sync.Once).Do are exempt
// without annotation: their bodies run once per Once no matter how hot
// the caller.
var hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no unbudgeted allocation reachable from the zero-alloc extraction roots",
	Verb: "hotalloc",
	Run:  runHotalloc,
}

func runHotalloc(p *Program) []Diagnostic {
	if len(p.Config.ZeroAllocRoots) == 0 {
		return nil
	}
	g := p.CallGraph()
	skip := func(n *Node) bool {
		if n.OnceBody {
			return true
		}
		if p.ann != nil {
			if _, ok := p.ann.take("hotalloc", nodePos(p, n)); ok {
				return true
			}
		}
		return false
	}
	reach := g.Reachable(p.Config.ZeroAllocRoots, skip)
	var out []Diagnostic
	for _, n := range g.Nodes { // g.Nodes is in deterministic build order
		root, ok := reach[n]
		if !ok {
			continue
		}
		for _, site := range allocSites(n.Pkg, n) {
			out = append(out, Diagnostic{
				Pos:     p.Fset.Position(site.Pos),
				Check:   "hotalloc",
				Message: "allocation on the zero-alloc path from " + root + ": " + site.Desc,
				Suggest: "//hoiho:hotalloc <why this allocation is budgeted>",
			})
		}
	}
	return out
}

// nodePos returns the position annotations attach to: the func keyword
// of a declaration (its doc comment sits on the lines above) or the
// literal's own position.
func nodePos(p *Program, n *Node) token.Position {
	if n.Decl != nil {
		return p.Fset.Position(n.Decl.Pos())
	}
	if n.Lit != nil {
		return p.Fset.Position(n.Lit.Pos())
	}
	return token.Position{}
}
