package analysis

import (
	"go/ast"
)

// rngseed enforces RNG discipline in deterministic packages: all
// randomness must flow through an explicitly seeded *rand.Rand
// (rand.New(rand.NewSource(seed))). The global math/rand functions
// share process-wide state (and auto-seed randomly since Go 1.20),
// time-derived seeds differ every run, and crypto/rand is
// nondeterministic by design — any of them makes topo synthesis, ITDK
// sampling, or training output unreproducible, which breaks the
// value-pinned figures and makes cross-snapshot comparison meaningless.
var rngseed = &Analyzer{
	Name: "rngseed",
	Doc:  "only explicitly seeded *rand.Rand in deterministic packages",
	Verb: "rng-ok",
	Run:  runRNGSeed,
}

// seedConstructors are the math/rand package-level functions that build
// explicit generators rather than touching global state. NewZipf takes
// a *rand.Rand, so it is as disciplined as its argument.
var seedConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runRNGSeed(p *Program) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range p.Packages {
		if !p.Config.det(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeObj(pkg.Info, call)
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch path := obj.Pkg().Path(); path {
				case "math/rand", "math/rand/v2":
					// Method calls go through a receiver value (rng.Intn) and
					// are as disciplined as the generator they are called on;
					// package-qualified calls (rand.Intn) hit global state.
					if _, isMethod := callViaSelection(pkg, call); !isMethod && !seedConstructors[obj.Name()] {
						out = append(out, Diagnostic{
							Pos:     p.Fset.Position(call.Pos()),
							Check:   "rngseed",
							Message: "package-level " + path + "." + obj.Name() + " uses the shared global generator; thread a seeded *rand.Rand instead",
							Suggest: "//hoiho:rng-ok <why global RNG state is acceptable here>",
						})
					}
				case "crypto/rand":
					out = append(out, Diagnostic{
						Pos:     p.Fset.Position(call.Pos()),
						Check:   "rngseed",
						Message: "crypto/rand is nondeterministic by design; deterministic packages must use a seeded *rand.Rand",
						Suggest: "//hoiho:rng-ok <why nondeterministic randomness is required>",
					})
				}
				// Time-derived seeds defeat seeding no matter how the
				// generator is constructed.
				if obj.Name() == "NewSource" || obj.Name() == "Seed" || obj.Name() == "NewPCG" {
					for _, arg := range call.Args {
						if containsCallTo(pkg.Info, arg, "time", "Now") {
							out = append(out, Diagnostic{
								Pos:     p.Fset.Position(arg.Pos()),
								Check:   "rngseed",
								Message: "RNG seed derived from time.Now differs every run; use a fixed or configured seed",
								Suggest: "//hoiho:rng-ok <why a wall-clock seed is acceptable>",
							})
						}
					}
				}
				return true
			})
		}
	}
	return out
}

// callViaSelection reports whether the call is a method call through a
// receiver value (info.Selections), as opposed to a package-qualified
// function call.
func callViaSelection(pkg *Package, call *ast.CallExpr) (*ast.SelectorExpr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	_, isSel := pkg.Info.Selections[sel]
	return sel, isSel
}
