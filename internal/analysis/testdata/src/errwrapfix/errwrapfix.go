// Package errwrapfix exercises errwrap: %w discipline for error
// operands and package-qualified fmt.Errorf messages.
package errwrapfix

import "fmt"

// qualifiedWrap is the blessed shape: package-prefixed message, %w
// operand.
func qualifiedWrap(err error) error {
	return fmt.Errorf("errwrapfix: decode: %w", err)
}

// dynamicQualifier supplies the qualifier through a leading verb (a
// path, a corpus name): equally attributable.
func dynamicQualifier(path string, err error) error {
	return fmt.Errorf("%s: %w", path, err)
}

// dynamicFormat builds the format at runtime; nothing to check
// statically, so it is skipped.
func dynamicFormat(f string, err error) error {
	return fmt.Errorf(f, err)
}

func unqualified(err error) error {
	return fmt.Errorf("step 3: %w", err) // want `fmt.Errorf message "step 3: %w" is not qualified`
}

func missingColon(err error) error {
	return fmt.Errorf("errwrapfix %w", err) // want `fmt.Errorf message "errwrapfix %w" is not qualified`
}

func vWrapped(err error) error {
	return fmt.Errorf("errwrapfix: load: %v", err) // want `error operand formatted with %v breaks the errors.Is/As chain; wrap it with %w`
}

func sWrapped(err error) error {
	return fmt.Errorf("errwrapfix: read: %s", err) // want `error operand formatted with %s breaks the errors.Is/As chain`
}

// deliberate flattens the chain on purpose; the annotation carries the
// why.
func deliberate(err error) error {
	//hoiho:errwrap-ok terminal log line compared as a string across the daemon boundary
	return fmt.Errorf("errwrapfix: flat: %v", err)
}
