// Package lockorderfix exercises lockorder: acquisition-order
// inversions detected across method boundaries, and atomic/plain mixed
// access to one field.
package lockorderfix

import (
	"sync"
	"sync/atomic"
)

type server struct {
	mu    sync.Mutex
	state sync.Mutex
	hits  int64
	gauge atomic.Int64
}

// lockAB establishes the order mu -> state.
func (s *server) lockAB() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state.Lock() // want `lock order inversion: acquires "server.state" while holding "server.mu"`
	s.state.Unlock()
}

// lockBA acquires the same two mutexes in the opposite order — the
// classic deadlock under contention, invisible to any single-function
// check.
func (s *server) lockBA() {
	s.state.Lock()
	defer s.state.Unlock()
	s.mu.Lock() // want `lock order inversion: acquires "server.mu" while holding "server.state"`
	s.mu.Unlock()
}

type filePair struct {
	a sync.Mutex
	b sync.Mutex
}

// first and second take a before b consistently: no inversion.
func (p *filePair) first() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	p.b.Unlock()
}

func (p *filePair) second() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

// hit updates hits through sync/atomic.
func (s *server) hit() {
	atomic.AddInt64(&s.hits, 1)
}

// report reads the same field plainly: no happens-before relationship
// with the atomic adds — a stale or torn read.
func (s *server) report() int64 {
	return s.hits // want `plain read of "server.hits" which is accessed via sync/atomic`
}

// reset writes it plainly: same race, write side.
func (s *server) reset() {
	s.hits = 0 // want `plain write of "server.hits" which is accessed via sync/atomic`
}

// gaugeUp uses a typed atomic, immune by construction: no finding.
func (s *server) gaugeUp() {
	s.gauge.Add(1)
}
