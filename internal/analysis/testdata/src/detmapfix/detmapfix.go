// Package detmapfix exercises the detmap analyzer: order-sensitive
// effects inside range-over-map bodies, the sort-after exemption, and
// the //hoiho:nondet-ok annotation.
package detmapfix

import (
	"fmt"
	"sort"
)

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appends to "keys" inside range over map`
	}
	return keys
}

func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // exempt: sorted two statements later
	}
	keys = dedup(keys)
	sort.Strings(keys)
	return keys
}

func dedup(s []string) []string { return s }

func collectSortSlice(m map[string]*thing) []*thing {
	out := make([]*thing, 0, len(m))
	for _, t := range m {
		out = append(out, t) // exempt: sort.Slice below
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

type thing struct{ name string }

func concat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `concatenates onto string "s" inside range over map`
	}
	return s
}

func print(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `writes output via "fmt.Println" inside range over map`
	}
}

func send(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `sends on channel "ch" inside range over map`
	}
}

func counterIndexed(m map[string]int) []string {
	out := make([]string, len(m))
	i := 0
	for k := range m {
		out[i] = k // want `writes "out" at loop-carried counter "i" inside range over map`
		i++
	}
	return out
}

func annotated(m map[string]int) []string {
	var keys []string
	//hoiho:nondet-ok caller treats the result as an unordered set (suppresses via the range-statement anchor)
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func annotatedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //hoiho:nondet-ok caller treats this as an unordered set
	}
	return keys
}

// Commutative aggregation and map writes are order-independent: silent.
func aggregate(m map[string]int) (int, map[string]int) {
	sum := 0
	inverted := make(map[string]int, len(m))
	for k, v := range m {
		sum += v
		inverted[k] = v * 2
	}
	return sum, inverted
}

// Effects on state declared inside the body are per-iteration: silent.
func localState(m map[string][]string) int {
	n := 0
	for _, vs := range m {
		var local []string
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
