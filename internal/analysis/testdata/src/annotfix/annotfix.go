// Package annotfix exercises the annotation grammar edge cases: verbs
// stacked in one comment group, markers inside generated files (gen.go),
// malformed markers, and stale suppressions.
package annotfix

import (
	"fmt"
	"math/rand"
)

// stacked: both verbs in the comment group apply to the line the group
// annotates — the first is not shadowed by the second.
func stacked(m map[string]int) {
	for k := range m {
		//hoiho:nondet-ok stacked: debug dump read by humans, not by the pipeline
		//hoiho:rng-ok stacked: sampling jitter here is deliberately unseeded
		fmt.Println(k, rand.Intn(10))
	}
}

// trailingWhitespace: a verb followed only by whitespace (here a tab)
// has no reason and is reported, not silently accepted.
func trailingWhitespace(ok bool) {
	if !ok {
		/* want `needs a reason` */ //hoiho:nondet-ok	
		_ = ok
	}
}

// leadingWhitespace: whitespace where the verb should be yields an
// empty verb, reported as unknown rather than reinterpreted.
func leadingWhitespace(ok bool) {
	if ok {
		/* want `unknown annotation verb ""` */ //hoiho: nondet-ok oops
		_ = ok
	}
}

// staleWaiver: a suppression matching no diagnostic is itself a
// finding, so fixed code sheds its waivers.
func staleWaiver() int {
	//hoiho:wg-ok the loop below used to append under a lock // want `stale //hoiho:wg-ok suppression: no diagnostic matches it`
	return 0
}
