// Method-value fan-out: the per-item call happens through a local
// binding of a method value, which only the typed call graph sees.
package ctxflowfix

type runner struct{}

func (runner) step(item string) {}

// LoopMethodValue fans out per-item work through a method value.
func LoopMethodValue(items []string) { // want `"LoopMethodValue" loops over items calling back into the package but has no context.Context parameter`
	r := runner{}
	f := r.step
	for _, it := range items {
		f(it)
	}
}
