// Package ctxflowfix exercises the ctxflow analyzer: exported pipeline
// entry points that fan out work must accept and consult a
// context.Context.
package ctxflowfix

import (
	"context"
	"strings"
)

func helper(s string) int { return len(s) }

// SpawnNoCtx spawns a goroutine without accepting a context.
func SpawnNoCtx(items []string) { // want `"SpawnNoCtx" spawns goroutines but has no context.Context parameter`
	done := make(chan struct{})
	go func() {
		for _, it := range items {
			_ = helper(it)
		}
		close(done)
	}()
	<-done
}

// LoopNoCtx loops over per-item work calling back into the package.
func LoopNoCtx(items []string) int { // want `"LoopNoCtx" loops over items calling back into the package but has no context.Context parameter`
	total := 0
	for _, it := range items {
		total += helper(it)
	}
	return total
}

// TakesButIgnores accepts a context and never consults it.
func TakesButIgnores(ctx context.Context, items []string) int { // want `"TakesButIgnores" takes a context.Context but never consults it`
	total := 0
	for _, it := range items {
		total += helper(it)
	}
	return total
}

// Propagates is clean: it checks the context between items.
func Propagates(ctx context.Context, items []string) (int, error) {
	total := 0
	for _, it := range items {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		total += helper(it)
	}
	return total, nil
}

// OtherPackageLoop is clean: the loop body only calls another package,
// so it is not a per-item pipeline stage.
func OtherPackageLoop(items []string) int {
	total := 0
	for _, it := range items {
		total += len(strings.ToUpper(it))
	}
	return total
}

// unexportedSpawn is clean: ctxflow covers only the exported API.
func unexportedSpawn(items []string) {
	go func() {
		for _, it := range items {
			_ = helper(it)
		}
	}()
}

// AnnotatedFanOut is suppressed: the annotation carries the reason.
//
//hoiho:ctxflow synchronous wrapper over a bounded four-item table; never long-running
func AnnotatedFanOut(items []string) int {
	total := 0
	for _, it := range items {
		total += helper(it)
	}
	return total
}
