// Package panicfix exercises the panicguard analyzer and the
// annotation grammar diagnostics.
package panicfix

import "errors"

func bad(ok bool) {
	if !ok {
		panic("library code must not panic") // want `panic in a library package`
	}
}

func good(ok bool) error {
	if !ok {
		return errors.New("returned instead of panicking")
	}
	return nil
}

var embedded = "known-good embedded data"

func invariant() string {
	if embedded == "" {
		//hoiho:panic-ok invariant on embedded data: the literal above cannot be empty
		panic("corrupted embedded data")
	}
	return embedded
}

func badVerb(ok bool) {
	if !ok {
		//hoiho:frobnicate-ok some reason // want `unknown annotation verb "frobnicate-ok`
		panic("the bad verb above does not suppress this") // want `panic in a library package`
	}
}

func missingReason(ok bool) {
	if !ok {
		/* want `needs a reason` */ //hoiho:panic-ok
		panic("reasonless annotations do not suppress") // want `panic in a library package`
	}
}
