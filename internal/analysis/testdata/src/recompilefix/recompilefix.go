// Package recompilefix exercises the recompile analyzer: compiles in
// loop bodies, compiles reachable from the configured hot roots, and
// the annotated compile-once cache pattern. The test config roots the
// hot path at ServeItem.
package recompilefix

import "regexp"

// Package-level compile-once: the blessed pattern, silent.
var hostRe = regexp.MustCompile(`^[a-z0-9.-]+$`)

func inLoop(patterns []string, host string) int {
	n := 0
	for _, p := range patterns {
		re, err := regexp.Compile(p) // want `regexp.Compile inside a loop recompiles per iteration`
		if err == nil && re.MatchString(host) {
			n++
		}
	}
	return n
}

func inLoopMust(hosts []string) int {
	n := 0
	for _, h := range hosts {
		if regexp.MustCompile(`\d+`).MatchString(h) { // want `regexp.MustCompile inside a loop recompiles per iteration`
			n++
		}
	}
	return n
}

// ServeItem is the per-item hot path root configured by the test.
func ServeItem(host string) bool {
	return matchOne(host) || cachedMatch(&sharedCache, host)
}

func matchOne(host string) bool {
	re, err := regexp.Compile(`as(\d+)`) // want `regexp.Compile on the per-item hot path \(reachable from fix/recompilefix.ServeItem\)`
	return err == nil && re.MatchString(host)
}

type cache struct{ re *regexp.Regexp }

// compiled is reachable from ServeItem via cachedMatch but caches its
// compile: annotated.
func (c *cache) compiled() *regexp.Regexp {
	if c.re == nil {
		//hoiho:recompile-ok compile-once cache stored on c.re
		c.re = regexp.MustCompile(`as(\d+)`)
	}
	return c.re
}

func cachedMatch(c *cache, host string) bool {
	return c.compiled().MatchString(host)
}

var sharedCache cache

// Cold path: compiles outside loops, unreachable from roots — silent.
func coldCompile(p string) (*regexp.Regexp, error) {
	return regexp.Compile(p)
}
