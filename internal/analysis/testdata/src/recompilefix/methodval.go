// Method-value reachability: ServeItem2 reaches build only through a
// stored method value — the edge the syntax-era ident graph missed.
package recompilefix

import "regexp"

type compiler struct{}

func (compiler) build(p string) *regexp.Regexp {
	return regexp.MustCompile(p) // want `regexp.MustCompile on the per-item hot path \(reachable from fix/recompilefix.ServeItem2\); use the compile-once paths`
}

// ServeItem2 is a second hot root (fixtureConfig HotRoots).
func ServeItem2(pattern, host string) bool {
	c := compiler{}
	f := c.build
	return f(pattern).MatchString(host)
}
