// Package rngseedfix exercises the rngseed analyzer: global math/rand
// state, time-derived seeds, crypto/rand, and the allowed seeded
// *rand.Rand discipline.
package rngseedfix

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

func global() int {
	rand.Shuffle(3, func(i, j int) {}) // want `package-level math/rand.Shuffle uses the shared global generator`
	return rand.Intn(10)               // want `package-level math/rand.Intn uses the shared global generator`
}

func timeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `RNG seed derived from time.Now differs every run`
}

func cryptoRand() []byte {
	b := make([]byte, 8)
	crand.Read(b) // want `crypto/rand is nondeterministic by design`
	return b
}

// The blessed pattern: an explicitly seeded generator threaded through.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(3, func(i, j int) {})
	return rng.Intn(10)
}

func annotated() int {
	//hoiho:rng-ok jitter for a non-reproducible backoff path, never reaches output
	return rand.Intn(10)
}
