// Package hotallocfix exercises the hotalloc analyzer: every
// allocation class, reachability through method values and interface
// dispatch (the edges the PR 3 ident graph could not see), the
// sync.Once body exemption, and both forms of the //hoiho:hotalloc
// budget annotation.
package hotallocfix

import (
	"fmt"
	"sync"
)

// ServeHot is the fixture's zero-alloc root (fixtureConfig
// ZeroAllocRoots).
func ServeHot(hosts []string) int {
	n := 0
	for _, h := range hosts {
		n += scan(h)
		n += len(classes(h))
		if useMatcher(am, h) {
			n++
		}
		lazyInit(h)
		n += len(coldError(h))
		n += budgeted(h)
	}
	r := renderer{}
	f := r.render // the method value the old ident graph lost track of
	n += apply(f, "x")
	return n
}

// scan is allocation-free: slicing, indexing, comparisons only.
func scan(h string) int {
	n := 0
	for i := 0; i < len(h); i++ {
		if h[i] == '.' {
			n++
		}
	}
	return n
}

type renderer struct{}

// render is reached from ServeHot only through a method value handed to
// apply — two calls deep. The injected Sprintf must still be caught.
func (renderer) render(h string) string {
	return fmt.Sprintf("r=%s", h) // want `allocation on the zero-alloc path from fix/hotallocfix.ServeHot: fmt.Sprintf formats through reflection and allocates`
}

func apply(f func(string) string, h string) int { return len(f(h)) }

// classes hits one site per allocation class.
func classes(h string) []byte {
	m := map[string]int{} // want `map literal allocates`
	_ = m
	s := h + "!"                 // want `string concatenation allocates the joined copy`
	b := []byte(s)               // want `\[\]byte\(\.\.\.\) conversion copies the string`
	b = append(b, 'x')           // want `append may grow the backing array`
	buf := make([]byte, 0, 8)    // want `make allocates`
	_ = buf
	p := &renderer{} // want `&renderer\{\.\.\.\} escapes to the heap`
	_ = p
	box(h)                       // want `passing string as interface\{\} boxes it on the heap`
	f := func() int { return len(h) } // want `creating a closure allocates the function value`
	_ = f()
	if cache[string(b)] > 0 { // silent: a conversion used directly as a map index does not copy
		return nil
	}
	return b
}

func box(v interface{}) {}

var cache = map[string]int{}

type matcher interface{ match(string) bool }

type allocMatcher struct{}

// match is reached through interface dispatch from useMatcher.
func (*allocMatcher) match(h string) bool {
	return len([]rune(h)) > 0 // want `\[\]rune\(\.\.\.\) conversion copies the string`
}

var am = &allocMatcher{}

func useMatcher(m matcher, h string) bool { return m.match(h) }

var once sync.Once
var compiled string

// lazyInit compiles once behind a sync.Once: the literal's body is
// exempt (it runs once per process, not per item), and the closure
// creation itself carries a site budget.
func lazyInit(h string) {
	//hoiho:hotalloc compile-once guard: the literal runs once and does not escape on the armed fast path
	once.Do(func() {
		compiled = h + h // silent: once bodies are cold by construction
	})
}

// coldError is a budgeted cold region: the function-level annotation
// stops traversal, so nothing inside (or below) it is reported.
//
//hoiho:hotalloc budgeted cold region: error rendering happens at most once per failed request
func coldError(h string) string {
	return fmt.Sprintf("bad host %q", h) // silent: function-level budget
}

// budgeted shows the site-level budget form.
func budgeted(h string) int {
	ids := make([]int, 4) //hoiho:hotalloc one scratch slice per call, amortized by the caller's batching
	for i := range ids {
		ids[i] = i + len(h)
	}
	return len(ids)
}

// Unreachable from the root: allocations here are silent.
func ColdPath(h string) string {
	return fmt.Sprintf("cold %s", h)
}
