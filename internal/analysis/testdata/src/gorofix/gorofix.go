// Package gorofix exercises gororeturn: a blocking send inside a
// goroutine needs a cancellation arm unless the goroutine owns the
// channel or the select can bail out.
package gorofix

import "context"

// fanOut is the blessed shape: every send can abandon on ctx.Done.
func fanOut(ctx context.Context, in []int) <-chan int {
	out := make(chan int)
	go func() {
		defer close(out)
		for _, v := range in {
			select {
			case out <- v:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// leaky is the PR 4/5 bug shape: the consumer leaves, the send blocks
// forever, and the goroutine plus everything it captured leaks.
func leaky(in []int) <-chan int {
	out := make(chan int)
	go func() {
		for _, v := range in {
			out <- v // want `send on "out" inside a goroutine has no cancellation arm`
		}
		close(out)
	}()
	return out
}

// selectNoCancel has a select, but no arm can bail out: both cases
// block on departed consumers.
func selectNoCancel(a, b chan int, v int) {
	go func() {
		select {
		case a <- v: // want `send on "a" inside a goroutine has no cancellation arm`
		case b <- v: // want `send on "b" inside a goroutine has no cancellation arm`
		}
	}()
}

// spawnNamed launches a named worker: the body resolves through the
// typed call graph and is held to the same rules as a literal.
func spawnNamed(jobs chan int) {
	go pump(jobs)
}

func pump(jobs chan int) {
	for i := 0; i < 10; i++ {
		jobs <- i // want `send on "jobs" inside a goroutine has no cancellation arm`
	}
}

// trySend is non-blocking: the default arm is a cancellation arm.
func trySend(ch chan int, v int) {
	go func() {
		select {
		case ch <- v:
		default:
		}
	}()
}

// stopAware selects on a shutdown channel, recognized by name.
func stopAware(ch chan int, stop chan struct{}, v int) {
	go func() {
		select {
		case ch <- v:
		case <-stop:
		}
	}()
}

// owned sends on a channel the goroutine itself made: nobody else can
// hold the receive side yet, so the send cannot strand.
func owned() {
	go func() {
		tmp := make(chan int, 1)
		tmp <- 1
		<-tmp
	}()
}

// bounded documents a deliberate unguarded send.
func bounded(ch chan int) {
	go func() {
		//hoiho:goro-ok the receiver drains exactly one value before any return path
		ch <- 1
	}()
}
