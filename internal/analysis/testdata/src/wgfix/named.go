// Named workers: `go worker(...)` resolves through the typed call
// graph, so the worker's declaration is held to the same hygiene rules
// as a go'd literal. Parameters count as goroutine-owned shard indexes.
package wgfix

import "sync"

func SpawnNamed(n int) {
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go namedWorker(&wg, results, i)
	}
	wg.Wait()
}

func namedWorker(wg *sync.WaitGroup, out []int, i int) {
	wg.Done() // want `"wg".Done is not deferred; an early return or panic would leak the WaitGroup`
	out[i] = i
}

func SpawnNamedClean(n int) {
	var wg sync.WaitGroup
	out := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go cleanWorker(&wg, out, i)
	}
	wg.Wait()
}

// cleanWorker defers Done and writes only through its own parameters:
// no findings.
func cleanWorker(wg *sync.WaitGroup, out []int, i int) {
	defer wg.Done()
	out[i] = i * 2
}
