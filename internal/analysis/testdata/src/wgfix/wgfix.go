// Package wgfix exercises the wghygiene analyzer: WaitGroup call
// placement, deferred Done/close discipline, and the shard pattern for
// result-slice writes.
package wgfix

import "sync"

func addInside(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // want `"wg".Add inside the spawned goroutine races Wait`
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func doneNotDeferred(jobs chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		for j := range jobs {
			if j < 0 {
				return
			}
			_ = j
		}
		wg.Done() // want `"wg".Done is not deferred`
	}()
	wg.Wait()
}

func appendShared(hosts []string) []int {
	var out []int
	var wg sync.WaitGroup
	for _, h := range hosts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out = append(out, len(h)) // want `append to "out" shared across goroutines is a data race`
		}()
	}
	wg.Wait()
	return out
}

func sharedIndex(hosts []string) []int {
	out := make([]int, len(hosts))
	var wg sync.WaitGroup
	next := 0
	for range hosts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[next] = 1 // want `write to "out" indexed by a variable shared across goroutines`
			next++
		}()
	}
	wg.Wait()
	return out
}

func sharedMap(hosts []string) map[string]int {
	m := make(map[string]int)
	var wg sync.WaitGroup
	for _, h := range hosts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m[h] = len(h) // want `write to map "m" shared across goroutines is a data race`
		}()
	}
	wg.Wait()
	return m
}

func closeNotDeferred(in <-chan string, jobs chan<- []string) {
	go func() {
		var buf []string
		for h := range in {
			if h == "" {
				return
			}
			buf = append(buf, h)
		}
		close(jobs) // want `close\(jobs\) is not deferred but the goroutine has return paths`
	}()
}

// The blessed shard pattern from extract/batch.go and core/matrix.go:
// Add before go, deferred Done, writes indexed by a goroutine-owned
// variable — silent.
func shardClean(hosts []string, workers int) []int {
	out := make([]int, len(hosts))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = len(hosts[i])
			}
		}()
	}
	for i := range hosts {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// Indexing by a captured per-iteration loop variable is the other
// blessed shard form — silent.
func loopVarIndex(hosts []string) []int {
	out := make([]int, len(hosts))
	var wg sync.WaitGroup
	for i, h := range hosts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = len(h)
		}()
	}
	wg.Wait()
	return out
}

func annotated(hosts []string) []int {
	out := make([]int, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		//hoiho:wg-ok single goroutine owns the whole slice
		out = append(out, len(hosts))
	}()
	wg.Wait()
	return out
}
