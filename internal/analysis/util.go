package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// exprString renders a simple expression (identifiers, selectors, index
// and unary forms) to a stable string for structural comparison, e.g.
// matching the slice appended inside a loop against the argument of a
// later sort call. Unsupported forms render as "?".
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = exprString(a)
		}
		return exprString(e.Fun) + "(" + strings.Join(args, ",") + ")"
	}
	return "?"
}

// rootIdent returns the leftmost identifier of an lvalue-ish expression
// (x, x.f, x[i], *x, &x), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its object via Uses then Defs.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// declaredWithin reports whether obj's declaration lies inside the
// [lo, hi] position range. Objects with NoPos (builtins, some package
// members) count as outside.
func declaredWithin(obj types.Object, lo, hi token.Pos) bool {
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	return obj.Pos() >= lo && obj.Pos() <= hi
}

// isPkgFunc reports whether the call's callee is the named function of
// the named package (by import path), e.g. isPkgFunc(info, call,
// "regexp", "MustCompile").
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	obj := calleeObj(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// calleeObj resolves the object a call invokes: a *types.Func for
// static function and method calls, a *types.Builtin for builtins, nil
// for dynamic calls through function values or interfaces it cannot
// see through.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return objOf(info, fun)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return objOf(info, fun.Sel)
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = objOf(info, id).(*types.Builtin)
	return ok
}

// isWaitGroup reports whether t (possibly behind pointers) is
// sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// isMapType reports whether the expression's type is a map.
func isMapType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// containsCallTo reports whether the expression tree contains a call to
// the named package function (e.g. a time.Now buried in a seed
// expression).
func containsCallTo(info *types.Info, e ast.Expr, pkgPath, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPkgFunc(info, call, pkgPath, name) {
			found = true
		}
		return !found
	})
	return found
}

// containsExpr reports whether the expression tree contains a
// sub-expression rendering equal to target under exprString.
func containsExpr(e ast.Expr, target string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if x, ok := n.(ast.Expr); ok && exprString(x) == target {
			found = true
		}
		return !found
	})
	return found
}

// stmtLists yields every []ast.Stmt container in the file (blocks, case
// bodies, comm clauses) so analyzers can reason about a statement's
// followers within its enclosing list.
func stmtLists(f *ast.File, visit func([]ast.Stmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			visit(n.List)
		case *ast.CaseClause:
			visit(n.Body)
		case *ast.CommClause:
			visit(n.Body)
		}
		return true
	})
}

// unlabel unwraps labeled statements.
func unlabel(s ast.Stmt) ast.Stmt {
	for {
		l, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = l.Stmt
	}
}
