package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxflow enforces the cancellation contract on the pipeline packages
// (Config.CtxPkgs): an exported function that fans out work — spawns
// goroutines, or loops over a collection calling back into its own
// package per item — must accept a context.Context, and a function that
// accepts one must actually consult it (check ctx.Err/ctx.Done or pass
// it on). Without this, a learning or extraction entry point added
// later silently becomes uninterruptible: signals and -timeout stop
// working for exactly the calls that run longest.
//
// The per-item-loop trigger is deliberately scoped to ranges whose body
// calls a same-package function; a loop that only touches other
// packages' cheap helpers (strings, sort) is not a pipeline stage.
var ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "exported pipeline entry points must accept and consult a context.Context",
	Verb: "ctxflow",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Program) []Diagnostic {
	g := p.CallGraph()
	var out []Diagnostic
	for _, pkg := range p.Packages {
		if !p.Config.ctx(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !exportedEntry(fd) {
					continue
				}
				out = append(out, checkCtxFlow(p, g, pkg, fd)...)
			}
		}
	}
	return out
}

// exportedEntry reports whether the declaration is part of the package's
// exported API: an exported function, or an exported method on an
// exported receiver type.
func exportedEntry(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		default:
			id, ok := t.(*ast.Ident)
			return ok && id.IsExported()
		}
	}
}

func checkCtxFlow(p *Program, g *Graph, pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	ctxParams := contextParams(pkg, fd)
	spawns, loops := fanOut(g, pkg, fd)

	var out []Diagnostic
	if len(ctxParams) == 0 && (spawns || loops) {
		what := "loops over items calling back into the package"
		if spawns {
			what = "spawns goroutines"
		}
		out = append(out, Diagnostic{
			Pos:     p.Fset.Position(fd.Name.Pos()),
			Check:   "ctxflow",
			Message: quote(fd.Name.Name) + " " + what + " but has no context.Context parameter; exported pipeline entry points must be cancellable",
			Suggest: "//hoiho:ctxflow <why this exported fan-out needs no cancellation>",
		})
		return out
	}
	for _, obj := range ctxParams {
		if usesObject(pkg, fd.Body, obj) {
			continue
		}
		out = append(out, Diagnostic{
			Pos:     p.Fset.Position(fd.Name.Pos()),
			Check:   "ctxflow",
			Message: quote(fd.Name.Name) + " takes a context.Context but never consults it; check ctx.Err, select on ctx.Done, or pass it on",
			Suggest: "//hoiho:ctxflow <why the context is accepted but unused>",
		})
	}
	return out
}

// contextParams returns the objects of the function's context.Context
// parameters. An unnamed or blank context parameter is returned as a nil
// object — it exists but can never be consulted.
func contextParams(pkg *Package, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		if !isContextType(pkg.Info.TypeOf(field.Type)) {
			continue
		}
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				out = append(out, nil)
				continue
			}
			out = append(out, pkg.Info.Defs[name])
		}
	}
	return out
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// usesObject reports whether the body references obj. A nil obj (blank
// or unnamed parameter) is never used.
func usesObject(pkg *Package, body *ast.BlockStmt, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// fanOut reports whether the function body spawns goroutines (spawns)
// or ranges over a slice/array/map/channel with a same-package call in
// the loop body (loops) — the two shapes of per-item work that must be
// interruptible. Per-item calls are taken from the typed call graph, so
// a method value or interface dispatch invoked inside the loop counts
// the same as a direct call — the shape the old ident-based scan
// missed.
func fanOut(g *Graph, pkg *Package, fd *ast.FuncDecl) (spawns, loops bool) {
	// Every graph edge originating anywhere inside this declaration
	// (its own body or a nested literal), by position.
	var edges []Edge
	for _, n := range g.Nodes {
		if n.Pkg != pkg {
			continue
		}
		within := (n.Decl == fd) ||
			(n.Lit != nil && n.Lit.Pos() >= fd.Pos() && n.Lit.End() <= fd.End())
		if !within {
			continue
		}
		edges = append(edges, n.Edges...)
	}
	samePkgCallIn := func(lo, hi token.Pos) bool {
		for _, e := range edges {
			if e.Kind == EdgeClosure || e.Pos < lo || e.Pos > hi {
				continue
			}
			if e.To.Fn != nil && e.To.Fn.Pkg() == pkg.Types {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			spawns = true
		case *ast.RangeStmt:
			if !collectionType(pkg.Info.TypeOf(n.X)) {
				return true
			}
			if samePkgCallIn(n.Body.Pos(), n.Body.End()) {
				loops = true
			}
		}
		return !(spawns && loops)
	})
	return spawns, loops
}

// collectionType reports whether t ranges over a per-item collection:
// slice, array, map, or channel (strings and integers range cheaply and
// are not pipeline stages).
func collectionType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Map, *types.Chan:
		return true
	}
	return false
}
