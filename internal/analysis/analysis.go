// Package analysis implements hoiholint, the project's static-analysis
// pass. Hoiho's headline results (Figure 4 ATP=8, Figures 5/6, Table 1)
// are value-pinned tests, and the pipeline is only reproducible because
// every package obeys rules the compiler does not check: seeded
// rand.New(rand.NewSource(...)) only, no map-iteration order leaking
// into output, regexes compiled exactly once. This package makes those
// invariants machine-checked.
//
// The pass is stdlib-only (go/parser + go/types + go/ast; no x/tools),
// loads every package in the module through go/types, builds a typed
// interprocedural call graph (callgraph.go) shared by every
// reachability-based analyzer, and runs the analyzers:
//
//   - detmap: in deterministic packages, range over a map must not leak
//     iteration order into slices, strings, output, or channels unless
//     the result is sorted afterward.
//   - rngseed: only explicitly seeded *rand.Rand values; no global
//     math/rand state, no time-derived seeds, no crypto/rand.
//   - recompile: regexp.Compile/MustCompile must not run inside loops or
//     on the per-item hot path reachable from the Corpus extraction entry
//     points and Set evaluation; the sanctioned hot-path matcher is the
//     compiled internal/match engine (stdlib regexp is the cold-path
//     fallback behind the compile-once caches).
//   - wghygiene: WaitGroup and shard-pattern discipline for goroutines
//     (Add before go, deferred Done, loop-variable-indexed result
//     writes).
//   - panicguard: panics in library packages must be annotated as
//     data-embedded invariants or replaced by returned errors.
//   - ctxflow: exported functions in the pipeline packages that spawn
//     goroutines or loop over per-item work must accept and consult a
//     context.Context, so every long-running entry point stays
//     cancellable.
//   - hotalloc: no allocation site (append growth, string concat or
//     conversion, composite literals, interface boxing, closure
//     creation, fmt calls) may be reachable from the zero-alloc
//     extraction roots unless budgeted with //hoiho:hotalloc.
//   - lockorder: mutexes must be acquired in one consistent order, and
//     a field accessed through sync/atomic must never also be accessed
//     plainly.
//   - errwrap: fmt.Errorf in the serving/codec packages must qualify
//     errors with the package path and wrap error operands with %w.
//   - gororeturn: a channel send inside a goroutine must sit in a
//     select with a ctx.Done (or default) arm, so cancelled consumers
//     cannot strand the sender.
//
// Intentional violations are suppressed with a //hoiho:<verb>-ok
// annotation carrying a reason; see annot.go for the grammar.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a message. Suggest carries the suppression annotation a caller
// would add to silence it deliberately.
type Diagnostic struct {
	Pos     token.Position `json:"pos"`
	Check   string         `json:"check"`
	Message string         `json:"message"`
	Suggest string         `json:"suggest,omitempty"`
	// Anchor, when valid, is the enclosing annotatable construct (e.g.
	// the range statement whose body produced the finding); annotations
	// there also suppress the diagnostic.
	Anchor token.Position `json:"-"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Check, d.Message)
}

// Analyzer is one project rule. Verb is the annotation verb (the token
// after "//hoiho:") that suppresses its diagnostics at an annotated site.
type Analyzer struct {
	Name string
	Doc  string
	Verb string
	Run  func(*Program) []Diagnostic
}

// Analyzers returns the full pass in reporting order. The first six
// are the PR 3 syntax-era analyzers (since migrated onto the typed call
// graph); hotalloc, lockorder, errwrap, and gororeturn are the typed
// interprocedural additions.
func Analyzers() []*Analyzer {
	return []*Analyzer{detmap, rngseed, recompile, wghygiene, panicguard, ctxflow, hotalloc, lockorder, errwrap, gororeturn}
}

// Config scopes the analyzers to the project's packages. The zero value
// checks nothing; Default returns hoiho's configuration.
type Config struct {
	// DetPkgs are the import paths under determinism discipline: detmap
	// and rngseed apply only here. Training, synthesis, and figure output
	// must be bit-for-bit reproducible across runs and Go runtimes.
	DetPkgs []string
	// PanicPkgs are the import paths where panicguard applies: library
	// packages whose callers expect errors, not crashes.
	PanicPkgs []string
	// HotRoots are types.Func full names (as printed by
	// (*types.Func).FullName) rooting the per-item hot path for the
	// recompile analyzer, e.g. "(*hoiho/internal/extract.Corpus).Extract".
	HotRoots []string
	// CtxPkgs are the import paths under the cancellation contract:
	// ctxflow applies only here. These are the pipeline packages whose
	// exported entry points can run for minutes on real corpora.
	CtxPkgs []string
	// ZeroAllocRoots are types.Func full names rooting the zero-alloc
	// contract: hotalloc flags every allocation site reachable from them
	// unless budgeted with //hoiho:hotalloc.
	ZeroAllocRoots []string
	// LockPkgs are the import paths under lock discipline: lockorder
	// checks mutex acquisition order and atomic/non-atomic field mixing
	// only here.
	LockPkgs []string
	// ErrPkgs are the import paths under the error-taxonomy contract:
	// errwrap requires fmt.Errorf calls here to be path-qualified and to
	// wrap error operands with %w.
	ErrPkgs []string
	// GoroPkgs are the import paths where gororeturn checks that channel
	// sends inside goroutines carry a ctx-cancel select arm.
	GoroPkgs []string
}

// Default is hoiho's lint configuration: the deterministic packages the
// value-pinned figures depend on, and the serving/evaluation hot roots
// added in PRs 1-2.
func Default() Config {
	det := []string{
		"hoiho/internal/core",
		"hoiho/internal/rex",
		"hoiho/internal/extract",
		"hoiho/internal/match",
		"hoiho/internal/experiments",
		"hoiho/internal/topo",
		"hoiho/internal/itdk",
		"hoiho/internal/bdrmapit",
		"hoiho/internal/corpusbin",
	}
	return Config{
		DetPkgs:   det,
		PanicPkgs: append(append([]string{}, det...), "hoiho/internal/psl", "hoiho/internal/hostname"),
		// Every extraction entry point of the v2 API roots the hot path,
		// plus the compiled engine itself: internal/match is the sanctioned
		// per-hostname matcher, so nothing reachable from it may fall back
		// to a fresh stdlib compile.
		HotRoots: []string{
			"(*hoiho/internal/extract.Corpus).Extract",
			"(*hoiho/internal/extract.Corpus).ExtractBatch",
			"(*hoiho/internal/extract.Corpus).ExtractBytes",
			"(*hoiho/internal/match.Engine).MatchString",
			"(*hoiho/internal/core.Set).Evaluate",
			"(*hoiho/internal/core.Set).Learn",
			// The HBC decode path exists to skip recompilation: a cold
			// start that compiled stdlib regexp per convention would erase
			// the format's point, so the whole decode is held to the same
			// compile-once rule as serving.
			"hoiho/internal/corpusbin.Decode",
		},
		CtxPkgs: []string{
			"hoiho/internal/core",
			"hoiho/internal/extract",
			"hoiho/internal/cluster",
		},
		// The PR 6 contract: after Precompile, per-hostname extraction and
		// matching allocate nothing (the batch path budgets its result
		// slice and worker closures explicitly). benchgate enforces this
		// dynamically; hotalloc proves it statically.
		ZeroAllocRoots: []string{
			"(*hoiho/internal/extract.Corpus).Extract",
			"(*hoiho/internal/extract.Corpus).ExtractBatch",
			"(*hoiho/internal/extract.Corpus).ExtractBytes",
			"(*hoiho/internal/match.Engine).MatchString",
		},
		LockPkgs: []string{
			"hoiho/internal/serve",
			"hoiho/internal/core",
			"hoiho/internal/cluster",
		},
		ErrPkgs: []string{
			"hoiho/internal/serve",
			"hoiho/internal/extract",
			"hoiho/internal/corpusbin",
			"hoiho/internal/cluster",
		},
		GoroPkgs: []string{
			"hoiho/internal/serve",
			"hoiho/internal/core",
			"hoiho/internal/extract",
			"hoiho/internal/cluster",
		},
	}
}

func (c Config) det(path string) bool     { return containsStr(c.DetPkgs, path) }
func (c Config) panicky(path string) bool { return containsStr(c.PanicPkgs, path) }
func (c Config) ctx(path string) bool     { return containsStr(c.CtxPkgs, path) }
func (c Config) lock(path string) bool    { return containsStr(c.LockPkgs, path) }
func (c Config) errw(path string) bool    { return containsStr(c.ErrPkgs, path) }
func (c Config) goro(path string) bool    { return containsStr(c.GoroPkgs, path) }

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// Run executes the analyzers over the program, drops diagnostics
// suppressed by a matching annotation, and returns the rest sorted by
// position. Malformed annotations are themselves diagnostics.
func (p *Program) Run(analyzers []*Analyzer) []Diagnostic {
	verbs := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		verbs[a.Verb] = true
	}
	ann := collectAnnotations(p, verbs)
	p.ann = ann
	defer func() { p.ann = nil }()
	out := append([]Diagnostic{}, ann.diags...)
	for _, a := range analyzers {
		for _, d := range a.Run(p) {
			if ann.suppressed(a.Verb, d.Pos) || ann.suppressed(a.Verb, d.Anchor) {
				continue
			}
			out = append(out, d)
		}
	}
	// An annotation no diagnostic or budget lookup touched is stale:
	// the code it excused has been fixed or moved, so the waiver must go.
	out = append(out, ann.stale()...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}
