package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// errwrap enforces the error taxonomy of the serving and codec layers
// (Config.ErrPkgs). Two rules over every fmt.Errorf call:
//
//   - Wrapping: an error-typed operand must be formatted with %w, never
//     %v or %s. The serve layer's taxonomy (sentinels + ReloadError
//     with Unwrap) only composes if every intermediate wrap preserves
//     the chain for errors.Is/As.
//
//   - Qualification: the format must identify its origin — it starts
//     with the package's name ("serve: ...", "corpusbin: ...") or with
//     a formatting verb supplying a dynamic qualifier
//     ("%s: %w" with a path argument). An unqualified message like
//     "nc 3: invalid regex" is unattributable once it crosses the
//     daemon boundary.
//
// Dynamic format strings (built at runtime) are skipped: there is
// nothing to check statically.
var errwrap = &Analyzer{
	Name: "errwrap",
	Doc:  "errors are path-qualified and %w-wrapped in the serving/codec packages",
	Verb: "errwrap-ok",
	Run:  runErrWrap,
}

func runErrWrap(p *Program) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range p.Packages {
		if !p.Config.errw(pkg.Path) {
			continue
		}
		errType := types.Universe.Lookup("error").Type()
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isPkgFunc(pkg.Info, call, "fmt", "Errorf") || len(call.Args) == 0 {
					return true
				}
				format, ok := stringLiteral(pkg, call.Args[0])
				if !ok {
					return true
				}
				verbs, parsed := parseVerbs(format)
				if !parsed {
					return true // indexed or otherwise exotic format; out of scope
				}
				// Rule 1: error operands use %w.
				for i, arg := range call.Args[1:] {
					if i >= len(verbs) {
						break
					}
					t := pkg.Info.TypeOf(arg)
					if t == nil || !types.Implements(t, errType.Underlying().(*types.Interface)) {
						continue
					}
					if verbs[i] != 'w' {
						out = append(out, Diagnostic{
							Pos:     p.Fset.Position(arg.Pos()),
							Check:   "errwrap",
							Message: "error operand formatted with %" + string(verbs[i]) + " breaks the errors.Is/As chain; wrap it with %w",
							Suggest: "//hoiho:errwrap-ok <why this error must not be wrapped>",
						})
					}
				}
				// Rule 2: the message is qualified.
				if !qualified(format, pkg.Types.Name()) {
					out = append(out, Diagnostic{
						Pos:     p.Fset.Position(call.Args[0].Pos()),
						Check:   "errwrap",
						Message: "fmt.Errorf message " + strconv.Quote(trimFormat(format)) + " is not qualified; start it with " + strconv.Quote(pkg.Types.Name()+": ") + " (or a dynamic %s qualifier) so the error names its origin",
						Suggest: "//hoiho:errwrap-ok <why this message is intentionally unqualified>",
					})
				}
				return true
			})
		}
	}
	return out
}

// stringLiteral resolves a compile-time constant string: a literal, a
// named constant, or a concatenation of them.
func stringLiteral(pkg *Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	s, err := strconv.Unquote(tv.Value.ExactString())
	if err != nil {
		return "", false
	}
	return s, true
}

// parseVerbs extracts the verb letters of a format string in argument
// order. ok is false for formats it cannot map one-to-one onto the
// argument list (explicit argument indexes, '*' widths).
func parseVerbs(format string) (verbs []byte, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// flags, width, precision
		for i < len(format) && strings.IndexByte("+-# 0123456789.", format[i]) >= 0 {
			i++
		}
		if i >= len(format) {
			return nil, false
		}
		switch format[i] {
		case '%':
			continue
		case '[', '*':
			return nil, false
		default:
			verbs = append(verbs, format[i])
		}
	}
	return verbs, true
}

// qualified reports whether the format identifies its origin: it begins
// with "<pkgname>: " (possibly after deeper qualifiers, e.g.
// "corpusbin: decode: ..."), or with a formatting verb whose argument
// supplies the qualifier dynamically ("%s: ...").
func qualified(format, pkgName string) bool {
	if strings.HasPrefix(format, pkgName+": ") {
		return true
	}
	head, _, found := strings.Cut(format, ": ")
	if !found {
		return false
	}
	return strings.HasPrefix(head, "%")
}

// trimFormat shortens a long format string for the diagnostic.
func trimFormat(format string) string {
	if len(format) > 40 {
		return format[:37] + "..."
	}
	return format
}
