package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// This file is the dataflow half of the typed driver: per-function
// summaries that analyzers combine with call-graph reachability.
// Summaries are computed over a node's OWN body — nested function
// literals are separate graph nodes and are summarized separately, so a
// closure's allocations are attributed to the closure (which is
// reachable from its creator via an EdgeClosure edge), not smeared over
// the enclosing function.

// AllocSite is one place a function allocates: what allocates, where,
// and a human-readable description for the diagnostic.
type AllocSite struct {
	Pos  token.Pos
	Desc string
}

// allocSites summarizes every allocation in the node's own body:
//
//   - append (may grow the backing array)
//   - make / new
//   - map, slice, and &struct composite literals
//   - string concatenation (+ / +=)
//   - string <-> []byte / []rune conversions, except a conversion used
//     directly as a map index (m[string(b)]), which the compiler
//     performs without copying
//   - fmt.* calls (always allocate; their operands' boxing is part of
//     the call and not reported separately)
//   - interface boxing: a non-pointer-shaped concrete value passed
//     where a parameter is interface-typed
//   - creating a function literal (the closure and its captures live on
//     the heap when the closure escapes, which a hot path must assume)
//
// Constant expressions never allocate and are skipped.
func allocSites(pkg *Package, n *Node) []AllocSite {
	body := n.Body()
	if body == nil {
		return nil
	}
	info := pkg.Info
	var sites []AllocSite
	add := func(pos token.Pos, desc string) {
		sites = append(sites, AllocSite{Pos: pos, Desc: desc})
	}

	// Conversions appearing directly as a map index are exempt.
	mapIndexConv := make(map[ast.Expr]bool)
	// Arguments of fmt calls are covered by the call's own site.
	fmtArg := make(map[ast.Expr]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.IndexExpr:
			if isMapType(info, x.X) {
				mapIndexConv[ast.Unparen(x.Index)] = true
			}
		case *ast.CallExpr:
			if isPkgFunc(info, x, "fmt") {
				for _, a := range x.Args {
					fmtArg[ast.Unparen(a)] = true
				}
			}
		}
		return true
	})

	var visit func(x ast.Node)
	visit = func(x ast.Node) {
		if x == nil {
			return
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			if x != n.Lit {
				add(x.Pos(), "creating a closure allocates the function value and heap-promotes its captures")
				return // the literal's body is its own node
			}
		case *ast.CallExpr:
			visitAllocCall(pkg, x, mapIndexConv, fmtArg, add)
		case *ast.CompositeLit:
			switch info.TypeOf(x).Underlying().(type) {
			case *types.Map:
				add(x.Pos(), "map literal allocates")
			case *types.Slice:
				add(x.Pos(), "slice literal allocates its backing array")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					add(x.Pos(), "&"+types.TypeString(info.TypeOf(lit), types.RelativeTo(pkg.Types))+"{...} escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info.TypeOf(x)) && !isConst(info, x) {
				add(x.Pos(), "string concatenation allocates the joined copy")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(info.TypeOf(x.Lhs[0])) {
				add(x.Pos(), "string += allocates the joined copy")
			}
		}
		var children []ast.Node
		ast.Inspect(x, func(c ast.Node) bool {
			if c == nil || c == x {
				return c == x
			}
			children = append(children, c)
			return false
		})
		for _, c := range children {
			visit(c)
		}
	}
	visit(body)
	return sites
}

// visitAllocCall classifies one call expression's allocations.
func visitAllocCall(pkg *Package, call *ast.CallExpr, mapIndexConv, fmtArg map[ast.Expr]bool, add func(token.Pos, string)) {
	info := pkg.Info

	// Conversion? (string <-> []byte/[]rune)
	if fun := ast.Unparen(call.Fun); len(call.Args) == 1 {
		if tv, ok := info.Types[fun]; ok && tv.IsType() {
			if isConst(info, call) || mapIndexConv[call] {
				return
			}
			to, from := tv.Type, info.TypeOf(call.Args[0])
			switch {
			case isStringType(to) && isByteOrRuneSlice(from):
				add(call.Pos(), "string(...) conversion copies the bytes")
			case isByteOrRuneSlice(to) && isStringType(from):
				add(call.Pos(), types.TypeString(to, types.RelativeTo(pkg.Types))+"(...) conversion copies the string")
			}
			return
		}
	}

	if isBuiltin(info, call, "append") {
		add(call.Pos(), "append may grow the backing array")
		return
	}
	if isBuiltin(info, call, "make") {
		add(call.Pos(), "make allocates")
		return
	}
	if isBuiltin(info, call, "new") {
		add(call.Pos(), "new allocates")
		return
	}
	if isPkgFunc(info, call, "fmt") {
		obj := calleeObj(info, call)
		add(call.Pos(), "fmt."+obj.Name()+" formats through reflection and allocates")
		return
	}

	// Interface boxing at the call boundary: a concrete, non-pointer-
	// shaped argument passed to an interface-typed parameter is copied
	// to the heap. fmt arguments are covered by the fmt call site.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if fmtArg[ast.Unparen(arg)] || isConst(info, arg) {
			continue
		}
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through ...: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isPointerShaped(at) || isUntypedNil(at) {
			continue
		}
		add(arg.Pos(), "passing "+types.TypeString(at, types.RelativeTo(pkg.Types))+" as "+types.TypeString(pt, types.RelativeTo(pkg.Types))+" boxes it on the heap")
	}
}

// callSignature returns the callee's signature for ordinary calls, nil
// for conversions and builtins.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isPointerShaped reports whether values of t fit in a pointer word and
// convert to interfaces without allocating a copy.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// isConst reports whether the expression is a compile-time constant
// (constants convert and box at link time, not per call).
func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// --- lock / atomic summaries -------------------------------------------

// LockOp is one mutex operation in a function body, in source order.
type LockOp struct {
	Key    string // stable identity of the mutex (see mutexKey)
	Pos    token.Pos
	Unlock bool
	Defer  bool
}

// lockSummary lists the node's mutex Lock/RLock/Unlock/RUnlock calls in
// source order. Deferred unlocks are marked: they release at function
// end, so for ordering purposes the mutex stays held.
func lockSummary(pkg *Package, n *Node) []LockOp {
	body := n.Body()
	if body == nil {
		return nil
	}
	var ops []LockOp
	var visit func(x ast.Node, deferred bool)
	visit = func(x ast.Node, deferred bool) {
		if x == nil {
			return
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			if x != n.Lit {
				return // separate node
			}
		case *ast.DeferStmt:
			visit(x.Call, true)
			return
		case *ast.CallExpr:
			if sel, ok := callViaSelection(pkg, x); ok && isMutexType(pkg.Info.TypeOf(sel.X)) {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					ops = append(ops, LockOp{Key: mutexKey(pkg, sel.X), Pos: x.Pos(), Defer: deferred})
				case "Unlock", "RUnlock":
					ops = append(ops, LockOp{Key: mutexKey(pkg, sel.X), Pos: x.Pos(), Unlock: true, Defer: deferred})
				}
			}
		}
		var children []ast.Node
		ast.Inspect(x, func(c ast.Node) bool {
			if c == nil || c == x {
				return c == x
			}
			children = append(children, c)
			return false
		})
		for _, c := range children {
			visit(c, deferred)
		}
	}
	visit(body, false)
	return ops
}

// isMutexType reports whether t (possibly behind pointers) is
// sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// mutexKey derives a stable identity for the locked expression:
//
//   - a field on a named type -> "Type.field" (the same mutex across
//     every method of the type, so cross-function orderings compare);
//   - a package-level var -> "pkg.var";
//   - a local -> "local@file:line" of its declaration, unique per
//     declaration so unrelated locals in different functions never
//     alias.
func mutexKey(pkg *Package, e ast.Expr) string {
	e = ast.Unparen(e)
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if named := namedOf(s.Recv()); named != nil {
				return named.Obj().Name() + "." + sel.Sel.Name
			}
		}
		// Qualified package-level var (pkg.Mu) or field on an unnamed
		// receiver: fall back to the printed form.
		return exprString(e)
	}
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := objOf(pkg.Info, id).(*types.Var); ok {
			if v.Parent() == pkg.Types.Scope() {
				return pkg.Types.Name() + "." + v.Name()
			}
			// token.Pos is unique per declaration across the FileSet, so
			// unrelated locals never alias.
			return "local@" + strconv.Itoa(int(v.Pos()))
		}
	}
	return exprString(e)
}

// namedOf unwraps pointers to a named type.
func namedOf(t types.Type) *types.Named {
	for {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, _ := t.(*types.Named)
	return named
}

// AtomicAccess records how a struct field is touched: through
// sync/atomic, or plainly.
type AtomicAccess struct {
	Key    string // "Type.field"
	Pos    token.Pos
	Atomic bool
	Write  bool
}

// atomicSummary lists accesses to named-type fields that are either
// passed by address to a sync/atomic function or read/written plainly.
// Fields never touched by sync/atomic are omitted by the caller's join;
// this summary just records both sides.
func atomicSummary(pkg *Package, n *Node) []AtomicAccess {
	body := n.Body()
	if body == nil {
		return nil
	}
	info := pkg.Info
	var accs []AtomicAccess

	// Field selectors consumed by &x.f arguments to sync/atomic calls.
	atomicOperand := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok || !isPkgFunc(info, call, "sync/atomic") {
			return true
		}
		for _, a := range call.Args {
			if u, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && u.Op == token.AND {
				if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
					if key, ok := fieldKey(pkg, sel); ok {
						atomicOperand[sel] = true
						accs = append(accs, AtomicAccess{Key: key, Pos: sel.Pos(), Atomic: true})
					}
				}
			}
		}
		return true
	})

	// Plain accesses: every other selector resolving to a named-type
	// field of a basic (integer/word) type — the shapes sync/atomic
	// operates on.
	lhs := make(map[ast.Expr]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		if as, ok := x.(*ast.AssignStmt); ok {
			for _, l := range as.Lhs {
				lhs[ast.Unparen(l)] = true
			}
		}
		if inc, ok := x.(*ast.IncDecStmt); ok {
			lhs[ast.Unparen(inc.X)] = true
		}
		return true
	})
	var visit func(x ast.Node)
	visit = func(x ast.Node) {
		if x == nil {
			return
		}
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
			return
		}
		if sel, ok := x.(*ast.SelectorExpr); ok && !atomicOperand[sel] {
			if key, ok := fieldKey(pkg, sel); ok {
				if isAtomicShaped(info.TypeOf(sel)) {
					accs = append(accs, AtomicAccess{Key: key, Pos: sel.Pos(), Write: lhs[sel]})
				}
			}
		}
		var children []ast.Node
		ast.Inspect(x, func(c ast.Node) bool {
			if c == nil || c == x {
				return c == x
			}
			children = append(children, c)
			return false
		})
		for _, c := range children {
			visit(c)
		}
	}
	visit(body)
	return accs
}

// fieldKey resolves a selector to "Type.field" when it selects a field
// of a named struct type.
func fieldKey(pkg *Package, sel *ast.SelectorExpr) (string, bool) {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	named := namedOf(s.Recv())
	if named == nil {
		return "", false
	}
	return named.Obj().Name() + "." + sel.Sel.Name, true
}

// isAtomicShaped reports whether t is a type sync/atomic functions
// operate on (fixed-size integers, uintptr, unsafe.Pointer).
func isAtomicShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr, types.UnsafePointer, types.Int, types.Uint:
		return true
	}
	return false
}
