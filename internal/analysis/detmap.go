package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// detmap flags range statements over maps, in deterministic packages,
// whose bodies leak iteration order into observable state: appending to
// an outer slice, concatenating onto an outer string, writing output,
// sending on a channel, or writing an outer slice through a
// loop-carried counter. Go randomizes map iteration order per run, so
// any of these makes training output, learned NCs, or figure tables
// differ between runs — the exact failure mode the value-pinned tests
// exist to catch, except on someone else's machine.
//
// A site is exempt when the collected slice is passed to a sort.* or
// slices.* call later in the same statement list (collect-then-sort is
// the blessed pattern), or when annotated //hoiho:nondet-ok <reason>.
// Commutative updates (numeric aggregation, map writes, deletes) are
// not flagged.
var detmap = &Analyzer{
	Name: "detmap",
	Doc:  "map iteration order must not reach slices, strings, output, or channels in deterministic packages",
	Verb: "nondet-ok",
	Run:  runDetmap,
}

// mapEffect is one order-sensitive effect inside a range-over-map body.
type mapEffect struct {
	pos    token.Pos
	msg    string
	target string // exprString of the collected slice; "" when not sortable
}

func runDetmap(p *Program) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range p.Packages {
		if !p.Config.det(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			stmtLists(f, func(list []ast.Stmt) {
				for i, s := range list {
					rs, ok := unlabel(s).(*ast.RangeStmt)
					if !ok || !isMapType(pkg.Info, rs.X) {
						continue
					}
					for _, eff := range mapRangeEffects(pkg.Info, rs) {
						if eff.target != "" && sortedAfter(pkg.Info, list[i+1:], eff.target) {
							continue
						}
						out = append(out, Diagnostic{
							Pos:     p.Fset.Position(eff.pos),
							Check:   "detmap",
							Message: eff.msg + " inside range over map " + quote(exprString(rs.X)) + "; map order is randomized — sort the keys first, sort the result, or annotate",
							Suggest: "//hoiho:nondet-ok <why iteration order cannot reach output>",
							Anchor:  p.Fset.Position(rs.Pos()),
						})
					}
				}
			})
		}
	}
	return out
}

// mapRangeEffects walks the loop body collecting order-sensitive
// effects on state declared outside the body.
func mapRangeEffects(info *types.Info, rs *ast.RangeStmt) []mapEffect {
	lo, hi := rs.Body.Pos(), rs.Body.End()
	outer := func(e ast.Expr) bool {
		id := rootIdent(e)
		if id == nil {
			return false
		}
		obj := objOf(info, id)
		if obj == nil {
			return false
		}
		// The range key/value variables are declared at the range clause,
		// outside the body range, but are per-iteration: not shared state.
		if keyValueIdent(rs.Key, obj) || keyValueIdent(rs.Value, obj) {
			return false
		}
		return !declaredWithin(obj, lo, hi)
	}
	counters := loopCounters(info, rs.Body, lo, hi)

	var effs []mapEffect
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Nested range-over-map gets its own report; its effects are
			// still effects of this loop, so keep walking.
		case *ast.AssignStmt:
			effs = append(effs, assignEffects(info, n, outer, counters)...)
		case *ast.SendStmt:
			if outer(n.Chan) {
				effs = append(effs, mapEffect{pos: n.Arrow, msg: "sends on channel " + quote(exprString(n.Chan))})
			}
		case *ast.CallExpr:
			if eff, ok := writeCallEffect(info, n, outer); ok {
				effs = append(effs, eff)
			}
		}
		return true
	})
	return effs
}

func keyValueIdent(e ast.Expr, obj types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && obj.Pos() == id.Pos()
}

// loopCounters collects outer variables mutated by ++/--/compound
// assignment inside the body: writing out[i] with such an i is an
// append in disguise.
func loopCounters(info *types.Info, body *ast.BlockStmt, lo, hi token.Pos) map[types.Object]bool {
	counters := make(map[types.Object]bool)
	record := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := objOf(info, id); obj != nil && !declaredWithin(obj, lo, hi) {
				counters[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IncDecStmt:
			record(n.X)
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN {
				for _, l := range n.Lhs {
					record(l)
				}
			}
		}
		return true
	})
	return counters
}

// assignEffects classifies one assignment inside the loop body.
func assignEffects(info *types.Info, as *ast.AssignStmt, outer func(ast.Expr) bool, counters map[types.Object]bool) []mapEffect {
	var effs []mapEffect
	for i, lhs := range as.Lhs {
		if !outer(lhs) {
			continue
		}
		switch as.Tok {
		case token.ADD_ASSIGN:
			if t := info.TypeOf(lhs); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					effs = append(effs, mapEffect{pos: as.Pos(), msg: "concatenates onto string " + quote(exprString(lhs))})
				}
			}
		case token.ASSIGN, token.DEFINE:
			if i < len(as.Rhs) {
				if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok && isBuiltin(info, call, "append") {
					t := exprString(lhs)
					effs = append(effs, mapEffect{pos: as.Pos(), msg: "appends to " + quote(t), target: t})
					continue
				}
			}
			// Writing an outer slice at a loop-carried counter index is an
			// append in disguise; writing m2[k] at the iteration key is
			// order-independent and stays silent.
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				if isMapType(info, ix.X) {
					continue
				}
				if id, ok := ast.Unparen(ix.Index).(*ast.Ident); ok {
					if obj := objOf(info, id); obj != nil && counters[obj] {
						effs = append(effs, mapEffect{
							pos: as.Pos(), msg: fmt.Sprintf("writes %s at loop-carried counter %s", quote(exprString(ix.X)), quote(id.Name)),
							target: exprString(ix.X),
						})
					}
				}
			}
		}
	}
	return effs
}

// writeCallEffect flags calls that emit output per iteration: fmt and
// log printers, and Write*/Encode methods on writers declared outside
// the loop.
func writeCallEffect(info *types.Info, call *ast.CallExpr, outer func(ast.Expr) bool) (mapEffect, bool) {
	if isPkgFunc(info, call, "fmt", "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf") ||
		isPkgFunc(info, call, "log") {
		return mapEffect{pos: call.Pos(), msg: "writes output via " + quote(exprString(call.Fun))}, true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return mapEffect{}, false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
	default:
		return mapEffect{}, false
	}
	// Method (not qualified package function) on an outer receiver.
	if _, isSel := info.Selections[sel]; !isSel {
		return mapEffect{}, false
	}
	if !outer(sel.X) {
		return mapEffect{}, false
	}
	return mapEffect{pos: call.Pos(), msg: "writes to " + quote(exprString(sel.X)) + " via " + sel.Sel.Name}, true
}

// sortedAfter reports whether a statement after the loop passes target
// to a sort.* or slices.* call (directly or wrapped, e.g.
// sort.Sort(byName(target)) or sort.Slice(&target, ...)).
func sortedAfter(info *types.Info, following []ast.Stmt, target string) bool {
	for _, s := range following {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if !isPkgFunc(info, call, "sort") && !isPkgFunc(info, call, "slices") {
				return true
			}
			for _, arg := range call.Args {
				if containsExpr(arg, target) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
