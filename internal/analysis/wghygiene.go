package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// wghygiene checks the goroutine patterns the repo's parallel stages
// (extract/batch.go, core/matrix.go, core/learn.go) rely on:
//
//   - wg.Add must run before the goroutine is spawned, never inside it
//     (inside, Wait can return before Add runs);
//   - wg.Done inside a goroutine must be deferred so every return and
//     panic path releases the wait;
//   - close() of a shared channel inside a goroutine with early returns
//     must be deferred for the same reason;
//   - writes to a shared result slice inside a goroutine must be
//     indexed by a variable the goroutine owns — a closure-local, a
//     parameter, or a captured per-iteration loop variable — never by a
//     variable shared across goroutines, and never via append (the
//     shard pattern: out[i] = f(in[i])).
//
// Both `go func(){...}()` and `go worker(...)` launches are checked:
// named workers resolve through the typed call graph to their
// declaration, whose body is held to the same rules (parameters count
// as goroutine-owned). A worker launched from several sites is checked
// once.
var wghygiene = &Analyzer{
	Name: "wghygiene",
	Doc:  "WaitGroup and shard-pattern discipline for goroutines",
	Verb: "wg-ok",
	Run:  runWGHygiene,
}

func runWGHygiene(p *Program) []Diagnostic {
	g := p.CallGraph()
	checkedDecl := make(map[*Node]bool)
	var out []Diagnostic
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			// Track loop variables of every for/range enclosing each go
			// statement: per-iteration since Go 1.22, so safe to index by.
			var loopVars []map[types.Object]bool
			var walk func(n ast.Node)
			walk = func(n ast.Node) {
				if n == nil {
					return
				}
				push := false
				switch n := n.(type) {
				case *ast.RangeStmt:
					vars := make(map[types.Object]bool)
					for _, e := range []ast.Expr{n.Key, n.Value} {
						if id, ok := e.(*ast.Ident); ok {
							if obj := pkg.Info.Defs[id]; obj != nil {
								vars[obj] = true
							}
						}
					}
					loopVars = append(loopVars, vars)
					push = true
				case *ast.ForStmt:
					vars := make(map[types.Object]bool)
					if as, ok := n.Init.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
						for _, e := range as.Lhs {
							if id, ok := e.(*ast.Ident); ok {
								if obj := pkg.Info.Defs[id]; obj != nil {
									vars[obj] = true
								}
							}
						}
					}
					loopVars = append(loopVars, vars)
					push = true
				case *ast.GoStmt:
					if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
						owned := make(map[types.Object]bool)
						for _, vars := range loopVars {
							for o := range vars {
								owned[o] = true
							}
						}
						out = append(out, checkGoroutineBody(p, pkg, lit.Body, lit.Pos(), lit.End(), owned)...)
					} else if fn, ok := calleeObj(pkg.Info, n.Call).(*types.Func); ok {
						// A named worker: resolve to its declaration and hold
						// the body to the same rules. Its parameters are
						// declared within the decl span, so they count as
						// goroutine-owned automatically.
						if node := g.NodeOf(fn); node != nil && node.Decl != nil && node.Decl.Body != nil && !checkedDecl[node] {
							checkedDecl[node] = true
							out = append(out, checkGoroutineBody(p, node.Pkg, node.Decl.Body, node.Decl.Pos(), node.Decl.End(), nil)...)
						}
					}
				}
				var children []ast.Node
				ast.Inspect(n, func(c ast.Node) bool {
					if c == nil || c == n {
						return c == n
					}
					children = append(children, c)
					return false
				})
				for _, c := range children {
					walk(c)
				}
				if push {
					loopVars = loopVars[:len(loopVars)-1]
				}
			}
			walk(f)
		}
	}
	return out
}

// checkGoroutineBody inspects one goroutine body — a go'd function
// literal or the declaration of a named worker. owned is the set of
// enclosing per-iteration loop variables the goroutine may safely use
// as shard indexes; anything declared within [lo, hi] (locals,
// parameters) is owned implicitly.
func checkGoroutineBody(p *Program, pkg *Package, body *ast.BlockStmt, lo, hi token.Pos, owned map[types.Object]bool) []Diagnostic {
	var out []Diagnostic
	local := func(obj types.Object) bool {
		return owned[obj] || declaredWithin(obj, lo, hi)
	}
	hasReturn := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.ReturnStmt); ok {
			hasReturn = true
		}
		return true
	})

	// deferred tracks whether each node sits under a defer statement
	// (directly or inside a deferred closure).
	var visit func(n ast.Node, deferred bool)
	visit = func(n ast.Node, deferred bool) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			visit(n.Call, true)
			return
		case *ast.CallExpr:
			if sel, isMethod := callViaSelection(pkg, n); isMethod && isWaitGroup(pkg.Info.TypeOf(sel.X)) {
				switch sel.Sel.Name {
				case "Add":
					out = append(out, Diagnostic{
						Pos:     p.Fset.Position(n.Pos()),
						Check:   "wghygiene",
						Message: quote(exprString(sel.X)) + ".Add inside the spawned goroutine races Wait; call Add before the go statement",
						Suggest: "//hoiho:wg-ok <why Add-inside-goroutine cannot race Wait here>",
					})
				case "Done":
					if !deferred {
						out = append(out, Diagnostic{
							Pos:     p.Fset.Position(n.Pos()),
							Check:   "wghygiene",
							Message: quote(exprString(sel.X)) + ".Done is not deferred; an early return or panic would leak the WaitGroup",
							Suggest: "//hoiho:wg-ok <why every path reaches this Done>",
						})
					}
				}
			}
			if isBuiltin(pkg.Info, n, "close") && !deferred && hasReturn && len(n.Args) == 1 {
				if id := rootIdent(n.Args[0]); id != nil {
					if obj := objOf(pkg.Info, id); obj != nil && !local(obj) {
						out = append(out, Diagnostic{
							Pos:     p.Fset.Position(n.Pos()),
							Check:   "wghygiene",
							Message: "close(" + exprString(n.Args[0]) + ") is not deferred but the goroutine has return paths; a skipped close deadlocks the receiver",
							Suggest: "//hoiho:wg-ok <why every path reaches this close>",
						})
					}
				}
			}
		case *ast.AssignStmt:
			out = append(out, checkShardWrites(p, pkg, n, local)...)
		}
		var children []ast.Node
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || c == n {
				return c == n
			}
			children = append(children, c)
			return false
		})
		for _, c := range children {
			visit(c, deferred)
		}
	}
	visit(body, false)
	return out
}

// checkShardWrites flags result-slice writes in a goroutine that are
// not shard-safe: appends to shared slices, and element writes indexed
// by a variable shared across goroutines.
func checkShardWrites(p *Program, pkg *Package, as *ast.AssignStmt, local func(types.Object) bool) []Diagnostic {
	var out []Diagnostic
	sharedRoot := func(e ast.Expr) (string, bool) {
		id := rootIdent(e)
		if id == nil {
			return "", false
		}
		obj := objOf(pkg.Info, id)
		if obj == nil || local(obj) {
			return "", false
		}
		return exprString(e), true
	}
	for i, lhs := range as.Lhs {
		if as.Tok == token.ASSIGN && i < len(as.Rhs) {
			if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok && isBuiltin(pkg.Info, call, "append") {
				if name, shared := sharedRoot(lhs); shared {
					out = append(out, Diagnostic{
						Pos:     p.Fset.Position(as.Pos()),
						Check:   "wghygiene",
						Message: "append to " + quote(name) + " shared across goroutines is a data race; preallocate and write by shard index instead",
						Suggest: "//hoiho:wg-ok <why this append cannot race>",
					})
					continue
				}
			}
		}
		ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		if t := pkg.Info.TypeOf(ix.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				if name, shared := sharedRoot(ix.X); shared {
					out = append(out, Diagnostic{
						Pos:     p.Fset.Position(as.Pos()),
						Check:   "wghygiene",
						Message: "write to map " + quote(name) + " shared across goroutines is a data race; maps are not goroutine-safe",
						Suggest: "//hoiho:wg-ok <why this map write is externally synchronized>",
					})
				}
				continue
			}
		}
		name, shared := sharedRoot(ix.X)
		if !shared {
			continue
		}
		badIdx := false
		ast.Inspect(ix.Index, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := objOf(pkg.Info, id)
			if _, isVar := obj.(*types.Var); isVar && !local(obj) {
				badIdx = true
			}
			return true
		})
		if badIdx {
			out = append(out, Diagnostic{
				Pos:     p.Fset.Position(as.Pos()),
				Check:   "wghygiene",
				Message: "write to " + quote(name) + " indexed by a variable shared across goroutines; shard writes must use a captured loop variable or goroutine-local index",
				Suggest: "//hoiho:wg-ok <why this index cannot collide across goroutines>",
			})
		}
	}
	return out
}
