package analysis

import (
	"go/ast"
)

// panicguard flags panic calls in library packages. Hoiho's libraries
// are consumed by long-running services (the serving Corpus, bdrmapIT
// annotation); a panic there takes down the whole process over one bad
// input. Errors must be returned and propagated. The only panics that
// may stay are invariants on embedded data — e.g. the compiled-in PSL
// snapshot failing to parse means the binary itself is broken — and
// each of those carries a //hoiho:panic-ok annotation saying so.
var panicguard = &Analyzer{
	Name: "panicguard",
	Doc:  "library packages return errors; panics only on annotated embedded-data invariants",
	Verb: "panic-ok",
	Run:  runPanicGuard,
}

func runPanicGuard(p *Program) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range p.Packages {
		if !p.Config.panicky(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isBuiltin(pkg.Info, call, "panic") {
					return true
				}
				out = append(out, Diagnostic{
					Pos:     p.Fset.Position(call.Pos()),
					Check:   "panicguard",
					Message: "panic in a library package; return an error, or annotate an invariant on embedded data",
					Suggest: "//hoiho:panic-ok <which embedded-data invariant guarantees this is unreachable>",
				})
				return true
			})
		}
	}
	return out
}
