package analysis

import (
	"sort"
)

// lockorder guards the serve-layer concurrency discipline two ways:
//
//   - Acquisition order: when one function acquires mutex B while
//     holding mutex A, and another acquires A while holding B, the two
//     can deadlock under contention. The analyzer summarizes every
//     function's lock operations (lockSummary), derives held-while-
//     acquiring pairs, and reports every inversion. Mutexes are
//     identified structurally (Type.field / pkg.var), so the reload
//     path taking reloadMu then drainMu in one method and the reverse
//     in another is caught across function boundaries.
//
//   - Atomic mixing: a field updated through sync/atomic in one place
//     and read or written plainly in another has no happens-before
//     relationship at the plain access; under -race this is a report,
//     in production it is a torn or stale read. (Typed atomics —
//     atomic.Int64 and friends — are immune by construction and need
//     nothing from this check.)
//
// Both rules run only over Config.LockPkgs.
var lockorder = &Analyzer{
	Name: "lockorder",
	Doc:  "consistent mutex acquisition order; no mixed atomic/plain field access",
	Verb: "lockorder-ok",
	Run:  runLockOrder,
}

type lockPair struct {
	first, second string
}

func runLockOrder(p *Program) []Diagnostic {
	g := p.CallGraph()
	var out []Diagnostic

	// --- acquisition order ---------------------------------------------
	// pairs maps (held, acquired) to the acquisition that first
	// established the order.
	pairs := make(map[lockPair]Diagnostic)
	for _, n := range g.Nodes {
		if n.Pkg == nil || !p.Config.lock(n.Pkg.Path) {
			continue
		}
		ops := lockSummary(n.Pkg, n)
		var held []string
		for _, op := range ops {
			if op.Unlock {
				if op.Defer {
					continue // releases at return; stays held for ordering
				}
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == op.Key {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
				continue
			}
			for _, h := range held {
				if h == op.Key {
					continue
				}
				pr := lockPair{first: h, second: op.Key}
				if _, ok := pairs[pr]; !ok {
					pairs[pr] = Diagnostic{
						Pos:     p.Fset.Position(op.Pos),
						Check:   "lockorder",
						Message: "acquires " + quote(op.Key) + " while holding " + quote(h),
					}
				}
			}
			held = append(held, op.Key)
		}
	}
	var keys []lockPair
	for pr := range pairs {
		keys = append(keys, pr)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].first != keys[j].first {
			return keys[i].first < keys[j].first
		}
		return keys[i].second < keys[j].second
	})
	reported := make(map[lockPair]bool)
	for _, pr := range keys {
		inv := lockPair{first: pr.second, second: pr.first}
		other, ok := pairs[inv]
		if !ok || reported[pr] || reported[inv] {
			continue
		}
		reported[pr], reported[inv] = true, true
		d := pairs[pr]
		d.Message = "lock order inversion: " + d.Message + ", but " + other.Pos.String() + " acquires " + quote(inv.second) + " while holding " + quote(inv.first) + "; pick one order"
		d.Suggest = "//hoiho:lockorder-ok <why these two orders cannot deadlock>"
		out = append(out, d)
		o := other
		o.Message = "lock order inversion: " + o.Message + ", but " + pairs[pr].Pos.String() + " acquires " + quote(pr.second) + " while holding " + quote(pr.first) + "; pick one order"
		o.Suggest = "//hoiho:lockorder-ok <why these two orders cannot deadlock>"
		out = append(out, o)
	}

	// --- atomic / plain mixing -----------------------------------------
	atomicAt := make(map[string]Diagnostic) // field key -> first atomic access
	var plain []struct {
		key string
		d   Diagnostic
	}
	for _, n := range g.Nodes {
		if n.Pkg == nil || !p.Config.lock(n.Pkg.Path) {
			continue
		}
		for _, acc := range atomicSummary(n.Pkg, n) {
			pos := p.Fset.Position(acc.Pos)
			if acc.Atomic {
				if _, ok := atomicAt[acc.Key]; !ok {
					atomicAt[acc.Key] = Diagnostic{Pos: pos}
				}
			} else {
				what := "read"
				if acc.Write {
					what = "write"
				}
				plain = append(plain, struct {
					key string
					d   Diagnostic
				}{acc.Key, Diagnostic{
					Pos:     pos,
					Check:   "lockorder",
					Message: "plain " + what + " of " + quote(acc.Key) + " which is accessed via sync/atomic",
				}})
			}
		}
	}
	for _, pl := range plain {
		at, ok := atomicAt[pl.key]
		if !ok {
			continue
		}
		d := pl.d
		d.Message += " at " + at.Pos.String() + "; use the atomic API everywhere or switch the field to a typed atomic"
		d.Suggest = "//hoiho:lockorder-ok <why this plain access cannot race the atomic ones>"
		out = append(out, d)
	}
	return out
}
