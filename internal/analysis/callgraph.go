package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// This file is the typed interprocedural driver every reachability-based
// analyzer shares. The PR 3 pass resolved callees with a hand-rolled
// ident walk, which missed three whole classes of edges: calls through
// method values (f := c.helper; f()), dynamic dispatch through
// interfaces (matcher.MatchString where matcher is a match.Matcher),
// and closures handed to other code. A fmt.Sprintf two calls deep
// behind any of those was invisible to the old graph — exactly the
// shape that silently re-allocates the zero-alloc hot path. The typed
// graph resolves all three against go/types:
//
//   - static calls and method calls bind to the callee's *types.Func;
//   - interface-method calls fan out to every declared implementation
//     in the module (types.Implements over the package scopes);
//   - references to functions — method values, method expressions,
//     function identifiers used as values — add a "ref" edge from the
//     referencing function, so a function stored now and called later
//     is reachable from the code that took its address;
//   - every function literal is its own node with a "closure" edge from
//     its encloser (creating a closure in hot code makes its body hot),
//     and a local variable bound to exactly one function literal or
//     declared function resolves calls through that variable directly.
//
// The graph is deliberately an over-approximation: a ref edge means
// "may be invoked by code this function armed", not "is always called".
// For the invariants checked here (no fresh compiles, no allocations,
// no unguarded sends on hot/reachable paths) over-approximation errs
// exactly the right way.

// EdgeKind classifies how a caller reaches a callee.
type EdgeKind uint8

const (
	// EdgeCall is a direct static call (function, method, or a call
	// through a local variable bound to exactly one function).
	EdgeCall EdgeKind = iota
	// EdgeDispatch is an interface-method call resolved to a declared
	// implementation in the module.
	EdgeDispatch
	// EdgeRef is a function reference: a method value, method
	// expression, or function identifier used as a value. The target may
	// be invoked later by whoever receives the value.
	EdgeRef
	// EdgeClosure connects a function to a literal it creates.
	EdgeClosure
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeDispatch:
		return "dispatch"
	case EdgeRef:
		return "ref"
	case EdgeClosure:
		return "closure"
	}
	return "?"
}

// Edge is one resolved caller→callee relation with the source position
// that justifies it.
type Edge struct {
	Kind EdgeKind
	Pos  token.Pos
	To   *Node
}

// Node is one function in the typed call graph: a declared function or
// method (Fn != nil, Decl != nil) or a function literal (Lit != nil).
type Node struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Pkg  *Package
	// Edges are the node's outgoing edges in source order.
	Edges []Edge
	// OnceBody marks a literal passed directly to (*sync.Once).Do: its
	// body runs exactly once per Once no matter how hot the caller, so
	// per-item analyses (hotalloc) do not descend into it.
	OnceBody bool
	name     string
}

// Name returns the node's stable display name: (*types.Func).FullName
// for declared functions, "func@file:line" for literals.
func (n *Node) Name() string { return n.name }

// Body returns the node's function body (nil for bodiless decls).
func (n *Node) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	if n.Decl != nil {
		return n.Decl.Body
	}
	return nil
}

// Graph is the module-wide typed call graph. Build it once per Program
// via (*Program).CallGraph.
type Graph struct {
	Nodes  []*Node
	byFn   map[*types.Func]*Node
	byLit  map[*ast.FuncLit]*Node
	byName map[string]*Node
	prog   *Program

	implMu    sync.Mutex
	implCache map[implKey][]*Node
	named     []*types.Named // every named (non-interface-alias) type declared in the module
}

type implKey struct {
	iface  *types.Interface
	method string
}

// CallGraph returns the program's typed call graph, building it on
// first use.
func (p *Program) CallGraph() *Graph {
	p.graphOnce.Do(func() { p.graph = buildGraph(p) })
	return p.graph
}

// NodeOf returns the node for a declared function, or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFn[fn] }

// NodeOfLit returns the node for a function literal, or nil.
func (g *Graph) NodeOfLit(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// NodeByName resolves a (*types.Func).FullName-style root name.
func (g *Graph) NodeByName(full string) *Node { return g.byName[full] }

// UnresolvedRoots returns every configured root name (hot roots and
// zero-alloc roots) that does not resolve to a declared function in the
// loaded module. A rename of ExtractBatch must fail loudly here, not
// silently disable the analyzers rooted at it.
func (p *Program) UnresolvedRoots() []string {
	g := p.CallGraph()
	seen := make(map[string]bool)
	var missing []string
	for _, name := range append(append([]string{}, p.Config.HotRoots...), p.Config.ZeroAllocRoots...) {
		if seen[name] {
			continue
		}
		seen[name] = true
		if g.NodeByName(name) == nil {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	return missing
}

// Reachable walks the graph from the named roots and maps every
// reachable node to the name of the root it was first reached from
// (BFS, so the nearest root wins deterministically). skip, when
// non-nil, prunes traversal: a skipped node is neither visited nor
// descended into.
func (g *Graph) Reachable(roots []string, skip func(*Node) bool) map[*Node]string {
	reach := make(map[*Node]string)
	var queue []*Node
	for _, name := range roots {
		n := g.byName[name]
		if n == nil || (skip != nil && skip(n)) {
			continue
		}
		if _, ok := reach[n]; ok {
			continue
		}
		reach[n] = name
		queue = append(queue, n)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Edges {
			if _, ok := reach[e.To]; ok {
				continue
			}
			if skip != nil && skip(e.To) {
				continue
			}
			reach[e.To] = reach[n]
			queue = append(queue, e.To)
		}
	}
	return reach
}

// DOT renders the subgraph reachable from root as Graphviz DOT, nodes
// and edges sorted for stable output. It errors when root does not
// resolve.
func (g *Graph) DOT(root string) (string, error) {
	start := g.byName[root]
	if start == nil {
		return "", fmt.Errorf("root %q does not resolve to a declared function in the module", root)
	}
	reach := g.Reachable([]string{root}, nil)
	var lines []string
	for n := range reach {
		for _, e := range n.Edges {
			if _, ok := reach[e.To]; !ok {
				continue
			}
			lines = append(lines, fmt.Sprintf("  %q -> %q [label=%q];", n.Name(), e.To.Name(), e.Kind.String()))
		}
	}
	sort.Strings(lines)
	// Deduplicate parallel edges of the same kind for readability.
	uniq := lines[:0]
	for i, l := range lines {
		if i == 0 || l != lines[i-1] {
			uniq = append(uniq, l)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", root)
	for _, l := range uniq {
		b.WriteString(l)
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return b.String(), nil
}

func buildGraph(p *Program) *Graph {
	g := &Graph{
		byFn:      make(map[*types.Func]*Node),
		byLit:     make(map[*ast.FuncLit]*Node),
		byName:    make(map[string]*Node),
		prog:      p,
		implCache: make(map[implKey][]*Node),
	}
	// Pass 0: named types (for interface dispatch) and declared nodes.
	for _, pkg := range p.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				g.named = append(g.named, named)
			}
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := &Node{Fn: fn, Decl: fd, Pkg: pkg, name: fn.FullName()}
				g.Nodes = append(g.Nodes, n)
				g.byFn[fn] = n
				g.byName[n.name] = n
			}
		}
	}
	// Pass 1: walk every declared body, creating literal nodes and edges.
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				owner := g.byFn[pkg.Info.Defs[fd.Name].(*types.Func)]
				b := &graphBuilder{g: g, pkg: pkg, bindings: collectBindings(pkg, fd.Body)}
				b.walk(fd.Body, owner)
			}
		}
	}
	return g
}

// collectBindings maps local variables to the single function they are
// bound to, when that binding is unambiguous: every assignment to the
// variable in the body has a function literal, function identifier, or
// method value on its right-hand side, and they all name one target.
// Calls through such a variable resolve as direct calls.
func collectBindings(pkg *Package, body *ast.BlockStmt) map[*types.Var]ast.Expr {
	cands := make(map[*types.Var][]ast.Expr)
	poisoned := make(map[*types.Var]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		v, ok := objOf(pkg.Info, id).(*types.Var)
		if !ok || v.IsField() {
			return
		}
		if _, isSig := v.Type().Underlying().(*types.Signature); !isSig {
			return
		}
		switch ast.Unparen(rhs).(type) {
		case *ast.FuncLit, *ast.Ident, *ast.SelectorExpr:
			cands[v] = append(cands[v], ast.Unparen(rhs))
		default:
			poisoned[v] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			record(as.Lhs[i], as.Rhs[i])
		}
		return true
	})
	out := make(map[*types.Var]ast.Expr)
	for v, rhss := range cands {
		if poisoned[v] || len(rhss) != 1 {
			continue
		}
		out[v] = rhss[0]
	}
	return out
}

type graphBuilder struct {
	g        *Graph
	pkg      *Package
	bindings map[*types.Var]ast.Expr
	// callFuns marks expressions that are the callee position of a call,
	// so the reference pass does not double-count them.
	callFuns map[ast.Expr]bool
}

// walk visits n attributing edges to owner; entering a function literal
// switches ownership to the literal's node.
func (b *graphBuilder) walk(root ast.Node, owner *Node) {
	if b.callFuns == nil {
		b.callFuns = make(map[ast.Expr]bool)
	}
	var visit func(n ast.Node, owner *Node)
	visit = func(n ast.Node, owner *Node) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			lit := b.g.byLit[n]
			if lit == nil {
				pos := b.g.prog.Fset.Position(n.Pos())
				lit = &Node{
					Lit: n, Pkg: b.pkg,
					name: fmt.Sprintf("%s.func@%s:%d", b.pkg.Path, shortFile(pos.Filename), pos.Line),
				}
				b.g.Nodes = append(b.g.Nodes, lit)
				b.g.byLit[n] = lit
			}
			owner.Edges = append(owner.Edges, Edge{Kind: EdgeClosure, Pos: n.Pos(), To: lit})
			visit(n.Body, lit)
			return
		case *ast.CallExpr:
			b.callExpr(n, owner)
			// The callee expression's children (receiver expressions,
			// nested calls in arguments) still need visiting; mark only
			// the exact callee node as consumed.
			b.callFuns[ast.Unparen(n.Fun)] = true
		case *ast.Ident:
			if !b.callFuns[n] {
				if fn, ok := objOf(b.pkg.Info, n).(*types.Func); ok {
					if to := b.g.byFn[fn]; to != nil {
						owner.Edges = append(owner.Edges, Edge{Kind: EdgeRef, Pos: n.Pos(), To: to})
					}
				}
			}
		case *ast.SelectorExpr:
			if !b.callFuns[n] {
				if sel, ok := b.pkg.Info.Selections[n]; ok {
					switch sel.Kind() {
					case types.MethodVal, types.MethodExpr:
						if fn, ok := sel.Obj().(*types.Func); ok {
							if to := b.g.byFn[fn]; to != nil {
								owner.Edges = append(owner.Edges, Edge{Kind: EdgeRef, Pos: n.Pos(), To: to})
							}
						}
					}
				}
			}
		}
		var children []ast.Node
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || c == n {
				return c == n
			}
			children = append(children, c)
			return false
		})
		for _, c := range children {
			visit(c, owner)
		}
	}
	visit(root, owner)
}

// callExpr resolves one call expression into edges from owner.
func (b *graphBuilder) callExpr(call *ast.CallExpr, owner *Node) {
	fun := ast.Unparen(call.Fun)
	// Interface dispatch: a method call whose receiver is an interface
	// fans out to every declared implementation.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, ok := b.pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if iface, ok := s.Recv().Underlying().(*types.Interface); ok {
				if m, ok := s.Obj().(*types.Func); ok {
					for _, impl := range b.g.implementations(iface, m.Name()) {
						owner.Edges = append(owner.Edges, Edge{Kind: EdgeDispatch, Pos: call.Pos(), To: impl})
					}
					b.markOnceBody(call, fun)
					return
				}
			}
		}
	}
	// Static call (function, method, conversion excluded by the Func
	// assertion).
	if fn, ok := calleeObj(b.pkg.Info, call).(*types.Func); ok {
		if to := b.g.byFn[fn]; to != nil {
			owner.Edges = append(owner.Edges, Edge{Kind: EdgeCall, Pos: call.Pos(), To: to})
		}
		b.markOnceBody(call, fun)
		return
	}
	// Call through a local variable bound to exactly one function.
	if id, ok := fun.(*ast.Ident); ok {
		if v, ok := objOf(b.pkg.Info, id).(*types.Var); ok {
			if target, ok := b.bindings[v]; ok {
				switch t := target.(type) {
				case *ast.FuncLit:
					if to := b.g.byLit[t]; to != nil {
						owner.Edges = append(owner.Edges, Edge{Kind: EdgeCall, Pos: call.Pos(), To: to})
					}
				case *ast.Ident:
					if fn, ok := objOf(b.pkg.Info, t).(*types.Func); ok {
						if to := b.g.byFn[fn]; to != nil {
							owner.Edges = append(owner.Edges, Edge{Kind: EdgeCall, Pos: call.Pos(), To: to})
						}
					}
				case *ast.SelectorExpr:
					if s, ok := b.pkg.Info.Selections[t]; ok {
						if fn, ok := s.Obj().(*types.Func); ok {
							if to := b.g.byFn[fn]; to != nil {
								owner.Edges = append(owner.Edges, Edge{Kind: EdgeCall, Pos: call.Pos(), To: to})
							}
						}
					}
				}
			}
		}
	}
	// A call through an immediately-invoked literal: func(){...}() — the
	// literal node and closure edge come from the FuncLit visit.
}

// markOnceBody flags a literal argument of (*sync.Once).Do.
func (b *graphBuilder) markOnceBody(call *ast.CallExpr, fun ast.Expr) {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Do" {
		return
	}
	obj := calleeObj(b.pkg.Info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return
	}
	if len(call.Args) != 1 {
		return
	}
	if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
		// The literal node may not exist yet (arguments are visited after
		// the call); defer by creating it here.
		n := b.g.byLit[lit]
		if n == nil {
			pos := b.g.prog.Fset.Position(lit.Pos())
			n = &Node{
				Lit: lit, Pkg: b.pkg,
				name: fmt.Sprintf("%s.func@%s:%d", b.pkg.Path, shortFile(pos.Filename), pos.Line),
			}
			b.g.Nodes = append(b.g.Nodes, n)
			b.g.byLit[lit] = n
		}
		n.OnceBody = true
	}
}

// implementations resolves an interface method to the nodes of every
// declared module implementation (value or pointer receiver, including
// promoted methods that resolve to module code).
func (g *Graph) implementations(iface *types.Interface, method string) []*Node {
	key := implKey{iface: iface, method: method}
	g.implMu.Lock()
	defer g.implMu.Unlock()
	if impls, ok := g.implCache[key]; ok {
		return impls
	}
	var impls []*Node
	seen := make(map[*Node]bool)
	for _, named := range g.named {
		if types.IsInterface(named) {
			continue
		}
		var recv types.Type
		switch {
		case types.Implements(named, iface):
			recv = named
		case types.Implements(types.NewPointer(named), iface):
			recv = types.NewPointer(named)
		default:
			continue
		}
		// Lookup relative to the implementing type's own package, so
		// unexported interface methods (same-package dispatch) resolve too.
		obj, _, _ := types.LookupFieldOrMethod(recv, true, named.Obj().Pkg(), method)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if n := g.byFn[fn]; n != nil && !seen[n] {
			seen[n] = true
			impls = append(impls, n)
		}
	}
	g.implCache[key] = impls
	return impls
}

// shortFile trims a fixture/module path down to its base name for node
// labels.
func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
