package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureConfig scopes the analyzers to the fixture packages under
// testdata/src the way Default scopes them to hoiho's packages.
func fixtureConfig() Config {
	return Config{
		DetPkgs:        []string{"fix/detmapfix", "fix/rngseedfix", "fix/annotfix"},
		PanicPkgs:      []string{"fix/panicfix"},
		HotRoots:       []string{"fix/recompilefix.ServeItem", "fix/recompilefix.ServeItem2"},
		CtxPkgs:        []string{"fix/ctxflowfix"},
		ZeroAllocRoots: []string{"fix/hotallocfix.ServeHot"},
		LockPkgs:       []string{"fix/lockorderfix"},
		ErrPkgs:        []string{"fix/errwrapfix"},
		GoroPkgs:       []string{"fix/gorofix"},
	}
}

var fixturePkgs = []string{
	"detmapfix", "rngseedfix", "recompilefix", "wgfix", "panicfix", "ctxflowfix",
	"hotallocfix", "lockorderfix", "errwrapfix", "gorofix", "annotfix",
}

// want is one "// want `re`" expectation parsed from a fixture.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants parses want expectations from every fixture comment. A
// comment may carry several expectations: want `re1` `re2`. Both
// backquoted and double-quoted regexes are accepted.
func collectWants(t *testing.T, prog *Program) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := c.Text
					i := strings.Index(text, "want ")
					if i < 0 || (i+5 >= len(text)) {
						continue
					}
					rest := strings.TrimSpace(text[i+5:])
					if len(rest) == 0 || (rest[0] != '`' && rest[0] != '"') {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for len(rest) > 0 && (rest[0] == '`' || rest[0] == '"') {
						q := rest[0]
						end := strings.IndexByte(rest[1:], q)
						if end < 0 {
							t.Fatalf("%s: unterminated want expectation %q", pos, rest)
						}
						expr := rest[1 : 1+end]
						re, err := regexp.Compile(expr)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, expr, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
						rest = strings.TrimSpace(rest[2+end:])
					}
				}
			}
		}
	}
	return wants
}

// TestFixtures runs all analyzers over the fixture tree and requires an
// exact match between diagnostics and // want expectations: every want
// must be hit, and every diagnostic must be wanted.
func TestFixtures(t *testing.T) {
	prog, err := LoadDirs(filepath.Join("testdata", "src"), "fix", fixturePkgs, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	diags := prog.Run(Analyzers())
	if len(diags) == 0 {
		t.Fatal("no diagnostics on fixtures; the analyzers are not firing")
	}
	wants := collectWants(t, prog)

	for _, d := range diags {
		hit := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// TestFixtureDiagnosticsNonzero pins the contract the CLI relies on:
// fixtures produce findings, and each carries a position, a check
// name, and a suppression suggestion or annotation message.
func TestFixtureDiagnosticsNonzero(t *testing.T) {
	prog, err := LoadDirs(filepath.Join("testdata", "src"), "fix", fixturePkgs, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	diags := prog.Run(Analyzers())
	checks := make(map[string]int)
	for _, d := range diags {
		checks[d.Check]++
		if d.Pos.Filename == "" || d.Pos.Line == 0 {
			t.Errorf("diagnostic without position: %+v", d)
		}
		if d.Check != "annotation" && d.Suggest == "" {
			t.Errorf("analyzer diagnostic without suppression suggestion: %s", d)
		}
	}
	for _, a := range Analyzers() {
		if checks[a.Name] == 0 {
			t.Errorf("analyzer %s produced no fixture diagnostics", a.Name)
		}
	}
	if checks["annotation"] == 0 {
		t.Error("annotation grammar diagnostics missing")
	}
}

// TestDiagnosticsSorted verifies the driver's position ordering, which
// golden CI logs depend on.
func TestDiagnosticsSorted(t *testing.T) {
	prog, err := LoadDirs(filepath.Join("testdata", "src"), "fix", fixturePkgs, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	diags := prog.Run(Analyzers())
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		ka := fmt.Sprintf("%s:%06d:%06d:%s", a.Pos.Filename, a.Pos.Line, a.Pos.Column, a.Check)
		kb := fmt.Sprintf("%s:%06d:%06d:%s", b.Pos.Filename, b.Pos.Line, b.Pos.Column, b.Check)
		if ka > kb {
			t.Errorf("diagnostics out of order: %s before %s", a, b)
		}
	}
}
