package analysis

import (
	"go/token"
	"strings"
)

// Annotation grammar
//
//	//hoiho:<verb> <reason>
//
// where <verb> names the analyzer being overruled (nondet-ok, rng-ok,
// recompile-ok, wg-ok, panic-ok, ctxflow) and <reason> is mandatory free text
// explaining why the flagged construct is intentionally safe. The
// annotation suppresses matching diagnostics on its own line (trailing
// comment) or on the line directly below (comment above the
// statement). An unknown verb or a missing reason is itself reported —
// a silent typo must not silently disable a check.

type annotation struct {
	verb   string
	reason string
}

type annotations struct {
	// byLine maps filename -> line -> annotations attached to that line.
	byLine map[string]map[int][]annotation
	diags  []Diagnostic
}

// collectAnnotations scans every file's comments for //hoiho: markers.
// verbs is the set of annotation verbs known to the active analyzers.
func collectAnnotations(p *Program, verbs map[string]bool) *annotations {
	ann := &annotations{byLine: make(map[string]map[int][]annotation)}
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//hoiho:")
					if !ok {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					verb, reason, _ := strings.Cut(rest, " ")
					reason = strings.TrimSpace(reason)
					if !verbs[verb] {
						ann.diags = append(ann.diags, Diagnostic{
							Pos:     pos,
							Check:   "annotation",
							Message: "unknown annotation verb " + quote(verb) + " (known: nondet-ok, rng-ok, recompile-ok, wg-ok, panic-ok, ctxflow)",
						})
						continue
					}
					if reason == "" {
						ann.diags = append(ann.diags, Diagnostic{
							Pos:     pos,
							Check:   "annotation",
							Message: "//hoiho:" + verb + " needs a reason explaining why the site is safe",
						})
						continue
					}
					m := ann.byLine[pos.Filename]
					if m == nil {
						m = make(map[int][]annotation)
						ann.byLine[pos.Filename] = m
					}
					m[pos.Line] = append(m[pos.Line], annotation{verb: verb, reason: reason})
				}
			}
		}
	}
	return ann
}

// suppressed reports whether a diagnostic with the given verb at pos is
// overruled by an annotation on the same line or the line above.
func (a *annotations) suppressed(verb string, pos token.Position) bool {
	m := a.byLine[pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, an := range m[line] {
			if an.verb == verb {
				return true
			}
		}
	}
	return false
}

func quote(s string) string {
	return `"` + s + `"`
}
