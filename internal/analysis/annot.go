package analysis

import (
	"go/token"
	"sort"
	"strings"
	"unicode"
)

// Annotation grammar
//
//	//hoiho:<verb> <reason>
//
// where <verb> names the analyzer being overruled (see Analyzers for
// the live set; the error message lists it) and <reason> is mandatory
// free text explaining why the flagged construct is intentionally
// safe. The annotation suppresses matching diagnostics on its own line
// (trailing comment) or on the line directly below (comment above the
// statement). Several annotations may be stacked in one comment group
// above a declaration — every verb in the group applies to the
// declaration line, not just the last comment's.
//
// Two verbs are budget annotations rather than plain suppressions:
// //hoiho:hotalloc on a function declaration's doc comment marks the
// whole function as a budgeted cold region (hotalloc stops traversal
// there), while on a single statement it budgets that one allocation
// site.
//
// An unknown verb, a missing reason, or whitespace where the verb
// should be is itself reported — a silent typo must not silently
// disable a check. So is a stale annotation: a suppression that no
// longer matches any diagnostic is reported at the end of the run, so
// fixed code sheds its waivers instead of accumulating them.

type annotation struct {
	verb   string
	reason string
	pos    token.Position // the comment's own position, for stale reporting
	used   bool
}

type annotations struct {
	// byLine maps filename -> line -> annotations attached to that line.
	// One annotation may be registered on several lines (stacking); the
	// records are shared so a hit anywhere marks the annotation used.
	byLine map[string]map[int][]*annotation
	all    []*annotation
	diags  []Diagnostic
}

// collectAnnotations scans every file's comments for //hoiho: markers.
// verbs is the set of annotation verbs known to the active analyzers.
func collectAnnotations(p *Program, verbs map[string]bool) *annotations {
	known := knownVerbList(verbs)
	ann := &annotations{byLine: make(map[string]map[int][]*annotation)}
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				groupEnd := p.Fset.Position(cg.End()).Line
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//hoiho:")
					if !ok {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					verb, reason := splitVerb(rest)
					if !verbs[verb] {
						ann.diags = append(ann.diags, Diagnostic{
							Pos:     pos,
							Check:   "annotation",
							Message: "unknown annotation verb " + quote(verb) + " (known: " + known + ")",
						})
						continue
					}
					if reason == "" {
						ann.diags = append(ann.diags, Diagnostic{
							Pos:     pos,
							Check:   "annotation",
							Message: "//hoiho:" + verb + " needs a reason explaining why the site is safe",
						})
						continue
					}
					a := &annotation{verb: verb, reason: reason, pos: pos}
					ann.all = append(ann.all, a)
					ann.register(pos.Filename, pos.Line, a)
					// Stacked annotations: a non-last comment in the group
					// also applies where the group as a whole applies — the
					// group's final line, which the line-above rule extends
					// to the annotated declaration.
					if pos.Line != groupEnd {
						ann.register(pos.Filename, groupEnd, a)
					}
				}
			}
		}
	}
	return ann
}

func (a *annotations) register(file string, line int, an *annotation) {
	m := a.byLine[file]
	if m == nil {
		m = make(map[int][]*annotation)
		a.byLine[file] = m
	}
	m[line] = append(m[line], an)
}

// splitVerb separates the verb from the reason, robust to tabs and
// repeated spaces. A marker like "//hoiho: verb reason" (whitespace
// before the verb) yields an empty verb, which the caller reports as
// unknown rather than silently reinterpreting.
func splitVerb(rest string) (verb, reason string) {
	i := strings.IndexFunc(rest, unicode.IsSpace)
	if i < 0 {
		return rest, ""
	}
	return rest[:i], strings.TrimSpace(rest[i:])
}

func knownVerbList(verbs map[string]bool) string {
	names := make([]string, 0, len(verbs))
	for v := range verbs {
		names = append(names, v)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// suppressed reports whether a diagnostic with the given verb at pos is
// overruled by an annotation on the same line or the line above, and
// marks the matching annotation used.
func (a *annotations) suppressed(verb string, pos token.Position) bool {
	m := a.byLine[pos.Filename]
	if m == nil {
		return false
	}
	hit := false
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, an := range m[line] {
			if an.verb == verb {
				an.used = true
				hit = true
			}
		}
	}
	return hit
}

// take looks up an annotation with the given verb attached to pos (same
// line or line above), marks it used, and returns its reason. Analyzers
// use it for budget annotations that gate behavior rather than suppress
// an emitted diagnostic — e.g. hotalloc's function-level cold-region
// marker, which would otherwise read as stale.
func (a *annotations) take(verb string, pos token.Position) (reason string, ok bool) {
	m := a.byLine[pos.Filename]
	if m == nil {
		return "", false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, an := range m[line] {
			if an.verb == verb {
				an.used = true
				if !ok {
					reason, ok = an.reason, true
				}
			}
		}
	}
	return reason, ok
}

// stale returns a diagnostic for every annotation never matched by any
// diagnostic or budget lookup this run.
func (a *annotations) stale() []Diagnostic {
	var out []Diagnostic
	for _, an := range a.all {
		if an.used {
			continue
		}
		out = append(out, Diagnostic{
			Pos:     an.pos,
			Check:   "annotation",
			Message: "stale //hoiho:" + an.verb + " suppression: no diagnostic matches it; remove the annotation",
		})
	}
	return out
}

func quote(s string) string {
	return `"` + s + `"`
}
