package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// gororeturn checks the statically visible shape of the PR 4/5 leak
// bugs: a goroutine performing a blocking channel send with no way out
// when the consumer has already left. In Config.GoroPkgs, every send
// inside a goroutine body on a channel the goroutine does not own
// (i.e. did not make itself) must sit in a select that also has a
// cancellation arm — a receive from a context's Done channel (or a
// done/stop/quit channel) or a default clause. Without that arm, a
// consumer that returns early on ctx cancellation strands the sender
// forever: the goroutine, its stack, and everything it captured leak.
//
// Goroutine bodies are resolved through the typed call graph, so both
// `go func(){...}()` and `go s.worker(jobs)` are checked; a named
// worker launched from several sites is checked once.
var gororeturn = &Analyzer{
	Name: "gororeturn",
	Doc:  "channel sends inside goroutines carry a ctx-cancel select arm",
	Verb: "goro-ok",
	Run:  runGoroReturn,
}

func runGoroReturn(p *Program) []Diagnostic {
	g := p.CallGraph()
	var out []Diagnostic
	checked := make(map[*Node]bool)
	for _, pkg := range p.Packages {
		if !p.Config.goro(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				var node *Node
				if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
					node = g.NodeOfLit(lit)
				} else if fn, ok := calleeObj(pkg.Info, gs.Call).(*types.Func); ok {
					node = g.NodeOf(fn)
				}
				if node == nil || node.Body() == nil || checked[node] {
					return true
				}
				checked[node] = true
				out = append(out, checkGoroSends(p, node)...)
				return true
			})
		}
	}
	return out
}

// checkGoroSends flags unguarded sends in one goroutine body.
func checkGoroSends(p *Program, n *Node) []Diagnostic {
	body := n.Body()
	pkg := n.Pkg
	var out []Diagnostic

	// Channels the goroutine owns: made inside this body. A send on a
	// channel nobody else holds yet cannot block on a departed consumer.
	owned := make(map[types.Object]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltin(pkg.Info, call, "make") || i >= len(as.Lhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := objOf(pkg.Info, id); obj != nil {
					owned[obj] = true
				}
			}
		}
		return true
	})

	// selectGuard maps each send statement that is a select case to
	// whether its select carries a cancellation arm.
	type sendCtx struct {
		send    *ast.SendStmt
		guarded bool
	}
	var sends []sendCtx
	var visit func(x ast.Node)
	visit = func(x ast.Node) {
		if x == nil {
			return
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			if n.Lit == nil || x != n.Lit {
				return // nested goroutines/closures get their own go-site checks
			}
		case *ast.SelectStmt:
			guarded := selectHasCancelArm(pkg, x)
			for _, clause := range x.Body.List {
				comm, ok := clause.(*ast.CommClause)
				if !ok {
					continue
				}
				if send, ok := comm.Comm.(*ast.SendStmt); ok {
					sends = append(sends, sendCtx{send: send, guarded: guarded})
				}
				for _, s := range comm.Body {
					visit(s)
				}
			}
			return
		case *ast.SendStmt:
			sends = append(sends, sendCtx{send: x, guarded: false})
			return
		}
		var children []ast.Node
		ast.Inspect(x, func(c ast.Node) bool {
			if c == nil || c == x {
				return c == x
			}
			children = append(children, c)
			return false
		})
		for _, c := range children {
			visit(c)
		}
	}
	visit(body)

	for _, sc := range sends {
		if sc.guarded {
			continue
		}
		if id := rootIdent(sc.send.Chan); id != nil {
			if obj := objOf(pkg.Info, id); obj != nil && owned[obj] {
				continue
			}
		}
		out = append(out, Diagnostic{
			Pos:     p.Fset.Position(sc.send.Pos()),
			Check:   "gororeturn",
			Message: "send on " + quote(exprString(sc.send.Chan)) + " inside a goroutine has no cancellation arm; if the consumer returns early this goroutine leaks — select on it alongside ctx.Done()",
			Suggest: "//hoiho:goro-ok <why the consumer provably outlives this send>",
		})
	}
	return out
}

// selectHasCancelArm reports whether the select can abandon its send: a
// default clause, a receive from a context Done() channel, or a receive
// from a channel whose name says it signals shutdown.
func selectHasCancelArm(pkg *Package, sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		if comm.Comm == nil {
			return true // default
		}
		var recv ast.Expr
		switch c := comm.Comm.(type) {
		case *ast.ExprStmt:
			recv = c.X
		case *ast.AssignStmt:
			if len(c.Rhs) == 1 {
				recv = c.Rhs[0]
			}
		}
		u, ok := ast.Unparen(recv).(*ast.UnaryExpr)
		if !ok || u.Op != token.ARROW {
			continue
		}
		ch := ast.Unparen(u.X)
		if call, ok := ch.(*ast.CallExpr); ok {
			if obj := calleeObj(pkg.Info, call); obj != nil && obj.Name() == "Done" {
				if obj.Pkg() != nil && obj.Pkg().Path() == "context" {
					return true
				}
				// A Done() method on a module type mirroring the context
				// contract counts too.
				if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true
				}
			}
		}
		if id := rootIdent(ch); id != nil {
			name := strings.ToLower(id.Name)
			if strings.Contains(name, "done") || strings.Contains(name, "stop") || strings.Contains(name, "quit") || strings.Contains(name, "cancel") {
				return true
			}
		}
	}
	return false
}
