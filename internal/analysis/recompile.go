package analysis

import (
	"go/ast"
)

// recompile flags regexp.Compile/MustCompile (and the POSIX variants)
// inside loop bodies or inside functions reachable from the per-item
// hot paths (the Corpus extraction entry points, the compiled
// internal/match engine, Set evaluation during learning). Each regex is
// compiled exactly once — the extract.Corpus entries compile behind a
// sync.Once into an internal/match.Engine (the sanctioned hot-path
// matcher; stdlib regexp is only the cold-path fallback) and rex.Regex
// caches its compiled form — so a fresh Compile per item is always a
// bug or a missed migration onto those paths. The one legitimate
// compile inside each cache is annotated //hoiho:recompile-ok.
//
// Reachability runs on the typed call graph (callgraph.go), so a
// compile hidden behind a method value, a stored function field, or an
// interface dispatch is attributed to the hot root that reaches it —
// the false-negative class of the old ident-based graph.
var recompile = &Analyzer{
	Name: "recompile",
	Doc:  "regexes compile once: no regexp.Compile in loops or on hot paths",
	Verb: "recompile-ok",
	Run:  runRecompile,
}

var compileFuncs = []string{"Compile", "MustCompile", "CompilePOSIX", "MustCompilePOSIX"}

func runRecompile(p *Program) []Diagnostic {
	g := p.CallGraph()
	reach := g.Reachable(p.Config.HotRoots, nil)
	var out []Diagnostic

	// In-loop compiles: walked over whole declarations (nested literals
	// included — a closure built inside a loop typically runs per
	// iteration), independent of reachability. Calls flagged here are
	// not re-flagged by the hot-path rule.
	inLoop := make(map[*ast.CallExpr]bool)
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				walkLoopDepth(fd.Body, 0, func(n ast.Node, loopDepth int) {
					call, ok := n.(*ast.CallExpr)
					if !ok || loopDepth == 0 || !isPkgFunc(pkg.Info, call, "regexp", compileFuncs...) {
						return
					}
					inLoop[call] = true
					obj := calleeObj(pkg.Info, call)
					out = append(out, Diagnostic{
						Pos:     p.Fset.Position(call.Pos()),
						Check:   "recompile",
						Message: "regexp." + obj.Name() + " inside a loop recompiles per iteration; hoist it, or use the cached rex.(*Regex).Compile / extract.Corpus machines (the compiled internal/match engine)",
						Suggest: "//hoiho:recompile-ok <why this compile cannot be hoisted>",
					})
				})
			}
		}
	}

	// Hot-path compiles: every graph node reachable from a hot root is
	// scanned over its own body (nested literals are their own nodes and
	// are reached through closure edges, so they carry their root too).
	for _, n := range g.Nodes {
		root, hot := reach[n]
		if !hot {
			continue
		}
		body := n.Body()
		if body == nil {
			continue
		}
		pkg := n.Pkg
		var visit func(x ast.Node)
		visit = func(x ast.Node) {
			if x == nil {
				return
			}
			if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
				return // separate node with its own reachability
			}
			if call, ok := x.(*ast.CallExpr); ok && !inLoop[call] && isPkgFunc(pkg.Info, call, "regexp", compileFuncs...) {
				obj := calleeObj(pkg.Info, call)
				out = append(out, Diagnostic{
					Pos:     p.Fset.Position(call.Pos()),
					Check:   "recompile",
					Message: "regexp." + obj.Name() + " on the per-item hot path (reachable from " + root + "); use the compile-once paths — hot-path matching belongs to the compiled internal/match engine",
					Suggest: "//hoiho:recompile-ok <why this hot-path compile runs once>",
				})
			}
			var children []ast.Node
			ast.Inspect(x, func(c ast.Node) bool {
				if c == nil || c == x {
					return c == x
				}
				children = append(children, c)
				return false
			})
			for _, c := range children {
				visit(c)
			}
		}
		visit(body)
	}
	return out
}

// walkLoopDepth walks the tree tracking how many for/range statements
// enclose each node. Function literals reset nothing: a closure built
// inside a loop typically runs per iteration, and a deliberate
// build-once closure can be annotated.
func walkLoopDepth(n ast.Node, depth int, visit func(ast.Node, int)) {
	if n == nil {
		return
	}
	visit(n, depth)
	enter := depth
	switch n.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		enter = depth + 1
	}
	var children []ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil || c == n {
			return c == n
		}
		children = append(children, c)
		return false
	})
	for _, c := range children {
		walkLoopDepth(c, enter, visit)
	}
}
