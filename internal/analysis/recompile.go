package analysis

import (
	"go/ast"
	"go/types"
)

// recompile flags regexp.Compile/MustCompile (and the POSIX variants)
// inside loop bodies or inside functions reachable from the per-item
// hot paths (the Corpus extraction entry points, the compiled
// internal/match engine, Set evaluation during learning). Each regex is
// compiled exactly once — the extract.Corpus entries compile behind a
// sync.Once into an internal/match.Engine (the sanctioned hot-path
// matcher; stdlib regexp is only the cold-path fallback) and rex.Regex
// caches its compiled form — so a fresh Compile per item is always a
// bug or a missed migration onto those paths. The one legitimate
// compile inside each cache is annotated //hoiho:recompile-ok.
var recompile = &Analyzer{
	Name: "recompile",
	Doc:  "regexes compile once: no regexp.Compile in loops or on hot paths",
	Verb: "recompile-ok",
	Run:  runRecompile,
}

var compileFuncs = []string{"Compile", "MustCompile", "CompilePOSIX", "MustCompilePOSIX"}

func runRecompile(p *Program) []Diagnostic {
	reach := hotReachable(p)
	var out []Diagnostic
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			var decls []*ast.FuncDecl
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					decls = append(decls, fd)
				}
			}
			for _, fd := range decls {
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				root := ""
				if fn != nil {
					root = reach[fn]
				}
				walkLoopDepth(fd.Body, 0, func(n ast.Node, loopDepth int) {
					call, ok := n.(*ast.CallExpr)
					if !ok || !isPkgFunc(pkg.Info, call, "regexp", compileFuncs...) {
						return
					}
					obj := calleeObj(pkg.Info, call)
					switch {
					case loopDepth > 0:
						out = append(out, Diagnostic{
							Pos:     p.Fset.Position(call.Pos()),
							Check:   "recompile",
							Message: "regexp." + obj.Name() + " inside a loop recompiles per iteration; hoist it, or use the cached rex.(*Regex).Compile / extract.Corpus machines (the compiled internal/match engine)",
							Suggest: "//hoiho:recompile-ok <why this compile cannot be hoisted>",
						})
					case root != "":
						out = append(out, Diagnostic{
							Pos:     p.Fset.Position(call.Pos()),
							Check:   "recompile",
							Message: "regexp." + obj.Name() + " on the per-item hot path (reachable from " + root + "); use the compile-once paths — hot-path matching belongs to the compiled internal/match engine",
							Suggest: "//hoiho:recompile-ok <why this hot-path compile runs once>",
						})
					}
				})
			}
		}
	}
	return out
}

// walkLoopDepth walks the tree tracking how many for/range statements
// enclose each node. Function literals reset nothing: a closure built
// inside a loop typically runs per iteration, and a deliberate
// build-once closure can be annotated.
func walkLoopDepth(n ast.Node, depth int, visit func(ast.Node, int)) {
	if n == nil {
		return
	}
	visit(n, depth)
	enter := depth
	switch n.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		enter = depth + 1
	}
	var children []ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil || c == n {
			return c == n
		}
		children = append(children, c)
		return false
	})
	for _, c := range children {
		walkLoopDepth(c, enter, visit)
	}
}

// hotReachable computes the functions reachable from Config.HotRoots
// through static calls, mapping each to the root's name for reporting.
// Dynamic calls (function values, unresolved interface methods) are not
// followed; the graph is best-effort by design.
func hotReachable(p *Program) map[*types.Func]string {
	callees := make(map[*types.Func][]*types.Func)
	byName := make(map[string]*types.Func)
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				byName[fn.FullName()] = fn
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee, ok := calleeObj(pkg.Info, call).(*types.Func); ok {
						callees[fn] = append(callees[fn], callee)
					}
					return true
				})
			}
		}
	}
	reach := make(map[*types.Func]string)
	var queue []*types.Func
	for _, rootName := range p.Config.HotRoots {
		if fn, ok := byName[rootName]; ok {
			reach[fn] = rootName
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range callees[fn] {
			if _, seen := reach[callee]; seen {
				continue
			}
			reach[callee] = reach[fn]
			queue = append(queue, callee)
		}
	}
	return reach
}
