package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked module package.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the whole loaded module plus the lint configuration.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package // sorted by import path
	Config   Config

	// graph is the typed call graph, built lazily by CallGraph.
	graphOnce sync.Once
	graph     *Graph

	// ann is the annotation index for the in-flight Run, so analyzers
	// that honor function-level budget annotations (hotalloc) can mark
	// them used; nil outside Run.
	ann *annotations
}

// loader type-checks module packages from source, resolving module-local
// imports recursively and delegating everything else (the stdlib) to the
// go/importer source importer. It is stdlib-only by construction: no
// x/tools, no export data, no go list subprocess.
type loader struct {
	fset    *token.FileSet
	root    string // directory the module path maps to
	modPath string
	std     types.ImporterFrom
	typs    map[string]*types.Package
	pkgs    map[string]*Package
	loading map[string]bool
}

func newLoader(root, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		typs:    make(map[string]*types.Package),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer: module-local paths are type-checked
// from source under root; all other paths go to the stdlib importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if t, ok := l.typs[path]; ok {
		return t, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		p, err := l.load(path, filepath.Join(l.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	t, err := l.std.ImportFrom(path, l.root, 0)
	if err != nil {
		return nil, err
	}
	l.typs[path] = t
	return t, nil
}

// load parses and type-checks the package in dir under import path.
func (l *loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	l.typs[path] = tpkg
	return p, nil
}

// LoadModule loads every buildable package under the module rooted at
// dir (the directory holding go.mod) and returns the Program ready for
// analysis. Directories named testdata, hidden directories, and
// packages with only test files are skipped, matching the go tool.
func LoadModule(dir string, cfg Config) (*Program, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := newLoader(dir, modPath)
	var paths []string
	err = filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasBuildableGo(p) {
			rel, err := filepath.Rel(dir, p)
			if err != nil {
				return err
			}
			ip := modPath
			if rel != "." {
				ip = modPath + "/" + filepath.ToSlash(rel)
			}
			paths = append(paths, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	prog := &Program{Fset: l.fset, Config: cfg}
	for _, ip := range paths {
		rel := strings.TrimPrefix(strings.TrimPrefix(ip, modPath), "/")
		p, err := l.load(ip, filepath.Join(dir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, p)
	}
	return prog, nil
}

// LoadDirs loads the named directories as packages of a synthetic
// module (import path prefix modPath); used by tests to analyze fixture
// trees under testdata without a go.mod.
func LoadDirs(root, modPath string, rels []string, cfg Config) (*Program, error) {
	l := newLoader(root, modPath)
	prog := &Program{Fset: l.fset, Config: cfg}
	sorted := append([]string{}, rels...)
	sort.Strings(sorted)
	for _, rel := range sorted {
		p, err := l.load(modPath+"/"+rel, filepath.Join(root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, p)
	}
	return prog, nil
}

func hasBuildableGo(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
