package extract

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"hoiho/internal/core"
	"hoiho/internal/corpusbin"
)

// deltaBytes diffs two corpora into an in-memory HBD patch.
func deltaBytes(t testing.TB, old, new *Corpus) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Diff(old, new, &buf); err != nil {
		t.Fatalf("diff: %v", err)
	}
	return buf.Bytes()
}

// TestDiffApplyByteIdentity is the extract-layer half of the core
// contract: ApplyDelta(base, Diff(base, target)) must hand back the
// exact bytes SaveBinary writes for the target, and a corpus that
// answers extraction queries identically to one built from the target
// directly.
func TestDiffApplyByteIdentity(t *testing.T) {
	oldNCs := syntheticNCs(t, 48)
	newNCs := make([]*core.NC, 0, 48)
	for i, nc := range oldNCs {
		if i%9 == 4 {
			continue // removed
		}
		if i%5 == 2 { // replaced: same suffix, different eval
			cp := *nc
			cp.Eval.TP += 17
			nc = &cp
		}
		newNCs = append(newNCs, nc)
	}
	oldC, newC := New(oldNCs), New(newNCs)

	delta := deltaBytes(t, oldC, newC)
	if !corpusbin.IsHBD(delta) {
		t.Fatal("Diff output does not start with the HBD magic")
	}
	applied, full, err := ApplyDelta(oldC, delta)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if want := hbcBytes(t, newC); !bytes.Equal(full, want) {
		t.Fatalf("applied bytes differ from SaveBinary of the target: %d vs %d bytes", len(full), len(want))
	}
	if a, b := applied.FingerprintString(), newC.FingerprintString(); a != b {
		t.Fatalf("applied corpus fingerprint %s, target %s", a, b)
	}
	var roundTrip bytes.Buffer
	if err := applied.SaveBinary(&roundTrip); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(roundTrip.Bytes(), full) {
		t.Fatal("re-saving the applied corpus does not reproduce the applied bytes")
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		host := randomHost(rng, newNCs)
		ra, oka := applied.Extract(context.Background(), host)
		rn, okn := newC.Extract(context.Background(), host)
		if oka != okn || ra != rn {
			t.Fatalf("host %q: applied (%+v,%v) vs target (%+v,%v)", host, ra, oka, rn, okn)
		}
	}
}

// TestApplyDeltaBaseMismatch: a patch diffed from another corpus is
// refused with the typed sentinel, and the base keeps serving.
func TestApplyDeltaBaseMismatch(t *testing.T) {
	oldC := New(syntheticNCs(t, 16))
	newC := New(syntheticNCs(t, 24))
	other := New(syntheticNCs(t, 8))

	delta := deltaBytes(t, oldC, newC)
	_, _, err := ApplyDelta(other, delta)
	if !errors.Is(err, corpusbin.ErrDeltaBaseMismatch) {
		t.Fatalf("apply against wrong base = %v, want ErrDeltaBaseMismatch", err)
	}
	if _, ok := other.Extract(context.Background(), "pe1.core.as3356.example0001.net"); !ok {
		t.Fatal("base corpus stopped extracting after a refused apply")
	}
}

// TestApplyDeltaCorruptFailsClosed: a damaged patch is rejected without
// producing a corpus, whatever byte was hit.
func TestApplyDeltaCorruptFailsClosed(t *testing.T) {
	oldC := New(syntheticNCs(t, 16))
	newC := New(syntheticNCs(t, 20))
	delta := deltaBytes(t, oldC, newC)

	for _, n := range []int{0, 3, len(delta) / 2, len(delta) - 1} {
		if c, _, err := ApplyDelta(oldC, delta[:n]); err == nil || c != nil {
			t.Fatalf("truncation to %d bytes applied successfully", n)
		}
	}
	for _, i := range []int{5, 13, 21, 29, len(delta) / 2, len(delta) - 1} {
		mut := append([]byte(nil), delta...)
		mut[i] ^= 0x10
		if c, _, err := ApplyDelta(oldC, mut); err == nil || c != nil {
			t.Fatalf("flip at byte %d applied successfully", i)
		}
	}
}

// TestApplyDeltaHonorsOptions: the returned corpus is indexed under the
// caller's options (a filtered node keeps its filter), while the
// returned bytes always carry the complete target.
func TestApplyDeltaHonorsOptions(t *testing.T) {
	oldC := New(syntheticNCs(t, 33))
	newC := New(syntheticNCs(t, 44))
	delta := deltaBytes(t, oldC, newC)

	applied, full, err := ApplyDelta(oldC, delta, UsableOnly())
	if err != nil {
		t.Fatal(err)
	}
	filtered := New(syntheticNCs(t, 44), UsableOnly())
	if applied.Len() != filtered.Len() {
		t.Fatalf("filtered apply kept %d NCs, want %d", applied.Len(), filtered.Len())
	}
	if !bytes.Equal(full, hbcBytes(t, newC)) {
		t.Fatal("filtered apply did not return the complete target bytes")
	}
}

// FuzzExtractDeltaRoundTrip drives the diff→apply cycle over corpus
// pairs of fuzz-chosen sizes and overlap, requiring byte-identity with
// a direct SaveBinary of the target every time.
func FuzzExtractDeltaRoundTrip(f *testing.F) {
	f.Add(uint8(16), uint8(24), uint8(0x35))
	f.Add(uint8(1), uint8(1), uint8(0))
	f.Add(uint8(40), uint8(8), uint8(0xff))
	f.Fuzz(func(t *testing.T, nOld, nNew, drop uint8) {
		oldNCs := syntheticNCs(t, int(nOld%48)+1)
		newNCs := syntheticNCs(t, int(nNew%48)+1)
		kept := newNCs[:0]
		for i, nc := range newNCs {
			if drop > 0 && i%int(drop%7+2) == 0 {
				continue
			}
			kept = append(kept, nc)
		}
		if len(kept) == 0 {
			kept = newNCs[:1]
		}
		oldC, newC := New(oldNCs), New(kept)
		_, full, err := ApplyDelta(oldC, deltaBytes(t, oldC, newC))
		if err != nil {
			t.Fatalf("apply of freshly diffed delta failed: %v", err)
		}
		if !bytes.Equal(full, hbcBytes(t, newC)) {
			t.Fatal("diff→apply cycle not byte-identical with SaveBinary of the target")
		}
	})
}
