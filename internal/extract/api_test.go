package extract

import (
	"context"
	"math/rand"
	"sync"
	"testing"
)

// TestExtractBytesParity: the zero-alloc path must agree with Extract on
// everything except the fields it intentionally leaves different
// (Hostname empty, Digits interned).
func TestExtractBytesParity(t *testing.T) {
	ncs := syntheticNCs(t, 120)
	c := New(ncs)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		host := randomHost(rng, ncs)
		want, wantOK := c.Extract(ctx, host)
		got, gotOK := c.ExtractBytes([]byte(host))
		if gotOK != wantOK {
			t.Fatalf("host %q: ExtractBytes ok=%v, Extract ok=%v", host, gotOK, wantOK)
		}
		if !gotOK {
			if got != (Result{}) {
				t.Fatalf("host %q: miss is not the zero Result: %+v", host, got)
			}
			continue
		}
		want.Hostname = ""
		if got != want {
			t.Fatalf("host %q: ExtractBytes %+v, Extract (hostname cleared) %+v", host, got, want)
		}
	}
}

// TestExtractBytesDoesNotAliasInput: results must stay valid after the
// caller reuses the buffer — the whole point of the interned Digits.
func TestExtractBytesDoesNotAliasInput(t *testing.T) {
	c := New(syntheticNCs(t, 8))
	buf := []byte("as64512.example0003.net")
	r, ok := c.ExtractBytes(buf)
	if !ok || r.Digits != "64512" || r.ASN != 64512 {
		t.Fatalf("extract: %+v %v", r, ok)
	}
	for i := range buf {
		buf[i] = 'X'
	}
	if r.Digits != "64512" || r.Suffix != "example0003.net" {
		t.Fatalf("result aliased the caller's buffer: %+v", r)
	}
}

// TestExtractBytesAllocs: zero allocations on both hit and miss once the
// corpus is precompiled and the digit strings are interned. This is the
// contract the redesigned API exists for.
func TestExtractBytesAllocs(t *testing.T) {
	ncs := syntheticNCs(t, 64)
	c := New(ncs)
	c.Precompile()
	hit := []byte("as64512-city7.example0000.net")
	missRegex := []byte("lo0.rt3.example0000.net") // suffix governs, regex misses
	missSuffix := []byte("as64512.unrelated.org")
	if _, ok := c.ExtractBytes(hit); !ok {
		t.Fatal("hit host missed")
	}
	if _, ok := c.ExtractBytes(missRegex); ok {
		t.Fatal("missRegex host hit")
	}
	if _, ok := c.ExtractBytes(missSuffix); ok {
		t.Fatal("missSuffix host hit")
	}
	// Warm the interner so the hit path takes the read-lock branch.
	c.ExtractBytes(hit)
	for name, host := range map[string][]byte{
		"hit": hit, "missRegex": missRegex, "missSuffix": missSuffix,
	} {
		host := host
		if n := testing.AllocsPerRun(200, func() {
			c.ExtractBytes(host)
		}); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, n)
		}
	}
}

// TestExtractBytesConcurrent proves interned results are safe to share
// across goroutines: many workers extract from reused per-goroutine
// buffers and every retained Result must stay intact. Run under -race.
func TestExtractBytesConcurrent(t *testing.T) {
	ncs := syntheticNCs(t, 64)
	c := New(ncs)
	hosts := make([]string, 256)
	rng := rand.New(rand.NewSource(21))
	for i := range hosts {
		hosts[i] = randomHost(rng, ncs)
	}
	want := make([]Result, len(hosts))
	for i, h := range hosts {
		want[i], _ = c.ExtractBytes([]byte(h))
	}

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 0, 64) // reused: overwritten every iteration
			var kept []Result
			for rep := 0; rep < 400; rep++ {
				i := (g*13 + rep*7) % len(hosts)
				buf = append(buf[:0], hosts[i]...)
				r, _ := c.ExtractBytes(buf)
				kept = append(kept, r)
				if r != want[i] {
					select {
					case errs <- hosts[i]:
					default:
					}
					return
				}
			}
			// Results retained across buffer reuse must still be intact.
			for rep, r := range kept {
				if r != want[(g*13+rep*7)%len(hosts)] {
					select {
					case errs <- "retained result mutated":
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("concurrent ExtractBytes diverged on %s", e)
	}
}

// TestMatcherRegexpParity: the stdlib engine behind WithMatcher must
// produce byte-identical results to the default compiled engine — it is
// the oracle the compiled path is tested against, and an operational
// escape hatch that must not change answers.
func TestMatcherRegexpParity(t *testing.T) {
	ncs := syntheticNCs(t, 100)
	compiled := New(ncs)
	oracle := New(ncs, WithMatcher(MatcherRegexp))
	ctx := context.Background()
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 20000; i++ {
		host := randomHost(rng, ncs)
		gm, gok := compiled.Extract(ctx, host)
		wm, wok := oracle.Extract(ctx, host)
		if gok != wok || gm != wm {
			t.Fatalf("host %q: compiled (%+v, %v), regexp (%+v, %v)", host, gm, gok, wm, wok)
		}
	}
}

// TestExtractDirtyHosts pins the normalization-sensitive paths: inputs
// that are not clean lowercase ASCII take the historical slow path, and
// both engines and both corpora agree on them.
func TestExtractDirtyHosts(t *testing.T) {
	ncs := syntheticNCs(t, 20)
	compiled := New(ncs)
	oracle := New(ncs, WithMatcher(MatcherRegexp))
	ctx := context.Background()
	hosts := []string{
		"AS64512.EXAMPLE0003.NET",     // uppercase
		"as64512.example0003.net.",    // trailing dot
		" as64512.example0003.net",    // leading space
		"as64512.example0003.net ",    // trailing space
		"as64512.éxample0003.net",     // non-ASCII
		"as64512.example0003.net\xff", // invalid UTF-8
		"as64512.example0003.net",     // clean control
	}
	for _, h := range hosts {
		gm, gok := compiled.Extract(ctx, h)
		wm, wok := oracle.Extract(ctx, h)
		if gok != wok || gm != wm {
			t.Fatalf("host %q: compiled (%+v, %v), regexp (%+v, %v)", h, gm, gok, wm, wok)
		}
		bm, bok := compiled.ExtractBytes([]byte(h))
		if bok != gok {
			t.Fatalf("host %q: ExtractBytes ok=%v, Extract ok=%v", h, bok, gok)
		}
		gm.Hostname = ""
		if bok && bm != gm {
			t.Fatalf("host %q: ExtractBytes %+v != Extract %+v", h, bm, gm)
		}
	}
}
