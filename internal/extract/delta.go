package extract

import (
	"fmt"
	"io"

	"hoiho/internal/core"
	"hoiho/internal/corpusbin"
)

// binaryRecords builds the corpus's retained NCs in corpusbin record
// form — the same preparation SaveBinary performs, reusing compiled
// engines where the entries already hold them. The result is memoized
// (the corpus is immutable after build, and serializing every engine's
// wire programs is the expensive part), so repeated diffs and delta
// applies against the same live corpus pay it once. Callers must treat
// the returned slice as read-only.
func (c *Corpus) binaryRecords() []corpusbin.NCRecord {
	c.binOnce.Do(func() {
		recs := make([]corpusbin.NCRecord, len(c.ncs))
		for i, nc := range c.ncs {
			recs[i] = corpusbin.NCRecord{NC: nc, Programs: c.compiledEngine(nc).Wire()}
		}
		c.binRecs = recs
	})
	return c.binRecs
}

// Diff writes the HBD delta that patches old's retained corpus into
// new's (see internal/corpusbin): per-record add/remove/replace ops
// chained between the two corpus fingerprints. ApplyDelta on a corpus
// whose fingerprint matches old's reproduces new's SaveBinary bytes
// exactly.
func Diff(old, new *Corpus, w io.Writer) error {
	if err := corpusbin.EncodeDelta(w, old.binaryRecords(), new.binaryRecords()); err != nil {
		return fmt.Errorf("extract: diff: %w", err)
	}
	return nil
}

// ApplyDelta patches base with an HBD delta and returns the resulting
// corpus (indexed with opts, exactly as Load would build it) along with
// the full target HBC bytes — byte-identical to a SaveBinary of the
// corpus the delta was diffed from — so callers can persist or forward
// the complete corpus, never the patch. It refuses to apply when base's
// fingerprint does not match the delta's chain
// (corpusbin.ErrDeltaBaseMismatch) and fails closed on any corruption;
// base is never modified.
//
// The result is assembled from provenance, not re-decoded: records the
// delta copies keep base's NC and compiled engine, so only the
// records the delta actually changed pay program deserialization and
// engine construction. Applying a small delta is therefore cheaper than
// reloading the full target corpus, even though the full bytes are
// produced (and checksum-verified against the chain) either way.
//
//hoiho:ctxflow bounded one-shot pass over the patched corpus's records re-arming engines, milliseconds even for full-scale corpora; not a streaming pipeline
func ApplyDelta(base *Corpus, delta []byte, opts ...Option) (*Corpus, []byte, error) {
	// base.fp is core.FingerprintNCs over the same NCs binaryRecords
	// carries, memoized at corpus build; attesting it skips one full
	// hash pass over the base without weakening the chain check.
	full, recs, engines, err := corpusbin.ApplyDeltaRecordsFP(base.binaryRecords(), base.fp, delta)
	if err != nil {
		return nil, nil, fmt.Errorf("extract: apply delta: %w", err)
	}
	ncs := make([]*core.NC, len(recs))
	for i, rec := range recs {
		ncs[i] = rec.NC
	}
	if len(ncs) == 0 {
		return nil, nil, fmt.Errorf("extract: apply delta: corpus contains no conventions")
	}
	c := New(ncs, opts...)
	if c.kind == MatcherCompiled {
		for i, nc := range ncs {
			e, ok := c.entries[nc.Suffix]
			if !ok || e.nc != nc {
				continue // filtered out, or superseded by a later duplicate
			}
			eng := engines[i]
			if eng == nil {
				// A copied record: base's compiled engine is the engine
				// for these exact programs.
				eng = base.compiledEngine(nc)
			}
			// Single-threaded: the corpus is not shared until we return.
			e.eng = eng
			e.m = eng
		}
	}
	c.Precompile()
	return c, full, nil
}
