package extract

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"

	"hoiho/internal/faultinject"
)

// CallOption tunes one ExtractBatch/ExtractStream invocation without
// rebuilding the corpus.
type CallOption func(*callOpts)

type callOpts struct {
	workers int
}

// CallWorkers overrides the corpus worker bound for this call only.
// n <= 0 keeps the corpus default.
func CallWorkers(n int) CallOption {
	return func(o *callOpts) { o.workers = n }
}

// batchChunk is the unit of work sharding: small enough to balance skewed
// per-hostname costs across workers, large enough to amortize the
// scheduling atomics.
const batchChunk = 512

// ExtractBatch applies the corpus to every hostname concurrently and
// returns one Result per input, aligned with hosts. Workers claim
// fixed-size chunks of the index space, so the output is deterministic
// and input-ordered regardless of scheduling. Cancellation is checked
// between chunks: on cancellation the workers stop, the results
// processed so far are returned alongside ctx.Err(), and the untouched
// tail is zero-valued (OK == false).
func (c *Corpus) ExtractBatch(ctx context.Context, hosts []string, opts ...CallOption) ([]Result, error) {
	out := make([]Result, len(hosts)) //hoiho:hotalloc one result slice per batch call, amortized over len(hosts) items; benchgate pins the 3 allocs/op batch budget
	workers := c.workerCount(len(hosts), opts)
	nChunks := (len(hosts) + batchChunk - 1) / batchChunk
	//hoiho:hotalloc one chunk-worker closure per batch call, not per hostname
	extractChunk := func(ci int) {
		lo := ci * batchChunk
		hi := lo + batchChunk
		if hi > len(hosts) {
			hi = len(hosts)
		}
		for i := lo; i < hi; i++ {
			if c.extractInto(&out[i], hosts[i]) {
				out[i].Hostname = hosts[i]
			}
		}
	}
	if workers <= 1 || len(hosts) <= batchChunk {
		for ci := 0; ci < nChunks; ci++ {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			if faultinject.Active() {
				faultinject.Fire(ctx, faultinject.StageBatchChunk, strconv.Itoa(ci))
			}
			extractChunk(ci)
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//hoiho:hotalloc one goroutine closure per worker per batch call, amortized over the whole batch
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				ci := int(next.Add(1)) - 1
				if ci >= nChunks {
					return
				}
				if faultinject.Active() {
					faultinject.Fire(ctx, faultinject.StageBatchChunk, strconv.Itoa(ci))
				}
				extractChunk(ci)
			}
		}()
	}
	wg.Wait()
	return out, ctx.Err()
}

// streamChunk sizes the micro-batches ExtractStream hands to workers.
const streamChunk = 256

// ExtractStream reads hostnames from in until it is closed, extracts
// concurrently, and delivers one Result per input on the returned
// channel, in input order (a sequence-numbered reorder stage restores
// ordering after the parallel stage). The returned channel is closed
// after the last result.
//
// Cancelling ctx is the shutdown path: every internal send and receive
// also waits on ctx.Done, so the chunker, workers, and reorderer all
// drain and exit — no goroutine leaks — and the output channel closes
// promptly. A consumer that stops reading early MUST cancel ctx (and
// may then abandon the channel); draining the channel fully needs no
// cancellation.
func (c *Corpus) ExtractStream(ctx context.Context, in <-chan string, opts ...CallOption) <-chan Result {
	out := make(chan Result, streamChunk)
	workers := c.workerCount(streamChunk*4, opts)

	type job struct {
		seq   int
		hosts []string
	}
	type done struct {
		seq     int
		results []Result
	}
	jobs := make(chan job, workers)
	dones := make(chan done, workers)

	// Chunker: group the stream into sequence-numbered micro-batches.
	go func() {
		defer close(jobs)
		seq := 0
		buf := make([]string, 0, streamChunk)
		flush := func() bool {
			if len(buf) == 0 {
				return true
			}
			select {
			case jobs <- job{seq: seq, hosts: buf}:
			case <-ctx.Done():
				return false
			}
			seq++
			buf = make([]string, 0, streamChunk)
			return true
		}
		for {
			select {
			case h, ok := <-in:
				if !ok {
					flush()
					return
				}
				buf = append(buf, h)
				if len(buf) == streamChunk && !flush() {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	// Workers: extract each chunk independently. The stream has no error
	// path, so injected faults here are stalls (exercising cancellation
	// latency in the chaos tests); Fire's error return is discarded.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if faultinject.Active() {
					faultinject.Fire(ctx, faultinject.StageStreamChunk, strconv.Itoa(j.seq))
				}
				rs := make([]Result, len(j.hosts))
				for i, h := range j.hosts {
					if c.extractInto(&rs[i], h) {
						rs[i].Hostname = h
					}
				}
				select {
				case dones <- done{seq: j.seq, results: rs}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(dones)
	}()

	// Reorderer: emit chunks strictly by sequence number.
	go func() {
		defer close(out)
		pending := make(map[int][]Result)
		next := 0
		for d := range dones {
			pending[d.seq] = d.results
			for {
				rs, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				for _, r := range rs {
					select {
					case out <- r:
					case <-ctx.Done():
						return
					}
				}
			}
		}
	}()
	return out
}
