package extract

import (
	"sync"
	"sync/atomic"
)

// Result is one per-hostname outcome of a batch or stream extraction.
// Results are always emitted in input order; OK distinguishes hits from
// misses so positions stay aligned with the input.
type Result struct {
	Match
	OK bool
}

// batchChunk is the unit of work sharding: small enough to balance skewed
// per-hostname costs across workers, large enough to amortize the
// scheduling atomics.
const batchChunk = 512

// ExtractBatch applies the corpus to every hostname concurrently and
// returns one Result per input, aligned with hosts. Workers claim
// fixed-size chunks of the index space, so the output is deterministic
// and input-ordered regardless of scheduling.
func (c *Corpus) ExtractBatch(hosts []string) []Result {
	out := make([]Result, len(hosts))
	workers := c.workerCount(len(hosts))
	if workers <= 1 || len(hosts) <= batchChunk {
		for i, h := range hosts {
			out[i].Match, out[i].OK = c.Extract(h)
		}
		return out
	}
	nChunks := (len(hosts) + batchChunk - 1) / batchChunk
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ci := int(next.Add(1)) - 1
				if ci >= nChunks {
					return
				}
				lo := ci * batchChunk
				hi := lo + batchChunk
				if hi > len(hosts) {
					hi = len(hosts)
				}
				for i := lo; i < hi; i++ {
					out[i].Match, out[i].OK = c.Extract(hosts[i])
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// streamChunk sizes the micro-batches ExtractStream hands to workers.
const streamChunk = 256

// ExtractStream reads hostnames from in until it is closed, extracts
// concurrently, and delivers one Result per input on the returned
// channel, in input order (a sequence-numbered reorder stage restores
// ordering after the parallel stage). The returned channel is closed
// after the last result; the caller should drain it fully.
func (c *Corpus) ExtractStream(in <-chan string) <-chan Result {
	out := make(chan Result, streamChunk)
	workers := c.workerCount(streamChunk * 4)

	type job struct {
		seq   int
		hosts []string
	}
	type done struct {
		seq     int
		results []Result
	}
	jobs := make(chan job, workers)
	dones := make(chan done, workers)

	// Chunker: group the stream into sequence-numbered micro-batches.
	go func() {
		defer close(jobs)
		seq := 0
		buf := make([]string, 0, streamChunk)
		flush := func() {
			if len(buf) == 0 {
				return
			}
			jobs <- job{seq: seq, hosts: buf}
			seq++
			buf = make([]string, 0, streamChunk)
		}
		for h := range in {
			buf = append(buf, h)
			if len(buf) == streamChunk {
				flush()
			}
		}
		flush()
	}()

	// Workers: extract each chunk independently.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				rs := make([]Result, len(j.hosts))
				for i, h := range j.hosts {
					rs[i].Match, rs[i].OK = c.Extract(h)
				}
				dones <- done{seq: j.seq, results: rs}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(dones)
	}()

	// Reorderer: emit chunks strictly by sequence number.
	go func() {
		defer close(out)
		pending := make(map[int][]Result)
		next := 0
		for d := range dones {
			pending[d.seq] = d.results
			for {
				rs, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				for _, r := range rs {
					out <- r
				}
			}
		}
	}()
	return out
}
