package extract

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hoiho/internal/asn"
	"hoiho/internal/core"
	"hoiho/internal/psl"
	"hoiho/internal/rex"
)

// ncFromJSON builds an NC through the stable JSON form, so its regexes
// arrive uncompiled exactly as a loaded corpus's would.
func ncFromJSON(t testing.TB, suffix, src string, class core.Classification) *core.NC {
	t.Helper()
	ncs, err := core.UnmarshalNCs([]byte(
		`[{"suffix":"` + suffix + `","regexes":["` + src + `"],"class":"` + class.String() + `"}]`))
	if err != nil {
		t.Fatal(err)
	}
	return ncs[0]
}

// syntheticNCs builds n conventions over distinct registered domains,
// cycling through the shapes of table 1 (start/end/bare/simple).
func syntheticNCs(t testing.TB, n int) []*core.NC {
	t.Helper()
	ncs := make([]*core.NC, 0, n)
	for i := 0; i < n; i++ {
		suffix := fmt.Sprintf("example%04d.net", i)
		var src string
		switch i % 4 {
		case 0: // start: as<ASN>-city.suffix
			src = `^as(\\d+)-[^\\.]+\\.` + jsonEscapeDots(suffix) + `$`
		case 1: // end, left-open: ...as<ASN>.suffix
			src = `as(\\d+)\\.` + jsonEscapeDots(suffix) + `$`
		case 2: // bare: <ASN>.label.suffix
			src = `^(\\d+)\\.[a-z]+\\.` + jsonEscapeDots(suffix) + `$`
		default: // simple: as<ASN>.suffix
			src = `^as(\\d+)\\.` + jsonEscapeDots(suffix) + `$`
		}
		class := core.Good
		if i%7 == 3 {
			class = core.Promising
		} else if i%11 == 5 {
			class = core.Poor
		}
		ncs = append(ncs, ncFromJSON(t, suffix, src, class))
	}
	return ncs
}

// jsonEscapeDots renders "\." sequences for embedding in a JSON string.
func jsonEscapeDots(s string) string {
	var out []byte
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			out = append(out, '\\', '\\')
		}
		out = append(out, s[i])
	}
	return string(out)
}

// randomHost generates hostnames that sometimes match a convention,
// sometimes miss (wrong shape, unknown suffix, bare TLD, junk).
func randomHost(rng *rand.Rand, ncs []*core.NC) string {
	suffix := fmt.Sprintf("example%04d.net", rng.Intn(len(ncs)+64)) // some unknown
	switch rng.Intn(8) {
	case 0:
		return fmt.Sprintf("as%d-city%d.%s", rng.Intn(70000)+1, rng.Intn(99), suffix)
	case 1:
		return fmt.Sprintf("pe1.core.as%d.%s", rng.Intn(70000)+1, suffix)
	case 2:
		return fmt.Sprintf("%d.pop%c.%s", rng.Intn(70000)+1, 'a'+rune(rng.Intn(26)), suffix)
	case 3:
		return fmt.Sprintf("as%d.%s", rng.Intn(70000)+1, suffix)
	case 4:
		return fmt.Sprintf("lo0.rt%d.%s", rng.Intn(99), suffix)
	case 5:
		return "net" // bare TLD
	case 6:
		return fmt.Sprintf("as0.%s", suffix) // captures the reserved zero ASN
	default:
		return fmt.Sprintf("as%d-x.unrelated%d.org", rng.Intn(70000)+1, rng.Intn(50))
	}
}

// naiveScan is the replaced consumer pattern: try every NC against the
// hostname until one matches.
func naiveScan(ncs []*core.NC, host string) (Result, bool) {
	for _, nc := range ncs {
		digits, ok := nc.Extract(host)
		if !ok {
			continue
		}
		a, err := asn.Parse(digits)
		if err != nil {
			return Result{}, false
		}
		return Result{
			Hostname: host, Suffix: nc.Suffix, Class: nc.Class,
			Digits: digits, ASN: a, OK: true,
		}, true
	}
	return Result{}, false
}

// TestExtractAgreesWithLinearScan is the property test: over randomized
// hostnames and non-nested suffixes, the indexed Corpus and the naive
// all-NCs scan must agree exactly.
func TestExtractAgreesWithLinearScan(t *testing.T) {
	ncs := syntheticNCs(t, 150)
	c := New(ncs)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		host := randomHost(rng, ncs)
		got, gotOK := c.Extract(ctx, host)
		want, wantOK := naiveScan(ncs, host)
		if gotOK != wantOK || got != want {
			t.Fatalf("host %q: corpus = (%+v, %v), linear scan = (%+v, %v)",
				host, got, gotOK, want, wantOK)
		}
	}
}

// TestExtractDeepestSuffixWins pins the walk semantics shared with the
// replaced bdrmapit index: the deepest matching suffix governs, and a
// governing NC that fails to match does NOT fall through to a shallower
// suffix.
func TestExtractDeepestSuffixWins(t *testing.T) {
	deep := ncFromJSON(t, "cust.xnet.net", `as(\\d+)\\.cust\\.xnet\\.net$`, core.Good)
	shallow := ncFromJSON(t, "xnet.net", `^r(\\d+)-[^\\.]+\\.xnet\\.net$`, core.Good)
	c := New([]*core.NC{shallow, deep})
	ctx := context.Background()

	if m, ok := c.Extract(ctx, "a.as77.cust.xnet.net"); !ok || m.Suffix != "cust.xnet.net" || m.ASN != 77 {
		t.Fatalf("deep suffix: %+v %v", m, ok)
	}
	if m, ok := c.Extract(ctx, "r12-lax.xnet.net"); !ok || m.Suffix != "xnet.net" || m.ASN != 12 {
		t.Fatalf("shallow suffix: %+v %v", m, ok)
	}
	// r99-style hostname under the deep suffix: the deep NC governs and
	// misses; the shallow NC must not be consulted.
	if m, ok := c.Extract(ctx, "r12-lax.cust.xnet.net"); ok {
		t.Fatalf("fell through to shallower suffix: %+v", m)
	}
}

// TestExtractEdgeCases covers empty corpora and degenerate hostnames.
func TestExtractEdgeCases(t *testing.T) {
	ctx := context.Background()
	empty := New(nil)
	if _, ok := empty.Extract(ctx, "as1.example.net"); ok {
		t.Fatal("empty corpus matched")
	}
	c := New([]*core.NC{ncFromJSON(t, "example.net", `^as(\\d+)\\.example\\.net$`, core.Good)})
	for _, host := range []string{"", "net", ".", "example.net", "as0.example.net"} {
		if m, ok := c.Extract(ctx, host); ok {
			t.Fatalf("host %q unexpectedly matched: %+v", host, m)
		}
	}
	if m, ok := c.Extract(ctx, "as64512.example.net"); !ok || m.ASN != 64512 || m.Digits != "64512" {
		t.Fatalf("fast path: %+v %v", m, ok)
	}
}

// TestExtractCancelledContext: a cancelled context is a miss on entry,
// not a partial extraction.
func TestExtractCancelledContext(t *testing.T) {
	c := New([]*core.NC{ncFromJSON(t, "example.net", `^as(\\d+)\\.example\\.net$`, core.Good)})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if m, ok := c.Extract(ctx, "as64512.example.net"); ok {
		t.Fatalf("cancelled context extracted: %+v", m)
	}
	// nil context means "no cancellation".
	if _, ok := c.Extract(nil, "as64512.example.net"); !ok { //nolint:staticcheck
		t.Fatal("nil context refused")
	}
}

// TestConventions exercises suffix resolution without application
// through the read-only view.
func TestConventions(t *testing.T) {
	nc := ncFromJSON(t, "example.net", `^as(\\d+)\\.example\\.net$`, core.Promising)
	c := New([]*core.NC{nc})
	cv, ok := c.Conventions("foo.bar.example.net")
	if !ok || cv.Suffix() != "example.net" || cv.Class() != core.Promising {
		t.Fatalf("Conventions = %+v, %v", cv, ok)
	}
	if cv.NumRegexes() != 1 || len(cv.Regexes()) != 1 || len(cv.Strings()) != 1 {
		t.Fatalf("regex accessors: %d %d %d", cv.NumRegexes(), len(cv.Regexes()), len(cv.Strings()))
	}
	// The regexes slice is a copy: mutating it must not reach the corpus.
	rs := cv.Regexes()
	rs[0] = nil
	cv2, _ := c.Conventions("example.net")
	if cv2.Regexes()[0] == nil {
		t.Fatal("Regexes() aliases corpus state")
	}
	if _, ok := c.Conventions("example.org"); ok {
		t.Fatal("unrelated suffix resolved")
	}
}

// TestSuffixes: sorted, one per retained NC.
func TestSuffixes(t *testing.T) {
	ncs := syntheticNCs(t, 10)
	c := New(ncs)
	suf := c.Suffixes()
	if len(suf) != 10 {
		t.Fatalf("len = %d", len(suf))
	}
	for i := 1; i < len(suf); i++ {
		if suf[i-1] >= suf[i] {
			t.Fatalf("unsorted at %d: %q >= %q", i, suf[i-1], suf[i])
		}
	}
	for _, s := range suf {
		if _, ok := c.Conventions(s); !ok {
			t.Fatalf("suffix %q not resolvable", s)
		}
	}
}

// TestMinClassFilter checks corpus-level class restriction.
func TestMinClassFilter(t *testing.T) {
	ctx := context.Background()
	ncs := []*core.NC{
		ncFromJSON(t, "good.net", `^as(\\d+)\\.good\\.net$`, core.Good),
		ncFromJSON(t, "prom.net", `^as(\\d+)\\.prom\\.net$`, core.Promising),
		ncFromJSON(t, "poor.net", `^as(\\d+)\\.poor\\.net$`, core.Poor),
	}
	all := New(ncs)
	usable := New(ncs, UsableOnly())
	goodOnly := New(ncs, MinClass(core.Good))
	if all.Len() != 3 || usable.Len() != 2 || goodOnly.Len() != 1 {
		t.Fatalf("lens = %d %d %d", all.Len(), usable.Len(), goodOnly.Len())
	}
	if _, ok := usable.Extract(ctx, "as1.poor.net"); ok {
		t.Fatal("poor NC applied through UsableOnly corpus")
	}
	if _, ok := usable.Extract(ctx, "as1.prom.net"); !ok {
		t.Fatal("promising NC missing from UsableOnly corpus")
	}
}

// TestDuplicateSuffixLastWins pins the overwrite behavior inherited from
// the replaced per-consumer maps.
func TestDuplicateSuffixLastWins(t *testing.T) {
	ctx := context.Background()
	first := ncFromJSON(t, "dup.net", `^a(\\d+)\\.dup\\.net$`, core.Good)
	second := ncFromJSON(t, "dup.net", `^b(\\d+)\\.dup\\.net$`, core.Good)
	c := New([]*core.NC{first, second})
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	if _, ok := c.Extract(ctx, "a5.dup.net"); ok {
		t.Fatal("first NC survived")
	}
	if m, ok := c.Extract(ctx, "b5.dup.net"); !ok || m.ASN != 5 {
		t.Fatalf("second NC missing: %+v %v", m, ok)
	}
}

// TestConcurrentExtractCompilesOnce hammers a freshly built (uncompiled)
// corpus from many goroutines; under -race this verifies the sync.Once
// compile cache leaves no unsynchronized writes in the hot path.
func TestConcurrentExtractCompilesOnce(t *testing.T) {
	ncs := syntheticNCs(t, 64)
	c := New(ncs)
	ctx := context.Background()
	hosts := make([]string, 512)
	rng := rand.New(rand.NewSource(7))
	for i := range hosts {
		hosts[i] = randomHost(rng, ncs)
	}
	want := make([]Result, len(hosts))
	for i, h := range hosts {
		want[i], _ = naiveScan(ncs, h)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				i := (g*31 + rep*17) % len(hosts)
				m, ok := c.Extract(ctx, hosts[i])
				if ok != want[i].OK || m != want[i] {
					select {
					case errs <- fmt.Sprintf("goroutine %d: host %q: got (%+v, %v) want %+v",
						g, hosts[i], m, ok, want[i]):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestExtractBatchMatchesSerial checks the worker pool returns exactly
// the serial results, in input order.
func TestExtractBatchMatchesSerial(t *testing.T) {
	ncs := syntheticNCs(t, 100)
	c := New(ncs, WithWorkers(8))
	ctx := context.Background()
	rng := rand.New(rand.NewSource(99))
	hosts := make([]string, 10_000)
	for i := range hosts {
		hosts[i] = randomHost(rng, ncs)
	}
	got, err := c.ExtractBatch(ctx, hosts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(hosts) {
		t.Fatalf("len = %d, want %d", len(got), len(hosts))
	}
	for i, h := range hosts {
		m, ok := c.Extract(ctx, h)
		if got[i].OK != ok || got[i] != m {
			t.Fatalf("index %d (%q): batch %+v, serial (%+v, %v)", i, h, got[i], m, ok)
		}
	}
	// Serial corpus (workers=1) must agree too.
	serial, err := New(ncs, WithWorkers(1)).ExtractBatch(ctx, hosts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != got[i] {
			t.Fatalf("index %d: serial %+v != parallel %+v", i, serial[i], got[i])
		}
	}
	// Per-call worker override must not change results.
	one, err := c.ExtractBatch(ctx, hosts, CallWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range one {
		if one[i] != got[i] {
			t.Fatalf("index %d: CallWorkers(1) %+v != default %+v", i, one[i], got[i])
		}
	}
}

// TestExtractStreamOrdered checks the streaming path emits every result
// in input order across chunk boundaries.
func TestExtractStreamOrdered(t *testing.T) {
	ncs := syntheticNCs(t, 50)
	c := New(ncs, WithWorkers(6))
	rng := rand.New(rand.NewSource(5))
	n := 4*streamChunk + 37 // force several chunks plus a ragged tail
	hosts := make([]string, n)
	for i := range hosts {
		hosts[i] = randomHost(rng, ncs)
	}

	in := make(chan string)
	go func() {
		defer close(in)
		for _, h := range hosts {
			in <- h
		}
	}()
	var got []Result
	for r := range c.ExtractStream(context.Background(), in) {
		got = append(got, r)
	}
	want, err := c.ExtractBatch(context.Background(), hosts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("stream emitted %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("index %d: stream %+v != batch %+v", i, got[i], want[i])
		}
	}
}

// TestExtractStreamEmpty: a closed-empty input yields a closed-empty
// output, no deadlock.
func TestExtractStreamEmpty(t *testing.T) {
	c := New(syntheticNCs(t, 4))
	in := make(chan string)
	close(in)
	if _, ok := <-c.ExtractStream(context.Background(), in); ok {
		t.Fatal("result from empty stream")
	}
}

// TestSaveLoadRoundTrip: a corpus survives the stable JSON form with
// identical extraction behavior.
func TestSaveLoadRoundTrip(t *testing.T) {
	ncs := syntheticNCs(t, 20)
	c := New(ncs)
	ctx := context.Background()
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != c.Len() {
		t.Fatalf("loaded %d NCs, want %d", loaded.Len(), c.Len())
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		host := randomHost(rng, ncs)
		gm, gok := loaded.Extract(ctx, host)
		wm, wok := c.Extract(ctx, host)
		if gok != wok || gm != wm {
			t.Fatalf("host %q: loaded (%+v, %v), original (%+v, %v)", host, gm, gok, wm, wok)
		}
	}
	// Load-time filtering.
	usable, err := Load(bytes.NewReader(buf.Bytes()), UsableOnly())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range usable.Suffixes() {
		cv, ok := usable.Conventions(s)
		if !ok || !cv.Class().Usable() {
			t.Fatalf("unusable NC %s survived UsableOnly load", s)
		}
	}
}

// TestLoadRejectsGarbage: malformed JSON is an error, not a panic.
func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Fatal("garbage loaded")
	}
}

// TestNonRegisteredSuffixWalk: corpora whose suffixes are not registered
// domains (bare TLDs, deep suffixes) fall back to the label walk and
// still resolve.
func TestNonRegisteredSuffixWalk(t *testing.T) {
	// "net" is itself a public suffix: the PSL direct path cannot index it.
	nc := ncFromJSON(t, "net", `as(\\d+)\\.net$`, core.Good)
	c := New([]*core.NC{nc})
	if c.pslDirect {
		t.Fatal("bare-TLD suffix should disable the PSL direct path")
	}
	if m, ok := c.Extract(context.Background(), "x.as701.net"); !ok || m.ASN != 701 {
		t.Fatalf("walk missed: %+v %v", m, ok)
	}
}

// TestWithPSL: a custom list changes what counts as a registered domain.
func TestWithPSL(t *testing.T) {
	list, err := psl.FromRules("net", "example.net")
	if err != nil {
		t.Fatal(err)
	}
	// Under this list, example.net is a public suffix, so an NC keyed by
	// a.example.net is the registered domain.
	nc := ncFromJSON(t, "a.example.net", `^as(\\d+)\\.a\\.example\\.net$`, core.Good)
	c := New([]*core.NC{nc}, WithPSL(list))
	if !c.pslDirect {
		t.Fatal("expected PSL direct path")
	}
	if m, ok := c.Extract(context.Background(), "as9.a.example.net"); !ok || m.ASN != 9 {
		t.Fatalf("extract: %+v %v", m, ok)
	}
}

// TestCompileSkipsBadRegex: an NC whose regex set contains an
// uncompilable pattern still applies its good regexes, mirroring
// NC.Extract's skip-on-error behavior.
func TestCompileSkipsBadRegex(t *testing.T) {
	nc := &core.NC{Suffix: "example.net", Class: core.Good}
	good := rex.MustNew(rex.Lit("as"), rex.Capture(), rex.Lit(".example.net"))
	nc.Regexes = []*rex.Regex{good}
	c := New([]*core.NC{nc})
	if m, ok := c.Extract(context.Background(), "as5.example.net"); !ok || m.ASN != 5 {
		t.Fatalf("extract: %+v %v", m, ok)
	}
}
