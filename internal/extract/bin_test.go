package extract

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"hoiho/internal/core"
	"hoiho/internal/corpusbin"
)

// hbcBytes serializes a corpus to the HBC binary form in memory.
func hbcBytes(t testing.TB, c *Corpus) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadSniffsHBC proves Load picks the codec from content alone: the
// same corpus saved both ways loads to the same fingerprint and the
// same extraction results.
func TestLoadSniffsHBC(t *testing.T) {
	ncs := syntheticNCs(t, 64)
	orig := New(ncs)

	var jsonBuf bytes.Buffer
	if err := orig.Save(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	hbc := hbcBytes(t, orig)
	if !corpusbin.IsHBC(hbc) {
		t.Fatal("SaveBinary output does not start with the HBC magic")
	}
	if corpusbin.IsHBC(jsonBuf.Bytes()) {
		t.Fatal("JSON output sniffs as HBC")
	}

	fromJSON, err := Load(bytes.NewReader(jsonBuf.Bytes()))
	if err != nil {
		t.Fatalf("load json: %v", err)
	}
	fromHBC, err := Load(bytes.NewReader(hbc))
	if err != nil {
		t.Fatalf("load hbc: %v", err)
	}
	if a, b := fromJSON.FingerprintString(), fromHBC.FingerprintString(); a != b {
		t.Fatalf("fingerprints differ: json %s, hbc %s", a, b)
	}
	if a, b := orig.FingerprintString(), fromHBC.FingerprintString(); a != b {
		t.Fatalf("fingerprint changed across save/load: %s -> %s", a, b)
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		host := randomHost(rng, ncs)
		rj, okj := fromJSON.Extract(context.Background(), host)
		rh, okh := fromHBC.Extract(context.Background(), host)
		if okj != okh || rj != rh {
			t.Fatalf("host %q: json (%+v,%v) vs hbc (%+v,%v)", host, rj, okj, rh, okh)
		}
	}
}

// TestHBCJSONSaveByteIdentity is the oracle property end to end through
// the extract API: JSON -> corpus -> HBC -> corpus -> JSON must be
// byte-identical.
func TestHBCJSONSaveByteIdentity(t *testing.T) {
	orig := New(syntheticNCs(t, 32))
	var before bytes.Buffer
	if err := orig.Save(&before); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(hbcBytes(t, orig)))
	if err != nil {
		t.Fatal(err)
	}
	var after bytes.Buffer
	if err := loaded.Save(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatalf("JSON through HBC not byte-identical:\n%s\nvs\n%s", before.Bytes(), after.Bytes())
	}
}

// TestHBCLoadOptions proves load-time options apply to the binary form
// exactly as to JSON: class filtering drops conventions, and the
// stdlib-matcher fallback still answers identically.
func TestHBCLoadOptions(t *testing.T) {
	ncs := syntheticNCs(t, 48)
	hbc := hbcBytes(t, New(ncs))

	usable, err := Load(bytes.NewReader(hbc), UsableOnly())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range usable.Suffixes() {
		cv, ok := usable.Conventions(s)
		if !ok {
			t.Fatalf("suffix %s not indexed", s)
		}
		if cv.Class() < core.Promising {
			t.Fatalf("UsableOnly kept %s (class %v)", s, cv.Class())
		}
	}
	wantUsable := 0
	for _, nc := range ncs {
		if nc.Class >= core.Promising {
			wantUsable++
		}
	}
	if got := usable.Len(); got != wantUsable {
		t.Fatalf("UsableOnly kept %d conventions, want %d", got, wantUsable)
	}

	rng := rand.New(rand.NewSource(11))
	compiled, err := Load(bytes.NewReader(hbc))
	if err != nil {
		t.Fatal(err)
	}
	stdlib, err := Load(bytes.NewReader(hbc), WithMatcher(MatcherRegexp))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		host := randomHost(rng, ncs)
		rc, okc := compiled.Extract(context.Background(), host)
		rs, oks := stdlib.Extract(context.Background(), host)
		if okc != oks || rc != rs {
			t.Fatalf("host %q: compiled (%+v,%v) vs stdlib matcher (%+v,%v)", host, rc, okc, rs, oks)
		}
	}
}

// TestSaveFileRoutesByExtension proves the .hbc extension selects the
// binary codec and everything else stays JSON, and that LoadFile reads
// both back.
func TestSaveFileRoutesByExtension(t *testing.T) {
	dir := t.TempDir()
	orig := New(syntheticNCs(t, 16))

	hbcPath := filepath.Join(dir, "corpus.hbc")
	jsonPath := filepath.Join(dir, "corpus.json")
	if err := orig.SaveFile(hbcPath); err != nil {
		t.Fatal(err)
	}
	if err := orig.SaveFile(jsonPath); err != nil {
		t.Fatal(err)
	}

	hbcData, err := os.ReadFile(hbcPath)
	if err != nil {
		t.Fatal(err)
	}
	if !corpusbin.IsHBC(hbcData) {
		t.Fatal("SaveFile(.hbc) did not write HBC")
	}
	jsonData, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if corpusbin.IsHBC(jsonData) || jsonData[0] != '[' {
		t.Fatalf("SaveFile(.json) did not write the JSON array form: %.20q", jsonData)
	}

	// SaveFileBinary writes HBC regardless of extension.
	forcedPath := filepath.Join(dir, "corpus.dat")
	if err := orig.SaveFileBinary(forcedPath); err != nil {
		t.Fatal(err)
	}
	forced, err := os.ReadFile(forcedPath)
	if err != nil {
		t.Fatal(err)
	}
	if !corpusbin.IsHBC(forced) {
		t.Fatal("SaveFileBinary did not write HBC")
	}

	for _, path := range []string{hbcPath, jsonPath, forcedPath} {
		loaded, err := LoadFile(path)
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", path, err)
		}
		if a, b := loaded.FingerprintString(), orig.FingerprintString(); a != b {
			t.Fatalf("%s: fingerprint %s, want %s", path, a, b)
		}
	}
}

// TestHBCLoadIsPreArmed proves a binary load serves without compiling:
// the corpus extracts correctly immediately, concurrently, under -race.
func TestHBCLoadIsPreArmed(t *testing.T) {
	ncs := syntheticNCs(t, 32)
	loaded, err := Load(bytes.NewReader(hbcBytes(t, New(ncs))))
	if err != nil {
		t.Fatal(err)
	}
	hosts := make([]string, 0, 512)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 512; i++ {
		hosts = append(hosts, randomHost(rng, ncs))
	}
	want := make([]Result, len(hosts))
	for i, h := range hosts {
		want[i], _ = loaded.Extract(context.Background(), h)
	}
	got, err := loaded.ExtractBatch(context.Background(), hosts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range hosts {
		if got[i] != want[i] {
			t.Fatalf("host %q: batch %+v vs serial %+v", hosts[i], got[i], want[i])
		}
	}
}

// TestLoadRejectsCorruptHBC proves the extract layer surfaces corpusbin's
// fail-closed errors instead of falling back to JSON.
func TestLoadRejectsCorruptHBC(t *testing.T) {
	data := hbcBytes(t, New(syntheticNCs(t, 8)))
	data[len(data)-1] ^= 0x40
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt HBC loaded successfully")
	}
	if _, err := Load(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated HBC loaded successfully")
	}
}
