package extract

import (
	"bytes"
	"testing"

	"hoiho/internal/core"
)

// TestFingerprintStable: equal content fingerprints identically
// regardless of construction order, different content differs, and a
// Save/Load round trip — the daemon's reload path — preserves the
// fingerprint, so X-Hoiho-Corpus is a true content identity.
func TestFingerprintStable(t *testing.T) {
	ncs := syntheticNCs(t, 12)
	c1 := New(ncs)

	reversed := make([]*core.NC, len(ncs))
	for i, nc := range ncs {
		reversed[len(ncs)-1-i] = nc
	}
	c2 := New(reversed)
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Errorf("construction order changed the fingerprint: %016x vs %016x",
			c1.Fingerprint(), c2.Fingerprint())
	}

	c3 := New(ncs[:11])
	if c1.Fingerprint() == c3.Fingerprint() {
		t.Error("dropping an NC did not change the fingerprint")
	}

	var buf bytes.Buffer
	if err := c1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Fingerprint() != c1.Fingerprint() {
		t.Errorf("save/load changed the fingerprint: %016x vs %016x",
			c1.Fingerprint(), loaded.Fingerprint())
	}
	if got := c1.FingerprintString(); len(got) != 16 {
		t.Errorf("FingerprintString = %q, want 16 hex digits", got)
	}

	// MinClass filtering keeps only some NCs, so the fingerprint must
	// reflect the retained set, matching what a filtered reload serves.
	filtered := New(ncs, UsableOnly())
	if filtered.Len() != c1.Len() && filtered.Fingerprint() == c1.Fingerprint() {
		t.Error("class filtering changed the NC set but not the fingerprint")
	}
}
