// Package extract is the serving side of Hoiho: it applies a corpus of
// learned naming conventions (NCs) to hostnames at scale. The paper's end
// product is exactly such a corpus — §7 applies it to the full OpenINTEL
// PTR sweep and §5 feeds it into bdrmapIT — so hostname→ASN lookup is the
// inner loop of every downstream consumer.
//
// A Corpus indexes NCs by registered-domain suffix and resolves a
// hostname with a single PSL-backed lookup (falling back to a bounded
// longest-label-suffix walk for corpora whose suffixes are not registered
// domains). Each NC's regexp machines are compiled exactly once, behind a
// sync.Once, so any number of concurrent extractors share one compiled
// corpus. Extract is the single-hostname fast path; ExtractBatch and
// ExtractStream shard million-hostname workloads over a worker pool with
// deterministic, input-ordered results.
package extract

import (
	"runtime"
	"sort"
	"strings"
	"sync"

	"hoiho/internal/asn"
	"hoiho/internal/core"
	"hoiho/internal/psl"
	"hoiho/internal/rex"
)

// Match is one successful extraction: the hostname, the convention that
// produced it, and the extracted ASN in digit and parsed form.
type Match struct {
	Hostname string
	// Suffix is the matched NC's registered-domain suffix.
	Suffix string
	// Class is the matched NC's §4 quality grade.
	Class core.Classification
	// Digits is the raw captured digit string.
	Digits string
	// ASN is the parsed extraction.
	ASN asn.ASN
}

// entry pairs an NC with its compile-once state. The rex lazy caches
// (String, Compile) write on first use, so concurrent extractors must not
// race to prime them; the Once makes compilation happen exactly once no
// matter how many goroutines arrive.
type entry struct {
	nc       *core.NC
	once     sync.Once
	compiled []*rex.Regex
}

// machines returns the NC's compiled regexes, in NC order, compiling them
// on first use. Regexes that fail to compile are dropped (matching the
// skip-on-error behavior of NC.Extract) rather than poisoning the NC.
func (e *entry) machines() []*rex.Regex {
	e.once.Do(func() {
		e.compiled = make([]*rex.Regex, 0, len(e.nc.Regexes))
		for _, r := range e.nc.Regexes {
			if _, err := r.Compile(); err == nil {
				e.compiled = append(e.compiled, r)
			}
		}
	})
	return e.compiled
}

// Corpus is an immutable, concurrency-safe index of learned NCs, ready to
// be applied to any number of hostnames. Build one with New or Load and
// share it freely between goroutines.
type Corpus struct {
	list     *psl.List
	entries  map[string]*entry
	ncs      []*core.NC // retained NCs, suffix-sorted
	workers  int
	minClass core.Classification
	// maxLabels bounds the fallback suffix walk: no indexed suffix has
	// more labels than this.
	maxLabels int
	// pslDirect is true when every indexed suffix is its own registered
	// domain under list, so lookup is a single RegisteredDomain + map
	// probe instead of a label walk.
	pslDirect bool
	// fp is the content fingerprint, computed once in New.
	fp uint64
}

// Option configures a Corpus at construction time.
type Option func(*Corpus)

// WithPSL supplies the public suffix list backing lookups. The default is
// psl.Default(), the embedded snapshot.
func WithPSL(list *psl.List) Option {
	return func(c *Corpus) { c.list = list }
}

// WithWorkers bounds the goroutines ExtractBatch and ExtractStream use.
// 0 (the default) means GOMAXPROCS; 1 forces serial execution.
func WithWorkers(n int) Option {
	return func(c *Corpus) { c.workers = n }
}

// MinClass keeps only NCs graded at least min. The zero value (Poor)
// keeps everything.
func MinClass(min core.Classification) Option {
	return func(c *Corpus) { c.minClass = min }
}

// UsableOnly keeps only the good and promising NCs — the conventions §4
// calls usable, the set the paper applies in §7.
func UsableOnly() Option { return MinClass(core.Promising) }

// New indexes ncs into a Corpus. When two NCs share a suffix the later
// one wins, matching the map-overwrite behavior of the replaced
// per-consumer indexes. Compilation is lazy: a suffix's machines are
// built on its first lookup, once.
func New(ncs []*core.NC, opts ...Option) *Corpus {
	c := &Corpus{entries: make(map[string]*entry, len(ncs))}
	for _, o := range opts {
		o(c)
	}
	if c.list == nil {
		c.list = psl.Default()
	}
	for _, nc := range ncs {
		if nc == nil || nc.Class < c.minClass {
			continue
		}
		if e, ok := c.entries[nc.Suffix]; ok {
			e.nc = nc // last NC for a suffix wins
			continue
		}
		c.entries[nc.Suffix] = &entry{nc: nc}
		if n := strings.Count(nc.Suffix, ".") + 1; n > c.maxLabels {
			c.maxLabels = n
		}
	}
	c.pslDirect = true
	c.ncs = make([]*core.NC, 0, len(c.entries))
	for suffix, e := range c.entries {
		c.ncs = append(c.ncs, e.nc)
		if reg, ok := c.list.RegisteredDomain(suffix); !ok || reg != suffix {
			c.pslDirect = false
		}
	}
	sort.Slice(c.ncs, func(i, j int) bool { return c.ncs[i].Suffix < c.ncs[j].Suffix })
	c.fp = c.fingerprint()
	return c
}

// Len returns the number of indexed NCs.
func (c *Corpus) Len() int { return len(c.ncs) }

// NCs returns the indexed NCs in suffix order. The slice is shared; do
// not mutate it.
func (c *Corpus) NCs() []*core.NC { return c.ncs }

// Lookup finds the NC governing host's suffix without applying it: the
// deepest indexed label suffix of host, found via the registered domain
// when the corpus permits it.
func (c *Corpus) Lookup(host string) (*core.NC, bool) {
	e := c.lookup(host)
	if e == nil {
		return nil, false
	}
	return e.nc, true
}

func (c *Corpus) lookup(host string) *entry {
	if len(c.entries) == 0 || host == "" {
		return nil
	}
	if c.pslDirect {
		// Every indexed suffix is a registered domain, and a hostname has
		// exactly one registered domain: one PSL walk, one map probe.
		reg, ok := c.list.RegisteredDomain(host)
		if !ok {
			return nil
		}
		return c.entries[reg]
	}
	// Fallback for hand-built corpora (deep or bare suffixes): walk label
	// suffixes longest-first, skipping labels deeper than any indexed
	// suffix so the walk costs at most maxLabels probes.
	s := host
	for n := strings.Count(s, ".") + 1; n > c.maxLabels; n-- {
		s = s[strings.IndexByte(s, '.')+1:]
	}
	for {
		if e, ok := c.entries[s]; ok {
			return e
		}
		i := strings.IndexByte(s, '.')
		if i < 0 {
			return nil
		}
		s = s[i+1:]
	}
}

// Extract applies the corpus to one hostname: resolve the governing NC by
// suffix, run its regexes in order, and parse the first capture. ok is
// false when no NC governs the suffix, no regex matches, or the captured
// digits are not a valid ASN. As in the replaced consumer paths, a
// governing NC that fails to match ends the lookup — shallower suffixes
// are not consulted.
func (c *Corpus) Extract(host string) (Match, bool) {
	e := c.lookup(host)
	if e == nil {
		return Match{}, false
	}
	for _, r := range e.machines() {
		digits, _, _, ok := r.Extract(host)
		if !ok {
			continue
		}
		a, err := asn.Parse(digits)
		if err != nil {
			return Match{}, false
		}
		return Match{
			Hostname: host,
			Suffix:   e.nc.Suffix,
			Class:    e.nc.Class,
			Digits:   digits,
			ASN:      a,
		}, true
	}
	return Match{}, false
}

// workerCount resolves the pool size for n items.
func (c *Corpus) workerCount(n int) int {
	w := c.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}
