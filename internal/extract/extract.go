// Package extract is the serving side of Hoiho: it applies a corpus of
// learned naming conventions (NCs) to hostnames at scale. The paper's end
// product is exactly such a corpus — §7 applies it to the full OpenINTEL
// PTR sweep and §5 feeds it into bdrmapIT — so hostname→ASN lookup is the
// inner loop of every downstream consumer.
//
// A Corpus indexes NCs by registered-domain suffix and resolves a
// hostname with an allocation-free label-suffix probe (an offset-based
// PSL walk for corpora whose indexed suffixes sit above other PSL
// rules). Each suffix's NC set compiles exactly once — by default into
// internal/match's specialized byte-level engine, with the stdlib regexp
// path retained behind the same Matcher interface as the property-test
// oracle (WithMatcher) — so any number of concurrent extractors share
// one compiled corpus. Extract is the single-hostname path, ExtractBytes
// the zero-allocation fast path, and ExtractBatch / ExtractStream shard
// million-hostname workloads over a worker pool with deterministic,
// input-ordered results.
package extract

import (
	"context"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"

	"hoiho/internal/asn"
	"hoiho/internal/core"
	"hoiho/internal/corpusbin"
	"hoiho/internal/match"
	"hoiho/internal/psl"
	"hoiho/internal/rex"
)

// Result is one extraction outcome. Every surface returns it: Extract
// and ExtractBytes directly, ExtractBatch and ExtractStream one per
// input in input order. OK distinguishes hits from misses so batch
// positions stay aligned with their inputs; a miss is the zero Result.
type Result struct {
	// Hostname echoes the input on the string-based paths. ExtractBytes
	// leaves it empty: the caller owns, and may reuse, the byte slice.
	Hostname string
	// Suffix is the matched NC's registered-domain suffix.
	Suffix string
	// Digits is the raw captured digit string. Extract and the batch
	// paths slice the input hostname; ExtractBytes returns an interned
	// copy that is stable and safe to share across goroutines.
	Digits string
	// ASN is the parsed extraction.
	ASN asn.ASN
	// Class is the matched NC's §4 quality grade. (Scalars trail the
	// strings so a Result packs into 56 bytes — batch output slices are
	// allocated, cleared, and GC-scanned by the hundred thousand.)
	Class core.Classification
	// OK reports whether this Result is a hit.
	OK bool
}

// MatcherKind selects the engine a Corpus compiles each suffix's NC set
// into.
type MatcherKind uint8

const (
	// MatcherCompiled is the default: internal/match's byte-level
	// compiled engine (prefilters, shared tail trie, no allocation).
	MatcherCompiled MatcherKind = iota
	// MatcherRegexp is the stdlib regexp path behind the same interface:
	// the oracle the compiled engine is property-tested against, and an
	// operational escape hatch.
	MatcherRegexp
)

// entry pairs an NC with its compile-once matcher. The Once makes
// compilation happen exactly once no matter how many goroutines arrive.
type entry struct {
	nc   *core.NC
	once sync.Once
	m    match.Matcher
	// eng is m when it is the compiled engine, letting hot paths call it
	// statically instead of through the interface.
	eng *match.Engine
}

// matcher returns the entry's engine, compiling it on first use. An
// entry pre-armed by the binary corpus loader (m already set, before
// the corpus was shared) keeps its deserialized engine.
func (e *entry) matcher(kind MatcherKind) match.Matcher {
	//hoiho:hotalloc compile-once guard: the literal runs once per entry and does not escape on the armed fast path; benchgate pins 0 allocs/op after Precompile
	e.once.Do(func() {
		if e.m != nil {
			return
		}
		if kind == MatcherRegexp {
			e.m = match.NewRegexpSet(e.nc.Regexes)
		} else {
			eng := match.Compile(e.nc.Regexes)
			e.eng = eng
			e.m = eng
		}
	})
	return e.m
}

// Corpus is an immutable, concurrency-safe index of learned NCs, ready to
// be applied to any number of hostnames. Build one with New or Load and
// share it freely between goroutines.
type Corpus struct {
	list     *psl.List
	entries  map[string]*entry
	ncs      []*core.NC // retained NCs, suffix-sorted
	workers  int
	minClass core.Classification
	kind     MatcherKind
	// intern backs ExtractBytes results: digit strings returned from
	// caller-owned buffers are stable interned copies.
	intern *core.Interner
	// ready is set by Precompile: every entry's matcher is built, so hot
	// paths may read entry.m directly instead of going through the Once
	// (the Store/Load pair orders those writes before the reads).
	ready atomic.Bool
	// maxLabels bounds the fallback suffix walk: no indexed suffix has
	// more labels than this.
	maxLabels int
	// probeLens holds the distinct indexed suffix byte lengths, longest
	// first: the safeDirect lookup probes host tails of exactly these
	// lengths instead of walking labels.
	probeLens []int
	// maxProbeLen is probeLens[0], the tail window the dirty-host check
	// must inspect.
	maxProbeLen int
	// lenMask has bit min(len,63) set for every indexed suffix byte
	// length below 64: a suffix probe whose length bit is clear cannot
	// hit, so the walk skips the map access entirely. Suffixes of 64+
	// bytes (none in practice) are always probed.
	lenMask uint64
	// table is the open-addressing probe index walk uses; it holds the
	// same suffix→entry mapping as entries, frozen at construction.
	table suffixTable
	// pslDirect is true when every indexed suffix is its own registered
	// domain under list, so a hostname is governed by at most one suffix.
	pslDirect bool
	// safeDirect strengthens pslDirect: no PSL rule lies beneath any
	// indexed suffix, so probing the suffix index at label boundaries is
	// provably equivalent to a registered-domain walk — the fully
	// allocation-free lookup.
	safeDirect bool
	// fp is the content fingerprint, computed once in New.
	fp uint64
	// binOnce/binRecs memoize the corpusbin record form of the retained
	// NCs (engine wire programs included): a serving corpus is diffed
	// and patched repeatedly, and the records never change after build.
	binOnce sync.Once
	binRecs []corpusbin.NCRecord
}

// Option configures a Corpus at construction time.
type Option func(*Corpus)

// WithPSL supplies the public suffix list backing lookups. The default is
// psl.Default(), the embedded snapshot.
func WithPSL(list *psl.List) Option {
	return func(c *Corpus) { c.list = list }
}

// WithWorkers bounds the goroutines ExtractBatch and ExtractStream use.
// 0 (the default) means GOMAXPROCS; 1 forces serial execution.
func WithWorkers(n int) Option {
	return func(c *Corpus) { c.workers = n }
}

// WithMatcher selects the matching engine. The default is
// MatcherCompiled.
func WithMatcher(k MatcherKind) Option {
	return func(c *Corpus) { c.kind = k }
}

// MinClass keeps only NCs graded at least min. The zero value (Poor)
// keeps everything.
func MinClass(min core.Classification) Option {
	return func(c *Corpus) { c.minClass = min }
}

// UsableOnly keeps only the good and promising NCs — the conventions §4
// calls usable, the set the paper applies in §7.
func UsableOnly() Option { return MinClass(core.Promising) }

// New indexes ncs into a Corpus. When two NCs share a suffix the later
// one wins, matching the map-overwrite behavior of the replaced
// per-consumer indexes. Compilation is lazy: a suffix's matcher is built
// on its first lookup, once; Load precompiles eagerly.
func New(ncs []*core.NC, opts ...Option) *Corpus {
	c := &Corpus{entries: make(map[string]*entry, len(ncs))}
	for _, o := range opts {
		o(c)
	}
	if c.list == nil {
		c.list = psl.Default()
	}
	c.intern = core.NewInterner()
	for _, nc := range ncs {
		if nc == nil || nc.Class < c.minClass {
			continue
		}
		if e, ok := c.entries[nc.Suffix]; ok {
			e.nc = nc // last NC for a suffix wins
			continue
		}
		c.entries[nc.Suffix] = &entry{nc: nc}
		if n := strings.Count(nc.Suffix, ".") + 1; n > c.maxLabels {
			c.maxLabels = n
		}
		if n := len(nc.Suffix); n < 64 {
			c.lenMask |= 1 << uint(n)
		}
	}
	c.pslDirect = true
	c.ncs = make([]*core.NC, 0, len(c.entries))
	for suffix, e := range c.entries {
		c.ncs = append(c.ncs, e.nc)
		if reg, ok := c.list.RegisteredDomain(suffix); !ok || reg != suffix {
			c.pslDirect = false
		}
	}
	c.safeDirect = c.pslDirect
	if c.safeDirect {
		for suffix := range c.entries {
			if c.list.HasRuleBeneath(suffix) {
				c.safeDirect = false
				break
			}
		}
	}
	sort.Slice(c.ncs, func(i, j int) bool { return c.ncs[i].Suffix < c.ncs[j].Suffix })
	seenLen := make(map[int]bool)
	for suffix := range c.entries {
		if !seenLen[len(suffix)] {
			seenLen[len(suffix)] = true
			c.probeLens = append(c.probeLens, len(suffix))
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(c.probeLens)))
	if len(c.probeLens) > 0 {
		c.maxProbeLen = c.probeLens[0]
	}
	c.table = newSuffixTable(c.entries)
	c.fp = c.fingerprint()
	return c
}

// suffixTable is a frozen open-addressing index from suffix to entry,
// specialized for the probe in walk: linear probing over a power-of-two
// slot array at 50% max load, hashing only the suffix length and its
// last eight bytes (indexed suffixes practically always differ there —
// they end in distinct registered domains). It is the same mapping as
// Corpus.entries with roughly half the general map's per-probe cost,
// and it never changes after construction.
type suffixTable struct {
	mask  uint32
	slots []suffixSlot
}

type suffixSlot struct {
	suffix string
	e      *entry
}

func newSuffixTable(entries map[string]*entry) suffixTable {
	n := uint32(8)
	for n < uint32(2*len(entries)+1) {
		n *= 2
	}
	t := suffixTable{mask: n - 1, slots: make([]suffixSlot, n)}
	for s, e := range entries {
		i := hashSuffix(s) & t.mask
		for t.slots[i].e != nil {
			i = (i + 1) & t.mask
		}
		t.slots[i] = suffixSlot{suffix: s, e: e}
	}
	return t
}

// get returns the entry indexed under s, or nil. Never-deleted slots
// mean an empty slot ends every probe chain.
func (t *suffixTable) get(s string) *entry {
	for i := hashSuffix(s) & t.mask; ; i = (i + 1) & t.mask {
		sl := &t.slots[i]
		if sl.e == nil || sl.suffix == s {
			return sl.e
		}
	}
}

// hashSuffix mixes the length and last eight bytes. The long form is a
// single unaligned load plus one multiply; sub-8-byte suffixes fall
// back to FNV-1a.
func hashSuffix(s string) uint32 {
	if len(s) >= 8 {
		x := (le64(s) ^ uint64(len(s))) * 0x9E3779B97F4A7C15
		return uint32(x >> 32)
	}
	h := (2166136261 ^ uint32(len(s))) * 16777619
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// le64 returns the last eight bytes of s (len(s) >= 8) as a
// little-endian integer; the compiler lowers the chain to one load on
// little-endian targets.
func le64(s string) uint64 {
	t := s[len(s)-8:]
	return uint64(t[0]) | uint64(t[1])<<8 | uint64(t[2])<<16 | uint64(t[3])<<24 |
		uint64(t[4])<<32 | uint64(t[5])<<40 | uint64(t[6])<<48 | uint64(t[7])<<56
}

// Precompile builds every suffix's matcher now instead of on first
// lookup, so a served corpus pays compilation once at load time, never
// on the request path. Load calls it; New stays lazy for transient
// corpora built mid-learning.
//
//hoiho:ctxflow bounded one-shot compile over the indexed suffixes at load time, milliseconds even for full-scale corpora; not a streaming pipeline
func (c *Corpus) Precompile() {
	for _, e := range c.entries {
		e.matcher(c.kind)
	}
	c.ready.Store(true)
}

// matcherFor resolves e's matcher: a plain field read once Precompile
// has run, the compile-once slow path before that.
func (c *Corpus) matcherFor(e *entry) match.Matcher {
	if c.ready.Load() {
		return e.m
	}
	return e.matcher(c.kind)
}

// Len returns the number of indexed NCs.
func (c *Corpus) Len() int { return len(c.ncs) }

// Convention is a read-only view of one indexed naming convention: the
// replacement for the removed NCs()/Lookup accessors, which leaked
// mutable learner structs into serving code.
type Convention struct {
	nc *core.NC
}

// Suffix returns the convention's registered-domain suffix.
func (v Convention) Suffix() string { return v.nc.Suffix }

// Class returns the convention's §4 quality grade.
func (v Convention) Class() core.Classification { return v.nc.Class }

// Single reports whether the convention is a §4 "single NC" (every
// extraction names one organization's ASN).
func (v Convention) Single() bool { return v.nc.Single }

// Eval returns the convention's training evaluation.
func (v Convention) Eval() core.Eval { return v.nc.Eval }

// NumRegexes returns how many regexes the convention holds.
func (v Convention) NumRegexes() int { return len(v.nc.Regexes) }

// Regexes returns the convention's regexes in order. The slice is a
// fresh copy; the regexes themselves are immutable.
func (v Convention) Regexes() []*rex.Regex {
	return append([]*rex.Regex(nil), v.nc.Regexes...)
}

// Strings renders the convention's regex sources in order.
func (v Convention) Strings() []string { return v.nc.Strings() }

// Suffixes returns the indexed suffixes in sorted order. Iterate
// conventions with:
//
//	for _, s := range corpus.Suffixes() {
//		cv, _ := corpus.Conventions(s)
//		...
//	}
func (c *Corpus) Suffixes() []string {
	out := make([]string, len(c.ncs))
	for i, nc := range c.ncs {
		out[i] = nc.Suffix
	}
	return out
}

// Conventions resolves the convention governing suffix — the deepest
// indexed label suffix, via the registered domain when the corpus
// permits — without applying it. Passing an indexed suffix returns that
// suffix's convention; passing a full hostname resolves as Extract
// would.
func (c *Corpus) Conventions(suffix string) (Convention, bool) {
	e := c.lookup(suffix)
	if e == nil {
		return Convention{}, false
	}
	return Convention{nc: e.nc}, true
}

// hostClean reports whether host is already in normalized form —
// lowercase ASCII with no surrounding whitespace and no trailing dot —
// so the allocation-free lookup paths can use it as-is. host must be
// non-empty.
func hostClean(host string) bool {
	for i := 0; i < len(host); i++ {
		b := host[i]
		if b >= 0x80 || ('A' <= b && b <= 'Z') {
			return false
		}
	}
	return !isSpaceByte(host[0]) && !isSpaceByte(host[len(host)-1]) &&
		host[len(host)-1] != '.'
}

func isSpaceByte(b byte) bool {
	switch b {
	case ' ', '\t', '\n', '\v', '\f', '\r':
		return true
	}
	return false
}

func (c *Corpus) lookup(host string) *entry {
	if len(c.entries) == 0 || host == "" {
		return nil
	}
	if !c.pslDirect {
		// Historical fallback: raw label-suffix probes for every input,
		// normalized or not.
		return c.walk(host)
	}
	if c.safeDirect {
		return c.lookupDirect(host)
	}
	// Every indexed suffix is a registered domain, but a PSL rule lies
	// beneath one: only a full PSL walk resolves correctly. The offset
	// form keeps it allocation-free for normalized hosts.
	if hostClean(host) {
		start, ok := c.list.RegisteredDomainStart(host)
		if !ok {
			return nil
		}
		return c.entries[host[start:]]
	}
	return c.lookupDirty(host)
}

// lookupDirect is the safeDirect hot path: an indexed suffix can only
// sit at a label boundary, so for each indexed suffix LENGTH l the one
// viable candidate is host's l-byte tail behind a dot (or the whole
// host). Probing raw bytes is correct on a HIT — indexed suffixes are
// normalized (lowercase ASCII, no edge junk), so a host whose raw tail
// equals one could not have been changed there by normalization, and
// under pslDirect no second indexed suffix can govern. Only a raw MISS
// is ambiguous: the host may have missed purely because it needed
// normalizing (uppercase, edge trimming), so the tail window is
// checked after the fact and dirty hosts fall back to the allocating
// PSL probe. Lengths are probed longest-first, matching the walk's
// deepest-first order.
func (c *Corpus) lookupDirect(host string) *entry {
	for _, l := range c.probeLens {
		if len(host) > l {
			if host[len(host)-l-1] == '.' {
				if e := c.table.get(host[len(host)-l:]); e != nil {
					return e
				}
			}
		} else if len(host) == l {
			if e := c.table.get(host); e != nil {
				return e
			}
		}
	}
	if !c.tailClean(host) {
		return c.lookupDirty(host)
	}
	return nil
}

// tailClean reports whether PSL normalization could not create an
// indexed-suffix tail this lookup's raw probes missed. Everything
// normalization could do that matters — lowercasing suffix bytes,
// trimming trailing junk, trimming the spaces in front of a whole-host
// suffix — is visible in the last maxProbeLen+1 bytes: a changed byte
// deeper than the longest indexed suffix plus its leading dot cannot
// affect any probe. Spaces in the window are conservatively dirty (an
// interior space just routes a guaranteed miss through the slow path).
func (c *Corpus) tailClean(host string) bool {
	start := len(host) - c.maxProbeLen - 1
	if start < 0 {
		start = 0
	}
	for i := start; i < len(host); i++ {
		if dirtyTail[host[i]] {
			return false
		}
	}
	return host[len(host)-1] != '.'
}

// dirtyTail marks bytes whose presence in the tail window makes a raw
// miss untrustworthy: non-ASCII, uppercase, whitespace.
var dirtyTail = func() (t [256]bool) {
	for b := 'A'; b <= 'Z'; b++ {
		t[b] = true
	}
	for _, b := range []byte{' ', '\t', '\n', '\v', '\f', '\r'} {
		t[b] = true
	}
	for i := 0x80; i < 256; i++ {
		t[i] = true
	}
	return
}()

// walk probes host's label suffixes deepest-first, skipping labels
// deeper than any indexed suffix so it costs at most maxLabels probes.
// These are the historical fallback semantics for corpora that are not
// pslDirect: raw byte probes for every input, normalized or not.
func (c *Corpus) walk(host string) *entry {
	s := host
	if n := strings.Count(host, ".") + 1; n > c.maxLabels {
		for skip := n - c.maxLabels; skip > 0; skip-- {
			s = s[strings.IndexByte(s, '.')+1:]
		}
	}
	for probe := s; ; {
		if n := len(probe); n >= 64 || c.lenMask&(1<<uint(n)) != 0 {
			if e := c.table.get(probe); e != nil {
				return e
			}
		}
		j := strings.IndexByte(probe, '.')
		if j < 0 {
			return nil
		}
		probe = probe[j+1:]
	}
}

// lookupDirty preserves the historical pslDirect behavior for hostnames
// not in normalized form (uppercase, surrounding space, trailing dot,
// non-ASCII): the registered-domain probe normalizes inside the PSL.
// It allocates — dirty inputs are the rare case. Only reached when
// pslDirect is set; the non-direct fallback walks raw bytes for every
// input, exactly as it always did.
//
//hoiho:hotalloc budgeted cold region: dirty-input fallback; the hot path slices via RegisteredDomainStart and never gets here
func (c *Corpus) lookupDirty(host string) *entry {
	reg, ok := c.list.RegisteredDomain(host)
	if !ok {
		return nil
	}
	return c.entries[reg]
}

// extractInto is the core shared by every surface: resolve the
// governing NC by suffix, run its matcher, parse the capture. As in the
// replaced consumer paths, a governing NC that fails to match ends the
// lookup — shallower suffixes are not consulted — and a capture that
// does not parse as an ASN ends the extraction. On a hit the fields
// except Hostname are written into dst (callers that retain the input
// fill that in); on a miss dst is untouched, so batch paths can write
// straight into their zeroed output slots without copying a Result per
// hostname.
func (c *Corpus) extractInto(dst *Result, host string) bool {
	e := c.lookup(host)
	if e == nil {
		return false
	}
	var hit match.Hit
	var ok bool
	if c.ready.Load() && e.eng != nil {
		hit, ok = e.eng.MatchString(host)
	} else {
		hit, ok = c.matcherFor(e).MatchString(host)
	}
	if !ok {
		return false
	}
	digits := host[hit.Start:hit.End]
	a, ok := parseASN(digits)
	if !ok {
		return false
	}
	dst.Suffix = e.nc.Suffix
	dst.Class = e.nc.Class
	dst.Digits = digits
	dst.ASN = a
	dst.OK = true
	return true
}

func (c *Corpus) extract(host string) (Result, bool) {
	var r Result
	ok := c.extractInto(&r, host)
	return r, ok
}

// Extract applies the corpus to one hostname. ok is false when no NC
// governs the suffix, no regex matches, or the captured digits are not
// a valid ASN. The context is consulted once on entry — a cancelled
// context reports a miss — giving every extraction surface the same
// (ctx, input) shape; a nil context is tolerated and means "no
// cancellation".
func (c *Corpus) Extract(ctx context.Context, host string) (Result, bool) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, false
		}
	}
	r, ok := c.extract(host)
	if ok {
		r.Hostname = host
	}
	return r, ok
}

// ExtractBytes is the zero-allocation fast path: it applies the corpus
// to a caller-owned byte slice without copying it, allocating nothing on
// hit or miss for hostnames already in normalized form (lowercase, no
// surrounding space, no trailing dot — what a PTR sweep feeds it). The
// returned Result does not reference host: Hostname is left empty and
// Digits is an interned copy, so Results are stable after the caller
// reuses the buffer and safe to share across goroutines.
func (c *Corpus) ExtractBytes(host []byte) (Result, bool) {
	h := bytesToString(host)
	e := c.lookup(h)
	if e == nil {
		return Result{}, false
	}
	hit, ok := c.matcherFor(e).MatchString(h)
	if !ok {
		return Result{}, false
	}
	a, ok := parseASN(h[hit.Start:hit.End])
	if !ok {
		return Result{}, false
	}
	return Result{
		Suffix: e.nc.Suffix,
		Class:  e.nc.Class,
		Digits: c.intern.Intern(host[hit.Start:hit.End]),
		ASN:    a,
		OK:     true,
	}, true
}

// bytesToString reinterprets b as a string without copying. Safe here
// because every use is strictly read-only and the reference never
// outlives the call: lookup probes maps with it and the matcher only
// reads it; ExtractBytes re-slices the original byte slice for anything
// it returns.
func bytesToString(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// parseASN parses a captured span exactly as asn.Parse treats captured
// digits, without allocating: base 10, 32 bits, rejecting empty input,
// non-digits (an AS-name capture), zero, and overflow. A parse failure
// ends the whole extraction rather than trying later regexes, matching
// the historical behavior.
func parseASN(digits string) (asn.ASN, bool) {
	if len(digits) == 0 || len(digits) > 10 {
		return asn.None, false
	}
	var v uint64
	for i := 0; i < len(digits); i++ {
		b := digits[i]
		if b < '0' || b > '9' {
			return asn.None, false
		}
		v = v*10 + uint64(b-'0')
	}
	if v == 0 || v > 1<<32-1 {
		return asn.None, false
	}
	return asn.ASN(v), true
}

// workerCount resolves the pool size for n items, honoring per-call
// overrides.
func (c *Corpus) workerCount(n int, opts []CallOption) int {
	var co callOpts
	for _, o := range opts {
		o(&co)
	}
	w := co.workers
	if w <= 0 {
		w = c.workers
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}
