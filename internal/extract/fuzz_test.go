package extract

import (
	"context"
	"strings"
	"testing"

	"hoiho/internal/core"
	"hoiho/internal/rex"
)

// fuzzCorpus builds a small mixed corpus: a PSL-direct NC, a deep
// suffix, and a multi-regex NC, covering both lookup paths.
func fuzzCorpus(f *testing.F) *Corpus {
	f.Helper()
	mk := func(suffix string, srcs ...string) *core.NC {
		regexes := make([]*rex.Regex, 0, len(srcs))
		for _, s := range srcs {
			r, err := rex.Parse(s)
			if err != nil {
				f.Fatalf("Parse(%q): %v", s, err)
			}
			regexes = append(regexes, r)
		}
		return &core.NC{Suffix: suffix, Regexes: regexes, Class: core.Good}
	}
	return New([]*core.NC{
		mk("example.net", `^as(\d+)\.example\.net$`),
		mk("nts.ch", `as(\d+)\.nts\.ch$`),
		mk("deep.example.org", `^(?:p|s)?(\d+)\.deep\.example\.org$`, `^r-(\d+)\.deep\.example\.org$`),
	})
}

// FuzzExtract throws arbitrary hostnames at the serving path. Extract
// fronts million-hostname OpenINTEL sweeps, so it must never panic,
// and every reported Match must be internally consistent: digits
// non-empty, the parsed ASN matching them, and the hostname echoed.
func FuzzExtract(f *testing.F) {
	c := fuzzCorpus(f)
	for _, seed := range []string{
		"as64512.example.net",
		"as1.example.net",
		"01.r.cba.ch.bl.cust.as15576.nts.ch",
		"s24115.deep.example.org",
		"r-174.deep.example.org",
		"",
		".",
		"..",
		"net",
		"example.net",
		"as4294967295.example.net",
		"as99999999999999999999.example.net",
		"as-1.example.net",
		"AS64512.EXAMPLE.NET",
		strings.Repeat("a.", 200) + "example.net",
		"as\x0064512.example.net",
		"\xff\xfe.example.net",
		"as64512.example.net.",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, host string) {
		m, ok := c.Extract(context.Background(), host)
		if !ok {
			if m != (Result{}) {
				t.Fatalf("miss returned non-zero Result: %+v", m)
			}
			return
		}
		if m.Hostname != host {
			t.Fatalf("Result.Hostname = %q, want %q", m.Hostname, host)
		}
		if m.Digits == "" {
			t.Fatalf("hit with empty digits: %+v", m)
		}
		if m.Suffix == "" || !strings.Contains(host, m.Suffix) {
			t.Fatalf("suffix %q not in hostname %q", m.Suffix, host)
		}
		// The batch path must agree with the single path item-by-item.
		rs, err := c.ExtractBatch(context.Background(), []string{host, host})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range rs {
			if !r.OK || r != m {
				t.Fatalf("ExtractBatch[%d] = %+v, want %+v", i, r, m)
			}
		}
		// And the zero-alloc path, modulo its documented field differences.
		b, bok := c.ExtractBytes([]byte(host))
		m.Hostname = ""
		if !bok || b != m {
			t.Fatalf("ExtractBytes = (%+v, %v), want %+v", b, bok, m)
		}
	})
}
