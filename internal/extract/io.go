package extract

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"hoiho/internal/atomicfile"
	"hoiho/internal/core"
)

// maxLoadBytes caps how much corpus JSON Load will read. The full-scale
// corpora in the paper are a few megabytes; anything near this cap is a
// corrupt or hostile input, and failing loudly beats exhausting memory.
const maxLoadBytes = 64 << 20

// corpusEnvelope is the optional versioned wrapper form. Corpus.Save
// writes the bare NC array (the stable form every existing consumer
// reads); Load additionally accepts this envelope so future writers can
// version the format without breaking today's readers.
type corpusEnvelope struct {
	Version int             `json:"version"`
	NCs     json.RawMessage `json:"ncs"`
}

// corpusVersion is the only envelope version this build reads.
const corpusVersion = 1

// Load reads a corpus from the stable NC JSON form (the output of
// `hoiho -json` / `hoiho -save` / Corpus.Save) and indexes it. Options
// apply as in New, so a loaded corpus can be filtered at load time, e.g.
// Load(r, UsableOnly()).
//
// Load is strict: inputs over 64 MiB, non-corpus JSON, unsupported
// envelope versions, and corpora with zero conventions all return
// descriptive errors rather than a silently empty corpus that would
// extract nothing.
func Load(r io.Reader, opts ...Option) (*Corpus, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxLoadBytes+1))
	if err != nil {
		return nil, fmt.Errorf("extract: load: %w", err)
	}
	if len(data) > maxLoadBytes {
		return nil, fmt.Errorf("extract: load: input exceeds %d-byte cap", maxLoadBytes)
	}
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("extract: load: empty input")
	}
	if trimmed[0] == '{' {
		var env corpusEnvelope
		if err := json.Unmarshal(trimmed, &env); err != nil {
			return nil, fmt.Errorf("extract: load: not a corpus file: %w", err)
		}
		if env.Version != corpusVersion {
			return nil, fmt.Errorf("extract: load: unsupported corpus version %d (this build reads %d)",
				env.Version, corpusVersion)
		}
		if len(env.NCs) == 0 {
			return nil, fmt.Errorf("extract: load: corpus envelope has no %q field", "ncs")
		}
		trimmed = env.NCs
	}
	ncs, err := core.UnmarshalNCs(trimmed)
	if err != nil {
		return nil, fmt.Errorf("extract: load: %w", err)
	}
	if len(ncs) == 0 {
		return nil, fmt.Errorf("extract: load: corpus contains no conventions")
	}
	for i, nc := range ncs {
		if nc == nil || nc.Suffix == "" {
			return nil, fmt.Errorf("extract: load: convention %d has no suffix", i)
		}
	}
	c := New(ncs, opts...)
	// A loaded corpus is about to serve: pay matcher compilation here,
	// once, instead of on the first request per suffix.
	c.Precompile()
	return c, nil
}

// LoadFile loads a corpus from a JSON file on disk.
func LoadFile(path string, opts ...Option) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := Load(f, opts...)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// Save writes the corpus's retained NCs as indented JSON, the stable form
// any consumer (or a later Load) can re-index. Note that a corpus built
// with MinClass/UsableOnly saves only the NCs it kept.
func (c *Corpus) Save(w io.Writer) error {
	data, err := core.MarshalNCs(c.ncs)
	if err != nil {
		return fmt.Errorf("extract: save: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	_, err = w.Write([]byte("\n"))
	return err
}

// SaveFile writes the corpus to a JSON file on disk atomically: the JSON
// is written to a temp file in the destination directory, synced, and
// renamed over path, so an interrupted save never leaves a truncated
// corpus where a good one stood.
func (c *Corpus) SaveFile(path string) error {
	return atomicfile.WriteFile(path, c.Save)
}
