package extract

import (
	"fmt"
	"io"
	"os"

	"hoiho/internal/core"
)

// Load reads a corpus from the stable NC JSON form (the output of
// `hoiho -json` / `hoiho -save` / Corpus.Save) and indexes it. Options
// apply as in New, so a loaded corpus can be filtered at load time, e.g.
// Load(r, UsableOnly()).
func Load(r io.Reader, opts ...Option) (*Corpus, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("extract: load: %w", err)
	}
	ncs, err := core.UnmarshalNCs(data)
	if err != nil {
		return nil, fmt.Errorf("extract: load: %w", err)
	}
	return New(ncs, opts...), nil
}

// LoadFile loads a corpus from a JSON file on disk.
func LoadFile(path string, opts ...Option) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, opts...)
}

// Save writes the corpus's retained NCs as indented JSON, the stable form
// any consumer (or a later Load) can re-index. Note that a corpus built
// with MinClass/UsableOnly saves only the NCs it kept.
func (c *Corpus) Save(w io.Writer) error {
	data, err := core.MarshalNCs(c.ncs)
	if err != nil {
		return fmt.Errorf("extract: save: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	_, err = w.Write([]byte("\n"))
	return err
}

// SaveFile writes the corpus to a JSON file on disk.
func (c *Corpus) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
