package extract

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"hoiho/internal/atomicfile"
	"hoiho/internal/core"
	"hoiho/internal/corpusbin"
	"hoiho/internal/match"
)

// maxLoadBytes caps how much corpus JSON Load will read. The full-scale
// corpora in the paper are a few megabytes; anything near this cap is a
// corrupt or hostile input, and failing loudly beats exhausting memory.
const maxLoadBytes = 64 << 20

// corpusEnvelope is the optional versioned wrapper form. Corpus.Save
// writes the bare NC array (the stable form every existing consumer
// reads); Load additionally accepts this envelope so future writers can
// version the format without breaking today's readers.
type corpusEnvelope struct {
	Version int             `json:"version"`
	NCs     json.RawMessage `json:"ncs"`
}

// corpusVersion is the only envelope version this build reads.
const corpusVersion = 1

// Load reads a corpus and indexes it, sniffing the format by leading
// bytes: an HBC binary corpus (the "HBC" magic, see internal/corpusbin)
// decodes straight to ready-to-serve state with no JSON parsing or
// matcher recompilation; anything else is the stable NC JSON form (the
// output of `hoiho -json` / `hoiho -save` / Corpus.Save). Options apply
// as in New, so a loaded corpus can be filtered at load time, e.g.
// Load(r, UsableOnly()).
//
// Load is strict: inputs over 64 MiB, non-corpus JSON, corrupt or
// unsupported-version HBC, and corpora with zero conventions all return
// descriptive errors rather than a silently empty corpus that would
// extract nothing.
func Load(r io.Reader, opts ...Option) (*Corpus, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxLoadBytes+1))
	if err != nil {
		return nil, fmt.Errorf("extract: load: %w", err)
	}
	if len(data) > maxLoadBytes {
		return nil, fmt.Errorf("extract: load: input exceeds %d-byte cap", maxLoadBytes)
	}
	if corpusbin.IsHBC(data) {
		return loadHBC(data, opts...)
	}
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("extract: load: empty input")
	}
	if trimmed[0] == '{' {
		var env corpusEnvelope
		if err := json.Unmarshal(trimmed, &env); err != nil {
			return nil, fmt.Errorf("extract: load: not a corpus file: %w", err)
		}
		if env.Version != corpusVersion {
			return nil, fmt.Errorf("extract: load: unsupported corpus version %d (this build reads %d)",
				env.Version, corpusVersion)
		}
		if len(env.NCs) == 0 {
			return nil, fmt.Errorf("extract: load: corpus envelope has no %q field", "ncs")
		}
		trimmed = env.NCs
	}
	ncs, err := core.UnmarshalNCs(trimmed)
	if err != nil {
		return nil, fmt.Errorf("extract: load: %w", err)
	}
	if len(ncs) == 0 {
		return nil, fmt.Errorf("extract: load: corpus contains no conventions")
	}
	for i, nc := range ncs {
		if nc == nil || nc.Suffix == "" {
			return nil, fmt.Errorf("extract: load: convention %d has no suffix", i)
		}
	}
	c := New(ncs, opts...)
	// A loaded corpus is about to serve: pay matcher compilation here,
	// once, instead of on the first request per suffix.
	c.Precompile()
	return c, nil
}

// loadHBC indexes a decoded binary corpus, pre-arming each entry with
// its deserialized engine so Precompile has nothing left to compile.
// The engines are only installed when the corpus runs the compiled
// matcher (the default); WithMatcher(MatcherRegexp) falls back to the
// normal stdlib compile path, and MinClass filtering simply drops the
// filtered entries' engines along with their NCs.
func loadHBC(data []byte, opts ...Option) (*Corpus, error) {
	dec, err := corpusbin.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("extract: load: %w", err)
	}
	if len(dec.NCs) == 0 {
		return nil, fmt.Errorf("extract: load: corpus contains no conventions")
	}
	c := New(dec.NCs, opts...)
	if c.kind == MatcherCompiled {
		for i, nc := range dec.NCs {
			e, ok := c.entries[nc.Suffix]
			if !ok || e.nc != nc || dec.Engines[i] == nil {
				continue // filtered out, or superseded by a later duplicate
			}
			// Single-threaded: the corpus is not shared until Load returns.
			e.eng = dec.Engines[i]
			e.m = dec.Engines[i]
		}
	}
	c.Precompile()
	return c, nil
}

// LoadFile loads a corpus (JSON or HBC, sniffed by content) from disk.
func LoadFile(path string, opts ...Option) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := Load(f, opts...)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// Save writes the corpus's retained NCs as indented JSON, the stable form
// any consumer (or a later Load) can re-index. Note that a corpus built
// with MinClass/UsableOnly saves only the NCs it kept.
func (c *Corpus) Save(w io.Writer) error {
	data, err := core.MarshalNCs(c.ncs)
	if err != nil {
		return fmt.Errorf("extract: save: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	_, err = w.Write([]byte("\n"))
	return err
}

// SaveBinary writes the corpus in the HBC binary form (see
// internal/corpusbin): the same retained NCs as Save, plus each one's
// compiled match programs, so a later Load reaches ready-to-serve state
// without recompiling. Already-compiled engines are reused; suffixes
// whose matcher was never built (or was built on the stdlib path)
// compile here, once.
func (c *Corpus) SaveBinary(w io.Writer) error {
	if err := corpusbin.Encode(w, c.binaryRecords()); err != nil {
		return fmt.Errorf("extract: save: %w", err)
	}
	return nil
}

// compiledEngine returns nc's compiled engine, reusing the entry's when
// it exists and was built on the compiled path.
func (c *Corpus) compiledEngine(nc *core.NC) *match.Engine {
	if e, ok := c.entries[nc.Suffix]; ok && e.nc == nc && e.eng != nil {
		return e.eng
	}
	return match.Compile(nc.Regexes)
}

// SaveFile writes the corpus to disk atomically: the bytes are written
// to a temp file in the destination directory, synced, and renamed over
// path, so an interrupted save never leaves a truncated corpus where a
// good one stood. A path ending in ".hbc" selects the HBC binary form;
// anything else writes the stable JSON form.
func (c *Corpus) SaveFile(path string) error {
	if strings.HasSuffix(path, ".hbc") {
		return atomicfile.WriteFile(path, c.SaveBinary)
	}
	return atomicfile.WriteFile(path, c.Save)
}

// SaveFileBinary writes the corpus to disk atomically in the HBC binary
// form regardless of extension.
func (c *Corpus) SaveFileBinary(path string) error {
	return atomicfile.WriteFile(path, c.SaveBinary)
}

// SaveFileJSON writes the corpus to disk atomically in the stable JSON
// form regardless of extension.
func (c *Corpus) SaveFileJSON(path string) error {
	return atomicfile.WriteFile(path, c.Save)
}
