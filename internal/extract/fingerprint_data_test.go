package extract

// FingerprintData is the coordinator-side identity probe: given raw
// corpus bytes (either format), report the fingerprint a node loading
// them unfiltered would serve. HBC answers from the header (checksum
// verified, no decode); JSON pays for a full load.

import (
	"bytes"
	"testing"
)

func TestFingerprintData(t *testing.T) {
	c := New(syntheticNCs(t, 8))

	var js, hbc bytes.Buffer
	if err := c.Save(&js); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveBinary(&hbc); err != nil {
		t.Fatal(err)
	}

	fpJSON, err := FingerprintData(js.Bytes())
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	fpHBC, err := FingerprintData(hbc.Bytes())
	if err != nil {
		t.Fatalf("hbc: %v", err)
	}
	if fpJSON != c.Fingerprint() || fpHBC != c.Fingerprint() {
		t.Errorf("FingerprintData json=%016x hbc=%016x, corpus=%016x",
			fpJSON, fpHBC, c.Fingerprint())
	}
	if FormatFingerprint(fpJSON) != c.FingerprintString() {
		t.Errorf("FormatFingerprint = %q, want %q", FormatFingerprint(fpJSON), c.FingerprintString())
	}

	// Corrupt inputs fail closed in both formats.
	if _, err := FingerprintData([]byte("{broken")); err == nil {
		t.Error("corrupt JSON must fail")
	}
	corrupt := append([]byte(nil), hbc.Bytes()...)
	corrupt[len(corrupt)-1] ^= 0x01
	if _, err := FingerprintData(corrupt); err == nil {
		t.Error("corrupt HBC must fail")
	}
}
