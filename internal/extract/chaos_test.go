package extract

// Chaos tests for the serving pipelines: injected stalls
// (internal/faultinject) plus cancellation must never leak goroutines,
// must close the stream's output channel, and must return promptly with
// partial batch results. Run under -race: the shutdown paths are the
// code most prone to missed-signal races.

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"hoiho/internal/faultinject"
	"hoiho/internal/leaktest"
)

// TestChaosStreamCancelClosesOutput: after cancellation the output
// channel closes promptly even though the producer never closes in.
func TestChaosStreamCancelClosesOutput(t *testing.T) {
	ncs := syntheticNCs(t, 20)
	c := New(ncs, WithWorkers(4))
	defer leaktest.Check(t)()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := make(chan string)
	feederDone := make(chan struct{})
	go func() {
		defer close(feederDone)
		rng := rand.New(rand.NewSource(11))
		for {
			select {
			case in <- randomHost(rng, ncs):
			case <-ctx.Done():
				return
			}
		}
	}()

	out := c.ExtractStream(ctx, in)
	for i := 0; i < 100; i++ {
		if _, ok := <-out; !ok {
			t.Fatal("stream closed before cancellation")
		}
	}
	cancel()

	closeBy := time.After(10 * time.Second)
	for open := true; open; {
		select {
		case _, ok := <-out:
			open = ok
		case <-closeBy:
			t.Fatal("output channel did not close after cancel")
		}
	}
	<-feederDone
}

// TestChaosStreamAbandonedConsumerNoLeak pins the documented contract:
// a consumer that cancels ctx may abandon the output channel without
// draining it, and every pipeline goroutine still exits.
func TestChaosStreamAbandonedConsumerNoLeak(t *testing.T) {
	ncs := syntheticNCs(t, 20)
	c := New(ncs, WithWorkers(4))
	defer leaktest.Check(t)()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := make(chan string)
	feederDone := make(chan struct{})
	go func() {
		defer close(feederDone)
		rng := rand.New(rand.NewSource(12))
		for {
			select {
			case in <- randomHost(rng, ncs):
			case <-ctx.Done():
				return
			}
		}
	}()

	out := c.ExtractStream(ctx, in)
	if _, ok := <-out; !ok {
		t.Fatal("no first result")
	}
	cancel()
	// The consumer walks away here: out is never read again.
	<-feederDone
}

// TestChaosStreamStallCancelLatency: with every worker stalled by
// injection, cancellation still tears the stream down promptly — the
// stalls are bounded by ctx, not waited out.
func TestChaosStreamStallCancelLatency(t *testing.T) {
	plan := &faultinject.Plan{Rules: []faultinject.Rule{{
		Stage: faultinject.StageStreamChunk,
		Kind:  faultinject.KindStall, Prob: 1, Stall: time.Minute,
	}}}
	defer faultinject.Activate(plan)()
	ncs := syntheticNCs(t, 8)
	c := New(ncs, WithWorkers(2))
	defer leaktest.Check(t)()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := make(chan string)
	feederDone := make(chan struct{})
	go func() {
		defer close(feederDone)
		rng := rand.New(rand.NewSource(13))
		for i := 0; i < 3*streamChunk; i++ {
			select {
			case in <- randomHost(rng, ncs):
			case <-ctx.Done():
				return
			}
		}
		close(in)
	}()
	out := c.ExtractStream(ctx, in)
	go func() {
		for plan.Fired(0) == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()

	start := time.Now()
	closeBy := time.After(30 * time.Second)
	for open := true; open; {
		select {
		case _, ok := <-out:
			open = ok
		case <-closeBy:
			t.Fatal("stalled stream did not close after cancel")
		}
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("teardown took %v; stalls must be bounded by ctx", elapsed)
	}
	<-feederDone
}

// TestChaosBatchCancelReturnsPartial: cancelling a stalled ExtractBatch
// returns ctx.Err() promptly with the full-length, partially filled
// result slice instead of blocking on the remaining chunks.
func TestChaosBatchCancelReturnsPartial(t *testing.T) {
	ncs := syntheticNCs(t, 20)
	rng := rand.New(rand.NewSource(14))
	hosts := make([]string, 4*batchChunk)
	for i := range hosts {
		hosts[i] = randomHost(rng, ncs)
	}
	for _, tc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 4}} {
		t.Run(tc.name, func(t *testing.T) {
			plan := &faultinject.Plan{Rules: []faultinject.Rule{{
				Stage: faultinject.StageBatchChunk,
				Kind:  faultinject.KindStall, Prob: 1, Stall: time.Minute,
			}}}
			defer faultinject.Activate(plan)()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				for plan.Fired(0) == 0 {
					time.Sleep(time.Millisecond)
				}
				cancel()
			}()
			start := time.Now()
			out, err := New(ncs, WithWorkers(tc.workers)).ExtractBatch(ctx, hosts)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if len(out) != len(hosts) {
				t.Fatalf("result slice len = %d, want %d (input-aligned even when partial)", len(out), len(hosts))
			}
			if elapsed := time.Since(start); elapsed > 30*time.Second {
				t.Fatalf("cancellation took %v; stalls must be bounded by ctx", elapsed)
			}
		})
	}
}
