package extract

import (
	"bytes"
	"fmt"

	"hoiho/internal/core"
	"hoiho/internal/corpusbin"
)

// fingerprint hashes the corpus content: every retained NC's suffix,
// class, and regex sources, in suffix order. Computed once at
// construction (before the corpus is shared), so reading it later is
// race-free even though rex's String caches are lazily primed. The
// algorithm lives in core.FingerprintNCs so the binary corpus format
// stamps and verifies the identical value.
func (c *Corpus) fingerprint() uint64 {
	return core.FingerprintNCs(c.ncs)
}

// Fingerprint is a stable 64-bit identity for the corpus content —
// equal corpora (same suffixes, classes, and regex sources, regardless
// of construction order) fingerprint identically. The serving daemon
// stamps it on every response so a consumer (and the chaos tests) can
// tell exactly which corpus produced an extraction across hot reloads.
func (c *Corpus) Fingerprint() uint64 { return c.fp }

// FingerprintString renders Fingerprint in the fixed-width hex form used
// by the daemon's X-Hoiho-Corpus header and /statusz.
func (c *Corpus) FingerprintString() string { return FormatFingerprint(c.fp) }

// FormatFingerprint renders a corpus fingerprint in the fixed-width hex
// form shared by the X-Hoiho-Corpus header, /statusz, and the cluster
// rollout protocol — the one string every layer compares.
func FormatFingerprint(fp uint64) string { return fmt.Sprintf("%016x", fp) }

// FingerprintData computes the fingerprint of a serialized corpus
// without retaining an index: the identity a daemon would stamp after
// loading these exact bytes. An HBC input is answered from its verified
// header (see corpusbin.PeekFingerprint); JSON pays a full load. Note
// the result is the identity of the whole corpus — a daemon serving a
// class-filtered view (-classes good) stamps the fingerprint of the
// retained subset, so rollout coordination compares node acks against
// each other, not against this value.
func FingerprintData(data []byte) (uint64, error) {
	if corpusbin.IsHBC(data) {
		fp, err := corpusbin.PeekFingerprint(data)
		if err != nil {
			return 0, fmt.Errorf("extract: fingerprint: %w", err)
		}
		return fp, nil
	}
	c, err := Load(bytes.NewReader(data))
	if err != nil {
		return 0, fmt.Errorf("extract: fingerprint: %w", err)
	}
	return c.Fingerprint(), nil
}
