package extract

import (
	"fmt"

	"hoiho/internal/core"
)

// fingerprint hashes the corpus content: every retained NC's suffix,
// class, and regex sources, in suffix order. Computed once at
// construction (before the corpus is shared), so reading it later is
// race-free even though rex's String caches are lazily primed. The
// algorithm lives in core.FingerprintNCs so the binary corpus format
// stamps and verifies the identical value.
func (c *Corpus) fingerprint() uint64 {
	return core.FingerprintNCs(c.ncs)
}

// Fingerprint is a stable 64-bit identity for the corpus content —
// equal corpora (same suffixes, classes, and regex sources, regardless
// of construction order) fingerprint identically. The serving daemon
// stamps it on every response so a consumer (and the chaos tests) can
// tell exactly which corpus produced an extraction across hot reloads.
func (c *Corpus) Fingerprint() uint64 { return c.fp }

// FingerprintString renders Fingerprint in the fixed-width hex form used
// by the daemon's X-Hoiho-Corpus header and /statusz.
func (c *Corpus) FingerprintString() string { return fmt.Sprintf("%016x", c.fp) }
