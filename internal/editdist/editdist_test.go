package editdist

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLevenshteinBasic(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
		{"701", "701", 0},
		{"24940", "20940", 1},
		{"202073", "205073", 1},
		{"20732", "207032", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestOSATransposition(t *testing.T) {
	cases := []struct {
		a, b     string
		lev, osa int
	}{
		{"ab", "ba", 2, 1},
		{"1234", "1243", 2, 1},
		{"ca", "abc", 3, 3},
		{"12345", "12354", 2, 1},
		{"15576", "15567", 2, 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.lev {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.lev)
		}
		if got := OSA(c.a, c.b); got != c.osa {
			t.Errorf("OSA(%q,%q) = %d, want %d", c.a, c.b, got, c.osa)
		}
	}
}

func TestDamerauLevenshteinIsOSA(t *testing.T) {
	if DamerauLevenshtein("ab", "ba") != 1 {
		t.Fatal("transposition should cost 1")
	}
}

// TestWithinOneMatchesDistance cross-checks the fast path against the
// dynamic program on exhaustive short digit strings.
func TestWithinOneMatchesDistance(t *testing.T) {
	alphabet := "012"
	var words []string
	var gen func(prefix string, depth int)
	gen = func(prefix string, depth int) {
		words = append(words, prefix)
		if depth == 0 {
			return
		}
		for _, c := range alphabet {
			gen(prefix+string(c), depth-1)
		}
	}
	gen("", 4)
	for _, a := range words {
		for _, b := range words {
			want := OSA(a, b) <= 1
			if got := WithinOne(a, b); got != want {
				t.Fatalf("WithinOne(%q,%q) = %v, OSA = %d", a, b, got, OSA(a, b))
			}
		}
	}
}

// Property: distance is a metric (identity, symmetry, triangle inequality).
func TestLevenshteinMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	word := func() string {
		n := rng.Intn(8)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(byte('0' + rng.Intn(10)))
		}
		return sb.String()
	}
	for i := 0; i < 2000; i++ {
		a, b, c := word(), word(), word()
		dab := Levenshtein(a, b)
		dba := Levenshtein(b, a)
		if dab != dba {
			t.Fatalf("symmetry violated: d(%q,%q)=%d d(%q,%q)=%d", a, b, dab, b, a, dba)
		}
		if (dab == 0) != (a == b) {
			t.Fatalf("identity violated for %q,%q: d=%d", a, b, dab)
		}
		dac := Levenshtein(a, c)
		dcb := Levenshtein(c, b)
		if dab > dac+dcb {
			t.Fatalf("triangle violated: d(%q,%q)=%d > d(%q,%q)+d(%q,%q)=%d",
				a, b, dab, a, c, c, b, dac+dcb)
		}
	}
}

// Property: edit distance is bounded below by the length difference and
// above by the length of the longer string.
func TestLevenshteinBoundsQuick(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 32 {
			a = a[:32]
		}
		if len(b) > 32 {
			b = b[:32]
		}
		d := Levenshtein(a, b)
		lo := len(a) - len(b)
		if lo < 0 {
			lo = -lo
		}
		hi := len(a)
		if len(b) > hi {
			hi = len(b)
		}
		return d >= lo && d <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: a single random edit yields WithinOne == true.
func TestWithinOneAfterSingleEdit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		n := 1 + rng.Intn(8)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte('0' + rng.Intn(10))
		}
		orig := string(b)
		var edited string
		switch rng.Intn(4) {
		case 0: // substitution
			j := rng.Intn(n)
			c := make([]byte, n)
			copy(c, b)
			c[j] = byte('0' + rng.Intn(10))
			edited = string(c)
		case 1: // deletion
			j := rng.Intn(n)
			edited = orig[:j] + orig[j+1:]
		case 2: // insertion
			j := rng.Intn(n + 1)
			edited = orig[:j] + string(byte('0'+rng.Intn(10))) + orig[j:]
		case 3: // transposition
			if n < 2 {
				edited = orig
			} else {
				j := rng.Intn(n - 1)
				c := make([]byte, n)
				copy(c, b)
				c[j], c[j+1] = c[j+1], c[j]
				edited = string(c)
			}
		}
		if !WithinOne(orig, edited) {
			t.Fatalf("WithinOne(%q,%q) = false after single edit", orig, edited)
		}
	}
}

func TestWithinOneRejectsTwoEdits(t *testing.T) {
	cases := [][2]string{
		{"12345", "13254"},
		{"100", "001"},
		{"7018", "8107"},
		{"1", "100"},
		{"209", "92"},
	}
	for _, c := range cases {
		if OSA(c[0], c[1]) <= 1 {
			t.Fatalf("bad test vector %v: OSA=%d", c, OSA(c[0], c[1]))
		}
		if WithinOne(c[0], c[1]) {
			t.Errorf("WithinOne(%q,%q) = true, want false", c[0], c[1])
		}
	}
}

func BenchmarkLevenshteinASN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Levenshtein("206616", "205616")
	}
}

func BenchmarkWithinOneASN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		WithinOne("206616", "205616")
	}
}
