// Package editdist implements string edit distances used by Hoiho when
// deciding whether an extracted number is a plausible typo of a training
// ASN (Damerau 1964; Levenshtein 1966).
//
// The paper ("Learning to Extract and Use ASNs in Hostnames", IMC 2020,
// §3.1) credits a regex extraction as a true positive when the extracted
// number and the training ASN have a Damerau-Levenshtein distance of one,
// share their first and last characters, and are both at least three
// digits long. This package supplies the distance primitives; the policy
// lives in internal/core.
package editdist

// Levenshtein returns the Levenshtein distance between a and b: the
// minimum number of single-character insertions, deletions, and
// substitutions required to transform a into b.
func Levenshtein(a, b string) int {
	return distance(a, b, false)
}

// OSA returns the optimal string alignment distance between a and b:
// Levenshtein distance extended with transposition of two adjacent
// characters, where no substring is edited more than once. For the
// single-edit decisions Hoiho makes (distance <= 1), OSA and the full
// Damerau-Levenshtein distance agree, so this is the variant used by
// DamerauLevenshtein below.
func OSA(a, b string) int {
	return distance(a, b, true)
}

// DamerauLevenshtein returns the Damerau-Levenshtein distance between a
// and b restricted to adjacent transpositions (the optimal string
// alignment variant). For the thresholds used in this codebase
// (distance one) it is exact.
func DamerauLevenshtein(a, b string) int {
	return OSA(a, b)
}

// distance computes edit distance with an optional adjacent-transposition
// edit. It runs in O(len(a)*len(b)) time and O(len(b)) space without
// transpositions, O(2*len(b)) with.
func distance(a, b string, transpose bool) int {
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	// prev2 is row i-2 (needed for transpositions), prev is row i-1,
	// cur is row i of the dynamic programming table.
	prev2 := make([]int, lb+1)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			d := min3(
				prev[j]+1,      // deletion
				cur[j-1]+1,     // insertion
				prev[j-1]+cost, // substitution or match
			)
			if transpose && i > 1 && j > 1 &&
				a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if t := prev2[j-2] + 1; t < d {
					d = t
				}
			}
			cur[j] = d
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

// WithinOne reports whether a and b are within Damerau-Levenshtein
// distance one of each other. It avoids the full dynamic program for the
// common cases, making it cheap enough to call per candidate number.
func WithinOne(a, b string) bool {
	la, lb := len(a), len(b)
	switch {
	case a == b:
		return true
	case la == lb:
		// Either exactly one substitution, or one adjacent transposition.
		i := 0
		for i < la && a[i] == b[i] {
			i++
		}
		// i is the first mismatch; i < la because a != b.
		if a[i+1:] == b[i+1:] {
			return true // single substitution
		}
		if i+1 < la && a[i] == b[i+1] && a[i+1] == b[i] && a[i+2:] == b[i+2:] {
			return true // adjacent transposition
		}
		return false
	case la == lb+1:
		return oneDeletion(a, b)
	case lb == la+1:
		return oneDeletion(b, a)
	default:
		return false
	}
}

// oneDeletion reports whether deleting exactly one character from long
// yields short. len(long) must equal len(short)+1.
func oneDeletion(long, short string) bool {
	i := 0
	for i < len(short) && long[i] == short[i] {
		i++
	}
	return long[i+1:] == short[i:]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
