package peeringdb

import (
	"bytes"
	"net/netip"
	"testing"

	"hoiho/internal/asn"
	"hoiho/internal/topo"
)

func buildWorld(t testing.TB) *topo.Internet {
	t.Helper()
	in, err := topo.Build(topo.DefaultConfig(123))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSynthesize(t *testing.T) {
	in := buildWorld(t)
	snap := Synthesize(in, "pdb-test", SynthOptions{Seed: 1, ErrorRate: 0.04, OrgMainRate: 0.05})
	if len(snap.Records) == 0 {
		t.Fatal("no records")
	}
	correct, wrong := 0, 0
	for _, r := range snap.Records {
		ix := in.AS(r.IXPASN)
		if ix == nil || ix.Class != topo.IXP {
			t.Fatalf("record %v references non-IXP %v", r.Addr, r.IXPASN)
		}
		if !ix.LAN.Contains(r.Addr) {
			t.Errorf("record %v outside LAN %v", r.Addr, ix.LAN)
		}
		truth := in.OwnerOf(r.Addr)
		if r.ASN == truth {
			correct++
		} else {
			wrong++
		}
	}
	frac := float64(correct) / float64(correct+wrong)
	if frac < 0.85 || frac == 1.0 {
		t.Errorf("recorded-correct fraction = %.3f; want high but imperfect", frac)
	}
}

func TestSynthesizeDeterminism(t *testing.T) {
	in := buildWorld(t)
	a := Synthesize(in, "s", SynthOptions{Seed: 9, ErrorRate: 0.1})
	b := Synthesize(in, "s", SynthOptions{Seed: 9, ErrorRate: 0.1})
	if len(a.Records) != len(b.Records) {
		t.Fatal("lengths differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestTrainingItems(t *testing.T) {
	in := buildWorld(t)
	snap := Synthesize(in, "pdb-test", SynthOptions{Seed: 2})
	ptr := func(a netip.Addr) string {
		if ifc := in.Interface(a); ifc != nil {
			return ifc.Hostname
		}
		return ""
	}
	items := snap.TrainingItems(ptr)
	if len(items) == 0 {
		t.Fatal("no items")
	}
	for _, it := range items {
		if it.Hostname == "" || it.ASN == asn.None || !it.Addr.IsValid() {
			t.Fatalf("bad item %+v", it)
		}
	}
	if got := snap.TrainingItems(nil); got != nil {
		t.Error("nil ptr should produce no items")
	}
}

func TestRoundTrip(t *testing.T) {
	in := buildWorld(t)
	snap := Synthesize(in, "pdb-rt", SynthOptions{Seed: 3})
	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != snap.Name || len(got.Records) != len(snap.Records) {
		t.Fatal("round trip lost data")
	}
	for i := range got.Records {
		if got.Records[i] != snap.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if _, err := Parse(bytes.NewReader([]byte("{bogus"))); err == nil {
		t.Error("bad JSON should error")
	}
}
