// Package peeringdb models the PeeringDB netixlan dataset the paper uses
// as its second source of training ASNs (§3, §4): operators record, per
// IXP, the LAN addresses of their peering ports and the ASN they peer
// with. The paper measured 96.0% agreement between PeeringDB-recorded
// ASNs and hostname-extracted ASNs, and used two snapshots as training
// sets alongside the 17 ITDKs.
package peeringdb

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"sort"

	"hoiho/internal/asn"
	"hoiho/internal/core"
	"hoiho/internal/topo"
)

// NetIXLan is one record: a member's port on an IXP LAN.
type NetIXLan struct {
	// IXP is the exchange's name (its DNS suffix in this codebase).
	IXP string `json:"ix"`
	// IXPASN is the exchange's own ASN.
	IXPASN asn.ASN `json:"ix_asn"`
	// Addr is the member's address on the peering LAN.
	Addr netip.Addr `json:"ipaddr4"`
	// ASN is the ASN the member recorded for the port.
	ASN asn.ASN `json:"asn"`
}

// Snapshot is a dated dump of netixlan records.
type Snapshot struct {
	Name    string     `json:"name"`
	Records []NetIXLan `json:"netixlan"`
}

// SynthOptions controls snapshot synthesis.
type SynthOptions struct {
	Seed int64
	// ErrorRate is the chance a member recorded a wrong ASN outright
	// (typos, stale entries); the paper measured PeeringDB at ~96% PPV,
	// i.e. roughly 4% disagreement with hostnames.
	ErrorRate float64
	// OrgMainRate is the chance a multi-ASN organization records its
	// primary ASN while the IXP hostname embeds the sibling actually
	// peering (the paper's Microsoft AS8075 vs AS8069/12076 example).
	OrgMainRate float64
}

// Synthesize builds a snapshot from the synthetic Internet's IXP LANs.
func Synthesize(in *topo.Internet, name string, opts SynthOptions) *Snapshot {
	rng := rand.New(rand.NewSource(opts.Seed))
	snap := &Snapshot{Name: name}
	otherASNs := make([]asn.ASN, 0, len(in.ASes))
	for _, a := range in.ASes {
		otherASNs = append(otherASNs, a.ASN)
	}
	for _, ix := range in.ASes {
		if ix.Class != topo.IXP || !ix.LAN.IsValid() {
			continue
		}
		// Collect member ports: interfaces inside the LAN.
		var ports []*topo.Interface
		for _, ifc := range in.Interfaces() {
			if ix.LAN.Contains(ifc.Addr) {
				ports = append(ports, ifc)
			}
		}
		sort.Slice(ports, func(i, j int) bool { return ports[i].Addr.Less(ports[j].Addr) })
		for _, p := range ports {
			recorded := p.Router.Owner
			switch {
			case rng.Float64() < opts.ErrorRate:
				recorded = otherASNs[rng.Intn(len(otherASNs))]
			case rng.Float64() < opts.OrgMainRate:
				// Record the organization's primary (lowest) ASN.
				if sibs := in.Orgs.SiblingSet(recorded); len(sibs) > 1 {
					recorded = sibs[0]
				}
			}
			snap.Records = append(snap.Records, NetIXLan{
				IXP:    ix.Suffix,
				IXPASN: ix.ASN,
				Addr:   p.Addr,
				ASN:    recorded,
			})
		}
	}
	return snap
}

// TrainingItems joins records with PTR data to form Hoiho training
// items: the hostname of the port address, annotated with the
// member-recorded ASN.
func (s *Snapshot) TrainingItems(ptr func(netip.Addr) string) []core.Item {
	var items []core.Item
	for _, r := range s.Records {
		if r.ASN == asn.None || ptr == nil {
			continue
		}
		h := ptr(r.Addr)
		if h == "" {
			continue
		}
		items = append(items, core.Item{Hostname: h, Addr: r.Addr, ASN: r.ASN})
	}
	return items
}

// WriteTo serializes the snapshot as JSON.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return 0, err
	}
	n, err := w.Write(append(data, '\n'))
	return int64(n), err
}

// Parse reads a JSON snapshot.
func Parse(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("peeringdb: %w", err)
	}
	return &s, nil
}
