// HBD, Hoiho's binary corpus delta format. A production cluster ships
// corpus updates constantly, and era-over-era relearning changes only a
// handful of conventions at a time — yet the PR 9 rollout ships the
// full corpus to every node's side buffer on every epoch. HBD ships
// only what changed: a per-record diff over the interned HBC layout, so
// a node holding the base corpus can reassemble the target corpus
// byte-for-byte from a patch that is usually a small fraction of the
// full file.
//
// Layout (all multi-byte scalars little-endian, varints are
// encoding/binary uvarints):
//
//	magic            "HBD" + version byte (0x01)
//	base fingerprint u64 — core.FingerprintNCs of the corpus the delta
//	                  applies to (the chain's tail)
//	target fp        u64 — fingerprint of the corpus the delta produces
//	target file sum  u64 — FNV-1a over the complete target HBC file
//	                  bytes, pinning byte-identity of the applied result
//	checksum         u64 — FNV-1a over the payload bytes that follow
//	payload:
//	  string table   count, then per string: length + bytes (interned
//	                 from inserted records, first-use order)
//	  base count     uvarint — how many records the base must have
//	  op count       uvarint, then per op a head byte:
//	    0 = copy     uvarint base record index
//	    1 = insert   one inline NC record, exactly the HBC record layout
//
// The op list is the target corpus in order: base records never copied
// are the removals, an inserted record whose suffix exists in the base
// is a replacement, and an inserted record with a new suffix is an
// addition. The chain (base fingerprint → target fingerprint) makes a
// patch self-describing: ApplyDelta refuses to run against any corpus
// other than the one the patch was diffed from, and the target file sum
// catches any divergence — in eval counters or compiled programs — that
// the NC fingerprint alone cannot see. Decode is fail-closed exactly
// like HBC: bit flips and truncations are rejected before anything is
// parsed, and no input can cause a panic (FuzzHBDDecode enforces this).
package corpusbin

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hoiho/internal/core"
	"hoiho/internal/faultinject"
	"hoiho/internal/match"
)

// DeltaMagic prefixes every HBD file: "HBD" plus a format version byte.
// Sniffers match on the three-byte prefix so an unsupported future
// version reports a version error, not "not a delta".
var DeltaMagic = [4]byte{'H', 'B', 'D', 0x01}

// deltaHeaderLen is magic + base fingerprint + target fingerprint +
// target file sum + payload checksum.
const deltaHeaderLen = 4 + 8 + 8 + 8 + 8

// delta op kinds.
const (
	deltaOpCopy   = 0
	deltaOpInsert = 1
)

// ErrDeltaBaseMismatch is returned (wrapped) by ApplyDelta when the
// base corpus's fingerprint does not match the delta's chain: the patch
// was diffed from a different corpus than the one it is being applied
// to. The serve layer maps this to a rollout nack so the coordinator
// can fall back to a full-corpus resend for just that node.
var ErrDeltaBaseMismatch = errors.New("delta base fingerprint mismatch")

// ErrDeltaResultMismatch is returned (wrapped) by ApplyDelta when the
// patched corpus does not reproduce the chain's target — its
// fingerprint or its full-file checksum diverges from what the delta
// promised. A delta that decodes cleanly but assembles the wrong bytes
// is rejected here, before any caller can observe the wrong corpus.
var ErrDeltaResultMismatch = errors.New("delta result mismatch")

// IsHBD reports whether data begins with the HBD magic prefix (any
// version).
func IsHBD(data []byte) bool {
	return len(data) >= 3 && data[0] == 'H' && data[1] == 'B' && data[2] == 'D'
}

// DeltaChain is the fingerprint pair a delta patches between.
type DeltaChain struct {
	Base   uint64
	Target uint64
}

// PeekDeltaChain reads the chain from an HBD header without decoding
// the ops. The payload checksum is verified (one FNV pass), so a
// truncated or bit-flipped delta is rejected here exactly as ApplyDelta
// would reject it. The rollout coordinator uses this to learn which
// base a patch wants before choosing delta-vs-full per node.
func PeekDeltaChain(data []byte) (DeltaChain, error) {
	if !IsHBD(data) || len(data) < deltaHeaderLen {
		return DeltaChain{}, fmt.Errorf("corpusbin: peek delta: not an HBD delta (missing magic)")
	}
	if data[3] != DeltaMagic[3] {
		return DeltaChain{}, fmt.Errorf("corpusbin: peek delta: unsupported HBD version %d (this build reads %d)", data[3], DeltaMagic[3])
	}
	wantSum := binary.LittleEndian.Uint64(data[28:])
	if got := checksum(data[deltaHeaderLen:]); got != wantSum {
		return DeltaChain{}, fmt.Errorf("corpusbin: peek delta: payload checksum mismatch (corrupt delta): got %016x want %016x", got, wantSum)
	}
	return DeltaChain{
		Base:   binary.LittleEndian.Uint64(data[4:]),
		Target: binary.LittleEndian.Uint64(data[12:]),
	}, nil
}

// canonicalRecord encodes one record with a private string table —
// table then body, the same mini-payload layout as a one-record corpus
// — yielding a byte string two records share iff they encode
// identically. Diffing compares these, so any change to a record (an
// eval counter, a program op, a regex token) makes it "different" even
// when the NC fingerprint would not notice.
func canonicalRecord(i int, rec NCRecord) ([]byte, error) {
	tab := &stringTable{ids: make(map[string]uint64)}
	body, err := appendRecord(nil, tab, i, rec)
	if err != nil {
		return nil, err
	}
	key := binary.AppendUvarint(nil, uint64(len(tab.strs)))
	for _, s := range tab.strs {
		key = binary.AppendUvarint(key, uint64(len(s)))
		key = append(key, s...)
	}
	return append(key, body...), nil
}

// EncodeDelta diffs target against base and writes the HBD patch that
// rebuilds target from base. Both walks are deterministic, so equal
// (base, target) pairs encode byte-identical deltas. The degenerate
// cases are well-formed: identical corpora produce an all-copy patch,
// and disjoint corpora produce an all-insert patch (a full corpus with
// extra framing) — the size ratio is the caller's signal for whether a
// delta is worth shipping.
func EncodeDelta(w io.Writer, base, target []NCRecord) error {
	baseIdx := make(map[string]int, len(base))
	baseNCs := make([]*core.NC, len(base))
	for i, rec := range base {
		key, err := canonicalRecord(i, rec)
		if err != nil {
			return fmt.Errorf("corpusbin: encode delta: base: %w", err)
		}
		if _, ok := baseIdx[string(key)]; !ok {
			baseIdx[string(key)] = i
		}
		baseNCs[i] = rec.NC
	}

	tab := &stringTable{ids: make(map[string]uint64)}
	ops := make([]byte, 0, 256)
	targetNCs := make([]*core.NC, len(target))
	for i, rec := range target {
		key, err := canonicalRecord(i, rec)
		if err != nil {
			return fmt.Errorf("corpusbin: encode delta: target: %w", err)
		}
		if bi, ok := baseIdx[string(key)]; ok {
			ops = append(ops, deltaOpCopy)
			ops = binary.AppendUvarint(ops, uint64(bi))
		} else {
			ops = append(ops, deltaOpInsert)
			ops, err = appendRecord(ops, tab, i, rec)
			if err != nil {
				return fmt.Errorf("corpusbin: encode delta: target: %w", err)
			}
		}
		targetNCs[i] = rec.NC
	}

	// The target file sum pins the applied result to the bytes a full
	// Encode of the target produces — ApplyDelta re-encodes and checks.
	var full bytes.Buffer
	if err := Encode(&full, target); err != nil {
		return fmt.Errorf("corpusbin: encode delta: %w", err)
	}

	payload := make([]byte, 0, len(ops)+16*len(tab.strs)+16)
	payload = binary.AppendUvarint(payload, uint64(len(tab.strs)))
	for _, s := range tab.strs {
		payload = binary.AppendUvarint(payload, uint64(len(s)))
		payload = append(payload, s...)
	}
	payload = binary.AppendUvarint(payload, uint64(len(base)))
	payload = binary.AppendUvarint(payload, uint64(len(target)))
	payload = append(payload, ops...)

	hdr := make([]byte, deltaHeaderLen)
	copy(hdr, DeltaMagic[:])
	binary.LittleEndian.PutUint64(hdr[4:], core.FingerprintNCs(baseNCs))
	binary.LittleEndian.PutUint64(hdr[12:], core.FingerprintNCs(targetNCs))
	binary.LittleEndian.PutUint64(hdr[20:], checksum(full.Bytes()))
	binary.LittleEndian.PutUint64(hdr[28:], checksum(payload))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("corpusbin: encode delta: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("corpusbin: encode delta: %w", err)
	}
	return nil
}

// ApplyDelta patches base with an HBD delta and returns the complete
// target corpus in HBC form, byte-identical to a full Encode of the
// corpus the delta was diffed from. It fails closed at every step: the
// payload checksum is verified before parsing, the base fingerprint
// must match the chain (ErrDeltaBaseMismatch otherwise — base is never
// modified), and the assembled result must reproduce both the chain's
// target fingerprint and the promised full-file checksum
// (ErrDeltaResultMismatch otherwise). No input can make ApplyDelta
// panic (FuzzHBDDecode enforces this).
func ApplyDelta(base []NCRecord, delta []byte) ([]byte, error) {
	full, _, _, err := ApplyDeltaRecords(base, delta)
	return full, err
}

// ApplyDeltaRecords is ApplyDelta exposing the patch's provenance: the
// target records in order, and for each an engine deserialized from its
// inline programs when the record was inserted by the delta — nil for
// copies, whose NCRecord (and NC pointer) is base's own, so a caller
// holding compiled state for the base can reuse it instead of decoding
// the full result. This is what makes applying a small delta cheaper
// than a full corpus reload: only the inserted records pay program
// deserialization and engine construction.
func ApplyDeltaRecords(base []NCRecord, delta []byte) ([]byte, []NCRecord, []*match.Engine, error) {
	return applyDelta(base, 0, false, delta)
}

// ApplyDeltaRecordsFP is ApplyDeltaRecords for callers that hold a
// precomputed core.FingerprintNCs over base's NCs (extract memoizes it
// at corpus build). The attested fingerprint is checked against the
// chain exactly as the recomputed one would be — the caller saves one
// full hash pass over the base, not any verification. Passing a
// fingerprint that was not computed over base voids the base-mismatch
// guarantee; the target-side checks (chain fingerprint and full-file
// checksum) still hold regardless.
func ApplyDeltaRecordsFP(base []NCRecord, baseFP uint64, delta []byte) ([]byte, []NCRecord, []*match.Engine, error) {
	return applyDelta(base, baseFP, true, delta)
}

func applyDelta(base []NCRecord, attestedFP uint64, attested bool, delta []byte) ([]byte, []NCRecord, []*match.Engine, error) {
	if len(delta) > maxSectionBytes+deltaHeaderLen {
		return nil, nil, nil, fmt.Errorf("corpusbin: apply delta: input exceeds %d-byte cap", maxSectionBytes)
	}
	if !IsHBD(delta) || len(delta) < deltaHeaderLen {
		return nil, nil, nil, fmt.Errorf("corpusbin: apply delta: not an HBD delta (missing magic)")
	}
	if delta[3] != DeltaMagic[3] {
		return nil, nil, nil, fmt.Errorf("corpusbin: apply delta: unsupported HBD version %d (this build reads %d)", delta[3], DeltaMagic[3])
	}
	baseFP := binary.LittleEndian.Uint64(delta[4:])
	targetFP := binary.LittleEndian.Uint64(delta[12:])
	wantFileSum := binary.LittleEndian.Uint64(delta[20:])
	wantSum := binary.LittleEndian.Uint64(delta[28:])
	payload := delta[deltaHeaderLen:]
	if got := checksum(payload); got != wantSum {
		return nil, nil, nil, fmt.Errorf("corpusbin: apply delta: payload checksum mismatch (corrupt delta): got %016x want %016x", got, wantSum)
	}

	got := attestedFP
	if !attested {
		baseNCs := make([]*core.NC, len(base))
		for i, rec := range base {
			if rec.NC == nil || rec.NC.Suffix == "" {
				return nil, nil, nil, fmt.Errorf("corpusbin: apply delta: base record %d has no suffix", i)
			}
			baseNCs[i] = rec.NC
		}
		got = core.FingerprintNCs(baseNCs)
	}
	if got != baseFP {
		return nil, nil, nil, fmt.Errorf("corpusbin: apply delta: %w: have %016x, delta chains %016x → %016x", ErrDeltaBaseMismatch, got, baseFP, targetFP)
	}
	if err := faultinject.Fire(context.Background(), faultinject.StageCorpusbinDelta, fmt.Sprintf("%016x", targetFP)); err != nil {
		return nil, nil, nil, fmt.Errorf("corpusbin: apply delta %016x: %w", targetFP, err)
	}

	d := &decoder{data: payload}
	table, err := d.strTable()
	if err != nil {
		return nil, nil, nil, err
	}
	baseCount, err := d.uvarint("base count")
	if err != nil {
		return nil, nil, nil, err
	}
	if baseCount != uint64(len(base)) {
		return nil, nil, nil, d.errf("delta expects %d base records, corpus has %d", baseCount, len(base))
	}
	nOps, err := d.count("delta op list", 2, 256)
	if err != nil {
		return nil, nil, nil, err
	}
	out := make([]NCRecord, 0, nOps)
	engines := make([]*match.Engine, 0, nOps)
	for i := 0; i < nOps; i++ {
		head, err := d.byteVal("delta op head")
		if err != nil {
			return nil, nil, nil, err
		}
		switch head {
		case deltaOpCopy:
			idx, err := d.uvarint("copy index")
			if err != nil {
				return nil, nil, nil, err
			}
			if idx >= uint64(len(base)) {
				return nil, nil, nil, d.errf("copy index %d out of range (base has %d)", idx, len(base))
			}
			out = append(out, base[idx])
			engines = append(engines, nil)
		case deltaOpInsert:
			rec, eng, err := d.decodeNC(table)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("corpusbin: apply delta: op %d: %w", i, err)
			}
			out = append(out, rec)
			engines = append(engines, eng)
		default:
			return nil, nil, nil, d.errf("unknown delta op kind %d", head)
		}
	}
	if d.remaining() != 0 {
		return nil, nil, nil, d.errf("%d trailing bytes after last op", d.remaining())
	}

	var full bytes.Buffer
	if err := Encode(&full, out); err != nil {
		return nil, nil, nil, fmt.Errorf("corpusbin: apply delta: %w", err)
	}
	// Encode stamped the patched corpus's fingerprint into the HBC
	// header; checking it there verifies the chain's target without a
	// second hash over every record.
	if got := binary.LittleEndian.Uint64(full.Bytes()[4:]); got != targetFP {
		return nil, nil, nil, fmt.Errorf("corpusbin: apply delta: %w: patched corpus fingerprint %016x, chain target %016x", ErrDeltaResultMismatch, got, targetFP)
	}
	if got := checksum(full.Bytes()); got != wantFileSum {
		return nil, nil, nil, fmt.Errorf("corpusbin: apply delta: %w: patched corpus bytes diverge from a full encode of the target (sum %016x, want %016x)", ErrDeltaResultMismatch, got, wantFileSum)
	}
	return full.Bytes(), out, engines, nil
}
