package corpusbin

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"

	"hoiho/internal/core"
	"hoiho/internal/match"
	"hoiho/internal/rex"
)

// testRecords compiles each NC's engine and pairs it with its wire
// programs, the same preparation SaveBinary performs.
func testRecords(t testing.TB, ncs []*core.NC) []NCRecord {
	t.Helper()
	recs := make([]NCRecord, len(ncs))
	for i, nc := range ncs {
		recs[i] = NCRecord{NC: nc, Programs: match.Compile(nc.Regexes).Wire()}
	}
	return recs
}

// mutatedNCs derives a target corpus from testNCs with one removal
// (delta.io), one in-place replacement (alpha.net's eval counters
// change — invisible to the NC fingerprint's structural inputs, visible
// to the canonical record), and one addition (epsilon.de).
func mutatedNCs(t testing.TB) []*core.NC {
	t.Helper()
	ncs := testNCs(t)
	out := make([]*core.NC, 0, len(ncs))
	for _, nc := range ncs {
		if nc.Suffix == "delta.io" {
			continue
		}
		if nc.Suffix == "alpha.net" {
			cp := *nc
			cp.Eval.TP += 100
			cp.Eval.Matches += 100
			nc = &cp
		}
		out = append(out, nc)
	}
	r, err := rex.Parse(`^(?:gw|br)(\d+)\.epsilon\.de$`)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, &core.NC{
		Suffix:  "epsilon.de",
		Class:   core.Good,
		Regexes: []*rex.Regex{r},
		Eval:    core.Eval{TP: 7, Matches: 7, UniqueTP: 2, UniqueExtract: 2},
	})
	return out
}

func encodeDelta(t testing.TB, base, target []NCRecord) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeDelta(&buf, base, target); err != nil {
		t.Fatalf("encode delta: %v", err)
	}
	return buf.Bytes()
}

// TestDeltaRoundTripByteIdentity is the core contract:
// ApplyDelta(base, Diff(base, target)) must reproduce a full Encode of
// the target byte for byte, across add/remove/replace ops at once.
func TestDeltaRoundTripByteIdentity(t *testing.T) {
	base := testRecords(t, testNCs(t))
	targetNCs := mutatedNCs(t)
	target := testRecords(t, targetNCs)
	delta := encodeDelta(t, base, target)

	got, err := ApplyDelta(base, delta)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	want := encodeCorpus(t, targetNCs)
	if !bytes.Equal(got, want) {
		t.Fatalf("patched corpus differs from a full encode: %d vs %d bytes", len(got), len(want))
	}
	// The chain must name both endpoints.
	chain, err := PeekDeltaChain(delta)
	if err != nil {
		t.Fatalf("peek chain: %v", err)
	}
	if chain.Base != core.FingerprintNCs(testNCs(t)) || chain.Target != core.FingerprintNCs(targetNCs) {
		t.Fatalf("chain %016x → %016x does not match the endpoint fingerprints", chain.Base, chain.Target)
	}
	// The patched bytes are a first-class HBC corpus.
	dec, err := Decode(got)
	if err != nil {
		t.Fatalf("decode of patched corpus: %v", err)
	}
	if dec.Fingerprint != chain.Target {
		t.Fatalf("patched corpus fingerprint %016x, chain target %016x", dec.Fingerprint, chain.Target)
	}
}

func TestDeltaEncodeDeterministic(t *testing.T) {
	base := testRecords(t, testNCs(t))
	target := testRecords(t, mutatedNCs(t))
	if !bytes.Equal(encodeDelta(t, base, target), encodeDelta(t, base, target)) {
		t.Fatal("two encodes of the same delta differ")
	}
}

// TestDeltaSmallerThanFull pins the point of the format: a single-record
// change to a many-record corpus must ship far fewer bytes than the
// full corpus (the CI bench gate tracks the exact ratio).
func TestDeltaSmallerThanFull(t *testing.T) {
	ncs := make([]*core.NC, 0, 48)
	for i := 0; i < 48; i++ {
		suffix := fmt.Sprintf("node%02d.example.net", i)
		r, err := rex.Parse(`^as(\d+)-[^\.]+\.` + strings.ReplaceAll(suffix, ".", `\.`) + `$`)
		if err != nil {
			t.Fatal(err)
		}
		ncs = append(ncs, &core.NC{
			Suffix: suffix, Class: core.Good,
			Regexes: []*rex.Regex{r},
			Eval:    core.Eval{TP: i + 1, Matches: i + 1, UniqueTP: 1, UniqueExtract: 1},
		})
	}
	base := testRecords(t, ncs)
	targetNCs := append([]*core.NC(nil), ncs...)
	cp := *ncs[7]
	cp.Eval.TP += 9
	targetNCs[7] = &cp
	target := testRecords(t, targetNCs)

	delta := encodeDelta(t, base, target)
	full := encodeCorpus(t, targetNCs)
	if len(delta)*4 > len(full) {
		t.Fatalf("one-record delta is %d bytes vs %d full — not worth shipping", len(delta), len(full))
	}
	got, err := ApplyDelta(base, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Fatal("patched corpus differs from full encode")
	}
}

// TestDeltaIdenticalCorpora: a no-op diff is a legal all-copy patch.
func TestDeltaIdenticalCorpora(t *testing.T) {
	base := testRecords(t, testNCs(t))
	delta := encodeDelta(t, base, base)
	got, err := ApplyDelta(base, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, encodeCorpus(t, testNCs(t))) {
		t.Fatal("identity patch did not reproduce the corpus")
	}
}

// TestDeltaBaseMismatch: a patch refuses to run against any corpus but
// the one it was diffed from, with the typed sentinel the serve layer
// keys its rollout nack on.
func TestDeltaBaseMismatch(t *testing.T) {
	base := testRecords(t, testNCs(t))
	target := testRecords(t, mutatedNCs(t))
	delta := encodeDelta(t, base, target)

	// Applying against the target (already rolled forward) must refuse.
	_, err := ApplyDelta(target, delta)
	if !errors.Is(err, ErrDeltaBaseMismatch) {
		t.Fatalf("apply against wrong base = %v, want ErrDeltaBaseMismatch", err)
	}
	if !strings.Contains(err.Error(), "corpusbin") {
		t.Fatalf("unqualified error %q", err)
	}
	// Applying against a truncated base (right fingerprint impossible).
	_, err = ApplyDelta(base[:2], delta)
	if !errors.Is(err, ErrDeltaBaseMismatch) {
		t.Fatalf("apply against truncated base = %v, want ErrDeltaBaseMismatch", err)
	}
}

// TestDeltaResultMismatch: header fields past the payload checksum's
// reach (the chain target and the file sum) are still load-bearing —
// tampering with either must surface the typed result-mismatch error.
func TestDeltaResultMismatch(t *testing.T) {
	base := testRecords(t, testNCs(t))
	target := testRecords(t, mutatedNCs(t))
	delta := encodeDelta(t, base, target)

	bad := append([]byte(nil), delta...)
	bad[12] ^= 0x01 // target fingerprint
	if _, err := ApplyDelta(base, bad); !errors.Is(err, ErrDeltaResultMismatch) {
		t.Fatalf("tampered target fp = %v, want ErrDeltaResultMismatch", err)
	}
	bad = append([]byte(nil), delta...)
	bad[20] ^= 0x01 // target file sum
	if _, err := ApplyDelta(base, bad); !errors.Is(err, ErrDeltaResultMismatch) {
		t.Fatalf("tampered file sum = %v, want ErrDeltaResultMismatch", err)
	}
}

// TestDeltaCorruptionFailsClosed mirrors the HBC test: every truncation
// and every single-bit flip of a valid delta must be rejected with a
// qualified error — never applied, never a panic. (A flip in the base
// fingerprint reads as a base mismatch; one in the target fields as a
// result mismatch; everywhere else the checksum or a structural check
// catches it.)
func TestDeltaCorruptionFailsClosed(t *testing.T) {
	base := testRecords(t, testNCs(t))
	target := testRecords(t, mutatedNCs(t))
	delta := encodeDelta(t, base, target)
	if _, err := ApplyDelta(base, delta); err != nil {
		t.Fatalf("pristine delta failed: %v", err)
	}
	for n := 0; n < len(delta); n++ {
		if _, err := ApplyDelta(base, delta[:n]); err == nil {
			t.Fatalf("truncation to %d bytes applied successfully", n)
		}
	}
	mut := make([]byte, len(delta))
	for i := 0; i < len(delta); i++ {
		for b := 0; b < 8; b++ {
			copy(mut, delta)
			mut[i] ^= 1 << b
			out, err := ApplyDelta(base, mut)
			if err == nil {
				t.Fatalf("bit flip at byte %d bit %d applied successfully", i, b)
			}
			if out != nil {
				t.Fatalf("bit flip at byte %d bit %d: non-nil result with error", i, b)
			}
			if !strings.Contains(err.Error(), "corpusbin") && !strings.Contains(err.Error(), "nc ") {
				t.Fatalf("bit flip at byte %d bit %d: unqualified error %q", i, b, err)
			}
		}
	}
}

// TestDeltaHostileCountsCapped: a delta whose payload claims enormous
// sections is rejected before any allocation is attempted.
func TestDeltaHostileCountsCapped(t *testing.T) {
	payload := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01} // uvarint 2^63
	base := testRecords(t, testNCs(t))
	data := make([]byte, deltaHeaderLen, deltaHeaderLen+len(payload))
	copy(data, DeltaMagic[:])
	binary.LittleEndian.PutUint64(data[4:], core.FingerprintNCs(testNCs(t)))
	data = append(data, payload...)
	binary.LittleEndian.PutUint64(data[28:], checksum(payload))
	_, err := ApplyDelta(base, data)
	if err == nil {
		t.Fatal("hostile string count applied successfully")
	}
	if !strings.Contains(err.Error(), "count") && !strings.Contains(err.Error(), "varint") {
		t.Fatalf("unexpected error for hostile count: %v", err)
	}
}

func TestDeltaRejectsWrongVersionAndOversized(t *testing.T) {
	base := testRecords(t, testNCs(t))
	delta := encodeDelta(t, base, base)
	bad := append([]byte(nil), delta...)
	bad[3] = 0x7f
	if _, err := ApplyDelta(base, bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong version: %v", err)
	}
	if _, err := PeekDeltaChain(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("peek wrong version: %v", err)
	}
	huge := make([]byte, maxSectionBytes+deltaHeaderLen+1)
	copy(huge, DeltaMagic[:])
	if _, err := ApplyDelta(base, huge); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("oversized input: %v", err)
	}
}

func TestPeekDeltaChainFailsClosed(t *testing.T) {
	base := testRecords(t, testNCs(t))
	delta := encodeDelta(t, base, testRecords(t, mutatedNCs(t)))
	if _, err := PeekDeltaChain(nil); err == nil {
		t.Error("peek of empty input must fail")
	}
	if _, err := PeekDeltaChain(delta[:deltaHeaderLen-1]); err == nil {
		t.Error("peek of a truncated header must fail")
	}
	// An HBC corpus is not a delta.
	if _, err := PeekDeltaChain(encodeCorpus(t, testNCs(t))); err == nil {
		t.Error("peek of an HBC corpus must fail")
	}
	bad := append([]byte(nil), delta...)
	bad[len(bad)-1] ^= 0x01
	if _, err := PeekDeltaChain(bad); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("peek of corrupt payload = %v, want a checksum error", err)
	}
}

// FuzzHBDRoundTrip derives base/target corpus pairs from the fuzz input
// (shared records, perturbed records, fresh records) and requires the
// diff→apply cycle to be byte-identical with a full encode of the
// target, whatever the overlap shape.
func FuzzHBDRoundTrip(f *testing.F) {
	f.Add(uint16(3), uint16(0x1234), uint16(0x00ff))
	f.Add(uint16(8), uint16(7), uint16(0xaaaa))
	f.Add(uint16(1), uint16(0xffff), uint16(0))
	f.Fuzz(func(t *testing.T, nNCs, pick, keep uint16) {
		n := int(nNCs%10) + 1
		baseNCs := make([]*core.NC, 0, n)
		for i := 0; i < n; i++ {
			suffix := fmt.Sprintf("fz%d-%d.net", i, pick%13)
			r, err := rex.Parse(`^as(\d+)-[^\.]+\.` + strings.ReplaceAll(suffix, ".", `\.`) + `$`)
			if err != nil {
				t.Fatal(err)
			}
			baseNCs = append(baseNCs, &core.NC{
				Suffix:  suffix,
				Class:   core.Classification(int(pick>>uint(i%14)) % 3),
				Single:  pick&(1<<uint(i%16)) != 0,
				Regexes: []*rex.Regex{r},
				Eval:    core.Eval{TP: int(pick % 97), Matches: int(pick%97) + i, UniqueTP: i % 5, UniqueExtract: i%5 + 1},
			})
		}
		targetNCs := make([]*core.NC, 0, n+1)
		for i, nc := range baseNCs {
			switch {
			case keep&(1<<uint(i%16)) != 0:
				targetNCs = append(targetNCs, nc) // shared
			case i%3 == 0:
				continue // removed
			default: // replaced in place
				cp := *nc
				cp.Eval.TP++
				targetNCs = append(targetNCs, &cp)
			}
		}
		r, err := rex.Parse(`^gw(\d+)\.fresh\.net$`)
		if err != nil {
			t.Fatal(err)
		}
		targetNCs = append(targetNCs, &core.NC{
			Suffix: "fresh.net", Class: core.Good,
			Regexes: []*rex.Regex{r},
			Eval:    core.Eval{TP: 1, Matches: 1, UniqueTP: 1, UniqueExtract: 1},
		})

		base := testRecords(t, baseNCs)
		target := testRecords(t, targetNCs)
		delta := encodeDelta(t, base, target)
		got, err := ApplyDelta(base, delta)
		if err != nil {
			t.Fatalf("apply of freshly encoded delta failed: %v", err)
		}
		if !bytes.Equal(got, encodeCorpus(t, targetNCs)) {
			t.Fatal("diff→apply cycle not byte-identical with a full encode")
		}
	})
}

// FuzzHBDDecode throws raw bytes at ApplyDelta: it must never panic,
// and anything it accepts must be a self-consistent corpus matching the
// delta's declared chain target.
func FuzzHBDDecode(f *testing.F) {
	seedBase := testRecords(f, testNCs(f))
	f.Add([]byte("HBD\x01junk"))
	f.Add([]byte{})
	f.Add(encodeDelta(f, seedBase, testRecords(f, mutatedNCs(f))))
	f.Fuzz(func(t *testing.T, data []byte) {
		base := testRecords(t, testNCs(t))
		out, err := ApplyDelta(base, data)
		if err != nil {
			return
		}
		chain, err := PeekDeltaChain(data)
		if err != nil {
			t.Fatalf("applied a delta whose chain cannot be peeked: %v", err)
		}
		dec, err := Decode(out)
		if err != nil {
			t.Fatalf("accepted delta produced an undecodable corpus: %v", err)
		}
		if dec.Fingerprint != chain.Target {
			t.Fatalf("accepted corpus fingerprint %016x does not match chain target %016x", dec.Fingerprint, chain.Target)
		}
	})
}
