package corpusbin

// PeekFingerprint is the cluster rollout's cheap identity check: the
// coordinator reads a shipped HBC corpus's fingerprint (verifying the
// payload checksum) without paying for a full decode. These tests pin
// that the peek agrees with Decode and fails closed on anything
// corrupt, truncated, or mislabeled.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPeekFingerprintMatchesDecode(t *testing.T) {
	data := encodeCorpus(t, testNCs(t))
	fp, err := PeekFingerprint(data)
	if err != nil {
		t.Fatalf("peek: %v", err)
	}
	dec, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if fp != dec.Fingerprint {
		t.Errorf("peek = %016x, decode = %016x", fp, dec.Fingerprint)
	}
}

func TestPeekFingerprintFailsClosed(t *testing.T) {
	data := encodeCorpus(t, testNCs(t))

	// Not HBC at all.
	if _, err := PeekFingerprint([]byte("[]")); err == nil {
		t.Error("peek of JSON must fail")
	}
	// Truncated below the header.
	if _, err := PeekFingerprint(data[:10]); err == nil {
		t.Error("peek of a truncated header must fail")
	}
	// Wrong version byte.
	bad := append([]byte(nil), data...)
	bad[3] = 0x7f
	if _, err := PeekFingerprint(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("peek of wrong version = %v, want a version error", err)
	}
	// Flipped payload byte: the checksum must catch it even though the
	// header (and its fingerprint field) are intact.
	bad = append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0x01
	if _, err := PeekFingerprint(bad); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("peek of corrupt payload = %v, want a checksum error", err)
	}
	// A tampered fingerprint field is not covered by the payload
	// checksum, but the full Decode recomputes and rejects it; peek's
	// contract is only as strong as the header, so pin that Decode
	// remains the backstop.
	bad = append([]byte(nil), data...)
	bad[4] ^= 0x01
	if _, err := Decode(bad); err == nil {
		t.Error("Decode must reject a tampered fingerprint field")
	}
}

// TestPeekFingerprintHeaderEdgeCases pins the degenerate inputs the
// journal-recovery path can hand the peek after a crash: zero-length
// data and every truncation below the header must return a qualified
// error — never a panic, never a bogus fingerprint.
func TestPeekFingerprintHeaderEdgeCases(t *testing.T) {
	if _, err := PeekFingerprint(nil); err == nil || !strings.Contains(err.Error(), "corpusbin") {
		t.Errorf("peek of nil = %v, want a qualified error", err)
	}
	if _, err := PeekFingerprint([]byte{}); err == nil || !strings.Contains(err.Error(), "corpusbin") {
		t.Errorf("peek of zero-length data = %v, want a qualified error", err)
	}
	data := encodeCorpus(t, testNCs(t))
	for n := 0; n < headerLen; n++ {
		if _, err := PeekFingerprint(data[:n]); err == nil {
			t.Fatalf("peek of %d-byte header prefix succeeded", n)
		}
	}
}

// TestPeekFingerprintFile pins the file-level contract: every failure —
// missing file, empty file, truncated header, corrupt payload — names
// the offending path, and a healthy file agrees with Decode.
func TestPeekFingerprintFile(t *testing.T) {
	dir := t.TempDir()
	data := encodeCorpus(t, testNCs(t))

	good := filepath.Join(dir, "good.hbc")
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fp, err := PeekFingerprintFile(good)
	if err != nil {
		t.Fatalf("peek of healthy file: %v", err)
	}
	if dec, err := Decode(data); err != nil || dec.Fingerprint != fp {
		t.Fatalf("file peek %016x disagrees with decode (%v)", fp, err)
	}

	cases := []struct {
		name  string
		bytes []byte // nil means do not create the file
	}{
		{"missing.hbc", nil},
		{"empty.hbc", []byte{}},
		{"truncated.hbc", data[:headerLen-3]},
		{"corrupt.hbc", func() []byte {
			b := append([]byte(nil), data...)
			b[len(b)-1] ^= 0x01
			return b
		}()},
	}
	for _, tc := range cases {
		path := filepath.Join(dir, tc.name)
		if tc.bytes != nil {
			if err := os.WriteFile(path, tc.bytes, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		_, err := PeekFingerprintFile(path)
		if err == nil {
			t.Errorf("%s: peek succeeded on a broken file", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.name) {
			t.Errorf("%s: error %q does not name the path", tc.name, err)
		}
	}
}
