package corpusbin

// PeekFingerprint is the cluster rollout's cheap identity check: the
// coordinator reads a shipped HBC corpus's fingerprint (verifying the
// payload checksum) without paying for a full decode. These tests pin
// that the peek agrees with Decode and fails closed on anything
// corrupt, truncated, or mislabeled.

import (
	"strings"
	"testing"
)

func TestPeekFingerprintMatchesDecode(t *testing.T) {
	data := encodeCorpus(t, testNCs(t))
	fp, err := PeekFingerprint(data)
	if err != nil {
		t.Fatalf("peek: %v", err)
	}
	dec, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if fp != dec.Fingerprint {
		t.Errorf("peek = %016x, decode = %016x", fp, dec.Fingerprint)
	}
}

func TestPeekFingerprintFailsClosed(t *testing.T) {
	data := encodeCorpus(t, testNCs(t))

	// Not HBC at all.
	if _, err := PeekFingerprint([]byte("[]")); err == nil {
		t.Error("peek of JSON must fail")
	}
	// Truncated below the header.
	if _, err := PeekFingerprint(data[:10]); err == nil {
		t.Error("peek of a truncated header must fail")
	}
	// Wrong version byte.
	bad := append([]byte(nil), data...)
	bad[3] = 0x7f
	if _, err := PeekFingerprint(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("peek of wrong version = %v, want a version error", err)
	}
	// Flipped payload byte: the checksum must catch it even though the
	// header (and its fingerprint field) are intact.
	bad = append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0x01
	if _, err := PeekFingerprint(bad); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("peek of corrupt payload = %v, want a checksum error", err)
	}
	// A tampered fingerprint field is not covered by the payload
	// checksum, but the full Decode recomputes and rejects it; peek's
	// contract is only as strong as the header, so pin that Decode
	// remains the backstop.
	bad = append([]byte(nil), data...)
	bad[4] ^= 0x01
	if _, err := Decode(bad); err == nil {
		t.Error("Decode must reject a tampered fingerprint field")
	}
}
