package corpusbin

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"regexp"
	"strings"
	"testing"

	"hoiho/internal/core"
	"hoiho/internal/match"
	"hoiho/internal/rex"
)

// testNCs builds a corpus exercising every serialized shape: multiple
// regexes per NC, literals, captures, classes, exclusions, dot-plus,
// alternations (optional and required), left-open regexes, every
// classification, the single flag, and non-zero eval counters.
func testNCs(t testing.TB) []*core.NC {
	t.Helper()
	mk := func(suffix, class string, single bool, srcs ...string) *core.NC {
		nc := &core.NC{Suffix: suffix, Single: single}
		switch class {
		case "good":
			nc.Class = core.Good
		case "promising":
			nc.Class = core.Promising
		default:
			nc.Class = core.Poor
		}
		for _, src := range srcs {
			r, err := rex.Parse(src)
			if err != nil {
				t.Fatalf("parse %q: %v", src, err)
			}
			nc.Regexes = append(nc.Regexes, r)
		}
		nc.Eval = core.Eval{TP: 12, FP: 3, FN: 1, Matches: 15, UniqueTP: 4, UniqueExtract: 5}
		return nc
	}
	return []*core.NC{
		mk("alpha.net", "good", false,
			`^as(\d+)-[^\.]+\.alpha\.net$`,
			`^[^-]+-as(\d+)\.alpha\.net$`),
		mk("beta.org", "promising", true,
			`as(\d+)\.beta\.org$`, // left-open
			`^.+\.(?:pop|core)\.as(\d+)\.beta\.org$`),
		mk("gamma.ch", "good", false,
			`^(?:p|s)?(\d+)\.[a-z]+\.gamma\.ch$`,
			`^[a-z\d]+\.(\d+)\.gamma\.ch$`),
		mk("delta.io", "poor", false,
			`^x(\d+)-[^-]+-[^\.]+\.delta\.io$`),
	}
}

func encodeCorpus(t testing.TB, ncs []*core.NC) []byte {
	t.Helper()
	recs := make([]NCRecord, len(ncs))
	for i, nc := range ncs {
		recs[i] = NCRecord{NC: nc, Programs: match.Compile(nc.Regexes).Wire()}
	}
	var buf bytes.Buffer
	if err := Encode(&buf, recs); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTripJSONByteIdentity(t *testing.T) {
	ncs := testNCs(t)
	before, err := core.MarshalNCs(ncs)
	if err != nil {
		t.Fatal(err)
	}
	data := encodeCorpus(t, ncs)
	dec, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	after, err := core.MarshalNCs(dec.NCs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("JSON round trip not byte-identical:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	if got, want := dec.Fingerprint, core.FingerprintNCs(ncs); got != want {
		t.Fatalf("fingerprint %016x, want %016x", got, want)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	ncs := testNCs(t)
	a := encodeCorpus(t, ncs)
	b := encodeCorpus(t, ncs)
	if !bytes.Equal(a, b) {
		t.Fatal("two encodes of the same corpus differ")
	}
}

// TestEngineParityAfterDecode proves a deserialized engine answers
// exactly like a freshly compiled one — same winner, same capture span
// — across hits, misses, and dirty inputs.
func TestEngineParityAfterDecode(t *testing.T) {
	ncs := testNCs(t)
	data := encodeCorpus(t, ncs)
	dec, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	hosts := []string{
		"as3356-lon1.alpha.net", "core2-as174.alpha.net", "lo0.alpha.net",
		"gw.pop.as6939.beta.org", "x.y.core.as1299.beta.org", "as99.beta.org",
		"p714.sgw.gamma.ch", "s24115.mel.gamma.ch", "8069.tyo.gamma.ch",
		"abc.123.gamma.ch", "x42-a-b.delta.io", "x42.delta.io",
		"", "no-match-at-all", strings.Repeat("a", 300) + ".alpha.net",
		"as\xff99-x.alpha.net",
	}
	for i, nc := range ncs {
		fresh := match.Compile(nc.Regexes)
		loaded := dec.Engines[i]
		if fresh.Len() != loaded.Len() {
			t.Fatalf("%s: engine len %d vs %d", nc.Suffix, loaded.Len(), fresh.Len())
		}
		for _, h := range hosts {
			fh, fok := fresh.MatchString(h)
			lh, lok := loaded.MatchString(h)
			if fok != lok || fh != lh {
				t.Errorf("%s on %q: loaded (%v,%v) vs fresh (%v,%v)", nc.Suffix, h, lh, lok, fh, fok)
			}
		}
	}
}

// TestCorruptionFailsClosed flips every bit and truncates at every
// length: decode must return an error (never panic, never succeed) on
// each, and errors must carry the package's path-qualified prefix.
func TestCorruptionFailsClosed(t *testing.T) {
	data := encodeCorpus(t, testNCs(t))
	if _, err := Decode(data); err != nil {
		t.Fatalf("pristine corpus failed: %v", err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	mut := make([]byte, len(data))
	for i := 0; i < len(data); i++ {
		for b := 0; b < 8; b++ {
			copy(mut, data)
			mut[i] ^= 1 << b
			dec, err := Decode(mut)
			if err == nil {
				t.Fatalf("bit flip at byte %d bit %d decoded successfully", i, b)
			}
			if dec != nil {
				t.Fatalf("bit flip at byte %d bit %d: non-nil result with error", i, b)
			}
			if !strings.Contains(err.Error(), "corpusbin") && !strings.Contains(err.Error(), "nc ") {
				t.Fatalf("bit flip at byte %d bit %d: unqualified error %q", i, b, err)
			}
		}
	}
}

// TestHostileCountsCapped feeds headers whose length prefixes claim
// enormous sections: decode must reject them without attempting the
// allocation.
func TestHostileCountsCapped(t *testing.T) {
	// A syntactically valid header wrapping a payload that claims 2^40
	// strings.
	payload := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01} // uvarint 2^63
	data := make([]byte, headerLen, headerLen+len(payload))
	copy(data, Magic[:])
	data = append(data, payload...)
	// Stamp a correct checksum so the count check is what rejects it.
	sum := checksum(payload)
	for i := 0; i < 8; i++ {
		data[12+i] = byte(sum >> (8 * i))
	}
	_, err := Decode(data)
	if err == nil {
		t.Fatal("hostile string count decoded successfully")
	}
	if !strings.Contains(err.Error(), "count") && !strings.Contains(err.Error(), "varint") {
		t.Fatalf("unexpected error for hostile count: %v", err)
	}
}

func TestDecodeRejectsOversizedInput(t *testing.T) {
	huge := make([]byte, maxSectionBytes+headerLen+1)
	copy(huge, Magic[:])
	if _, err := Decode(huge); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("oversized input: %v", err)
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	data := encodeCorpus(t, testNCs(t))
	data[3] = 0x7f
	if _, err := Decode(data); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong version: %v", err)
	}
}

// FuzzHBCRoundTrip builds an arbitrary (but valid) corpus from the fuzz
// input, encodes it, decodes it, and requires deep equality — the JSON
// forms byte-identical and the fingerprint stable.
func FuzzHBCRoundTrip(f *testing.F) {
	f.Add(uint16(3), uint16(0x1234), "pop")
	f.Add(uint16(1), uint16(0xffff), "x")
	f.Add(uint16(8), uint16(7), "core")
	f.Fuzz(func(t *testing.T, nNCs uint16, pick uint16, word string) {
		n := int(nNCs%8) + 1
		// Only lowercase alphanumerics may appear in rex literals.
		w := strings.Map(func(r rune) rune {
			if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
				return r
			}
			return 'a'
		}, word)
		if len(w) > 12 {
			w = w[:12]
		}
		if w == "" {
			w = "p"
		}
		shapes := []func(suffix string) string{
			func(s string) string { return `^as(\d+)\.` + s + `$` },
			func(s string) string { return `^` + w + `(\d+)-[^\.]+\.` + s + `$` },
			func(s string) string { return `as(\d+)\.` + s + `$` },
			func(s string) string { return `^(?:` + w + `|x` + w + `)?(\d+)\.[a-z]+\.` + s + `$` },
			func(s string) string { return `^.+\.(\d+)-[^-]+\.` + s + `$` },
			func(s string) string { return `^[a-z\d]+-(\d+)\.` + s + `$` },
		}
		ncs := make([]*core.NC, 0, n)
		for i := 0; i < n; i++ {
			suffix := fmt.Sprintf("dom%d-%s.net", i, w)
			nc := &core.NC{
				Suffix: suffix,
				Class:  core.Classification(int(pick>>uint(i%14)) % 3),
				Single: pick&(1<<uint(i%16)) != 0,
				Eval:   core.Eval{TP: int(pick % 97), FP: i, Matches: int(pick%97) + i, UniqueTP: i % 5, UniqueExtract: i%5 + 1},
			}
			for s := 0; s <= int(pick>>uint(i))%3; s++ {
				src := shapes[(i+s+int(pick))%len(shapes)](strings.ReplaceAll(suffix, ".", `\.`))
				r, err := rex.Parse(src)
				if err != nil {
					t.Fatalf("shape %q failed to parse: %v", src, err)
				}
				nc.Regexes = append(nc.Regexes, r)
			}
			ncs = append(ncs, nc)
		}
		before, err := core.MarshalNCs(ncs)
		if err != nil {
			t.Fatal(err)
		}
		fpBefore := core.FingerprintNCs(ncs)
		data := encodeCorpus(t, ncs)
		dec, err := Decode(data)
		if err != nil {
			t.Fatalf("decode of freshly encoded corpus failed: %v", err)
		}
		after, err := core.MarshalNCs(dec.NCs)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(before, after) {
			t.Fatalf("round trip not byte-identical:\n%s\nvs\n%s", before, after)
		}
		if dec.Fingerprint != fpBefore || core.FingerprintNCs(dec.NCs) != fpBefore {
			t.Fatalf("fingerprint drifted: %016x vs %016x", dec.Fingerprint, fpBefore)
		}
		if len(dec.Engines) != len(ncs) {
			t.Fatalf("%d engines for %d ncs", len(dec.Engines), len(ncs))
		}
	})
}

// FuzzHBCDecode throws raw bytes at Decode: it must never panic, and on
// success the decoded corpus must re-encode decodably (self-consistency).
func FuzzHBCDecode(f *testing.F) {
	f.Add([]byte("HBC\x01junk"))
	f.Add([]byte{})
	f.Add(encodeCorpus(f, testNCs(f)))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(data)
		if err != nil {
			return
		}
		// A successful decode must be internally consistent.
		if got := core.FingerprintNCs(dec.NCs); got != dec.Fingerprint {
			t.Fatalf("accepted corpus with fingerprint mismatch: %016x vs %016x", got, dec.Fingerprint)
		}
	})
}

// TestDecodeErrorsQualifiedAndChained pins the error contract hoiholint's
// errwrap analyzer enforces (and whose violation it caught in the per-NC
// and per-regex decode wraps): every decode failure is path-qualified
// with the "corpusbin: decode:" prefix, and the record-level wraps use
// %w so errors.Unwrap still reaches the underlying cause once the error
// has crossed the daemon boundary. Corruption is injected after the
// header with the checksum re-stamped, so the flips reach the record
// decoders instead of dying at the checksum gate.
func TestDecodeErrorsQualifiedAndChained(t *testing.T) {
	data := encodeCorpus(t, testNCs(t))
	wrapRE := regexp.MustCompile(`^corpusbin: decode: nc \d+: `)
	mut := make([]byte, len(data))
	sawChain := false
	for i := headerLen; i < len(data); i++ {
		for b := 0; b < 8; b++ {
			copy(mut, data)
			mut[i] ^= 1 << b
			binary.LittleEndian.PutUint64(mut[12:], checksum(mut[headerLen:]))
			_, err := Decode(mut)
			if err == nil {
				continue // flip landed somewhere semantically inert
			}
			if !strings.HasPrefix(err.Error(), "corpusbin: decode: ") {
				t.Fatalf("flip at byte %d bit %d: unqualified error %q", i, b, err)
			}
			if wrapRE.MatchString(err.Error()) {
				if errors.Unwrap(err) == nil {
					t.Fatalf("flip at byte %d bit %d: record wrap lost the chain: %q", i, b, err)
				}
				sawChain = true
			}
		}
	}
	if !sawChain {
		t.Fatal("no corruption exercised the per-NC wrap; the regression has lost its teeth")
	}
}
