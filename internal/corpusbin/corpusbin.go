// Package corpusbin implements HBC, Hoiho's versioned binary corpus
// format. A corpus of learned naming conventions is served far more
// often than it is written: every hoihod boot and hot reload must
// re-index, re-parse, and — most expensively — recompile every regex
// from the JSON interchange form. HBC persists what that work produces:
// an interned string table, varint-packed NC records, and the
// internal/match compiled programs in wire form, so decoding reaches
// ready-to-serve state without JSON parsing or matcher recompilation.
//
// JSON remains the interchange format and the correctness oracle:
// encoding a corpus to HBC and decoding it back yields NCs whose JSON
// serialization is byte-identical to the original (regex sources render
// deterministically from their token form, which is what the programs
// serialize alongside).
//
// Layout (all multi-byte scalars little-endian, varints are
// encoding/binary uvarints):
//
//	magic       "HBC" + version byte (0x01)
//	fingerprint u64 — core.FingerprintNCs over the encoded NC list
//	checksum    u64 — FNV-1a over the payload bytes that follow
//	payload:
//	  string table   count, then per string: length + bytes
//	  NC records     count, then per NC:
//	    suffix ref, class byte, single byte, 6 eval uvarints,
//	    regex count + token-form regexes (flags byte, token count,
//	      per token: kind head byte + kind-specific payload),
//	    program count + wire programs (see internal/match WireProgram)
//
// Regexes serialize as rex tokens, not source strings: decoding
// reconstructs them through the rex constructors (which re-validate the
// token sequence) with no regex-syntax parsing at all. Their JSON
// source form renders lazily and deterministically from the tokens, so
// the byte-identity guarantee below is unaffected.
//
// The fingerprint is the same corpus identity extract.Corpus serves in
// its X-Hoiho-Corpus header; Decode recomputes it from the decoded NCs
// and fails on mismatch. The checksum covers the whole payload —
// including the program table and eval counters the fingerprint does
// not — so any single corrupted bit fails the load before anything is
// parsed. The string table is written in first-use order of a
// deterministic record walk, so equal corpora encode byte-identically
// and fingerprints are reproducible.
package corpusbin

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"

	"hoiho/internal/core"
	"hoiho/internal/match"
	"hoiho/internal/rex"
)

// Magic prefixes every HBC file: "HBC" plus a format version byte.
// Format sniffers (extract.Load) match on the three-byte prefix so an
// unsupported future version reports a version error, not "not JSON".
var Magic = [4]byte{'H', 'B', 'C', 0x01}

// headerLen is magic + fingerprint + checksum.
const headerLen = 4 + 8 + 8

// maxSectionBytes caps what any single decoded section may allocate,
// independently of the input's own length prefixes: a hostile count or
// length can never force an allocation larger than this before the
// surrounding data proves it honest. It matches extract.Load's input
// cap so a maximal legitimate corpus still decodes.
const maxSectionBytes = 64 << 20

// IsHBC reports whether data begins with the HBC magic prefix (any
// version).
func IsHBC(data []byte) bool {
	return len(data) >= 3 && data[0] == 'H' && data[1] == 'B' && data[2] == 'C'
}

// PeekFingerprint reads the corpus fingerprint from an HBC header
// without decoding the records. The payload checksum is still verified
// (one FNV pass, no allocation), so a truncated or bit-flipped corpus
// is rejected here exactly as Decode would reject it; what Peek skips
// is only the parse itself. The cluster rollout coordinator uses this
// to learn the identity of a corpus it is about to ship N times without
// paying N+1 full decodes.
func PeekFingerprint(data []byte) (uint64, error) {
	if !IsHBC(data) || len(data) < headerLen {
		return 0, fmt.Errorf("corpusbin: peek: not an HBC corpus (missing magic)")
	}
	if data[3] != Magic[3] {
		return 0, fmt.Errorf("corpusbin: peek: unsupported HBC version %d (this build reads %d)", data[3], Magic[3])
	}
	wantSum := binary.LittleEndian.Uint64(data[12:])
	if got := checksum(data[headerLen:]); got != wantSum {
		return 0, fmt.Errorf("corpusbin: peek: payload checksum mismatch (corrupt corpus): got %016x want %016x", got, wantSum)
	}
	return binary.LittleEndian.Uint64(data[4:]), nil
}

// PeekFingerprintFile reads path and peeks its fingerprint. Every
// failure — an unreadable file, an empty file, a header truncated below
// headerLen, a corrupt payload — comes back as an error naming the
// path, never as a panic; the rollout journal uses this to identify the
// corpora it has on disk after a coordinator restart.
func PeekFingerprintFile(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("corpusbin: peek %s: %w", path, err)
	}
	fp, err := PeekFingerprint(data)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	return fp, nil
}

// NCRecord pairs a convention with the wire form of its compiled
// matcher for encoding.
type NCRecord struct {
	NC       *core.NC
	Programs []match.WireProgram
}

// Decoded is the result of a successful Decode: the conventions in
// encoded order and, aligned with them, each one's reconstructed match
// engine, ready to serve without recompilation.
type Decoded struct {
	NCs         []*core.NC
	Engines     []*match.Engine
	Fingerprint uint64
}

// stringTable interns strings in first-use order during encoding.
type stringTable struct {
	ids  map[string]uint64
	strs []string
}

func (t *stringTable) ref(s string) uint64 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := uint64(len(t.strs))
	t.ids[s] = id
	t.strs = append(t.strs, s)
	return id
}

// Encode writes the corpus in HBC form. The record order is preserved
// (callers pass suffix-sorted lists, matching the JSON form), and every
// walk below is deterministic, so equal corpora encode byte-identically.
func Encode(w io.Writer, recs []NCRecord) error {
	// Presized for the common shape (a few strings and ~100 encoded
	// bytes per record): map rehashes and body regrowth were measurable
	// on the delta-apply path, which re-encodes the full target file.
	tab := &stringTable{ids: make(map[string]uint64, 4*len(recs))}
	body := make([]byte, 0, 4096+128*len(recs))
	body = binary.AppendUvarint(body, uint64(len(recs)))
	for i, rec := range recs {
		var err error
		body, err = appendRecord(body, tab, i, rec)
		if err != nil {
			return err
		}
	}

	payload := make([]byte, 0, len(body)+16*len(tab.strs))
	payload = binary.AppendUvarint(payload, uint64(len(tab.strs)))
	for _, s := range tab.strs {
		payload = binary.AppendUvarint(payload, uint64(len(s)))
		payload = append(payload, s...)
	}
	payload = append(payload, body...)

	ncs := make([]*core.NC, len(recs))
	for i, rec := range recs {
		ncs[i] = rec.NC
	}
	hdr := make([]byte, headerLen)
	copy(hdr, Magic[:])
	binary.LittleEndian.PutUint64(hdr[4:], core.FingerprintNCs(ncs))
	binary.LittleEndian.PutUint64(hdr[12:], checksum(payload))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("corpusbin: encode: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("corpusbin: encode: %w", err)
	}
	return nil
}

// appendRecord serializes one NC record — suffix ref, class, single
// flag, eval counters, token-form regexes, wire programs — into body,
// interning strings through tab. It is the single record layout shared
// by the full corpus encoder and the HBD delta encoder, so a record
// inserted by a delta is byte-compatible with the full-corpus form.
func appendRecord(body []byte, tab *stringTable, i int, rec NCRecord) ([]byte, error) {
	nc := rec.NC
	if nc == nil || nc.Suffix == "" {
		return nil, fmt.Errorf("corpusbin: encode: record %d has no suffix", i)
	}
	body = binary.AppendUvarint(body, tab.ref(nc.Suffix))
	body = append(body, byte(nc.Class))
	single := byte(0)
	if nc.Single {
		single = 1
	}
	body = append(body, single)
	for _, v := range [6]int{nc.Eval.TP, nc.Eval.FP, nc.Eval.FN, nc.Eval.Matches, nc.Eval.UniqueTP, nc.Eval.UniqueExtract} {
		if v < 0 {
			return nil, fmt.Errorf("corpusbin: encode: nc %s: negative eval counter", nc.Suffix)
		}
		body = binary.AppendUvarint(body, uint64(v))
	}
	body = binary.AppendUvarint(body, uint64(len(nc.Regexes)))
	for j, r := range nc.Regexes {
		var err error
		body, err = appendRegex(body, tab, nc.Suffix, j, r)
		if err != nil {
			return nil, err
		}
	}
	body = binary.AppendUvarint(body, uint64(len(rec.Programs)))
	for _, p := range rec.Programs {
		var err error
		body, err = appendProgram(body, tab, nc.Suffix, p, len(nc.Regexes))
		if err != nil {
			return nil, err
		}
	}
	return body, nil
}

// regex flags.
const rexFlagLeftOpen = 1 << 0

// token head byte: the rex.Kind in the low 3 bits, the Alt opt marker
// above it.
const (
	tokKindMask = 0x7
	tokFlagOpt  = 1 << 3
)

// appendRegex serializes one regex in token form.
func appendRegex(body []byte, tab *stringTable, suffix string, j int, r *rex.Regex) ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("corpusbin: encode: nc %s: regex %d is nil", suffix, j)
	}
	flags := byte(0)
	if r.LeftOpen() {
		flags |= rexFlagLeftOpen
	}
	body = append(body, flags)
	toks := r.Tokens()
	body = binary.AppendUvarint(body, uint64(len(toks)))
	for _, t := range toks {
		if t.Kind > rex.KindCaptureAlpha {
			return nil, fmt.Errorf("corpusbin: encode: nc %s: regex %d: unknown token kind %d", suffix, j, t.Kind)
		}
		head := byte(t.Kind)
		if t.Opt {
			head |= tokFlagOpt
		}
		body = append(body, head)
		switch t.Kind {
		case rex.KindLit:
			body = binary.AppendUvarint(body, tab.ref(t.Lit))
		case rex.KindExcl:
			body = binary.AppendUvarint(body, tab.ref(t.Excl))
		case rex.KindClass:
			body = append(body, byte(t.Class))
		case rex.KindAlt:
			body = binary.AppendUvarint(body, uint64(len(t.Alts)))
			for _, a := range t.Alts {
				body = binary.AppendUvarint(body, tab.ref(a))
			}
		}
	}
	return body, nil
}

// opFlag bits packed next to the op kind in its head byte.
const (
	opFlagOpt     = 1 << 2
	opFlagCapture = 1 << 3
	opKindMask    = 0x3
)

// program flags.
const (
	progFlagLeftOpen = 1 << 0
	progFlagOracle   = 1 << 1
)

// wire op kinds, mirroring internal/match's opKind order.
const (
	wireOpLit  = 0
	wireOpSet  = 1
	wireOpExcl = 2
	wireOpAlt  = 3
)

func appendProgram(body []byte, tab *stringTable, suffix string, p match.WireProgram, numRegexes int) ([]byte, error) {
	if p.Index < 0 || p.Index >= numRegexes {
		return nil, fmt.Errorf("corpusbin: encode: nc %s: program index %d out of range", suffix, p.Index)
	}
	body = binary.AppendUvarint(body, uint64(p.Index))
	flags := byte(0)
	if p.LeftOpen {
		flags |= progFlagLeftOpen
	}
	if p.Oracle {
		flags |= progFlagOracle
	}
	body = append(body, flags)
	body = binary.AppendUvarint(body, uint64(len(p.Ops)))
	for _, o := range p.Ops {
		if o.Kind > wireOpAlt {
			return nil, fmt.Errorf("corpusbin: encode: nc %s: unknown op kind %d", suffix, o.Kind)
		}
		head := o.Kind
		if o.Opt {
			head |= opFlagOpt
		}
		if o.Capture {
			head |= opFlagCapture
		}
		body = append(body, head)
		switch o.Kind {
		case wireOpLit:
			body = binary.AppendUvarint(body, tab.ref(o.Lit))
		case wireOpSet, wireOpExcl:
			body = binary.AppendUvarint(body, o.Set[0])
			body = binary.AppendUvarint(body, o.Set[1])
		case wireOpAlt:
			body = binary.AppendUvarint(body, uint64(len(o.Alts)))
			for _, a := range o.Alts {
				body = binary.AppendUvarint(body, tab.ref(a))
			}
		}
	}
	return body, nil
}

func checksum(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

// decoder is a bounds-checked cursor over the payload. Every read
// method fails closed with an error naming the section and offset —
// decode never panics on any input, however corrupt.
type decoder struct {
	data []byte
	off  int
}

func (d *decoder) remaining() int { return len(d.data) - d.off }

func (d *decoder) errf(format string, args ...any) error {
	return fmt.Errorf("corpusbin: decode: offset %d: %s", d.off, fmt.Sprintf(format, args...))
}

func (d *decoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, d.errf("%s: truncated or overlong varint", what)
	}
	d.off += n
	return v, nil
}

// count reads a length-prefix and validates it against both the bytes
// actually remaining (each counted item costs at least minItemBytes of
// input) and the per-section allocation cap, so a hostile prefix can
// never force a giant allocation.
func (d *decoder) count(what string, minItemBytes, itemSize int) (int, error) {
	v, err := d.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > uint64(d.remaining()/minItemBytes) {
		return 0, d.errf("%s: count %d exceeds remaining input", what, v)
	}
	if v > uint64(maxSectionBytes/itemSize) {
		return 0, d.errf("%s: count %d exceeds section cap", what, v)
	}
	return int(v), nil
}

func (d *decoder) bytes(n int, what string) ([]byte, error) {
	if n < 0 || n > d.remaining() {
		return nil, d.errf("%s: %d bytes wanted, %d remain", what, n, d.remaining())
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) byteVal(what string) (byte, error) {
	if d.remaining() < 1 {
		return 0, d.errf("%s: truncated", what)
	}
	b := d.data[d.off]
	d.off++
	return b, nil
}

func (d *decoder) str(table []string, what string) (string, error) {
	ref, err := d.uvarint(what)
	if err != nil {
		return "", err
	}
	if ref >= uint64(len(table)) {
		return "", d.errf("%s: string ref %d out of range (table has %d)", what, ref, len(table))
	}
	return table[ref], nil
}

// Decode parses an HBC corpus, verifying the checksum before parsing
// and the fingerprint after, and reconstructs each NC's match engine
// from its serialized programs. Errors are fail-closed and descriptive;
// no input can make Decode panic (FuzzHBCDecode enforces this).
func Decode(data []byte) (*Decoded, error) {
	if len(data) > maxSectionBytes+headerLen {
		return nil, fmt.Errorf("corpusbin: decode: input exceeds %d-byte cap", maxSectionBytes)
	}
	if !IsHBC(data) || len(data) < headerLen {
		return nil, fmt.Errorf("corpusbin: decode: not an HBC corpus (missing magic)")
	}
	if data[3] != Magic[3] {
		return nil, fmt.Errorf("corpusbin: decode: unsupported HBC version %d (this build reads %d)", data[3], Magic[3])
	}
	wantFP := binary.LittleEndian.Uint64(data[4:])
	wantSum := binary.LittleEndian.Uint64(data[12:])
	payload := data[headerLen:]
	if got := checksum(payload); got != wantSum {
		return nil, fmt.Errorf("corpusbin: decode: payload checksum mismatch (corrupt corpus): got %016x want %016x", got, wantSum)
	}

	d := &decoder{data: payload}
	table, err := d.strTable()
	if err != nil {
		return nil, err
	}

	// NC records.
	nNCs, err := d.count("nc table", 10, 256)
	if err != nil {
		return nil, err
	}
	out := &Decoded{
		NCs:         make([]*core.NC, 0, nNCs),
		Engines:     make([]*match.Engine, 0, nNCs),
		Fingerprint: wantFP,
	}
	for i := 0; i < nNCs; i++ {
		rec, eng, err := d.decodeNC(table)
		if err != nil {
			return nil, fmt.Errorf("corpusbin: decode: nc %d: %w", i, err)
		}
		out.NCs = append(out.NCs, rec.NC)
		out.Engines = append(out.Engines, eng)
	}
	if d.remaining() != 0 {
		return nil, d.errf("%d trailing bytes after last record", d.remaining())
	}
	if got := core.FingerprintNCs(out.NCs); got != wantFP {
		return nil, fmt.Errorf("corpusbin: decode: fingerprint mismatch: decoded %016x, header %016x", got, wantFP)
	}
	return out, nil
}

// strTable reads the interned string table that opens every HBC and
// HBD payload. Each entry costs at least one byte of input (its length
// prefix); string headers are 16 bytes.
func (d *decoder) strTable() ([]string, error) {
	nStrs, err := d.count("string table", 1, 16)
	if err != nil {
		return nil, err
	}
	table := make([]string, nStrs)
	for i := range table {
		n, err := d.uvarint("string length")
		if err != nil {
			return nil, err
		}
		if n > uint64(d.remaining()) || n > maxSectionBytes {
			return nil, d.errf("string %d: length %d exceeds remaining input", i, n)
		}
		b, err := d.bytes(int(n), "string bytes")
		if err != nil {
			return nil, err
		}
		table[i] = string(b)
	}
	return table, nil
}

func (d *decoder) decodeNC(table []string) (NCRecord, *match.Engine, error) {
	var rec NCRecord
	nc := &core.NC{}
	var err error
	if nc.Suffix, err = d.str(table, "suffix"); err != nil {
		return rec, nil, err
	}
	if nc.Suffix == "" {
		return rec, nil, d.errf("empty suffix")
	}
	class, err := d.byteVal("class")
	if err != nil {
		return rec, nil, err
	}
	if class > byte(core.Good) {
		return rec, nil, d.errf("unknown class %d", class)
	}
	nc.Class = core.Classification(class)
	single, err := d.byteVal("single flag")
	if err != nil {
		return rec, nil, err
	}
	if single > 1 {
		return rec, nil, d.errf("invalid single flag %d", single)
	}
	nc.Single = single == 1
	evals := [6]*int{&nc.Eval.TP, &nc.Eval.FP, &nc.Eval.FN, &nc.Eval.Matches, &nc.Eval.UniqueTP, &nc.Eval.UniqueExtract}
	for _, dst := range evals {
		v, err := d.uvarint("eval counter")
		if err != nil {
			return rec, nil, err
		}
		if v > 1<<31-1 {
			return rec, nil, d.errf("eval counter %d out of range", v)
		}
		*dst = int(v)
	}

	nRx, err := d.count("regex list", 1, 8)
	if err != nil {
		return rec, nil, err
	}
	nc.Regexes = make([]*rex.Regex, 0, nRx)
	for j := 0; j < nRx; j++ {
		r, err := d.decodeRegex(table)
		if err != nil {
			return rec, nil, fmt.Errorf("corpusbin: decode: regex %d: %w", j, err)
		}
		nc.Regexes = append(nc.Regexes, r)
	}

	nProgs, err := d.count("program list", 3, 64)
	if err != nil {
		return rec, nil, err
	}
	if nProgs > nRx {
		return rec, nil, d.errf("%d programs for %d regexes", nProgs, nRx)
	}
	progs := make([]match.WireProgram, 0, nProgs)
	for j := 0; j < nProgs; j++ {
		p, err := d.decodeProgram(table)
		if err != nil {
			return rec, nil, err
		}
		progs = append(progs, p)
	}
	eng, err := match.EngineFromWire(progs, nc.Regexes)
	if err != nil {
		return rec, nil, d.errf("nc %s: %v", nc.Suffix, err)
	}
	rec.NC = nc
	rec.Programs = progs
	return rec, eng, nil
}

// decodeRegex reads one token-form regex and rebuilds it through the
// rex constructors, which re-validate the token sequence (exactly one
// capture, at most one ".+"), so a corrupt or hostile record cannot
// smuggle in a regex the learner could never have produced.
func (d *decoder) decodeRegex(table []string) (*rex.Regex, error) {
	flags, err := d.byteVal("regex flags")
	if err != nil {
		return nil, err
	}
	if flags&^byte(rexFlagLeftOpen) != 0 {
		return nil, d.errf("unknown regex flags %#x", flags)
	}
	nToks, err := d.count("token list", 1, 80)
	if err != nil {
		return nil, err
	}
	toks := make([]rex.Token, 0, nToks)
	for i := 0; i < nToks; i++ {
		head, err := d.byteVal("token head")
		if err != nil {
			return nil, err
		}
		if head&^byte(tokKindMask|tokFlagOpt) != 0 {
			return nil, d.errf("unknown token flags %#x", head)
		}
		kind := rex.Kind(head & tokKindMask)
		if kind > rex.KindCaptureAlpha {
			return nil, d.errf("unknown token kind %d", kind)
		}
		opt := head&tokFlagOpt != 0
		if opt && kind != rex.KindAlt {
			return nil, d.errf("opt flag on non-alternation token kind %d", kind)
		}
		t := rex.Token{Kind: kind, Opt: opt}
		switch kind {
		case rex.KindLit:
			if t.Lit, err = d.str(table, "token literal"); err != nil {
				return nil, err
			}
		case rex.KindExcl:
			if t.Excl, err = d.str(table, "token exclusion"); err != nil {
				return nil, err
			}
			if t.Excl == "" {
				return nil, d.errf("empty exclusion class")
			}
		case rex.KindClass:
			class, err := d.byteVal("token class")
			if err != nil {
				return nil, err
			}
			if class > byte(rex.ClassAlnum) {
				return nil, d.errf("unknown character class %d", class)
			}
			t.Class = rex.Class(class)
		case rex.KindAlt:
			nAlts, err := d.count("token alt list", 1, 16)
			if err != nil {
				return nil, err
			}
			t.Alts = make([]string, 0, nAlts)
			for a := 0; a < nAlts; a++ {
				s, err := d.str(table, "token alt")
				if err != nil {
					return nil, err
				}
				t.Alts = append(t.Alts, s)
			}
		}
		toks = append(toks, t)
	}
	var r *rex.Regex
	if flags&rexFlagLeftOpen != 0 {
		r, err = rex.NewOpen(toks...)
	} else {
		r, err = rex.New(toks...)
	}
	if err != nil {
		return nil, d.errf("invalid token sequence: %v", err)
	}
	return r, nil
}

func (d *decoder) decodeProgram(table []string) (match.WireProgram, error) {
	var p match.WireProgram
	idx, err := d.uvarint("program index")
	if err != nil {
		return p, err
	}
	if idx > 1<<20 {
		return p, d.errf("program index %d out of range", idx)
	}
	p.Index = int(idx)
	flags, err := d.byteVal("program flags")
	if err != nil {
		return p, err
	}
	if flags&^byte(progFlagLeftOpen|progFlagOracle) != 0 {
		return p, d.errf("unknown program flags %#x", flags)
	}
	p.LeftOpen = flags&progFlagLeftOpen != 0
	p.Oracle = flags&progFlagOracle != 0
	nOps, err := d.count("op list", 2, 64)
	if err != nil {
		return p, err
	}
	p.Ops = make([]match.WireOp, 0, nOps)
	for i := 0; i < nOps; i++ {
		head, err := d.byteVal("op head")
		if err != nil {
			return p, err
		}
		if head&^byte(opKindMask|opFlagOpt|opFlagCapture) != 0 {
			return p, d.errf("unknown op flags %#x", head)
		}
		o := match.WireOp{
			Kind:    head & opKindMask,
			Opt:     head&opFlagOpt != 0,
			Capture: head&opFlagCapture != 0,
		}
		switch o.Kind {
		case wireOpLit:
			if o.Lit, err = d.str(table, "op literal"); err != nil {
				return p, err
			}
		case wireOpSet, wireOpExcl:
			if o.Set[0], err = d.uvarint("op set low"); err != nil {
				return p, err
			}
			if o.Set[1], err = d.uvarint("op set high"); err != nil {
				return p, err
			}
		case wireOpAlt:
			nAlts, err := d.count("alt list", 1, 16)
			if err != nil {
				return p, err
			}
			o.Alts = make([]string, 0, nAlts)
			for a := 0; a < nAlts; a++ {
				s, err := d.str(table, "alt")
				if err != nil {
					return p, err
				}
				o.Alts = append(o.Alts, s)
			}
		}
		p.Ops = append(p.Ops, o)
	}
	return p, nil
}
