package psl

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPublicSuffixBasic(t *testing.T) {
	l := Default()
	cases := []struct {
		domain, suffix string
	}{
		{"equinix.com", "com"},
		{"sgw.equinix.com", "com"},
		{"example.org.nz", "org.nz"},
		{"luckie.org.nz", "org.nz"},
		{"nts.ch", "ch"},
		{"antel.net.uy", "net.uy"},
		{"akl-ix.nz", "nz"},
		{"foo.blogspot.com", "blogspot.com"},
		{"a.b.c.co.uk", "co.uk"},
		{"ba07.mctn.nb.aliant.net", "net"},
	}
	for _, c := range cases {
		got, _ := l.PublicSuffix(c.domain)
		if got != c.suffix {
			t.Errorf("PublicSuffix(%q) = %q, want %q", c.domain, got, c.suffix)
		}
	}
}

func TestRegisteredDomain(t *testing.T) {
	l := Default()
	cases := []struct {
		domain, reg string
		ok          bool
	}{
		{"equinix.com", "equinix.com", true},
		{"p714.sgw.equinix.com", "equinix.com", true},
		{"ge0-2.01.p.ost.ch.as15576.nts.ch", "nts.ch", true},
		{"mlg4bras1-be127-605.antel.net.uy", "antel.net.uy", true},
		{"as24940.akl-ix.nz", "akl-ix.nz", true},
		{"gw-as20732.init7.net", "init7.net", true},
		{"com", "", false},
		{"org.nz", "", false},
		{"", "", false},
		{"UPPER.Example.COM.", "example.com", true},
	}
	for _, c := range cases {
		got, ok := l.RegisteredDomain(c.domain)
		if got != c.reg || ok != c.ok {
			t.Errorf("RegisteredDomain(%q) = %q,%v want %q,%v", c.domain, got, ok, c.reg, c.ok)
		}
	}
}

func TestWildcardAndException(t *testing.T) {
	l := Default()
	// *.ck: every child of ck is a public suffix, except www.ck.
	if s, _ := l.PublicSuffix("foo.anything.ck"); s != "anything.ck" {
		t.Errorf("wildcard: got %q", s)
	}
	if reg, ok := l.RegisteredDomain("foo.anything.ck"); !ok || reg != "foo.anything.ck" {
		t.Errorf("wildcard reg: got %q,%v", reg, ok)
	}
	if s, _ := l.PublicSuffix("www.ck"); s != "ck" {
		t.Errorf("exception: got %q", s)
	}
	if reg, ok := l.RegisteredDomain("www.ck"); !ok || reg != "www.ck" {
		t.Errorf("exception reg: got %q,%v", reg, ok)
	}
	if reg, ok := l.RegisteredDomain("foo.www.ck"); !ok || reg != "www.ck" {
		t.Errorf("exception child reg: got %q,%v", reg, ok)
	}
	// Multi-label wildcard with exception.
	if s, _ := l.PublicSuffix("x.north.kawasaki.jp"); s != "north.kawasaki.jp" {
		t.Errorf("kawasaki wildcard: got %q", s)
	}
	if reg, ok := l.RegisteredDomain("a.city.kawasaki.jp"); !ok || reg != "city.kawasaki.jp" {
		t.Errorf("kawasaki exception: got %q,%v", reg, ok)
	}
}

func TestImplicitStarRule(t *testing.T) {
	l := Default()
	// "zz" is not on the embedded list: the TLD itself is the suffix.
	s, explicit := l.PublicSuffix("example.zz")
	if s != "zz" || explicit {
		t.Errorf("implicit rule: got %q explicit=%v", s, explicit)
	}
	if reg, ok := l.RegisteredDomain("www.example.zz"); !ok || reg != "example.zz" {
		t.Errorf("implicit reg: got %q,%v", reg, ok)
	}
}

func TestParseErrorsAndComments(t *testing.T) {
	in := `
// a comment
com
net  trailing junk ignored

org
`
	l, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d, want 3", l.Len())
	}
	if _, err := FromRules(""); err == nil {
		t.Error("empty rule should error")
	}
	if _, err := FromRules("a..b"); err == nil {
		t.Error("empty label should error")
	}
}

func TestGroupByRegisteredDomain(t *testing.T) {
	l := Default()
	hosts := []string{
		"p714.sgw.equinix.com",
		"24482-fr5-ix.equinix.com",
		"ge0-2.01.p.ost.ch.as15576.nts.ch",
		"as24940.akl-ix.nz",
		"com", // dropped: bare suffix
	}
	g := l.GroupByRegisteredDomain(hosts)
	if len(g) != 3 {
		t.Fatalf("groups = %d, want 3: %v", len(g), g)
	}
	if len(g["equinix.com"]) != 2 {
		t.Errorf("equinix.com bucket = %v", g["equinix.com"])
	}
	if len(g["nts.ch"]) != 1 || len(g["akl-ix.nz"]) != 1 {
		t.Errorf("unexpected buckets: %v", g)
	}
}

func TestSuffixesRoundTrip(t *testing.T) {
	l, err := FromRules("com", "org.nz", "*.ck", "!www.ck")
	if err != nil {
		t.Fatal(err)
	}
	got := l.Suffixes()
	want := []string{"!www.ck", "*.ck", "com", "org.nz"}
	if len(got) != len(want) {
		t.Fatalf("Suffixes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Suffixes = %v, want %v", got, want)
		}
	}
}

// Property: RegisteredDomain(h) is always a suffix of h, contains the
// public suffix as its own suffix, and has exactly one more label than
// the public suffix.
func TestRegisteredDomainInvariants(t *testing.T) {
	l := Default()
	f := func(a, b, c uint8) bool {
		labels := []string{
			string(rune('a' + a%26)),
			string(rune('a'+b%26)) + "x",
			[]string{"com", "org.nz", "ch", "zz", "anything.ck"}[c%5],
		}
		h := strings.Join(labels, ".")
		reg, ok := l.RegisteredDomain(h)
		if !ok {
			return false
		}
		if !strings.HasSuffix(h, reg) {
			return false
		}
		suffix, _ := l.PublicSuffix(h)
		if !strings.HasSuffix(reg, suffix) {
			return false
		}
		return strings.Count(reg, ".") == strings.Count(suffix, ".")+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRegisteredDomain(b *testing.B) {
	l := Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.RegisteredDomain("te0-0-24.01.p.bre.ch.as15576.nts.ch")
	}
}

// Property: RegisteredDomainStart agrees with RegisteredDomain on every
// normalized input, across normal, wildcard, exception, and implicit
// rules, including degenerate shapes (bare TLDs, empty labels, public
// suffixes themselves).
func TestRegisteredDomainStartEquivalence(t *testing.T) {
	lists := map[string]*List{
		"default": Default(),
		"mixed": mustFromRules(t, "com", "org.nz", "*.ck", "!www.ck",
			"deep.rule.zz", "*.wild.qq"),
	}
	hosts := []string{
		"", "com", "a.com", "b.a.com", "x.org.nz", "org.nz", "nz",
		"anything.ck", "sub.anything.ck", "www.ck", "sub.www.ck",
		"x.deep.rule.zz", "deep.rule.zz", "rule.zz", "zz",
		"a.wild.qq", "b.a.wild.qq", "wild.qq", "qq",
		"a..com", "..com", ".com", "a.b", "b", "no-dots",
		"x.y.z.w.v.u.t.com",
	}
	for name, l := range lists {
		for _, h := range hosts {
			if h != normalize(h) {
				continue // Start requires normalized input by contract
			}
			wantReg, wantOK := l.RegisteredDomain(h)
			start, ok := l.RegisteredDomainStart(h)
			if ok != wantOK {
				t.Errorf("%s: RegisteredDomainStart(%q) ok=%v, RegisteredDomain ok=%v",
					name, h, ok, wantOK)
				continue
			}
			if ok && h[start:] != wantReg {
				t.Errorf("%s: RegisteredDomainStart(%q) = %q, RegisteredDomain = %q",
					name, h, h[start:], wantReg)
			}
		}
	}
}

func TestRegisteredDomainStartRandomized(t *testing.T) {
	l := Default()
	f := func(a, b, c, d uint8) bool {
		parts := make([]string, 0, 4)
		for _, v := range []uint8{a, b} {
			if v%3 != 0 {
				parts = append(parts, string(rune('a'+v%26)))
			}
		}
		parts = append(parts, string(rune('a'+c%26))+"9")
		parts = append(parts, []string{"com", "org.nz", "ch", "zz", "anything.ck", "www.ck"}[d%6])
		h := strings.Join(parts, ".")
		wantReg, wantOK := l.RegisteredDomain(h)
		start, ok := l.RegisteredDomainStart(h)
		if ok != wantOK {
			return false
		}
		return !ok || h[start:] == wantReg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRegisteredDomainStartAllocs(t *testing.T) {
	l := Default()
	host := "te0-0-24.01.p.bre.ch.as15576.nts.ch"
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := l.RegisteredDomainStart(host); !ok {
			t.Fatal("no registered domain")
		}
	})
	if allocs != 0 {
		t.Fatalf("RegisteredDomainStart allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestHasRuleBeneath(t *testing.T) {
	l := mustFromRules(t, "com", "org.nz", "*.ck", "!www.ck", "deep.rule.zz")
	cases := []struct {
		suffix string
		want   bool
	}{
		{"com", false},
		{"org.nz", false},
		{"nz", true},       // org.nz lies beneath
		{"ck", true},       // both *.ck (wildcard rooted at ck) and !www.ck
		{"rule.zz", true},  // deep.rule.zz lies beneath
		{"zz", true},       // deep.rule.zz lies beneath
		{"ule.zz", false},  // label-boundary, not substring, matching
		{"x.com", false},
		{"", false},
	}
	for _, c := range cases {
		if got := l.HasRuleBeneath(c.suffix); got != c.want {
			t.Errorf("HasRuleBeneath(%q) = %v, want %v", c.suffix, got, c.want)
		}
	}
}

func mustFromRules(t *testing.T, rules ...string) *List {
	t.Helper()
	l, err := FromRules(rules...)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func BenchmarkRegisteredDomainStart(b *testing.B) {
	l := Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.RegisteredDomainStart("te0-0-24.01.p.bre.ch.as15576.nts.ch")
	}
}
