package psl

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPublicSuffixBasic(t *testing.T) {
	l := Default()
	cases := []struct {
		domain, suffix string
	}{
		{"equinix.com", "com"},
		{"sgw.equinix.com", "com"},
		{"example.org.nz", "org.nz"},
		{"luckie.org.nz", "org.nz"},
		{"nts.ch", "ch"},
		{"antel.net.uy", "net.uy"},
		{"akl-ix.nz", "nz"},
		{"foo.blogspot.com", "blogspot.com"},
		{"a.b.c.co.uk", "co.uk"},
		{"ba07.mctn.nb.aliant.net", "net"},
	}
	for _, c := range cases {
		got, _ := l.PublicSuffix(c.domain)
		if got != c.suffix {
			t.Errorf("PublicSuffix(%q) = %q, want %q", c.domain, got, c.suffix)
		}
	}
}

func TestRegisteredDomain(t *testing.T) {
	l := Default()
	cases := []struct {
		domain, reg string
		ok          bool
	}{
		{"equinix.com", "equinix.com", true},
		{"p714.sgw.equinix.com", "equinix.com", true},
		{"ge0-2.01.p.ost.ch.as15576.nts.ch", "nts.ch", true},
		{"mlg4bras1-be127-605.antel.net.uy", "antel.net.uy", true},
		{"as24940.akl-ix.nz", "akl-ix.nz", true},
		{"gw-as20732.init7.net", "init7.net", true},
		{"com", "", false},
		{"org.nz", "", false},
		{"", "", false},
		{"UPPER.Example.COM.", "example.com", true},
	}
	for _, c := range cases {
		got, ok := l.RegisteredDomain(c.domain)
		if got != c.reg || ok != c.ok {
			t.Errorf("RegisteredDomain(%q) = %q,%v want %q,%v", c.domain, got, ok, c.reg, c.ok)
		}
	}
}

func TestWildcardAndException(t *testing.T) {
	l := Default()
	// *.ck: every child of ck is a public suffix, except www.ck.
	if s, _ := l.PublicSuffix("foo.anything.ck"); s != "anything.ck" {
		t.Errorf("wildcard: got %q", s)
	}
	if reg, ok := l.RegisteredDomain("foo.anything.ck"); !ok || reg != "foo.anything.ck" {
		t.Errorf("wildcard reg: got %q,%v", reg, ok)
	}
	if s, _ := l.PublicSuffix("www.ck"); s != "ck" {
		t.Errorf("exception: got %q", s)
	}
	if reg, ok := l.RegisteredDomain("www.ck"); !ok || reg != "www.ck" {
		t.Errorf("exception reg: got %q,%v", reg, ok)
	}
	if reg, ok := l.RegisteredDomain("foo.www.ck"); !ok || reg != "www.ck" {
		t.Errorf("exception child reg: got %q,%v", reg, ok)
	}
	// Multi-label wildcard with exception.
	if s, _ := l.PublicSuffix("x.north.kawasaki.jp"); s != "north.kawasaki.jp" {
		t.Errorf("kawasaki wildcard: got %q", s)
	}
	if reg, ok := l.RegisteredDomain("a.city.kawasaki.jp"); !ok || reg != "city.kawasaki.jp" {
		t.Errorf("kawasaki exception: got %q,%v", reg, ok)
	}
}

func TestImplicitStarRule(t *testing.T) {
	l := Default()
	// "zz" is not on the embedded list: the TLD itself is the suffix.
	s, explicit := l.PublicSuffix("example.zz")
	if s != "zz" || explicit {
		t.Errorf("implicit rule: got %q explicit=%v", s, explicit)
	}
	if reg, ok := l.RegisteredDomain("www.example.zz"); !ok || reg != "example.zz" {
		t.Errorf("implicit reg: got %q,%v", reg, ok)
	}
}

func TestParseErrorsAndComments(t *testing.T) {
	in := `
// a comment
com
net  trailing junk ignored

org
`
	l, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d, want 3", l.Len())
	}
	if _, err := FromRules(""); err == nil {
		t.Error("empty rule should error")
	}
	if _, err := FromRules("a..b"); err == nil {
		t.Error("empty label should error")
	}
}

func TestGroupByRegisteredDomain(t *testing.T) {
	l := Default()
	hosts := []string{
		"p714.sgw.equinix.com",
		"24482-fr5-ix.equinix.com",
		"ge0-2.01.p.ost.ch.as15576.nts.ch",
		"as24940.akl-ix.nz",
		"com", // dropped: bare suffix
	}
	g := l.GroupByRegisteredDomain(hosts)
	if len(g) != 3 {
		t.Fatalf("groups = %d, want 3: %v", len(g), g)
	}
	if len(g["equinix.com"]) != 2 {
		t.Errorf("equinix.com bucket = %v", g["equinix.com"])
	}
	if len(g["nts.ch"]) != 1 || len(g["akl-ix.nz"]) != 1 {
		t.Errorf("unexpected buckets: %v", g)
	}
}

func TestSuffixesRoundTrip(t *testing.T) {
	l, err := FromRules("com", "org.nz", "*.ck", "!www.ck")
	if err != nil {
		t.Fatal(err)
	}
	got := l.Suffixes()
	want := []string{"!www.ck", "*.ck", "com", "org.nz"}
	if len(got) != len(want) {
		t.Fatalf("Suffixes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Suffixes = %v, want %v", got, want)
		}
	}
}

// Property: RegisteredDomain(h) is always a suffix of h, contains the
// public suffix as its own suffix, and has exactly one more label than
// the public suffix.
func TestRegisteredDomainInvariants(t *testing.T) {
	l := Default()
	f := func(a, b, c uint8) bool {
		labels := []string{
			string(rune('a' + a%26)),
			string(rune('a'+b%26)) + "x",
			[]string{"com", "org.nz", "ch", "zz", "anything.ck"}[c%5],
		}
		h := strings.Join(labels, ".")
		reg, ok := l.RegisteredDomain(h)
		if !ok {
			return false
		}
		if !strings.HasSuffix(h, reg) {
			return false
		}
		suffix, _ := l.PublicSuffix(h)
		if !strings.HasSuffix(reg, suffix) {
			return false
		}
		return strings.Count(reg, ".") == strings.Count(suffix, ".")+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRegisteredDomain(b *testing.B) {
	l := Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.RegisteredDomain("te0-0-24.01.p.bre.ch.as15576.nts.ch")
	}
}
