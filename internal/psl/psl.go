// Package psl implements the Mozilla Public Suffix List algorithm
// (https://publicsuffix.org/list/), which Hoiho uses to group router
// hostnames by the registered domain suffix under which an operator
// chooses its naming convention (paper §3).
//
// A List is built from rules of three kinds:
//
//   - normal rules ("com", "org.nz") name a public suffix;
//   - wildcard rules ("*.ck") make every direct child a public suffix;
//   - exception rules ("!www.ck") override a wildcard.
//
// Lookup follows the canonical algorithm: the longest matching rule wins,
// exception rules beat all others, and an unlisted TLD is treated as a
// public suffix (the implicit "*" rule).
package psl

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// List is a compiled public suffix list. The zero value is not usable;
// construct one with Parse, Default, or FromRules.
type List struct {
	// rules maps a rule's label sequence (reversed, dot-joined) to its kind.
	rules map[string]ruleKind
	// maxLabels is the largest number of labels in any rule, bounding lookups.
	maxLabels int

	// beneath holds every proper label-boundary tail of every rule key —
	// the set of suffixes with an explicit rule strictly beneath them.
	// Built lazily by HasRuleBeneath; guarded by beneathOnce.
	beneathOnce sync.Once
	beneath     map[string]struct{}
}

type ruleKind uint8

const (
	ruleNormal ruleKind = iota
	ruleWildcard
	ruleException
)

// Parse reads a public suffix list in the standard text format: one rule
// per line, // comments, blank lines ignored. Both the ICANN and private
// sections are honored (the distinction does not matter for grouping).
func Parse(r io.Reader) (*List, error) {
	l := &List{rules: make(map[string]ruleKind)}
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		// Rules end at the first whitespace.
		if i := strings.IndexAny(line, " \t"); i >= 0 {
			line = line[:i]
		}
		if err := l.addRule(line); err != nil {
			return nil, fmt.Errorf("psl: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("psl: %w", err)
	}
	return l, nil
}

// FromRules builds a list from explicit rule strings, e.g.
// FromRules("com", "org.nz", "*.ck", "!www.ck"). It is convenient for
// tests and synthetic topologies.
func FromRules(rules ...string) (*List, error) {
	l := &List{rules: make(map[string]ruleKind)}
	for _, r := range rules {
		if err := l.addRule(r); err != nil {
			return nil, err
		}
	}
	return l, nil
}

var (
	defaultOnce sync.Once
	defaultList *List
)

// Default returns a list compiled from the embedded snapshot of the
// public suffix list (see snapshot.go), sufficient for the suffixes used
// throughout this repository and its experiments. The snapshot is
// parsed once and the compiled list shared: a List is immutable after
// Parse (the lazy tails index builds under its own sync.Once), and
// corpus construction calls Default on every load, where re-parsing
// the snapshot was a measurable slice of cold start.
func Default() *List {
	defaultOnce.Do(func() {
		l, err := Parse(strings.NewReader(snapshot))
		if err != nil {
			//hoiho:panic-ok invariant on embedded data: the compiled-in PSL snapshot failing to parse means the binary itself is broken
			panic("psl: embedded snapshot invalid: " + err.Error())
		}
		defaultList = l
	})
	return defaultList
}

func (l *List) addRule(rule string) error {
	kind := ruleNormal
	switch {
	case strings.HasPrefix(rule, "!"):
		kind = ruleException
		rule = rule[1:]
	case strings.HasPrefix(rule, "*."):
		kind = ruleWildcard
		rule = rule[2:]
	case rule == "*":
		kind = ruleWildcard
		rule = ""
	}
	rule = strings.ToLower(strings.TrimSuffix(rule, "."))
	if rule == "" && kind != ruleWildcard {
		return fmt.Errorf("empty rule")
	}
	labels := strings.Split(rule, ".")
	for _, lab := range labels {
		if lab == "" && rule != "" {
			return fmt.Errorf("rule %q has empty label", rule)
		}
	}
	n := len(labels)
	if kind == ruleWildcard {
		n++ // the wildcard label itself
	}
	if n > l.maxLabels {
		l.maxLabels = n
	}
	l.rules[rule] = kind
	return nil
}

// PublicSuffix returns the public suffix of domain and whether the match
// came from an explicit rule (as opposed to the implicit "*" fallback).
// The domain must be a normalized hostname; a trailing dot is tolerated.
func (l *List) PublicSuffix(domain string) (suffix string, explicit bool) {
	domain = normalize(domain)
	if domain == "" {
		return "", false
	}
	labels := strings.Split(domain, ".")
	// Walk from the most specific candidate suffix to the least.
	// Track the best (longest) match.
	bestLen := 0 // number of labels in the winning suffix
	bestExplicit := false
	for i := 0; i < len(labels); i++ {
		cand := strings.Join(labels[i:], ".")
		kind, ok := l.rules[cand]
		if !ok {
			continue
		}
		switch kind {
		case ruleException:
			// Exception: the public suffix is the rule minus its
			// leftmost label. This always wins.
			n := len(labels) - i - 1
			if n <= 0 {
				return "", false
			}
			return strings.Join(labels[i+1:], "."), true
		case ruleWildcard:
			// Wildcard matches one extra label to the left, if present.
			n := len(labels) - i + 1
			if i == 0 {
				n = len(labels) // cannot extend beyond the domain
			}
			if n > bestLen {
				bestLen, bestExplicit = n, true
			}
		case ruleNormal:
			n := len(labels) - i
			if n > bestLen {
				bestLen, bestExplicit = n, true
			}
		}
	}
	if bestLen == 0 {
		// Implicit "*" rule: the TLD is a public suffix.
		return labels[len(labels)-1], false
	}
	if bestLen >= len(labels) {
		return domain, bestExplicit
	}
	return strings.Join(labels[len(labels)-bestLen:], "."), bestExplicit
}

// RegisteredDomain returns the registrable domain (public suffix plus one
// label, often called eTLD+1) for domain. ok is false when the domain is
// itself a public suffix or is empty.
func (l *List) RegisteredDomain(domain string) (reg string, ok bool) {
	domain = normalize(domain)
	if domain == "" {
		return "", false
	}
	suffix, _ := l.PublicSuffix(domain)
	if suffix == domain {
		return "", false
	}
	rest := strings.TrimSuffix(domain, "."+suffix)
	if rest == domain {
		return "", false
	}
	i := strings.LastIndexByte(rest, '.')
	return rest[i+1:] + "." + suffix, true
}

// RegisteredDomainStart is the allocation-free form of RegisteredDomain:
// it returns the byte offset at which the registrable domain of domain
// begins, so callers slice the input instead of receiving a joined copy.
// Unlike RegisteredDomain it does not normalize: domain must already be
// lowercase with no surrounding whitespace and no trailing dot (the form
// normalize produces). ok is false exactly when RegisteredDomain's ok
// would be false on the same normalized input.
func (l *List) RegisteredDomainStart(domain string) (start int, ok bool) {
	if domain == "" {
		return 0, false
	}
	n := strings.Count(domain, ".") + 1
	// Walk candidate suffixes from most specific (label 0) to least,
	// tracking the longest match in labels, exactly as PublicSuffix does.
	// Candidates with more labels than any rule cannot match and are
	// skipped without probing.
	bestLen := 0
	off := 0
	for i := 0; i < n; i++ {
		if n-i <= l.maxLabels {
			switch kind, ok := l.rules[domain[off:]]; {
			case !ok:
			case kind == ruleException:
				// Exception: the public suffix is the rule minus its
				// leftmost label, so the registered domain is the rule
				// itself — unless nothing remains.
				if n-i-1 <= 0 {
					return 0, false
				}
				return off, true
			case kind == ruleWildcard:
				m := n - i + 1
				if i == 0 {
					m = n
				}
				if m > bestLen {
					bestLen = m
				}
			default: // ruleNormal
				if m := n - i; m > bestLen {
					bestLen = m
				}
			}
		}
		j := strings.IndexByte(domain[off:], '.')
		if j < 0 {
			break
		}
		off += j + 1
	}
	if bestLen == 0 {
		bestLen = 1 // implicit "*" rule: the TLD is a public suffix
	}
	if bestLen >= n {
		return 0, false // the domain is itself a public suffix
	}
	return labelStart(domain, n-bestLen-1), true
}

// labelStart returns the byte offset of label k (0-based from the left).
// k must be less than the number of labels in domain.
func labelStart(domain string, k int) int {
	off := 0
	for ; k > 0; k-- {
		off += strings.IndexByte(domain[off:], '.') + 1
	}
	return off
}

// HasRuleBeneath reports whether any explicit rule lies strictly beneath
// suffix: a rule whose labels extend suffix to the left (its key ends in
// "."+suffix), or a wildcard rooted at suffix itself ("*.suffix", stored
// under the key suffix). When no rule lies beneath a corpus's indexed
// suffixes, probing the suffix index directly at label boundaries is
// equivalent to a registered-domain walk, which is how extract earns its
// fast path.
//
// The first call builds a tails index over the rule set (every proper
// label-boundary tail of every rule key), so corpus indexing — which
// asks this once per suffix — pays one pass over the rules instead of
// one per query. That pass matters: it is a measurable slice of corpus
// cold-start time.
func (l *List) HasRuleBeneath(suffix string) bool {
	if suffix == "" {
		return false
	}
	if kind, ok := l.rules[suffix]; ok && kind == ruleWildcard {
		return true
	}
	l.beneathOnce.Do(func() {
		tails := make(map[string]struct{}, len(l.rules))
		for r := range l.rules {
			for {
				dot := strings.IndexByte(r, '.')
				if dot < 0 {
					break
				}
				r = r[dot+1:]
				tails[r] = struct{}{}
			}
		}
		l.beneath = tails
	})
	_, ok := l.beneath[suffix]
	return ok
}

// GroupByRegisteredDomain buckets hostnames by their registrable domain.
// Hostnames with no registrable domain (bare TLDs, empty strings) are
// dropped. Bucket ordering within a suffix preserves input order; the
// returned map's keys can be sorted by the caller for determinism.
func (l *List) GroupByRegisteredDomain(hostnames []string) map[string][]string {
	groups := make(map[string][]string)
	for _, h := range hostnames {
		if reg, ok := l.RegisteredDomain(h); ok {
			groups[reg] = append(groups[reg], h)
		}
	}
	return groups
}

// Suffixes returns all explicit rules, sorted, primarily for debugging
// and tests.
func (l *List) Suffixes() []string {
	out := make([]string, 0, len(l.rules))
	for r, k := range l.rules {
		switch k {
		case ruleWildcard:
			if r == "" {
				out = append(out, "*")
			} else {
				out = append(out, "*."+r)
			}
		case ruleException:
			out = append(out, "!"+r)
		default:
			out = append(out, r)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of explicit rules in the list.
func (l *List) Len() int { return len(l.rules) }

func normalize(domain string) string {
	domain = strings.ToLower(strings.TrimSpace(domain))
	domain = strings.TrimSuffix(domain, ".")
	return domain
}
