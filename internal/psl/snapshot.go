package psl

// snapshot is an embedded subset of the Mozilla Public Suffix List
// (https://publicsuffix.org/list/), trimmed to the effective TLDs that
// appear in this repository's experiments, examples, and tests. The full
// list can be supplied at runtime via Parse; the algorithm is identical.
const snapshot = `
// ===BEGIN ICANN DOMAINS===

// generic TLDs
com
net
org
edu
gov
mil
int
info
biz
name

// infrastructure
arpa
in-addr.arpa
ip6.arpa

// country-code TLDs used in the paper and experiments
ad
ae
ar
com.ar
net.ar
at
co.at
or.at
au
com.au
net.au
org.au
be
br
com.br
net.br
org.br
ca
nb.ca
on.ca
qc.ca
ch
cl
cn
com.cn
net.cn
cz
de
dk
es
com.es
fi
fr
gr
hk
com.hk
hu
id
ie
il
co.il
in
co.in
it
jp
ac.jp
co.jp
ne.jp
or.jp
kr
co.kr
lu
mx
com.mx
my
com.my
nl
no
nz
ac.nz
co.nz
geek.nz
gen.nz
govt.nz
maori.nz
net.nz
org.nz
school.nz
pl
com.pl
net.pl
pt
ro
rs
ru
se
sg
com.sg
si
sk
th
co.th
tr
com.tr
tw
com.tw
ua
com.ua
net.ua
uk
ac.uk
co.uk
gov.uk
net.uk
org.uk
us
uy
com.uy
net.uy
org.uy
za
co.za
net.za

// wildcard and exception rules (kept for algorithm coverage)
*.ck
!www.ck
*.bd
*.kawasaki.jp
!city.kawasaki.jp

// ===END ICANN DOMAINS===
// ===BEGIN PRIVATE DOMAINS===

// private-section examples exercised in tests
blogspot.com
github.io
s3.amazonaws.com

// ===END PRIVATE DOMAINS===
`
