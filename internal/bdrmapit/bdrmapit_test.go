package bdrmapit

import (
	"context"
	"net/netip"
	"testing"

	"hoiho/internal/asn"
	"hoiho/internal/bgp"
	"hoiho/internal/core"
	"hoiho/internal/extract"
	"hoiho/internal/itdk"
	"hoiho/internal/traceroute"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

// figure1Graph builds the paper's figure-1 situation: provider X (100)
// supplies the /30 for its link to customer Y (200); traceroute shows
// Y's border router answering with an X-numbered address.
//
//	vp -> 10.0.0.1 (X core) -> 10.0.1.2 (Y border, X-numbered)
//	   -> 10.1.0.1 (Y core) -> 10.1.0.9 (dest, Y)
func figure1Graph(t *testing.T, hostnames map[netip.Addr]string) *itdk.Graph {
	t.Helper()
	table := &bgp.Table{}
	for _, e := range []struct {
		p string
		o asn.ASN
	}{
		{"10.0.0.0/16", 100},
		{"10.1.0.0/16", 200},
	} {
		if err := table.Announce(netip.MustParsePrefix(e.p), e.o); err != nil {
			t.Fatal(err)
		}
	}
	al := itdk.NewAliases()
	al.Assign(addr("10.0.0.1"), 0)
	al.Assign(addr("10.0.1.2"), 1)
	al.Assign(addr("10.1.0.1"), 2)
	al.Assign(addr("10.1.0.9"), 2)
	corpus := &traceroute.Corpus{}
	corpus.Add(traceroute.Path{
		VP:  "vp",
		Dst: addr("10.1.0.9"),
		Hops: []traceroute.Hop{
			{Addr: addr("10.0.0.1")},
			{Addr: addr("10.0.1.2")},
			{Addr: addr("10.1.0.1")},
			{Addr: addr("10.1.0.9")},
		},
		Reached: true,
	})
	ptr := func(a netip.Addr) string { return hostnames[a] }
	return itdk.BuildGraph(corpus, al, table, ptr)
}

func TestAnnotateFigure1(t *testing.T) {
	g := figure1Graph(t, nil)
	an := &Annotator{Graph: g}
	ann := an.Annotate()
	// X's core stays X: its subsequent interface (10.0.1.2) is
	// X-numbered.
	if ann[0] != 100 {
		t.Errorf("X core annotated %v, want 100", ann[0])
	}
	// Y's border: subsequent interface is Y-numbered, so bdrmapIT
	// correctly crosses the border.
	if ann[1] != 200 {
		t.Errorf("Y border annotated %v, want 200", ann[1])
	}
	if ann[2] != 200 {
		t.Errorf("Y core annotated %v, want 200", ann[2])
	}
}

func TestAnnotateLastHopUsesDests(t *testing.T) {
	// Truncate the trace at Y's border (filtered destination): the border
	// has no subsequent interfaces and must fall back to destination ASNs.
	table := &bgp.Table{}
	if err := table.Announce(netip.MustParsePrefix("10.0.0.0/16"), 100); err != nil {
		t.Fatal(err)
	}
	if err := table.Announce(netip.MustParsePrefix("10.1.0.0/16"), 200); err != nil {
		t.Fatal(err)
	}
	al := itdk.NewAliases()
	al.Assign(addr("10.0.0.1"), 0)
	al.Assign(addr("10.0.1.2"), 1)
	corpus := &traceroute.Corpus{}
	corpus.Add(traceroute.Path{
		VP:  "vp",
		Dst: addr("10.1.0.9"),
		Hops: []traceroute.Hop{
			{Addr: addr("10.0.0.1")},
			{Addr: addr("10.0.1.2")},
		},
	})
	g := itdk.BuildGraph(corpus, al, table, nil)
	an := &Annotator{Graph: g}
	ann := an.Annotate()
	if ann[1] != 200 {
		t.Errorf("last-hop border annotated %v, want 200 (dest election)", ann[1])
	}
}

func TestAnnotateIXPSkipThrough(t *testing.T) {
	// X (100) peers with Y (200) over an IXP LAN (origin 500): X's port
	// must not be annotated with the IXP ASN, and the vote for X's port
	// resolves through the LAN to Y.
	table := &bgp.Table{}
	for _, e := range []struct {
		p string
		o asn.ASN
	}{
		{"10.0.0.0/16", 100},
		{"10.1.0.0/16", 200},
		{"10.5.0.0/24", 500},
	} {
		if err := table.Announce(netip.MustParsePrefix(e.p), e.o); err != nil {
			t.Fatal(err)
		}
	}
	al := itdk.NewAliases()
	al.Assign(addr("10.0.0.1"), 0) // X core
	al.Assign(addr("10.5.0.1"), 1) // X's LAN port
	al.Assign(addr("10.5.0.2"), 2) // Y's LAN port
	al.Assign(addr("10.1.0.1"), 3) // Y core
	al.Assign(addr("10.1.0.9"), 3)
	corpus := &traceroute.Corpus{}
	corpus.Add(traceroute.Path{
		VP:  "vp",
		Dst: addr("10.1.0.9"),
		Hops: []traceroute.Hop{
			{Addr: addr("10.0.0.1")},
			{Addr: addr("10.5.0.1")},
			{Addr: addr("10.5.0.2")},
			{Addr: addr("10.1.0.1")},
			{Addr: addr("10.1.0.9")},
		},
		Reached: true,
	})
	g := itdk.BuildGraph(corpus, al, table, nil)
	an := &Annotator{Graph: g, IXPs: map[asn.ASN]bool{500: true}}
	ann := an.Annotate()
	if ann[1] == 500 {
		t.Errorf("X port annotated with IXP ASN")
	}
	if ann[2] != 200 {
		t.Errorf("Y port annotated %v, want 200", ann[2])
	}
	if ann[3] != 200 {
		t.Errorf("Y core annotated %v, want 200", ann[3])
	}
}

func TestReasonable(t *testing.T) {
	g := figure1Graph(t, nil)
	orgs := asn.NewOrgs()
	orgs.Add("y-org", 200, 201)
	rel := asn.NewRelationships()
	rel.AddP2C(100, 200)
	rel.AddP2C(300, 200)
	an := &Annotator{Graph: g, Orgs: orgs, Rel: rel}
	// Node 1 (Y border): subs = {200}, dests = {200}.
	if !an.Reasonable(200, 1) {
		t.Error("exact match should be reasonable")
	}
	if !an.Reasonable(201, 1) {
		t.Error("sibling of member should be reasonable")
	}
	if !an.Reasonable(300, 1) {
		t.Error("provider of member should be reasonable")
	}
	if !an.Reasonable(100, 1) {
		t.Error("100 provides 200: reasonable by the provider rule")
	}
	if an.Reasonable(999, 1) {
		t.Error("unrelated ASN should not be reasonable")
	}
	if an.Reasonable(asn.None, 1) {
		t.Error("None should not be reasonable")
	}
	if an.Reasonable(200, 42) {
		t.Error("unknown node should not be reasonable")
	}
}

func ncFor(t *testing.T, suffix, src string, class core.Classification) *core.NC {
	t.Helper()
	r, err := core.UnmarshalNCs([]byte(`[{"suffix":"` + suffix + `","regexes":["` + src + `"],"class":"` + class.String() + `"}]`))
	if err != nil {
		t.Fatal(err)
	}
	return r[0]
}

func TestAnnotateWithNCsUsesCorrectHostname(t *testing.T) {
	// Y's border carries an X-suffix hostname embedding Y's ASN; the
	// initial inference is already Y here, so make the alias split hide
	// the subsequent evidence from the INITIAL election but keep it for
	// the reasonableness test: instead, test the flip by giving node 1 a
	// hostname with ASN 200 and forcing the initial annotation to X via
	// an own-origin-only graph (no subsequent hops).
	table := &bgp.Table{}
	if err := table.Announce(netip.MustParsePrefix("10.0.0.0/16"), 100); err != nil {
		t.Fatal(err)
	}
	if err := table.Announce(netip.MustParsePrefix("10.1.0.0/16"), 200); err != nil {
		t.Fatal(err)
	}
	al := itdk.NewAliases()
	al.Assign(addr("10.0.0.1"), 0)
	al.Assign(addr("10.0.1.2"), 1)
	hostnames := map[netip.Addr]string{
		addr("10.0.1.2"): "as200-nyc-xe0.xnet.net",
	}
	corpus := &traceroute.Corpus{}
	// Two traces through the border toward different Y-prefix dests give
	// dest votes for 200 but no subsequent interface. A competing trace
	// toward X's own space keeps X in the dest votes so the initial
	// election is contested.
	corpus.Add(traceroute.Path{
		VP: "vp", Dst: addr("10.1.0.9"),
		Hops: []traceroute.Hop{{Addr: addr("10.0.0.1")}, {Addr: addr("10.0.1.2")}},
	})
	corpus.Add(traceroute.Path{
		VP: "vp", Dst: addr("10.0.9.9"),
		Hops: []traceroute.Hop{{Addr: addr("10.0.0.1")}, {Addr: addr("10.0.1.2")}},
	})
	g := itdk.BuildGraph(corpus, al, table, func(a netip.Addr) string { return hostnames[a] })
	rel := asn.NewRelationships()
	rel.AddP2C(100, 200)
	an := &Annotator{Graph: g, Rel: rel}
	nc := ncFor(t, "xnet.net", `^as(\\d+)-[a-z]+-[a-z]+\\d+\\.xnet\\.net$`, core.Good)
	res := an.AnnotateWithNCs(context.Background(), []*core.NC{nc})
	if res.Extractions != 1 {
		t.Fatalf("extractions = %d, want 1", res.Extractions)
	}
	if res.Annotations[1] != 200 {
		t.Errorf("node 1 annotated %v, want 200 (hostname evidence)", res.Annotations[1])
	}
	// If the initial inference already said 200, no decision is logged.
	if res.Initial[1] == 200 && len(res.Decisions) != 0 {
		t.Errorf("decision logged despite agreement: %+v", res.Decisions)
	}
	if res.Initial[1] != 200 && len(res.Decisions) != 1 {
		t.Errorf("decisions = %+v", res.Decisions)
	}
}

func TestAnnotateWithNCsRejectsStale(t *testing.T) {
	// The hostname embeds ASN 999, unrelated to anything the node's
	// topological state contains: the extraction must be rejected.
	hostnames := map[netip.Addr]string{
		addr("10.0.1.2"): "as999-nyc-xe0.xnet.net",
	}
	g := figure1Graph(t, hostnames)
	an := &Annotator{Graph: g}
	nc := ncFor(t, "xnet.net", `^as(\\d+)-[a-z]+-[a-z]+\\d+\\.xnet\\.net$`, core.Good)
	res := an.AnnotateWithNCs(context.Background(), []*core.NC{nc})
	if len(res.Decisions) != 1 {
		t.Fatalf("decisions = %+v", res.Decisions)
	}
	d := res.Decisions[0]
	if d.Used || d.Extracted != 999 || d.Initial != 200 {
		t.Errorf("decision = %+v", d)
	}
	if res.Annotations[1] != 200 {
		t.Errorf("stale hostname changed annotation to %v", res.Annotations[1])
	}
	if d.NCClass != core.Good {
		t.Errorf("NCClass = %v", d.NCClass)
	}
}

func TestAnnotateWithNCsNoHostnames(t *testing.T) {
	g := figure1Graph(t, nil)
	an := &Annotator{Graph: g}
	res := an.AnnotateWithNCs(context.Background(), nil)
	if res.Extractions != 0 || len(res.Decisions) != 0 {
		t.Errorf("unexpected extractions: %+v", res)
	}
	for id, a := range res.Initial {
		if res.Annotations[id] != a {
			t.Error("annotations changed without hostnames")
		}
	}
}

func TestMajority(t *testing.T) {
	if majority(map[asn.ASN]int{7: 2, 3: 2, 9: 1}) != 3 {
		t.Error("tie should pick lower ASN")
	}
	if majority(map[asn.ASN]int{7: 3, 3: 2}) != 7 {
		t.Error("majority wrong")
	}
}

// TestCorpusLookup pins the suffix-index semantics the annotator now
// inherits from extract.Corpus (formerly the private ncIndex).
func TestCorpusLookup(t *testing.T) {
	nc := ncFor(t, "xnet.net", `^as(\\d+)\\.xnet\\.net$`, core.Good)
	corpus := extract.New([]*core.NC{nc})
	if m, ok := corpus.Extract(context.Background(), "as100.xnet.net"); !ok || m.Digits != "100" {
		t.Errorf("extract = %+v,%v", m, ok)
	}
	// Suffix matches but regex does not.
	if _, ok := corpus.Extract(context.Background(), "foo.xnet.net"); ok {
		t.Error("non-matching hostname extracted")
	}
	if _, ok := corpus.Extract(context.Background(), "as100.other.net"); ok {
		t.Error("unknown suffix extracted")
	}
}
