// Package bdrmapit reimplements the core of bdrmapIT (Marder et al., IMC
// 2018), the graph-refinement router-ownership method that annotated the
// 2017-2020 ITDKs, plus the paper's §5 modification that evaluates ASNs
// extracted from hostnames against the router's topological state.
//
// For each alias-resolved node the annotator gathers the bdrmapIT state
// the paper names: the origin ASes of subsequent interfaces in traceroute
// paths, and the destination ASes whose traces traversed the node. The
// election prefers subsequent-interface origins (the supplying AS numbers
// the far side of an interconnection out of its own space, so the
// addresses after a border reveal the border's operator), falls back to
// destination ASes for path-terminal routers, and skips through IXP
// peering LANs the way bdrmapIT consumes IXP prefix lists.
package bdrmapit

import (
	"net/netip"
	"sort"

	"hoiho/internal/asn"
	"hoiho/internal/itdk"
)

// Annotator holds the inputs of a bdrmapIT run.
type Annotator struct {
	Graph *itdk.Graph
	Rel   *asn.Relationships
	Orgs  *asn.Orgs
	// IXPs flags the ASNs of IXP peering LANs (bdrmapIT consumes
	// PeeringDB/PCH prefix lists for this).
	IXPs map[asn.ASN]bool
	// Rounds bounds the refinement iterations (default 3).
	Rounds int
}

func (an *Annotator) rounds() int {
	if an.Rounds <= 0 {
		return 3
	}
	return an.Rounds
}

// Annotate runs the unmodified bdrmapIT inference: an initial election
// per node followed by refinement rounds that resolve votes through IXP
// LANs using neighbor annotations.
func (an *Annotator) Annotate() map[int]asn.ASN {
	ann := make(map[int]asn.ASN, len(an.Graph.Nodes))
	for round := 0; round < an.rounds(); round++ {
		changed := false
		for _, n := range an.Graph.Nodes {
			next := an.annotateNode(n, ann)
			if next != ann[n.ID] {
				ann[n.ID] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return ann
}

// annotateNode elects the owner of one node given the current round's
// annotations.
func (an *Annotator) annotateNode(n *itdk.Node, ann map[int]asn.ASN) asn.ASN {
	own := an.ownOrigin(n)

	// Point-to-point /30s the node itself sits on: a subsequent address
	// inside one of these is the far end of the node's own link. When
	// that far end's origin differs from the node's interface origins,
	// the node is crossing *up* into the supplying provider's space, and
	// the far origin says nothing about who operates this node (bdrmap's
	// link-partner reasoning).
	partners := make(map[netip.Prefix]bool)
	for _, a := range n.Ifaces {
		if a.Is4() {
			partners[netip.PrefixFrom(a, 30).Masked()] = true
		}
	}

	votes := make(map[asn.ASN]int)
	for _, b := range n.SubsAddrs() {
		w := n.Subs[b]
		origin := an.Graph.Origin(b)
		if origin == asn.None {
			continue
		}
		if an.IXPs[origin] {
			// Subsequent hop on an IXP LAN: vote for the member router's
			// annotation once known; the LAN's origin says nothing about
			// either side of the peering.
			if far := an.Graph.NodeOf(b); far != nil {
				if member := ann[far.ID]; member != asn.None && !an.IXPs[member] {
					votes[member] += w
				}
			}
			continue
		}
		if origin != own && b.Is4() && partners[netip.PrefixFrom(b, 30).Masked()] {
			continue // uplink partner: no evidence about this node
		}
		votes[origin] += w
	}
	if winner := an.elect(votes, own); winner != asn.None {
		return winner
	}

	// No usable subsequent evidence. A strict majority among the node's
	// own interface origins identifies the operator (routers hold far
	// more of their own addresses than supplier-assigned ones).
	ownVotes := make(map[asn.ASN]int)
	for _, a := range n.Ifaces {
		if origin := an.Graph.Origin(a); origin != asn.None && !an.IXPs[origin] {
			ownVotes[origin]++
		}
	}
	if winner, strict := strictMajority(ownVotes); strict {
		return winner
	}

	// Reason from the destinations probed through the node, as bdrmapIT
	// does for path-terminal routers.
	destVotes := make(map[asn.ASN]int, len(n.DestASNs))
	for a, c := range n.DestASNs {
		if !an.IXPs[a] {
			destVotes[a] = c
		}
	}
	if winner := an.elect(destVotes, own); winner != asn.None {
		return winner
	}
	if winner := an.elect(ownVotes, own); winner != asn.None {
		return winner
	}
	return own
}

// strictMajority returns the candidate whose count is at least two and
// strictly above every other candidate's.
func strictMajority(votes map[asn.ASN]int) (asn.ASN, bool) {
	var best asn.ASN
	bestN, secondN := 0, 0
	for a, c := range votes {
		switch {
		case c > bestN:
			best, secondN, bestN = a, bestN, c
		case c > secondN:
			secondN = c
		}
	}
	if bestN >= 2 && bestN > secondN {
		return best, true
	}
	return asn.None, false
}

// ownOrigin is the majority BGP origin among the node's own interfaces.
func (an *Annotator) ownOrigin(n *itdk.Node) asn.ASN {
	votes := make(map[asn.ASN]int)
	for _, a := range n.Ifaces {
		if origin := an.Graph.Origin(a); origin != asn.None {
			votes[origin]++
		}
	}
	return an.elect(votes, asn.None)
}

// elect picks the candidate with most votes; ties prefer a customer of
// ownOrigin (the AS the supplying network sold the address to), then
// siblings of ownOrigin, then the lower ASN.
func (an *Annotator) elect(votes map[asn.ASN]int, own asn.ASN) asn.ASN {
	if len(votes) == 0 {
		return asn.None
	}
	cands := make([]asn.ASN, 0, len(votes))
	for a := range votes {
		cands = append(cands, a)
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if votes[a] != votes[b] {
			return votes[a] > votes[b]
		}
		if own != asn.None && an.Rel != nil {
			ca, cb := an.Rel.IsProvider(own, a), an.Rel.IsProvider(own, b)
			if ca != cb {
				return ca
			}
		}
		return a < b
	})
	return cands[0]
}
