package bdrmapit

import (
	"context"
	"net/netip"
	"sort"

	"hoiho/internal/asn"
	"hoiho/internal/core"
	"hoiho/internal/extract"
	"hoiho/internal/itdk"
)

// Decision records how the modified bdrmapIT treated one interface whose
// hostname-extracted ASN differed from the initial inference (§5).
type Decision struct {
	Node      int
	Addr      netip.Addr
	Hostname  string
	Extracted asn.ASN
	Initial   asn.ASN
	Used      bool
	// NCClass is the quality class of the convention that produced the
	// extraction (§5 reports usage rates per class).
	NCClass core.Classification
}

// Result is the outcome of a modified-bdrmapIT run.
type Result struct {
	// Annotations are the final per-node owners.
	Annotations map[int]asn.ASN
	// Initial are the unmodified bdrmapIT owners.
	Initial map[int]asn.ASN
	// Decisions cover every interface whose extracted ASN differed from
	// the node's initial annotation.
	Decisions []Decision
	// Extractions counts interfaces with any hostname-extracted ASN.
	Extractions int
}

// AnnotateWithNCs indexes ncs into an extract.Corpus and runs the §5
// modification. It is a convenience wrapper around AnnotateWithCorpus;
// callers that already hold a Corpus (or want to share one between
// consumers) should use that directly.
func (an *Annotator) AnnotateWithNCs(ctx context.Context, ncs []*core.NC) *Result {
	return an.AnnotateWithCorpus(ctx, extract.New(ncs))
}

// AnnotateWithCorpus runs bdrmapIT, then re-evaluates every node with a
// hostname-extracted ASN per §5: an extracted ASN is used when it is
// reasonable — it matches, or is a sibling of, an ASN in the node's
// subsequent or destination ASN sets, or it is a provider of one of the
// ASes in those sets. Otherwise the hostname is deemed stale or a typo
// and the heuristic annotation stands.
func (an *Annotator) AnnotateWithCorpus(ctx context.Context, corpus *extract.Corpus) *Result {
	initial := an.Annotate()
	res := &Result{
		Annotations: make(map[int]asn.ASN, len(initial)),
		Initial:     initial,
	}
	for id, a := range initial {
		res.Annotations[id] = a
	}

	for _, n := range an.Graph.Nodes {
		// Collect extractions per interface.
		type ext struct {
			addr     netip.Addr
			host     string
			asn      asn.ASN
			class    core.Classification
			reasoned bool
		}
		var exts []ext
		for _, addr := range n.Ifaces {
			host := an.Graph.Hostnames[addr]
			if host == "" {
				continue
			}
			m, ok := corpus.Extract(ctx, host)
			if !ok {
				continue
			}
			exts = append(exts, ext{addr: addr, host: host, asn: m.ASN, class: m.Class})
		}
		if len(exts) == 0 {
			continue
		}
		res.Extractions += len(exts)

		base := initial[n.ID]
		used := make(map[asn.ASN]int)
		for i := range exts {
			e := &exts[i]
			if e.asn == base {
				continue // congruent with the inference: nothing to decide
			}
			reasonable := an.Reasonable(e.asn, n.ID)
			// Customer preference (bdrmap's principle): when the
			// extraction is merely the *provider* of an initial inference
			// that the topological state itself supports, the hostname is
			// the supplying network labelling its own ASN (figure 2), not
			// evidence of ownership. Keep the more specific AS.
			if reasonable && an.Rel != nil && an.Rel.IsProvider(e.asn, base) &&
				an.stateContains(n, base) {
				reasonable = false
			}
			res.Decisions = append(res.Decisions, Decision{
				Node:      n.ID,
				Addr:      e.addr,
				Hostname:  e.host,
				Extracted: e.asn,
				Initial:   base,
				Used:      reasonable,
				NCClass:   e.class,
			})
			if reasonable {
				used[e.asn]++
			}
		}
		if len(used) > 0 {
			res.Annotations[n.ID] = majority(used)
		}
	}
	return res
}

// stateContains reports whether a is in the node's subsequent-origin or
// destination ASN sets (directly or as a sibling).
func (an *Annotator) stateContains(n *itdk.Node, a asn.ASN) bool {
	if a == asn.None {
		return false
	}
	check := func(member asn.ASN) bool {
		return member == a || (an.Orgs != nil && an.Orgs.Siblings(a, member))
	}
	for _, b := range n.SubsAddrs() {
		if origin := an.Graph.Origin(b); origin != asn.None && check(origin) {
			return true
		}
	}
	for member := range n.DestASNs {
		if check(member) {
			return true
		}
	}
	return false
}

// Reasonable implements the §5 test for a node: the extracted ASN
// matches, or is a sibling of, a member of the node's subsequent or
// destination ASN sets, or is a provider of a member.
func (an *Annotator) Reasonable(extracted asn.ASN, nodeID int) bool {
	n := an.Graph.Node(nodeID)
	if n == nil || extracted == asn.None {
		return false
	}
	set := make(map[asn.ASN]bool)
	for _, b := range n.SubsAddrs() {
		if origin := an.Graph.Origin(b); origin != asn.None {
			set[origin] = true
		}
	}
	for a := range n.DestASNs {
		set[a] = true
	}
	for member := range set {
		if member == extracted {
			return true
		}
		if an.Orgs != nil && an.Orgs.Siblings(extracted, member) {
			return true
		}
		if an.Rel != nil && an.Rel.IsProvider(extracted, member) {
			return true
		}
	}
	return false
}

func majority(votes map[asn.ASN]int) asn.ASN {
	cands := make([]asn.ASN, 0, len(votes))
	for a := range votes {
		cands = append(cands, a)
	}
	sort.Slice(cands, func(i, j int) bool {
		if votes[cands[i]] != votes[cands[j]] {
			return votes[cands[i]] > votes[cands[j]]
		}
		return cands[i] < cands[j]
	})
	return cands[0]
}
