package bdrmapit

import (
	"context"
	"net/netip"
	"testing"

	"hoiho/internal/asn"
	"hoiho/internal/bgp"
	"hoiho/internal/core"
	"hoiho/internal/itdk"
	"hoiho/internal/traceroute"
)

func TestStrictMajority(t *testing.T) {
	cases := []struct {
		votes map[asn.ASN]int
		want  asn.ASN
		ok    bool
	}{
		{map[asn.ASN]int{100: 3, 200: 1}, 100, true},
		{map[asn.ASN]int{100: 2}, 100, true},
		{map[asn.ASN]int{100: 1}, asn.None, false},         // needs >= 2
		{map[asn.ASN]int{100: 2, 200: 2}, asn.None, false}, // tie
		{map[asn.ASN]int{}, asn.None, false},
	}
	for i, c := range cases {
		got, ok := strictMajority(c.votes)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("case %d: strictMajority = %v,%v want %v,%v", i, got, ok, c.want, c.ok)
		}
	}
}

// TestUplinkPartnerSkip: a border's subsequent hop into its provider's
// side of the shared /30 must not vote the provider onto the border.
func TestUplinkPartnerSkip(t *testing.T) {
	table := &bgp.Table{}
	if err := table.Announce(netip.MustParsePrefix("10.0.0.0/16"), 100); err != nil {
		t.Fatal(err)
	}
	if err := table.Announce(netip.MustParsePrefix("10.1.0.0/16"), 200); err != nil {
		t.Fatal(err)
	}
	al := itdk.NewAliases()
	// Y's border holds 10.0.1.2 (on the X-supplied /30 10.0.1.0/30) plus
	// two Y-numbered interfaces; the path ascends into X via the /30
	// partner 10.0.1.1.
	al.Assign(addr("10.1.0.1"), 0) // Y core
	al.Assign(addr("10.0.1.2"), 1) // Y border uplink iface (X-numbered)
	al.Assign(addr("10.1.0.5"), 1) // Y border loopback
	al.Assign(addr("10.1.0.9"), 1) // Y border second intra iface
	al.Assign(addr("10.0.1.1"), 2) // X border (far side of the /30)
	al.Assign(addr("10.0.0.1"), 3) // X core
	corpus := &traceroute.Corpus{}
	corpus.Add(traceroute.Path{
		VP: "vp-inside-Y", Dst: addr("10.0.9.9"),
		Hops: []traceroute.Hop{
			{Addr: addr("10.1.0.1")}, // Y core
			{Addr: addr("10.1.0.5")}, // Y border answers with its loopback
			{Addr: addr("10.0.1.1")}, // X border: /30 partner of 10.0.1.2
			{Addr: addr("10.0.0.1")}, // X core
		},
	})
	// A second probe enters the border on its uplink address so the
	// X-numbered interface joins the node.
	corpus.Add(traceroute.Path{
		VP: "vp-above", Dst: addr("10.1.9.9"),
		Hops: []traceroute.Hop{
			{Addr: addr("10.0.1.2")}, // Y border, supplier-numbered
			{Addr: addr("10.1.0.9")},
		},
	})
	g := itdk.BuildGraph(corpus, al, table, nil)
	an := &Annotator{Graph: g}
	ann := an.Annotate()
	// Node 1's only subsequent interfaces are the uplink partner
	// (10.0.1.1, skipped: no ownership evidence) and its own intra
	// address. Its own-interface strict majority (two Y addresses versus
	// one X) must keep it in Y despite the X-numbered uplink.
	if ann[1] != 200 {
		t.Errorf("Y border = %v, want 200", ann[1])
	}
	if ann[2] != 100 || ann[3] != 100 {
		t.Errorf("X side = %v/%v, want 100/100", ann[2], ann[3])
	}
	if ann[0] != 200 {
		t.Errorf("Y core = %v, want 200", ann[0])
	}
}

// TestRefinementConverges: annotation reaches a fixpoint within the
// default rounds on a chain topology.
func TestRefinementConverges(t *testing.T) {
	table := &bgp.Table{}
	for i, p := range []string{"10.0.0.0/16", "10.1.0.0/16", "10.2.0.0/16"} {
		if err := table.Announce(netip.MustParsePrefix(p), asn.ASN(100*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	al := itdk.NewAliases()
	al.Assign(addr("10.0.0.1"), 0)
	al.Assign(addr("10.0.1.2"), 1) // AS200's border, AS100-numbered
	al.Assign(addr("10.1.0.1"), 2)
	al.Assign(addr("10.1.1.2"), 3) // AS300's border, AS200-numbered
	al.Assign(addr("10.2.0.1"), 4)
	al.Assign(addr("10.2.0.9"), 4)
	corpus := &traceroute.Corpus{}
	corpus.Add(traceroute.Path{
		VP: "vp", Dst: addr("10.2.0.9"),
		Hops: []traceroute.Hop{
			{Addr: addr("10.0.0.1")},
			{Addr: addr("10.0.1.2")},
			{Addr: addr("10.1.0.1")},
			{Addr: addr("10.1.1.2")},
			{Addr: addr("10.2.0.1")},
			{Addr: addr("10.2.0.9")},
		},
		Reached: true,
	})
	g := itdk.BuildGraph(corpus, al, table, nil)
	a1 := (&Annotator{Graph: g, Rounds: 1}).Annotate()
	a3 := (&Annotator{Graph: g}).Annotate()
	a9 := (&Annotator{Graph: g, Rounds: 9}).Annotate()
	for id, v := range a3 {
		if a9[id] != v {
			t.Errorf("node %d not converged: rounds3=%v rounds9=%v", id, v, a9[id])
		}
	}
	_ = a1
	want := map[int]asn.ASN{0: 100, 1: 200, 2: 200, 3: 300, 4: 300}
	for id, w := range want {
		if a3[id] != w {
			t.Errorf("node %d = %v, want %v", id, a3[id], w)
		}
	}
}

// TestAnnotateEmptyGraph: no nodes, no panic.
func TestAnnotateEmptyGraph(t *testing.T) {
	g := itdk.BuildGraph(&traceroute.Corpus{}, itdk.NewAliases(), &bgp.Table{}, nil)
	an := &Annotator{Graph: g}
	if ann := an.Annotate(); len(ann) != 0 {
		t.Errorf("annotations for empty graph: %v", ann)
	}
	res := an.AnnotateWithNCs(context.Background(), nil)
	if res.Extractions != 0 {
		t.Error("extractions in empty graph")
	}
}

// TestCustomerPreferenceRefinement: an extraction that is the provider of
// a supported initial inference (the figure-2 supplier-labels-own-ASN
// case) is rejected, even though the plain §5 rule would accept it.
func TestCustomerPreferenceRefinement(t *testing.T) {
	hostnames := map[netip.Addr]string{
		// Supplier 100's own ASN on Y's (200) border.
		addr("10.0.1.2"): "01.r.nyc.abc.cust.as100.xnet.net",
	}
	g := figure1Graph(t, hostnames)
	rel := asn.NewRelationships()
	rel.AddP2C(100, 200)
	an := &Annotator{Graph: g, Rel: rel}
	nc := ncFor(t, "xnet.net", `cust\\.as(\\d+)\\.xnet\\.net$`, core.Poor)
	res := an.AnnotateWithNCs(context.Background(), []*core.NC{nc})
	if len(res.Decisions) != 1 {
		t.Fatalf("decisions = %+v", res.Decisions)
	}
	d := res.Decisions[0]
	// The plain rule accepts 100 (provider of 200, and 200 is in the
	// node's dest set); the customer preference must reject it.
	if !an.Reasonable(100, 1) {
		t.Fatal("test premise broken: 100 should pass the plain rule")
	}
	if d.Used {
		t.Errorf("figure-2 supplier extraction was used: %+v", d)
	}
	if res.Annotations[1] != 200 {
		t.Errorf("node flipped to %v", res.Annotations[1])
	}

	// Without relationships the refinement cannot apply, and the plain §5
	// rule is used verbatim (the paper's text): the extraction passes.
	an2 := &Annotator{Graph: figure1Graph(t, hostnames)}
	res2 := an2.AnnotateWithNCs(context.Background(), []*core.NC{nc})
	if len(res2.Decisions) != 1 {
		t.Fatalf("decisions = %+v", res2.Decisions)
	}
	if res2.Decisions[0].Used {
		t.Error("without Rel, the provider rule cannot fire either (no provider info): must reject")
	}
}
