package itdk

import (
	"net/netip"
	"sort"

	"hoiho/internal/asn"
	"hoiho/internal/bgp"
	"hoiho/internal/traceroute"
)

// Node is an alias-resolved router with the topological state bdrmapIT
// reasons over (§5 of the paper): the interfaces observed on it, the
// interfaces observed immediately after it in traceroute paths, and the
// ASes of destinations whose traces traversed it.
type Node struct {
	ID     int
	Ifaces []netip.Addr
	// Subs counts subsequent interfaces: Subs[b] is how many times an
	// interface of this node was immediately followed by address b.
	Subs map[netip.Addr]int
	// DestASNs counts the origin ASes of destinations probed through
	// this node.
	DestASNs map[asn.ASN]int
}

// SubsAddrs returns the subsequent interfaces, sorted.
func (n *Node) SubsAddrs() []netip.Addr {
	out := make([]netip.Addr, 0, len(n.Subs))
	for a := range n.Subs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Graph is the observed router-level graph.
type Graph struct {
	Nodes  []*Node // sorted by ID
	Table  *bgp.Table
	byID   map[int]*Node
	byAddr map[netip.Addr]*Node
	// Hostnames maps observed addresses to their PTR records ("" or
	// absent when unnamed).
	Hostnames map[netip.Addr]string
}

// Node returns the node with the given id, or nil.
func (g *Graph) Node(id int) *Node { return g.byID[id] }

// NodeOf returns the node holding addr, or nil.
func (g *Graph) NodeOf(addr netip.Addr) *Node { return g.byAddr[addr] }

// Origin is the BGP origin of addr per the graph's table.
func (g *Graph) Origin(addr netip.Addr) asn.ASN { return g.Table.Origin(addr) }

// BuildGraph assembles the observed graph from a traceroute corpus, an
// alias map, a BGP table, and a PTR lookup (may be nil). Only addresses
// observed in the corpus become part of the graph, as in the ITDK.
func BuildGraph(corpus *traceroute.Corpus, aliases *Aliases, table *bgp.Table, ptr func(netip.Addr) string) *Graph {
	g := &Graph{
		Table:     table,
		byID:      make(map[int]*Node),
		byAddr:    make(map[netip.Addr]*Node),
		Hostnames: make(map[netip.Addr]string),
	}
	node := func(addr netip.Addr) *Node {
		if n, ok := g.byAddr[addr]; ok {
			return n
		}
		id := aliases.NodeOf(addr)
		n, ok := g.byID[id]
		if !ok {
			n = &Node{ID: id, Subs: make(map[netip.Addr]int), DestASNs: make(map[asn.ASN]int)}
			g.byID[id] = n
		}
		n.Ifaces = append(n.Ifaces, addr)
		g.byAddr[addr] = n
		if ptr != nil {
			if h := ptr(addr); h != "" {
				g.Hostnames[addr] = h
			}
		}
		return n
	}
	for _, p := range corpus.Paths {
		dstASN := table.Origin(p.Dst)
		var prev *Node
		for _, h := range p.Hops {
			if !h.Responded() {
				prev = nil
				continue
			}
			cur := node(h.Addr)
			if dstASN != asn.None {
				cur.DestASNs[dstASN]++
			}
			if prev != nil && prev != cur {
				prev.Subs[h.Addr]++
			}
			prev = cur
		}
	}
	for _, n := range g.byID {
		sort.Slice(n.Ifaces, func(i, j int) bool { return n.Ifaces[i].Less(n.Ifaces[j]) })
		g.Nodes = append(g.Nodes, n)
	}
	sort.Slice(g.Nodes, func(i, j int) bool { return g.Nodes[i].ID < g.Nodes[j].ID })
	return g
}
