package itdk

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strings"

	"hoiho/internal/asn"
	"hoiho/internal/core"
)

// NodeRecord is one router in a published snapshot: its interfaces, PTR
// records, and the AS annotation a router-ownership method inferred.
type NodeRecord struct {
	ID        int
	Addrs     []netip.Addr
	Hostnames []string // aligned with Addrs; "" when unnamed
	ASN       asn.ASN  // training ASN; asn.None when uninferred
}

// Snapshot is an ITDK-style release: alias-resolved nodes annotated with
// inferred owners — the training data for Hoiho.
type Snapshot struct {
	// Name identifies the snapshot (e.g. "itdk-2020-01").
	Name string
	// Method names the annotation source ("rtaa", "bdrmapit",
	// "peeringdb").
	Method string
	Nodes  []NodeRecord
}

// FromGraph publishes a snapshot from an observed graph and per-node AS
// annotations.
func FromGraph(g *Graph, annotations map[int]asn.ASN, name, method string) *Snapshot {
	s := &Snapshot{Name: name, Method: method}
	for _, n := range g.Nodes {
		rec := NodeRecord{ID: n.ID, ASN: annotations[n.ID]}
		for _, a := range n.Ifaces {
			rec.Addrs = append(rec.Addrs, a)
			rec.Hostnames = append(rec.Hostnames, g.Hostnames[a])
		}
		s.Nodes = append(s.Nodes, rec)
	}
	return s
}

// TrainingItems extracts the (hostname, address, training ASN) items
// Hoiho learns from: every named interface on an annotated node.
func (s *Snapshot) TrainingItems() []core.Item {
	var items []core.Item
	for _, n := range s.Nodes {
		if n.ASN == asn.None {
			continue
		}
		for i, h := range n.Hostnames {
			if h == "" {
				continue
			}
			items = append(items, core.Item{Hostname: h, Addr: n.Addrs[i], ASN: n.ASN})
		}
	}
	return items
}

// NumInterfaces returns the total interface count.
func (s *Snapshot) NumInterfaces() int {
	n := 0
	for _, rec := range s.Nodes {
		n += len(rec.Addrs)
	}
	return n
}

// WriteTo serializes the snapshot in an ITDK-like text format:
//
//	# itdk <name> method=<method>
//	node N1: 10.0.0.1 10.0.0.5
//	node.AS N1 701
//	ptr 10.0.0.1 xe0.nyc.example.net
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	var n int64
	c, err := fmt.Fprintf(w, "# itdk %s method=%s\n", s.Name, s.Method)
	n += int64(c)
	if err != nil {
		return n, err
	}
	for _, rec := range s.Nodes {
		addrs := make([]string, len(rec.Addrs))
		for i, a := range rec.Addrs {
			addrs[i] = a.String()
		}
		c, err = fmt.Fprintf(w, "node N%d: %s\n", rec.ID, strings.Join(addrs, " "))
		n += int64(c)
		if err != nil {
			return n, err
		}
		if rec.ASN != asn.None {
			c, err = fmt.Fprintf(w, "node.AS N%d %d\n", rec.ID, rec.ASN)
			n += int64(c)
			if err != nil {
				return n, err
			}
		}
		for i, h := range rec.Hostnames {
			if h == "" {
				continue
			}
			c, err = fmt.Fprintf(w, "ptr %s %s\n", rec.Addrs[i], h)
			n += int64(c)
			if err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// Parse reads the WriteTo format.
func Parse(r io.Reader) (*Snapshot, error) {
	s := &Snapshot{}
	byID := make(map[int]*NodeRecord)
	ptrs := make(map[netip.Addr]string)
	var order []int
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case strings.HasPrefix(line, "# itdk "):
			fields := strings.Fields(line)
			if len(fields) >= 3 {
				s.Name = fields[2]
			}
			for _, f := range fields {
				if v, ok := strings.CutPrefix(f, "method="); ok {
					s.Method = v
				}
			}
		case strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "node.AS "):
			var id int
			var a uint32
			if _, err := fmt.Sscanf(line, "node.AS N%d %d", &id, &a); err != nil {
				return nil, fmt.Errorf("itdk: line %d: %w", lineno, err)
			}
			rec, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("itdk: line %d: node.AS for unknown node N%d", lineno, id)
			}
			rec.ASN = asn.ASN(a)
		case strings.HasPrefix(line, "node "):
			head, rest, ok := strings.Cut(line, ":")
			if !ok {
				return nil, fmt.Errorf("itdk: line %d: missing ':'", lineno)
			}
			var id int
			if _, err := fmt.Sscanf(head, "node N%d", &id); err != nil {
				return nil, fmt.Errorf("itdk: line %d: %w", lineno, err)
			}
			rec := &NodeRecord{ID: id}
			for _, as := range strings.Fields(rest) {
				addr, err := netip.ParseAddr(as)
				if err != nil {
					return nil, fmt.Errorf("itdk: line %d: %w", lineno, err)
				}
				rec.Addrs = append(rec.Addrs, addr)
			}
			byID[id] = rec
			order = append(order, id)
		case strings.HasPrefix(line, "ptr "):
			fields := strings.Fields(line)
			if len(fields) != 3 {
				return nil, fmt.Errorf("itdk: line %d: want ptr addr host", lineno)
			}
			addr, err := netip.ParseAddr(fields[1])
			if err != nil {
				return nil, fmt.Errorf("itdk: line %d: %w", lineno, err)
			}
			ptrs[addr] = fields[2]
		default:
			return nil, fmt.Errorf("itdk: line %d: unrecognized %q", lineno, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, id := range order {
		rec := byID[id]
		rec.Hostnames = make([]string, len(rec.Addrs))
		for i, a := range rec.Addrs {
			rec.Hostnames[i] = ptrs[a]
		}
		s.Nodes = append(s.Nodes, *rec)
	}
	sort.SliceStable(s.Nodes, func(i, j int) bool { return s.Nodes[i].ID < s.Nodes[j].ID })
	return s, nil
}
