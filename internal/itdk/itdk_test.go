package itdk

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"

	"hoiho/internal/asn"
	"hoiho/internal/topo"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func buildWorld(t testing.TB) (*topo.Internet, *Aliases) {
	t.Helper()
	in, err := topo.Build(topo.DefaultConfig(99))
	if err != nil {
		t.Fatal(err)
	}
	return in, TruthAliases(in)
}

func TestTruthAliases(t *testing.T) {
	in, al := buildWorld(t)
	if al.Len() != len(in.ByAddr) {
		t.Errorf("alias count %d != interface count %d", al.Len(), len(in.ByAddr))
	}
	for _, ifc := range in.Interfaces() {
		if al.NodeOf(ifc.Addr) != ifc.Router.ID {
			t.Fatalf("alias of %v wrong", ifc.Addr)
		}
	}
	// Unknown addresses get fresh singleton nodes, distinct each time.
	a := al.NodeOf(addr("203.0.113.1"))
	b := al.NodeOf(addr("203.0.113.2"))
	if a == b {
		t.Error("distinct unknown addrs share a node")
	}
	if al.NodeOf(addr("203.0.113.1")) != a {
		t.Error("repeat lookup must be stable")
	}
}

func TestDegrade(t *testing.T) {
	in, al := buildWorld(t)
	deg := al.Degrade(1, 0.5)
	if deg.Len() != al.Len() {
		t.Fatalf("degrade changed address count")
	}
	same, split := 0, 0
	for _, ifc := range in.Interfaces() {
		if deg.NodeOf(ifc.Addr) == ifc.Router.ID {
			same++
		} else {
			split++
		}
	}
	if same == 0 || split == 0 {
		t.Errorf("degrade(0.5) same=%d split=%d; want both nonzero", same, split)
	}
	// Roughly half (within generous bounds).
	frac := float64(same) / float64(same+split)
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("completeness fraction = %.2f, want ~0.5", frac)
	}
	// completeness=1 is the identity.
	full := al.Degrade(2, 1.0)
	for _, ifc := range in.Interfaces() {
		if full.NodeOf(ifc.Addr) != ifc.Router.ID {
			t.Fatal("degrade(1.0) changed aliases")
		}
	}
	// Determinism.
	d2 := al.Degrade(1, 0.5)
	for _, ifc := range in.Interfaces() {
		if deg.NodeOf(ifc.Addr) != d2.NodeOf(ifc.Addr) {
			t.Fatal("degrade not deterministic")
		}
	}
}

func TestBuildGraph(t *testing.T) {
	in, al := buildWorld(t)
	corpus := in.TraceAll()
	ptr := func(a netip.Addr) string {
		if ifc := in.Interface(a); ifc != nil {
			return ifc.Hostname
		}
		return ""
	}
	g := BuildGraph(corpus, al, in.Table, ptr)
	if len(g.Nodes) == 0 {
		t.Fatal("empty graph")
	}
	// Every graph interface was observed in the corpus and is indexed.
	obs := make(map[netip.Addr]bool)
	for _, a := range corpus.Addrs() {
		obs[a] = true
	}
	total := 0
	for _, n := range g.Nodes {
		total += len(n.Ifaces)
		for _, a := range n.Ifaces {
			if !obs[a] {
				t.Fatalf("graph iface %v not observed", a)
			}
			if g.NodeOf(a) != n {
				t.Fatalf("NodeOf(%v) inconsistent", a)
			}
		}
	}
	if total != len(obs) {
		t.Errorf("graph ifaces %d != observed %d", total, len(obs))
	}
	// Subsequent interfaces come from consecutive hops.
	subs := 0
	for _, n := range g.Nodes {
		subs += len(n.Subs)
		for a := range n.Subs {
			if g.NodeOf(a) == n {
				t.Error("self-loop in Subs")
			}
		}
	}
	if subs == 0 {
		t.Error("no subsequent interfaces recorded")
	}
	// Destination ASNs populated.
	withDest := 0
	for _, n := range g.Nodes {
		if len(n.DestASNs) > 0 {
			withDest++
		}
	}
	if withDest < len(g.Nodes)/2 {
		t.Errorf("only %d/%d nodes have dest ASNs", withDest, len(g.Nodes))
	}
	// Hostnames surfaced via ptr callback.
	if len(g.Hostnames) == 0 {
		t.Error("no hostnames in graph")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	in, al := buildWorld(t)
	corpus := in.TraceAll()
	g := BuildGraph(corpus, al, in.Table, func(a netip.Addr) string {
		if ifc := in.Interface(a); ifc != nil {
			return ifc.Hostname
		}
		return ""
	})
	ann := make(map[int]asn.ASN)
	for _, n := range g.Nodes {
		ann[n.ID] = g.Origin(n.Ifaces[0])
	}
	snap := FromGraph(g, ann, "itdk-test", "rtaa")
	if snap.NumInterfaces() == 0 {
		t.Fatal("empty snapshot")
	}
	items := snap.TrainingItems()
	if len(items) == 0 {
		t.Fatal("no training items")
	}
	for _, it := range items {
		if it.Hostname == "" || it.ASN == asn.None {
			t.Fatalf("bad item %+v", it)
		}
	}
	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "itdk-test" || got.Method != "rtaa" {
		t.Errorf("header lost: %q %q", got.Name, got.Method)
	}
	if len(got.Nodes) != len(snap.Nodes) {
		t.Fatalf("node count %d != %d", len(got.Nodes), len(snap.Nodes))
	}
	if got.NumInterfaces() != snap.NumInterfaces() {
		t.Errorf("interface count changed")
	}
	if len(got.TrainingItems()) != len(items) {
		t.Errorf("training items %d != %d", len(got.TrainingItems()), len(items))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"node N1 10.0.0.1",          // missing colon
		"node Nx: 10.0.0.1",         // bad id
		"node N1: bogus",            // bad addr
		"node.AS N9 100",            // unknown node
		"ptr 10.0.0.1",              // short ptr
		"ptr bogus host.example",    // bad addr
		"garbage line",              // unknown
		"node.AS Nx 100\nnode N1: ", // bad node.AS
	}
	for _, b := range bad {
		if _, err := Parse(strings.NewReader(b)); err == nil {
			t.Errorf("Parse(%q) should error", b)
		}
	}
}

func TestTrainingItemsSkipUnannotated(t *testing.T) {
	s := &Snapshot{Nodes: []NodeRecord{
		{ID: 1, Addrs: []netip.Addr{addr("10.0.0.1")}, Hostnames: []string{"a.x.com"}, ASN: 0},
		{ID: 2, Addrs: []netip.Addr{addr("10.0.0.2")}, Hostnames: []string{""}, ASN: 100},
		{ID: 3, Addrs: []netip.Addr{addr("10.0.0.3")}, Hostnames: []string{"b.x.com"}, ASN: 200},
	}}
	items := s.TrainingItems()
	if len(items) != 1 || items[0].Hostname != "b.x.com" {
		t.Errorf("items = %+v", items)
	}
}

func BenchmarkBuildGraph(b *testing.B) {
	in, al := buildWorld(b)
	corpus := in.TraceAll()
	ptr := func(a netip.Addr) string {
		if ifc := in.Interface(a); ifc != nil {
			return ifc.Hostname
		}
		return ""
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildGraph(corpus, al, in.Table, ptr)
	}
}
