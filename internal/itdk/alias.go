// Package itdk assembles Internet Topology Data Kit style snapshots from
// traceroute corpora: alias-resolved router nodes, per-node topological
// state (subsequent interfaces and destination ASes), AS annotations from
// a router-ownership method, and the (hostname, training ASN) pairs Hoiho
// learns from.
package itdk

import (
	"math/rand"
	"net/netip"
	"sort"

	"hoiho/internal/topo"
)

// Aliases maps interface addresses to router node identifiers, the
// product of alias resolution (MIDAR et al. in the real ITDK).
type Aliases struct {
	byAddr map[netip.Addr]int
	next   int
}

// NewAliases returns an empty alias map.
func NewAliases() *Aliases {
	return &Aliases{byAddr: make(map[netip.Addr]int)}
}

// Assign places addr in node id.
func (a *Aliases) Assign(addr netip.Addr, id int) {
	a.byAddr[addr] = id
	if id >= a.next {
		a.next = id + 1
	}
}

// NodeOf returns the node holding addr. Unknown addresses are assigned a
// fresh singleton node (alias resolution never saw them), which is what
// the ITDK does for addresses observed only once.
func (a *Aliases) NodeOf(addr netip.Addr) int {
	if id, ok := a.byAddr[addr]; ok {
		return id
	}
	id := a.next
	a.next++
	a.byAddr[addr] = id
	return id
}

// Len returns the number of mapped addresses.
func (a *Aliases) Len() int { return len(a.byAddr) }

// TruthAliases builds the ground-truth alias map from a synthetic
// topology: every interface is bound to its true router.
func TruthAliases(in *topo.Internet) *Aliases {
	a := NewAliases()
	for _, ifc := range in.Interfaces() {
		a.Assign(ifc.Addr, ifc.Router.ID)
	}
	a.next = len(in.Routers)
	return a
}

// Degrade simulates incomplete alias resolution: each address stays
// correctly aliased with probability completeness, and otherwise becomes
// its own singleton node — the dominant failure mode of probe-based
// alias resolution, and the situation where ownership heuristics must
// reason from a single supplier-assigned address. The receiver is not
// modified.
func (a *Aliases) Degrade(seed int64, completeness float64) *Aliases {
	rng := rand.New(rand.NewSource(seed))
	out := NewAliases()
	// Deterministic iteration order.
	addrs := make([]netip.Addr, 0, len(a.byAddr))
	for addr := range a.byAddr {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
	next := a.next
	for _, addr := range addrs {
		if rng.Float64() < completeness {
			out.Assign(addr, a.byAddr[addr])
		} else {
			out.Assign(addr, next)
			next++
		}
	}
	out.next = next
	return out
}
