// Package topo synthesizes a router-level Internet with the properties
// the paper's pipeline depends on: a valley-free AS hierarchy, interdomain
// links numbered out of the supplying AS's address space (/30s, as in
// §2.1), per-operator hostname conventions that may embed neighbor or own
// ASNs in the table-1 styles, and realistic noise (stale names, typos,
// missing PTRs, IP-derived names). It stands in for the real Internet
// that CAIDA's Ark traceroutes measure when building the ITDK — the
// substitution DESIGN.md documents.
package topo

import (
	"net/netip"

	"hoiho/internal/asn"
	"hoiho/internal/bgp"
)

// Class categorizes an AS, mirroring the network classes the paper's
// validation spans (Tier-1, transit, access, stub, research & education,
// IXP).
type Class uint8

const (
	Tier1 Class = iota
	Transit
	Access
	REN
	Stub
	IXP
)

func (c Class) String() string {
	switch c {
	case Tier1:
		return "tier1"
	case Transit:
		return "transit"
	case Access:
		return "access"
	case REN:
		return "ren"
	case Stub:
		return "stub"
	default:
		return "ixp"
	}
}

// Style is a hostname-convention archetype from the paper's table 1.
type Style uint8

const (
	StyleNone    Style = iota // interfaces named without ASNs
	StyleSimple               // as<ASN>.<suffix>
	StyleStart                // as<ASN>-<pop>-<if>.<suffix>
	StyleEnd                  // <if>.<pop>.as<ASN>.<suffix>
	StyleBare                 // <ASN>.<pop><n>.<suffix>
	StyleComplex              // <if>.as<ASN>.<pop>.<suffix> (ASN mid-name)
)

func (s Style) String() string {
	switch s {
	case StyleSimple:
		return "simple"
	case StyleStart:
		return "start"
	case StyleEnd:
		return "end"
	case StyleBare:
		return "bare"
	case StyleComplex:
		return "complex"
	default:
		return "none"
	}
}

// Naming is an operator's hostname policy for the addresses it supplies.
type Naming struct {
	Style Style
	// LabelsNeighbor: the operator embeds the ASN of the neighbor
	// operating the router (figure 1). False means it embeds its own ASN
	// even on addresses supplied to neighbors (figure 2, nts.ch).
	LabelsNeighbor bool
	// Stale is the probability a neighbor-labelled hostname embeds an
	// outdated (wrong) ASN (Zhang et al. 2006; paper §6).
	Stale float64
	// Typo is the probability an embedded ASN suffers a single-character
	// typo (figure 3a).
	Typo float64
	// SiblingLabel is the probability the operator labels a port with a
	// sibling of the neighbor's ASN (the org's primary ASN).
	SiblingLabel float64
	// BarePrefix: a bare-style operator that sometimes prefixes the ASN
	// with a single letter (the paper's Equinix "p714"/"s714" ports).
	BarePrefix bool
	// Missing is the probability an interface has no PTR record.
	Missing float64
}

// AS is one autonomous system in the synthetic Internet.
type AS struct {
	ASN    asn.ASN
	Org    asn.OrgID
	Class  Class
	Name   string       // short operator name, e.g. "korvatel"
	Suffix string       // registered domain, e.g. "korvatel.net"
	Block  netip.Prefix // address block announced in BGP
	// Naming is nil when the operator does not run DNS for its addresses.
	Naming *Naming
	// IPNames: the operator names addresses after the IP (figure 3b),
	// common for access networks.
	IPNames bool
	// RespondsToProbes: destinations in this AS answer traceroute.
	RespondsToProbes bool

	Core    *Router
	Borders []*Router
	// Dest is the probed destination address (a loopback on Core).
	Dest netip.Addr
	// LAN is the peering LAN prefix for IXP ASes.
	LAN netip.Prefix

	alloc  *bgp.Allocator
	popSeq int
	// size is an abstract network-size score: providers are always
	// chosen from strictly larger networks, and attachment probability is
	// proportional to size, giving the AS graph its skewed degree
	// distribution.
	size float64
	// members lists an IXP's member ASes.
	members []*AS
}

// Members returns an IXP's member ASes (nil for non-IXPs).
func (a *AS) Members() []*AS { return a.members }

// Router is a router with ground-truth ownership.
type Router struct {
	ID     int
	Owner  asn.ASN
	Ifaces []*Interface
	// Loopback is the router's own-AS address, which it may use when
	// answering traceroute (Config.RespondLoopbackRate).
	Loopback *Interface
}

// Interface is an addressed router interface.
type Interface struct {
	Addr     netip.Addr
	Hostname string // "" when no PTR record exists
	Router   *Router
	// Supplier is the AS out of whose block the address was assigned —
	// the AS whose DNS names the address.
	Supplier asn.ASN
	// EmbeddedASN is the ground-truth ASN written into the hostname
	// (after stale substitution, before typos); asn.None when the
	// hostname embeds no ASN.
	EmbeddedASN asn.ASN
	// StaleName marks hostnames whose embedded ASN is wrong (stale).
	StaleName bool
}

// LinkKind distinguishes link roles.
type LinkKind uint8

const (
	LinkIntra LinkKind = iota // border <-> core inside one AS
	LinkInter                 // point-to-point interdomain /30
	LinkIXP                   // via an IXP peering LAN
)

// Link joins two interfaces.
type Link struct {
	A, B *Interface
	Kind LinkKind
}

// Other returns the far end of the link from r's interface, or nil when r
// is on neither end.
func (l *Link) Other(r *Router) *Interface {
	switch {
	case l.A.Router == r:
		return l.B
	case l.B.Router == r:
		return l.A
	default:
		return nil
	}
}

// Side returns r's own interface on the link, or nil.
func (l *Link) Side(r *Router) *Interface {
	switch {
	case l.A.Router == r:
		return l.A
	case l.B.Router == r:
		return l.B
	default:
		return nil
	}
}
