package topo

import (
	"fmt"
	"math/rand"
	"net/netip"
	"strings"

	"hoiho/internal/asn"
)

// Operator-name syllables and TLD pools for deterministic suffix
// generation.
var (
	nameOnsets  = []string{"b", "c", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z"}
	nameVowels  = []string{"a", "e", "i", "o", "u"}
	nameCodas   = []string{"n", "r", "l", "s", "x", "m", "t", ""}
	carrierTLDs = []string{"net", "com", "ch", "de", "fr", "pl", "nl", "net.uy", "co.uk", "com.br", "it", "se", "at"}
	ixpTLDs     = []string{"ch", "de", "nz", "net", "org", "fr", "at"}
	popCodes    = []string{
		"nyc", "lax", "sjc", "iad", "ord", "dfw", "sea", "mia", "atl", "den",
		"lhr", "fra", "ams", "cdg", "mad", "mil", "vie", "zrh", "arn", "waw",
		"syd", "akl", "tyo", "sin", "hkg", "icn", "bom", "gru", "scl", "mex",
	}
	ifTypes = []string{"xe", "ge", "te", "hu", "be", "po", "et"}
)

// genName deterministically produces an operator name (2-3 syllables).
func genName(rng *rand.Rand) string {
	var sb strings.Builder
	n := 2 + rng.Intn(2)
	for i := 0; i < n; i++ {
		sb.WriteString(nameOnsets[rng.Intn(len(nameOnsets))])
		sb.WriteString(nameVowels[rng.Intn(len(nameVowels))])
	}
	sb.WriteString(nameCodas[rng.Intn(len(nameCodas))])
	return sb.String()
}

// genSuffix produces the AS's registered domain.
func genSuffix(rng *rand.Rand, class Class, name string) string {
	if class == IXP {
		tld := ixpTLDs[rng.Intn(len(ixpTLDs))]
		switch rng.Intn(3) {
		case 0:
			return name + "-ix." + tld
		case 1:
			return name + "ix." + tld
		default:
			return "ix-" + name + "." + tld
		}
	}
	return name + "." + carrierTLDs[rng.Intn(len(carrierTLDs))]
}

// pop returns a deterministic POP code for an AS, cycling through the
// pool with a numeric disambiguator once the pool is exhausted.
func (a *AS) pop() string {
	p := popCodes[a.popSeq%len(popCodes)]
	cycle := a.popSeq / len(popCodes)
	a.popSeq++
	if cycle > 0 {
		return fmt.Sprintf("%s%d", p, cycle)
	}
	return p
}

// nameContext carries the identifiers hostname templates draw on.
type nameContext struct {
	pop   string
	ifIdx int
	addr  netip.Addr
}

// mutateASN applies a single-character typo to the ASN's digits.
// Two-thirds of typos hit a middle digit (the kind figure 3a's rule
// credits); the rest change the final digit (never credited).
func mutateASN(rng *rand.Rand, a asn.ASN) string {
	d := []byte(a.Digits())
	if len(d) < 3 {
		return string(d)
	}
	var pos int
	if rng.Float64() < 0.67 {
		pos = 1 + rng.Intn(len(d)-2) // middle digit
	} else {
		pos = len(d) - 1
	}
	orig := d[pos]
	for {
		c := byte('0' + rng.Intn(10))
		if c != orig {
			d[pos] = c
			break
		}
	}
	return string(d)
}

// renderASNName renders a hostname under supplier's suffix embedding the
// given ASN digits in the supplier's style.
func renderASNName(rng *rand.Rand, supplier *AS, digits string, ctx nameContext) string {
	style := supplier.Naming.Style
	switch style {
	case StyleSimple:
		if ctx.ifIdx == 0 {
			return fmt.Sprintf("as%s.%s", digits, supplier.Suffix)
		}
		// Additional ports for the same member get a disambiguator.
		return fmt.Sprintf("as%s-%d.%s", digits, ctx.ifIdx, supplier.Suffix)
	case StyleStart:
		return fmt.Sprintf("as%s-%s-%s%d.%s", digits, ctx.pop,
			ifTypes[rng.Intn(len(ifTypes))], rng.Intn(10), supplier.Suffix)
	case StyleEnd:
		return fmt.Sprintf("%s%d-%d.%s.as%s.%s",
			ifTypes[rng.Intn(len(ifTypes))], rng.Intn(10), rng.Intn(8),
			ctx.pop, digits, supplier.Suffix)
	case StyleBare:
		prefix := ""
		if supplier.Naming.BarePrefix {
			// Equinix-style: a third of ports carry a p/s marker, a third
			// use the dashed metro format (figure 4's two shapes).
			switch rng.Intn(6) {
			case 0:
				prefix = "p"
			case 1:
				prefix = "s"
			case 2, 3:
				return fmt.Sprintf("%s-%s%d-ix.%s", digits, ctx.pop, rng.Intn(6), supplier.Suffix)
			}
		}
		return fmt.Sprintf("%s%s.%s%d.%s", prefix, digits, ctx.pop, rng.Intn(4), supplier.Suffix)
	case StyleComplex:
		// Complex conventions need more than one regex (§3.5): two
		// formats, both embedding the ASN mid-name.
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("%s%d.as%s.%s.%s",
				ifTypes[rng.Intn(len(ifTypes))], rng.Intn(10), digits,
				ctx.pop, supplier.Suffix)
		}
		return fmt.Sprintf("as%s-%d.cust.%s.%s", digits, rng.Intn(8), ctx.pop, supplier.Suffix)
	default:
		return renderPlainName(rng, supplier, ctx)
	}
}

// renderOwnName renders a hostname for an address supplied to a neighbor
// under a figure 2-style own-ASN convention: the supplier's own ASN plus
// a customer marker.
func renderOwnName(rng *rand.Rand, supplier *AS, ctx nameContext) string {
	return fmt.Sprintf("%02d.r.%s.%s.cust.as%d.%s",
		rng.Intn(4), ctx.pop, genShort(rng), supplier.ASN, supplier.Suffix)
}

// renderOwnInternalName renders internal interfaces under an own-ASN
// convention (the top rows of figure 2).
func renderOwnInternalName(rng *rand.Rand, supplier *AS, ctx nameContext) string {
	return fmt.Sprintf("%s%d-%d.%02d.p.%s.as%d.%s",
		ifTypes[rng.Intn(len(ifTypes))], rng.Intn(10), rng.Intn(8),
		rng.Intn(4), ctx.pop, supplier.ASN, supplier.Suffix)
}

// renderPlainName renders an interface name with no ASN annotation.
func renderPlainName(rng *rand.Rand, supplier *AS, ctx nameContext) string {
	switch rng.Intn(3) {
	case 0:
		return fmt.Sprintf("%s%d-%d.%s.%s",
			ifTypes[rng.Intn(len(ifTypes))], rng.Intn(10), rng.Intn(8),
			ctx.pop, supplier.Suffix)
	case 1:
		return fmt.Sprintf("core%d.%s.%s", rng.Intn(4)+1, ctx.pop, supplier.Suffix)
	default:
		return fmt.Sprintf("%s-%s%d.%s", ctx.pop,
			ifTypes[rng.Intn(len(ifTypes))], rng.Intn(10), supplier.Suffix)
	}
}

// renderIPName renders a figure 3b-style IP-derived hostname.
func renderIPName(rng *rand.Rand, supplier *AS, addr netip.Addr) string {
	o := addr.As4()
	switch rng.Intn(3) {
	case 0:
		return fmt.Sprintf("%d-%d-%d-%d-static.hfc.%s", o[0], o[1], o[2], o[3], supplier.Suffix)
	case 1:
		return fmt.Sprintf("%d-%d-%d-%d.dia.stat.%s", o[0], o[1], o[2], o[3], supplier.Suffix)
	default:
		return fmt.Sprintf("host-%d-%d-%d-%d.%s", o[0], o[1], o[2], o[3], supplier.Suffix)
	}
}

func genShort(rng *rand.Rand) string {
	return nameOnsets[rng.Intn(len(nameOnsets))] +
		nameVowels[rng.Intn(len(nameVowels))] +
		nameOnsets[rng.Intn(len(nameOnsets))]
}

// supplierHostname computes the hostname the supplying AS assigns to an
// address, together with the ground-truth embedded ASN and staleness.
// owner is the AS operating the router holding the interface; staleWith
// supplies a deterministic wrong ASN when the name goes stale.
func supplierHostname(rng *rand.Rand, supplier, owner *AS, ctx nameContext, staleWith, siblingWith asn.ASN, plainRate float64) (host string, embedded asn.ASN, stale bool) {
	n := supplier.Naming
	if n == nil {
		if supplier.IPNames && ctx.addr.IsValid() {
			return renderIPName(rng, supplier, ctx.addr), asn.None, false
		}
		if rng.Float64() < plainRate {
			return renderPlainName(rng, supplier, ctx), asn.None, false
		}
		return "", asn.None, false
	}
	if rng.Float64() < n.Missing {
		return "", asn.None, false
	}
	if !n.LabelsNeighbor {
		// Figure 2: the supplier's own ASN everywhere, rendered in the
		// operator's chosen style. End-style supplied ports get the
		// figure's "cust" form; other styles reuse the shared templates.
		digits := supplier.ASN.Digits()
		if rng.Float64() < n.Typo {
			digits = mutateASN(rng, supplier.ASN)
		}
		if n.Style == StyleEnd {
			if owner != supplier {
				return renderOwnName(rng, supplier, ctx), supplier.ASN, false
			}
			return renderOwnInternalName(rng, supplier, ctx), supplier.ASN, false
		}
		return renderASNName(rng, supplier, digits, ctx), supplier.ASN, false
	}
	if owner == supplier {
		// Internal interface of a neighbor-labelling operator: plain name.
		return renderPlainName(rng, supplier, ctx), asn.None, false
	}
	embedded = owner.ASN
	switch {
	case rng.Float64() < n.Stale && staleWith != asn.None && staleWith != owner.ASN:
		embedded = staleWith
		stale = true
	case rng.Float64() < n.SiblingLabel && siblingWith != asn.None && siblingWith != owner.ASN:
		// The operator recorded the neighbor organization's primary ASN
		// rather than the sibling actually peering here.
		embedded = siblingWith
	}
	digits := embedded.Digits()
	if rng.Float64() < n.Typo {
		digits = mutateASN(rng, embedded)
	}
	return renderASNName(rng, supplier, digits, ctx), embedded, stale
}
