package topo

// Config parameterizes the synthetic Internet. Every field is
// deterministic given Seed; the experiment harness scales these per
// "era" to emulate the 2010-2020 ITDK series.
type Config struct {
	Seed int64

	// AS counts per class.
	Tier1, Transit, Access, REN, Stub, IXPs int

	// AdoptionTransit is the fraction of Tier1/Transit/Access/REN
	// operators whose DNS embeds ASNs; AdoptionIXP likewise for IXPs
	// (IXPs adopted ASN labelling earlier and more widely).
	AdoptionTransit float64
	AdoptionIXP     float64
	// OwnASNRate is the fraction of adopters who label their own ASN
	// (figure 2) rather than the neighbor's.
	OwnASNRate float64

	// Noise rates applied to generated hostnames.
	StaleRate, TypoRate, MissingRate float64
	// PlainNameRate: operators without ASN conventions that still run
	// PTR records (pop/interface-style names).
	PlainNameRate float64
	// IPNameRate: fraction of access/stub networks naming addresses
	// after the IP (figure 3b).
	IPNameRate float64

	// SiblingRate is the fraction of transit/access operators merged into
	// multi-ASN organizations (AS2Org-style siblings).
	SiblingRate float64

	// VPs is the number of traceroute vantage points.
	VPs int

	// IXPMemberProb is the probability an eligible AS joins a given IXP;
	// IXPPeerProb the probability two members of a common IXP peer over
	// its LAN.
	IXPMemberProb float64
	IXPPeerProb   float64

	// NeighborsPerBorder controls how many interdomain neighbors share
	// one border router.
	NeighborsPerBorder int

	// HopLossRate is the probability any hop fails to respond.
	HopLossRate float64
	// ProbeFilterRate is the fraction of ASes whose destination does not
	// answer (traceroute ends at the last responding router).
	ProbeFilterRate float64
	// RespondLoopbackRate is the probability a router answers traceroute
	// with its loopback address instead of the inbound interface (the
	// behavior vrfinder studies); loopbacks are numbered from the
	// operator's own space, so they anchor ownership elections.
	RespondLoopbackRate float64
	// SiblingLabelRate is the probability an operator labels a neighbor
	// port with a sibling of the neighbor's ASN (the org's primary ASN,
	// as in the paper's Microsoft AS8075 vs AS8069 example).
	SiblingLabelRate float64
	// BackupLinkRate is the expected number of additional (redundant)
	// /30s per interdomain edge. Backup ports are addressed and named
	// like primaries but never appear on traceroute paths, so they are
	// only reachable through full PTR sweeps (§7's OpenINTEL analysis).
	BackupLinkRate float64
	// ProbeCoverage is the fraction of destination ASes each vantage
	// point probes per cycle (Ark splits the probing space across
	// monitors). 0 means probe everything.
	ProbeCoverage float64
	// ThirdPartyRate is the probability a router answers traceroute with
	// one of its other interfaces (a third-party address), the classic
	// artifact that misleads subsequent-origin reasoning.
	ThirdPartyRate float64
}

// DefaultConfig returns a medium-sized Internet suitable for tests and
// examples: a few hundred ASes, a few thousand interfaces.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:                seed,
		Tier1:               4,
		Transit:             22,
		Access:              18,
		REN:                 6,
		Stub:                110,
		IXPs:                10,
		AdoptionTransit:     0.55,
		AdoptionIXP:         0.85,
		OwnASNRate:          0.18,
		StaleRate:           0.03,
		TypoRate:            0.01,
		MissingRate:         0.08,
		PlainNameRate:       0.6,
		IPNameRate:          0.5,
		SiblingRate:         0.12,
		VPs:                 14,
		IXPMemberProb:       0.32,
		IXPPeerProb:         0.5,
		NeighborsPerBorder:  8,
		HopLossRate:         0.01,
		ProbeFilterRate:     0.12,
		RespondLoopbackRate: 0.25,
		SiblingLabelRate:    0.04,
		BackupLinkRate:      1.0,
		ProbeCoverage:       1.0,
		ThirdPartyRate:      0.05,
	}
}

func (c Config) totalASes() int {
	return c.Tier1 + c.Transit + c.Access + c.REN + c.Stub + c.IXPs
}
