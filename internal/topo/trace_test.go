package topo

import (
	"math/rand"
	"testing"

	"hoiho/internal/asn"
)

func TestProbeCoverageReducesCorpus(t *testing.T) {
	full := DefaultConfig(41)
	full.ProbeCoverage = 1.0
	half := DefaultConfig(41)
	half.ProbeCoverage = 0.5
	wf, err := Build(full)
	if err != nil {
		t.Fatal(err)
	}
	wh, err := Build(half)
	if err != nil {
		t.Fatal(err)
	}
	cf, ch := wf.TraceAll(), wh.TraceAll()
	if ch.Len() >= cf.Len() {
		t.Errorf("coverage 0.5 corpus (%d) not smaller than full (%d)", ch.Len(), cf.Len())
	}
	frac := float64(ch.Len()) / float64(cf.Len())
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("coverage fraction = %.2f, want ~0.5", frac)
	}
}

func TestBackupLinksInvisibleToTraceroute(t *testing.T) {
	cfg := DefaultConfig(43)
	cfg.BackupLinkRate = 2.0
	world, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus := world.TraceAll()
	observed := make(map[string]bool)
	for _, p := range corpus.Paths {
		for _, h := range p.Hops {
			if h.Responded() {
				observed[h.Addr.String()] = true
			}
		}
	}
	// Count interdomain link interfaces never observed: with backups at
	// 2.0 they must be plentiful.
	unseen := 0
	for _, l := range world.Links {
		if l.Kind != LinkInter {
			continue
		}
		for _, ifc := range []*Interface{l.A, l.B} {
			if !observed[ifc.Addr.String()] {
				unseen++
			}
		}
	}
	if unseen < 100 {
		t.Errorf("only %d unseen interdomain interfaces; backups should dominate", unseen)
	}
}

func TestThirdPartyResponses(t *testing.T) {
	cfg := DefaultConfig(47)
	cfg.ThirdPartyRate = 0.5
	cfg.HopLossRate = 0
	world, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus := world.TraceAll()
	// With a high third-party rate, some hops respond with an interface
	// that is neither the inbound link end nor a loopback; detecting the
	// exact set is involved, so assert the weaker, structural property:
	// every responding address is still a real interface of some router.
	for _, p := range corpus.Paths {
		for _, h := range p.Hops {
			if h.Responded() && world.Interface(h.Addr) == nil {
				t.Fatalf("hop %v is not an interface", h.Addr)
			}
		}
	}
}

func TestTraceUnreachableDst(t *testing.T) {
	in := buildSmall(t, 53)
	// An IXP AS is unreachable at the AS level (no providers): Trace must
	// report !ok rather than fabricate a path.
	var ix *AS
	for _, a := range in.ASes {
		if a.Class == IXP {
			ix = a
			break
		}
	}
	if ix == nil {
		t.Skip("no IXP in world")
	}
	rng := rand.New(rand.NewSource(1))
	if _, ok := in.Trace(rng, in.VPs[0], ix); ok {
		t.Error("trace to an unconnected IXP should fail")
	}
}

func TestASPathUnknownASes(t *testing.T) {
	in := buildSmall(t, 59)
	if p := in.ASPath(999999999, in.ASes[0].ASN); p != nil {
		t.Errorf("path from unknown AS = %v", p)
	}
	if p := in.ASPath(in.ASes[0].ASN, 999999999); p != nil {
		t.Errorf("path to unknown AS = %v", p)
	}
	if p := in.ASPath(in.ASes[0].ASN, in.ASes[0].ASN); len(p) != 1 {
		t.Errorf("self path = %v", p)
	}
}

func TestLinkEndHelpers(t *testing.T) {
	in := buildSmall(t, 61)
	for _, l := range in.Links[:10] {
		ra, rb := l.A.Router, l.B.Router
		if l.Side(ra) != l.A || l.Side(rb) != l.B {
			t.Fatal("Side wrong")
		}
		if l.Other(ra) != l.B || l.Other(rb) != l.A {
			t.Fatal("Other wrong")
		}
		ghost := &Router{ID: -1}
		if l.Side(ghost) != nil || l.Other(ghost) != nil {
			t.Fatal("ghost router should get nil")
		}
	}
}

func TestClassAndStyleStrings(t *testing.T) {
	classes := map[Class]string{
		Tier1: "tier1", Transit: "transit", Access: "access",
		REN: "ren", Stub: "stub", IXP: "ixp",
	}
	for c, w := range classes {
		if c.String() != w {
			t.Errorf("%v != %s", c, w)
		}
	}
	styles := map[Style]string{
		StyleNone: "none", StyleSimple: "simple", StyleStart: "start",
		StyleEnd: "end", StyleBare: "bare", StyleComplex: "complex",
	}
	for s, w := range styles {
		if s.String() != w {
			t.Errorf("%v != %s", s, w)
		}
	}
}

func TestOwnerOfUnknown(t *testing.T) {
	in := buildSmall(t, 67)
	if in.OwnerOf(mustPfx("203.0.113.0/24").Addr()) != asn.None {
		t.Error("unknown addr should have no owner")
	}
	ifc := in.Interfaces()[0]
	if in.OwnerOf(ifc.Addr) != ifc.Router.Owner {
		t.Error("OwnerOf mismatch")
	}
}

func TestMembersAccessor(t *testing.T) {
	in := buildSmall(t, 71)
	foundMembers := false
	for _, a := range in.ASes {
		members := a.Members()
		if a.Class != IXP && members != nil {
			t.Errorf("non-IXP %s has members", a.Suffix)
		}
		if a.Class == IXP && len(members) > 0 {
			foundMembers = true
		}
	}
	if !foundMembers {
		t.Error("no IXP has members")
	}
}

// TestValleyFreeDeterminism: the AS path between two fixed ASes is stable
// across repeated queries (cache consistency).
func TestValleyFreeDeterminism(t *testing.T) {
	in := buildSmall(t, 73)
	src, dst := in.ASes[3].ASN, in.ASes[len(in.ASes)-3].ASN
	p1 := in.ASPath(src, dst)
	p2 := in.ASPath(src, dst)
	if len(p1) != len(p2) {
		t.Fatal("path lengths differ")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("paths differ between calls")
		}
	}
}
