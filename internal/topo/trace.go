package topo

import (
	"fmt"
	"math/rand"

	"hoiho/internal/traceroute"
)

// TraceAll probes every destination AS from every vantage point,
// emulating an Ark-style measurement cycle, and returns the corpus. The
// result is deterministic for a given Config.
func (in *Internet) TraceAll() *traceroute.Corpus {
	rng := rand.New(rand.NewSource(in.Cfg.Seed ^ 0x74726163)) // "trac"
	corpus := &traceroute.Corpus{}
	coverage := in.Cfg.ProbeCoverage
	if coverage <= 0 || coverage > 1 {
		coverage = 1
	}
	for _, vp := range in.VPs {
		for _, dst := range in.ASes {
			if dst == vp {
				continue
			}
			if rng.Float64() >= coverage {
				continue
			}
			if p, ok := in.Trace(rng, vp, dst); ok {
				corpus.Add(p)
			}
		}
	}
	return corpus
}

// Trace runs one traceroute from a vantage point in vp toward dst's
// destination address. ok is false when dst is unreachable at the AS
// level.
func (in *Internet) Trace(rng *rand.Rand, vp, dst *AS) (traceroute.Path, bool) {
	asPath := in.ASPath(vp.ASN, dst.ASN)
	if asPath == nil {
		return traceroute.Path{}, false
	}
	p := traceroute.Path{
		VP:  fmt.Sprintf("vp-%d", vp.ASN),
		Dst: dst.Dest,
	}
	record := func(ifc *Interface) {
		if ifc == nil {
			return
		}
		if rng.Float64() < in.Cfg.HopLossRate {
			p.Hops = append(p.Hops, traceroute.Hop{})
			return
		}
		// Some routers answer with a loopback rather than the inbound
		// interface (vrfinder's outbound/loopback observation), and some
		// answer with an unrelated third-party interface.
		r := ifc.Router
		switch {
		case r.Loopback != nil && r.Loopback != ifc &&
			rng.Float64() < in.Cfg.RespondLoopbackRate:
			ifc = r.Loopback
		case len(r.Ifaces) > 1 && rng.Float64() < in.Cfg.ThirdPartyRate:
			ifc = r.Ifaces[rng.Intn(len(r.Ifaces))]
		}
		p.Hops = append(p.Hops, traceroute.Hop{Addr: ifc.Addr})
	}

	// First hop: the VP's core router answers with its loopback.
	cur := vp.Core
	if lo := in.ByAddr[vp.Dest]; lo != nil {
		record(lo)
	}

	for i := 0; i+1 < len(asPath); i++ {
		x, y := in.byASN[asPath[i]], in.byASN[asPath[i+1]]
		link := in.edgeLinks[keyOf(x.ASN, y.ASN)]
		if link == nil {
			// Defensive: the edge should exist for every relationship.
			return traceroute.Path{}, false
		}
		exit := link.Side(in.routerIn(link, x))
		exitRouter := exit.Router
		in.walkWithin(x, cur, exitRouter, record)
		// Crossing: the next response comes from y's interface on the
		// link (an address supplied by the supplier of the /30 or LAN).
		entry := link.Side(in.routerIn(link, y))
		record(entry)
		cur = entry.Router
	}

	// Inside the destination AS, walk to the core and probe the target.
	in.walkWithin(dst, cur, dst.Core, record)
	if dst.RespondsToProbes && rng.Float64() >= in.Cfg.HopLossRate {
		p.Hops = append(p.Hops, traceroute.Hop{Addr: dst.Dest})
		p.Reached = true
	}
	return p, true
}

// routerIn returns the link endpoint router operated by a.
func (in *Internet) routerIn(link *Link, a *AS) *Router {
	if link.A.Router.Owner == a.ASN {
		return link.A.Router
	}
	return link.B.Router
}

// walkWithin records the intra-AS hops moving from router cur to router
// dst inside a (border -> core -> border star topology).
func (in *Internet) walkWithin(a *AS, cur, dst *Router, record func(*Interface)) {
	if cur == dst {
		return
	}
	// Border to core: the core answers with its interface on the
	// border's uplink.
	if cur != a.Core {
		if l := in.intraLink[cur]; l != nil {
			record(l.Side(a.Core))
		}
		cur = a.Core
	}
	if cur == dst {
		return
	}
	// Core to border: the border answers with its uplink interface.
	if l := in.intraLink[dst]; l != nil {
		record(l.Side(dst))
	}
}
