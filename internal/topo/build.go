package topo

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"

	"hoiho/internal/asn"
	"hoiho/internal/bgp"
)

// Internet is a generated router-level topology with ground truth.
type Internet struct {
	Cfg     Config
	ASes    []*AS // sorted by ASN
	Routers []*Router
	Links   []*Link
	ByAddr  map[netip.Addr]*Interface
	Rel     *asn.Relationships
	Orgs    *asn.Orgs
	Table   *bgp.Table
	// VPs are the vantage-point ASes.
	VPs []*AS

	byASN     map[asn.ASN]*AS
	edgeLinks map[edgeKey]*Link
	intraLink map[*Router]*Link // border router -> its link to the AS core
	adj       adjacency
	routes    map[asn.ASN]*routeTable
	nextRID   int
}

type edgeKey struct{ lo, hi asn.ASN }

func keyOf(a, b asn.ASN) edgeKey {
	if a < b {
		return edgeKey{a, b}
	}
	return edgeKey{b, a}
}

// edge is a planned interdomain adjacency.
type edge struct {
	a, b asn.ASN // for p2c: a is the provider
	kind asn.RelKind
	via  *AS // non-nil: peering across this IXP's LAN
}

// AS returns the AS with the given number, or nil.
func (in *Internet) AS(a asn.ASN) *AS { return in.byASN[a] }

// Interface returns the interface holding addr, or nil.
func (in *Internet) Interface(addr netip.Addr) *Interface { return in.ByAddr[addr] }

// OwnerOf returns the ground-truth operator of the router holding addr.
func (in *Internet) OwnerOf(addr netip.Addr) asn.ASN {
	if ifc := in.ByAddr[addr]; ifc != nil {
		return ifc.Router.Owner
	}
	return asn.None
}

// Interfaces returns all interfaces sorted by address.
func (in *Internet) Interfaces() []*Interface {
	out := make([]*Interface, 0, len(in.ByAddr))
	for _, ifc := range in.ByAddr {
		out = append(out, ifc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Less(out[j].Addr) })
	return out
}

// Build generates the Internet deterministically from cfg.
func Build(cfg Config) (*Internet, error) {
	if cfg.totalASes() == 0 {
		return nil, fmt.Errorf("topo: empty config")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := &Internet{
		Cfg:       cfg,
		ByAddr:    make(map[netip.Addr]*Interface),
		Rel:       asn.NewRelationships(),
		Orgs:      asn.NewOrgs(),
		Table:     &bgp.Table{},
		byASN:     make(map[asn.ASN]*AS),
		edgeLinks: make(map[edgeKey]*Link),
		intraLink: make(map[*Router]*Link),
		routes:    make(map[asn.ASN]*routeTable),
	}
	if err := in.makeASes(rng); err != nil {
		return nil, err
	}
	in.makeOrgs(rng)
	edges := in.makeRelationships(rng)
	in.announce()
	if err := in.makeRouters(rng, edges); err != nil {
		return nil, err
	}
	in.buildAdjacency()
	in.pickVPs(rng)
	return in, nil
}

// makeASes creates the AS population: numbers, names, suffixes, blocks,
// naming policies.
func (in *Internet) makeASes(rng *rand.Rand) error {
	space, err := bgp.NewAllocator(netip.MustParsePrefix("8.0.0.0/5"))
	if err != nil {
		return err
	}
	usedASN := make(map[asn.ASN]bool)
	usedName := make(map[string]bool)
	newASN := func() asn.ASN {
		for {
			var a asn.ASN
			if rng.Float64() < 0.10 {
				a = asn.ASN(196608 + rng.Intn(200000)) // 32-bit ASN
			} else {
				a = asn.ASN(1000 + rng.Intn(64000))
			}
			if !usedASN[a] {
				usedASN[a] = true
				return a
			}
		}
	}
	newName := func() string {
		for {
			n := genName(rng)
			if !usedName[n] {
				usedName[n] = true
				return n
			}
		}
	}
	type classPlan struct {
		class Class
		count int
		bits  int
	}
	plans := []classPlan{
		{Tier1, in.Cfg.Tier1, 16},
		{Transit, in.Cfg.Transit, 18},
		{Access, in.Cfg.Access, 18},
		{REN, in.Cfg.REN, 19},
		{Stub, in.Cfg.Stub, 22},
		{IXP, in.Cfg.IXPs, 21},
	}
	for _, p := range plans {
		for i := 0; i < p.count; i++ {
			block, err := space.Subnet(p.bits)
			if err != nil {
				return fmt.Errorf("topo: address space exhausted: %w", err)
			}
			name := newName()
			a := &AS{
				ASN:              newASN(),
				Class:            p.class,
				Name:             name,
				Suffix:           genSuffix(rng, p.class, name),
				Block:            block,
				RespondsToProbes: rng.Float64() >= in.Cfg.ProbeFilterRate,
				size:             sizeFor(rng, p.class),
			}
			a.alloc, err = bgp.NewAllocator(block)
			if err != nil {
				return err
			}
			in.assignNaming(rng, a)
			in.ASes = append(in.ASes, a)
			in.byASN[a.ASN] = a
		}
	}
	sort.Slice(in.ASes, func(i, j int) bool { return in.ASes[i].ASN < in.ASes[j].ASN })
	return nil
}

// sizeFor draws an abstract network size for an AS of the given class.
func sizeFor(rng *rand.Rand, class Class) float64 {
	switch class {
	case Tier1:
		return 2000 + rng.Float64()*1000
	case Transit:
		return 80 + rng.Float64()*600
	case Access:
		return 20 + rng.Float64()*50
	case REN:
		return 25 + rng.Float64()*30
	case Stub:
		return 1 + rng.Float64()*4
	default: // IXP
		return 0
	}
}

// biggerThan filters pool to ASes whose size exceeds factor times own's.
func biggerThan(pool []*AS, own *AS, factor float64) []*AS {
	var out []*AS
	for _, a := range pool {
		if a.size > own.size*factor {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return pool
	}
	return out
}

// carrier and IXP style distributions, tuned so the learned-NC taxonomy
// lands near table 1 of the paper.
var (
	carrierStyles  = []Style{StyleStart, StyleEnd, StyleComplex, StyleBare, StyleSimple}
	carrierWeights = []float64{0.64, 0.12, 0.14, 0.03, 0.07}
	ixpStyles      = []Style{StyleSimple, StyleStart, StyleBare, StyleComplex, StyleEnd}
	ixpWeights     = []float64{0.52, 0.33, 0.05, 0.07, 0.03}
	// Operators that embed their own ASN favor the end of the hostname
	// (table 1's Single column: 43.1% end).
	ownStyles  = []Style{StyleEnd, StyleStart, StyleComplex, StyleBare, StyleSimple}
	ownWeights = []float64{0.45, 0.24, 0.21, 0.07, 0.03}
)

func weightedStyle(rng *rand.Rand, styles []Style, weights []float64) Style {
	x := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return styles[i]
		}
	}
	return styles[len(styles)-1]
}

func (in *Internet) assignNaming(rng *rand.Rand, a *AS) {
	cfg := in.Cfg
	switch a.Class {
	case IXP:
		if rng.Float64() < cfg.AdoptionIXP {
			// Exchanges keep port records fresher than carriers
			// (provisioning is automated), so halve the noise rates.
			a.Naming = &Naming{
				Style:          weightedStyle(rng, ixpStyles, ixpWeights),
				LabelsNeighbor: true,
				Stale:          cfg.StaleRate * 0.5,
				Typo:           cfg.TypoRate * 0.5,
				SiblingLabel:   cfg.SiblingLabelRate,
				Missing:        cfg.MissingRate,
				BarePrefix:     rng.Float64() < 0.5,
			}
		}
	case Tier1, Transit, Access, REN:
		if rng.Float64() < cfg.AdoptionTransit {
			n := &Naming{
				Style:          weightedStyle(rng, carrierStyles, carrierWeights),
				LabelsNeighbor: true,
				Stale:          cfg.StaleRate,
				Typo:           cfg.TypoRate,
				SiblingLabel:   cfg.SiblingLabelRate,
				Missing:        cfg.MissingRate,
				BarePrefix:     rng.Float64() < 0.4,
			}
			if rng.Float64() < cfg.OwnASNRate {
				n.LabelsNeighbor = false
				n.Style = weightedStyle(rng, ownStyles, ownWeights)
			}
			a.Naming = n
		} else if a.Class == Access && rng.Float64() < cfg.IPNameRate {
			a.IPNames = true
		}
	case Stub:
		if rng.Float64() < cfg.IPNameRate*0.5 {
			a.IPNames = true
		}
	}
}

// makeOrgs assigns organizations, merging some carriers into multi-ASN
// organizations per Config.SiblingRate.
func (in *Internet) makeOrgs(rng *rand.Rand) {
	var prev *AS
	for _, a := range in.ASes {
		if prev != nil &&
			(a.Class == Transit || a.Class == Access) &&
			(prev.Class == Transit || prev.Class == Access) &&
			rng.Float64() < in.Cfg.SiblingRate {
			a.Org = prev.Org
		} else {
			a.Org = asn.OrgID("org-" + a.Name)
		}
		in.Orgs.Add(a.Org, a.ASN)
		prev = a
	}
}

// byClass returns ASes of the given classes, in ASN order.
func (in *Internet) byClass(classes ...Class) []*AS {
	var out []*AS
	for _, a := range in.ASes {
		for _, c := range classes {
			if a.Class == c {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

// makeRelationships wires the AS-level graph and returns the edge list.
func (in *Internet) makeRelationships(rng *rand.Rand) []edge {
	var edges []edge
	seen := make(map[edgeKey]bool)
	addEdge := func(e edge) {
		k := keyOf(e.a, e.b)
		if e.a == e.b || seen[k] {
			return
		}
		seen[k] = true
		edges = append(edges, e)
		if e.kind == asn.P2C {
			in.Rel.AddP2C(e.a, e.b)
		} else {
			in.Rel.AddP2P(e.a, e.b)
		}
	}
	t1 := in.byClass(Tier1)
	transit := in.byClass(Transit)
	access := in.byClass(Access)
	ren := in.byClass(REN)
	stub := in.byClass(Stub)
	ixps := in.byClass(IXP)

	// Tier-1 clique.
	for i := range t1 {
		for j := i + 1; j < len(t1); j++ {
			addEdge(edge{t1[i].ASN, t1[j].ASN, asn.P2P, nil})
		}
	}
	// Transit hierarchy: providers come from strictly larger networks.
	for _, a := range transit {
		nProv := 1 + rng.Intn(2)
		pool := biggerThan(append(append([]*AS(nil), t1...), transit...), a, 1.5)
		for _, p := range in.pickN(rng, pool, nProv) {
			if p == a {
				continue
			}
			addEdge(edge{p.ASN, a.ASN, asn.P2C, nil})
		}
	}
	// Sparse transit peering.
	for i := range transit {
		for j := i + 1; j < len(transit); j++ {
			if rng.Float64() < 0.12 {
				addEdge(edge{transit[i].ASN, transit[j].ASN, asn.P2P, nil})
			}
		}
	}
	// Access networks: two providers from larger networks.
	for _, a := range access {
		pool := biggerThan(append(append([]*AS(nil), t1...), transit...), a, 1.5)
		for _, p := range in.pickN(rng, pool, 2) {
			addEdge(edge{p.ASN, a.ASN, asn.P2C, nil})
		}
	}
	// R&E networks: providers plus an R&E peering mesh.
	for _, a := range ren {
		pool := append(append([]*AS(nil), t1...), transit...)
		for _, p := range in.pickN(rng, pool, 1+rng.Intn(2)) {
			addEdge(edge{p.ASN, a.ASN, asn.P2C, nil})
		}
	}
	for i := range ren {
		for j := i + 1; j < len(ren); j++ {
			if rng.Float64() < 0.6 {
				addEdge(edge{ren[i].ASN, ren[j].ASN, asn.P2P, nil})
			}
		}
	}
	// Stubs: one or two providers from transit/access.
	for _, a := range stub {
		pool := append(append([]*AS(nil), transit...), access...)
		n := 1
		if rng.Float64() < 0.3 {
			n = 2
		}
		for _, p := range in.pickN(rng, pool, n) {
			addEdge(edge{p.ASN, a.ASN, asn.P2C, nil})
		}
	}
	// IXP membership and LAN peering.
	eligible := append(append(append([]*AS(nil), transit...), access...), ren...)
	for _, s := range stub {
		if rng.Float64() < in.Cfg.IXPMemberProb/2 {
			eligible = append(eligible, s)
		}
	}
	for _, ix := range ixps {
		var members []*AS
		for _, a := range eligible {
			if rng.Float64() < in.Cfg.IXPMemberProb {
				members = append(members, a)
			}
		}
		ix.members = members
		// Route-server peerings: every member peers with the IXP's ASN in
		// the relationship data (as in CAIDA's as-rel, where route-server
		// ASNs appear with high degree). These are control-plane only; no
		// physical edge is created, so traceroutes never traverse them.
		for _, m := range members {
			in.Rel.AddP2P(ix.ASN, m.ASN)
		}
		for i := range members {
			for j := i + 1; j < len(members); j++ {
				if rng.Float64() < in.Cfg.IXPPeerProb {
					addEdge(edge{members[i].ASN, members[j].ASN, asn.P2P, ix})
				}
			}
		}
	}
	return edges
}

// pickN chooses n distinct elements from pool with preferential
// attachment: class weight times current degree, so larger networks
// (Tier-1s, then big transits) attract customers with higher
// probability. This yields the skewed degree distribution in which a
// provider almost always has a larger degree than its customer — the
// property the RouterToAsAssignment degree tie-break relies on.
func (in *Internet) pickN(rng *rand.Rand, pool []*AS, n int) []*AS {
	if n >= len(pool) {
		return append([]*AS(nil), pool...)
	}
	weight := func(a *AS) float64 { return a.size + 0.1 }
	chosen := make(map[int]bool, n)
	out := make([]*AS, 0, n)
	for len(out) < n {
		total := 0.0
		for i, a := range pool {
			if !chosen[i] {
				total += weight(a)
			}
		}
		x := rng.Float64() * total
		for i, a := range pool {
			if chosen[i] {
				continue
			}
			x -= weight(a)
			if x <= 0 {
				chosen[i] = true
				out = append(out, a)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// announce populates the BGP table.
func (in *Internet) announce() {
	for _, a := range in.ASes {
		// Announce errors are impossible here: blocks are valid IPv4.
		_ = in.Table.Announce(a.Block, a.ASN)
	}
}

// newRouter registers a router owned by a.
func (in *Internet) newRouter(a *AS) *Router {
	r := &Router{ID: in.nextRID, Owner: a.ASN}
	in.nextRID++
	in.Routers = append(in.Routers, r)
	return r
}

// addIface attaches an addressed interface to r.
func (in *Internet) addIface(r *Router, addr netip.Addr, supplier asn.ASN) *Interface {
	ifc := &Interface{Addr: addr, Router: r, Supplier: supplier}
	r.Ifaces = append(r.Ifaces, ifc)
	in.ByAddr[addr] = ifc
	return ifc
}

// nameIface assigns the hostname chosen by the supplying AS.
func (in *Internet) nameIface(rng *rand.Rand, ifc *Interface, supplier, owner *AS, ctx nameContext, staleWith asn.ASN) {
	ctx.addr = ifc.Addr
	// The sibling-labelling candidate is the owner org's primary
	// (lowest-numbered) ASN, when the org has more than one.
	siblingWith := asn.None
	if sibs := in.Orgs.SiblingSet(owner.ASN); len(sibs) > 1 && sibs[0] != owner.ASN {
		siblingWith = sibs[0]
	}
	host, embedded, stale := supplierHostname(rng, supplier, owner, ctx, staleWith, siblingWith, in.Cfg.PlainNameRate)
	ifc.Hostname = host
	ifc.EmbeddedASN = embedded
	ifc.StaleName = stale
}

// makeRouters builds routers, intra-AS star links, interdomain /30s, IXP
// LANs, and destination loopbacks.
func (in *Internet) makeRouters(rng *rand.Rand, edges []edge) error {
	// Group edges by AS for border sizing, in deterministic order.
	edgesOf := make(map[asn.ASN][]int)
	for i, e := range edges {
		if e.via == nil {
			edgesOf[e.a] = append(edgesOf[e.a], i)
			edgesOf[e.b] = append(edgesOf[e.b], i)
		} else {
			// LAN peerings ride each member's designated IXP port router.
			edgesOf[e.a] = append(edgesOf[e.a], i)
			edgesOf[e.b] = append(edgesOf[e.b], i)
		}
	}

	// Core and border routers.
	for _, a := range in.ASes {
		a.Core = in.newRouter(a)
		n := len(edgesOf[a.ASN])
		if a.Class == Stub || n == 0 {
			a.Borders = []*Router{a.Core}
		} else {
			nb := (n + in.Cfg.NeighborsPerBorder - 1) / in.Cfg.NeighborsPerBorder
			if nb > 6 {
				nb = 6
			}
			for i := 0; i < nb; i++ {
				b := in.newRouter(a)
				a.Borders = append(a.Borders, b)
				// Intra-AS /30 between border and core.
				cAddr, bAddr, _, err := a.alloc.PointToPoint()
				if err != nil {
					return fmt.Errorf("topo: %s: %w", a.Suffix, err)
				}
				ci := in.addIface(a.Core, cAddr, a.ASN)
				bi := in.addIface(b, bAddr, a.ASN)
				pop := a.pop()
				in.nameIface(rng, ci, a, a, nameContext{pop: pop}, asn.None)
				in.nameIface(rng, bi, a, a, nameContext{pop: pop}, asn.None)
				link := &Link{A: ci, B: bi, Kind: LinkIntra}
				in.Links = append(in.Links, link)
				in.intraLink[b] = link
				// Border loopback, numbered and named by the operator.
				loAddr, err := a.alloc.Addr()
				if err != nil {
					return fmt.Errorf("topo: %s: %w", a.Suffix, err)
				}
				lo := in.addIface(b, loAddr, a.ASN)
				in.nameIface(rng, lo, a, a, nameContext{pop: pop}, asn.None)
				b.Loopback = lo
			}
		}
		// Destination loopback on the core.
		dest, err := a.alloc.Addr()
		if err != nil {
			return fmt.Errorf("topo: %s: %w", a.Suffix, err)
		}
		a.Dest = dest
		di := in.addIface(a.Core, dest, a.ASN)
		in.nameIface(rng, di, a, a, nameContext{pop: a.pop()}, asn.None)
		a.Core.Loopback = di
	}

	// borderFor assigns each AS's edges to its borders round-robin.
	borderSeq := make(map[asn.ASN]int)
	borderFor := func(a *AS) *Router {
		i := borderSeq[a.ASN]
		borderSeq[a.ASN]++
		return a.Borders[i%len(a.Borders)]
	}

	// IXP LAN ports are created lazily, one per member per IXP. Peering
	// LAN prefixes are carved from a dedicated pool and — as is typical
	// for real exchanges — NOT announced in BGP, so LAN addresses have no
	// origin AS; bdrmapIT learns about them from IXP prefix lists instead.
	lanSpace, err := bgp.NewAllocator(netip.MustParsePrefix("16.0.0.0/8"))
	if err != nil {
		return err
	}
	lanPort := make(map[edgeKey]*Interface) // (ixp, member) -> LAN interface
	lanIdx := make(map[asn.ASN]int)         // per-IXP port counter
	memberPort := func(ix, member *AS) (*Interface, error) {
		k := keyOf(ix.ASN, member.ASN)
		if p, ok := lanPort[k]; ok {
			return p, nil
		}
		if !ix.LAN.IsValid() {
			lan, err := lanSpace.Subnet(24)
			if err != nil {
				return nil, fmt.Errorf("topo: %s LAN: %w", ix.Suffix, err)
			}
			ix.LAN = lan
		}
		addr, err := addrAt(ix.LAN, 1+lanIdx[ix.ASN])
		if err != nil {
			return nil, err
		}
		lanIdx[ix.ASN]++
		r := borderFor(member)
		ifc := in.addIface(r, addr, ix.ASN)
		in.nameIface(rng, ifc, ix, member,
			nameContext{pop: ix.pop(), ifIdx: 0}, in.staleNeighbor(rng, ix, member))
		lanPort[k] = ifc
		return ifc, nil
	}

	for _, e := range edges {
		aAS, bAS := in.byASN[e.a], in.byASN[e.b]
		if e.via != nil {
			pa, err := memberPort(e.via, aAS)
			if err != nil {
				return err
			}
			pb, err := memberPort(e.via, bAS)
			if err != nil {
				return err
			}
			link := &Link{A: pa, B: pb, Kind: LinkIXP}
			in.Links = append(in.Links, link)
			in.edgeLinks[keyOf(e.a, e.b)] = link
			continue
		}
		// Direct link: the provider supplies the /30 for p2c; the
		// lower-numbered AS supplies for p2p.
		supplier, neighbor := aAS, bAS
		if e.kind == asn.P2P && bAS.ASN < aAS.ASN {
			supplier, neighbor = bAS, aAS
		}
		sAddr, nAddr, _, err := supplier.alloc.PointToPoint()
		if err != nil {
			return fmt.Errorf("topo: %s: %w", supplier.Suffix, err)
		}
		sr, nr := borderFor(supplier), borderFor(neighbor)
		si := in.addIface(sr, sAddr, supplier.ASN)
		ni := in.addIface(nr, nAddr, supplier.ASN)
		pop := supplier.pop()
		in.nameIface(rng, si, supplier, supplier, nameContext{pop: pop}, asn.None)
		in.nameIface(rng, ni, supplier, neighbor, nameContext{pop: pop},
			in.staleNeighbor(rng, supplier, neighbor))
		link := &Link{A: si, B: ni, Kind: LinkInter}
		in.Links = append(in.Links, link)
		in.edgeLinks[keyOf(e.a, e.b)] = link

		// Redundant ports: named and addressed like the primary but never
		// on a traceroute path (only full PTR sweeps see them, §7).
		for backups := in.Cfg.BackupLinkRate; backups > 0; backups-- {
			if backups < 1 && rng.Float64() >= backups {
				break
			}
			bs, bn, _, err := supplier.alloc.PointToPoint()
			if err != nil {
				return fmt.Errorf("topo: %s: %w", supplier.Suffix, err)
			}
			bsi := in.addIface(sr, bs, supplier.ASN)
			bni := in.addIface(nr, bn, supplier.ASN)
			in.nameIface(rng, bsi, supplier, supplier, nameContext{pop: pop}, asn.None)
			in.nameIface(rng, bni, supplier, neighbor, nameContext{pop: pop},
				in.staleNeighbor(rng, supplier, neighbor))
			in.Links = append(in.Links, &Link{A: bsi, B: bni, Kind: LinkInter})
		}
	}
	return nil
}

// staleNeighbor picks the wrong ASN a stale hostname would carry: another
// AS adjacent to the supplier (a previous tenant of the port).
func (in *Internet) staleNeighbor(rng *rand.Rand, supplier, current *AS) asn.ASN {
	var pool []asn.ASN
	pool = append(pool, in.Rel.Customers(supplier.ASN)...)
	pool = append(pool, in.Rel.Peers(supplier.ASN)...)
	if supplier.Class == IXP {
		for _, m := range supplier.members {
			pool = append(pool, m.ASN)
		}
	}
	var filtered []asn.ASN
	for _, a := range pool {
		if a != current.ASN {
			filtered = append(filtered, a)
		}
	}
	if len(filtered) == 0 {
		// Fall back to any other AS.
		for _, a := range in.ASes {
			if a != current {
				filtered = append(filtered, a.ASN)
				break
			}
		}
	}
	if len(filtered) == 0 {
		return asn.None
	}
	return filtered[rng.Intn(len(filtered))]
}

// addrAt returns the n-th address within prefix.
func addrAt(prefix netip.Prefix, n int) (netip.Addr, error) {
	if !prefix.Addr().Is4() {
		return netip.Addr{}, fmt.Errorf("topo: prefix %v not IPv4", prefix)
	}
	size := 1 << (32 - prefix.Bits())
	if n < 0 || n >= size {
		return netip.Addr{}, fmt.Errorf("topo: offset %d outside %v", n, prefix)
	}
	b := prefix.Addr().As4()
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	v += uint32(n)
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}), nil
}

// pickVPs selects vantage-point ASes across edge classes, evenly spread.
func (in *Internet) pickVPs(rng *rand.Rand) {
	cands := in.byClass(REN, Access, Stub)
	if len(cands) == 0 {
		cands = in.ASes
	}
	n := in.Cfg.VPs
	if n <= 0 {
		n = 1
	}
	if n > len(cands) {
		n = len(cands)
	}
	step := len(cands) / n
	if step == 0 {
		step = 1
	}
	for i := 0; i < n; i++ {
		in.VPs = append(in.VPs, cands[(i*step)%len(cands)])
	}
}
