package topo

import (
	"hoiho/internal/asn"
)

// Valley-free AS-level routing (Gao-Rexford): every path is a sequence of
// customer-to-provider edges, at most one peer edge, then
// provider-to-customer edges. Route preference at each AS is customer >
// peer > provider, then shortest, then lowest next-hop ASN — the standard
// model bdrmap/bdrmapIT assume when reasoning about traceroute paths.

const unreachable = 1 << 30

// adjacency caches neighbor lists per AS for fast route computation.
type adjacency struct {
	providers map[asn.ASN][]asn.ASN
	customers map[asn.ASN][]asn.ASN
	peers     map[asn.ASN][]asn.ASN
}

func (in *Internet) buildAdjacency() {
	in.adj = adjacency{
		providers: make(map[asn.ASN][]asn.ASN),
		customers: make(map[asn.ASN][]asn.ASN),
		peers:     make(map[asn.ASN][]asn.ASN),
	}
	for _, a := range in.ASes {
		in.adj.providers[a.ASN] = in.Rel.Providers(a.ASN)
		in.adj.customers[a.ASN] = in.Rel.Customers(a.ASN)
		in.adj.peers[a.ASN] = in.Rel.Peers(a.ASN)
	}
}

// routeTable holds distances toward one destination AS.
type routeTable struct {
	dst  asn.ASN
	cust map[asn.ASN]int // reachable via customer chain (down only)
	peer map[asn.ASN]int // via one peer then down
	prov map[asn.ASN]int // via providers (up, maybe peer, then down)
}

func (rt *routeTable) custDist(a asn.ASN) int { return distOf(rt.cust, a) }
func (rt *routeTable) peerDist(a asn.ASN) int { return distOf(rt.peer, a) }
func (rt *routeTable) provDist(a asn.ASN) int { return distOf(rt.prov, a) }

func distOf(m map[asn.ASN]int, a asn.ASN) int {
	if d, ok := m[a]; ok {
		return d
	}
	return unreachable
}

// best returns the preferred route stage and distance at a.
func (rt *routeTable) best(a asn.ASN) (stage int, dist int) {
	if d := rt.custDist(a); d < unreachable {
		return 0, d
	}
	if d := rt.peerDist(a); d < unreachable {
		return 1, d
	}
	if d := rt.provDist(a); d < unreachable {
		return 2, d
	}
	return 3, unreachable
}

// score is the distance of a's best route of any stage.
func (rt *routeTable) score(a asn.ASN) int {
	_, d := rt.best(a)
	return d
}

// routesTo computes (and caches) the route table toward dst.
func (in *Internet) routesTo(dst asn.ASN) *routeTable {
	if rt, ok := in.routes[dst]; ok {
		return rt
	}
	rt := &routeTable{
		dst:  dst,
		cust: make(map[asn.ASN]int),
		peer: make(map[asn.ASN]int),
		prov: make(map[asn.ASN]int),
	}
	// Customer routes: BFS from dst along customer->provider edges.
	rt.cust[dst] = 0
	queue := []asn.ASN{dst}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, p := range in.adj.providers[c] {
			if _, ok := rt.cust[p]; !ok {
				rt.cust[p] = rt.cust[c] + 1
				queue = append(queue, p)
			}
		}
	}
	// Peer routes: one peer edge into a customer route.
	for _, a := range in.ASes {
		bestD := unreachable
		for _, y := range in.adj.peers[a.ASN] {
			if d := rt.custDist(y); d+1 < bestD {
				bestD = d + 1
			}
		}
		if bestD < unreachable {
			rt.peer[a.ASN] = bestD
		}
	}
	// Provider routes: prov[x] = 1 + min over providers y of score(y).
	// Bellman-Ford style iteration to a fixpoint (hierarchy depth is
	// small).
	for changed := true; changed; {
		changed = false
		for _, a := range in.ASes {
			bestD := unreachable
			for _, y := range in.adj.providers[a.ASN] {
				if d := rt.score(y); d+1 < bestD {
					bestD = d + 1
				}
			}
			if bestD < rt.provDist(a.ASN) {
				rt.prov[a.ASN] = bestD
				changed = true
			}
		}
	}
	in.routes[dst] = rt
	return rt
}

// ASPath returns the valley-free AS path from src to dst, inclusive, or
// nil when dst is unreachable.
func (in *Internet) ASPath(src, dst asn.ASN) []asn.ASN {
	if src == dst {
		return []asn.ASN{src}
	}
	if in.byASN[src] == nil || in.byASN[dst] == nil {
		return nil
	}
	rt := in.routesTo(dst)
	path := []asn.ASN{src}
	cur := src
	descending := false
	for steps := 0; cur != dst; steps++ {
		if steps > 64 {
			return nil // defensive: should be unreachable
		}
		var next asn.ASN
		switch {
		case rt.custDist(cur) < unreachable:
			// Descend along the customer chain.
			next = in.bestByDist(in.adj.customers[cur], rt.cust, rt.custDist(cur)-1)
			descending = true
		case !descending && rt.peerDist(cur) < unreachable:
			next = in.bestByDist(in.adj.peers[cur], rt.cust, rt.peerDist(cur)-1)
			descending = true
		case !descending && rt.provDist(cur) < unreachable:
			next = in.bestByScore(in.adj.providers[cur], rt, rt.provDist(cur)-1)
		default:
			return nil
		}
		if next == asn.None {
			return nil
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// bestByDist picks the lowest-numbered candidate whose entry in dists
// equals want.
func (in *Internet) bestByDist(cands []asn.ASN, dists map[asn.ASN]int, want int) asn.ASN {
	for _, c := range cands { // cands are sorted by ASN
		if d, ok := dists[c]; ok && d == want {
			return c
		}
	}
	return asn.None
}

// bestByScore picks the lowest-numbered candidate whose best-route score
// equals want.
func (in *Internet) bestByScore(cands []asn.ASN, rt *routeTable, want int) asn.ASN {
	for _, c := range cands {
		if rt.score(c) == want {
			return c
		}
	}
	return asn.None
}
