package topo

import (
	"math/rand"
	"strings"
	"testing"

	"hoiho/internal/asn"
	"hoiho/internal/psl"
)

func buildSmall(t testing.TB, seed int64) *Internet {
	t.Helper()
	cfg := DefaultConfig(seed)
	in, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestBuildDeterminism(t *testing.T) {
	a := buildSmall(t, 42)
	b := buildSmall(t, 42)
	if len(a.ASes) != len(b.ASes) || len(a.Routers) != len(b.Routers) || len(a.Links) != len(b.Links) {
		t.Fatal("shape differs between identical seeds")
	}
	ia, ib := a.Interfaces(), b.Interfaces()
	if len(ia) != len(ib) {
		t.Fatalf("interface counts differ: %d vs %d", len(ia), len(ib))
	}
	for i := range ia {
		if ia[i].Addr != ib[i].Addr || ia[i].Hostname != ib[i].Hostname ||
			ia[i].Router.Owner != ib[i].Router.Owner {
			t.Fatalf("interface %d differs: %+v vs %+v", i, ia[i], ib[i])
		}
	}
	ca, cb := a.TraceAll(), b.TraceAll()
	if ca.Len() != cb.Len() {
		t.Fatalf("corpus sizes differ: %d vs %d", ca.Len(), cb.Len())
	}
	for i := range ca.Paths {
		pa, pb := ca.Paths[i], cb.Paths[i]
		if pa.VP != pb.VP || pa.Dst != pb.Dst || len(pa.Hops) != len(pb.Hops) {
			t.Fatalf("path %d differs", i)
		}
	}
}

func TestBuildShape(t *testing.T) {
	in := buildSmall(t, 7)
	cfg := in.Cfg
	if len(in.ASes) != cfg.totalASes() {
		t.Errorf("ASes = %d, want %d", len(in.ASes), cfg.totalASes())
	}
	// Every AS has a core, borders, and a destination covered by its block.
	for _, a := range in.ASes {
		if a.Core == nil || len(a.Borders) == 0 {
			t.Fatalf("%s missing routers", a.Suffix)
		}
		if !a.Block.Contains(a.Dest) {
			t.Errorf("%s dest %v outside block %v", a.Suffix, a.Dest, a.Block)
		}
		if in.Table.Origin(a.Dest) != a.ASN && in.Table.Origin(a.Dest) == asn.None {
			t.Errorf("%s dest unrouted", a.Suffix)
		}
	}
	// Distinct suffixes and ASNs.
	seenSuffix := make(map[string]bool)
	for _, a := range in.ASes {
		if seenSuffix[a.Suffix] {
			t.Errorf("duplicate suffix %s", a.Suffix)
		}
		seenSuffix[a.Suffix] = true
	}
	// Tier-1s form a clique.
	t1 := in.byClass(Tier1)
	for i := range t1 {
		for j := i + 1; j < len(t1); j++ {
			if !in.Rel.IsPeer(t1[i].ASN, t1[j].ASN) {
				t.Errorf("tier1 %d and %d not peers", t1[i].ASN, t1[j].ASN)
			}
		}
	}
	// Stubs have at least one provider.
	for _, s := range in.byClass(Stub) {
		if len(in.Rel.Providers(s.ASN)) == 0 {
			t.Errorf("stub %d has no provider", s.ASN)
		}
	}
	if len(in.VPs) != cfg.VPs {
		t.Errorf("VPs = %d, want %d", len(in.VPs), cfg.VPs)
	}
}

func TestInterfaceInvariants(t *testing.T) {
	in := buildSmall(t, 11)
	list := psl.Default()
	for _, ifc := range in.Interfaces() {
		sup := in.AS(ifc.Supplier)
		if sup == nil {
			t.Fatalf("iface %v has unknown supplier %v", ifc.Addr, ifc.Supplier)
		}
		// The supplier's block or peering LAN contains the address.
		if !sup.Block.Contains(ifc.Addr) && !(sup.LAN.IsValid() && sup.LAN.Contains(ifc.Addr)) {
			t.Errorf("iface %v outside supplier %s block %v", ifc.Addr, sup.Suffix, sup.Block)
		}
		// Hostnames live under the supplier's suffix.
		if ifc.Hostname != "" && !strings.HasSuffix(ifc.Hostname, "."+sup.Suffix) {
			t.Errorf("hostname %q not under supplier suffix %s", ifc.Hostname, sup.Suffix)
		}
		// Hostname must parse and have the supplier suffix as its
		// registered domain.
		if ifc.Hostname != "" {
			reg, ok := list.RegisteredDomain(ifc.Hostname)
			if !ok || reg != sup.Suffix {
				t.Errorf("RegisteredDomain(%q) = %q,%v want %s", ifc.Hostname, reg, ok, sup.Suffix)
			}
		}
		// Embedded ASN bookkeeping: when the supplier labels neighbors
		// and the owner differs, a non-stale name embeds the owner's ASN
		// or a sibling of it (the org-primary labelling case).
		if ifc.EmbeddedASN != asn.None && !ifc.StaleName &&
			sup.Naming != nil && sup.Naming.LabelsNeighbor &&
			ifc.Router.Owner != sup.ASN {
			if !in.Orgs.Siblings(ifc.EmbeddedASN, ifc.Router.Owner) {
				t.Errorf("iface %v embedded %v but owner is %v", ifc.Addr, ifc.EmbeddedASN, ifc.Router.Owner)
			}
		}
		if ifc.StaleName && ifc.EmbeddedASN == ifc.Router.Owner {
			t.Errorf("iface %v stale but embeds the correct ASN", ifc.Addr)
		}
	}
}

func TestBGPLongestPrefix(t *testing.T) {
	in := buildSmall(t, 13)
	// Interdomain /30 addresses resolve to the supplier's ASN; IXP
	// peering LANs are intentionally unannounced (no origin).
	for _, l := range in.Links {
		switch l.Kind {
		case LinkIntra:
			continue
		case LinkIXP:
			for _, ifc := range []*Interface{l.A, l.B} {
				if origin := in.Table.Origin(ifc.Addr); origin != asn.None {
					t.Errorf("LAN addr %v has origin %v, want none", ifc.Addr, origin)
				}
			}
		default:
			for _, ifc := range []*Interface{l.A, l.B} {
				if origin := in.Table.Origin(ifc.Addr); origin != ifc.Supplier {
					t.Errorf("origin(%v) = %v, want supplier %v", ifc.Addr, origin, ifc.Supplier)
				}
			}
		}
	}
}

func TestASPathValleyFree(t *testing.T) {
	in := buildSmall(t, 17)
	classify := func(a, b asn.ASN) string {
		switch {
		case in.Rel.IsProvider(b, a): // b provides to a: a->b is "up"
			return "up"
		case in.Rel.IsProvider(a, b):
			return "down"
		case in.Rel.IsPeer(a, b):
			return "peer"
		default:
			return "none"
		}
	}
	checked := 0
	for i, src := range in.ASes {
		if i%7 != 0 {
			continue
		}
		for j, dst := range in.ASes {
			if j%11 != 0 || src == dst {
				continue
			}
			path := in.ASPath(src.ASN, dst.ASN)
			if path == nil {
				continue
			}
			checked++
			if path[0] != src.ASN || path[len(path)-1] != dst.ASN {
				t.Fatalf("path endpoints wrong: %v", path)
			}
			// Valley-free: up* peer? down*
			stage := 0 // 0=up, 1=peer seen, 2=down
			for k := 0; k+1 < len(path); k++ {
				rel := classify(path[k], path[k+1])
				switch rel {
				case "none":
					t.Fatalf("path %v uses non-adjacent step %v->%v", path, path[k], path[k+1])
				case "up":
					if stage != 0 {
						t.Fatalf("path %v ascends after descending", path)
					}
				case "peer":
					if stage != 0 {
						t.Fatalf("path %v uses a second peer/descent", path)
					}
					stage = 1
				case "down":
					stage = 2
				}
			}
			// No duplicate ASes.
			seen := make(map[asn.ASN]bool)
			for _, a := range path {
				if seen[a] {
					t.Fatalf("path %v loops", path)
				}
				seen[a] = true
			}
		}
	}
	if checked < 50 {
		t.Fatalf("only %d paths checked", checked)
	}
}

func TestASPathPrefersCustomers(t *testing.T) {
	in := buildSmall(t, 19)
	// For any provider with a customer, path provider->customer must be
	// direct (length 2) or all-down.
	for _, a := range in.byClass(Tier1, Transit) {
		for _, c := range in.Rel.Customers(a.ASN) {
			path := in.ASPath(a.ASN, c)
			if path == nil {
				t.Fatalf("no path from %d to customer %d", a.ASN, c)
			}
			if len(path) != 2 {
				// Direct edge exists, so the path must be the edge.
				t.Errorf("path %d->%d = %v, want direct", a.ASN, c, path)
			}
		}
	}
}

func TestTraceProducesKnownAddrs(t *testing.T) {
	in := buildSmall(t, 23)
	corpus := in.TraceAll()
	if corpus.Len() < 500 {
		t.Fatalf("corpus too small: %d", corpus.Len())
	}
	reached := 0
	for _, p := range corpus.Paths {
		if p.Reached {
			reached++
			last := p.Hops[len(p.Hops)-1]
			if last.Addr != p.Dst {
				t.Errorf("reached path does not end at dst: %v vs %v", last.Addr, p.Dst)
			}
		}
		for _, h := range p.Hops {
			if h.Responded() && in.ByAddr[h.Addr] == nil {
				t.Fatalf("hop %v not a known interface", h.Addr)
			}
		}
	}
	if reached == 0 {
		t.Error("no path reached its destination")
	}
	// Cross-AS hops must include supplier-addressed entry interfaces:
	// at least some hops respond with an address whose BGP origin is not
	// the router owner (the figure-1 situation).
	mismatch := 0
	for _, p := range corpus.Paths {
		for _, h := range p.Hops {
			if !h.Responded() {
				continue
			}
			ifc := in.ByAddr[h.Addr]
			if in.Table.Origin(h.Addr) != ifc.Router.Owner {
				mismatch++
			}
		}
	}
	if mismatch == 0 {
		t.Error("no supplier-addressed hops observed; figure-1 situation missing")
	}
}

func TestTraceSingleDeterministic(t *testing.T) {
	in := buildSmall(t, 29)
	vp, dst := in.VPs[0], in.ASes[len(in.ASes)-1]
	if vp == dst {
		dst = in.ASes[0]
	}
	r1 := rand.New(rand.NewSource(1))
	r2 := rand.New(rand.NewSource(1))
	p1, ok1 := in.Trace(r1, vp, dst)
	p2, ok2 := in.Trace(r2, vp, dst)
	if ok1 != ok2 || len(p1.Hops) != len(p2.Hops) {
		t.Fatal("trace not deterministic")
	}
	for i := range p1.Hops {
		if p1.Hops[i] != p2.Hops[i] {
			t.Fatal("hops differ")
		}
	}
}

func TestNamingStylesPresent(t *testing.T) {
	in := buildSmall(t, 31)
	styles := make(map[Style]int)
	ownLabel := 0
	for _, a := range in.ASes {
		if a.Naming == nil {
			continue
		}
		styles[a.Naming.Style]++
		if !a.Naming.LabelsNeighbor {
			ownLabel++
		}
	}
	if len(styles) < 3 {
		t.Errorf("only %d naming styles present: %v", len(styles), styles)
	}
	if ownLabel == 0 {
		t.Error("no figure-2-style own-ASN operators generated")
	}
	// Some interfaces must carry embedded neighbor ASNs.
	embedded := 0
	for _, ifc := range in.Interfaces() {
		if ifc.EmbeddedASN != asn.None && ifc.EmbeddedASN != ifc.Supplier {
			embedded++
		}
	}
	if embedded < 20 {
		t.Errorf("only %d neighbor-embedded hostnames", embedded)
	}
}

func TestSiblingsExist(t *testing.T) {
	cfg := DefaultConfig(37)
	cfg.SiblingRate = 0.5
	in, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for _, a := range in.ASes {
		if len(in.Orgs.SiblingSet(a.ASN)) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no sibling organizations generated")
	}
}

func TestMutateASN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		orig := asn.ASN(1000 + rng.Intn(100000))
		got := mutateASN(rng, orig)
		if got == orig.Digits() {
			t.Fatalf("mutateASN(%v) unchanged", orig)
		}
		if len(got) != len(orig.Digits()) {
			t.Fatalf("mutateASN(%v) = %q changed length", orig, got)
		}
		// Exactly one position differs.
		diff := 0
		d := orig.Digits()
		for j := range got {
			if got[j] != d[j] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("mutateASN(%v) = %q has %d diffs", orig, got, diff)
		}
	}
	// Short ASNs are not mutated.
	if got := mutateASN(rng, 42); got != "42" {
		t.Errorf("short ASN mutated: %q", got)
	}
}

func TestAddrAt(t *testing.T) {
	p := mustPfx("10.0.0.0/24")
	a, err := addrAt(p, 1)
	if err != nil || a.String() != "10.0.0.1" {
		t.Errorf("addrAt = %v, %v", a, err)
	}
	if _, err := addrAt(p, 256); err == nil {
		t.Error("out of range should error")
	}
	if _, err := addrAt(p, -1); err == nil {
		t.Error("negative should error")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Config{}); err == nil {
		t.Error("empty config should error")
	}
}

func BenchmarkBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Build(DefaultConfig(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceAll(b *testing.B) {
	in := buildSmall(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.TraceAll()
	}
}
