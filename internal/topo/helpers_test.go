package topo

import "net/netip"

func mustPfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
