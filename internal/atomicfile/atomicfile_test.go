package atomicfile

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	for _, content := range []string{"first", "second, longer content"} {
		if err := WriteFile(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != content {
			t.Fatalf("read %q, want %q", got, content)
		}
	}
}

// TestWriteFileFailureLeavesOldFile: a failing writer must leave the
// previous content untouched and no temp litter behind.
func TestWriteFileFailureLeavesOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old" {
		t.Fatalf("old content clobbered: %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestWriteFileBadDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "missing", "out.json"), func(io.Writer) error { return nil })
	if err == nil {
		t.Fatal("expected error for missing directory")
	}
}

// TestWriteFileIgnoresStaleTemps: temp litter from a crashed earlier
// writer (the daemon reload + checkpoint scenario) must neither break a
// new write nor be clobbered by it — a stale temp might belong to a
// concurrent writer that is still alive.
func TestWriteFileIgnoresStaleTemps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	stale := filepath.Join(dir, "out.json.tmp-12345")
	if err := os.WriteFile(stale, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "fresh")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, err := os.ReadFile(path); err != nil || string(got) != "fresh" {
		t.Fatalf("target = %q, %v; want fresh", got, err)
	}
	if got, err := os.ReadFile(stale); err != nil || string(got) != "stale" {
		t.Fatalf("stale temp = %q, %v; a foreign temp must be left alone", got, err)
	}
}

// TestWriteFileReplacesReadOnlyTarget: rename permissions live on the
// directory, not the file, so a read-only corpus on disk (a common
// deploy hardening) is still hot-swappable.
func TestWriteFileReplacesReadOnlyTarget(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("locked"), 0o400); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "replaced")
		return err
	}); err != nil {
		t.Fatalf("rename over a read-only target: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "replaced" {
		t.Fatalf("target = %q, want replaced", got)
	}
}

// TestWriteFileSyncFailure: an fsync error must propagate to the
// caller, remove the temp file, and leave the old content untouched —
// a silently skipped sync would void the power-loss guarantee the
// corpus saver and checkpoint writer depend on.
func TestWriteFileSyncFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	syncErr := errors.New("disk on fire")
	orig := syncFile
	syncFile = func(*os.File) error { return syncErr }
	defer func() { syncFile = orig }()

	err := WriteFile(path, func(w io.Writer) error {
		_, werr := io.WriteString(w, "new")
		return werr
	})
	if !errors.Is(err, syncErr) {
		t.Fatalf("err = %v, want the injected sync failure", err)
	}
	if !strings.Contains(err.Error(), "sync") {
		t.Errorf("err = %q, want a sync mention for the post-mortem", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "old" {
		t.Fatalf("target = %q, old content must survive a failed sync", got)
	}
	ents, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind after sync failure: %s", e.Name())
		}
	}
}
