package atomicfile

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	for _, content := range []string{"first", "second, longer content"} {
		if err := WriteFile(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != content {
			t.Fatalf("read %q, want %q", got, content)
		}
	}
}

// TestWriteFileFailureLeavesOldFile: a failing writer must leave the
// previous content untouched and no temp litter behind.
func TestWriteFileFailureLeavesOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old" {
		t.Fatalf("old content clobbered: %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestWriteFileBadDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "missing", "out.json"), func(io.Writer) error { return nil })
	if err == nil {
		t.Fatal("expected error for missing directory")
	}
}
