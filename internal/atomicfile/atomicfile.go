// Package atomicfile writes files atomically: content is staged in a
// temporary file in the destination directory and moved into place with
// os.Rename, which is atomic on POSIX filesystems. A crash mid-write
// leaves either the old file or the new file on disk, never a torn
// mixture — the property the corpus saver and the learner's checkpoint
// writer depend on (a torn corpus JSON would fail to load; a torn
// checkpoint would silently lose a run's progress).
package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// syncFile flushes the staged temp file to stable storage. A variable
// so the fsync-failure path — unreachable on a healthy filesystem — can
// be exercised by tests; production code must not touch it.
var syncFile = func(f *os.File) error { return f.Sync() }

// WriteFile atomically replaces path with the bytes produced by write.
// The temporary file lives in path's directory (renames across
// filesystems are not atomic) and is removed on any failure.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	// Flush to stable storage before the rename publishes the file, so
	// the atomicity guarantee holds across power loss, not just crashes.
	if err = syncFile(tmp); err != nil {
		return fmt.Errorf("atomicfile: sync %s: %w", tmp.Name(), err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicfile: close %s: %w", tmp.Name(), err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicfile: %w", err)
	}
	return nil
}
