package traceroute

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func samplePath() Path {
	return Path{
		VP:  "vp1",
		Dst: addr("10.9.0.1"),
		Hops: []Hop{
			{Addr: addr("10.1.0.1")},
			{},
			{Addr: addr("10.2.0.1")},
			{Addr: addr("10.9.0.1")},
		},
		Reached: true,
	}
}

func TestHopString(t *testing.T) {
	if (Hop{}).String() != "*" || (Hop{}).Responded() {
		t.Error("empty hop wrong")
	}
	h := Hop{Addr: addr("10.0.0.1")}
	if h.String() != "10.0.0.1" || !h.Responded() {
		t.Error("hop wrong")
	}
}

func TestResponding(t *testing.T) {
	got := samplePath().Responding()
	if len(got) != 3 || got[0] != addr("10.1.0.1") || got[2] != addr("10.9.0.1") {
		t.Errorf("Responding = %v", got)
	}
}

func TestCorpusRoundTrip(t *testing.T) {
	c := &Corpus{}
	c.Add(samplePath())
	c.Add(Path{VP: "vp2", Dst: addr("10.8.0.1"), Hops: []Hop{{Addr: addr("10.1.0.1")}}})
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "vp1|10.9.0.1|1|10.1.0.1,*,10.2.0.1,10.9.0.1") {
		t.Errorf("serialized:\n%s", text)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("Len = %d", got.Len())
	}
	p := got.Paths[0]
	if p.VP != "vp1" || !p.Reached || len(p.Hops) != 4 || p.Hops[1].Responded() {
		t.Errorf("path = %+v", p)
	}
	if got.Paths[1].Reached {
		t.Error("vp2 path should be unreached")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"vp|10.0.0.1|1",
		"vp|notanip|1|10.0.0.1",
		"vp|10.0.0.1|1|bogus",
	}
	for _, b := range bad {
		if _, err := Parse(strings.NewReader(b)); err == nil {
			t.Errorf("Parse(%q) should error", b)
		}
	}
	c, err := Parse(strings.NewReader("# comment\n\n"))
	if err != nil || c.Len() != 0 {
		t.Errorf("comments/blank should parse to empty corpus: %v %d", err, c.Len())
	}
}

func TestAddrsAndVPs(t *testing.T) {
	c := &Corpus{}
	c.Add(samplePath())
	c.Add(Path{VP: "vp0", Dst: addr("10.8.0.1"), Hops: []Hop{{Addr: addr("10.1.0.1")}}})
	addrs := c.Addrs()
	if len(addrs) != 3 {
		t.Errorf("Addrs = %v", addrs)
	}
	for i := 1; i < len(addrs); i++ {
		if !addrs[i-1].Less(addrs[i]) {
			t.Error("Addrs not sorted")
		}
	}
	vps := c.VPs()
	if len(vps) != 2 || vps[0] != "vp0" || vps[1] != "vp1" {
		t.Errorf("VPs = %v", vps)
	}
}

func TestAdjacentPairsSkipsGaps(t *testing.T) {
	c := &Corpus{}
	c.Add(samplePath()) // 10.1.0.1, *, 10.2.0.1, 10.9.0.1
	var pairs [][2]netip.Addr
	c.AdjacentPairs(func(a, b netip.Addr) { pairs = append(pairs, [2]netip.Addr{a, b}) })
	if len(pairs) != 1 {
		t.Fatalf("pairs = %v", pairs)
	}
	if pairs[0] != [2]netip.Addr{addr("10.2.0.1"), addr("10.9.0.1")} {
		t.Errorf("pair = %v", pairs[0])
	}
}

func BenchmarkCorpusRoundTrip(b *testing.B) {
	c := &Corpus{}
	for i := 0; i < 1000; i++ {
		c.Add(samplePath())
	}
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := c.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := Parse(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}
