// Package traceroute defines the path data model shared by the synthetic
// prober (internal/topo), the ITDK assembler (internal/itdk), and the
// router-ownership heuristics (internal/rtaa, internal/bdrmapit).
//
// A Path records the interface addresses that responded hop by hop from a
// vantage point toward a destination, the way scamper records traceroute
// output for CAIDA's Ark measurements that feed the ITDK.
package traceroute

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strings"
)

// Hop is a single traceroute response. A zero Addr marks a non-responding
// hop ("*").
type Hop struct {
	Addr netip.Addr
}

// Responded reports whether the hop carried a response.
func (h Hop) Responded() bool { return h.Addr.IsValid() }

func (h Hop) String() string {
	if !h.Responded() {
		return "*"
	}
	return h.Addr.String()
}

// Path is one traceroute.
type Path struct {
	// VP names the vantage point that launched the probe.
	VP string
	// Dst is the probed destination address.
	Dst netip.Addr
	// Hops are the responses in order; the destination's response, when
	// received, is the final hop.
	Hops []Hop
	// Reached reports whether the destination responded.
	Reached bool
}

// Responding returns the addresses of responding hops, in order.
func (p Path) Responding() []netip.Addr {
	out := make([]netip.Addr, 0, len(p.Hops))
	for _, h := range p.Hops {
		if h.Responded() {
			out = append(out, h.Addr)
		}
	}
	return out
}

// Corpus is a collection of traceroutes, the unit of input to ITDK
// assembly.
type Corpus struct {
	Paths []Path
}

// Add appends a path.
func (c *Corpus) Add(p Path) { c.Paths = append(c.Paths, p) }

// Len returns the number of paths.
func (c *Corpus) Len() int { return len(c.Paths) }

// Addrs returns every distinct responding hop address observed, sorted.
func (c *Corpus) Addrs() []netip.Addr {
	seen := make(map[netip.Addr]struct{})
	for _, p := range c.Paths {
		for _, h := range p.Hops {
			if h.Responded() {
				seen[h.Addr] = struct{}{}
			}
		}
	}
	out := make([]netip.Addr, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// VPs returns the distinct vantage point names, sorted.
func (c *Corpus) VPs() []string {
	seen := make(map[string]struct{})
	for _, p := range c.Paths {
		seen[p.VP] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// WriteTo serializes the corpus, one path per line:
//
//	vp|dst|reached|hop1,hop2,*,hop4
func (c *Corpus) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, p := range c.Paths {
		hops := make([]string, len(p.Hops))
		for i, h := range p.Hops {
			hops[i] = h.String()
		}
		reached := "0"
		if p.Reached {
			reached = "1"
		}
		written, err := fmt.Fprintf(w, "%s|%s|%s|%s\n", p.VP, p.Dst, reached, strings.Join(hops, ","))
		n += int64(written)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Parse reads the WriteTo format ('#' comments and blank lines ignored).
func Parse(r io.Reader) (*Corpus, error) {
	c := &Corpus{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "|")
		if len(fields) != 4 {
			return nil, fmt.Errorf("traceroute: line %d: want vp|dst|reached|hops", lineno)
		}
		dst, err := netip.ParseAddr(fields[1])
		if err != nil {
			return nil, fmt.Errorf("traceroute: line %d: %w", lineno, err)
		}
		p := Path{VP: fields[0], Dst: dst, Reached: fields[2] == "1"}
		if fields[3] != "" {
			for _, hs := range strings.Split(fields[3], ",") {
				if hs == "*" {
					p.Hops = append(p.Hops, Hop{})
					continue
				}
				a, err := netip.ParseAddr(hs)
				if err != nil {
					return nil, fmt.Errorf("traceroute: line %d: hop %q: %w", lineno, hs, err)
				}
				p.Hops = append(p.Hops, Hop{Addr: a})
			}
		}
		c.Add(p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// AdjacentPairs calls fn for every consecutive pair of responding hops
// (a, b) in every path, skipping pairs separated by a non-responding hop,
// since an intervening "*" means a and b are not known to be adjacent
// routers.
func (c *Corpus) AdjacentPairs(fn func(a, b netip.Addr)) {
	for _, p := range c.Paths {
		for i := 0; i+1 < len(p.Hops); i++ {
			if p.Hops[i].Responded() && p.Hops[i+1].Responded() {
				fn(p.Hops[i].Addr, p.Hops[i+1].Addr)
			}
		}
	}
}
