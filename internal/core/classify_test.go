package core

import (
	"testing"
)

func TestClassifyThresholds(t *testing.T) {
	set, err := NewSet("x.net", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		e    Eval
		want Classification
	}{
		{Eval{TP: 10, Matches: 10, UniqueTP: 5}, Good},            // PPV 1.0
		{Eval{TP: 8, FP: 2, Matches: 10, UniqueTP: 3}, Good},      // PPV 0.8
		{Eval{TP: 7, FP: 3, Matches: 10, UniqueTP: 3}, Promising}, // PPV 0.7
		{Eval{TP: 8, FP: 2, Matches: 10, UniqueTP: 2}, Promising}, // only 2 unique
		{Eval{TP: 5, FP: 5, Matches: 10, UniqueTP: 2}, Promising}, // PPV 0.5 boundary
		{Eval{TP: 4, FP: 6, Matches: 10, UniqueTP: 4}, Poor},      // PPV 0.4
		{Eval{TP: 9, FP: 1, Matches: 10, UniqueTP: 1}, Poor},      // 1 unique
		{Eval{}, Poor}, // empty
		{Eval{TP: 100, FP: 24, Matches: 124, UniqueTP: 50}, Good},      // PPV 0.806
		{Eval{TP: 100, FP: 26, Matches: 126, UniqueTP: 50}, Promising}, // PPV 0.794
	}
	for i, c := range cases {
		if got := set.Classify(c.e); got != c.want {
			t.Errorf("case %d: Classify(%+v) = %v, want %v", i, c.e, got, c.want)
		}
	}
}

func TestClassificationUsable(t *testing.T) {
	if Poor.Usable() || !Promising.Usable() || !Good.Usable() {
		t.Error("Usable wrong")
	}
	if Good.String() != "good" || Promising.String() != "promising" || Poor.String() != "poor" {
		t.Error("String wrong")
	}
}

func TestATPAndPPV(t *testing.T) {
	e := Eval{TP: 11, FP: 3, FN: 0, Matches: 14}
	if e.ATP() != 8 {
		t.Errorf("ATP = %d", e.ATP())
	}
	if ppv := e.PPV(); ppv < 0.785 || ppv > 0.786 {
		t.Errorf("PPV = %f", ppv)
	}
	if (Eval{}).PPV() != 0 {
		t.Error("empty PPV should be 0")
	}
	neg := Eval{TP: 2, FP: 5, FN: 4, Matches: 7}
	if neg.ATP() != -7 {
		t.Errorf("negative ATP = %d", neg.ATP())
	}
}

func styleNC(t *testing.T, suffix string, srcs ...string) *NC {
	t.Helper()
	return &NC{Suffix: suffix, Regexes: parseAll(t, srcs)}
}

func TestStyleOf(t *testing.T) {
	cases := []struct {
		nc   *NC
		want Style
	}{
		// Table 1's archetypes.
		{styleNC(t, "example.com", `^as(\d+)\.example\.com$`), StyleSimple},
		{styleNC(t, "example.com", `^as(\d+)\.[a-z]+\.example\.com$`), StyleStart},
		{styleNC(t, "example.com", `^as(\d+)-[^-]+-[^\.]+\.example\.com$`), StyleStart},
		{styleNC(t, "example.com", `^[a-z\d]+\.as(\d+)\.example\.com$`), StyleEnd},
		{styleNC(t, "nts.ch", `^.+\.as(\d+)\.nts\.ch$`), StyleEnd},
		{styleNC(t, "nts.ch", `as(\d+)\.nts\.ch$`), StyleEnd},
		{styleNC(t, "example.com", `^(\d+)\.[a-z]+\d+\.example\.com$`), StyleBare},
		{styleNC(t, "example.com", `^(\d+)\.example\.com$`), StyleBare},
		{styleNC(t, "example.com", `^[a-z]+\.(\d+)\.example\.com$`), StyleBare},
		// ASN in the middle with "as" preface: complex.
		{styleNC(t, "example.com", `^[a-z]+\.as(\d+)\.[a-z]+\.example\.com$`), StyleComplex},
		// Annotation other than "as": complex.
		{styleNC(t, "example.com", `^gw(\d+)\.example\.com$`), StyleComplex},
		// Multiple regexes: complex.
		{styleNC(t, "equinix.com",
			`^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$`,
			`^(\d+)-.+\.equinix\.com$`), StyleComplex},
		// ASN in the middle without preface: complex.
		{styleNC(t, "example.com", `^[a-z]+\.(\d+)\.[a-z]+\.example\.com$`), StyleComplex},
		// "gw-as" context: the part-local preface is "as" (after the
		// dash); the ASN ends the hostname with fixed content before it.
		{styleNC(t, "init7.net", `^gw-as(\d+)\.init7\.net$`), StyleEnd},
	}
	for _, c := range cases {
		if got := StyleOf(c.nc); got != c.want {
			t.Errorf("StyleOf(%v) = %v, want %v", c.nc.Strings(), got, c.want)
		}
	}
}

func TestStyleStrings(t *testing.T) {
	want := map[Style]string{
		StyleSimple: "simple", StyleStart: "start", StyleEnd: "end",
		StyleBare: "bare", StyleComplex: "complex",
	}
	for st, w := range want {
		if st.String() != w {
			t.Errorf("%v.String() = %q", w, st.String())
		}
	}
}
