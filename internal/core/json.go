package core

import (
	"encoding/json"
	"fmt"

	"hoiho/internal/rex"
)

// ncJSON is the serialized form of an NC, stable across releases so that
// learned conventions can be shared as validation data (paper
// contribution 4).
type ncJSON struct {
	Suffix        string   `json:"suffix"`
	Regexes       []string `json:"regexes"`
	Class         string   `json:"class"`
	Single        bool     `json:"single,omitempty"`
	TP            int      `json:"tp"`
	FP            int      `json:"fp"`
	FN            int      `json:"fn"`
	Matches       int      `json:"matches"`
	UniqueTP      int      `json:"unique_tp"`
	UniqueExtract int      `json:"unique_extract"`
}

// MarshalJSON serializes the NC with its regexes in source form.
func (nc *NC) MarshalJSON() ([]byte, error) {
	return json.Marshal(ncJSON{
		Suffix:        nc.Suffix,
		Regexes:       nc.Strings(),
		Class:         nc.Class.String(),
		Single:        nc.Single,
		TP:            nc.Eval.TP,
		FP:            nc.Eval.FP,
		FN:            nc.Eval.FN,
		Matches:       nc.Eval.Matches,
		UniqueTP:      nc.Eval.UniqueTP,
		UniqueExtract: nc.Eval.UniqueExtract,
	})
}

// UnmarshalJSON restores an NC. Regexes are re-parsed from their source
// form; the structured token view is not needed once a convention is
// being applied rather than learned, so the regexes are wrapped as
// opaque compiled patterns via parseRegex.
func (nc *NC) UnmarshalJSON(data []byte) error {
	var j ncJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	nc.Suffix = j.Suffix
	nc.Regexes = nil
	for _, src := range j.Regexes {
		r, err := rex.Parse(src)
		if err != nil {
			return fmt.Errorf("core: nc %s: %w", j.Suffix, err)
		}
		nc.Regexes = append(nc.Regexes, r)
	}
	switch j.Class {
	case "good":
		nc.Class = Good
	case "promising":
		nc.Class = Promising
	case "poor":
		nc.Class = Poor
	default:
		return fmt.Errorf("core: nc %s: unknown class %q", j.Suffix, j.Class)
	}
	nc.Single = j.Single
	nc.Eval = Eval{
		TP: j.TP, FP: j.FP, FN: j.FN, Matches: j.Matches,
		UniqueTP: j.UniqueTP, UniqueExtract: j.UniqueExtract,
	}
	return nil
}

// MarshalNCs serializes a slice of NCs as indented JSON.
func MarshalNCs(ncs []*NC) ([]byte, error) {
	return json.MarshalIndent(ncs, "", "  ")
}

// UnmarshalNCs parses a slice of NCs.
func UnmarshalNCs(data []byte) ([]*NC, error) {
	var ncs []*NC
	if err := json.Unmarshal(data, &ncs); err != nil {
		return nil, err
	}
	return ncs, nil
}
