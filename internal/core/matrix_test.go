package core

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"testing"

	"hoiho/internal/asn"
	"hoiho/internal/rex"
)

// randomItems fabricates a training set mixing clean conventions,
// typo'd ASNs, embedded-IP hostnames (figure 3b), incongruent training
// ASNs, and ASN-free noise.
func randomItems(rng *rand.Rand, n int) []Item {
	pops := []string{"nyc", "lax", "fra", "lhr", "sin", "ams"}
	items := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		a := 1000 + rng.Intn(60000)
		pop := pops[rng.Intn(len(pops))]
		switch rng.Intn(8) {
		case 0, 1: // start style
			items = append(items, Item{Hostname: fmt.Sprintf("as%d-%s-%d.rand.net", a, pop, rng.Intn(4)), ASN: asn.ASN(a)})
		case 2: // end style
			items = append(items, Item{Hostname: fmt.Sprintf("xe%d.cust.as%d.rand.net", rng.Intn(8), a), ASN: asn.ASN(a)})
		case 3: // bare
			items = append(items, Item{Hostname: fmt.Sprintf("%d.%s%d.rand.net", a, pop, rng.Intn(3)), ASN: asn.ASN(a)})
		case 4: // typo'd apparent ASN: swap two middle digits
			d := fmt.Sprintf("%d", a)
			if len(d) >= 4 {
				b := []byte(d)
				b[1], b[2] = b[2], b[1]
				items = append(items, Item{Hostname: fmt.Sprintf("as%s-%s.rand.net", string(b), pop), ASN: asn.ASN(a)})
				break
			}
			items = append(items, Item{Hostname: fmt.Sprintf("as%d-%s.rand.net", a, pop), ASN: asn.ASN(a)})
		case 5: // incongruent training ASN: hostname digits differ entirely
			items = append(items, Item{Hostname: fmt.Sprintf("as%d-%s-%d.rand.net", a, pop, rng.Intn(4)), ASN: asn.ASN(90000 + rng.Intn(5000))})
		case 6: // embedded IP whose last octet echoes the training ASN
			o := 1 + rng.Intn(250)
			addr := netip.AddrFrom4([4]byte{10, byte(rng.Intn(250)), byte(rng.Intn(250)), byte(o)})
			items = append(items, Item{
				Hostname: fmt.Sprintf("10-%d-%d-%d-static.%s.rand.net", addr.As4()[1], addr.As4()[2], o, pop),
				Addr:     addr,
				ASN:      asn.ASN(o),
			})
		default: // noise without any apparent ASN
			items = append(items, Item{Hostname: fmt.Sprintf("lo0.core.%s.rand.net", pop), ASN: asn.ASN(a)})
		}
	}
	return items
}

// randomPool builds a candidate pool from the set's own generator plus
// hand-written shapes covering left-open regexes, alternations, and
// character classes.
func randomPool(t *testing.T, rng *rand.Rand, set *Set) []*rex.Regex {
	pool := set.generate()
	for _, src := range []string{
		`as(\d+)\.rand\.net$`, // left-open, figure-2 style
		`^as(\d+)-[a-z]+-\d+\.rand\.net$`,
		`^(?:p|s)?(\d+)\.[a-z\d]+\.rand\.net$`,
		`^[^\.]+\.cust\.as(\d+)\.rand\.net$`,
		`^(\d+)-.+\.rand\.net$`,
		`(\d+)\.rand\.net$`, // left-open bare capture
	} {
		pool = append(pool, mustParseRegex(t, src))
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if len(pool) > 48 {
		pool = pool[:48]
	}
	return pool
}

// TestMatrixMatchesOracle is the engine's equivalence proof: on
// randomized item sets and regex pools, every memoized evaluation —
// single-regex columns, ordered set combines, and the incremental
// greedy trials — must return the same Eval as the naive Evaluate
// oracle. Run under -race it also exercises the parallel column builds.
func TestMatrixMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for trial := 0; trial < 25; trial++ {
		opts := Options{
			DisableTypoCredit: trial%3 == 0,
			Workers:           1 + rng.Intn(4),
		}
		set, err := NewSet("rand.net", randomItems(rng, 20+rng.Intn(120)), opts)
		if err != nil {
			t.Fatal(err)
		}
		pool := randomPool(t, rng, set)
		m := set.matrix()
		if err := m.ensure(context.Background(), pool); err != nil {
			t.Fatal(err)
		}

		// Single-regex columns against the oracle.
		for _, r := range pool {
			want := set.Evaluate(r)
			got := m.column(r).eval
			if got != want {
				t.Fatalf("trial %d: column eval(%s) = %+v, oracle %+v", trial, r, got, want)
			}
		}

		// Ordered subsets against the oracle, and the incremental greedy
		// combine against full re-evaluation at every step.
		for sub := 0; sub < 8; sub++ {
			k := 1 + rng.Intn(5)
			regexes := make([]*rex.Regex, 0, k)
			cols := make([]*column, 0, k)
			for len(regexes) < k {
				r := pool[rng.Intn(len(pool))]
				regexes = append(regexes, r)
				cols = append(cols, m.column(r))
			}
			want := set.Evaluate(regexes...)
			if got := m.evalSet(cols); got != want {
				t.Fatalf("trial %d: evalSet(%v) = %+v, oracle %+v", trial, regexes, got, want)
			}
			state := m.newSetState()
			accepted := make([]*rex.Regex, 0, k)
			for i, c := range cols {
				trialOracle := set.Evaluate(append(append([]*rex.Regex(nil), accepted...), regexes[i])...)
				if got := state.trialATP(c); got != trialOracle.ATP() {
					t.Fatalf("trial %d: trialATP(%s after %v) = %d, oracle %d",
						trial, regexes[i], accepted, got, trialOracle.ATP())
				}
				if rng.Intn(2) == 0 {
					state.absorb(c)
					accepted = append(accepted, regexes[i])
					if state.atp() != trialOracle.ATP() {
						t.Fatalf("trial %d: absorbed ATP %d != oracle %d", trial, state.atp(), trialOracle.ATP())
					}
				}
			}
		}
	}
}

// TestLearnEvalConsistency: whatever NC the memoized pipeline learns,
// re-scoring its regexes through the naive oracle must reproduce the
// stored Eval exactly.
func TestLearnEvalConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		set, err := NewSet("rand.net", randomItems(rng, 30+rng.Intn(100)), Options{Workers: 1 + rng.Intn(3)})
		if err != nil {
			t.Fatal(err)
		}
		nc := learnT(t, set)
		if nc == nil {
			continue
		}
		if got := set.Evaluate(nc.Regexes...); got != nc.Eval {
			t.Fatalf("trial %d: NC eval %+v, oracle %+v (%v)", trial, nc.Eval, got, nc.Strings())
		}
	}
}

// TestMatrixBadColumn: a regex that cannot compile must evaluate like
// the oracle does (no matches, every apparent-ASN item an FN) and must
// not derail set evaluation.
func TestMatrixBadColumn(t *testing.T) {
	set, err := NewSet("x.com", []Item{
		{Hostname: "as100.x.com", ASN: 100},
		{Hostname: "lo0.x.com", ASN: 200},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := set.matrix()
	bad := &column{bad: true}
	m.finishColumn(bad, nil)
	if bad.eval.FN != 1 || bad.eval.Matches != 0 {
		t.Errorf("bad column eval = %+v, want FN=1", bad.eval)
	}
	good := m.column(mustParseRegex(t, `^as(\d+)\.x\.com$`))
	ev := m.evalSet([]*column{bad, good})
	if ev.TP != 1 || ev.FN != 0 {
		t.Errorf("evalSet with bad column = %+v, want TP=1 FN=0", ev)
	}
	st := m.newSetState()
	if st.trialATP(bad) != st.atp() {
		t.Error("trialATP on a bad column must be a no-op")
	}
}

// TestBitset covers the word-boundary arithmetic the engine leans on.
func TestBitset(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 200} {
		b := newBitset(n)
		b.fill(n)
		if b.count() != n {
			t.Errorf("fill(%d).count() = %d", n, b.count())
		}
	}
	b := newBitset(130)
	b.set(0)
	b.set(64)
	b.set(129)
	if b.count() != 3 || !b.get(129) || b.get(128) {
		t.Errorf("bitset ops broken: count=%d", b.count())
	}
}

// TestOptionsMaxSingleNCs pins the hoisted single-regex NC cap: the
// default is 32, and a sweep value must restrict how many top-ranked
// single regexes reach final selection.
func TestOptionsMaxSingleNCs(t *testing.T) {
	if got := (Options{}).maxSingleNCs(); got != 32 {
		t.Errorf("default maxSingleNCs = %d, want 32", got)
	}
	if got := (Options{MaxSingleNCs: 5}).maxSingleNCs(); got != 5 {
		t.Errorf("maxSingleNCs = %d, want 5", got)
	}

	// Two formats; sets disabled so the NC must be a single regex. With
	// the cap at 1, only the rank-1 regex is a candidate; ranking by PPV
	// puts the small perfect-precision format first, while §3.6's
	// ATP-ordered selection would otherwise prefer the big format's
	// regex from deeper in the ranking.
	var items []Item
	for i := 0; i < 12; i++ {
		a := 3000 + i*11
		items = append(items, Item{Hostname: fmt.Sprintf("as%d-pop%d.cap.net", a, i%4), ASN: asn.ASN(a)})
	}
	// One FP row drops the big format's PPV below the small format's.
	items = append(items, Item{Hostname: "as9999-pop0.cap.net", ASN: asn.ASN(77)})
	for i := 0; i < 3; i++ {
		a := 8000 + i*17
		items = append(items, Item{Hostname: fmt.Sprintf("gw%d.cust%d.cap.net", a, i), ASN: asn.ASN(a)})
	}
	opts := Options{DisableSets: true, RankByPPV: true}
	capped := opts
	capped.MaxSingleNCs = 1

	full, err := NewSet("cap.net", items, opts)
	if err != nil {
		t.Fatal(err)
	}
	one, err := NewSet("cap.net", items, capped)
	if err != nil {
		t.Fatal(err)
	}
	ncFull, ncOne := learnT(t, full), learnT(t, one)
	if ncFull == nil || ncOne == nil {
		t.Fatal("learning failed")
	}
	if ncOne.Eval.TP >= ncFull.Eval.TP {
		t.Errorf("cap=1 should pin the PPV-ranked single NC: TP %d (capped) vs %d (default), %v vs %v",
			ncOne.Eval.TP, ncFull.Eval.TP, ncOne.Strings(), ncFull.Strings())
	}
}
