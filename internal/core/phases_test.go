package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"hoiho/internal/asn"
	"hoiho/internal/rex"
)

// TestGenerateVariants checks the §3.2 generator's structural variants
// for a single hostname: exclusion modes, the one-.+-per-regex rule, and
// left-open forms.
func TestGenerateVariants(t *testing.T) {
	set, err := NewSet("example.com", []Item{
		{Hostname: "as100-fr5-ix.example.com", ASN: 100},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := set.generate()
	srcs := make(map[string]bool, len(base))
	dotCount := 0
	for _, r := range base {
		srcs[r.String()] = true
		if strings.Count(r.String(), ".+") > 1 {
			t.Errorf("regex %s has more than one .+", r)
		}
		if strings.Contains(r.String(), ".+") {
			dotCount++
		}
	}
	for _, want := range []string{
		`^as(\d+)-[^-]+-[^\.-]+\.example\.com$`, // both-delims mode
		`^as(\d+)-[^-]+-[^-]+\.example\.com$`,   // left-delim mode
		`^as(\d+)-.+\.example\.com$`,            // right .+
	} {
		if !srcs[want] {
			t.Errorf("missing variant %s (have %d variants)", want, len(srcs))
		}
	}
	if dotCount == 0 {
		t.Error("no .+ variants generated")
	}
}

func TestGenerateLeftOpenVariant(t *testing.T) {
	set, err := NewSet("nts.ch", []Item{
		{Hostname: "a.b.as15576.nts.ch", ASN: 15576},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range set.generate() {
		if r.String() == `as(\d+)\.nts\.ch$` {
			found = true
			if !r.LeftOpen() {
				t.Error("figure-2 form should be left-open")
			}
		}
	}
	if !found {
		t.Error("left-open as(\\d+) variant missing")
	}
}

func TestGenerateSkipsSuffixDigits(t *testing.T) {
	// "7" inside init7.net is part of the registered domain and must not
	// seed a candidate.
	set, err := NewSet("init7.net", []Item{
		{Hostname: "core1.init7.net", ASN: 7},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range set.generate() {
		t.Errorf("unexpected candidate %s", r)
	}
}

// TestMergePhaseProducesAlternation drives §3.3 directly.
func TestMergePhaseProducesAlternation(t *testing.T) {
	set, err := NewSet("x.com", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool := []*rex.Regex{
		mustParseRegex(t, `^p(\d+)\.[^\.]+\.x\.com$`),
		mustParseRegex(t, `^s(\d+)\.[^\.]+\.x\.com$`),
		mustParseRegex(t, `^(\d+)\.[^\.]+\.x\.com$`),
	}
	merged := set.mergePhase(pool)
	want := `^(?:p|s)?(\d+)\.[^\.]+\.x\.com$`
	found := false
	for _, r := range merged {
		if r.String() == want {
			found = true
		}
	}
	if !found {
		var all []string
		for _, r := range merged {
			all = append(all, r.String())
		}
		t.Errorf("merge pool missing %s:\n%s", want, strings.Join(all, "\n"))
	}
	// Originals stay in the pool (ranking decides winners).
	if len(merged) <= len(pool) {
		t.Errorf("merge produced nothing: %d <= %d", len(merged), len(pool))
	}
}

// TestClassPhaseEmbedsNarrowestClass drives §3.4 directly.
func TestClassPhaseEmbedsNarrowestClass(t *testing.T) {
	items := []Item{
		{Hostname: "100.sgw.x.com", ASN: 100},
		{Hostname: "200.os.x.com", ASN: 200},
		{Hostname: "300.me1.x.com", ASN: 300}, // digit forces [a-z\d]+
	}
	set, err := NewSet("x.com", items, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := mustParseRegex(t, `^(\d+)\.[^\.]+\.x\.com$`)
	out := set.embedClasses(r)
	if out == nil {
		t.Fatal("no class-embedded regex")
	}
	if out.String() != `^(\d+)\.[a-z\d]+\.x\.com$` {
		t.Errorf("embedded = %s", out)
	}
	// All-alpha samples yield [a-z]+.
	alpha := []Item{
		{Hostname: "100.sgw.y.com", ASN: 100},
		{Hostname: "200.os.y.com", ASN: 200},
	}
	set2, err := NewSet("y.com", alpha, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out2 := set2.embedClasses(mustParseRegex(t, `^(\d+)\.[^\.]+\.y\.com$`))
	if out2 == nil || out2.String() != `^(\d+)\.[a-z]+\.y\.com$` {
		t.Errorf("embedded = %v", out2)
	}
	// No exclusion tokens: nothing to do.
	if set2.embedClasses(mustParseRegex(t, `^as(\d+)\.y\.com$`)) != nil {
		t.Error("regex without exclusions should return nil")
	}
}

// TestSelectBestPrefersFewerRegexes verifies the §3.6 rule: a lower-ATP
// NC with fewer regexes takes over when it matches at least as many
// hostnames, has at least as many TPs, and at most one extra FP.
func TestSelectBestPrefersFewerRegexes(t *testing.T) {
	set, err := NewSet("x.com", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r1 := mustParseRegex(t, `^as(\d+)\.x\.com$`)
	r2 := mustParseRegex(t, `^gw(\d+)\.x\.com$`)
	r3 := mustParseRegex(t, `^(\d+)\.[a-z]+\.x\.com$`)
	ncs := []candidateNC{
		// Rank 1: two regexes, ATP 10 (TP 10, FP 0), 10 matches.
		{regexes: []*rex.Regex{r1, r2}, eval: Eval{TP: 10, Matches: 10}},
		// Rank 2: one regex, ATP 9 (TP 10, FP 1), 11 matches >= 10,
		// TP 10 >= 10, FP 1 <= 0+1: must take over.
		{regexes: []*rex.Regex{r3}, eval: Eval{TP: 10, FP: 1, Matches: 11}},
	}
	best := set.selectBest(ncs)
	if len(best.regexes) != 1 {
		t.Errorf("selected %d regexes, want the single-regex NC", len(best.regexes))
	}
	// With two extra FPs the takeover must NOT happen.
	ncs2 := []candidateNC{
		{regexes: []*rex.Regex{r1, r2}, eval: Eval{TP: 10, Matches: 10}},
		{regexes: []*rex.Regex{r3}, eval: Eval{TP: 10, FP: 2, Matches: 12}},
	}
	best2 := set.selectBest(ncs2)
	if len(best2.regexes) != 2 {
		t.Errorf("FP allowance violated: selected %d regexes", len(best2.regexes))
	}
	// Fewer matches: no takeover.
	ncs3 := []candidateNC{
		{regexes: []*rex.Regex{r1, r2}, eval: Eval{TP: 10, Matches: 10}},
		{regexes: []*rex.Regex{r3}, eval: Eval{TP: 9, FP: 0, Matches: 9}},
	}
	if best3 := set.selectBest(ncs3); len(best3.regexes) != 2 {
		t.Error("takeover with fewer matches")
	}
	if set.selectBest(nil) != nil {
		t.Error("empty candidate list should select nil")
	}
}

// TestSetEvalFirstMatchWins: within an NC, the first regex in set order
// decides each hostname.
func TestSetEvalFirstMatchWins(t *testing.T) {
	items := []Item{{Hostname: "as100-x.y.com", ASN: 100}}
	set, err := NewSet("y.com", items, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// First regex extracts the wrong span ("100" from a broader match is
	// correct here, so craft one that extracts a different number).
	bad := mustParseRegex(t, `as\d+-[a-z]+\.(\d+)\.y\.com$`)
	_ = bad
	wrong := mustParseRegex(t, `^as1(\d+)-[a-z]+\.y\.com$`) // extracts "00"
	right := mustParseRegex(t, `^as(\d+)-[a-z]+\.y\.com$`)
	evWrongFirst := set.Evaluate(wrong, right)
	if evWrongFirst.TP != 0 || evWrongFirst.FP != 1 {
		t.Errorf("wrong-first eval = %+v", evWrongFirst)
	}
	evRightFirst := set.Evaluate(right, wrong)
	if evRightFirst.TP != 1 || evRightFirst.FP != 0 {
		t.Errorf("right-first eval = %+v", evRightFirst)
	}
}

// TestRankByPPVAblation: under PPV ranking a high-precision, low-coverage
// regex outranks a high-ATP one.
func TestRankByPPVAblation(t *testing.T) {
	setATP, err := NewSet("x.com", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	setPPV, err := NewSet("x.com", nil, Options{RankByPPV: true})
	if err != nil {
		t.Fatal(err)
	}
	a := scored{regex: mustParseRegex(t, `^a(\d+)\.x\.com$`), eval: Eval{TP: 10, FP: 3, Matches: 13}}
	b := scored{regex: mustParseRegex(t, `^b(\d+)\.x\.com$`), eval: Eval{TP: 3, Matches: 3}}
	c1 := []scored{a, b}
	setATP.rank(c1)
	if c1[0].regex != a.regex {
		t.Error("ATP ranking should prefer the high-ATP regex")
	}
	c2 := []scored{a, b}
	setPPV.rank(c2)
	if c2[0].regex != b.regex {
		t.Error("PPV ranking should prefer the perfect-precision regex")
	}
}

// TestTruncateCapsCandidates: the candidate pool respects MaxCandidates.
func TestTruncateCapsCandidates(t *testing.T) {
	set, err := NewSet("x.com", nil, Options{MaxCandidates: 3})
	if err != nil {
		t.Fatal(err)
	}
	cands := make([]scored, 10)
	for i := range cands {
		cands[i] = scored{regex: mustParseRegex(t, fmt.Sprintf(`^v%d(\d+)\.x\.com$`, i))}
	}
	if got := set.truncate(cands); len(got) != 3 {
		t.Errorf("truncate -> %d, want 3", len(got))
	}
}

// TestUniqueExtractedASNs exercises the helper behind §4's unique-ASN
// thresholds, including typo-credited extractions parsing to the
// extracted (not training) value.
func TestUniqueExtractedASNs(t *testing.T) {
	items := []Item{
		{Hostname: "as100.x.com", ASN: 100},
		{Hostname: "as200.x.com", ASN: 200},
		{Hostname: "as24940.x.com", ASN: 20940}, // typo credit: extracted 24940
	}
	set, err := NewSet("x.com", items, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := mustParseRegex(t, `^as(\d+)\.x\.com$`)
	got, err := set.uniqueExtractedASNs(context.Background(), []*rex.Regex{r})
	if err != nil {
		t.Fatal(err)
	}
	want := []asn.ASN{100, 200, 24940}
	if len(got) != len(want) {
		t.Fatalf("unique = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("unique = %v, want %v", got, want)
		}
	}
}

// TestEvaluateATPIdentity: property over random eval outcomes.
func TestEvaluateATPIdentity(t *testing.T) {
	items := startStyleItems(30)
	// Corrupt a third of training ASNs to force FPs and FNs.
	for i := range items {
		if i%3 == 0 {
			items[i].ASN = asn.ASN(90000 + i)
		}
	}
	set, err := NewSet("example.net", items, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := mustParseRegex(t, `^as(\d+)-[a-z]+-\d\.example\.net$`)
	ev, exts := set.EvaluateDetailed(r)
	tp, fp, fn := 0, 0, 0
	for _, e := range exts {
		switch e.Outcome {
		case OutcomeTP:
			tp++
		case OutcomeFP:
			fp++
		case OutcomeFN:
			fn++
		}
	}
	if tp != ev.TP || fp != ev.FP || fn != ev.FN {
		t.Errorf("detailed (%d/%d/%d) != aggregate (%d/%d/%d)", tp, fp, fn, ev.TP, ev.FP, ev.FN)
	}
	if ev.ATP() != ev.TP-ev.FP-ev.FN {
		t.Error("ATP identity broken")
	}
	if ev.Matches != ev.TP+ev.FP {
		t.Error("Matches != TP+FP")
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeTP.String() != "TP" || OutcomeFP.String() != "FP" ||
		OutcomeFN.String() != "FN" || OutcomeNone.String() != "-" {
		t.Error("Outcome strings wrong")
	}
}
