package core

import (
	"sort"

	"hoiho/internal/rex"
)

// Phase 1 (§3.2): generate base regexes.
//
// For every training hostname containing an apparent ASN, the generator
// emits candidate regexes that capture the ASN with (\d+), embed the
// alphanumeric characters sharing the ASN's punctuation-delimited part as
// literals (e.g. the "p" of "p714"), keep the suffix as a literal, and
// cover the remaining parts with exclusion components ([^\.]+, [^-]+),
// or with a single ".+" (at most once per regex), or by leaving the
// regex unanchored on the left (figure 2's "as(\d+)\.nts\.ch$").

// exclMode selects which adjacent delimiters an exclusion component
// excludes, mirroring the paper's "[^\.]+ and [^-]+ ... depending on the
// punctuation at the beginning and end of each portion".
type exclMode uint8

const (
	exclBoth  exclMode = iota // exclude both adjacent delimiters
	exclLeft                  // exclude only the preceding delimiter
	exclRight                 // exclude only the following delimiter
)

// generate builds the deduplicated base-regex pool for the set.
func (s *Set) generate() []*rex.Regex {
	seen := make(map[string]*rex.Regex)
	limit := s.opts.maxGenItems()
	n := 0
	for i := range s.items {
		p := &s.items[i]
		if !p.apparent {
			continue
		}
		if n >= limit {
			break
		}
		n++
		for _, r := range s.candidatesForItem(p) {
			key := r.String()
			if _, ok := seen[key]; !ok {
				seen[key] = r
			}
		}
	}
	// The pool order feeds mergePhase's capped pairing and rank
	// tiebreaks, so it must not inherit map iteration order.
	keys := make([]string, 0, len(seen))
	for key := range seen {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	out := make([]*rex.Regex, 0, len(keys))
	for _, key := range keys {
		out = append(out, seen[key])
	}
	return out
}

// candidatesForItem enumerates base regexes for one hostname.
func (s *Set) candidatesForItem(p *prepped) []*rex.Regex {
	sufParts, ok := p.name.SuffixParts(s.Suffix)
	if !ok {
		return nil
	}
	parts := p.name.Parts
	sufStart := len(parts) - sufParts
	if sufStart <= 0 {
		// Hostname is just the suffix: nothing to capture.
		return nil
	}
	// Literal for the registered-domain tail, including its leading
	// delimiter (the delimiter of the part preceding the suffix).
	sufLit := string(parts[sufStart-1].Delim) + p.name.Full[parts[sufStart].Start:]

	var out []*rex.Regex
	typo := !s.opts.DisableTypoCredit
	for _, run := range p.name.DigitRuns() {
		if run.Part >= sufStart {
			continue // ASN embedded in the registered domain itself: skip
		}
		if inSpans(p.ipSpans, run.Start, run.End()) {
			continue
		}
		if !Congruent(run.Text, p.ASN, typo) {
			continue
		}
		k := run.Part
		part := parts[k]
		ctxPre := part.Text[:run.Start-part.Start]
		ctxPost := part.Text[run.End()-part.Start:]

		for _, mode := range []exclMode{exclBoth, exclLeft, exclRight} {
			for _, leftKind := range []string{"full", "dotplus", "open"} {
				for _, rightKind := range []string{"full", "dotplus"} {
					if leftKind == "dotplus" && rightKind == "dotplus" {
						continue // at most one ".+" per regex (§3.2)
					}
					r := s.assemble(p, k, ctxPre, ctxPost, sufStart, sufLit, mode, leftKind, rightKind)
					if r != nil {
						out = append(out, r)
					}
				}
			}
		}
	}
	return out
}

// assemble builds one candidate regex; nil when the combination is
// degenerate (e.g. a ".+" with no parts to cover).
func (s *Set) assemble(p *prepped, k int, ctxPre, ctxPost string, sufStart int, sufLit string, mode exclMode, leftKind, rightKind string) *rex.Regex {
	parts := p.name.Parts
	var toks []rex.Token
	leftOpen := false

	switch leftKind {
	case "full":
		for j := 0; j < k; j++ {
			toks = append(toks, s.component(p, j, mode), rex.Lit(string(parts[j].Delim)))
		}
	case "dotplus":
		if k == 0 {
			return nil
		}
		toks = append(toks, rex.DotPlus(), rex.Lit(string(parts[k-1].Delim)))
	case "open":
		if k == 0 {
			return nil // identical to "full" with no left parts
		}
		leftOpen = true
	}

	toks = append(toks, rex.Lit(ctxPre), rex.Capture(), rex.Lit(ctxPost))

	switch rightKind {
	case "full":
		for j := k + 1; j < sufStart; j++ {
			toks = append(toks, rex.Lit(string(parts[j-1].Delim)), s.component(p, j, mode))
		}
	case "dotplus":
		if k+1 >= sufStart {
			return nil
		}
		toks = append(toks, rex.Lit(string(parts[k].Delim)), rex.DotPlus())
	}
	toks = append(toks, rex.Lit(sufLit))

	var (
		r   *rex.Regex
		err error
	)
	if leftOpen {
		r, err = rex.NewOpen(toks...)
	} else {
		r, err = rex.New(toks...)
	}
	if err != nil {
		return nil
	}
	return r
}

// component builds the variable component for part j: an exclusion class
// over the adjacent delimiters selected by mode, or an exact literal for
// empty parts (consecutive punctuation).
func (s *Set) component(p *prepped, j int, mode exclMode) rex.Token {
	parts := p.name.Parts
	if parts[j].Text == "" {
		return rex.Lit("")
	}
	var before, after byte
	if j > 0 {
		before = parts[j-1].Delim
	}
	after = parts[j].Delim
	var excl []byte
	add := func(c byte) {
		if c == 0 {
			return
		}
		for _, e := range excl {
			if e == c {
				return
			}
		}
		excl = append(excl, c)
	}
	switch mode {
	case exclBoth:
		add(before)
		add(after)
	case exclLeft:
		add(before)
		if len(excl) == 0 {
			add(after)
		}
	case exclRight:
		add(after)
		if len(excl) == 0 {
			add(before)
		}
	}
	if len(excl) == 0 {
		// No adjacent punctuation at all (single-part hostname); exclude
		// '.' so the component cannot cross into the suffix.
		excl = []byte{'.'}
	}
	return rex.Excl(string(excl))
}
