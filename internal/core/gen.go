package core

import (
	"sort"

	"hoiho/internal/hostname"
	"hoiho/internal/rex"
)

// Phase 1 (§3.2): generate base regexes.
//
// For every training hostname containing an apparent ASN, the generator
// emits candidate regexes that capture the ASN with (\d+), embed the
// alphanumeric characters sharing the ASN's punctuation-delimited part as
// literals (e.g. the "p" of "p714"), keep the suffix as a literal, and
// cover the remaining parts with exclusion components ([^\.]+, [^-]+),
// or with a single ".+" (at most once per regex), or by leaving the
// regex unanchored on the left (figure 2's "as(\d+)\.nts\.ch$").

// exclMode selects which adjacent delimiters an exclusion component
// excludes, mirroring the paper's "[^\.]+ and [^-]+ ... depending on the
// punctuation at the beginning and end of each portion".
type exclMode uint8

const (
	exclBoth  exclMode = iota // exclude both adjacent delimiters
	exclLeft                  // exclude only the preceding delimiter
	exclRight                 // exclude only the following delimiter
)

// generate builds the deduplicated base-regex pool for the set.
func (s *Set) generate() []*rex.Regex {
	seen := make(map[string]*rex.Regex)
	limit := s.opts.maxGenItems()
	n := 0
	for i := 0; i < s.ar.len(); i++ {
		if !s.ar.apparent[i] {
			continue
		}
		if n >= limit {
			break
		}
		n++
		for _, r := range s.candidatesForItem(i) {
			key := r.String()
			if _, ok := seen[key]; !ok {
				seen[key] = r
			}
		}
	}
	// The pool order feeds mergePhase's capped pairing and rank
	// tiebreaks, so it must not inherit map iteration order.
	keys := make([]string, 0, len(seen))
	for key := range seen {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	out := make([]*rex.Regex, 0, len(keys))
	for _, key := range keys {
		out = append(out, seen[key])
	}
	return out
}

// candidatesForItem enumerates base regexes for item i.
func (s *Set) candidatesForItem(i int) []*rex.Regex {
	name := s.ar.name(i)
	sufParts, ok := name.SuffixParts(s.Suffix)
	if !ok {
		return nil
	}
	parts := name.Parts
	sufStart := len(parts) - sufParts
	if sufStart <= 0 {
		// Hostname is just the suffix: nothing to capture.
		return nil
	}
	// Literal for the registered-domain tail, including its leading
	// delimiter: that delimiter is the byte just before the suffix's first
	// part, so the literal is a zero-copy slice of the normalized hostname.
	sufLit := name.Full[parts[sufStart].Start-1:]

	var out []*rex.Regex
	typo := !s.opts.DisableTypoCredit
	spans := s.ar.spansOf(i)
	digits := s.ar.digits[i]
	for _, run := range s.ar.runsOf(i) {
		if run.Part >= sufStart {
			continue // ASN embedded in the registered domain itself: skip
		}
		if inSpans(spans, run.Start, run.End()) {
			continue
		}
		if !congruentDigits(run.Text, digits, typo) {
			continue
		}
		k := run.Part
		part := parts[k]
		ctxPre := part.Text[:run.Start-part.Start]
		ctxPost := part.Text[run.End()-part.Start:]

		for _, mode := range []exclMode{exclBoth, exclLeft, exclRight} {
			for _, leftKind := range []string{"full", "dotplus", "open"} {
				for _, rightKind := range []string{"full", "dotplus"} {
					if leftKind == "dotplus" && rightKind == "dotplus" {
						continue // at most one ".+" per regex (§3.2)
					}
					r := s.assemble(parts, k, ctxPre, ctxPost, sufStart, sufLit, mode, leftKind, rightKind)
					if r != nil {
						out = append(out, r)
					}
				}
			}
		}
	}
	return out
}

// assemble builds one candidate regex; nil when the combination is
// degenerate (e.g. a ".+" with no parts to cover).
func (s *Set) assemble(parts []hostname.Part, k int, ctxPre, ctxPost string, sufStart int, sufLit string, mode exclMode, leftKind, rightKind string) *rex.Regex {
	// Worst case ("full"/"full"): two tokens per covered part plus the
	// capture group and suffix literal.
	toks := make([]rex.Token, 0, 2*sufStart+4)
	leftOpen := false

	switch leftKind {
	case "full":
		for j := 0; j < k; j++ {
			toks = append(toks, s.component(parts, j, mode), rex.Lit(delimLit(parts[j].Delim)))
		}
	case "dotplus":
		if k == 0 {
			return nil
		}
		toks = append(toks, rex.DotPlus(), rex.Lit(delimLit(parts[k-1].Delim)))
	case "open":
		if k == 0 {
			return nil // identical to "full" with no left parts
		}
		leftOpen = true
	}

	toks = append(toks, rex.Lit(ctxPre), rex.Capture(), rex.Lit(ctxPost))

	switch rightKind {
	case "full":
		for j := k + 1; j < sufStart; j++ {
			toks = append(toks, rex.Lit(delimLit(parts[j-1].Delim)), s.component(parts, j, mode))
		}
	case "dotplus":
		if k+1 >= sufStart {
			return nil
		}
		toks = append(toks, rex.Lit(delimLit(parts[k].Delim)), rex.DotPlus())
	}
	toks = append(toks, rex.Lit(sufLit))

	var (
		r   *rex.Regex
		err error
	)
	if leftOpen {
		r, err = rex.NewOpen(toks...)
	} else {
		r, err = rex.New(toks...)
	}
	if err != nil {
		return nil
	}
	return r
}

// delimLit returns the interned literal string for a part delimiter, so
// the assembly loops never allocate for single-punctuation literals.
func delimLit(b byte) string {
	switch b {
	case '.':
		return "."
	case '-':
		return "-"
	case '_':
		return "_"
	}
	return ""
}

// component builds the variable component for part j: an exclusion class
// over the adjacent delimiters selected by mode, or an exact literal for
// empty parts (consecutive punctuation).
func (s *Set) component(parts []hostname.Part, j int, mode exclMode) rex.Token {
	if parts[j].Text == "" {
		return rex.Lit("")
	}
	var before, after byte
	if j > 0 {
		before = parts[j-1].Delim
	}
	after = parts[j].Delim
	var a, b byte
	switch mode {
	case exclBoth:
		a, b = before, after
	case exclLeft:
		a = before
		if a == 0 {
			a = after
		}
	case exclRight:
		a = after
		if a == 0 {
			a = before
		}
	}
	return rex.Excl(exclChars(a, b))
}

// exclChars returns the interned exclusion-class character string for an
// ordered pair of adjacent delimiters: zero bytes are skipped, a
// duplicate second character collapses, and when neither is punctuation
// (single-part hostname) the class falls back to '.' so the component
// cannot cross into the suffix. Interning the eleven possible strings
// keeps the per-candidate token assembly allocation-free.
func exclChars(a, b byte) string {
	if a == 0 {
		a, b = b, 0
	}
	if b == a {
		b = 0
	}
	switch a {
	case '.':
		switch b {
		case '-':
			return ".-"
		case '_':
			return "._"
		}
		return "."
	case '-':
		switch b {
		case '.':
			return "-."
		case '_':
			return "-_"
		}
		return "-"
	case '_':
		switch b {
		case '.':
			return "_."
		case '-':
			return "_-"
		}
		return "_"
	}
	// No adjacent punctuation at all (single-part hostname).
	return "."
}
