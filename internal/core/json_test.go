package core

import (
	"encoding/json"
	"testing"
)

func TestNCJSONRoundTrip(t *testing.T) {
	set, err := NewSet("equinix.com", figure4Items(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	nc := learnT(t, set)
	if nc == nil {
		t.Fatal("no NC")
	}
	data, err := MarshalNCs([]*NC{nc})
	if err != nil {
		t.Fatal(err)
	}
	ncs, err := UnmarshalNCs(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ncs) != 1 {
		t.Fatalf("round trip produced %d NCs", len(ncs))
	}
	got := ncs[0]
	if got.Suffix != nc.Suffix || got.Class != nc.Class || got.Single != nc.Single {
		t.Errorf("metadata mismatch: %+v vs %+v", got, nc)
	}
	if got.Eval != nc.Eval {
		t.Errorf("eval mismatch: %+v vs %+v", got.Eval, nc.Eval)
	}
	if len(got.Regexes) != len(nc.Regexes) {
		t.Fatalf("regex count mismatch")
	}
	for i := range got.Regexes {
		if got.Regexes[i].String() != nc.Regexes[i].String() {
			t.Errorf("regex %d: %q vs %q", i, got.Regexes[i], nc.Regexes[i])
		}
	}
	// Behavioral equivalence on the training hostnames.
	for _, it := range figure4Items() {
		a1, ok1 := nc.Extract(it.Hostname)
		a2, ok2 := got.Extract(it.Hostname)
		if a1 != a2 || ok1 != ok2 {
			t.Errorf("Extract(%s) diverged after round trip: %q,%v vs %q,%v",
				it.Hostname, a1, ok1, a2, ok2)
		}
	}
}

func TestNCUnmarshalErrors(t *testing.T) {
	cases := []string{
		`{"suffix":"x.com","regexes":["^("],"class":"good"}`,
		`{"suffix":"x.com","regexes":["^as(\\d+)\\.x\\.com$"],"class":"excellent"}`,
		`{bogus`,
	}
	for _, c := range cases {
		var nc NC
		if err := json.Unmarshal([]byte(c), &nc); err == nil {
			t.Errorf("Unmarshal(%q) should error", c)
		}
	}
}
