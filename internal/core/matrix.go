package core

// The match matrix memoizes regex evaluation for the learning pipeline.
// Each candidate regex is executed against each training item exactly
// once, producing a column: a matched bitset, a TP bitset (congruent
// extraction outside any embedded-IP span), and an interned
// extraction-string ID per item. Every later evaluation — single-regex
// scoring, §3.4 class specialization, and especially the §3.5 greedy
// set construction — aggregates these columns with word-parallel bit
// operations instead of re-running regexes. Set.Evaluate remains the
// naive reference implementation; TestMatrixMatchesOracle proves the
// engine returns bit-for-bit identical Evals.

import (
	"context"
	"math/bits"
	"runtime"
	"sync"

	"hoiho/internal/faultinject"
	"hoiho/internal/rex"
)

// bitset is a fixed-size bit vector over a Set's training items.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << (i & 63) }
func (b bitset) get(i int) bool { return b[i>>6]&(1<<(i&63)) != 0 }

// fill sets bits 0..n-1, leaving the tail of the last word zero so that
// popcounts over whole words stay exact.
func (b bitset) fill(n int) {
	for w := range b {
		b[w] = ^uint64(0)
	}
	if n%64 != 0 && len(b) > 0 {
		b[len(b)-1] = (1 << (n % 64)) - 1
	}
}

func (b bitset) count() int {
	sum := 0
	for _, w := range b {
		sum += bits.OnesCount64(w)
	}
	return sum
}

// column holds one regex's memoized outcome against every item.
type column struct {
	// bad marks a regex that failed to compile: it matches nothing, and
	// its eval charges an FN for every apparent-ASN item (exactly what
	// the naive Evaluate returns for such a regex).
	bad     bool
	matched bitset
	tp      bitset   // subset of matched: congruent and outside IP spans
	ext     []uint32 // per-item interned extraction ID (valid where matched)
	eval    Eval     // the single-regex evaluation, aggregated once
}

// matrix memoizes per-regex columns over a Set's items, plus the string
// interner that backs the unique-extraction counts.
type matrix struct {
	s        *Set
	apparent bitset // items with an apparent ASN (the FN candidates)
	cols     map[*rex.Regex]*column
	extIDs   map[string]uint32
	extStrs  []string // id -> extraction string
}

// matrix returns the Set's memoization engine, building it on first use.
// The engine, like the Set itself, is not safe for concurrent use by
// multiple goroutines; ensure's internal fan-out is self-contained.
func (s *Set) matrix() *matrix {
	if s.mx == nil {
		m := &matrix{
			s:        s,
			apparent: newBitset(len(s.items)),
			cols:     make(map[*rex.Regex]*column),
			extIDs:   make(map[string]uint32),
		}
		for i := range s.items {
			if s.items[i].apparent {
				m.apparent.set(i)
			}
		}
		s.mx = m
	}
	return s.mx
}

// intern maps an extraction string to a stable dense ID.
func (m *matrix) intern(ext string) uint32 {
	if id, ok := m.extIDs[ext]; ok {
		return id
	}
	id := uint32(len(m.extStrs))
	m.extIDs[ext] = id
	m.extStrs = append(m.extStrs, ext)
	return id
}

// buildColumn runs one regex over every item. It performs no interning
// and touches no shared state, so builds can fan out across goroutines;
// the raw extraction strings are returned for a serial finish pass.
func (m *matrix) buildColumn(r *rex.Regex) (*column, []string) {
	if _, err := r.Compile(); err != nil {
		return &column{bad: true}, nil
	}
	n := len(m.s.items)
	c := &column{matched: newBitset(n), tp: newBitset(n), ext: make([]uint32, n)}
	exts := make([]string, n)
	typo := !m.s.opts.DisableTypoCredit
	for i := range m.s.items {
		p := &m.s.items[i]
		ext, start, end, ok := r.Extract(p.name.Full)
		if !ok {
			continue
		}
		c.matched.set(i)
		exts[i] = ext
		if !inSpans(p.ipSpans, start, end) && Congruent(ext, p.ASN, typo) {
			c.tp.set(i)
		}
	}
	return c, exts
}

// finishColumn interns the extraction strings and aggregates the
// single-regex Eval. Serial: it writes the shared interner.
func (m *matrix) finishColumn(c *column, exts []string) {
	if c.bad {
		c.eval = Eval{FN: m.apparent.count()}
		return
	}
	uniqueTP := make(map[uint32]struct{})
	uniqueAll := make(map[uint32]struct{})
	for w, word := range c.matched {
		for rest := word; rest != 0; rest &= rest - 1 {
			i := w*64 + bits.TrailingZeros64(rest)
			id := m.intern(exts[i])
			c.ext[i] = id
			uniqueAll[id] = struct{}{}
			if c.tp.get(i) {
				uniqueTP[id] = struct{}{}
			}
		}
	}
	c.eval.TP = c.tp.count()
	c.eval.Matches = c.matched.count()
	c.eval.FP = c.eval.Matches - c.eval.TP
	for w := range m.apparent {
		c.eval.FN += bits.OnesCount64(m.apparent[w] &^ c.matched[w])
	}
	c.eval.UniqueTP = len(uniqueTP)
	c.eval.UniqueExtract = len(uniqueAll)
}

// column returns the memoized column for r, building it on first use.
func (m *matrix) column(r *rex.Regex) *column {
	if c, ok := m.cols[r]; ok {
		return c
	}
	c, exts := m.buildColumn(r)
	m.finishColumn(c, exts)
	m.cols[r] = c
	return c
}

// ensure builds the missing columns for a batch of regexes, fanning the
// regex-versus-item matching across Options.Workers goroutines (the
// intra-suffix parallelism knob; one big suffix no longer serializes on
// a single core while a Learner's per-suffix fan-out sits idle). Results
// are slotted by index and interned in batch order, so the matrix state
// is deterministic regardless of scheduling.
//
// ensure is the learner's cancellation grain: the context is checked
// before every column build, so a deadline or cancellation interrupts a
// suffix within one regex-versus-items pass. On cancellation the
// unbuilt columns release their reservations (a later attempt rebuilds
// them) and ctx.Err() is returned.
func (m *matrix) ensure(ctx context.Context, regexes []*rex.Regex) error {
	var missing []*rex.Regex
	for _, r := range regexes {
		if _, ok := m.cols[r]; ok {
			continue
		}
		// Reserve the slot so duplicate pointers in one batch build once.
		m.cols[r] = nil
		missing = append(missing, r)
	}
	if len(missing) == 0 {
		return ctx.Err()
	}
	release := func() {
		for _, r := range missing {
			if m.cols[r] == nil {
				delete(m.cols, r)
			}
		}
	}
	if err := faultinject.Fire(ctx, faultinject.StageMatrixBatch, m.s.Suffix); err != nil {
		release()
		return err
	}
	workers := m.s.opts.workers()
	if workers > len(missing) {
		workers = len(missing)
	}
	built := make([]*column, len(missing))
	extsAll := make([][]string, len(missing))
	if workers <= 1 {
		for i, r := range missing {
			if ctx.Err() != nil {
				break
			}
			built[i], extsAll[i] = m.buildColumn(r)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					if ctx.Err() != nil {
						continue // drain remaining jobs without building
					}
					built[i], extsAll[i] = m.buildColumn(missing[i])
				}
			}()
		}
	dispatch:
		for i := range missing {
			select {
			case jobs <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(jobs)
		wg.Wait()
	}
	// Finish serially in batch order. Under cancellation some columns
	// were never built: drop their reservations and report the abort.
	for i, r := range missing {
		if built[i] == nil {
			continue
		}
		m.finishColumn(built[i], extsAll[i])
		m.cols[r] = built[i]
	}
	if err := ctx.Err(); err != nil {
		release()
		return err
	}
	return nil
}

// workers resolves the intra-suffix parallelism for Options.
func (o Options) workers() int {
	if o.Workers == 1 {
		return 1
	}
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// evalSet scores an ordered column list with §3.5 first-match semantics,
// returning the identical Eval the naive Evaluate produces for the
// corresponding regex set, including the unique-extraction counts.
func (m *matrix) evalSet(cols []*column) Eval {
	var e Eval
	n := len(m.s.items)
	remaining := newBitset(n)
	remaining.fill(n)
	uniqueTP := make(map[uint32]struct{})
	uniqueAll := make(map[uint32]struct{})
	for _, c := range cols {
		if c.bad {
			continue
		}
		for w := range remaining {
			newly := c.matched[w] & remaining[w]
			if newly == 0 {
				continue
			}
			remaining[w] &^= newly
			e.TP += bits.OnesCount64(newly & c.tp[w])
			e.Matches += bits.OnesCount64(newly)
			for rest := newly; rest != 0; rest &= rest - 1 {
				i := w*64 + bits.TrailingZeros64(rest)
				id := c.ext[i]
				uniqueAll[id] = struct{}{}
				if c.tp.get(i) {
					uniqueTP[id] = struct{}{}
				}
			}
		}
	}
	e.FP = e.Matches - e.TP
	for w := range remaining {
		e.FN += bits.OnesCount64(remaining[w] & m.apparent[w])
	}
	e.UniqueTP = len(uniqueTP)
	e.UniqueExtract = len(uniqueAll)
	return e
}

// setState tracks the working set's aggregate outcomes during the §3.5
// greedy construction. Each trial "would adding this regex raise ATP?"
// folds one column into the still-unmatched remainder in O(items/64)
// word operations instead of re-running every regex in the working set.
type setState struct {
	m         *matrix
	remaining bitset // items no regex in the working set has matched
	tp        int
	matches   int
	fn        int
}

// newSetState starts from the empty set: nothing matched, every
// apparent-ASN item a false negative.
func (m *matrix) newSetState() *setState {
	n := len(m.s.items)
	st := &setState{m: m, remaining: newBitset(n)}
	st.remaining.fill(n)
	st.fn = m.apparent.count()
	return st
}

func (st *setState) atp() int { return st.tp - (st.matches - st.tp) - st.fn }

// trialATP returns Evaluate(workingSet, c).ATP() without materializing
// the trial set: items the working set already matched keep their
// outcomes (first-match semantics), so only c's newly matched items
// contribute deltas.
func (st *setState) trialATP(c *column) int {
	if c.bad {
		return st.atp()
	}
	tp, matches, fnDrop := st.tp, st.matches, 0
	for w, rem := range st.remaining {
		newly := c.matched[w] & rem
		if newly == 0 {
			continue
		}
		tp += bits.OnesCount64(newly & c.tp[w])
		matches += bits.OnesCount64(newly)
		fnDrop += bits.OnesCount64(newly & st.m.apparent[w])
	}
	return tp - (matches - tp) - (st.fn - fnDrop)
}

// absorb appends c to the working set, committing the deltas trialATP
// previewed.
func (st *setState) absorb(c *column) {
	if c.bad {
		return
	}
	for w, rem := range st.remaining {
		newly := c.matched[w] & rem
		if newly == 0 {
			continue
		}
		st.remaining[w] &^= newly
		st.tp += bits.OnesCount64(newly & c.tp[w])
		st.matches += bits.OnesCount64(newly)
		st.fn -= bits.OnesCount64(newly & st.m.apparent[w])
	}
}
