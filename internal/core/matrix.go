package core

// The match matrix memoizes regex evaluation for the learning pipeline.
// Each candidate regex is executed against each training item exactly
// once, producing a column: a matched bitset, a TP bitset (congruent
// extraction outside any embedded-IP span), and an interned
// extraction-string ID per item. Every later evaluation — single-regex
// scoring, §3.4 class specialization, and especially the §3.5 greedy
// set construction — aggregates these columns with word-parallel bit
// operations instead of re-running regexes. Set.Evaluate remains the
// naive reference implementation; TestMatrixMatchesOracle proves the
// engine returns bit-for-bit identical Evals.

import (
	"context"
	"math/bits"
	"runtime"
	"sync"

	"hoiho/internal/faultinject"
	"hoiho/internal/rex"
)

// bitset is a fixed-size bit vector over a Set's training items.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << (i & 63) }
func (b bitset) get(i int) bool { return b[i>>6]&(1<<(i&63)) != 0 }

// fill sets bits 0..n-1, leaving the tail of the last word zero so that
// popcounts over whole words stay exact.
func (b bitset) fill(n int) {
	for w := range b {
		b[w] = ^uint64(0)
	}
	if n%64 != 0 && len(b) > 0 {
		b[len(b)-1] = (1 << (n % 64)) - 1
	}
}

func (b bitset) count() int {
	sum := 0
	for _, w := range b {
		sum += bits.OnesCount64(w)
	}
	return sum
}

// column holds one regex's memoized outcome against every item.
type column struct {
	// bad marks a regex that failed to compile: it matches nothing, and
	// its eval charges an FN for every apparent-ASN item (exactly what
	// the naive Evaluate returns for such a regex).
	bad     bool
	matched bitset
	tp      bitset   // subset of matched: congruent and outside IP spans
	ext     []uint32 // per-item interned extraction ID (valid where matched)
	eval    Eval     // the single-regex evaluation, aggregated once
}

// matrix memoizes per-regex columns over a Set's items, plus the string
// interner that backs the unique-extraction counts.
type matrix struct {
	s        *Set
	apparent bitset // items with an apparent ASN (the FN candidates)
	cols     map[*rex.Regex]*column
	extIDs   map[string]uint32
	extStrs  []string // id -> extraction string
	// Generation-stamped scratch for the unique-extraction counts: one
	// stamp slot per interned ID (grown by intern), bumped per pass, so
	// finishColumn and evalSet never allocate per-call seen-maps.
	seenAll []uint32
	seenTP  []uint32
	seenGen uint32
	// remaining is evalSet's reusable first-match scratch bitset.
	remaining bitset
}

// matrix returns the Set's memoization engine, building it on first use.
// The engine, like the Set itself, is not safe for concurrent use by
// multiple goroutines; ensure's internal fan-out is self-contained.
func (s *Set) matrix() *matrix {
	if s.mx == nil {
		m := &matrix{
			s:        s,
			apparent: newBitset(s.ar.len()),
			cols:     make(map[*rex.Regex]*column),
			extIDs:   make(map[string]uint32),
		}
		for i, a := range s.ar.apparent {
			if a {
				m.apparent.set(i)
			}
		}
		s.mx = m
	}
	return s.mx
}

// intern maps an extraction string to a stable dense ID.
func (m *matrix) intern(ext string) uint32 {
	if id, ok := m.extIDs[ext]; ok {
		return id
	}
	id := uint32(len(m.extStrs))
	m.extIDs[ext] = id
	m.extStrs = append(m.extStrs, ext)
	m.seenAll = append(m.seenAll, 0)
	m.seenTP = append(m.seenTP, 0)
	return id
}

// newColumns batch-allocates k columns over n items as a struct-of-arrays
// arena: one backing word slab shared by every matched/tp bitset and one
// ID slab shared by every ext column, so a scoring batch costs three
// slab allocations instead of four-plus heap objects per column.
func newColumns(k, n int) []column {
	wpi := (n + 63) / 64
	cols := make([]column, k)
	words := make([]uint64, 2*wpi*k)
	ids := make([]uint32, n*k)
	for i := range cols {
		cols[i].matched = bitset(words[(2*i)*wpi : (2*i+1)*wpi : (2*i+1)*wpi])
		cols[i].tp = bitset(words[(2*i+1)*wpi : (2*i+2)*wpi : (2*i+2)*wpi])
		cols[i].ext = ids[i*n : (i+1)*n : (i+1)*n]
	}
	return cols
}

// buildColumn runs one regex over every item, filling the caller's
// pre-allocated (zeroed) column and exts scratch. It performs no
// interning and touches no shared state, so builds can fan out across
// goroutines; the raw extraction strings feed a serial finish pass.
func (m *matrix) buildColumn(r *rex.Regex, c *column, exts []string) {
	if _, err := r.Compile(); err != nil {
		c.bad = true
		return
	}
	ar := &m.s.ar
	typo := !m.s.opts.DisableTypoCredit
	for i := 0; i < ar.len(); i++ {
		ext, start, end, ok := r.Extract(ar.full[i])
		if !ok {
			continue
		}
		c.matched.set(i)
		exts[i] = ext
		if !inSpans(ar.spansOf(i), start, end) && congruentDigits(ext, ar.digits[i], typo) {
			c.tp.set(i)
		}
	}
}

// finishColumn interns the extraction strings and aggregates the
// single-regex Eval. Serial: it writes the shared interner.
func (m *matrix) finishColumn(c *column, exts []string) {
	if c.bad {
		c.eval = Eval{FN: m.apparent.count()}
		return
	}
	m.seenGen++
	gen := m.seenGen
	uniqueTP, uniqueAll := 0, 0
	for w, word := range c.matched {
		for rest := word; rest != 0; rest &= rest - 1 {
			i := w*64 + bits.TrailingZeros64(rest)
			id := m.intern(exts[i])
			c.ext[i] = id
			if m.seenAll[id] != gen {
				m.seenAll[id] = gen
				uniqueAll++
			}
			if c.tp.get(i) && m.seenTP[id] != gen {
				m.seenTP[id] = gen
				uniqueTP++
			}
		}
	}
	c.eval.TP = c.tp.count()
	c.eval.Matches = c.matched.count()
	c.eval.FP = c.eval.Matches - c.eval.TP
	for w := range m.apparent {
		c.eval.FN += bits.OnesCount64(m.apparent[w] &^ c.matched[w])
	}
	c.eval.UniqueTP = uniqueTP
	c.eval.UniqueExtract = uniqueAll
}

// column returns the memoized column for r, building it on first use.
func (m *matrix) column(r *rex.Regex) *column {
	if c, ok := m.cols[r]; ok && c != nil {
		return c
	}
	n := m.s.ar.len()
	cols := newColumns(1, n)
	c := &cols[0]
	exts := make([]string, n)
	m.buildColumn(r, c, exts)
	m.finishColumn(c, exts)
	m.cols[r] = c
	return c
}

// ensure builds the missing columns for a batch of regexes, fanning the
// regex-versus-item matching across Options.Workers goroutines (the
// intra-suffix parallelism knob; one big suffix no longer serializes on
// a single core while a Learner's per-suffix fan-out sits idle). Results
// are slotted by index and interned in batch order, so the matrix state
// is deterministic regardless of scheduling.
//
// ensure is the learner's cancellation grain: the context is checked
// before every column build, so a deadline or cancellation interrupts a
// suffix within one regex-versus-items pass. On cancellation the
// unbuilt columns release their reservations (a later attempt rebuilds
// them) and ctx.Err() is returned.
func (m *matrix) ensure(ctx context.Context, regexes []*rex.Regex) error {
	var missing []*rex.Regex
	for _, r := range regexes {
		if _, ok := m.cols[r]; ok {
			continue
		}
		// Reserve the slot so duplicate pointers in one batch build once.
		m.cols[r] = nil
		missing = append(missing, r)
	}
	if len(missing) == 0 {
		return ctx.Err()
	}
	release := func() {
		for _, r := range missing {
			if m.cols[r] == nil {
				delete(m.cols, r)
			}
		}
	}
	if err := faultinject.Fire(ctx, faultinject.StageMatrixBatch, m.s.Suffix); err != nil {
		release()
		return err
	}
	workers := m.s.opts.workers()
	if workers > len(missing) {
		workers = len(missing)
	}
	// One column arena and one extraction-scratch slab for the whole
	// batch; workers fill disjoint slots, so no synchronization beyond
	// the job channel is needed.
	n := m.s.ar.len()
	cols := newColumns(len(missing), n)
	extsSlab := make([]string, n*len(missing))
	done := make([]bool, len(missing))
	if workers <= 1 {
		for i, r := range missing {
			if ctx.Err() != nil {
				break
			}
			m.buildColumn(r, &cols[i], extsSlab[i*n:(i+1)*n])
			done[i] = true
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					if ctx.Err() != nil {
						continue // drain remaining jobs without building
					}
					m.buildColumn(missing[i], &cols[i], extsSlab[i*n:(i+1)*n])
					done[i] = true
				}
			}()
		}
	dispatch:
		for i := range missing {
			select {
			case jobs <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(jobs)
		wg.Wait()
	}
	// Finish serially in batch order. Under cancellation some columns
	// were never built: drop their reservations and report the abort.
	for i, r := range missing {
		if !done[i] {
			continue
		}
		m.finishColumn(&cols[i], extsSlab[i*n:(i+1)*n])
		m.cols[r] = &cols[i]
	}
	if err := ctx.Err(); err != nil {
		release()
		return err
	}
	return nil
}

// workers resolves the intra-suffix parallelism for Options.
func (o Options) workers() int {
	if o.Workers == 1 {
		return 1
	}
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// evalSet scores an ordered column list with §3.5 first-match semantics,
// returning the identical Eval the naive Evaluate produces for the
// corresponding regex set, including the unique-extraction counts.
func (m *matrix) evalSet(cols []*column) Eval {
	var e Eval
	n := m.s.ar.len()
	if m.remaining == nil {
		m.remaining = newBitset(n)
	}
	remaining := m.remaining
	remaining.fill(n)
	m.seenGen++
	gen := m.seenGen
	uniqueTP, uniqueAll := 0, 0
	for _, c := range cols {
		if c.bad {
			continue
		}
		for w := range remaining {
			newly := c.matched[w] & remaining[w]
			if newly == 0 {
				continue
			}
			remaining[w] &^= newly
			e.TP += bits.OnesCount64(newly & c.tp[w])
			e.Matches += bits.OnesCount64(newly)
			for rest := newly; rest != 0; rest &= rest - 1 {
				i := w*64 + bits.TrailingZeros64(rest)
				id := c.ext[i]
				if m.seenAll[id] != gen {
					m.seenAll[id] = gen
					uniqueAll++
				}
				if c.tp.get(i) && m.seenTP[id] != gen {
					m.seenTP[id] = gen
					uniqueTP++
				}
			}
		}
	}
	e.FP = e.Matches - e.TP
	for w := range remaining {
		e.FN += bits.OnesCount64(remaining[w] & m.apparent[w])
	}
	e.UniqueTP = uniqueTP
	e.UniqueExtract = uniqueAll
	return e
}

// setState tracks the working set's aggregate outcomes during the §3.5
// greedy construction. Each trial "would adding this regex raise ATP?"
// folds one column into the still-unmatched remainder in O(items/64)
// word operations instead of re-running every regex in the working set.
type setState struct {
	m         *matrix
	remaining bitset // items no regex in the working set has matched
	tp        int
	matches   int
	fn        int
}

// newSetState starts from the empty set: nothing matched, every
// apparent-ASN item a false negative.
func (m *matrix) newSetState() *setState {
	n := m.s.ar.len()
	st := &setState{m: m, remaining: newBitset(n)}
	st.remaining.fill(n)
	st.fn = m.apparent.count()
	return st
}

func (st *setState) atp() int { return st.tp - (st.matches - st.tp) - st.fn }

// trialATP returns Evaluate(workingSet, c).ATP() without materializing
// the trial set: items the working set already matched keep their
// outcomes (first-match semantics), so only c's newly matched items
// contribute deltas.
func (st *setState) trialATP(c *column) int {
	if c.bad {
		return st.atp()
	}
	tp, matches, fnDrop := st.tp, st.matches, 0
	for w, rem := range st.remaining {
		newly := c.matched[w] & rem
		if newly == 0 {
			continue
		}
		tp += bits.OnesCount64(newly & c.tp[w])
		matches += bits.OnesCount64(newly)
		fnDrop += bits.OnesCount64(newly & st.m.apparent[w])
	}
	return tp - (matches - tp) - (st.fn - fnDrop)
}

// absorb appends c to the working set, committing the deltas trialATP
// previewed.
func (st *setState) absorb(c *column) {
	if c.bad {
		return
	}
	for w, rem := range st.remaining {
		newly := c.matched[w] & rem
		if newly == 0 {
			continue
		}
		st.remaining[w] &^= newly
		st.tp += bits.OnesCount64(newly & c.tp[w])
		st.matches += bits.OnesCount64(newly)
		st.fn -= bits.OnesCount64(newly & st.m.apparent[w])
	}
}
