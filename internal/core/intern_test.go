package core

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternerBasics(t *testing.T) {
	in := NewInterner()
	a := in.Intern([]byte("12345"))
	b := in.Intern([]byte("12345"))
	if a != "12345" || b != "12345" {
		t.Fatalf("Intern returned %q, %q; want \"12345\"", a, b)
	}
	// Same backing storage: the second call must return the retained copy.
	if &a == &b { // vacuous on values; compare via map identity below
		t.Fatal("unreachable")
	}
	if in.Len() != 1 {
		t.Fatalf("Len = %d after interning one value twice", in.Len())
	}
	// Leading zeros are distinct values: the raw bytes are the key.
	if in.Intern([]byte("007")) == a {
		t.Fatal("\"007\" interned to the same string as \"12345\"")
	}
	if got := in.InternString("007"); got != "007" {
		t.Fatalf("InternString(\"007\") = %q", got)
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2", in.Len())
	}
}

func TestInternerDoesNotAliasInput(t *testing.T) {
	in := NewInterner()
	buf := []byte("64512")
	s := in.Intern(buf)
	buf[0] = 'X'
	if s != "64512" {
		t.Fatalf("interned string mutated to %q when input buffer changed", s)
	}
	// A later probe with the original content still hits.
	if got := in.Intern([]byte("64512")); got != "64512" {
		t.Fatalf("re-intern after input mutation = %q", got)
	}
}

func TestInternerHitPathAllocs(t *testing.T) {
	in := NewInterner()
	buf := []byte("3356")
	in.Intern(buf) // first sight allocates; warm it
	allocs := testing.AllocsPerRun(200, func() {
		if in.Intern(buf) != "3356" {
			t.Fatal("wrong intern result")
		}
	})
	if allocs != 0 {
		t.Fatalf("Intern hit path allocates %.1f allocs/op, want 0", allocs)
	}
	sp := "3356"
	allocs = testing.AllocsPerRun(200, func() {
		if in.InternString(sp) != "3356" {
			t.Fatal("wrong intern result")
		}
	})
	if allocs != 0 {
		t.Fatalf("InternString hit path allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestInternerConcurrent(t *testing.T) {
	in := NewInterner()
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v := []byte(fmt.Sprintf("%d", i%100))
				got := in.Intern(v)
				if got != string(v) {
					t.Errorf("Intern(%q) = %q", v, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if in.Len() != 100 {
		t.Fatalf("Len = %d, want 100 distinct values", in.Len())
	}
}
