package core

// Tests in this file reproduce the paper's worked examples: the nts.ch
// supplier-labelled suffix (figure 2), the apparent-ASN edge cases
// (figure 3), and the Equinix four-phase walkthrough (figure 4).

import (
	"net/netip"
	"testing"

	"hoiho/internal/asn"
)

// figure4Items is the training data of figure 4 (rows a-p).
func figure4Items() []Item {
	return []Item{
		{Hostname: "109.sgw.equinix.com", ASN: 109},               // a
		{Hostname: "714.os.equinix.com", ASN: 714},                // b
		{Hostname: "714.me1.equinix.com", ASN: 714},               // c
		{Hostname: "p714.sgw.equinix.com", ASN: 714},              // d
		{Hostname: "s714.sgw.equinix.com", ASN: 714},              // e
		{Hostname: "p24115.mel.equinix.com", ASN: 24115},          // f
		{Hostname: "s24115.tyo.equinix.com", ASN: 24115},          // g
		{Hostname: "22822-2.tyo.equinix.com", ASN: 22282},         // h (transposition typo)
		{Hostname: "24482-fr5-ix.equinix.com", ASN: 24482},        // i
		{Hostname: "54827-dc5-ix2.equinix.com", ASN: 54827},       // j
		{Hostname: "55247-ch3-ix.equinix.com", ASN: 55247},        // k
		{Hostname: "netflix.zh2.corp.eu.equinix.com", ASN: 2906},  // l
		{Hostname: "ipv4.dosarrest.eqix.equinix.com", ASN: 19324}, // m
		{Hostname: "8069.tyo.equinix.com", ASN: 8075},             // n (sibling in hostname)
		{Hostname: "8074.hkg.equinix.com", ASN: 8075},             // o
		{Hostname: "45437-sy1-ix.equinix.com", ASN: 55923},        // p
	}
}

func TestFigure4Pipeline(t *testing.T) {
	set, err := NewSet("equinix.com", figure4Items(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	nc := learnT(t, set)
	if nc == nil {
		t.Fatal("no NC learned")
	}
	t.Logf("learned NC: %v (TP=%d FP=%d FN=%d ATP=%d)",
		nc.Strings(), nc.Eval.TP, nc.Eval.FP, nc.Eval.FN, nc.Eval.ATP())

	// The paper's NC #7 scores TP=11, FP=3, FN=0, ATP=8 over these rows.
	if nc.Eval.ATP() != 8 {
		t.Errorf("ATP = %d, want 8", nc.Eval.ATP())
	}
	if nc.Eval.TP != 11 || nc.Eval.FP != 3 || nc.Eval.FN != 0 {
		t.Errorf("TP/FP/FN = %d/%d/%d, want 11/3/0", nc.Eval.TP, nc.Eval.FP, nc.Eval.FN)
	}
	if len(nc.Regexes) != 2 {
		t.Errorf("regex count = %d, want 2: %v", len(nc.Regexes), nc.Strings())
	}
	// Phase 2+3 produce the merged, class-embedded first regex.
	want0 := `^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$`
	want1 := `^(\d+)-.+\.equinix\.com$`
	got := nc.Strings()
	if len(got) == 2 && (got[0] != want0 || got[1] != want1) {
		t.Errorf("regexes = %v, want [%s %s]", got, want0, want1)
	}
	// All 16 rows classified exactly as the figure shows.
	_, exts := set.EvaluateDetailed(nc.Regexes...)
	wantOutcome := []Outcome{
		OutcomeTP, OutcomeTP, OutcomeTP, OutcomeTP, OutcomeTP, // a-e
		OutcomeTP, OutcomeTP, OutcomeTP, OutcomeTP, OutcomeTP, // f-j
		OutcomeTP,                // k
		OutcomeNone, OutcomeNone, // l, m
		OutcomeFP, OutcomeFP, OutcomeFP, // n, o, p
	}
	for i, ext := range exts {
		if ext.Outcome != wantOutcome[i] {
			t.Errorf("row %c (%s): outcome = %v, want %v",
				'a'+i, ext.Item.Hostname, ext.Outcome, wantOutcome[i])
		}
	}
	// Good: >= 3 unique congruent ASNs (109, 714, 24115, ...) with PPV
	// 11/14 >= 0.8? 0.786 < 0.8, so this tiny sample is promising.
	if nc.Eval.UniqueTP < 3 {
		t.Errorf("UniqueTP = %d", nc.Eval.UniqueTP)
	}
	if nc.Class != Promising {
		t.Errorf("class = %v, want promising (PPV=%.3f)", nc.Class, nc.Eval.PPV())
	}
	if nc.Single {
		t.Error("figure 4 NC should not be single")
	}
}

func TestFigure4Phase1Regexes(t *testing.T) {
	// The base generator must produce the figure's phase-1 regexes #1-#4.
	set, err := NewSet("equinix.com", figure4Items(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := set.generate()
	got := make(map[string]bool, len(base))
	for _, r := range base {
		got[r.String()] = true
	}
	for _, want := range []string{
		`^(\d+)\.[^\.]+\.equinix\.com$`,  // #1
		`^p(\d+)\.[^\.]+\.equinix\.com$`, // #2
		`^s(\d+)\.[^\.]+\.equinix\.com$`, // #3
		`^(\d+)-.+\.equinix\.com$`,       // #4
	} {
		if !got[want] {
			t.Errorf("base pool missing %s", want)
		}
	}
}

func TestFigure4PhaseATPs(t *testing.T) {
	// The figure reports per-phase ATPs: #1..#3 = -7, #4 = -4, #5 = 1,
	// #6 = 1, #7 = 8.
	set, err := NewSet("equinix.com", figure4Items(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		srcs []string
		atp  int
	}{
		{[]string{`^(\d+)\.[^\.]+\.equinix\.com$`}, -7},
		{[]string{`^p(\d+)\.[^\.]+\.equinix\.com$`}, -7},
		{[]string{`^s(\d+)\.[^\.]+\.equinix\.com$`}, -7},
		{[]string{`^(\d+)-.+\.equinix\.com$`}, -4},
		{[]string{`^(?:p|s)?(\d+)\.[^\.]+\.equinix\.com$`}, 1},
		{[]string{`^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$`}, 1},
		{[]string{`^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$`, `^(\d+)-.+\.equinix\.com$`}, 8},
	}
	for _, c := range cases {
		regexes := parseAll(t, c.srcs)
		ev := set.Evaluate(regexes...)
		if ev.ATP() != c.atp {
			t.Errorf("ATP(%v) = %d (TP=%d FP=%d FN=%d), want %d",
				c.srcs, ev.ATP(), ev.TP, ev.FP, ev.FN, c.atp)
		}
	}
}

func TestFigure2SupplierConvention(t *testing.T) {
	// The six figure-2 rows plus additional hostnames in the same
	// convention with varied depth, standing in for the structural
	// diversity of the full ITDK training data (on the six rows alone, a
	// depth-specific regex legitimately scores a higher ATP).
	items := []Item{
		{Hostname: "ge0-2.01.p.ost.ch.as15576.nts.ch", ASN: 15576},
		{Hostname: "lo1000.01.lns.czh.ch.as15576.nts.ch", ASN: 15576},
		{Hostname: "te0-0-24.01.p.bre.ch.as15576.nts.ch", ASN: 15576},
		{Hostname: "01.r.cba.ch.bl.cust.as15576.nts.ch", ASN: 44879},
		{Hostname: "02.r.czh.ch.sda.cust.as15576.nts.ch", ASN: 51768},
		{Hostname: "01.r.cbs.ch.wwc.cust.as15576.nts.ch", ASN: 206616},
		{Hostname: "xe1.czh.as15576.nts.ch", ASN: 15576},
		{Hostname: "lo0.core.zrh.ch.as15576.nts.ch", ASN: 15576},
		{Hostname: "hu0-1-0-3.01.p.gva.ch.x.as15576.nts.ch", ASN: 15576},
		{Hostname: "po1.agg.bsl.as15576.nts.ch", ASN: 15576},
		{Hostname: "te2-2.02.lns.ber.ch.de.as15576.nts.ch", ASN: 15576},
	}
	set, err := NewSet("nts.ch", items, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nc := learnT(t, set)
	if nc == nil {
		t.Fatal("no NC learned")
	}
	t.Logf("learned NC: %v (TP=%d FP=%d FN=%d)", nc.Strings(), nc.Eval.TP, nc.Eval.FP, nc.Eval.FN)
	// Whatever shape the learner picks, every extraction must be the
	// supplier's ASN: a single-organization convention that is not usable
	// for neighbor inference.
	matched := 0
	for _, it := range items {
		got, ok := nc.Extract(it.Hostname)
		if !ok {
			continue
		}
		matched++
		if got != "15576" {
			t.Errorf("Extract(%s) = %q, want 15576", it.Hostname, got)
		}
	}
	if matched < 8 {
		t.Errorf("NC matched %d hostnames, want >= 8", matched)
	}
	if !nc.Single {
		t.Error("nts.ch NC should be single (one organization's ASN)")
	}
	if nc.Class.Usable() {
		t.Errorf("class = %v; supplier-labelled NC must not be usable", nc.Class)
	}
	if nc.Eval.UniqueExtract != 1 {
		t.Errorf("UniqueExtract = %d, want 1", nc.Eval.UniqueExtract)
	}

	// The paper's displayed regex scores TP=3, FP=3 on the original six
	// rows (figure 2): it extracts the supplier ASN even for addresses
	// supplied to neighbor routers.
	six, err := NewSet("nts.ch", items[:6], Options{})
	if err != nil {
		t.Fatal(err)
	}
	paperRegex := mustParseRegex(t, `as(\d+)\.nts\.ch$`)
	ev, exts := six.EvaluateDetailed(paperRegex)
	if ev.TP != 3 || ev.FP != 3 || ev.FN != 0 {
		t.Errorf("paper regex TP/FP/FN = %d/%d/%d, want 3/3/0", ev.TP, ev.FP, ev.FN)
	}
	for _, ext := range exts {
		if ext.ASN != "15576" {
			t.Errorf("paper regex extracted %q from %s", ext.ASN, ext.Item.Hostname)
		}
	}
	if ev.UniqueExtract != 1 {
		t.Errorf("paper regex UniqueExtract = %d, want 1", ev.UniqueExtract)
	}
	if six.Classify(ev).Usable() {
		t.Error("paper regex on figure-2 rows must not be usable")
	}
}

func TestFigure3aTypoCongruence(t *testing.T) {
	cases := []struct {
		host  string
		train asn.ASN
		// congruent marks hostnames whose apparent ASN the paper's rule
		// accepts (matching first/last digit, length >= 3, distance 1).
		apparent bool
	}{
		{"201.atm2-0.vr1.tor2.alter.net", 701, false},
		{"te-4-0-0-85.53w.ba07.mctn.nb.aliant.net", 855, false},
		{"mlg4bras1-be127-605.antel.net.uy", 6057, false},
		{"as24940.akl-ix.nz", 20940, true},
		{"as202073.swissix.ch", 205073, true},
		{"gw-as20732.init7.net", 207032, true},
	}
	for _, c := range cases {
		name, err := parseName(c.host)
		if err != nil {
			t.Fatal(err)
		}
		runs := name.DigitRuns()
		digits := c.train.Digits()
		if got := hasApparentASN(runs, nil, digits, true); got != c.apparent {
			t.Errorf("hasApparentASN(%s, %d) = %v, want %v", c.host, c.train, got, c.apparent)
		}
		// Without typo credit every one is non-apparent.
		if hasApparentASN(runs, nil, digits, false) {
			t.Errorf("%s: apparent without typo credit", c.host)
		}
	}
}

func TestFigure3bIPFragmentIsFP(t *testing.T) {
	// Training ASN 122 coincides with the last octet of the interface
	// address embedded in the hostname: extracting it must count FP, and
	// it must not count as an apparent ASN.
	items := []Item{
		{
			Hostname: "50-236-216-122-static.hfc.comcastbusiness.net",
			Addr:     netip.MustParseAddr("50.236.216.122"),
			ASN:      122,
		},
	}
	set, err := NewSet("comcastbusiness.net", items, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if set.ar.apparent[0] {
		t.Error("IP fragment counted as apparent ASN")
	}
	// A regex that would extract the octet: FP.
	r := mustParseRegex(t, `^[^-]+-[^-]+-[^-]+-(\d+)-[^\.]+\.hfc\.comcastbusiness\.net$`)
	ev := set.Evaluate(r)
	if ev.FP != 1 || ev.TP != 0 {
		t.Errorf("TP/FP = %d/%d, want 0/1", ev.TP, ev.FP)
	}
	// And the generator must not seed regexes from the IP fragment.
	if base := set.generate(); len(base) != 0 {
		t.Errorf("generator built %d regexes from an IP fragment", len(base))
	}
}
