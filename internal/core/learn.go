package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"

	"hoiho/internal/faultinject"
	"hoiho/internal/psl"
	"hoiho/internal/rex"
)

// NC is a learned naming convention for one suffix: an ordered set of
// regexes (most hostnames are matched by the first; later regexes catch
// alternate formats, §3.5), its evaluation on the training data, and its
// §4 classification.
type NC struct {
	Suffix  string
	Regexes []*rex.Regex
	Eval    Eval
	Class   Classification
	// Single marks figure 2-style conventions whose every extraction is
	// one organization's ASN (the "single NCs" of §4 / table 1).
	Single bool
}

// Extract applies the NC to a hostname, returning the extracted ASN
// digits from the first matching regex.
func (nc *NC) Extract(host string) (string, bool) {
	for _, r := range nc.Regexes {
		if asn, _, _, ok := r.Extract(host); ok {
			return asn, true
		}
	}
	return "", false
}

// Strings renders the NC's regexes.
func (nc *NC) Strings() []string {
	out := make([]string, len(nc.Regexes))
	for i, r := range nc.Regexes {
		out[i] = r.String()
	}
	return out
}

// Learn runs the full four-phase pipeline on the set and returns the best
// NC, or nil when no hostname contains an apparent ASN (the suffix has no
// learnable ASN convention). The context is checked between phases and
// before every match-matrix column build; on cancellation or deadline the
// partial work is discarded and the context's error is returned.
func (s *Set) Learn(ctx context.Context) (*NC, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	base := s.generate()
	if len(base) == 0 {
		return nil, nil
	}

	pool := base
	if !s.opts.DisableMerge {
		pool = s.mergePhase(pool)
	}
	cands, err := s.score(ctx, pool)
	if err != nil {
		return nil, err
	}
	s.rank(cands)
	cands = s.truncate(cands)

	if !s.opts.DisableClasses {
		if cands, err = s.classPhase(ctx, cands); err != nil {
			return nil, err
		}
		s.rank(cands)
		cands = s.truncate(cands)
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var ncs []candidateNC
	for i, c := range cands {
		// The top-ranked single regexes are NC candidates themselves.
		if i >= s.opts.maxSingleNCs() {
			break
		}
		ncs = append(ncs, candidateNC{regexes: []*rex.Regex{c.regex}, eval: c.eval})
	}
	if !s.opts.DisableSets {
		ncs = append(ncs, s.setPhase(cands)...)
	}
	best := s.selectBest(ncs)
	if best == nil {
		return nil, nil
	}
	nc := &NC{Suffix: s.Suffix, Regexes: best.regexes, Eval: best.eval}
	nc.Class = s.Classify(nc.Eval)
	nc.Single = nc.Eval.TP > 0 && nc.Eval.UniqueExtract == 1
	return nc, nil
}

// score evaluates each regex in the pool through the match matrix: the
// columns are built in parallel (bounded by Options.Workers) and each
// regex's Eval is the memoized column aggregate. Regexes that fail to
// compile are dropped, as before.
func (s *Set) score(ctx context.Context, pool []*rex.Regex) ([]scored, error) {
	m := s.matrix()
	if err := m.ensure(ctx, pool); err != nil {
		return nil, err
	}
	out := make([]scored, 0, len(pool))
	for _, r := range pool {
		c := m.column(r)
		if c.bad {
			continue
		}
		out = append(out, scored{regex: r, eval: c.eval})
	}
	return out, nil
}

func (s *Set) truncate(cands []scored) []scored {
	if max := s.opts.maxCandidates(); len(cands) > max {
		return cands[:max]
	}
	return cands
}

// mergePhase implements §3.3: repeatedly merge pairs of regexes that
// differ by a single simple string into alternations, keeping both the
// originals and the merged forms in the pool (ranking decides winners).
func (s *Set) mergePhase(pool []*rex.Regex) []*rex.Regex {
	seen := make(map[string]bool, len(pool))
	for _, r := range pool {
		seen[r.String()] = true
	}
	work := pool
	for round := 0; round < 3 && len(work) > 0; round++ {
		var produced []*rex.Regex
		// Bucket by token count to cut the pairing quadratic: merges only
		// apply to regexes whose lengths differ by at most one.
		byLen := make(map[int][]*rex.Regex)
		for _, r := range pool {
			byLen[r.NumTokens()] = append(byLen[r.NumTokens()], r)
		}
		for _, r := range work {
			n := r.NumTokens()
			for _, m := range []int{n - 1, n, n + 1} {
				for _, o := range byLen[m] {
					if o == r {
						continue
					}
					merged, ok := rex.Merge(r, o)
					if !ok {
						continue
					}
					key := merged.String()
					if seen[key] {
						continue
					}
					seen[key] = true
					produced = append(produced, merged)
				}
			}
			if len(pool)+len(produced) > 4*s.opts.maxCandidates() {
				break
			}
		}
		pool = append(pool, produced...)
		work = produced
	}
	return pool
}

// classPhase implements §3.4: for each ranked candidate, replace
// exclusion components with the narrowest character class covering the
// substrings those components matched across the training data, adding
// the specialized regex to the pool.
func (s *Set) classPhase(ctx context.Context, cands []scored) ([]scored, error) {
	seen := make(map[string]bool, len(cands))
	for _, c := range cands {
		seen[c.regex.String()] = true
	}
	var produced []*rex.Regex
	for _, c := range cands {
		r := s.embedClasses(c.regex)
		if r == nil {
			continue
		}
		key := r.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		produced = append(produced, r)
	}
	m := s.matrix()
	if err := m.ensure(ctx, produced); err != nil {
		return nil, err
	}
	out := cands
	for _, r := range produced {
		out = append(out, scored{regex: r, eval: m.column(r).eval})
	}
	return out, nil
}

// embedClasses returns a copy of r with every exclusion component whose
// matched substrings admit a character class replaced by that class; nil
// when nothing changed.
func (s *Set) embedClasses(r *rex.Regex) *rex.Regex {
	toks := r.Tokens()
	exclIdx := make([]int, 0, 2)
	for i, t := range toks {
		if t.Kind == rex.KindExcl {
			exclIdx = append(exclIdx, i)
		}
	}
	if len(exclIdx) == 0 {
		return nil
	}
	samples := make(map[int][]string, len(exclIdx))
	var spanBuf [][2]int
	for i := 0; i < s.ar.len(); i++ {
		full := s.ar.full[i]
		spans, ok := r.AppendTokenSpans(spanBuf, full)
		spanBuf = spans[:0]
		if !ok {
			continue
		}
		for _, ti := range exclIdx {
			sp := spans[ti]
			if sp[0] >= 0 && sp[1] > sp[0] {
				samples[ti] = append(samples[ti], full[sp[0]:sp[1]])
			}
		}
	}
	changed := false
	for _, ti := range exclIdx {
		cl, ok := rex.NarrowestClass(samples[ti])
		if !ok {
			continue
		}
		toks[ti] = rex.ClassTok(cl)
		changed = true
	}
	if !changed {
		return nil
	}
	var (
		nr  *rex.Regex
		err error
	)
	if r.LeftOpen() {
		nr, err = rex.NewOpen(toks...)
	} else {
		nr, err = rex.New(toks...)
	}
	if err != nil {
		return nil
	}
	return nr
}

// candidateNC is an NC candidate produced by phase 4.
type candidateNC struct {
	regexes []*rex.Regex
	eval    Eval
}

// setPhase implements §3.5: starting from each of the top-ranked regexes,
// greedily add lower-ranked regexes whenever the combination's ATP
// exceeds the working set's. Every candidate already has a memoized
// match-matrix column from scoring, so each greedy trial is an
// incremental combine — fold the candidate's column into the working
// set's unmatched remainder — instead of re-running every regex in the
// working set against every item.
func (s *Set) setPhase(cands []scored) []candidateNC {
	m := s.matrix()
	starts := s.opts.maxSetStarts()
	if starts > len(cands) {
		starts = len(cands)
	}
	maxSize := s.opts.maxSetSize()
	var out []candidateNC
	for st := 0; st < starts; st++ {
		state := m.newSetState()
		state.absorb(m.column(cands[st].regex))
		set := []*rex.Regex{cands[st].regex}
		curATP := state.atp()
		for j := st + 1; j < len(cands) && len(set) < maxSize; j++ {
			c := m.column(cands[j].regex)
			if state.trialATP(c) > curATP {
				state.absorb(c)
				set = append(set, cands[j].regex)
				curATP = state.atp()
			}
		}
		if len(set) > 1 {
			cols := make([]*column, len(set))
			for i, r := range set {
				cols[i] = m.column(r)
			}
			out = append(out, candidateNC{regexes: set, eval: m.evalSet(cols)})
		}
	}
	return out
}

// selectBest implements §3.6: rank NCs by ATP and pick the top, then
// allow a lower-ranked NC expressed in fewer regexes to take over if it
// matches at least as many hostnames, has at least as many TPs, and at
// most one extra FP (less opportunity for over-fitting).
func (s *Set) selectBest(ncs []candidateNC) *candidateNC {
	if len(ncs) == 0 {
		return nil
	}
	sort.SliceStable(ncs, func(i, j int) bool {
		a, b := ncs[i], ncs[j]
		if a.eval.ATP() != b.eval.ATP() {
			return a.eval.ATP() > b.eval.ATP()
		}
		if len(a.regexes) != len(b.regexes) {
			return len(a.regexes) < len(b.regexes)
		}
		if a.eval.TP != b.eval.TP {
			return a.eval.TP > b.eval.TP
		}
		sa, sb := ncSpecificity(a), ncSpecificity(b)
		if sa != sb {
			return sa > sb
		}
		return ncKey(a) < ncKey(b)
	})
	best := &ncs[0]
	for i := 1; i < len(ncs); i++ {
		nc := &ncs[i]
		if len(nc.regexes) < len(best.regexes) &&
			nc.eval.Matches >= best.eval.Matches &&
			nc.eval.TP >= best.eval.TP &&
			nc.eval.FP <= best.eval.FP+1 {
			best = nc
		}
	}
	return best
}

func ncSpecificity(nc candidateNC) int {
	sum := 0
	for _, r := range nc.regexes {
		sum += specificity(r)
	}
	return sum
}

func ncKey(nc candidateNC) string {
	var sb strings.Builder
	for _, r := range nc.regexes {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Learner runs the pipeline over many suffixes.
type Learner struct {
	Opts Options
	// MinItems is the minimum number of usable training items a suffix
	// needs before learning is attempted (default 4: below that, a regex
	// cannot demonstrate multiple distinct congruent ASNs).
	MinItems int
	// Workers bounds the suffixes learned concurrently, and (unless
	// Opts.Workers overrides it) the goroutines each suffix may use to
	// score its candidate pool — so a single dominant suffix no longer
	// bounds the tail latency of a whole Learn run. 0 means GOMAXPROCS,
	// 1 forces serial execution.
	Workers int
	// Checkpoint, when non-empty, makes Learn durable: every completed
	// suffix's outcome is staged there, flushed atomically (temp file +
	// rename) every CheckpointEvery completions and again when the run
	// finishes or is cancelled. See checkpoint.go for the format.
	Checkpoint string
	// CheckpointEvery is the flush cadence in completed suffixes.
	// 0 means the default (16).
	CheckpointEvery int
	// Resume loads the Checkpoint file (when it exists) before learning
	// and skips the suffixes it already covers, so an interrupted run
	// picks up where it left off. Requires Checkpoint; refused when the
	// checkpoint was written under different learning options.
	Resume bool
}

// SuffixError is one quarantined suffix: learning it panicked, exceeded
// Options.SuffixTimeout, or failed with a transient error. The rest of
// the run is unaffected — the paper's corpora are noisy (§4), and one
// pathological suffix must degrade one NC, not the fleet.
type SuffixError struct {
	Suffix string
	// Err is the non-panic failure (context.DeadlineExceeded for a
	// blown suffix budget); nil when the suffix panicked.
	Err error
	// Panic is the recovered panic value, nil otherwise.
	Panic any
	// Stack is the goroutine stack captured at recovery, for post-mortem
	// debugging of quarantined panics.
	Stack []byte
}

func (e *SuffixError) Error() string {
	if e.Panic != nil {
		return fmt.Sprintf("core: suffix %s: panic: %v", e.Suffix, e.Panic)
	}
	return fmt.Sprintf("core: suffix %s: %v", e.Suffix, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As (e.g. matching
// context.DeadlineExceeded for timed-out suffixes).
func (e *SuffixError) Unwrap() error { return e.Err }

// Report is the outcome of a Learner.Learn run.
type Report struct {
	// NCs are the learned conventions, sorted by suffix, including any
	// restored from a resumed checkpoint.
	NCs []*NC
	// Learned counts suffixes completed this run (with or without a
	// resulting NC); Resumed counts suffixes skipped via the checkpoint.
	Learned int
	Resumed int
	// Quarantined lists the suffixes isolated by the per-suffix fault
	// boundary, sorted by suffix. They are not recorded in the
	// checkpoint, so a resumed run retries them.
	Quarantined []*SuffixError
}

// LearnSuffix builds a set for one suffix and learns its NC under the
// context and, when Options.SuffixTimeout is set, a per-suffix deadline.
// The learner's Workers knob doubles as the intra-suffix scoring
// parallelism unless Opts.Workers overrides it. Panics are not caught
// here — Learn adds the quarantine boundary.
func (l *Learner) LearnSuffix(ctx context.Context, suffix string, items []Item) (*NC, error) {
	opts := l.Opts
	if opts.Workers == 0 {
		opts.Workers = l.Workers
	}
	if err := faultinject.Fire(ctx, faultinject.StageLearnSuffix, suffix); err != nil {
		return nil, err
	}
	if t := opts.SuffixTimeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	set, err := NewSet(suffix, items, opts)
	if err != nil {
		return nil, err
	}
	min := l.MinItems
	if min <= 0 {
		min = 4
	}
	if set.Len() < min {
		return nil, nil
	}
	return set.Learn(ctx)
}

// learnOne learns one suffix inside the quarantine boundary: a panic or
// a suffix-local failure (timeout, transient error, bad set) becomes a
// *SuffixError; cancellation of the run's own context aborts instead.
func (l *Learner) learnOne(ctx context.Context, suffix string, items []Item) (nc *NC, quar *SuffixError, runErr error) {
	defer func() {
		if r := recover(); r != nil {
			nc = nil
			quar = &SuffixError{Suffix: suffix, Panic: r, Stack: debug.Stack()}
			runErr = nil
		}
	}()
	nc, err := l.LearnSuffix(ctx, suffix, items)
	if err == nil {
		return nc, nil, nil
	}
	if ctx.Err() != nil {
		// The whole run was cancelled or hit its deadline; not this
		// suffix's fault, and not quarantinable.
		return nil, nil, ctx.Err()
	}
	return nil, &SuffixError{Suffix: suffix, Err: err}, nil
}

// Learn groups items by registered domain and learns an NC per suffix
// concurrently (bounded by Workers), with per-suffix fault isolation:
// a suffix that panics, times out, or fails is quarantined in the
// report while every other suffix completes. Results are deterministic
// regardless of parallelism. On cancellation Learn flushes the
// checkpoint (when configured), returns the partial report, and
// reports ctx.Err().
func (l *Learner) Learn(ctx context.Context, list *psl.List, items []Item) (*Report, error) {
	if list == nil {
		return nil, fmt.Errorf("core: nil public suffix list")
	}
	groups, suffixes := GroupItems(list, items)

	ck, err := l.openCheckpoint()
	if err != nil {
		return nil, err
	}

	report := &Report{}
	results := make([]*NC, len(suffixes))
	quar := make([]*SuffixError, len(suffixes))
	pending := make([]int, 0, len(suffixes))
	for i, suf := range suffixes {
		if nc, done := ck.done(suf); done {
			results[i] = nc
			report.Resumed++
			continue
		}
		pending = append(pending, i)
	}

	workers := l.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	var runErr error
	if workers <= 1 {
		for _, i := range pending {
			suf := suffixes[i]
			nc, qe, err := l.learnOne(ctx, suf, groups[suf])
			if err != nil {
				runErr = err
				break
			}
			if qe != nil {
				quar[i] = qe
				continue
			}
			results[i] = nc
			report.Learned++
			if cerr := ck.record(suf, nc); cerr != nil {
				runErr = cerr
				break
			}
		}
		if runErr == nil {
			runErr = ctx.Err()
		}
	} else {
		// Fan out one job per suffix; slot results by index to keep the
		// suffix-sorted order independent of scheduling.
		jobs := make(chan int)
		var wg sync.WaitGroup
		var mu sync.Mutex
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					suf := suffixes[i]
					nc, qe, err := l.learnOne(ctx, suf, groups[suf])
					mu.Lock()
					switch {
					case err != nil:
						if runErr == nil {
							runErr = err
						}
					case qe != nil:
						quar[i] = qe
					default:
						results[i] = nc
						report.Learned++
						if cerr := ck.record(suf, nc); cerr != nil && runErr == nil {
							runErr = cerr
						}
					}
					mu.Unlock()
				}
			}()
		}
	dispatch:
		for _, i := range pending {
			select {
			case jobs <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(jobs)
		wg.Wait()
		if runErr == nil {
			runErr = ctx.Err()
		}
	}

	// Flush whatever completed, even on abort: the checkpoint is the
	// crash-consistency story for long runs.
	if ferr := ck.flush(); ferr != nil && runErr == nil {
		runErr = ferr
	}

	for i := range suffixes {
		if quar[i] != nil {
			report.Quarantined = append(report.Quarantined, quar[i])
			continue
		}
		if results[i] != nil {
			report.NCs = append(report.NCs, results[i])
		}
	}
	return report, runErr
}

// LearnAll is the strict form of Learn for callers that treat any
// suffix failure as fatal: it returns the learned conventions sorted by
// suffix, or the first quarantined suffix's error. Suffixes with no
// learnable convention are omitted.
func (l *Learner) LearnAll(ctx context.Context, list *psl.List, items []Item) ([]*NC, error) {
	report, err := l.Learn(ctx, list, items)
	if err != nil {
		return nil, err
	}
	if len(report.Quarantined) > 0 {
		return nil, report.Quarantined[0]
	}
	return report.NCs, nil
}
