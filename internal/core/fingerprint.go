package core

import "hash/fnv"

// FingerprintNCs hashes a convention list's content: every NC's suffix,
// class, and regex sources, in list order. It is the corpus identity
// shared by the serving index (extract.Corpus.Fingerprint) and the
// binary corpus format (internal/corpusbin), which stores it in the
// header and verifies it after decode — one algorithm, one answer, no
// matter which layer computes it. Callers that need order-independence
// pass a suffix-sorted list, as both do.
func FingerprintNCs(ncs []*NC) uint64 {
	h := fnv.New64a()
	for _, nc := range ncs {
		h.Write([]byte(nc.Suffix))
		h.Write([]byte{0, byte(nc.Class)})
		for _, r := range nc.Regexes {
			h.Write([]byte{0})
			h.Write([]byte(r.String()))
		}
		h.Write([]byte{0xff})
	}
	return h.Sum64()
}
