package core

// Chaos tests: drive the learner through injected panics, transient
// errors, stalls, and cancellations (internal/faultinject) and assert
// the robustness contract — per-suffix quarantine, prompt cancellation,
// and checkpoint/resume producing a corpus byte-identical to an
// uninterrupted run. All schedules are deterministic (seeded plans, no
// probability below 1), so failures replay exactly; run under -race.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hoiho/internal/asn"
	"hoiho/internal/faultinject"
	"hoiho/internal/leaktest"
	"hoiho/internal/psl"
)

// chaosItems fabricates training data over six registered domains:
// five clean start-style conventions plus one suffix (aazero.com,
// sorting first) whose hostnames carry no ASN, so it completes with no
// learnable convention — exercising the nil-NC checkpoint entries.
func chaosItems(n int) []Item {
	suffixes := []string{"alpha.net", "bravo.com", "charlie.org", "delta.net", "echo.com"}
	var items []Item
	for si, suf := range suffixes {
		for i := 0; i < n; i++ {
			a := asn.ASN(7000 + si*1000 + i*13)
			items = append(items, Item{
				Hostname: fmt.Sprintf("as%d-r%d.%s", a, i%4, suf),
				ASN:      a,
			})
		}
	}
	for i := 0; i < n; i++ {
		items = append(items, Item{
			Hostname: fmt.Sprintf("host%d.aazero.com", i),
			ASN:      asn.ASN(500 + i),
		})
	}
	return items
}

// TestChaosPanicQuarantine: an injected panic while learning one suffix
// quarantines that suffix alone — with the panic value and a stack for
// the post-mortem — while every other suffix completes.
func TestChaosPanicQuarantine(t *testing.T) {
	for _, tc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 4}} {
		t.Run(tc.name, func(t *testing.T) {
			defer leaktest.Check(t)()
			defer faultinject.Activate(&faultinject.Plan{Rules: []faultinject.Rule{{
				Stage: faultinject.StageLearnSuffix, Key: "charlie.org",
				Kind: faultinject.KindPanic, Prob: 1,
			}}})()
			l := &Learner{Workers: tc.workers}
			report, err := l.Learn(context.Background(), psl.Default(), chaosItems(8))
			if err != nil {
				t.Fatal(err)
			}
			if len(report.Quarantined) != 1 {
				t.Fatalf("quarantined %d suffixes, want 1: %v", len(report.Quarantined), report.Quarantined)
			}
			q := report.Quarantined[0]
			if q.Suffix != "charlie.org" {
				t.Errorf("quarantined %s, want charlie.org", q.Suffix)
			}
			ip, ok := q.Panic.(faultinject.InjectedPanic)
			if !ok || ip.Stage != faultinject.StageLearnSuffix {
				t.Errorf("panic value = %#v, want InjectedPanic at %s", q.Panic, faultinject.StageLearnSuffix)
			}
			if len(q.Stack) == 0 {
				t.Error("quarantined panic captured no stack")
			}
			if !strings.Contains(q.Error(), "panic") {
				t.Errorf("SuffixError.Error() = %q, want a panic mention", q.Error())
			}
			if report.Learned != 5 {
				t.Errorf("learned %d suffixes, want 5", report.Learned)
			}
			if len(report.NCs) != 4 {
				t.Fatalf("got %d NCs, want 4: the other conventions must survive", len(report.NCs))
			}
			for _, nc := range report.NCs {
				if nc.Suffix == "charlie.org" {
					t.Error("quarantined suffix produced an NC")
				}
			}

			// The strict form surfaces the quarantine as the run error.
			_, err = l.LearnAll(context.Background(), psl.Default(), chaosItems(8))
			var se *SuffixError
			if !errors.As(err, &se) || se.Suffix != "charlie.org" {
				t.Errorf("LearnAll error = %v, want *SuffixError for charlie.org", err)
			}
		})
	}
}

// TestChaosTransientErrorQuarantine: an injected transient error is a
// suffix-local failure, not a run abort.
func TestChaosTransientErrorQuarantine(t *testing.T) {
	defer faultinject.Activate(&faultinject.Plan{Rules: []faultinject.Rule{{
		Stage: faultinject.StageLearnSuffix, Key: "delta.net",
		Kind: faultinject.KindError, Prob: 1,
	}}})()
	report, err := (&Learner{Workers: 2}).Learn(context.Background(), psl.Default(), chaosItems(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Quarantined) != 1 || report.Quarantined[0].Suffix != "delta.net" {
		t.Fatalf("quarantined = %v, want exactly delta.net", report.Quarantined)
	}
	q := report.Quarantined[0]
	if !errors.Is(q, faultinject.ErrInjected) {
		t.Errorf("quarantine error %v does not unwrap to ErrInjected", q)
	}
	if q.Panic != nil {
		t.Errorf("transient error recorded a panic value: %v", q.Panic)
	}
	if len(report.NCs) != 4 {
		t.Errorf("got %d NCs, want 4", len(report.NCs))
	}
}

// TestChaosSuffixTimeout: a stalled suffix blows only its own
// SuffixTimeout budget — quarantined as context.DeadlineExceeded while
// the rest of the run completes, and well before the stall duration.
func TestChaosSuffixTimeout(t *testing.T) {
	defer faultinject.Activate(&faultinject.Plan{Rules: []faultinject.Rule{{
		Stage: faultinject.StageMatrixBatch, Key: "bravo.com",
		Kind: faultinject.KindStall, Prob: 1, Stall: time.Minute,
	}}})()
	l := &Learner{Workers: 1, Opts: Options{SuffixTimeout: 500 * time.Millisecond}}
	start := time.Now()
	report, err := l.Learn(context.Background(), psl.Default(), chaosItems(8))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("run took %v; the suffix budget did not bound the stall", elapsed)
	}
	if len(report.Quarantined) != 1 || report.Quarantined[0].Suffix != "bravo.com" {
		t.Fatalf("quarantined = %v, want exactly bravo.com", report.Quarantined)
	}
	if !errors.Is(report.Quarantined[0], context.DeadlineExceeded) {
		t.Errorf("quarantine error %v does not unwrap to DeadlineExceeded", report.Quarantined[0])
	}
	if len(report.NCs) != 4 {
		t.Errorf("got %d NCs, want 4", len(report.NCs))
	}
}

// TestChaosCancellationLatency: cancelling the run context while every
// suffix is stalled returns promptly with the partial report and
// ctx.Err(), instead of waiting out the stalls.
func TestChaosCancellationLatency(t *testing.T) {
	defer leaktest.Check(t)()
	plan := &faultinject.Plan{Rules: []faultinject.Rule{{
		Stage: faultinject.StageLearnSuffix,
		Kind:  faultinject.KindStall, Prob: 1, Stall: time.Minute,
	}}}
	defer faultinject.Activate(plan)()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for plan.Fired(0) == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	start := time.Now()
	report, err := (&Learner{Workers: 2}).Learn(ctx, psl.Default(), chaosItems(8))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if report == nil {
		t.Fatal("cancelled Learn must still return the partial report")
	}
	if elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v; stalls must be bounded by ctx", elapsed)
	}
}

// TestCheckpointResumeEquivalence is the acceptance test for the
// checkpoint format: interrupt a run mid-suffix, resume it (under
// different parallelism, which the options fingerprint ignores), and
// require the final corpus to be byte-identical to an uninterrupted
// run's.
func TestCheckpointResumeEquivalence(t *testing.T) {
	items := chaosItems(8)
	baseline, err := (&Learner{Workers: 1}).Learn(context.Background(), psl.Default(), items)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MarshalNCs(baseline.NCs)
	if err != nil {
		t.Fatal(err)
	}

	ck := filepath.Join(t.TempDir(), "learn.ckpt")
	plan := &faultinject.Plan{Rules: []faultinject.Rule{{
		Stage: faultinject.StageLearnSuffix, Key: "charlie.org",
		Kind: faultinject.KindStall, Prob: 1, Stall: time.Minute,
	}}}
	restore := faultinject.Activate(plan)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for plan.Fired(0) == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	interrupted, err := (&Learner{Workers: 1, Checkpoint: ck, CheckpointEvery: 1}).
		Learn(ctx, psl.Default(), items)
	restore()
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	// Workers=1 learns in sorted order: aazero (no convention), alpha,
	// bravo complete before the stalled charlie aborts the run.
	if interrupted.Learned != 3 {
		t.Fatalf("interrupted run learned %d suffixes, want 3", interrupted.Learned)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("no checkpoint after interrupted run: %v", err)
	}

	resumed, err := (&Learner{
		Workers:    4,
		Opts:       Options{SuffixTimeout: time.Minute},
		Checkpoint: ck,
		Resume:     true,
	}).Learn(context.Background(), psl.Default(), items)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed != 3 {
		t.Errorf("resumed %d suffixes from the checkpoint, want 3", resumed.Resumed)
	}
	if resumed.Learned != 3 {
		t.Errorf("resumed run learned %d suffixes, want the remaining 3", resumed.Learned)
	}
	got, err := MarshalNCs(resumed.NCs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed corpus differs from uninterrupted run:\n got: %s\nwant: %s", got, want)
	}
}

// TestCheckpointRetriesQuarantined: quarantined suffixes are not
// recorded as done, so a resumed run retries them and completes the
// corpus.
func TestCheckpointRetriesQuarantined(t *testing.T) {
	items := chaosItems(8)
	baseline, err := (&Learner{Workers: 1}).Learn(context.Background(), psl.Default(), items)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MarshalNCs(baseline.NCs)
	if err != nil {
		t.Fatal(err)
	}

	ck := filepath.Join(t.TempDir(), "learn.ckpt")
	restore := faultinject.Activate(&faultinject.Plan{Rules: []faultinject.Rule{{
		Stage: faultinject.StageLearnSuffix, Key: "delta.net",
		Kind: faultinject.KindError, Prob: 1,
	}}})
	first, err := (&Learner{Workers: 1, Checkpoint: ck, CheckpointEvery: 1}).
		Learn(context.Background(), psl.Default(), items)
	restore()
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Quarantined) != 1 || first.Quarantined[0].Suffix != "delta.net" {
		t.Fatalf("quarantined = %v, want exactly delta.net", first.Quarantined)
	}
	if first.Learned != 5 {
		t.Fatalf("first run learned %d suffixes, want 5", first.Learned)
	}

	second, err := (&Learner{Workers: 1, Checkpoint: ck, Resume: true}).
		Learn(context.Background(), psl.Default(), items)
	if err != nil {
		t.Fatal(err)
	}
	if second.Resumed != 5 || second.Learned != 1 {
		t.Errorf("resumed/learned = %d/%d, want 5/1 (only delta.net retried)", second.Resumed, second.Learned)
	}
	if len(second.Quarantined) != 0 {
		t.Errorf("healthy resume still quarantined: %v", second.Quarantined)
	}
	got, err := MarshalNCs(second.NCs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("corpus after retry differs from uninterrupted run:\n got: %s\nwant: %s", got, want)
	}
}

// TestCheckpointRejects covers the loader's refusal paths: every bad
// checkpoint fails loudly with a descriptive error instead of silently
// relearning or mixing incompatible results.
func TestCheckpointRejects(t *testing.T) {
	items := chaosItems(8)

	t.Run("resume without checkpoint path", func(t *testing.T) {
		_, err := (&Learner{Resume: true}).Learn(context.Background(), psl.Default(), items)
		if err == nil || !strings.Contains(err.Error(), "Resume requires") {
			t.Fatalf("err = %v, want a Resume-requires-Checkpoint error", err)
		}
	})
	t.Run("not a checkpoint file", func(t *testing.T) {
		ck := filepath.Join(t.TempDir(), "garbage.ckpt")
		if err := os.WriteFile(ck, []byte("not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := (&Learner{Checkpoint: ck, Resume: true}).Learn(context.Background(), psl.Default(), items)
		if err == nil || !strings.Contains(err.Error(), "not a checkpoint file") {
			t.Fatalf("err = %v, want a not-a-checkpoint error", err)
		}
	})
	t.Run("version mismatch", func(t *testing.T) {
		ck := filepath.Join(t.TempDir(), "future.ckpt")
		if err := os.WriteFile(ck, []byte(`{"version":99,"opts":"x","done":[]}`), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := (&Learner{Checkpoint: ck, Resume: true}).Learn(context.Background(), psl.Default(), items)
		if err == nil || !strings.Contains(err.Error(), "unsupported version") {
			t.Fatalf("err = %v, want an unsupported-version error", err)
		}
	})
	t.Run("options mismatch", func(t *testing.T) {
		ck := filepath.Join(t.TempDir(), "opts.ckpt")
		if _, err := (&Learner{Workers: 1, Checkpoint: ck}).
			Learn(context.Background(), psl.Default(), items); err != nil {
			t.Fatal(err)
		}
		_, err := (&Learner{Checkpoint: ck, Resume: true, Opts: Options{DisableMerge: true}}).
			Learn(context.Background(), psl.Default(), items)
		if err == nil || !strings.Contains(err.Error(), "different learner options") {
			t.Fatalf("err = %v, want an options-mismatch error", err)
		}
	})
	t.Run("missing checkpoint is a fresh run", func(t *testing.T) {
		ck := filepath.Join(t.TempDir(), "fresh.ckpt")
		report, err := (&Learner{Workers: 1, Checkpoint: ck, Resume: true}).
			Learn(context.Background(), psl.Default(), items)
		if err != nil {
			t.Fatal(err)
		}
		if report.Resumed != 0 || report.Learned != 6 {
			t.Errorf("resumed/learned = %d/%d, want 0/6", report.Resumed, report.Learned)
		}
	})
}
