package core

// errors.Is/As interop for the quarantine taxonomy: callers holding a
// Report (or a LearnAll error) must be able to classify each quarantined
// suffix — deadline-blown vs transient vs panicked — without string
// matching. PR 5's serving daemon leans on the same discipline for its
// own taxonomy (internal/serve), so the two are tested symmetrically.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestSuffixErrorUnwrapDeadline(t *testing.T) {
	err := error(&SuffixError{Suffix: "slow.net", Err: context.DeadlineExceeded})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("deadline quarantine is not errors.Is(DeadlineExceeded)")
	}
	if errors.Is(err, context.Canceled) {
		t.Error("deadline quarantine must not classify as Canceled")
	}
	// Wrapped the way callers report it, As still recovers the suffix.
	var se *SuffixError
	if !errors.As(fmt.Errorf("run failed: %w", err), &se) || se.Suffix != "slow.net" {
		t.Errorf("errors.As through a wrap = %v, suffix %q", err, se.Suffix)
	}
}

func TestSuffixErrorPanicHasNoCause(t *testing.T) {
	err := &SuffixError{Suffix: "boom.net", Panic: "kaboom", Stack: []byte("stack")}
	// A panic quarantine has no wrapped cause: it must not classify as
	// any sentinel a caller dispatches on.
	if err.Unwrap() != nil {
		t.Errorf("panic quarantine Unwrap = %v, want nil", err.Unwrap())
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Error("panic quarantine must not classify as DeadlineExceeded")
	}
	if !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "boom.net") {
		t.Errorf("Error() = %q, want the suffix and a panic mention", err.Error())
	}
}

func TestSuffixErrorTransientChain(t *testing.T) {
	root := errors.New("backend hiccup")
	err := error(&SuffixError{Suffix: "flaky.org", Err: fmt.Errorf("attempt 2: %w", root)})
	if !errors.Is(err, root) {
		t.Error("transient quarantine does not unwrap to its root cause")
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Error("transient quarantine must not classify as DeadlineExceeded")
	}
}
