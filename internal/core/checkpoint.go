package core

// Checkpoint/resume for long Learner runs. The checkpoint file is a
// versioned JSON envelope holding every completed suffix's outcome —
// the learned NC in its stable serialized form, or an explicit
// "completed, no learnable convention" marker — plus a fingerprint of
// the learning options. Writes go through internal/atomicfile (temp
// file + rename), so a crash mid-flush leaves the previous checkpoint
// intact, never a torn one. Resume refuses a checkpoint written under
// different learning options: mixing conventions learned under
// different rules would silently corrupt the corpus.
//
// Because NCs round-trip bit-for-bit through their JSON form, a run
// that is interrupted and resumed produces a corpus byte-identical to
// an uninterrupted run (TestCheckpointResumeEquivalence).

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"hoiho/internal/atomicfile"
)

// checkpointVersion is the on-disk schema version. Readers reject any
// other version with a descriptive error rather than guessing.
const checkpointVersion = 1

// maxCheckpointBytes caps how much checkpoint JSON the loader reads, so
// a corrupt or hostile file fails loudly instead of exhausting memory.
const maxCheckpointBytes = 256 << 20

type checkpointFile struct {
	Version int               `json:"version"`
	Opts    string            `json:"opts"`
	Done    []checkpointEntry `json:"done"`
}

type checkpointEntry struct {
	Suffix string `json:"suffix"`
	// NC is nil when the suffix completed without a learnable
	// convention — still done, so resume must not re-learn it.
	NC *NC `json:"nc,omitempty"`
}

// optsFingerprint identifies the learner configuration whose results a
// checkpoint holds. Knobs that cannot change a completed suffix's NC —
// parallelism, the per-suffix wall-clock budget, checkpoint cadence —
// are excluded, so resuming with more workers or a different timeout is
// allowed.
func (l *Learner) optsFingerprint() string {
	o := l.Opts
	o.Workers = 0
	o.SuffixTimeout = 0
	min := l.MinItems
	if min <= 0 {
		min = 4
	}
	return fmt.Sprintf("%+v;min=%d", o, min)
}

// checkpointState is the in-run view of the checkpoint: the completed
// suffixes (loaded ones plus this run's), and the flush cadence. A nil
// *checkpointState (no Checkpoint configured) is valid and inert.
type checkpointState struct {
	path  string
	every int
	fp    string

	mu      sync.Mutex
	entries map[string]*NC
	dirty   int // completions since the last flush
}

// openCheckpoint prepares the checkpoint for a run, loading prior
// progress when Resume is set. Returns nil (inert) when no checkpoint
// path is configured.
func (l *Learner) openCheckpoint() (*checkpointState, error) {
	if l.Checkpoint == "" {
		if l.Resume {
			return nil, fmt.Errorf("core: Resume requires a Checkpoint path")
		}
		return nil, nil
	}
	ck := &checkpointState{
		path:    l.Checkpoint,
		every:   l.CheckpointEvery,
		fp:      l.optsFingerprint(),
		entries: make(map[string]*NC),
	}
	if ck.every <= 0 {
		ck.every = 16
	}
	if !l.Resume {
		return ck, nil
	}
	f, err := os.Open(l.Checkpoint)
	if os.IsNotExist(err) {
		// Nothing to resume from yet: a fresh run that will create it.
		return ck, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(io.LimitReader(f, maxCheckpointBytes+1))
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint %s: %w", l.Checkpoint, err)
	}
	if len(data) > maxCheckpointBytes {
		return nil, fmt.Errorf("core: checkpoint %s: exceeds %d-byte cap", l.Checkpoint, maxCheckpointBytes)
	}
	var cf checkpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, fmt.Errorf("core: checkpoint %s: not a checkpoint file: %w", l.Checkpoint, err)
	}
	if cf.Version != checkpointVersion {
		return nil, fmt.Errorf("core: checkpoint %s: unsupported version %d (this build reads %d)",
			l.Checkpoint, cf.Version, checkpointVersion)
	}
	if cf.Opts != ck.fp {
		return nil, fmt.Errorf("core: checkpoint %s: written under different learner options (checkpoint %q, current %q); delete it or restore the options",
			l.Checkpoint, cf.Opts, ck.fp)
	}
	for _, e := range cf.Done {
		ck.entries[e.Suffix] = e.NC
	}
	return ck, nil
}

// done reports whether the suffix completed in a previous run and, if
// so, its NC (nil for completed-without-convention). Called before the
// worker fan-out, so it reads entries without locking.
func (ck *checkpointState) done(suffix string) (*NC, bool) {
	if ck == nil {
		return nil, false
	}
	nc, ok := ck.entries[suffix]
	return nc, ok
}

// record marks a suffix completed and flushes when the cadence is due.
// Safe for concurrent use by the learner's workers.
func (ck *checkpointState) record(suffix string, nc *NC) error {
	if ck == nil {
		return nil
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	ck.entries[suffix] = nc
	ck.dirty++
	if ck.dirty < ck.every {
		return nil
	}
	return ck.flushLocked()
}

// flush writes any unflushed completions; a no-op when nothing changed
// since the last flush (or no checkpoint is configured).
func (ck *checkpointState) flush() error {
	if ck == nil {
		return nil
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if ck.dirty == 0 {
		return nil
	}
	return ck.flushLocked()
}

func (ck *checkpointState) flushLocked() error {
	suffixes := make([]string, 0, len(ck.entries))
	for s := range ck.entries {
		suffixes = append(suffixes, s)
	}
	sort.Strings(suffixes)
	cf := checkpointFile{Version: checkpointVersion, Opts: ck.fp}
	cf.Done = make([]checkpointEntry, 0, len(suffixes))
	for _, s := range suffixes {
		cf.Done = append(cf.Done, checkpointEntry{Suffix: s, NC: ck.entries[s]})
	}
	err := atomicfile.WriteFile(ck.path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(cf)
	})
	if err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", ck.path, err)
	}
	ck.dirty = 0
	return nil
}
