package core

import (
	"testing"

	"hoiho/internal/hostname"
	"hoiho/internal/rex"
)

func parseName(h string) (hostname.Name, error) { return hostname.Parse(h) }

func mustParseRegex(t testing.TB, src string) *rex.Regex {
	t.Helper()
	r, err := rex.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return r
}

func parseAll(t testing.TB, srcs []string) []*rex.Regex {
	t.Helper()
	out := make([]*rex.Regex, len(srcs))
	for i, s := range srcs {
		out[i] = mustParseRegex(t, s)
	}
	return out
}
