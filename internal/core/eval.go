package core

import (
	"context"
	"math/bits"
	"sort"

	"hoiho/internal/asn"
	"hoiho/internal/rex"
)

// Outcome classifies one hostname under one regex or NC (§3.1).
type Outcome uint8

const (
	// OutcomeNone: the regex did not match and the hostname has no
	// apparent ASN; the hostname does not affect the score.
	OutcomeNone Outcome = iota
	// OutcomeTP: the extracted number is congruent with the training ASN.
	OutcomeTP
	// OutcomeFP: the regex extracted a different number than the training
	// ASN, or the extraction is part of an embedded IP address.
	OutcomeFP
	// OutcomeFN: the regex did not match but the hostname contains an
	// apparent ASN.
	OutcomeFN
)

func (o Outcome) String() string {
	switch o {
	case OutcomeTP:
		return "TP"
	case OutcomeFP:
		return "FP"
	case OutcomeFN:
		return "FN"
	default:
		return "-"
	}
}

// Extraction records how one item fared under evaluation.
type Extraction struct {
	Item     Item
	Outcome  Outcome
	ASN      string // extracted digits ("" when no match)
	RegexIdx int    // index of the matching regex within the NC (-1 if none)
}

// Eval aggregates per-hostname outcomes for a regex or regex set.
type Eval struct {
	TP, FP, FN int
	// Matches counts hostnames the regex(es) matched (TP+FP).
	Matches int
	// UniqueTP is the number of distinct extracted values among TPs — the
	// quantity §4's good/promising classification thresholds ("at least
	// three unique ASNs congruent with training ASNs").
	UniqueTP int
	// UniqueExtract is the number of distinct extracted values over all
	// matches; 1 marks a fig. 2-style "single" convention that labels one
	// organization's ASN everywhere.
	UniqueExtract int
}

// ATP is the paper's ranking metric: TP − (FP + FN) (§3.1).
func (e Eval) ATP() int { return e.TP - (e.FP + e.FN) }

// PPV is the positive predictive value TP/(TP+FP); 0 when nothing
// matched.
func (e Eval) PPV() float64 {
	if e.Matches == 0 {
		return 0
	}
	return float64(e.TP) / float64(e.Matches)
}

// evalItem classifies item i against an ordered regex set, returning
// the outcome, the extraction, and the index of the first matching
// regex (-1 when none matched).
func (s *Set) evalItem(i int, regexes []*rex.Regex) (Outcome, string, int) {
	for ri, r := range regexes {
		ext, start, end, ok := r.Extract(s.ar.full[i])
		if !ok {
			continue
		}
		if inSpans(s.ar.spansOf(i), start, end) {
			// Extracted number is part of an embedded IP address (§3.1,
			// figure 3b): always a false positive.
			return OutcomeFP, ext, ri
		}
		if congruentDigits(ext, s.ar.digits[i], !s.opts.DisableTypoCredit) {
			return OutcomeTP, ext, ri
		}
		return OutcomeFP, ext, ri
	}
	if s.ar.apparent[i] {
		return OutcomeFN, "", -1
	}
	return OutcomeNone, "", -1
}

// Evaluate scores an ordered regex set against the training set. Items
// are matched by the first regex in set order (§3.5).
//
// This is the naive reference implementation: it re-executes every
// regex against every item on each call. The learning pipeline instead
// evaluates through the memoized match matrix (matrix.go), which is
// proven bit-for-bit equivalent against this oracle by
// TestMatrixMatchesOracle.
func (s *Set) Evaluate(regexes ...*rex.Regex) Eval {
	var e Eval
	uniqueTP := make(map[string]struct{})
	uniqueAll := make(map[string]struct{})
	for i := 0; i < s.ar.len(); i++ {
		out, ext, _ := s.evalItem(i, regexes)
		switch out {
		case OutcomeTP:
			e.TP++
			e.Matches++
			uniqueTP[ext] = struct{}{}
			uniqueAll[ext] = struct{}{}
		case OutcomeFP:
			e.FP++
			e.Matches++
			uniqueAll[ext] = struct{}{}
		case OutcomeFN:
			e.FN++
		}
	}
	e.UniqueTP = len(uniqueTP)
	e.UniqueExtract = len(uniqueAll)
	return e
}

// EvaluateDetailed returns the evaluation together with per-item
// extractions, in training order.
func (s *Set) EvaluateDetailed(regexes ...*rex.Regex) (Eval, []Extraction) {
	var e Eval
	uniqueTP := make(map[string]struct{})
	uniqueAll := make(map[string]struct{})
	exts := make([]Extraction, 0, s.ar.len())
	for i := 0; i < s.ar.len(); i++ {
		out, ext, ri := s.evalItem(i, regexes)
		exts = append(exts, Extraction{Item: s.ar.items[i], Outcome: out, ASN: ext, RegexIdx: ri})
		switch out {
		case OutcomeTP:
			e.TP++
			e.Matches++
			uniqueTP[ext] = struct{}{}
			uniqueAll[ext] = struct{}{}
		case OutcomeFP:
			e.FP++
			e.Matches++
			uniqueAll[ext] = struct{}{}
		case OutcomeFN:
			e.FN++
		}
	}
	e.UniqueTP = len(uniqueTP)
	e.UniqueExtract = len(uniqueAll)
	return e, exts
}

// scored pairs a regex with its evaluation for ranking.
type scored struct {
	regex *rex.Regex
	eval  Eval
}

// specificity orders equally-scored regexes: more constrained components
// rank higher, so that (as in figure 4) the character-class regex #6 is
// preferred to the exclusion-class regex #5 when their ATP ties.
func specificity(r *rex.Regex) int {
	score := 0
	if !r.LeftOpen() {
		score += 2
	}
	for _, t := range r.Tokens() {
		switch t.Kind {
		case rex.KindLit:
			score += 4
		case rex.KindAlt:
			score += 3
		case rex.KindClass:
			score += 3
		case rex.KindExcl:
			score += 2
		case rex.KindCapture:
			score++
		case rex.KindDotPlus:
			// no credit: least specific
		}
	}
	return score
}

// rank orders candidates best-first: by ATP (or PPV under the ablation),
// then TP, then fewer FP, then specificity, then lexicographically for
// determinism.
func (s *Set) rank(cands []scored) {
	byPPV := s.opts.RankByPPV
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if byPPV {
			if a.eval.PPV() != b.eval.PPV() {
				return a.eval.PPV() > b.eval.PPV()
			}
		} else if a.eval.ATP() != b.eval.ATP() {
			return a.eval.ATP() > b.eval.ATP()
		}
		if a.eval.TP != b.eval.TP {
			return a.eval.TP > b.eval.TP
		}
		if a.eval.FP != b.eval.FP {
			return a.eval.FP < b.eval.FP
		}
		sa, sb := specificity(a.regex), specificity(b.regex)
		if sa != sb {
			return sa > sb
		}
		return a.regex.String() < b.regex.String()
	})
}

// uniqueExtractedASNs returns the distinct ASNs extracted as TPs by the
// regex set, sorted. Extractions that are typo-credited parse to the
// extracted (not training) value. Like the learning phases, it reads
// the memoized match matrix: each regex's TP column is walked with
// first-match semantics, so repeated calls cost bit operations plus the
// parse of each distinct TP extraction.
func (s *Set) uniqueExtractedASNs(ctx context.Context, regexes []*rex.Regex) ([]asn.ASN, error) {
	m := s.matrix()
	if err := m.ensure(ctx, regexes); err != nil {
		return nil, err
	}
	n := s.ar.len()
	remaining := newBitset(n)
	remaining.fill(n)
	seen := make(map[asn.ASN]struct{})
	for _, r := range regexes {
		c := m.column(r)
		if c.bad {
			continue
		}
		for w := range remaining {
			newly := c.matched[w] & remaining[w]
			if newly == 0 {
				continue
			}
			remaining[w] &^= newly
			for rest := newly & c.tp[w]; rest != 0; rest &= rest - 1 {
				i := w*64 + bits.TrailingZeros64(rest)
				if a, err := asn.Parse(m.extStrs[c.ext[i]]); err == nil {
					seen[a] = struct{}{}
				}
			}
		}
	}
	out := make([]asn.ASN, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
