package core

import (
	"strings"

	"hoiho/internal/rex"
)

// Classification is the §4 quality grade of an NC.
type Classification uint8

const (
	// Poor: PPV <= 50% or fewer than two unique congruent ASNs.
	Poor Classification = iota
	// Promising: at least two unique congruent ASNs with PPV >= 50%.
	Promising
	// Good: at least three unique congruent ASNs with PPV >= 80%.
	Good
)

func (c Classification) String() string {
	switch c {
	case Good:
		return "good"
	case Promising:
		return "promising"
	default:
		return "poor"
	}
}

// Usable reports whether the classification is good or promising — the
// NCs §4 calls usable.
func (c Classification) Usable() bool { return c >= Promising }

// Classify applies the paper's thresholds: good requires at least three
// unique extracted ASNs congruent with training ASNs and PPV >= 80%;
// promising requires at least two with PPV >= 50%; everything else is
// poor.
func (s *Set) Classify(e Eval) Classification {
	switch {
	case e.UniqueTP >= 3 && e.PPV() >= 0.8:
		return Good
	case e.UniqueTP >= 2 && e.PPV() >= 0.5:
		return Promising
	default:
		return Poor
	}
}

// Style is the table-1 taxonomy of how and where an operator embedded
// ASNs in hostnames.
type Style uint8

const (
	// StyleSimple: the hostname is only "as<ASN>.<suffix>".
	StyleSimple Style = iota
	// StyleStart: "as<ASN>" at the start, more information after.
	StyleStart
	// StyleEnd: "as<ASN>" as the last part before the suffix, more
	// information before.
	StyleEnd
	// StyleBare: the ASN is not prefaced with alphabetic characters.
	StyleBare
	// StyleComplex: the ASN is in the middle, uses an annotation other
	// than "as", or the NC needs multiple regexes.
	StyleComplex
)

func (st Style) String() string {
	switch st {
	case StyleSimple:
		return "simple"
	case StyleStart:
		return "start"
	case StyleEnd:
		return "end"
	case StyleBare:
		return "bare"
	default:
		return "complex"
	}
}

// StyleOf classifies an NC into the table-1 taxonomy.
func StyleOf(nc *NC) Style {
	if len(nc.Regexes) != 1 {
		return StyleComplex
	}
	r := nc.Regexes[0]
	toks := r.Tokens()
	cap := -1
	for i, t := range toks {
		if t.Kind == rex.KindCapture {
			cap = i
		}
	}
	if cap < 0 {
		return StyleComplex
	}

	// The literal context immediately before the capture, within the same
	// punctuation-delimited part.
	pre := ""
	if cap > 0 && toks[cap-1].Kind == rex.KindLit {
		pre = toks[cap-1].Lit
		// Only the portion after the last punctuation shares the ASN's part.
		if i := strings.LastIndexAny(pre, ".-_"); i >= 0 {
			pre = pre[i+1:]
		}
	}
	asPrefaced := strings.HasSuffix(pre, "as")

	// Does anything variable precede / follow the capture's part (before
	// the suffix literal)?
	varBefore, varAfter := false, false
	for i, t := range toks {
		variable := t.Kind == rex.KindExcl || t.Kind == rex.KindClass ||
			t.Kind == rex.KindDotPlus || t.Kind == rex.KindAlt
		if i < cap && (variable || (t.Kind == rex.KindLit && strings.ContainsAny(t.Lit, ".-_"))) {
			varBefore = true
		}
		if i > cap && variable {
			varAfter = true
		}
	}
	if r.LeftOpen() {
		varBefore = true
	}
	// Context between capture and suffix: a literal containing punctuation
	// after the capture means additional fixed structure; the final suffix
	// literal alone (".example.com") does not count as "more information"
	// unless it holds extra parts — the generator always renders the
	// registered domain as the tail literal, so anything beyond
	// "."+suffix counts.
	if cap+1 < len(toks) {
		last := toks[len(toks)-1]
		if last.Kind == rex.KindLit {
			tail := strings.TrimSuffix(last.Lit, "."+nc.Suffix)
			if tail != last.Lit && tail != "" {
				varAfter = true
			}
		}
	}
	// Post-capture literal context inside the ASN part ("(\d+)cust")
	// signals a non-"as" annotation shape: treat as complex below via pre
	// check only when pre is not "as"-shaped.

	switch {
	case asPrefaced && pre == "as" && !varBefore && !varAfter:
		return StyleSimple
	case asPrefaced && !varBefore:
		return StyleStart
	case asPrefaced && !varAfter:
		return StyleEnd
	case asPrefaced:
		return StyleComplex // "as" in the middle of the hostname
	case pre == "":
		// No alphabetic preface at all.
		if !varBefore || !varAfter {
			return StyleBare
		}
		return StyleComplex
	default:
		// Prefaced with something other than "as".
		return StyleComplex
	}
}
