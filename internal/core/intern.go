package core

import "sync"

// internShards fixes the shard count of an Interner. Sharding keeps the
// read lock uncontended when many extractor goroutines intern captured
// digit strings concurrently; 16 shards is plenty for the worker counts
// the batch paths use.
const internShards = 16

// Interner is a concurrency-safe string intern table. Intern returns a
// stable string equal to its argument, allocating only the first time a
// given value is seen; later calls return the retained copy without
// allocating. That makes it the backing store for extraction results
// produced from caller-owned byte slices: the returned strings do not
// alias the input and are safe to share across goroutines.
//
// Keys are the raw byte content: "007" and "7" intern separately even
// though they parse to the same ASN, preserving the exact captured
// digit string.
type Interner struct {
	shards [internShards]internShard
}

type internShard struct {
	mu sync.RWMutex
	m  map[string]string
}

// NewInterner returns an empty intern table.
func NewInterner() *Interner {
	in := &Interner{}
	for i := range in.shards {
		in.shards[i].m = make(map[string]string)
	}
	return in
}

// internHash is FNV-1a, used only to pick a shard.
func internHash(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// Intern returns the canonical string for b, copying b only on first
// sight. The fast path (value already interned) performs no allocation:
// the map probe with a string(b) conversion is recognized by the
// compiler and does not copy.
func (in *Interner) Intern(b []byte) string {
	sh := &in.shards[internHash(b)&(internShards-1)]
	sh.mu.RLock()
	s, ok := sh.m[string(b)]
	sh.mu.RUnlock()
	if ok {
		return s
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s, ok := sh.m[string(b)]; ok {
		return s
	}
	s = string(b) //hoiho:hotalloc first sight of a new string interns exactly one copy; every later lookup hits the allocation-free map probe above
	sh.m[s] = s
	return s
}

// InternString is Intern for values already held as strings.
func (in *Interner) InternString(s string) string {
	sh := &in.shards[internHashString(s)&(internShards-1)]
	sh.mu.RLock()
	got, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return got
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if got, ok := sh.m[s]; ok {
		return got
	}
	sh.m[s] = s
	return s
}

func internHashString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Len reports how many distinct strings are interned, for tests and
// introspection.
func (in *Interner) Len() int {
	n := 0
	for i := range in.shards {
		sh := &in.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}
