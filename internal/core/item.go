// Package core implements Hoiho's ASN naming-convention learner, the
// primary contribution of "Learning to Extract and Use ASNs in Hostnames"
// (IMC 2020). Given router hostnames annotated with training ASNs
// (inferred by RouterToAsAssignment or bdrmapIT, or recorded by operators
// in PeeringDB), it learns, per domain suffix, a naming convention (NC):
// an ordered set of regular expressions that extract the ASN embedded in
// each hostname.
//
// The learner proceeds in the paper's four phases: base-regex generation
// (§3.2), merging similar regexes (§3.3), character-class embedding
// (§3.4), and regex-set construction (§3.5), ranking candidates by
// ATP = TP − (FP + FN) (§3.1) and selecting the final NC per §3.6.
package core

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"hoiho/internal/asn"
	"hoiho/internal/editdist"
	"hoiho/internal/hostname"
	"hoiho/internal/psl"
)

// Item is one training observation: a router interface hostname and the
// ASN the training method inferred (or an operator recorded) for the
// router that owns the interface. Addr, when valid, is the interface
// address, used to disqualify numbers that are really IP-address
// fragments (figure 3b).
type Item struct {
	Hostname string
	Addr     netip.Addr
	ASN      asn.ASN
}

// prepped caches the per-item parsing work the evaluator needs.
type prepped struct {
	Item
	name     hostname.Name
	ipSpans  []hostname.Span
	apparent bool // hostname contains an apparent ASN (outside IP spans)
}

// Set is the training data for one suffix, ready for evaluation. A Set
// is not safe for concurrent use: evaluation lazily builds the match
// matrix (matrix.go) that memoizes per-regex outcomes.
type Set struct {
	Suffix string
	items  []prepped
	opts   Options
	mx     *matrix // lazily built memoization engine
}

// Options tunes the learner. The zero value enables every phase with the
// paper's behavior; the Disable*/RankByPPV switches exist for the
// ablation experiments described in DESIGN.md.
type Options struct {
	// DisableTypoCredit turns off the §3.1 rule that credits a TP when the
	// extracted number is within Damerau-Levenshtein distance one of the
	// training ASN with matching first/last digits and length >= 3.
	DisableTypoCredit bool
	// DisableMerge skips phase 2 (§3.3).
	DisableMerge bool
	// DisableClasses skips phase 3 (§3.4).
	DisableClasses bool
	// DisableSets skips phase 4 (§3.5): the NC is the single best regex.
	DisableSets bool
	// RankByPPV ranks candidate regexes by positive predictive value
	// instead of ATP (an ablation; the paper argues ATP is the right
	// metric because it rewards coverage).
	RankByPPV bool
	// MaxGenItems bounds how many items seed base-regex generation
	// (deterministic head sample). 0 means the default (256).
	MaxGenItems int
	// MaxCandidates bounds the candidate pool after each phase.
	// 0 means the default (768).
	MaxCandidates int
	// MaxSetStarts bounds how many top-ranked regexes seed phase-4 set
	// construction. 0 means the default (8).
	MaxSetStarts int
	// MaxSetSize bounds the number of regexes in an NC. 0 means the
	// default (5).
	MaxSetSize int
	// MaxSingleNCs bounds how many top-ranked single regexes enter the
	// final NC selection (§3.6) as one-regex candidates. 0 means the
	// default (32).
	MaxSingleNCs int
	// Workers bounds intra-suffix parallelism: the goroutines used to
	// score a candidate pool against the training items (the match-matrix
	// column builds). 0 means GOMAXPROCS, 1 forces serial execution.
	// Results are deterministic regardless of the setting.
	Workers int
	// SuffixTimeout is the wall-clock budget for learning one suffix.
	// When positive, Learner.LearnSuffix derives a per-suffix deadline
	// from it, so a pathological suffix (a regex blow-up, a huge
	// candidate pool) degrades that one NC instead of stalling the whole
	// run; Learner.Learn quarantines the timed-out suffix and keeps
	// going. 0 means no per-suffix budget.
	SuffixTimeout time.Duration
}

func (o Options) maxGenItems() int {
	if o.MaxGenItems <= 0 {
		return 256
	}
	return o.MaxGenItems
}

func (o Options) maxCandidates() int {
	if o.MaxCandidates <= 0 {
		return 768
	}
	return o.MaxCandidates
}

func (o Options) maxSetStarts() int {
	if o.MaxSetStarts <= 0 {
		return 8
	}
	return o.MaxSetStarts
}

func (o Options) maxSetSize() int {
	if o.MaxSetSize <= 0 {
		return 5
	}
	return o.MaxSetSize
}

func (o Options) maxSingleNCs() int {
	if o.MaxSingleNCs <= 0 {
		return 32
	}
	return o.MaxSingleNCs
}

// NewSet parses and indexes training items for one suffix. Items whose
// hostname fails to parse, does not end with the suffix, or has no
// training ASN are dropped.
//
//hoiho:ctxflow one linear parse pass over one suffix's items; the long-running phases are in Learn, which takes ctx
func NewSet(suffix string, items []Item, opts Options) (*Set, error) {
	if suffix == "" {
		return nil, fmt.Errorf("core: empty suffix")
	}
	s := &Set{Suffix: suffix, opts: opts}
	for _, it := range items {
		if it.ASN == asn.None {
			continue
		}
		name, err := hostname.Parse(it.Hostname)
		if err != nil {
			continue
		}
		if _, ok := name.SuffixParts(suffix); !ok {
			continue
		}
		p := prepped{Item: it, name: name}
		p.ipSpans = name.EmbeddedIPSpans(it.Addr)
		p.apparent = hasApparentASN(p, opts)
		s.items = append(s.items, p)
	}
	return s, nil
}

// Len returns the number of usable training items.
func (s *Set) Len() int { return len(s.items) }

// Items returns the usable training items (hostname order preserved).
func (s *Set) Items() []Item {
	out := make([]Item, len(s.items))
	for i, p := range s.items {
		out[i] = p.Item
	}
	return out
}

// Congruent implements the paper's §3.1 congruence test between a number
// extracted from a hostname and the training ASN: exact digit-string
// equality, or — when typo credit is enabled — a Damerau-Levenshtein
// distance of one with identical first and last characters and both
// numbers at least three digits long (catching typos like figure 3a
// without crediting coincidences).
func Congruent(extracted string, train asn.ASN, typoCredit bool) bool {
	d := train.Digits()
	if extracted == d {
		return true
	}
	if !typoCredit || len(extracted) < 3 || len(d) < 3 {
		return false
	}
	if extracted[0] != d[0] || extracted[len(extracted)-1] != d[len(d)-1] {
		return false
	}
	return editdist.WithinOne(extracted, d)
}

// hasApparentASN reports whether the hostname contains a numeric string
// congruent with the training ASN outside any embedded-IP span (§3.1's
// "apparent ASN", the condition for charging a false negative).
func hasApparentASN(p prepped, opts Options) bool {
	for _, r := range p.name.DigitRuns() {
		if inSpans(p.ipSpans, r.Start, r.End()) {
			continue
		}
		if Congruent(r.Text, p.ASN, !opts.DisableTypoCredit) {
			return true
		}
	}
	return false
}

func inSpans(spans []hostname.Span, start, end int) bool {
	for _, s := range spans {
		if s.Overlaps(start, end) {
			return true
		}
	}
	return false
}

// GroupItems buckets items by registered domain using the supplied public
// suffix list, returning the suffixes in sorted order alongside the map.
func GroupItems(list *psl.List, items []Item) (map[string][]Item, []string) {
	groups := make(map[string][]Item)
	for _, it := range items {
		reg, ok := list.RegisteredDomain(it.Hostname)
		if !ok {
			continue
		}
		groups[reg] = append(groups[reg], it)
	}
	suffixes := make([]string, 0, len(groups))
	for s := range groups {
		suffixes = append(suffixes, s)
	}
	sort.Strings(suffixes)
	return groups, suffixes
}
