// Package core implements Hoiho's ASN naming-convention learner, the
// primary contribution of "Learning to Extract and Use ASNs in Hostnames"
// (IMC 2020). Given router hostnames annotated with training ASNs
// (inferred by RouterToAsAssignment or bdrmapIT, or recorded by operators
// in PeeringDB), it learns, per domain suffix, a naming convention (NC):
// an ordered set of regular expressions that extract the ASN embedded in
// each hostname.
//
// The learner proceeds in the paper's four phases: base-regex generation
// (§3.2), merging similar regexes (§3.3), character-class embedding
// (§3.4), and regex-set construction (§3.5), ranking candidates by
// ATP = TP − (FP + FN) (§3.1) and selecting the final NC per §3.6.
package core

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"hoiho/internal/asn"
	"hoiho/internal/editdist"
	"hoiho/internal/hostname"
	"hoiho/internal/psl"
)

// Item is one training observation: a router interface hostname and the
// ASN the training method inferred (or an operator recorded) for the
// router that owns the interface. Addr, when valid, is the interface
// address, used to disqualify numbers that are really IP-address
// fragments (figure 3b).
type Item struct {
	Hostname string
	Addr     netip.Addr
	ASN      asn.ASN
}

// itemArena stores the prepared training items in struct-of-arrays form:
// one backing slice per field, with per-item offset tables instead of a
// heap object (and per-item parts/runs/spans slices) for every item. A
// 200-item set costs a dozen slice headers instead of ~800 scattered
// allocations, and the evaluator's inner loops walk dense arrays.
type itemArena struct {
	items    []Item   // original observations, hostname order preserved
	full     []string // normalized hostname
	digits   []string // training ASN digit string, rendered once
	apparent []bool   // hostname has an apparent ASN outside IP spans
	parts    []hostname.Part
	partOff  []int32 // item i's parts are parts[partOff[i]:partOff[i+1]]
	runs     []hostname.Run
	runOff   []int32
	spans    []hostname.Span
	spanOff  []int32
}

func (a *itemArena) len() int { return len(a.items) }

// name materializes item i's parsed hostname; the Parts slice aliases
// the arena and must not be appended to.
func (a *itemArena) name(i int) hostname.Name {
	return hostname.Name{Full: a.full[i], Parts: a.parts[a.partOff[i]:a.partOff[i+1]]}
}

func (a *itemArena) runsOf(i int) []hostname.Run   { return a.runs[a.runOff[i]:a.runOff[i+1]] }
func (a *itemArena) spansOf(i int) []hostname.Span { return a.spans[a.spanOff[i]:a.spanOff[i+1]] }

// Set is the training data for one suffix, ready for evaluation. A Set
// is not safe for concurrent use: evaluation lazily builds the match
// matrix (matrix.go) that memoizes per-regex outcomes.
type Set struct {
	Suffix string
	ar     itemArena
	opts   Options
	mx     *matrix // lazily built memoization engine
}

// Options tunes the learner. The zero value enables every phase with the
// paper's behavior; the Disable*/RankByPPV switches exist for the
// ablation experiments described in DESIGN.md.
type Options struct {
	// DisableTypoCredit turns off the §3.1 rule that credits a TP when the
	// extracted number is within Damerau-Levenshtein distance one of the
	// training ASN with matching first/last digits and length >= 3.
	DisableTypoCredit bool
	// DisableMerge skips phase 2 (§3.3).
	DisableMerge bool
	// DisableClasses skips phase 3 (§3.4).
	DisableClasses bool
	// DisableSets skips phase 4 (§3.5): the NC is the single best regex.
	DisableSets bool
	// RankByPPV ranks candidate regexes by positive predictive value
	// instead of ATP (an ablation; the paper argues ATP is the right
	// metric because it rewards coverage).
	RankByPPV bool
	// MaxGenItems bounds how many items seed base-regex generation
	// (deterministic head sample). 0 means the default (256).
	MaxGenItems int
	// MaxCandidates bounds the candidate pool after each phase.
	// 0 means the default (768).
	MaxCandidates int
	// MaxSetStarts bounds how many top-ranked regexes seed phase-4 set
	// construction. 0 means the default (8).
	MaxSetStarts int
	// MaxSetSize bounds the number of regexes in an NC. 0 means the
	// default (5).
	MaxSetSize int
	// MaxSingleNCs bounds how many top-ranked single regexes enter the
	// final NC selection (§3.6) as one-regex candidates. 0 means the
	// default (32).
	MaxSingleNCs int
	// Workers bounds intra-suffix parallelism: the goroutines used to
	// score a candidate pool against the training items (the match-matrix
	// column builds). 0 means GOMAXPROCS, 1 forces serial execution.
	// Results are deterministic regardless of the setting.
	Workers int
	// SuffixTimeout is the wall-clock budget for learning one suffix.
	// When positive, Learner.LearnSuffix derives a per-suffix deadline
	// from it, so a pathological suffix (a regex blow-up, a huge
	// candidate pool) degrades that one NC instead of stalling the whole
	// run; Learner.Learn quarantines the timed-out suffix and keeps
	// going. 0 means no per-suffix budget.
	SuffixTimeout time.Duration
}

func (o Options) maxGenItems() int {
	if o.MaxGenItems <= 0 {
		return 256
	}
	return o.MaxGenItems
}

func (o Options) maxCandidates() int {
	if o.MaxCandidates <= 0 {
		return 768
	}
	return o.MaxCandidates
}

func (o Options) maxSetStarts() int {
	if o.MaxSetStarts <= 0 {
		return 8
	}
	return o.MaxSetStarts
}

func (o Options) maxSetSize() int {
	if o.MaxSetSize <= 0 {
		return 5
	}
	return o.MaxSetSize
}

func (o Options) maxSingleNCs() int {
	if o.MaxSingleNCs <= 0 {
		return 32
	}
	return o.MaxSingleNCs
}

// NewSet parses and indexes training items for one suffix. Items whose
// hostname fails to parse, does not end with the suffix, or has no
// training ASN are dropped.
//
//hoiho:ctxflow one linear parse pass over one suffix's items; the long-running phases are in Learn, which takes ctx
func NewSet(suffix string, items []Item, opts Options) (*Set, error) {
	if suffix == "" {
		return nil, fmt.Errorf("core: empty suffix")
	}
	s := &Set{Suffix: suffix, opts: opts}
	a := &s.ar
	a.partOff = append(a.partOff, 0)
	a.runOff = append(a.runOff, 0)
	a.spanOff = append(a.spanOff, 0)
	typo := !opts.DisableTypoCredit
	for _, it := range items {
		if it.ASN == asn.None {
			continue
		}
		partStart := len(a.parts)
		full, parts, err := hostname.AppendParse(a.parts, it.Hostname)
		if err != nil {
			continue // AppendParse validates before appending anything
		}
		a.parts = parts
		name := hostname.Name{Full: full, Parts: a.parts[partStart:]}
		if _, ok := name.SuffixParts(suffix); !ok {
			a.parts = a.parts[:partStart] // roll the rejected item back out
			continue
		}
		spanStart := len(a.spans)
		a.spans = name.AppendEmbeddedIPSpans(a.spans, it.Addr)
		runStart := len(a.runs)
		a.runs = name.AppendDigitRuns(a.runs)
		digits := it.ASN.Digits()
		a.items = append(a.items, it)
		a.full = append(a.full, full)
		a.digits = append(a.digits, digits)
		a.apparent = append(a.apparent, hasApparentASN(a.runs[runStart:], a.spans[spanStart:], digits, typo))
		a.partOff = append(a.partOff, int32(len(a.parts)))
		a.runOff = append(a.runOff, int32(len(a.runs)))
		a.spanOff = append(a.spanOff, int32(len(a.spans)))
	}
	return s, nil
}

// Len returns the number of usable training items.
func (s *Set) Len() int { return s.ar.len() }

// Items returns the usable training items (hostname order preserved).
func (s *Set) Items() []Item {
	return append([]Item(nil), s.ar.items...)
}

// Congruent implements the paper's §3.1 congruence test between a number
// extracted from a hostname and the training ASN: exact digit-string
// equality, or — when typo credit is enabled — a Damerau-Levenshtein
// distance of one with identical first and last characters and both
// numbers at least three digits long (catching typos like figure 3a
// without crediting coincidences).
func Congruent(extracted string, train asn.ASN, typoCredit bool) bool {
	return congruentDigits(extracted, train.Digits(), typoCredit)
}

// congruentDigits is Congruent against a pre-rendered training digit
// string (the item arena caches one per item, so the hot evaluation
// loops never re-render the ASN).
func congruentDigits(extracted, d string, typoCredit bool) bool {
	if extracted == d {
		return true
	}
	if !typoCredit || len(extracted) < 3 || len(d) < 3 {
		return false
	}
	if extracted[0] != d[0] || extracted[len(extracted)-1] != d[len(d)-1] {
		return false
	}
	return editdist.WithinOne(extracted, d)
}

// hasApparentASN reports whether the hostname contains a numeric string
// congruent with the training ASN outside any embedded-IP span (§3.1's
// "apparent ASN", the condition for charging a false negative).
func hasApparentASN(runs []hostname.Run, spans []hostname.Span, digits string, typoCredit bool) bool {
	for _, r := range runs {
		if inSpans(spans, r.Start, r.End()) {
			continue
		}
		if congruentDigits(r.Text, digits, typoCredit) {
			return true
		}
	}
	return false
}

func inSpans(spans []hostname.Span, start, end int) bool {
	for _, s := range spans {
		if s.Overlaps(start, end) {
			return true
		}
	}
	return false
}

// GroupItems buckets items by registered domain using the supplied public
// suffix list, returning the suffixes in sorted order alongside the map.
func GroupItems(list *psl.List, items []Item) (map[string][]Item, []string) {
	groups := make(map[string][]Item)
	for _, it := range items {
		reg, ok := list.RegisteredDomain(it.Hostname)
		if !ok {
			continue
		}
		groups[reg] = append(groups[reg], it)
	}
	suffixes := make([]string, 0, len(groups))
	for s := range groups {
		suffixes = append(suffixes, s)
	}
	sort.Strings(suffixes)
	return groups, suffixes
}
