package core

import (
	"context"
	"fmt"
	"net/netip"
	"testing"

	"hoiho/internal/asn"
	"hoiho/internal/psl"
)

// learnT runs Set.Learn with a background context, failing the test on
// error; the pre-context call sites read the same as before.
func learnT(tb testing.TB, s *Set) *NC {
	tb.Helper()
	nc, err := s.Learn(context.Background())
	if err != nil {
		tb.Fatal(err)
	}
	return nc
}

// startStyleItems fabricates a clean start-style convention
// ("as<ASN>-<pop>-<n>.example.net") over n distinct neighbor ASNs.
func startStyleItems(n int) []Item {
	pops := []string{"nyc", "lax", "fra", "lhr", "sin", "syd", "ams", "cdg"}
	items := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		a := asn.ASN(6000 + i*13)
		items = append(items, Item{
			Hostname: fmt.Sprintf("as%d-%s-%d.example.net", a, pops[i%len(pops)], i%4),
			ASN:      a,
		})
	}
	return items
}

func TestLearnStartStyleConvention(t *testing.T) {
	set, err := NewSet("example.net", startStyleItems(12), Options{})
	if err != nil {
		t.Fatal(err)
	}
	nc := learnT(t, set)
	if nc == nil {
		t.Fatal("no NC learned")
	}
	if nc.Eval.TP != 12 || nc.Eval.FP != 0 || nc.Eval.FN != 0 {
		t.Errorf("TP/FP/FN = %d/%d/%d, want 12/0/0 (%v)",
			nc.Eval.TP, nc.Eval.FP, nc.Eval.FN, nc.Strings())
	}
	if nc.Class != Good {
		t.Errorf("class = %v, want good", nc.Class)
	}
	if nc.Single {
		t.Error("multi-ASN NC must not be single")
	}
	if got := StyleOf(nc); got != StyleStart {
		t.Errorf("style = %v, want start (%v)", got, nc.Strings())
	}
}

func TestLearnNoApparentASNs(t *testing.T) {
	items := []Item{
		{Hostname: "core1.nyc.example.net", ASN: 100},
		{Hostname: "edge2.lax.example.net", ASN: 200},
		{Hostname: "lo0.fra.example.net", ASN: 300},
		{Hostname: "xe0.lhr.example.net", ASN: 400},
	}
	set, err := NewSet("example.net", items, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if nc := learnT(t, set); nc != nil {
		t.Errorf("learned NC from ASN-free hostnames: %v", nc.Strings())
	}
}

func TestNewSetFilters(t *testing.T) {
	items := []Item{
		{Hostname: "as100.example.net", ASN: 100},
		{Hostname: "as200.other.org", ASN: 200},      // wrong suffix
		{Hostname: "as300.example.net", ASN: 0},      // no training ASN
		{Hostname: "bad host.example.net", ASN: 400}, // unparseable
	}
	set, err := NewSet("example.net", items, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 {
		t.Errorf("Len = %d, want 1", set.Len())
	}
	if _, err := NewSet("", items, Options{}); err == nil {
		t.Error("empty suffix should error")
	}
}

func TestLearnerMinItems(t *testing.T) {
	l := &Learner{}
	nc, err := l.LearnSuffix(context.Background(), "example.net", startStyleItems(3))
	if err != nil {
		t.Fatal(err)
	}
	if nc != nil {
		t.Error("3 items is below the default minimum of 4")
	}
	nc, err = l.LearnSuffix(context.Background(), "example.net", startStyleItems(4))
	if err != nil {
		t.Fatal(err)
	}
	if nc == nil {
		t.Error("4 items should learn")
	}
}

func TestLearnAllGroupsBySuffix(t *testing.T) {
	var items []Item
	items = append(items, startStyleItems(8)...)
	for i := 0; i < 8; i++ {
		a := asn.ASN(9000 + i*7)
		items = append(items, Item{
			Hostname: fmt.Sprintf("%d.port%d.ixp.org.nz", a, i),
			ASN:      a,
		})
	}
	// A suffix with no convention.
	for i := 0; i < 6; i++ {
		items = append(items, Item{
			Hostname: fmt.Sprintf("host%d.plain.com", i),
			ASN:      asn.ASN(500 + i),
		})
	}
	l := &Learner{}
	ncs, err := l.LearnAll(context.Background(), psl.Default(), items)
	if err != nil {
		t.Fatal(err)
	}
	if len(ncs) != 2 {
		t.Fatalf("learned %d NCs, want 2", len(ncs))
	}
	// Sorted by suffix.
	if ncs[0].Suffix != "example.net" || ncs[1].Suffix != "ixp.org.nz" {
		t.Errorf("suffixes = %s, %s", ncs[0].Suffix, ncs[1].Suffix)
	}
	if ncs[1].Eval.TP != 8 {
		t.Errorf("ixp TP = %d (%v)", ncs[1].Eval.TP, ncs[1].Strings())
	}
	if StyleOf(ncs[1]) != StyleBare {
		t.Errorf("ixp style = %v (%v)", StyleOf(ncs[1]), ncs[1].Strings())
	}
	if _, err := l.LearnAll(context.Background(), nil, items); err == nil {
		t.Error("nil PSL should error")
	}
}

func TestLearnMixedFormatsNeedsSet(t *testing.T) {
	// Two formats under one suffix: phase 4 must combine them.
	var items []Item
	for i := 0; i < 6; i++ {
		a := asn.ASN(3000 + i*11)
		items = append(items, Item{
			Hostname: fmt.Sprintf("as%d-pop%d.mix.net", a, i),
			ASN:      a,
		})
	}
	for i := 0; i < 6; i++ {
		a := asn.ASN(7000 + i*17)
		items = append(items, Item{
			Hostname: fmt.Sprintf("xe%d.cust.as%d.mix.net", i, a),
			ASN:      a,
		})
	}
	set, err := NewSet("mix.net", items, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nc := learnT(t, set)
	if nc == nil {
		t.Fatal("no NC learned")
	}
	if nc.Eval.TP != 12 || nc.Eval.FN != 0 {
		t.Errorf("TP/FN = %d/%d, want 12/0 (%v)", nc.Eval.TP, nc.Eval.FN, nc.Strings())
	}
	if StyleOf(nc) != StyleComplex && len(nc.Regexes) == 1 {
		t.Errorf("unexpected single-regex NC: %v", nc.Strings())
	}
}

func TestLearnAblationNoSets(t *testing.T) {
	var items []Item
	for i := 0; i < 6; i++ {
		a := asn.ASN(3000 + i*11)
		items = append(items, Item{Hostname: fmt.Sprintf("as%d-pop%d.mix.net", a, i), ASN: a})
	}
	for i := 0; i < 4; i++ {
		a := asn.ASN(7000 + i*17)
		items = append(items, Item{Hostname: fmt.Sprintf("xe%d.cust.as%d.mix.net", i, a), ASN: a})
	}
	full, err := NewSet("mix.net", items, Options{})
	if err != nil {
		t.Fatal(err)
	}
	noSets, err := NewSet("mix.net", items, Options{DisableSets: true})
	if err != nil {
		t.Fatal(err)
	}
	ncFull, ncSingle := learnT(t, full), learnT(t, noSets)
	if ncFull == nil || ncSingle == nil {
		t.Fatal("learning failed")
	}
	if len(ncSingle.Regexes) != 1 {
		t.Errorf("DisableSets produced %d regexes", len(ncSingle.Regexes))
	}
	if ncFull.Eval.ATP() < ncSingle.Eval.ATP() {
		t.Errorf("sets should not lower ATP: %d < %d", ncFull.Eval.ATP(), ncSingle.Eval.ATP())
	}
}

func TestLearnAblationTypoCredit(t *testing.T) {
	items := figure4Items()
	with, err := NewSet("equinix.com", items, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := NewSet("equinix.com", items, Options{DisableTypoCredit: true})
	if err != nil {
		t.Fatal(err)
	}
	ncWith, ncWithout := learnT(t, with), learnT(t, without)
	if ncWith == nil || ncWithout == nil {
		t.Fatal("learning failed")
	}
	// Row h (22822 vs 22282) is only a TP with typo credit.
	if ncWith.Eval.TP <= ncWithout.Eval.TP {
		t.Errorf("typo credit should add TPs: with=%d without=%d",
			ncWith.Eval.TP, ncWithout.Eval.TP)
	}
}

func TestCongruent(t *testing.T) {
	cases := []struct {
		ext   string
		train asn.ASN
		typo  bool
		want  bool
	}{
		{"701", 701, true, true},
		{"701", 701, false, true},
		{"24940", 20940, true, true},   // substitution, first/last match
		{"24940", 20940, false, false}, // no credit
		{"22822", 22282, true, true},   // transposition
		{"605", 6057, true, false},     // last digit differs
		{"85", 855, true, false},       // too short
		{"8074", 8075, true, false},    // last digit differs
		{"8069", 8075, true, false},    // distance 2
		{"15576", 15576, true, true},
		{"155760", 15576, true, false}, // insertion changes last char? 0 vs 6: yes
		{"115576", 15576, true, true},  // insertion, first 1=1 last 6=6
	}
	for _, c := range cases {
		if got := Congruent(c.ext, c.train, c.typo); got != c.want {
			t.Errorf("Congruent(%q,%d,%v) = %v, want %v", c.ext, c.train, c.typo, got, c.want)
		}
	}
}

func TestGroupItems(t *testing.T) {
	items := []Item{
		{Hostname: "as1.a.example.com", ASN: 1},
		{Hostname: "as2.b.example.com", ASN: 2},
		{Hostname: "as3.other.net", ASN: 3},
		{Hostname: "com", ASN: 4}, // bare suffix: dropped
	}
	groups, suffixes := GroupItems(psl.Default(), items)
	if len(suffixes) != 2 || suffixes[0] != "example.com" || suffixes[1] != "other.net" {
		t.Fatalf("suffixes = %v", suffixes)
	}
	if len(groups["example.com"]) != 2 {
		t.Errorf("example.com group = %v", groups["example.com"])
	}
}

func TestNCExtract(t *testing.T) {
	nc := styleNC(t, "equinix.com",
		`^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$`,
		`^(\d+)-.+\.equinix\.com$`)
	cases := []struct {
		host, want string
		ok         bool
	}{
		{"p714.sgw.equinix.com", "714", true},
		{"24482-fr5-ix.equinix.com", "24482", true},
		{"netflix.zh2.corp.eu.equinix.com", "", false},
	}
	for _, c := range cases {
		got, ok := nc.Extract(c.host)
		if got != c.want || ok != c.ok {
			t.Errorf("Extract(%q) = %q,%v want %q,%v", c.host, got, ok, c.want, c.ok)
		}
	}
}

func TestEvalIPFragmentStillFPWhenEqual(t *testing.T) {
	// Training ASN exactly equals an IP octet: extraction from the IP
	// span must stay FP.
	items := []Item{{
		Hostname: "209-201-58-109.dia.stat.centurylink.net",
		Addr:     netip.MustParseAddr("209.201.58.109"),
		ASN:      209,
	}}
	set, err := NewSet("centurylink.net", items, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := mustParseRegex(t, `^(\d+)-.+\.centurylink\.net$`)
	ev := set.Evaluate(r)
	if ev.FP != 1 || ev.TP != 0 || ev.FN != 0 {
		t.Errorf("TP/FP/FN = %d/%d/%d, want 0/1/0", ev.TP, ev.FP, ev.FN)
	}
}

func BenchmarkLearnFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		set, err := NewSet("equinix.com", figure4Items(), Options{})
		if err != nil {
			b.Fatal(err)
		}
		if nc := learnT(b, set); nc == nil {
			b.Fatal("no NC")
		}
	}
}

func BenchmarkLearn100Items(b *testing.B) {
	items := startStyleItems(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set, err := NewSet("example.net", items, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if nc := learnT(b, set); nc == nil {
			b.Fatal("no NC")
		}
	}
}

func BenchmarkEvaluate(b *testing.B) {
	set, err := NewSet("example.net", startStyleItems(1000), Options{})
	if err != nil {
		b.Fatal(err)
	}
	r := mustParseRegex(b, `^as(\d+)-[a-z]+-\d+\.example\.net$`)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		set.Evaluate(r)
	}
}
