package match

import (
	"math/rand"
	"strings"
	"testing"

	"hoiho/internal/rex"
)

func mustOpen(t *testing.T, toks ...rex.Token) *rex.Regex {
	t.Helper()
	r, err := rex.NewOpen(toks...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// checkParity asserts the compiled engine and the stdlib oracle agree on
// host: match/no-match, winning index, and capture span.
func checkParity(t *testing.T, r *rex.Regex, host string) {
	t.Helper()
	eng := Compile([]*rex.Regex{r})
	ora := NewRegexpSet([]*rex.Regex{r})
	if eng.Len() != ora.Len() {
		t.Fatalf("regex %q: engine kept %d programs, oracle %d", r, eng.Len(), ora.Len())
	}
	gh, gok := eng.MatchString(host)
	wh, wok := ora.MatchString(host)
	if gok != wok || gh != wh {
		t.Fatalf("parity broken: regex %q host %q:\n  compiled %+v ok=%v\n  stdlib   %+v ok=%v",
			r, host, gh, gok, wh, wok)
	}
}

// parityHosts stresses anchoring, backtracking, case, invalid UTF-8,
// multi-byte runes, and boundary lengths.
var parityHosts = []string{
	"", ".", "-", "as64512.example.net", "AS64512.EXAMPLE.NET",
	"as0-x.example.net", "xas15576.nts.ch", "as15576.nts.ch", "asxas9.nts.ch",
	"a.b.c.d", "999", "as999", "as12-pop.x.net", "as12-pop-9.x.net",
	"é.example.net", "as\xff\xfe12.net", "\xffas12.net", "as12é.net",
	"aaaaaaaaaaaaaaaaaaaaaaaa", "as--12..net", "-as9_p.net", "p9s", "sas9",
	"s9.net", "9.net", "as007.example.net", "as4294967295.x", "as4294967296.x",
	"\xe0\x80as9.net", "as9\xed\xa0\x80.net", "a123b", "1a2b3c",
	"as9p.net", "as9.net", "as9s.net", "r9x.net", "as9abc.net",
}

func tableRegexes(t *testing.T) []*rex.Regex {
	return []*rex.Regex{
		rex.MustNew(rex.Lit("as"), rex.Capture(), rex.Lit(".example.net")),
		mustOpen(t, rex.Lit("as"), rex.Capture(), rex.Lit(".nts.ch")),
		rex.MustNew(rex.Lit("as"), rex.Capture(), rex.Lit("-"), rex.Excl("."), rex.Lit(".x.net")),
		rex.MustNew(rex.Excl(".-"), rex.Lit("-as"), rex.Capture(), rex.DotPlus()),
		rex.MustNew(rex.Alt(true, "p", "s"), rex.Capture(), rex.Lit(".net")),
		rex.MustNew(rex.Alt(false, "as", "r"), rex.Capture(), rex.ClassTok(rex.ClassAlpha), rex.Lit(".net")),
		rex.MustNew(rex.DotPlus(), rex.Lit("as"), rex.Capture(), rex.Lit(".net")),
		rex.MustNew(rex.CaptureAlpha(), rex.Lit("-"), rex.ClassTok(rex.ClassAlnum), rex.Lit(".org")),
		rex.MustNew(rex.ClassTok(rex.ClassDigit), rex.Lit("x"), rex.Capture()),
		mustOpen(t, rex.Capture(), rex.Lit(".net")),
		rex.MustNew(rex.Capture()),
		rex.MustNew(rex.Excl("."), rex.Capture(), rex.Excl(".")),
		rex.MustNew(rex.Lit("as"), rex.Capture(), rex.Alt(true, "p", "s"), rex.Lit(".net")),
		mustOpen(t, rex.Excl("."), rex.Lit("-"), rex.Capture(), rex.Lit(".net")),
	}
}

func TestCompiledMatchParityTable(t *testing.T) {
	for _, r := range tableRegexes(t) {
		for _, host := range parityHosts {
			checkParity(t, r, host)
		}
		checkParity(t, r, strings.Repeat("a9.", 40)+"net")
	}
}

// specAST deterministically builds a rex AST from raw bytes — shared by
// the randomized property test and FuzzCompiledMatchParity. Literal and
// exclusion alphabets stay within hostname-ish ASCII so the rendered
// regex always compiles; subject hostnames remain arbitrary bytes.
func specAST(spec []byte) *rex.Regex {
	const litChars = "ab9z0.-_s"
	var toks []rex.Token
	capPlaced, dotUsed := false, false
	for i := 0; i+1 < len(spec) && len(toks) < 12; i += 2 {
		sel, pay := spec[i], spec[i+1]
		switch sel % 7 {
		case 0:
			n := int(pay%3) + 1
			var sb strings.Builder
			for j := 0; j < n; j++ {
				sb.WriteByte(litChars[(int(pay)+j*7)%len(litChars)])
			}
			toks = append(toks, rex.Lit(sb.String()))
		case 1:
			if !capPlaced {
				capPlaced = true
				toks = append(toks, rex.Capture())
			}
		case 2:
			excl := []string{".", "-", ".-", "_", ".-_", "a"}[int(pay)%6]
			toks = append(toks, rex.Excl(excl))
		case 3:
			toks = append(toks, rex.ClassTok(rex.Class(pay%3)))
		case 4:
			if !dotUsed {
				dotUsed = true
				toks = append(toks, rex.DotPlus())
			}
		case 5:
			alts := make([]string, int(pay%3)+1)
			for j := range alts {
				alts[j] = []string{"p", "s", "as", "", "r9"}[(int(pay)+j)%5]
			}
			toks = append(toks, rex.Alt(pay&8 != 0, alts...))
		case 6:
			if !capPlaced {
				capPlaced = true
				toks = append(toks, rex.CaptureAlpha())
			}
		}
	}
	if !capPlaced {
		toks = append(toks, rex.Capture())
	}
	var r *rex.Regex
	var err error
	if len(spec) > 0 && spec[0]&1 == 1 {
		r, err = rex.NewOpen(toks...)
	} else {
		r, err = rex.New(toks...)
	}
	if err != nil {
		return nil
	}
	return r
}

func randHost(rng *rand.Rand) string {
	b := make([]byte, rng.Intn(24))
	for i := range b {
		if rng.Intn(10) == 0 {
			b[i] = byte(rng.Intn(256)) // arbitrary bytes, including invalid UTF-8
		} else {
			b[i] = "as019.-_pzé"[rng.Intn(11)]
		}
	}
	return string(b)
}

func TestCompiledMatchParityRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 300; iter++ {
		spec := make([]byte, rng.Intn(20)+2)
		rng.Read(spec)
		r := specAST(spec)
		if r == nil {
			continue
		}
		for _, host := range parityHosts {
			checkParity(t, r, host)
		}
		for j := 0; j < 10; j++ {
			checkParity(t, r, randHost(rng))
		}
	}
}

// TestEngineSetParity exercises the multi-program path — NC order
// priority, index alignment, and the shared tail trie — against the
// oracle over the same set.
func TestEngineSetParity(t *testing.T) {
	set := []*rex.Regex{
		rex.MustNew(rex.Lit("as"), rex.Capture(), rex.Lit(".x.net")),
		rex.MustNew(rex.Lit("r"), rex.Capture(), rex.Lit(".x.net")), // shares a tail
		rex.MustNew(rex.Lit("as"), rex.Capture(), rex.Lit("-"), rex.Excl("."), rex.Lit(".x.org")),
		mustOpen(t, rex.Lit("as"), rex.Capture(), rex.Lit(".y.net")),
		rex.MustNew(rex.Capture(), rex.DotPlus()), // no literal tail
		rex.MustNew(rex.Lit("p"), rex.Capture(), rex.Lit(".x.net")),
	}
	eng := Compile(set)
	ora := NewRegexpSet(set)
	if eng.Len() != len(set) || ora.Len() != len(set) {
		t.Fatalf("kept %d/%d of %d regexes", eng.Len(), ora.Len(), len(set))
	}
	if eng.trie == nil {
		t.Fatal("engine with 6 tailed programs built no trie")
	}
	hosts := append([]string{}, parityHosts...)
	hosts = append(hosts, "as9.x.net", "r9.x.net", "p9.x.net", "as9-a.x.org",
		"z.as9.y.net", "9whatever", "as9.x.netx", "x.net")
	for _, host := range hosts {
		gh, gok := eng.MatchString(host)
		wh, wok := ora.MatchString(host)
		if gok != wok || gh != wh {
			t.Fatalf("set parity broken on %q: compiled %+v %v, stdlib %+v %v",
				host, gh, gok, wh, wok)
		}
	}
}

func TestMatchStringAllocs(t *testing.T) {
	eng := Compile([]*rex.Regex{
		rex.MustNew(rex.Lit("as"), rex.Capture(), rex.Lit("-"), rex.Excl("."), rex.Lit(".carrier.net")),
	})
	hit := "as1234-pop1.carrier.net"
	missTail := "as1234-pop1.carrier.org"
	missBody := "lo0.core55.carrier.net"
	if _, ok := eng.MatchString(hit); !ok {
		t.Fatal("expected hit")
	}
	allocs := testing.AllocsPerRun(500, func() {
		eng.MatchString(hit)
		eng.MatchString(missTail)
		eng.MatchString(missBody)
	})
	if allocs != 0 {
		t.Fatalf("MatchString allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestBacktrackBudgetFallback: stacked exclusion runs that fail late
// would backtrack exponentially; the program must exhaust its step
// budget, fall back to the stdlib engine, and still agree with it.
func TestBacktrackBudgetFallback(t *testing.T) {
	toks := []rex.Token{rex.Capture()}
	for i := 0; i < 12; i++ {
		toks = append(toks, rex.Excl("-"))
	}
	toks = append(toks, rex.Lit("!"))
	r := rex.MustNew(toks...)
	checkParity(t, r, "1"+strings.Repeat("a", 40))          // no match, exponential without budget
	checkParity(t, r, "1"+strings.Repeat("a", 40)+"!")      // match
	checkParity(t, r, "123"+strings.Repeat("ab", 20)+"x!")  // match with digits run
}

// TestOracleProgram: an AST the lowering cannot represent (non-ASCII
// exclusion characters are rune-level class semantics) must keep stdlib
// matching behind the same prefilters.
func TestOracleProgram(t *testing.T) {
	r := rex.MustNew(rex.Lit("as"), rex.Capture(), rex.Excl("é"), rex.Lit(".net"))
	p, ok := compileProgram(r)
	if !ok {
		t.Fatal("program did not compile")
	}
	if !p.oracle {
		t.Fatal("non-ASCII exclusion should force the oracle path")
	}
	for _, host := range append(parityHosts, "as9x.net", "as9é.net") {
		checkParity(t, r, host)
	}
}

func TestTailTrie(t *testing.T) {
	ps := []*program{
		{tailLit: ".x.net"},
		{tailLit: ".net"},
		{tailLit: ".x.net"}, // duplicate tail shares a bit
		{tailLit: ".org"},
		{tailLit: ""}, // no tail: never pruned
	}
	tr := newTailTrie(ps)
	if tr == nil {
		t.Fatal("no trie built")
	}
	if ps[0].tailID != ps[2].tailID {
		t.Fatal("duplicate tails got distinct ids")
	}
	if ps[4].tailID != -1 {
		t.Fatal("tail-less program got a tail id")
	}
	cases := []struct {
		host string
		want map[int]bool // tailID -> present
	}{
		{"a.x.net", map[int]bool{ps[0].tailID: true, ps[1].tailID: true, ps[3].tailID: false}},
		{"a.y.net", map[int]bool{ps[0].tailID: false, ps[1].tailID: true}},
		{"a.org", map[int]bool{ps[3].tailID: true, ps[1].tailID: false}},
		{"net", map[int]bool{ps[1].tailID: false}},
		{"", map[int]bool{ps[0].tailID: false, ps[1].tailID: false, ps[3].tailID: false}},
	}
	for _, c := range cases {
		mask := tr.suffixMask(c.host)
		for id, want := range c.want {
			if got := mask&(1<<uint(id)) != 0; got != want {
				t.Errorf("suffixMask(%q) bit %d = %v, want %v", c.host, id, got, want)
			}
		}
	}
}

func BenchmarkEngineMatch(b *testing.B) {
	set := []*rex.Regex{
		rex.MustNew(rex.Lit("as"), rex.Capture(), rex.Lit("-"), rex.Excl("."), rex.Lit(".carrier.net")),
	}
	eng := Compile(set)
	ora := NewRegexpSet(set)
	hosts := []string{"as1234-pop1.carrier.net", "lo0.core55.carrier.net", "as1234-pop1.other.org"}
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.MatchString(hosts[i%len(hosts)])
		}
	})
	b.Run("regexp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ora.MatchString(hosts[i%len(hosts)])
		}
	})
}
