package match

import (
	"strings"
	"testing"

	"hoiho/internal/rex"
)

// rewire round-trips an engine through its wire form.
func rewire(t *testing.T, regexes []*rex.Regex) (*Engine, *Engine) {
	t.Helper()
	fresh := Compile(regexes)
	loaded, err := EngineFromWire(fresh.Wire(), regexes)
	if err != nil {
		t.Fatalf("EngineFromWire: %v", err)
	}
	return fresh, loaded
}

// TestWireRoundTripParity proves an engine rebuilt from its wire form
// answers exactly like the original — and therefore like the stdlib
// oracle — on every parity host, per-regex and as one multi-program
// engine (which also exercises the rebuilt tail trie).
func TestWireRoundTripParity(t *testing.T) {
	regexes := tableRegexes(t)
	hosts := append([]string{}, parityHosts...)
	hosts = append(hosts, strings.Repeat("a9.", 40)+"net")

	check := func(label string, set []*rex.Regex) {
		fresh, loaded := rewire(t, set)
		if fresh.Len() != loaded.Len() {
			t.Fatalf("%s: loaded engine kept %d programs, fresh %d", label, loaded.Len(), fresh.Len())
		}
		ora := NewRegexpSet(set)
		for _, host := range hosts {
			fh, fok := fresh.MatchString(host)
			lh, lok := loaded.MatchString(host)
			if fok != lok || fh != lh {
				t.Errorf("%s host %q: loaded (%+v,%v) vs fresh (%+v,%v)", label, host, lh, lok, fh, fok)
			}
			oh, ook := ora.MatchString(host)
			if lok != ook || lh != oh {
				t.Errorf("%s host %q: loaded (%+v,%v) vs oracle (%+v,%v)", label, host, lh, lok, oh, ook)
			}
		}
	}
	for _, r := range regexes {
		check(r.String(), []*rex.Regex{r})
	}
	check("all-table-regexes", regexes)
}

func TestWireRejectsBadPrograms(t *testing.T) {
	regexes := tableRegexes(t)
	wire := Compile(regexes).Wire()

	t.Run("out-of-range-index", func(t *testing.T) {
		bad := append([]WireProgram{}, wire...)
		bad[0].Index = len(regexes)
		if _, err := EngineFromWire(bad, regexes); err == nil {
			t.Fatal("accepted out-of-range index")
		}
	})
	t.Run("out-of-order-index", func(t *testing.T) {
		bad := append([]WireProgram{}, wire...)
		bad[1].Index = bad[0].Index
		if _, err := EngineFromWire(bad, regexes); err == nil {
			t.Fatal("accepted duplicate index")
		}
	})
	t.Run("unknown-op-kind", func(t *testing.T) {
		bad := append([]WireProgram{}, wire...)
		ops := append([]WireOp{}, bad[0].Ops...)
		ops[0].Kind = 0xee
		bad[0].Ops = ops
		if _, err := EngineFromWire(bad, regexes); err == nil {
			t.Fatal("accepted unknown op kind")
		}
	})
	t.Run("nil-regex-for-oracle", func(t *testing.T) {
		// Force the non-det path by marking the program oracle, then hand
		// it a nil source.
		bad := append([]WireProgram{}, wire...)
		bad[0].Oracle = true
		nils := make([]*rex.Regex, len(regexes))
		if _, err := EngineFromWire(bad, nils); err == nil {
			t.Fatal("accepted nil source regex for oracle program")
		}
	})
}
