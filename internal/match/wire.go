package match

import (
	"fmt"

	"hoiho/internal/rex"
)

// Wire form: the fundamental fields of a compiled program, everything
// the binary corpus format (internal/corpusbin) must persist to bring
// an Engine back without recompiling. Derived dispatch state — minimum
// widths, single-byte exclusion fast paths, fixed tails, head/tail
// literals, the det classification, the tail trie — is recomputed by
// the shared finalize pass at decode, so the wire format stays small
// and cannot desynchronize from the matcher's optimizations.

// WireOp is one lowered op in serializable form.
type WireOp struct {
	// Kind is the opKind value (opLit, opSet, opExcl, opAlt).
	Kind uint8
	// Lit is the literal for opLit ops.
	Lit string
	// Set is the raw 128-bit ASCII set for opSet/opExcl ops.
	Set [2]uint64
	// Alts are the alternatives for opAlt ops.
	Alts []string
	// Opt marks an optional alternation.
	Opt bool
	// Capture marks the ASN capture op.
	Capture bool
}

// WireProgram is one compiled program in serializable form.
type WireProgram struct {
	// Index is the program's position in the regex list it compiled
	// from. Compile drops stdlib-uncompilable regexes, so indexes are
	// strictly increasing but may skip values.
	Index int
	// LeftOpen marks an unanchored-left program.
	LeftOpen bool
	// Oracle marks a program whose AST the lowering cannot represent:
	// it matches through the stdlib compilation of its source regex.
	Oracle bool
	// Ops is the lowered op sequence.
	Ops []WireOp
}

// Wire snapshots the engine's programs for serialization. The returned
// slices share no mutable state with the engine (op slices are copied;
// strings and alt slices are immutable by convention).
func (e *Engine) Wire() []WireProgram {
	out := make([]WireProgram, len(e.programs))
	for i, p := range e.programs {
		ops := make([]WireOp, len(p.ops))
		for j := range p.ops {
			o := &p.ops[j]
			ops[j] = WireOp{
				Kind:    uint8(o.kind),
				Lit:     o.lit,
				Set:     o.set,
				Alts:    o.alts,
				Opt:     o.opt,
				Capture: o.capture,
			}
		}
		out[i] = WireProgram{
			Index:    p.rxIndex,
			LeftOpen: p.leftOpen,
			Oracle:   p.oracle,
			Ops:      ops,
		}
	}
	return out
}

// EngineFromWire reconstructs an Engine from its wire form without
// recompiling the regexes: each program's derived dispatch state is
// recomputed by finalize, and the tail trie is rebuilt. regexes is the
// full source list the programs were compiled from (WireProgram.Index
// indexes into it); only non-det programs — the oracle path and the
// VM's budget-exhaustion fallback — compile their stdlib regexp, which
// is what makes a binary corpus load reach ready-to-serve state without
// paying regexp.Compile for the (overwhelmingly det) learned
// conventions.
func EngineFromWire(progs []WireProgram, regexes []*rex.Regex) (*Engine, error) {
	e := &Engine{}
	last := -1
	for pi, wp := range progs {
		if wp.Index <= last || wp.Index >= len(regexes) {
			return nil, fmt.Errorf("match: wire program %d: index %d out of order or range (have %d regexes)",
				pi, wp.Index, len(regexes))
		}
		last = wp.Index
		p := &program{leftOpen: wp.LeftOpen, oracle: wp.Oracle, tailID: -1, rxIndex: wp.Index}
		p.ops = make([]op, len(wp.Ops))
		for j, wo := range wp.Ops {
			if wo.Kind > uint8(opAlt) {
				return nil, fmt.Errorf("match: wire program %d: unknown op kind %d", pi, wo.Kind)
			}
			alts := wo.Alts
			if opKind(wo.Kind) == opAlt && len(alts) == 0 {
				alts = []string{""} // "(?:)" matches the empty string
			}
			p.ops[j] = op{
				kind:    opKind(wo.Kind),
				lit:     wo.Lit,
				set:     wo.Set,
				alts:    alts,
				opt:     wo.Opt,
				capture: wo.Capture,
			}
		}
		p.finalize()
		if !p.det {
			r := regexes[wp.Index]
			if r == nil {
				return nil, fmt.Errorf("match: wire program %d: nil source regex %d", pi, wp.Index)
			}
			re, err := r.Compile()
			if err != nil {
				return nil, fmt.Errorf("match: wire program %d: source regex %d: %w", pi, wp.Index, err)
			}
			p.re = re
		}
		e.programs = append(e.programs, p)
	}
	if len(e.programs) >= trieThreshold {
		e.trie = newTailTrie(e.programs)
	}
	return e, nil
}
