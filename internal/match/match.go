// Package match compiles learned naming-convention regexes (the
// internal/rex AST) into specialized byte-level matchers. The paper's
// conventions are a narrow, fully structured subset of regex — anchored
// literal/class/exclusion sequences with a single ASN capture — so
// instead of interpreting them through the general-purpose regexp
// machinery per hostname, each suffix's NC set compiles once into an
// Engine: per-regex prefilters (required head/tail literals, minimum
// length) rejected with plain byte comparisons, a shared reversed trie
// over the set's anchored tail literals so one backward pass over the
// hostname prunes the candidate regexes, and a small backtracking VM
// that replicates the stdlib's leftmost-first capture semantics without
// submatch machinery or allocation.
//
// The stdlib path is retained as the oracle: NewRegexpSet implements the
// same Matcher interface on regexp, the property tests and the
// FuzzCompiledMatchParity target assert agreement between the two on
// match/no-match, winning regex index, and capture span, and a compiled
// program whose backtracking exceeds its step budget (possible only on
// pathological inputs, never on learned conventions) falls back to the
// stdlib compilation of the same regex mid-match, so the fast path can
// never change an answer.
package match

import (
	"regexp"

	"hoiho/internal/rex"
)

// Hit is one successful match: the index of the winning regex within
// the matcher's compiled set (regexes are tried in NC order, first match
// wins) and the byte span of its ASN capture group in the hostname.
type Hit struct {
	Index int
	Start int
	End   int
}

// Matcher is the per-suffix matching contract shared by the compiled
// Engine and the stdlib-backed RegexpSet. Implementations are immutable
// after construction and safe for concurrent use.
type Matcher interface {
	// MatchString reports the first regex in the set matching host, with
	// the capture span, mirroring the semantics of running each regex's
	// FindStringSubmatchIndex in order.
	MatchString(host string) (Hit, bool)
	// Len reports how many regexes compiled into the set (regexes whose
	// stdlib compilation fails are dropped, as the serving path has
	// always done).
	Len() int
}

// trieThreshold gates the shared tail trie: sets smaller than this check
// their own tail literal directly (one memcmp beats a byte-walk), larger
// sets amortize one backward pass across all candidates.
const trieThreshold = 4

// Engine is the compiled form of one suffix's regex set.
type Engine struct {
	programs []*program
	trie     *tailTrie
}

// Compile lowers each regex into a compiled program, in order. Regexes
// that the stdlib cannot compile are dropped — exactly the set
// NewRegexpSet drops, so compiled and oracle indexes stay aligned.
func Compile(regexes []*rex.Regex) *Engine {
	e := &Engine{}
	for i, r := range regexes {
		if r == nil {
			continue
		}
		if p, ok := compileProgram(r); ok {
			p.rxIndex = i
			e.programs = append(e.programs, p)
		}
	}
	if len(e.programs) >= trieThreshold {
		e.trie = newTailTrie(e.programs)
	}
	if e.trie == nil {
		for _, p := range e.programs {
			p.tailID = -1
		}
	}
	return e
}

// Len reports the number of compiled programs.
func (e *Engine) Len() int { return len(e.programs) }

// MatchString tries each program in order and returns the first hit.
// It performs no allocation.
func (e *Engine) MatchString(host string) (Hit, bool) {
	if len(e.programs) == 1 {
		// Most suffixes compile to a single program; skip the trie mask
		// and candidate loop entirely.
		if s, en, ok := e.programs[0].match(host); ok {
			return Hit{Start: s, End: en}, true
		}
		return Hit{}, false
	}
	var mask uint64
	if e.trie != nil {
		mask = e.trie.suffixMask(host)
	}
	for i, p := range e.programs {
		if p.tailID >= 0 && mask&(1<<uint(p.tailID)) == 0 {
			continue
		}
		if s, en, ok := p.match(host); ok {
			return Hit{Index: i, Start: s, End: en}, true
		}
	}
	return Hit{}, false
}

// RegexpSet is the stdlib implementation of Matcher: the property-test
// and fuzz oracle for Engine, and the fallback serving path selectable
// via extract.WithMatcher.
type RegexpSet struct {
	res []*regexp.Regexp
}

// NewRegexpSet compiles regexes with the stdlib, dropping failures.
func NewRegexpSet(regexes []*rex.Regex) *RegexpSet {
	rs := &RegexpSet{}
	for _, r := range regexes {
		if r == nil {
			continue
		}
		re, err := r.Compile()
		if err != nil {
			continue
		}
		rs.res = append(rs.res, re)
	}
	return rs
}

// Len reports the number of compiled regexes.
func (rs *RegexpSet) Len() int { return len(rs.res) }

// MatchString runs each regex in order via FindStringSubmatchIndex.
func (rs *RegexpSet) MatchString(host string) (Hit, bool) {
	for i, re := range rs.res {
		m := re.FindStringSubmatchIndex(host)
		if m == nil || m[2] < 0 {
			continue
		}
		return Hit{Index: i, Start: m[2], End: m[3]}, true
	}
	return Hit{}, false
}
