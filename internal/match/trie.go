package match

// tailTrie is a reversed-byte trie over an engine's distinct anchored
// tail literals. Every regex is end-anchored, so a program whose last
// token is a literal can only match hostnames ending in that literal;
// one backward walk over the hostname computes a bitmask of which tails
// are present, pruning the whole set in a single pass instead of one
// suffix comparison per program.
type tailTrie struct {
	nodes []trieNode
}

type trieNode struct {
	// Sparse children, scanned linearly: tails are short and share long
	// common suffixes (".<domain>"), so fan-out per node is tiny.
	keys []byte
	next []int32
	// mask marks the tails that end at this node.
	mask uint64
}

// newTailTrie assigns each distinct tail a bit, builds the trie, and
// stamps every program's tailID. It returns nil — leaving the engine on
// per-program suffix checks — when no program has a literal tail or the
// set needs more than 64 bits.
func newTailTrie(programs []*program) *tailTrie {
	ids := make(map[string]int)
	for _, p := range programs {
		if p.tailLit == "" {
			continue
		}
		if _, ok := ids[p.tailLit]; !ok {
			ids[p.tailLit] = len(ids)
		}
	}
	if len(ids) == 0 || len(ids) > 64 {
		return nil
	}
	tr := &tailTrie{nodes: make([]trieNode, 1)}
	for tail, id := range ids {
		tr.insert(tail, id)
	}
	for _, p := range programs {
		if p.tailLit != "" {
			p.tailID = ids[p.tailLit]
		} else {
			p.tailID = -1
		}
	}
	return tr
}

func (tr *tailTrie) insert(tail string, id int) {
	cur := 0
	for i := len(tail) - 1; i >= 0; i-- {
		b := tail[i]
		n := &tr.nodes[cur]
		child := -1
		for j, k := range n.keys {
			if k == b {
				child = int(n.next[j])
				break
			}
		}
		if child < 0 {
			child = len(tr.nodes)
			n.keys = append(n.keys, b)
			n.next = append(n.next, int32(child))
			tr.nodes = append(tr.nodes, trieNode{})
		}
		cur = child
	}
	tr.nodes[cur].mask |= 1 << uint(id)
}

// suffixMask walks host backward and ORs the masks of every tail that is
// a suffix of it. No allocation.
func (tr *tailTrie) suffixMask(host string) uint64 {
	var mask uint64
	cur := 0
	for i := len(host) - 1; i >= 0; i-- {
		b := host[i]
		n := &tr.nodes[cur]
		next := int32(-1)
		for j, k := range n.keys {
			if k == b {
				next = n.next[j]
				break
			}
		}
		if next < 0 {
			return mask
		}
		cur = int(next)
		mask |= tr.nodes[cur].mask
	}
	return mask
}
