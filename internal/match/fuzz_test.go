package match

import (
	"testing"

	"hoiho/internal/rex"
)

// FuzzCompiledMatchParity is the compiled-vs-stdlib oracle fuzz: spec
// bytes deterministically assemble a rex AST (specAST), host is an
// arbitrary byte string, and the compiled engine must agree with the
// stdlib regexp path on match/no-match, winning index, capture span,
// and the extracted digits rex.Extract reports for the same regex.
func FuzzCompiledMatchParity(f *testing.F) {
	f.Add([]byte{0, 3, 2, 1, 4, 0}, "as64512.example.net")
	f.Add([]byte{1, 0, 2, 9, 0, 200, 4, 4}, "xas15576.nts.ch")
	f.Add([]byte{5, 8, 2, 1, 0, 0}, "p9.net")
	f.Add([]byte{4, 0, 0, 7, 2, 3, 6, 1}, "AS64512.EXAMPLE.NET")
	f.Add([]byte{2, 2, 2, 2, 2, 2, 2, 2, 2, 2}, "a-a-a-a-a-a-a-a")
	f.Add([]byte{3, 1, 0, 4, 1, 0}, "\xff\xfe9as.net")
	f.Add([]byte{6, 0, 0, 1}, "as12é.net")
	f.Fuzz(func(t *testing.T, spec []byte, host string) {
		if len(spec) > 64 || len(host) > 256 {
			return
		}
		r := specAST(spec)
		if r == nil {
			return
		}
		eng := Compile([]*rex.Regex{r})
		ora := NewRegexpSet([]*rex.Regex{r})
		if eng.Len() != ora.Len() {
			t.Fatalf("regex %q: engine kept %d programs, oracle %d", r, eng.Len(), ora.Len())
		}
		gh, gok := eng.MatchString(host)
		wh, wok := ora.MatchString(host)
		if gok != wok || gh != wh {
			t.Fatalf("parity broken: regex %q host %q:\n  compiled %+v ok=%v\n  stdlib   %+v ok=%v",
				r, host, gh, gok, wh, wok)
		}
		if !gok {
			return
		}
		digits, s, e, ok := r.Extract(host)
		if !ok || s != gh.Start || e != gh.End || digits != host[s:e] {
			t.Fatalf("capture disagrees with rex.Extract: regex %q host %q: hit %+v, Extract (%q,%d,%d,%v)",
				r, host, gh, digits, s, e, ok)
		}
	})
}
