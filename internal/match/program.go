package match

import (
	"math/bits"
	"regexp"
	"strings"
	"unicode/utf8"

	"hoiho/internal/rex"
)

type opKind uint8

const (
	// opLit consumes an exact byte string.
	opLit opKind = iota
	// opSet consumes one or more bytes drawn from an ASCII set: the
	// capture groups "(\d+)" / "([a-z]+)" and the phase-3 classes. ASCII
	// sets never match a non-ASCII byte, so byte stepping and rune
	// stepping agree.
	opSet
	// opExcl consumes one or more runes outside an ASCII set: "[^...]+"
	// and ".+" (which excludes only '\n'). Non-ASCII runes — including
	// each byte of invalid UTF-8, which the stdlib decodes as one-byte
	// U+FFFD — always match, so this op must step by rune.
	opExcl
	// opAlt consumes one alternative of "(?:a|b)", tried in rendered
	// order; when opt is set the empty match is tried last, matching how
	// a backtracking engine treats a greedy "?".
	opAlt
)

// asciiSet is a 128-bit membership set over ASCII bytes.
type asciiSet [2]uint64

func (s *asciiSet) add(b byte) {
	if b < 128 {
		s[b>>6] |= 1 << (b & 63)
	}
}

func (s *asciiSet) addRange(lo, hi byte) {
	for b := lo; b <= hi; b++ {
		s.add(b)
	}
}

func (s *asciiSet) has(b byte) bool {
	return b < 128 && s[b>>6]&(1<<(b&63)) != 0
}

type op struct {
	kind opKind
	lit  string
	set  asciiSet // opSet: allowed bytes; opExcl: excluded bytes
	alts []string
	opt  bool
	// capture marks the single ASN capture op.
	capture bool
	// minW is the minimum number of bytes this op consumes.
	minW int
	// excl1 is the single excluded byte when an opExcl set holds exactly
	// one ASCII byte — "[^.]+" and ".+" — letting the greedy run use one
	// SIMD IndexByte instead of a per-byte set walk. An ASCII byte is
	// never part of a multi-byte rune and invalid bytes decode one at a
	// time, so the first occurrence under byte search and under the
	// rune-stepping scan coincide.
	excl1   byte
	isExcl1 bool
	// isDigit marks an opSet over exactly [0-9]: the capture op of almost
	// every learned convention, scanned with one subtract-compare per
	// byte instead of the general bitset test.
	isDigit bool
	// fixedTail is the exact byte width of everything after this op when
	// the remaining ops are all literals — then a greedy op's end
	// position is forced and needs no backtracking — and -1 otherwise.
	fixedTail int
}

// program is one compiled regex: the lowered op sequence plus the
// prefilters that reject most hostnames without entering the VM.
type program struct {
	ops      []op
	leftOpen bool
	minLen   int
	// headLit is the first op's literal, required as a prefix when the
	// regex is start-anchored and used to skip non-viable start offsets
	// when it is left-open.
	headLit string
	// tailLit is the last op's literal: the regex is always end-anchored,
	// so it is a required hostname suffix.
	tailLit string
	// tailID indexes the owning engine's tail trie, -1 when unused.
	tailID int
	// re is the stdlib compilation of the same regex: the mid-match
	// fallback when the backtracking budget runs out, and the whole
	// matcher when oracle is set (ASTs the lowering cannot represent,
	// e.g. non-ASCII exclusion sets).
	re     *regexp.Regexp
	oracle bool
	// det marks a program whose every quantified op has exactly one
	// viable end position per attempt — its tail is fixed-width, or the
	// following literal's first byte cannot extend its run — so a match
	// attempt never backtracks and runs on the iterative matchDet loop
	// instead of the VM. Learned conventions are almost always det.
	// det programs never consult re: matchDet and matchDetAll have no
	// stdlib fallback, which is what lets the binary corpus loader skip
	// regexp compilation for them entirely.
	det bool
	// rxIndex is the program's position in the regex list it compiled
	// from (Compile drops stdlib-uncompilable regexes, so program count
	// can trail regex count). It keys the wire form back to its source.
	rxIndex int
}

// compileProgram lowers r. ok is false when the stdlib cannot compile r
// (such regexes have always been dropped from serving). A lowerable AST
// gets the VM; anything else keeps stdlib matching behind the same
// prefilters.
func compileProgram(r *rex.Regex) (*program, bool) {
	re, err := r.Compile()
	if err != nil {
		return nil, false
	}
	p := &program{leftOpen: r.LeftOpen(), re: re, tailID: -1}
	supported := true
	for _, t := range r.Tokens() {
		var o op
		switch t.Kind {
		case rex.KindLit:
			o = op{kind: opLit, lit: t.Lit, minW: len(t.Lit)}
		case rex.KindCapture:
			o = op{kind: opSet, capture: true, minW: 1}
			o.set.addRange('0', '9')
		case rex.KindCaptureAlpha:
			o = op{kind: opSet, capture: true, minW: 1}
			o.set.addRange('a', 'z')
		case rex.KindClass:
			o = op{kind: opSet, minW: 1}
			switch t.Class {
			case rex.ClassAlpha:
				o.set.addRange('a', 'z')
			case rex.ClassDigit:
				o.set.addRange('0', '9')
			default:
				o.set.addRange('a', 'z')
				o.set.addRange('0', '9')
			}
		case rex.KindExcl:
			o = op{kind: opExcl, minW: 1}
			for i := 0; i < len(t.Excl); i++ {
				b := t.Excl[i]
				if b >= utf8.RuneSelf {
					// A non-ASCII excluded character is rune-level class
					// semantics a byte set cannot express.
					supported = false
				}
				o.set.add(b)
			}
		case rex.KindDotPlus:
			o = op{kind: opExcl, minW: 1}
			o.set.add('\n')
		case rex.KindAlt:
			alts := t.Alts
			if len(alts) == 0 {
				alts = []string{""} // "(?:)" matches the empty string
			}
			o = op{kind: opAlt, alts: alts, opt: t.Opt}
			if !t.Opt {
				o.minW = len(alts[0])
				for _, a := range alts[1:] {
					if len(a) < o.minW {
						o.minW = len(a)
					}
				}
			}
		default:
			supported = false
		}
		p.ops = append(p.ops, o)
	}
	p.oracle = !supported
	p.finalize()
	return p, true
}

// finalize derives every field the matcher dispatch needs from the
// fundamental op sequence (kind, lit, set, alts, opt, capture) and the
// oracle flag: per-op minW/excl1/isDigit/fixedTail, the program's
// minLen and head/tail literals, and the det classification. It is the
// single derivation path shared by compileProgram and the wire decoder
// (EngineFromWire), so a deserialized program behaves bit-for-bit like
// a freshly compiled one.
func (p *program) finalize() {
	p.minLen = 0
	for i := range p.ops {
		o := &p.ops[i]
		switch o.kind {
		case opLit:
			o.minW = len(o.lit)
		case opSet, opExcl:
			o.minW = 1
		case opAlt:
			o.minW = 0
			if !o.opt && len(o.alts) > 0 {
				o.minW = len(o.alts[0])
				for _, a := range o.alts[1:] {
					if len(a) < o.minW {
						o.minW = len(a)
					}
				}
			}
		}
		p.minLen += o.minW
	}
	var digits asciiSet
	digits.addRange('0', '9')
	for i := range p.ops {
		o := &p.ops[i]
		o.excl1, o.isExcl1, o.isDigit = 0, false, false
		if o.kind == opExcl && bits.OnesCount64(o.set[0])+bits.OnesCount64(o.set[1]) == 1 {
			if o.set[0] != 0 {
				o.excl1 = byte(bits.TrailingZeros64(o.set[0]))
			} else {
				o.excl1 = byte(64 + bits.TrailingZeros64(o.set[1]))
			}
			o.isExcl1 = true
		}
		if o.kind == opSet && o.set == digits {
			o.isDigit = true
		}
	}
	// fixedTail: scan from the end while only literals remain.
	run, allLit := 0, true
	for i := len(p.ops) - 1; i >= 0; i-- {
		if allLit {
			p.ops[i].fixedTail = run
		} else {
			p.ops[i].fixedTail = -1
		}
		if p.ops[i].kind == opLit {
			run += len(p.ops[i].lit)
		} else {
			allLit = false
		}
	}
	p.headLit, p.tailLit = "", ""
	if n := len(p.ops); n > 0 {
		if p.ops[0].kind == opLit {
			p.headLit = p.ops[0].lit
		}
		if p.ops[n-1].kind == opLit {
			p.tailLit = p.ops[n-1].lit
		}
	}
	p.det = !p.oracle && p.deterministic()
}

// deterministic reports whether every quantified op in the program has
// exactly one viable end position in any attempt, making backtracking
// impossible:
//
//   - a greedy run with a fixed-width literal tail (fixedTail >= 0) has
//     its end forced by the end anchor;
//   - a greedy run followed by a literal whose first byte cannot extend
//     the run can only stop at its maximal extent — any shorter end
//     puts a run-extending byte where the literal's first byte must be;
//   - an alternation with a single required branch is a literal.
func (p *program) deterministic() bool {
	for i := range p.ops {
		o := &p.ops[i]
		switch o.kind {
		case opLit:
		case opAlt:
			if len(o.alts) != 1 || o.opt {
				return false
			}
		case opSet, opExcl:
			if o.fixedTail >= 0 {
				continue
			}
			if i+1 >= len(p.ops) || p.ops[i+1].kind != opLit || len(p.ops[i+1].lit) == 0 {
				return false
			}
			nb := p.ops[i+1].lit[0]
			// opSet runs over bytes in the set; opExcl runs over bytes
			// outside it. Either way nb must stop the run.
			if o.kind == opSet && o.set.has(nb) {
				return false
			}
			if o.kind == opExcl && !o.set.has(nb) {
				return false
			}
		}
	}
	return true
}

// matchDet matches ops against host[pos:] without backtracking — valid
// only for det programs, where each quantified op has a single viable
// end. It replicates the VM's leftmost-first answer exactly: for every
// op the end position it picks is the only one whose continuation can
// succeed.
func (p *program) matchDet(host string, pos int) (int, int, bool) {
	var capS, capE int
	for i := range p.ops {
		o := &p.ops[i]
		switch o.kind {
		case opLit:
			switch len(o.lit) {
			case 1:
				if pos >= len(host) || host[pos] != o.lit[0] {
					return 0, 0, false
				}
				pos++
				continue
			case 2:
				if pos+2 > len(host) || host[pos] != o.lit[0] || host[pos+1] != o.lit[1] {
					return 0, 0, false
				}
				pos += 2
				continue
			}
			end := pos + len(o.lit)
			if end > len(host) || host[pos:end] != o.lit {
				return 0, 0, false
			}
			pos = end
		case opAlt: // det: exactly one required branch
			a := o.alts[0]
			end := pos + len(a)
			if end > len(host) || host[pos:end] != a {
				return 0, 0, false
			}
			pos = end
		case opSet:
			max := pos
			if o.isDigit {
				for max < len(host) && uint(host[max])-'0' < 10 {
					max++
				}
			} else {
				for max < len(host) && o.set.has(host[max]) {
					max++
				}
			}
			end := max
			if ft := o.fixedTail; ft >= 0 {
				end = len(host) - ft
				if end > max {
					return 0, 0, false
				}
			}
			if end <= pos {
				return 0, 0, false
			}
			if o.capture {
				capS, capE = pos, end
			}
			pos = end
		case opExcl:
			var end int
			if o.isExcl1 {
				max := len(host)
				if j := strings.IndexByte(host[pos:], o.excl1); j >= 0 {
					max = pos + j
				}
				end = max
				if ft := o.fixedTail; ft >= 0 {
					end = len(host) - ft
					if end > max {
						return 0, 0, false
					}
					// end == max stops at an ASCII byte or the end of host,
					// both rune boundaries; a shorter forced end must be
					// checked.
					if end < max && !runeBoundaryFrom(host, pos, end) {
						return 0, 0, false
					}
				}
			} else {
				max, sawMulti := pos, false
				for max < len(host) {
					b := host[max]
					if b < utf8.RuneSelf {
						if o.set.has(b) {
							break
						}
						max++
					} else {
						_, w := utf8.DecodeRuneInString(host[max:])
						max += w
						sawMulti = sawMulti || w > 1
					}
				}
				end = max
				if ft := o.fixedTail; ft >= 0 {
					end = len(host) - ft
					if end > max {
						return 0, 0, false
					}
					if sawMulti && !runeBoundaryFrom(host, pos, end) {
						return 0, 0, false
					}
				}
			}
			if end <= pos {
				return 0, 0, false
			}
			if o.capture {
				capS, capE = pos, end
			}
			pos = end
		}
	}
	return capS, capE, pos == len(host)
}

// stepBudget bounds backtracking work per (host, start) attempt set.
// Learned conventions use a handful of steps; only adversarial token
// sequences (stacked exclusion runs that all fail late) approach the
// budget, and those fall back to the stdlib engine so the answer is
// unchanged.
const stepBudget = 1 << 14

// vm is per-match state. It is passed by pointer through the recursion
// but never stored, so it stays on MatchString's stack.
type vm struct {
	host       string
	steps      int
	capS, capE int
}

// match runs the program against host, returning the capture span.
func (p *program) match(host string) (capS, capE int, ok bool) {
	if len(host) < p.minLen {
		return 0, 0, false
	}
	if p.det && !p.leftOpen {
		// The op sequence itself verifies the head and tail literals at
		// their only viable positions; prefilters would duplicate work.
		return p.matchDet(host, 0)
	}
	if p.tailLit != "" && !strings.HasSuffix(host, p.tailLit) {
		return 0, 0, false
	}
	if p.oracle {
		return p.oracleMatch(host)
	}
	if p.det {
		return p.matchDetAll(host)
	}
	v := vm{host: host, steps: stepBudget}
	if !p.leftOpen {
		if p.headLit != "" && !strings.HasPrefix(host, p.headLit) {
			return 0, 0, false
		}
		if v.run(p, 0, 0) {
			return v.capS, v.capE, true
		}
		if v.steps < 0 {
			return p.oracleMatch(host)
		}
		return 0, 0, false
	}
	// Left-open: the leftmost start offset that matches wins, exactly as
	// the stdlib resolves an unanchored pattern. When the first op is a
	// literal only its occurrences are viable starts.
	limit := len(host) - p.minLen
	if p.headLit != "" {
		for s := 0; s <= limit; {
			i := strings.Index(host[s:], p.headLit)
			if i < 0 {
				return 0, 0, false
			}
			s += i
			if s > limit {
				return 0, 0, false
			}
			if v.run(p, 0, s) {
				return v.capS, v.capE, true
			}
			if v.steps < 0 {
				return p.oracleMatch(host)
			}
			s++
		}
		return 0, 0, false
	}
	for s := 0; s <= limit; s++ {
		if v.run(p, 0, s) {
			return v.capS, v.capE, true
		}
		if v.steps < 0 {
			return p.oracleMatch(host)
		}
	}
	return 0, 0, false
}

// matchDetAll is the start-offset search for left-open det programs:
// the same leftmost-first start scan as the VM path, with each attempt
// running the linear matchDet. det attempts cannot exhaust a step
// budget, so there is no mid-match oracle fallback to consider.
func (p *program) matchDetAll(host string) (int, int, bool) {
	limit := len(host) - p.minLen
	if p.headLit != "" {
		for s := 0; s <= limit; {
			i := strings.Index(host[s:], p.headLit)
			if i < 0 {
				return 0, 0, false
			}
			s += i
			if s > limit {
				return 0, 0, false
			}
			if cs, ce, ok := p.matchDet(host, s); ok {
				return cs, ce, true
			}
			s++
		}
		return 0, 0, false
	}
	for s := 0; s <= limit; s++ {
		if cs, ce, ok := p.matchDet(host, s); ok {
			return cs, ce, true
		}
	}
	return 0, 0, false
}

// oracleMatch answers with the stdlib compilation of the same regex.
func (p *program) oracleMatch(host string) (int, int, bool) {
	m := p.re.FindStringSubmatchIndex(host)
	if m == nil || m[2] < 0 {
		return 0, 0, false
	}
	return m[2], m[3], true
}

// run matches ops[i:] at pos, replicating a leftmost-first backtracking
// search: greedy quantifiers try their longest extent first, alternation
// alternatives are tried in rendered order with the optional empty match
// last. The whole host must be consumed (every regex is end-anchored).
func (v *vm) run(p *program, i, pos int) bool {
	v.steps--
	if v.steps < 0 {
		return false
	}
	if i == len(p.ops) {
		return pos == len(v.host)
	}
	o := &p.ops[i]
	switch o.kind {
	case opLit:
		end := pos + len(o.lit)
		if end > len(v.host) || v.host[pos:end] != o.lit {
			return false
		}
		return v.run(p, i+1, end)

	case opAlt:
		for _, a := range o.alts {
			end := pos + len(a)
			if end <= len(v.host) && v.host[pos:end] == a {
				if v.run(p, i+1, end) {
					return true
				}
				if v.steps < 0 {
					return false
				}
			}
		}
		if o.opt {
			return v.run(p, i+1, pos)
		}
		return false

	case opSet:
		max := pos
		for max < len(v.host) && o.set.has(v.host[max]) {
			max++
		}
		if max == pos {
			return false
		}
		if ft := o.fixedTail; ft >= 0 {
			// Everything after this op is literal: the end is forced.
			end := len(v.host) - ft
			if end <= pos || end > max {
				return false
			}
			if v.run(p, i+1, end) {
				if o.capture {
					v.capS, v.capE = pos, end
				}
				return true
			}
			return false
		}
		for end := max; end > pos; end-- {
			if v.run(p, i+1, end) {
				if o.capture {
					v.capS, v.capE = pos, end
				}
				return true
			}
			if v.steps < 0 {
				return false
			}
		}
		return false

	case opExcl:
		// Greedy rune run: ASCII bytes stop at the excluded set, non-ASCII
		// runes always match (the excluded characters are ASCII), and each
		// invalid byte decodes as one-byte U+FFFD, matching the stdlib's
		// treatment.
		max, sawMulti := pos, false
		for max < len(v.host) {
			b := v.host[max]
			if b < utf8.RuneSelf {
				if o.set.has(b) {
					break
				}
				max++
			} else {
				_, w := utf8.DecodeRuneInString(v.host[max:])
				max += w
				sawMulti = sawMulti || w > 1
			}
		}
		if max == pos {
			return false
		}
		if ft := o.fixedTail; ft >= 0 {
			end := len(v.host) - ft
			if end <= pos || end > max {
				return false
			}
			if sawMulti && !runeBoundaryFrom(v.host, pos, end) {
				return false
			}
			return v.run(p, i+1, end) && v.setCap(o, pos, end)
		}
		for end := max; end > pos; {
			if v.run(p, i+1, end) {
				return v.setCap(o, pos, end)
			}
			if v.steps < 0 {
				return false
			}
			// Step back one rune. DecodeLastRuneInString mirrors forward
			// decoding boundaries, including one-byte steps over invalid
			// sequences.
			if v.host[end-1] < utf8.RuneSelf {
				end--
			} else {
				_, w := utf8.DecodeLastRuneInString(v.host[:end])
				end -= w
			}
		}
		return false
	}
	return false
}

// setCap records the capture span when o is the capture op; it always
// reports true so callers can chain it after a successful tail match.
func (v *vm) setCap(o *op, s, e int) bool {
	if o.capture {
		v.capS, v.capE = s, e
	}
	return true
}

// runeBoundaryFrom reports whether end lies on a rune boundary when
// decoding forward from start.
func runeBoundaryFrom(host string, start, end int) bool {
	for start < end {
		if host[start] < utf8.RuneSelf {
			start++
		} else {
			_, w := utf8.DecodeRuneInString(host[start:])
			start += w
		}
	}
	return start == end
}
