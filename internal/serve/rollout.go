package serve

// Two-phase corpus rollout, node side. A cluster-wide corpus swap must
// be all-or-nothing: if one node of a shard's replica set serves the new
// corpus while another serves the old one, a client retrying across
// replicas observes two generations inside one logical deployment. The
// coordinator (internal/cluster) drives three rounds against every node:
//
//	prepare  — the corpus bytes arrive in the request body, are loaded
//	           and validated into a side buffer, and do NOT serve. The
//	           ack carries the prepared fingerprint and the serving
//	           generation it would supersede.
//	validate — the node re-acks the prepared fingerprint and confirms
//	           the serving generation has not moved since prepare (a
//	           concurrent reload/rollback invalidates the epoch).
//	commit   — the node checks the coordinator's expected fingerprint
//	           against its side buffer one last time, persists the
//	           bytes over CorpusPath (atomic temp+rename, so a restart
//	           boots this generation), and publishes the prepared
//	           snapshot with the same atomic pointer swap as Reload.
//	abort    — the side buffer is dropped; serving state is untouched.
//
// Every step is serialized under reloadMu with Reload/Rollback, so the
// rollout protocol and the single-node admin surface can never
// interleave half-applied states.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"hoiho/internal/atomicfile"
	"hoiho/internal/corpusbin"
	"hoiho/internal/extract"
)

// preparedCorpus is the rollout side buffer: a fully validated corpus
// plus the exact bytes that produced it, staged but not serving.
type preparedCorpus struct {
	corpus *extract.Corpus
	data   []byte
	at     time.Time
	// gen is the serving generation observed at prepare time; commit
	// refuses to publish over any other generation.
	gen uint64
	// epoch is the coordinator's rollout epoch, carried through to the
	// last-rollout outcome so /-/status ties results to epochs.
	epoch uint64
}

// PrepareCorpus stages data into the rollout side buffer. The payload
// is sniffed: a full corpus (JSON or HBC, with the node's class filter
// applied) loads exactly as a Reload would; an HBD delta is applied
// against the *live* corpus, and the side buffer receives the complete
// patched target — commit always persists a full corpus, never a
// patch. A delta whose base is not the live corpus is refused with
// ErrBaseMismatch (nothing staged, nothing served changes), the signal
// the coordinator turns into a full-corpus resend for this node. The
// running corpus is untouched in every failure mode. It returns the
// prepared fingerprint and the serving generation the prepared corpus
// would supersede.
func (s *Server) PrepareCorpus(data []byte, epoch uint64) (fp string, gen uint64, err error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	var corpus *extract.Corpus
	if corpusbin.IsHBD(data) {
		snap := s.state.Load()
		if snap == nil {
			err := fmt.Errorf("%w: no corpus loaded to patch", ErrBaseMismatch)
			s.noteRolloutLocked(epoch, "", "failed", err)
			return "", 0, err
		}
		applied, full, aerr := extract.ApplyDelta(snap.corpus, data, s.corpusOpts...)
		if aerr != nil {
			if errors.Is(aerr, corpusbin.ErrDeltaBaseMismatch) {
				err := fmt.Errorf("%w: %w", ErrBaseMismatch, aerr)
				s.noteRolloutLocked(epoch, "", "failed", err)
				return "", 0, err
			}
			s.stats.reloadFailures.Add(1)
			s.noteErrLocked(aerr)
			s.noteRolloutLocked(epoch, "", "failed", aerr)
			return "", 0, &ReloadError{Path: "(rollout delta)", Err: aerr}
		}
		corpus, data = applied, full
	} else {
		corpus, err = extract.Load(bytes.NewReader(data), s.corpusOpts...)
		if err != nil {
			s.stats.reloadFailures.Add(1)
			s.noteErrLocked(err)
			s.noteRolloutLocked(epoch, "", "failed", err)
			return "", 0, &ReloadError{Path: "(rollout prepare)", Err: err}
		}
		data = append([]byte(nil), data...)
	}
	gen = s.generation.Load()
	s.prepared = &preparedCorpus{
		corpus: corpus,
		data:   data,
		at:     time.Now(),
		gen:    gen,
		epoch:  epoch,
	}
	s.stats.prepares.Add(1)
	return corpus.FingerprintString(), gen, nil
}

// ValidatePrepared acks the side buffer: the prepared fingerprint and
// the serving generation recorded at prepare. ErrNoPrepared when the
// prepare phase never reached this node (or an abort cleared it);
// ErrPreparedStale when the serving generation moved since prepare.
func (s *Server) ValidatePrepared() (fp string, gen uint64, err error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if s.prepared == nil {
		return "", 0, ErrNoPrepared
	}
	if s.generation.Load() != s.prepared.gen {
		return "", 0, ErrPreparedStale
	}
	return s.prepared.corpus.FingerprintString(), s.prepared.gen, nil
}

// CommitPrepared publishes the side buffer. wantFP, when non-empty, must
// equal the prepared fingerprint — the coordinator's proof that this
// node is about to publish the same corpus every other node validated.
// The shipped bytes are persisted over CorpusPath first (atomic
// temp+rename), so a node that restarts after commit boots the
// committed generation; if persistence fails the commit fails and the
// old corpus keeps serving, with the side buffer retained for a retry.
func (s *Server) CommitPrepared(wantFP string) (*snapshot, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	p := s.prepared
	if p == nil {
		return nil, ErrNoPrepared
	}
	if s.generation.Load() != p.gen {
		return nil, ErrPreparedStale
	}
	if have := p.corpus.FingerprintString(); wantFP != "" && wantFP != have {
		err := &CommitMismatchError{Want: wantFP, Have: have}
		s.noteRolloutLocked(p.epoch, have, "failed", err)
		return nil, err
	}
	if err := atomicfile.WriteFile(s.cfg.CorpusPath, func(w io.Writer) error {
		_, err := w.Write(p.data)
		return err
	}); err != nil {
		s.noteErrLocked(err)
		s.noteRolloutLocked(p.epoch, p.corpus.FingerprintString(), "failed", err)
		return nil, &ReloadError{Path: s.cfg.CorpusPath, Err: err}
	}
	snap := &snapshot{
		corpus:     p.corpus,
		source:     s.cfg.CorpusPath,
		generation: s.generation.Add(1),
		loadedAt:   time.Now(),
	}
	if old := s.state.Swap(snap); old != nil {
		s.prev.Store(old)
	}
	s.prepared = nil
	s.stats.commits.Add(1)
	s.noteRolloutLocked(p.epoch, snap.corpus.FingerprintString(), "committed", nil)
	return snap, nil
}

// AbortPrepared drops the side buffer and reports whether one was held.
// Aborting is idempotent and never touches serving state — it is the
// safe answer to any rollout that went wrong anywhere in the cluster.
func (s *Server) AbortPrepared() bool {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	dropped := s.prepared != nil
	if dropped {
		s.noteRolloutLocked(s.prepared.epoch, s.prepared.corpus.FingerprintString(), "aborted", nil)
	}
	s.prepared = nil
	if dropped {
		s.stats.aborts.Add(1)
	}
	return dropped
}

// noteErrLocked records the most recent reload/prepare/commit failure
// for /-/status. Callers hold reloadMu.
func (s *Server) noteErrLocked(err error) {
	s.lastErr = err.Error()
	s.lastErrAt = time.Now()
}

// noteRolloutLocked records how the last rollout that touched this node
// ended. Callers hold reloadMu.
func (s *Server) noteRolloutLocked(epoch uint64, fp, outcome string, err error) {
	o := &RolloutOutcome{Epoch: epoch, Fingerprint: fp, Outcome: outcome, At: time.Now()}
	if err != nil {
		o.Error = err.Error()
	}
	s.lastRollout = o
}

// RolloutOutcome is how the last rollout epoch that touched this node
// ended. Its absence from /-/status means no rollout ever reached the
// node — operators and the anti-entropy sweep can tell "never rolled
// out" from "rolled out and aborted", which a bare fingerprint cannot.
type RolloutOutcome struct {
	// Epoch is the coordinator's rollout epoch (0 when the prepare was
	// driven without one, e.g. a direct node-level call).
	Epoch uint64 `json:"epoch"`
	// Fingerprint is the target corpus of that epoch, when it was known
	// by the time the outcome was recorded.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Outcome is "committed", "aborted", or "failed".
	Outcome string `json:"outcome"`
	// Error carries the failure when Outcome is "failed".
	Error string    `json:"error,omitempty"`
	At    time.Time `json:"at"`
}

// NodeStatus is the /-/status document: the node-state introspection
// surface the cluster router (and operators) poll instead of scraping
// response headers. Everything the rollout protocol proves through
// X-Hoiho-Corpus/X-Hoiho-Generation is visible here at rest, plus the
// side-buffer state and the last reload error.
type NodeStatus struct {
	Generation  uint64    `json:"generation"`
	Fingerprint string    `json:"fingerprint"`
	NCs         int       `json:"ncs"`
	Source      string    `json:"source"`
	LoadedAt    time.Time `json:"loaded_at"`
	Draining    bool      `json:"draining"`

	PreparedFingerprint string    `json:"prepared_fingerprint,omitempty"`
	PreparedAt          time.Time `json:"prepared_at"`
	PreparedGeneration  uint64    `json:"prepared_generation,omitempty"`

	LastReloadError string    `json:"last_reload_error,omitempty"`
	LastReloadAt    time.Time `json:"last_reload_at"`

	// LastRollout is absent until a rollout touches this node.
	LastRollout *RolloutOutcome `json:"last_rollout,omitempty"`

	Reloads        uint64 `json:"reloads"`
	ReloadFailures uint64 `json:"reload_failures"`
	Rollbacks      uint64 `json:"rollbacks"`
	Prepares       uint64 `json:"prepares"`
	Commits        uint64 `json:"commits"`
	Aborts         uint64 `json:"aborts"`
}

// NodeStatusNow assembles the current NodeStatus document.
func (s *Server) NodeStatusNow() NodeStatus {
	st := NodeStatus{
		Draining:       s.Draining(),
		Reloads:        s.stats.reloads.Load(),
		ReloadFailures: s.stats.reloadFailures.Load(),
		Rollbacks:      s.stats.rollbacks.Load(),
		Prepares:       s.stats.prepares.Load(),
		Commits:        s.stats.commits.Load(),
		Aborts:         s.stats.aborts.Load(),
	}
	if snap := s.state.Load(); snap != nil {
		st.Generation = snap.generation
		st.Fingerprint = snap.corpus.FingerprintString()
		st.NCs = snap.corpus.Len()
		st.Source = snap.source
		st.LoadedAt = snap.loadedAt
	}
	s.reloadMu.Lock()
	if s.prepared != nil {
		st.PreparedFingerprint = s.prepared.corpus.FingerprintString()
		st.PreparedAt = s.prepared.at
		st.PreparedGeneration = s.prepared.gen
	}
	st.LastReloadError = s.lastErr
	st.LastReloadAt = s.lastErrAt
	if s.lastRollout != nil {
		o := *s.lastRollout
		st.LastRollout = &o
	}
	s.reloadMu.Unlock()
	return st
}

func (s *Server) handleNodeStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.NodeStatusNow())
}

// handlePrepare stages the corpus (or HBD delta) carried in the request
// body. The ack reuses the corpus headers as proof: X-Hoiho-Corpus is
// the PREPARED fingerprint (what this node would publish),
// X-Hoiho-Generation the serving generation it would supersede. A delta
// whose base is not the live corpus nacks 409 with the
// X-Hoiho-Rollout-Nack: base-mismatch header, the coordinator's cue to
// resend the full corpus to this node only.
func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxRolloutBytes+1))
	if err != nil {
		http.Error(w, "serve: reading rollout body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(data)) > maxRolloutBytes {
		http.Error(w, "serve: rollout corpus exceeds byte cap", http.StatusRequestEntityTooLarge)
		return
	}
	epoch, _ := strconv.ParseUint(r.URL.Query().Get("epoch"), 10, 64)
	fp, gen, err := s.PrepareCorpus(data, epoch)
	if err != nil {
		s.logf("rollout prepare rejected: %v", err)
		if errors.Is(err, ErrBaseMismatch) {
			w.Header().Set("X-Hoiho-Rollout-Nack", "base-mismatch")
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	s.logf("rollout prepare: corpus %s staged over generation %d", fp, gen)
	s.ackPrepared(w, fp, gen)
}

// handleValidate re-acks the side buffer without changing anything.
func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	fp, gen, err := s.ValidatePrepared()
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.ackPrepared(w, fp, gen)
}

// handleCommit publishes the side buffer if its fingerprint matches the
// coordinator's ?fingerprint= expectation.
func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	snap, err := s.CommitPrepared(r.URL.Query().Get("fingerprint"))
	if err != nil {
		s.logf("rollout commit refused: %v", err)
		code := http.StatusConflict
		var re *ReloadError
		if errors.As(err, &re) {
			code = http.StatusInternalServerError // persistence failure
		}
		http.Error(w, err.Error(), code)
		return
	}
	s.logf("rollout commit: generation %d, corpus %s", snap.generation, snap.corpus.FingerprintString())
	stamp(w, snap)
	writeJSON(w, http.StatusOK, s.snapshotStatus(snap))
}

func (s *Server) handleAbort(w http.ResponseWriter, r *http.Request) {
	dropped := s.AbortPrepared()
	if dropped {
		s.logf("rollout abort: prepared corpus dropped")
	}
	writeJSON(w, http.StatusOK, map[string]bool{"aborted": dropped})
}

// ackPrepared stamps a prepare/validate ack with the side-buffer
// identity headers.
func (s *Server) ackPrepared(w http.ResponseWriter, fp string, gen uint64) {
	w.Header().Set("X-Hoiho-Corpus", fp)
	w.Header().Set("X-Hoiho-Generation", strconv.FormatUint(gen, 10))
	writeJSON(w, http.StatusOK, map[string]any{
		"prepared_fingerprint": fp,
		"generation":           gen,
	})
}

// maxRolloutBytes caps a shipped rollout corpus, matching extract.Load's
// own input cap so anything prepare accepts, Load can read.
const maxRolloutBytes = 64 << 20
