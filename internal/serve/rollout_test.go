package serve

// Node-side rollout protocol tests: the side buffer's lifecycle
// (prepare → validate → commit/abort), its staleness and mismatch
// guards, the /-/status introspection surface, and the jittered
// Retry-After hint.

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestPrepareValidateCommit(t *testing.T) {
	s, path := newTestServer(t, nil)
	h := s.Handler()
	fpFirst := fingerprintOf(t, "first")
	fpSecond := fingerprintOf(t, "second")

	// Prepare stages the new corpus without serving it.
	w := doReq(t, h, "POST", "/-/rollout/prepare", corpusJSON("second"))
	if w.Code != 200 {
		t.Fatalf("prepare = %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Hoiho-Corpus"); got != fpSecond {
		t.Errorf("prepare ack fingerprint %s, want %s", got, fpSecond)
	}
	if got := w.Header().Get("X-Hoiho-Generation"); got != "1" {
		t.Errorf("prepare ack generation %s, want 1", got)
	}
	if st := s.StatusNow(); st.Fingerprint != fpFirst {
		t.Errorf("prepare must not change the serving corpus; serving %s", st.Fingerprint)
	}

	// Validate re-acks the same identity.
	w = doReq(t, h, "POST", "/-/rollout/validate", "")
	if w.Code != 200 || w.Header().Get("X-Hoiho-Corpus") != fpSecond {
		t.Fatalf("validate = %d, fp %s", w.Code, w.Header().Get("X-Hoiho-Corpus"))
	}

	// Commit publishes and persists.
	w = doReq(t, h, "POST", "/-/rollout/commit?fingerprint="+fpSecond, "")
	if w.Code != 200 {
		t.Fatalf("commit = %d: %s", w.Code, w.Body.String())
	}
	st := s.NodeStatusNow()
	if st.Fingerprint != fpSecond || st.Generation != 2 {
		t.Errorf("after commit: fp %s gen %d, want %s gen 2", st.Fingerprint, st.Generation, fpSecond)
	}
	if st.PreparedFingerprint != "" {
		t.Error("commit must clear the side buffer")
	}
	// The shipped bytes were persisted over the corpus path: a reload
	// from disk keeps the committed corpus.
	if _, err := s.Reload(context.Background()); err != nil {
		t.Fatalf("post-commit reload: %v", err)
	}
	if st := s.StatusNow(); st.Fingerprint != fpSecond {
		t.Errorf("reload from disk serves %s, want the persisted %s", st.Fingerprint, fpSecond)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != corpusJSON("second") {
		t.Error("corpus path does not hold the committed bytes")
	}
}

func TestPrepareRejectsCorrupt(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := s.Handler()
	w := doReq(t, h, "POST", "/-/rollout/prepare", "{not a corpus")
	if w.Code != 422 {
		t.Fatalf("corrupt prepare = %d, want 422", w.Code)
	}
	st := s.NodeStatusNow()
	if st.PreparedFingerprint != "" {
		t.Error("a rejected prepare must not stage anything")
	}
	if st.LastReloadError == "" {
		t.Error("/-/status must surface the prepare failure")
	}
	if st.ReloadFailures != 1 {
		t.Errorf("reload_failures = %d, want 1", st.ReloadFailures)
	}
}

func TestValidateAndCommitWithoutPrepare(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := s.Handler()
	if w := doReq(t, h, "POST", "/-/rollout/validate", ""); w.Code != 409 {
		t.Errorf("validate without prepare = %d, want 409", w.Code)
	}
	if w := doReq(t, h, "POST", "/-/rollout/commit", ""); w.Code != 409 {
		t.Errorf("commit without prepare = %d, want 409", w.Code)
	}
	if _, _, err := s.ValidatePrepared(); !errors.Is(err, ErrNoPrepared) {
		t.Errorf("ValidatePrepared = %v, want ErrNoPrepared", err)
	}
}

func TestCommitFingerprintMismatch(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := s.Handler()
	fpFirst := fingerprintOf(t, "first")
	if w := doReq(t, h, "POST", "/-/rollout/prepare", corpusJSON("second")); w.Code != 200 {
		t.Fatal("prepare failed")
	}
	w := doReq(t, h, "POST", "/-/rollout/commit?fingerprint=deadbeefdeadbeef", "")
	if w.Code != 409 {
		t.Fatalf("mismatched commit = %d, want 409", w.Code)
	}
	if !strings.Contains(w.Body.String(), "mismatch") {
		t.Errorf("mismatch body = %q", w.Body.String())
	}
	if st := s.StatusNow(); st.Fingerprint != fpFirst {
		t.Error("a refused commit must not publish")
	}
	var mm *CommitMismatchError
	if _, err := s.CommitPrepared("deadbeefdeadbeef"); !errors.As(err, &mm) {
		t.Errorf("CommitPrepared = %v, want a *CommitMismatchError", err)
	}
}

func TestPreparedStaleAfterReload(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := s.Handler()
	if w := doReq(t, h, "POST", "/-/rollout/prepare", corpusJSON("second")); w.Code != 200 {
		t.Fatal("prepare failed")
	}
	// A reload slips into the epoch: the serving generation moves.
	if _, err := s.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}
	if w := doReq(t, h, "POST", "/-/rollout/validate", ""); w.Code != 409 {
		t.Errorf("stale validate = %d, want 409", w.Code)
	}
	if w := doReq(t, h, "POST", "/-/rollout/commit", ""); w.Code != 409 {
		t.Errorf("stale commit = %d, want 409", w.Code)
	}
	if _, _, err := s.ValidatePrepared(); !errors.Is(err, ErrPreparedStale) {
		t.Errorf("ValidatePrepared = %v, want ErrPreparedStale", err)
	}
}

func TestAbortIdempotent(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := s.Handler()
	if w := doReq(t, h, "POST", "/-/rollout/prepare", corpusJSON("second")); w.Code != 200 {
		t.Fatal("prepare failed")
	}
	w := doReq(t, h, "POST", "/-/rollout/abort", "")
	if w.Code != 200 || !strings.Contains(w.Body.String(), "true") {
		t.Errorf("abort = %d %q, want dropped=true", w.Code, w.Body.String())
	}
	w = doReq(t, h, "POST", "/-/rollout/abort", "")
	if w.Code != 200 || !strings.Contains(w.Body.String(), "false") {
		t.Errorf("second abort = %d %q, want dropped=false", w.Code, w.Body.String())
	}
	if w := doReq(t, h, "POST", "/-/rollout/commit", ""); w.Code != 409 {
		t.Errorf("commit after abort = %d, want 409", w.Code)
	}
	st := s.NodeStatusNow()
	if st.Prepares != 1 || st.Aborts != 1 {
		t.Errorf("counters prepares=%d aborts=%d, want 1/1", st.Prepares, st.Aborts)
	}
}

func TestNodeStatusEndpoint(t *testing.T) {
	s, path := newTestServer(t, nil)
	h := s.Handler()
	fpFirst := fingerprintOf(t, "first")

	w := doReq(t, h, "GET", "/-/status", "")
	if w.Code != 200 {
		t.Fatalf("GET /-/status = %d", w.Code)
	}
	var st NodeStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Fingerprint != fpFirst || st.Generation != 1 || st.NCs != nSuffixes {
		t.Errorf("status = %+v", st)
	}
	if st.LastReloadError != "" {
		t.Errorf("fresh server reports a reload error: %q", st.LastReloadError)
	}

	// Break the corpus file; the failed reload must surface in status
	// while the old corpus keeps serving.
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if w := doReq(t, h, "POST", "/-/reload", ""); w.Code != 422 {
		t.Fatalf("reload of corrupt file = %d, want 422", w.Code)
	}
	w = doReq(t, h, "GET", "/-/status", "")
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.LastReloadError == "" || st.LastReloadAt.IsZero() {
		t.Error("/-/status must carry the last reload error and its time")
	}
	if st.Fingerprint != fpFirst || st.ReloadFailures != 1 {
		t.Errorf("after failed reload: fp %s failures %d", st.Fingerprint, st.ReloadFailures)
	}
}

// TestRetryAfterJitterSpread: the admission gate's backoff hint spreads
// across [base, 2*base] instead of synchronizing every shed client on
// one instant.
func TestRetryAfterJitterSpread(t *testing.T) {
	distinct := map[string]bool{}
	for i := 0; i < 64; i++ {
		v := retryAfterSeconds(3 * time.Second)
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("Retry-After %q is not an integer", v)
		}
		if n < 3 || n > 6 {
			t.Fatalf("Retry-After %d outside [3, 6]", n)
		}
		distinct[v] = true
	}
	if len(distinct) < 3 {
		t.Errorf("64 hints collapsed to %d distinct value(s)", len(distinct))
	}
	// Sub-second budgets still round up to at least one second.
	if v := retryAfterSeconds(10 * time.Millisecond); v < "1" {
		t.Errorf("tiny budget hint = %q", v)
	}
}
