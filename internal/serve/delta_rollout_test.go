package serve

// Delta-aware rollout prepare: an HBD patch applies against the live
// corpus into the side buffer, a wrong-base patch nacks with the typed
// base-mismatch signal (and the header the coordinator keys its
// full-corpus fallback on), and every outcome lands in /-/status's
// last_rollout so "never rolled out" and "rolled back" are
// distinguishable at rest.

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"hoiho/internal/corpusbin"
	"hoiho/internal/extract"
)

// variantCorpus loads a corpusJSON variant the way the server does.
func variantCorpus(t testing.TB, variant string) *extract.Corpus {
	t.Helper()
	c, err := extract.Load(strings.NewReader(corpusJSON(variant)))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// variantDelta diffs two corpusJSON variants into an HBD patch.
func variantDelta(t testing.TB, from, to string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := extract.Diff(variantCorpus(t, from), variantCorpus(t, to), &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPrepareDeltaCommits(t *testing.T) {
	s, path := newTestServer(t, nil)
	h := s.Handler()
	fpSecond := fingerprintOf(t, "second")
	delta := variantDelta(t, "first", "second")

	w := doReq(t, h, "POST", "/-/rollout/prepare?epoch=7", string(delta))
	if w.Code != 200 {
		t.Fatalf("delta prepare = %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Hoiho-Corpus"); got != fpSecond {
		t.Errorf("delta prepare ack fingerprint %s, want %s", got, fpSecond)
	}
	if w = doReq(t, h, "POST", "/-/rollout/commit?fingerprint="+fpSecond, ""); w.Code != 200 {
		t.Fatalf("commit = %d: %s", w.Code, w.Body.String())
	}
	st := s.NodeStatusNow()
	if st.Fingerprint != fpSecond || st.Generation != 2 {
		t.Errorf("after delta commit: fp %s gen %d, want %s gen 2", st.Fingerprint, st.Generation, fpSecond)
	}
	if st.LastRollout == nil {
		t.Fatal("committed rollout missing from /-/status")
	}
	if st.LastRollout.Epoch != 7 || st.LastRollout.Outcome != "committed" || st.LastRollout.Fingerprint != fpSecond {
		t.Errorf("last_rollout = %+v, want epoch 7 committed %s", st.LastRollout, fpSecond)
	}
	// Commit persisted the complete patched corpus — never the patch —
	// so a restart (or reload) boots the committed generation.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !corpusbin.IsHBC(data) || corpusbin.IsHBD(data) {
		t.Fatal("corpus path does not hold a full HBC corpus after a delta commit")
	}
	if c, err := extract.LoadFile(path); err != nil || c.FingerprintString() != fpSecond {
		t.Fatalf("persisted corpus reloads as (%v, %v), want %s", c, err, fpSecond)
	}
}

func TestPrepareDeltaBaseMismatchNack(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := s.Handler()
	fpFirst := fingerprintOf(t, "first")

	// A patch chained from "second" cannot apply to a node on "first".
	w := doReq(t, h, "POST", "/-/rollout/prepare?epoch=3", string(variantDelta(t, "second", "first")))
	if w.Code != 409 {
		t.Fatalf("wrong-base delta prepare = %d, want 409", w.Code)
	}
	if got := w.Header().Get("X-Hoiho-Rollout-Nack"); got != "base-mismatch" {
		t.Errorf("nack header = %q, want base-mismatch", got)
	}
	st := s.NodeStatusNow()
	if st.Fingerprint != fpFirst || st.PreparedFingerprint != "" {
		t.Errorf("nacked delta changed node state: fp %s prepared %q", st.Fingerprint, st.PreparedFingerprint)
	}
	if st.LastRollout == nil || st.LastRollout.Outcome != "failed" || st.LastRollout.Epoch != 3 {
		t.Errorf("last_rollout = %+v, want a failed epoch-3 outcome", st.LastRollout)
	}
	// The coordinator's fallback — a full-corpus resend — succeeds.
	if w := doReq(t, h, "POST", "/-/rollout/prepare?epoch=3", corpusJSON("second")); w.Code != 200 {
		t.Fatalf("full-corpus fallback prepare = %d: %s", w.Code, w.Body.String())
	}
}

func TestPrepareDeltaCorruptFailsClosed(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := s.Handler()
	fpFirst := fingerprintOf(t, "first")
	delta := variantDelta(t, "first", "second")

	for _, i := range []int{8, len(delta) / 2, len(delta) - 1} {
		mut := append([]byte(nil), delta...)
		mut[i] ^= 0x04
		w := doReq(t, h, "POST", "/-/rollout/prepare", string(mut))
		if w.Code == 200 {
			t.Fatalf("corrupt delta (flip at %d) prepared successfully", i)
		}
	}
	w := doReq(t, h, "POST", "/-/rollout/prepare", string(delta[:len(delta)/3]))
	if w.Code == 200 {
		t.Fatal("truncated delta prepared successfully")
	}
	st := s.NodeStatusNow()
	if st.Fingerprint != fpFirst || st.Generation != 1 || st.PreparedFingerprint != "" {
		t.Errorf("corrupt deltas changed node state: %+v", st)
	}
}

func TestLastRolloutDistinguishesAbortFromNever(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := s.Handler()

	w := doReq(t, h, "GET", "/-/status", "")
	if strings.Contains(w.Body.String(), "last_rollout") {
		t.Fatal("fresh node must not report a last_rollout")
	}
	if w := doReq(t, h, "POST", "/-/rollout/prepare?epoch=12", corpusJSON("second")); w.Code != 200 {
		t.Fatal("prepare failed")
	}
	if w := doReq(t, h, "POST", "/-/rollout/abort", ""); w.Code != 200 {
		t.Fatal("abort failed")
	}
	w = doReq(t, h, "GET", "/-/status", "")
	var st NodeStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.LastRollout == nil || st.LastRollout.Outcome != "aborted" || st.LastRollout.Epoch != 12 {
		t.Fatalf("after abort: last_rollout = %+v, want an aborted epoch-12 outcome", st.LastRollout)
	}
	if st.LastRollout.Fingerprint != fingerprintOf(t, "second") {
		t.Errorf("aborted outcome fingerprint %s, want the target's", st.LastRollout.Fingerprint)
	}
}
