package serve

import (
	"context"
	"sync/atomic"
	"time"
)

// gate is the bounded admission queue in front of the extraction
// endpoints. At most `inflight` requests hold slots at once; at most
// `maxQueue` more may wait for a slot, and none waits longer than
// queueWait (or its own context deadline, whichever is tighter). Every
// request beyond those bounds is shed immediately — memory held per
// pending request is one goroutine and one queue ticket, so saturation
// degrades into fast 429s rather than an unbounded queue and OOM.
type gate struct {
	slots     chan struct{}
	queued    atomic.Int64
	maxQueue  int64
	queueWait time.Duration
}

func newGate(inflight, maxQueue int, queueWait time.Duration) *gate {
	return &gate{
		slots:     make(chan struct{}, inflight),
		maxQueue:  int64(maxQueue),
		queueWait: queueWait,
	}
}

// acquire claims an execution slot. It returns nil on admission; the
// caller must release() exactly once. Failure is one of the taxonomy
// errors: ErrQueueFull when the wait queue is at capacity or the
// request's deadline cannot survive any wait, ErrAdmissionTimeout when
// the bounded wait elapsed, or ctx.Err() when the request was cancelled
// while queued.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	// Saturated: try to queue. The ticket count is the only state a
	// shed request ever allocates.
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		return ErrQueueFull
	}
	defer g.queued.Add(-1)
	// Deadline-aware wait: never queue past the request's own deadline —
	// serving a request after its client gave up is wasted work.
	wait := g.queueWait
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < wait {
			wait = rem
		}
	}
	if wait <= 0 {
		return ErrQueueFull
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-t.C:
		return ErrAdmissionTimeout
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot claimed by a successful acquire.
func (g *gate) release() { <-g.slots }

// inflight returns how many admitted requests currently hold slots.
func (g *gate) inflight() int { return len(g.slots) }

// waiting returns how many requests are queued for admission.
func (g *gate) waiting() int64 { return g.queued.Load() }
