package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// The serve error taxonomy. Every failure the daemon can produce is one
// of these sentinel or wrapper types, and each wrapper implements Unwrap,
// so callers (handlers, the daemon's main, tests) classify outcomes with
// errors.Is/errors.As — never by string matching — and can tell a blown
// request deadline (context.DeadlineExceeded) apart from saturation or a
// poisoned corpus file.
var (
	// ErrDraining is returned to requests arriving after drain began:
	// the process is shutting down and admits no new work.
	ErrDraining = errors.New("serve: draining: not admitting new requests")
	// ErrQueueFull is the load-shed signal: the admission queue is at
	// capacity (or queueing is pointless because the request's deadline
	// cannot survive the wait), so the request is rejected immediately.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrAdmissionTimeout is the slow-shed signal: the request queued
	// for admission but no slot freed within its allowed wait.
	ErrAdmissionTimeout = errors.New("serve: timed out waiting for admission")
	// ErrNoCorpus means no corpus has ever been loaded; the server is
	// alive but cannot extract.
	ErrNoCorpus = errors.New("serve: no corpus loaded")
	// ErrNoRollback means a rollback was requested but no previous
	// corpus snapshot is retained.
	ErrNoRollback = errors.New("serve: no previous corpus to roll back to")
	// ErrNoPrepared means a rollout validate/commit arrived with no
	// prepared corpus in the side buffer — the prepare phase never
	// reached this node, or an abort already cleared it.
	ErrNoPrepared = errors.New("serve: no prepared corpus (rollout prepare has not run)")
	// ErrPreparedStale means the serving generation moved between
	// prepare and commit (a reload or rollback slipped into the rollout
	// epoch), so the prepared corpus no longer supersedes what it was
	// validated against. The coordinator must restart the rollout.
	ErrPreparedStale = errors.New("serve: prepared corpus is stale: serving generation changed since prepare")
	// ErrBaseMismatch means a rollout prepare shipped an HBD delta whose
	// base fingerprint is not this node's live corpus — the node diverged
	// from what the coordinator believed it was serving (or holds no
	// corpus at all). The prepare is nacked without staging anything; the
	// coordinator degrades gracefully by resending the full corpus to
	// just this node.
	ErrBaseMismatch = errors.New("serve: rollout delta base mismatch: live corpus is not the delta's base")
)

// CommitMismatchError is a rollout commit whose expected fingerprint
// does not match the prepared corpus — the cluster-wide validate phase
// and this node disagree about what is about to be published, so the
// commit is refused and the rollout must abort.
type CommitMismatchError struct {
	// Want is the fingerprint the coordinator expected to commit.
	Want string
	// Have is the fingerprint of the corpus actually prepared here.
	Have string
}

func (e *CommitMismatchError) Error() string {
	return fmt.Sprintf("serve: commit fingerprint mismatch: coordinator wants %s, prepared %s", e.Want, e.Have)
}

// ReloadError is a failed corpus reload: the candidate file could not be
// read or did not validate. The previous corpus is untouched and keeps
// serving — a ReloadError never degrades the running daemon.
type ReloadError struct {
	// Path is the corpus file that was rejected.
	Path string
	// Err is the underlying load/validation failure.
	Err error
}

func (e *ReloadError) Error() string {
	return fmt.Sprintf("serve: reload %s: %v", e.Path, e.Err)
}

// Unwrap exposes the load failure to errors.Is/As.
func (e *ReloadError) Unwrap() error { return e.Err }

// shed reports whether err is a load-shedding rejection — the class of
// failure a well-behaved client should retry after backing off.
func shed(err error) bool {
	return errors.Is(err, ErrQueueFull) || errors.Is(err, ErrAdmissionTimeout) ||
		errors.Is(err, ErrDraining)
}

// httpError writes err as the appropriate HTTP failure. Shed errors
// become 429/503 with a Retry-After hint; deadline expiry becomes 504;
// everything else is a 500. The mapping is driven entirely by
// errors.Is, so wrapped errors classify the same as bare sentinels.
func httpError(w http.ResponseWriter, err error, retryAfter time.Duration) {
	switch {
	case errors.Is(err, ErrDraining), errors.Is(err, ErrNoCorpus):
		w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrAdmissionTimeout):
		w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "serve: request deadline exceeded", http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		// The client went away; the status is a formality.
		http.Error(w, "serve: request canceled", http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// retrySeq drives the deterministic Retry-After jitter: each rejection
// advances the sequence, and a multiplicative hash of the sequence
// number spreads consecutive rejections across the window. No RNG, no
// wall clock — the spread is reproducible under test and costs one
// atomic add per shed request.
var retrySeq atomic.Uint64

// retryAfterSeconds renders d as a whole-second Retry-After hint with
// jitter: a value in [base, 2*base] where base is d rounded up to at
// least 1s. Shed responses go out to many clients in the same overload
// instant; if they all carried the same hint, they would return in the
// same instant too and re-saturate a node that was just recovering.
// Spreading the hint across a window turns the synchronized thundering
// herd into a trickle the admission gate can absorb.
func retryAfterSeconds(d time.Duration) string {
	base := int((d + time.Second - 1) / time.Second)
	if base < 1 {
		base = 1
	}
	// Fibonacci-hash the sequence number into [0, base+1): the odd
	// multiplier walks the full 64-bit space, so consecutive rejections
	// land on well-spread offsets.
	x := retrySeq.Add(1) * 0x9e3779b97f4a7c15
	jitter := int((x >> 33) % uint64(base+1))
	return strconv.Itoa(base + jitter)
}
