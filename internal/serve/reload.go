package serve

import (
	"context"
	"sync/atomic"
	"time"

	"hoiho/internal/extract"
	"hoiho/internal/faultinject"
)

// snapshot is one immutable, fully validated corpus generation. The
// server publishes snapshots through an atomic pointer: a request loads
// the pointer exactly once and serves entirely from that snapshot, so a
// concurrent swap can never mix two corpora inside one response.
type snapshot struct {
	corpus *extract.Corpus
	// source is the file the corpus was loaded from.
	source string
	// generation counts successful publishes since boot, starting at 1.
	generation uint64
	// loadedAt is when this snapshot was published.
	loadedAt time.Time
}

// Reload loads a candidate corpus from the configured path into a side
// buffer, validates it (the hardened extract.Load refuses truncated,
// oversized, versionless, or empty corpora), and only then atomically
// publishes it. The previous snapshot is retained for Rollback. On any
// failure the running corpus is untouched — a poisoned file on disk
// costs a logged error, never an outage.
//
// Reloads are serialized; concurrent triggers (SIGHUP racing the admin
// endpoint) queue rather than interleave.
func (s *Server) Reload(ctx context.Context) (*snapshot, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if err := faultinject.Fire(ctx, faultinject.StageServeReload, s.cfg.CorpusPath); err != nil {
		s.stats.reloadFailures.Add(1)
		s.noteErrLocked(err)
		return nil, &ReloadError{Path: s.cfg.CorpusPath, Err: err}
	}
	corpus, err := extract.LoadFile(s.cfg.CorpusPath, s.corpusOpts...)
	if err != nil {
		s.stats.reloadFailures.Add(1)
		s.noteErrLocked(err)
		return nil, &ReloadError{Path: s.cfg.CorpusPath, Err: err}
	}
	snap := &snapshot{
		corpus:     corpus,
		source:     s.cfg.CorpusPath,
		generation: s.generation.Add(1),
		loadedAt:   time.Now(),
	}
	if old := s.state.Swap(snap); old != nil {
		s.prev.Store(old)
	}
	s.stats.reloads.Add(1)
	return snap, nil
}

// Rollback republishes the previous snapshot — the instant escape hatch
// when a reload validated but turned out to be semantically wrong (a
// stale or mislearned corpus). The rolled-back-from snapshot becomes
// the new "previous", so a second rollback swaps forward again.
func (s *Server) Rollback() (*snapshot, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	prev := s.prev.Load()
	if prev == nil {
		return nil, ErrNoRollback
	}
	// Republish under a fresh generation number so consumers watching
	// X-Hoiho-Generation see rollback as a distinct transition.
	snap := &snapshot{
		corpus:     prev.corpus,
		source:     prev.source,
		generation: s.generation.Add(1),
		loadedAt:   time.Now(),
	}
	if old := s.state.Swap(snap); old != nil {
		s.prev.Store(old)
	}
	s.stats.rollbacks.Add(1)
	return snap, nil
}

// counters is the daemon's monotonic stats block, all atomics so the
// hot path never takes a lock to account for itself.
type counters struct {
	requests       atomic.Uint64 // extraction requests received
	served         atomic.Uint64 // extraction responses written (found or not)
	found          atomic.Uint64 // extractions that produced an ASN
	shed           atomic.Uint64 // requests rejected by admission control
	drained        atomic.Uint64 // requests rejected because draining
	deadline       atomic.Uint64 // requests that blew their deadline in-handler
	panics         atomic.Uint64 // handler panics converted to 500s
	reloads        atomic.Uint64 // successful corpus publishes via Reload
	reloadFailures atomic.Uint64 // rejected reload attempts
	rollbacks      atomic.Uint64 // successful rollbacks
	prepares       atomic.Uint64 // rollout corpora staged into the side buffer
	commits        atomic.Uint64 // rollout side buffers published
	aborts         atomic.Uint64 // rollout side buffers dropped
}
