// Package serve is hoiho's long-running extraction daemon core: it
// serves hostname→ASN lookups from a learned corpus over HTTP with the
// failure behavior a production deployment needs. The paper's end
// product is a corpus that downstream consumers query continuously
// (bdrmapIT's router-ownership pass in §5, the OpenINTEL-scale
// application in §7); this package turns the batch engine into a
// service that stays up.
//
// Three guarantees define the package:
//
//   - Hot reload: a new corpus is loaded into a side buffer, validated
//     by the hardened extract.Load, and published with one atomic
//     pointer swap. Requests read the pointer exactly once, so a swap
//     mid-flight can never mix two corpora in one response; a corpus
//     that fails validation is rejected while the old one keeps
//     serving, and the previous snapshot is retained for Rollback.
//
//   - Load shedding: a bounded admission gate (at most MaxInflight
//     executing + MaxQueue waiting, no wait longer than QueueWait or
//     the request's own deadline) turns overload into prompt 429s with
//     Retry-After instead of an unbounded queue.
//
//   - Graceful lifecycle: /healthz and /readyz separate liveness from
//     readiness, handler panics become 500s without killing the
//     process (the serving twin of the learner's per-suffix
//     quarantine), and Drain stops admission, lets admitted requests
//     finish under a deadline, and reports completion for a clean
//     exit 0.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hoiho/internal/core"
	"hoiho/internal/extract"
	"hoiho/internal/faultinject"
)

// Config sizes the daemon. The zero value of every field gets a
// production-sane default from New.
type Config struct {
	// CorpusPath is the saved corpus JSON (the output of `hoiho -save`)
	// loaded at boot and on every reload.
	CorpusPath string
	// Classes restricts which conventions serve, mirroring
	// `hoiho -apply -classes`: "good", "usable" (default), or "all".
	Classes string
	// MaxInflight bounds concurrently executing extraction requests
	// (default 64).
	MaxInflight int
	// MaxQueue bounds requests waiting for admission beyond MaxInflight
	// (default 256).
	MaxQueue int
	// QueueWait bounds how long a request may wait for admission
	// (default 100ms).
	QueueWait time.Duration
	// RequestTimeout is the per-request deadline applied to extraction
	// endpoints (default 5s).
	RequestTimeout time.Duration
	// MaxBatchBytes caps a POST /extract body (default 8 MiB).
	MaxBatchBytes int64
	// Log receives reload/drain/panic events; nil discards them.
	Log *log.Logger
}

// Server is the daemon core: an atomically swappable corpus snapshot
// behind admission control and lifecycle management. Create one with
// New, mount Handler on an http.Server, and call Drain before exit.
type Server struct {
	cfg        Config
	corpusOpts []extract.Option

	state      atomic.Pointer[snapshot] // currently serving corpus
	prev       atomic.Pointer[snapshot] // rollback target
	generation atomic.Uint64
	reloadMu   sync.Mutex // serializes Reload/Rollback/rollout phases

	// Rollout side buffer, last-failure record, and last rollout
	// outcome, guarded by reloadMu.
	prepared    *preparedCorpus
	lastErr     string
	lastErrAt   time.Time
	lastRollout *RolloutOutcome

	gate  *gate
	stats counters

	drainMu  sync.RWMutex
	draining bool
	inflight sync.WaitGroup // admitted extraction requests
}

// New builds a Server, applies Config defaults, and loads the initial
// corpus from cfg.CorpusPath — boot fails fast on a missing or invalid
// corpus rather than coming up unready.
func New(cfg Config) (*Server, error) {
	if cfg.CorpusPath == "" {
		return nil, fmt.Errorf("serve: Config.CorpusPath is required")
	}
	if cfg.Classes == "" {
		cfg.Classes = "usable"
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 256
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = 100 * time.Millisecond
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = 8 << 20
	}
	opts, err := classOptions(cfg.Classes)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		corpusOpts: opts,
		gate:       newGate(cfg.MaxInflight, cfg.MaxQueue, cfg.QueueWait),
	}
	if _, err := s.Reload(context.Background()); err != nil {
		return nil, err
	}
	return s, nil
}

// classOptions maps the -classes vocabulary onto extract options.
func classOptions(classes string) ([]extract.Option, error) {
	switch classes {
	case "all":
		return nil, nil
	case "usable":
		return []extract.Option{extract.UsableOnly()}, nil
	case "good":
		return []extract.Option{extract.MinClass(core.Good)}, nil
	default:
		return nil, fmt.Errorf("serve: unknown classes %q (want good, usable, or all)", classes)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// Handler returns the daemon's full HTTP surface. Extraction endpoints
// sit behind admission control and the per-request timeout; health and
// admin endpoints bypass both so they keep working under overload and
// during drain.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	mux.HandleFunc("GET /extract", s.extraction(s.handleExtract))
	mux.HandleFunc("POST /extract", s.extraction(s.handleExtractBatch))
	mux.HandleFunc("POST /-/reload", s.handleReload)
	mux.HandleFunc("POST /-/rollback", s.handleRollback)
	mux.HandleFunc("GET /-/status", s.handleNodeStatus)
	mux.HandleFunc("POST /-/rollout/prepare", s.handlePrepare)
	mux.HandleFunc("POST /-/rollout/validate", s.handleValidate)
	mux.HandleFunc("POST /-/rollout/commit", s.handleCommit)
	mux.HandleFunc("POST /-/rollout/abort", s.handleAbort)
	return s.recoverPanics(mux)
}

// recoverPanics converts a handler panic into a 500 while the process
// keeps serving every other request — the direct analog of the
// learner's per-suffix quarantine: one poisoned request must cost one
// response, not the daemon.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.stats.panics.Add(1)
				s.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				// Best effort: if the handler already wrote, this is a no-op.
				http.Error(w, "internal server error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// extraction wraps an extraction handler with the request lifecycle:
// drain gating, admission control, and the per-request deadline. The
// wrapped handler runs with a slot held and a context that expires.
func (s *Server) extraction(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.stats.requests.Add(1)
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		if !s.admit() {
			s.stats.drained.Add(1)
			httpError(w, ErrDraining, s.cfg.QueueWait)
			return
		}
		defer s.depart()
		if err := s.gate.acquire(ctx); err != nil {
			if shed(err) {
				s.stats.shed.Add(1)
			}
			if errors.Is(err, context.DeadlineExceeded) {
				s.stats.deadline.Add(1)
			}
			httpError(w, err, s.cfg.QueueWait)
			return
		}
		defer s.gate.release()
		h(w, r)
	}
}

// admit registers an extraction request with the drain tracker; false
// means the server is draining and the request must be rejected. The
// read lock pairs with Drain's write lock so no request can slip in
// between the drain flag flipping and the WaitGroup being waited on.
func (s *Server) admit() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

func (s *Server) depart() { s.inflight.Done() }

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// Drain is the graceful-shutdown entry point: it stops admitting
// extraction requests (readiness flips to 503 so load balancers pull
// the instance), then waits for every already-admitted request to
// finish. It returns nil when the daemon drained cleanly, or ctx's
// error when the deadline expired with requests still in flight.
// Draining is idempotent; later calls just wait again.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: the process is up and the mux is serving. Always 200 —
	// a draining or corpus-less daemon is alive, just not ready.
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		httpError(w, ErrDraining, s.cfg.QueueWait)
		return
	}
	if s.state.Load() == nil {
		httpError(w, ErrNoCorpus, s.cfg.QueueWait)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// extractResponse is the JSON body of a single extraction.
type extractResponse struct {
	Hostname string `json:"hostname"`
	Found    bool   `json:"found"`
	ASN      uint32 `json:"asn,omitempty"`
	Suffix   string `json:"suffix,omitempty"`
	Class    string `json:"class,omitempty"`
	Digits   string `json:"digits,omitempty"`
}

func toResponse(host string, m extract.Result) extractResponse {
	if !m.OK {
		return extractResponse{Hostname: host}
	}
	return extractResponse{
		Hostname: host,
		Found:    true,
		ASN:      uint32(m.ASN),
		Suffix:   m.Suffix,
		Class:    m.Class.String(),
		Digits:   m.Digits,
	}
}

// stamp marks the response with the exact corpus snapshot that produced
// it, so consumers (and the reload chaos tests) can detect mixed or
// misrouted responses across hot swaps.
func stamp(w http.ResponseWriter, snap *snapshot) {
	w.Header().Set("X-Hoiho-Corpus", snap.corpus.FingerprintString())
	w.Header().Set("X-Hoiho-Generation", fmt.Sprintf("%d", snap.generation))
}

func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	host := r.URL.Query().Get("host")
	if host == "" {
		http.Error(w, "serve: missing host query parameter", http.StatusBadRequest)
		return
	}
	snap := s.state.Load()
	if snap == nil {
		httpError(w, ErrNoCorpus, s.cfg.QueueWait)
		return
	}
	if err := faultinject.Fire(r.Context(), faultinject.StageServeRequest, host); err != nil {
		httpError(w, err, s.cfg.QueueWait)
		return
	}
	if err := r.Context().Err(); err != nil {
		s.stats.deadline.Add(1)
		httpError(w, err, s.cfg.QueueWait)
		return
	}
	m, ok := snap.corpus.Extract(r.Context(), host)
	s.stats.served.Add(1)
	if ok {
		s.stats.found.Add(1)
	}
	stamp(w, snap)
	writeJSON(w, http.StatusOK, toResponse(host, m))
}

// handleExtractBatch reads newline-separated hostnames (bounded by
// MaxBatchBytes) and returns one result per input line, in input
// order, all produced by a single corpus snapshot.
func (s *Server) handleExtractBatch(w http.ResponseWriter, r *http.Request) {
	snap := s.state.Load()
	if snap == nil {
		httpError(w, ErrNoCorpus, s.cfg.QueueWait)
		return
	}
	hosts, err := readHostLines(r, s.cfg.MaxBatchBytes)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := faultinject.Fire(r.Context(), faultinject.StageServeRequest, "batch"); err != nil {
		httpError(w, err, s.cfg.QueueWait)
		return
	}
	results, err := snap.corpus.ExtractBatch(r.Context(), hosts)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.stats.deadline.Add(1)
		}
		httpError(w, err, s.cfg.QueueWait)
		return
	}
	out := make([]extractResponse, len(results))
	for i, res := range results {
		out[i] = toResponse(hosts[i], res)
	}
	s.stats.served.Add(1)
	s.stats.found.Add(countFound(results))
	stamp(w, snap)
	writeJSON(w, http.StatusOK, out)
}

func countFound(results []extract.Result) uint64 {
	var n uint64
	for _, r := range results {
		if r.OK {
			n++
		}
	}
	return n
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	snap, err := s.Reload(r.Context())
	if err != nil {
		s.logf("reload rejected: %v", err)
		// The old corpus keeps serving; the reload failure is the
		// caller's problem, not the daemon's.
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	s.logf("reload: generation %d, %d NCs, corpus %s",
		snap.generation, snap.corpus.Len(), snap.corpus.FingerprintString())
	stamp(w, snap)
	writeJSON(w, http.StatusOK, s.snapshotStatus(snap))
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	snap, err := s.Rollback()
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.logf("rollback: generation %d, corpus %s", snap.generation, snap.corpus.FingerprintString())
	stamp(w, snap)
	writeJSON(w, http.StatusOK, s.snapshotStatus(snap))
}

// Status is the /statusz document: the serving snapshot's identity plus
// the daemon's monotonic counters.
type Status struct {
	Source      string    `json:"source"`
	Generation  uint64    `json:"generation"`
	Fingerprint string    `json:"fingerprint"`
	NCs         int       `json:"ncs"`
	LoadedAt    time.Time `json:"loaded_at"`

	Draining bool  `json:"draining"`
	Inflight int   `json:"inflight"`
	Queued   int64 `json:"queued"`

	Requests       uint64 `json:"requests"`
	Served         uint64 `json:"served"`
	Found          uint64 `json:"found"`
	Shed           uint64 `json:"shed"`
	Drained        uint64 `json:"drained"`
	Deadline       uint64 `json:"deadline"`
	Panics         uint64 `json:"panics"`
	Reloads        uint64 `json:"reloads"`
	ReloadFailures uint64 `json:"reload_failures"`
	Rollbacks      uint64 `json:"rollbacks"`
}

func (s *Server) snapshotStatus(snap *snapshot) Status {
	st := Status{
		Draining:       s.Draining(),
		Inflight:       s.gate.inflight(),
		Queued:         s.gate.waiting(),
		Requests:       s.stats.requests.Load(),
		Served:         s.stats.served.Load(),
		Found:          s.stats.found.Load(),
		Shed:           s.stats.shed.Load(),
		Drained:        s.stats.drained.Load(),
		Deadline:       s.stats.deadline.Load(),
		Panics:         s.stats.panics.Load(),
		Reloads:        s.stats.reloads.Load(),
		ReloadFailures: s.stats.reloadFailures.Load(),
		Rollbacks:      s.stats.rollbacks.Load(),
	}
	if snap != nil {
		st.Source = snap.source
		st.Generation = snap.generation
		st.Fingerprint = snap.corpus.FingerprintString()
		st.NCs = snap.corpus.Len()
		st.LoadedAt = snap.loadedAt
	}
	return st
}

// StatusNow returns the current Status document (the programmatic twin
// of GET /statusz).
func (s *Server) StatusNow() Status { return s.snapshotStatus(s.state.Load()) }

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatusNow())
}

// readHostLines parses a batch body: one hostname per line, blank
// lines skipped, total size bounded by maxBytes so a hostile client
// cannot buffer the daemon into an OOM.
func readHostLines(r *http.Request, maxBytes int64) ([]string, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBytes+1))
	if err != nil {
		return nil, fmt.Errorf("serve: reading batch body: %w", err)
	}
	if int64(len(body)) > maxBytes {
		return nil, fmt.Errorf("serve: batch body exceeds %d-byte cap", maxBytes)
	}
	var hosts []string
	for _, line := range strings.Split(string(body), "\n") {
		if h := strings.TrimSpace(line); h != "" {
			hosts = append(hosts, h)
		}
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("serve: batch body contains no hostnames")
	}
	return hosts, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
