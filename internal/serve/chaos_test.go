package serve

// Chaos tests for the daemon: the acceptance suite for PR 5's headline
// guarantees, run under -race.
//
//   - A hot reload under sustained concurrent load completes with zero
//     failed or misrouted requests: every response is a 200 whose ASN
//     matches the corpus its X-Hoiho-Corpus header claims produced it.
//   - A corrupt corpus reload is rejected while the old corpus keeps
//     serving.
//   - Drain finishes every admitted in-flight request (held in-handler
//     by injected stalls) and rejects late arrivals with 503.
//   - Saturation beyond the admission queue sheds promptly with 429 +
//     Retry-After — bounded queue, bounded memory, no hangs.
//
// Schedules are deterministic (seeded faultinject plans, probability 1)
// and the suites use the shared internal/leaktest check, so a failure
// replays exactly and a leaked handler goroutine is a test failure.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hoiho/internal/extract"
	"hoiho/internal/faultinject"
	"hoiho/internal/leaktest"
)

// chaosClient wraps an httptest.Server with response decoding.
type chaosClient struct {
	t  *testing.T
	ts *httptest.Server
}

type chaosResp struct {
	code        int
	fingerprint string
	retryAfter  string
	body        extractResponse
}

func (c *chaosClient) get(path string) chaosResp {
	resp, err := c.ts.Client().Get(c.ts.URL + path)
	if err != nil {
		c.t.Errorf("GET %s: %v", path, err)
		return chaosResp{code: -1}
	}
	defer resp.Body.Close()
	out := chaosResp{
		code:        resp.StatusCode,
		fingerprint: resp.Header.Get("X-Hoiho-Corpus"),
		retryAfter:  resp.Header.Get("Retry-After"),
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Errorf("GET %s: reading body: %v", path, err)
		return out
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out.body); err != nil {
			c.t.Errorf("GET %s: bad JSON %q: %v", path, raw, err)
		}
	}
	return out
}

func (c *chaosClient) post(path string) (int, string) {
	resp, err := c.ts.Client().Post(c.ts.URL+path, "text/plain", nil)
	if err != nil {
		c.t.Errorf("POST %s: %v", path, err)
		return -1, ""
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestChaosReloadUnderLoad is the headline: workers hammer single
// extractions while the corpus file is rewritten and hot-reloaded many
// times, alternating between the two variants. Every response must be a
// 200, and its ASN must be exactly what the corpus named in its
// X-Hoiho-Corpus header extracts — a response mixing two corpora, or
// produced by a half-swapped state, fails the matrix check.
func TestChaosReloadUnderLoad(t *testing.T) {
	defer leaktest.Check(t)()
	s, path := newTestServer(t, func(c *Config) {
		c.MaxInflight = 32
		c.MaxQueue = 128
		c.RequestTimeout = 10 * time.Second
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer ts.Client().CloseIdleConnections()
	cl := &chaosClient{t: t, ts: ts}

	fpFirst := fingerprintOf(t, "first")
	fpSecond := fingerprintOf(t, "second")

	const workers = 8
	const reloads = 20
	stop := make(chan struct{})
	type sample struct {
		host        string
		asn         uint32
		fingerprint string
		code        int
	}
	results := make([][]sample, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				a, b := rng.Intn(60000)+1, rng.Intn(60000)+1
				host := fmt.Sprintf("as%d-pod%d.serve%d.net", a, b, rng.Intn(nSuffixes))
				r := cl.get("/extract?host=" + host)
				results[w] = append(results[w], sample{
					host: host, asn: r.body.ASN, fingerprint: r.fingerprint, code: r.code,
				})
			}
		}(w)
	}

	// Reload repeatedly while the load runs, alternating variants. Each
	// iteration rewrites the file then reloads it through the admin
	// endpoint; odd iterations roll back instead, exercising both swap
	// paths under load.
	variant := "second"
	for i := 0; i < reloads; i++ {
		writeCorpus(t, path, variant)
		if code, body := cl.post("/-/reload"); code != http.StatusOK {
			t.Fatalf("reload %d: status %d body %q", i, code, body)
		}
		if variant == "second" {
			variant = "first"
		} else {
			variant = "second"
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	total := 0
	for w := range results {
		for _, smp := range results[w] {
			total++
			if smp.code != http.StatusOK {
				t.Fatalf("request for %s failed with status %d during reload", smp.host, smp.code)
			}
			var wantA, wantB int
			if _, err := fmt.Sscanf(smp.host, "as%d-pod%d.", &wantA, &wantB); err != nil {
				t.Fatalf("unparseable host %q", smp.host)
			}
			switch smp.fingerprint {
			case fpFirst:
				if smp.asn != uint32(wantA) {
					t.Fatalf("misrouted: %s served asn %d by first-variant corpus, want %d", smp.host, smp.asn, wantA)
				}
			case fpSecond:
				if smp.asn != uint32(wantB) {
					t.Fatalf("misrouted: %s served asn %d by second-variant corpus, want %d", smp.host, smp.asn, wantB)
				}
			default:
				t.Fatalf("response for %s stamped unknown corpus %q", smp.host, smp.fingerprint)
			}
		}
	}
	if total == 0 {
		t.Fatal("no requests completed during the reload storm")
	}
	if st := s.StatusNow(); st.Reloads != uint64(reloads)+1 { // +1 boot load
		t.Errorf("reloads = %d, want %d", st.Reloads, reloads+1)
	}
	t.Logf("verified %d responses across %d hot reloads", total, reloads)
}

// writeCorpusHBC writes the variant's corpus to path in the HBC binary
// form. The daemon's reload path sniffs format by content, so the same
// corpus path can alternate between JSON and HBC across reloads.
func writeCorpusHBC(t testing.TB, path, variant string) {
	t.Helper()
	c, err := extract.Load(strings.NewReader(corpusJSON(variant)))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SaveFileBinary(path); err != nil {
		t.Fatal(err)
	}
}

// TestChaosReloadAlternatingFormats is the PR-7 variant of the reload
// storm: 20 hot reloads under sustained load, alternating the on-disk
// corpus between the JSON and HBC binary forms (and between the two
// ASN-routing variants) every iteration. The HBC form of a corpus
// carries the same fingerprint as its JSON form, so the matrix check is
// unchanged: every response must be a 200 whose ASN is exactly what the
// corpus named in its X-Hoiho-Corpus header extracts, regardless of
// which serialization the serving corpus booted from.
func TestChaosReloadAlternatingFormats(t *testing.T) {
	defer leaktest.Check(t)()
	s, path := newTestServer(t, func(c *Config) {
		c.MaxInflight = 32
		c.MaxQueue = 128
		c.RequestTimeout = 10 * time.Second
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer ts.Client().CloseIdleConnections()
	cl := &chaosClient{t: t, ts: ts}

	fpFirst := fingerprintOf(t, "first")
	fpSecond := fingerprintOf(t, "second")

	const workers = 8
	const reloads = 20
	stop := make(chan struct{})
	type sample struct {
		host        string
		asn         uint32
		fingerprint string
		code        int
	}
	results := make([][]sample, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				a, b := rng.Intn(60000)+1, rng.Intn(60000)+1
				host := fmt.Sprintf("as%d-pod%d.serve%d.net", a, b, rng.Intn(nSuffixes))
				r := cl.get("/extract?host=" + host)
				results[w] = append(results[w], sample{
					host: host, asn: r.body.ASN, fingerprint: r.fingerprint, code: r.code,
				})
			}
		}(w)
	}

	variant := "second"
	for i := 0; i < reloads; i++ {
		if i%2 == 0 {
			writeCorpusHBC(t, path, variant)
		} else {
			writeCorpus(t, path, variant)
		}
		if code, body := cl.post("/-/reload"); code != http.StatusOK {
			t.Fatalf("reload %d: status %d body %q", i, code, body)
		}
		if variant == "second" {
			variant = "first"
		} else {
			variant = "second"
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	total := 0
	for w := range results {
		for _, smp := range results[w] {
			total++
			if smp.code != http.StatusOK {
				t.Fatalf("request for %s failed with status %d during reload", smp.host, smp.code)
			}
			var wantA, wantB int
			if _, err := fmt.Sscanf(smp.host, "as%d-pod%d.", &wantA, &wantB); err != nil {
				t.Fatalf("unparseable host %q", smp.host)
			}
			switch smp.fingerprint {
			case fpFirst:
				if smp.asn != uint32(wantA) {
					t.Fatalf("misrouted: %s served asn %d by first-variant corpus, want %d", smp.host, smp.asn, wantA)
				}
			case fpSecond:
				if smp.asn != uint32(wantB) {
					t.Fatalf("misrouted: %s served asn %d by second-variant corpus, want %d", smp.host, smp.asn, wantB)
				}
			default:
				t.Fatalf("response for %s stamped unknown corpus %q", smp.host, smp.fingerprint)
			}
		}
	}
	if total == 0 {
		t.Fatal("no requests completed during the reload storm")
	}
	if st := s.StatusNow(); st.Reloads != uint64(reloads)+1 { // +1 boot load
		t.Errorf("reloads = %d, want %d", st.Reloads, reloads+1)
	}
	t.Logf("verified %d responses across %d mixed-format hot reloads", total, reloads)
}

// TestChaosCorruptReloadKeepsServing drives both corrupt-file rejection
// and an injected reload fault while requests flow: the daemon must
// answer every request from the original corpus throughout.
func TestChaosCorruptReloadKeepsServing(t *testing.T) {
	defer leaktest.Check(t)()
	s, path := newTestServer(t, nil)
	// Activate after boot so the injected fault hits the admin-triggered
	// reload, not the initial load.
	plan := &faultinject.Plan{Seed: 7, Rules: []faultinject.Rule{{
		Stage: faultinject.StageServeReload,
		Kind:  faultinject.KindError, Prob: 1, Times: 1,
	}}}
	defer faultinject.Activate(plan)()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer ts.Client().CloseIdleConnections()
	cl := &chaosClient{t: t, ts: ts}
	fpFirst := fingerprintOf(t, "first")

	// First reload attempt dies on the injected fault (Times: 1)...
	writeCorpus(t, path, "second")
	if code, body := cl.post("/-/reload"); code != http.StatusUnprocessableEntity {
		t.Fatalf("injected-fault reload: status %d body %q, want 422", code, body)
	}
	// ...then a corrupt file is rejected by validation...
	if err := os.WriteFile(path, []byte(`{"version":99,"ncs":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _ := cl.post("/-/reload"); code != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt reload accepted: status %d", code)
	}
	// ...and through it all the boot corpus serves every request.
	for i := 0; i < 50; i++ {
		host := fmt.Sprintf("as%d-pod%d.serve%d.net", i+1, i+2, i%nSuffixes)
		r := cl.get("/extract?host=" + host)
		if r.code != http.StatusOK || r.fingerprint != fpFirst {
			t.Fatalf("request %d: status %d fingerprint %q, want 200 from original corpus", i, r.code, r.fingerprint)
		}
		if r.body.ASN != uint32(i+1) {
			t.Fatalf("request %d: asn %d, want %d", i, r.body.ASN, i+1)
		}
	}
	if st := s.StatusNow(); st.ReloadFailures != 2 || st.Generation != 1 {
		t.Errorf("stats = %d failures / generation %d, want 2 / 1", st.ReloadFailures, st.Generation)
	}
}

// TestChaosDrainFinishesInflight holds admitted requests in-handler with
// injected stalls, begins a drain, and requires every admitted request
// to complete 200 while post-drain arrivals get immediate 503s.
func TestChaosDrainFinishesInflight(t *testing.T) {
	defer leaktest.Check(t)()
	const stall = 300 * time.Millisecond
	const inflight = 6
	plan := &faultinject.Plan{Seed: 11, Rules: []faultinject.Rule{{
		Stage: faultinject.StageServeRequest,
		Kind:  faultinject.KindStall, Prob: 1, Stall: stall, Times: inflight,
	}}}
	defer faultinject.Activate(plan)()

	s, _ := newTestServer(t, func(c *Config) {
		c.MaxInflight = inflight
		c.RequestTimeout = 10 * time.Second
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer ts.Client().CloseIdleConnections()
	cl := &chaosClient{t: t, ts: ts}

	codes := make(chan int, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := cl.get(fmt.Sprintf("/extract?host=as%d-pod9.serve0.net", i+1))
			codes <- r.code
		}(i)
	}
	// Wait until every request is admitted and stalled in-handler, so
	// the drain below races real in-flight work.
	for plan.Fired(0) < inflight {
		time.Sleep(time.Millisecond)
	}

	drainStart := time.Now()
	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drainErr <- s.Drain(ctx)
	}()
	// Give drain a moment to flip the flag, then late arrivals bounce.
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	late := cl.get("/extract?host=as5-pod6.serve1.net")
	if late.code != http.StatusServiceUnavailable {
		t.Errorf("post-drain request: status %d, want 503", late.code)
	}
	if late.retryAfter == "" {
		t.Error("post-drain rejection carries no Retry-After")
	}

	if err := <-drainErr; err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
	if d := time.Since(drainStart); d < stall/2 {
		t.Errorf("drain returned in %v, before the stalled requests could have finished", d)
	}
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("admitted in-flight request finished with %d, want 200", code)
		}
	}
}

// TestChaosSaturationSheds429 saturates the daemon far beyond its
// admission bounds and requires prompt 429s with Retry-After for the
// overflow — never an unbounded queue, a hang, or a dropped connection.
func TestChaosSaturationSheds429(t *testing.T) {
	defer leaktest.Check(t)()
	const (
		inflight = 2
		queue    = 2
		extra    = 12 // requests beyond every bound
	)
	plan := &faultinject.Plan{Seed: 13, Rules: []faultinject.Rule{{
		Stage: faultinject.StageServeRequest,
		Kind:  faultinject.KindStall, Prob: 1, Stall: time.Minute,
	}}}
	defer faultinject.Activate(plan)()

	s, _ := newTestServer(t, func(c *Config) {
		c.MaxInflight = inflight
		c.MaxQueue = queue
		c.QueueWait = 50 * time.Millisecond
		c.RequestTimeout = 500 * time.Millisecond // bounds the injected stall
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer ts.Client().CloseIdleConnections()
	cl := &chaosClient{t: t, ts: ts}

	total := inflight + queue + extra
	type outcome struct {
		code       int
		retryAfter string
		elapsed    time.Duration
	}
	outcomes := make(chan outcome, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			r := cl.get(fmt.Sprintf("/extract?host=as%d-pod1.serve%d.net", i+1, i%nSuffixes))
			outcomes <- outcome{code: r.code, retryAfter: r.retryAfter, elapsed: time.Since(start)}
		}(i)
	}
	wg.Wait()
	close(outcomes)

	var shed, timedOut, ok int
	for o := range outcomes {
		switch o.code {
		case http.StatusTooManyRequests:
			shed++
			if o.retryAfter == "" {
				t.Error("429 without Retry-After")
			} else if secs, err := strconv.Atoi(o.retryAfter); err != nil || secs < 1 {
				t.Errorf("Retry-After = %q, want a positive integer", o.retryAfter)
			}
			if o.elapsed > 5*time.Second {
				t.Errorf("shed response took %v; shedding must be prompt", o.elapsed)
			}
		case http.StatusGatewayTimeout:
			// The stalled-then-expired requests: deadline propagated
			// through the context into the handler.
			timedOut++
		case http.StatusOK:
			ok++
		default:
			t.Errorf("unexpected status %d under saturation", o.code)
		}
	}
	if shed < extra {
		t.Errorf("shed %d requests, want at least the %d beyond all bounds", shed, extra)
	}
	if timedOut == 0 {
		t.Error("no stalled request hit its deadline; the stall rule did not engage")
	}
	if st := s.StatusNow(); st.Shed < uint64(extra) {
		t.Errorf("shed counter = %d, want >= %d", st.Shed, extra)
	}
	t.Logf("saturation: %d shed / %d timed out / %d ok of %d", shed, timedOut, ok, total)
}

// TestChaosPanicRecovery injects a handler panic and requires the
// daemon to convert it into one 500 and keep serving — the request-level
// twin of the learner's per-suffix quarantine.
func TestChaosPanicRecovery(t *testing.T) {
	defer leaktest.Check(t)()
	plan := &faultinject.Plan{Seed: 17, Rules: []faultinject.Rule{{
		Stage: faultinject.StageServeRequest, Key: "as666-pod1.serve0.net",
		Kind: faultinject.KindPanic, Prob: 1,
	}}}
	defer faultinject.Activate(plan)()

	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer ts.Client().CloseIdleConnections()
	cl := &chaosClient{t: t, ts: ts}

	if r := cl.get("/extract?host=as666-pod1.serve0.net"); r.code != http.StatusInternalServerError {
		t.Fatalf("panicking request: status %d, want 500", r.code)
	}
	// The process survives and every other request is unaffected.
	for i := 0; i < 10; i++ {
		r := cl.get(fmt.Sprintf("/extract?host=as%d-pod2.serve1.net", i+1))
		if r.code != http.StatusOK {
			t.Fatalf("post-panic request %d: status %d, want 200", i, r.code)
		}
	}
	if st := s.StatusNow(); st.Panics != 1 {
		t.Errorf("panics counter = %d, want 1", st.Panics)
	}
}
