package serve

// Interop tests for the serve error taxonomy: every classification the
// handlers and the daemon's main make must work through errors.Is/As on
// wrapped chains — never by string matching — and a blown deadline
// (context.DeadlineExceeded) must stay distinguishable from saturation
// and from a poisoned corpus file.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"hoiho/internal/core"
)

func TestReloadErrorUnwrap(t *testing.T) {
	inner := errors.New("extract: load: corpus contains no conventions")
	err := error(&ReloadError{Path: "/tmp/ncs.json", Err: inner})
	// Wrapped once more, the way the daemon's main logs it.
	wrapped := fmt.Errorf("boot: %w", err)

	var re *ReloadError
	if !errors.As(wrapped, &re) || re.Path != "/tmp/ncs.json" {
		t.Fatalf("errors.As through a wrap failed: %v", wrapped)
	}
	if !errors.Is(wrapped, inner) {
		t.Error("ReloadError does not unwrap to the load failure")
	}

	// A reload that died on the request deadline is classifiable as such.
	dead := &ReloadError{Path: "x", Err: fmt.Errorf("read: %w", context.DeadlineExceeded)}
	if !errors.Is(dead, context.DeadlineExceeded) {
		t.Error("deadline-caused ReloadError is not errors.Is(DeadlineExceeded)")
	}
}

func TestShedClassification(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{ErrQueueFull, true},
		{ErrAdmissionTimeout, true},
		{ErrDraining, true},
		{fmt.Errorf("admission: %w", ErrQueueFull), true},
		{context.DeadlineExceeded, false},
		{context.Canceled, false},
		{ErrNoCorpus, false},
		{errors.New("other"), false},
	} {
		if got := shed(tc.err); got != tc.want {
			t.Errorf("shed(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	for _, tc := range []struct {
		err        error
		code       int
		retryAfter bool
	}{
		{ErrQueueFull, http.StatusTooManyRequests, true},
		{ErrAdmissionTimeout, http.StatusTooManyRequests, true},
		{fmt.Errorf("gate: %w", ErrQueueFull), http.StatusTooManyRequests, true},
		{ErrDraining, http.StatusServiceUnavailable, true},
		{ErrNoCorpus, http.StatusServiceUnavailable, true},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, false},
		{fmt.Errorf("batch: %w", context.DeadlineExceeded), http.StatusGatewayTimeout, false},
		{errors.New("boom"), http.StatusInternalServerError, false},
	} {
		w := httptest.NewRecorder()
		httpError(w, tc.err, 2*time.Second)
		if w.Code != tc.code {
			t.Errorf("httpError(%v) = %d, want %d", tc.err, w.Code, tc.code)
		}
		if got := w.Header().Get("Retry-After") != ""; got != tc.retryAfter {
			t.Errorf("httpError(%v) Retry-After present = %v, want %v", tc.err, got, tc.retryAfter)
		}
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	// The hint is jittered: base rounds the duration up to at least one
	// second, and the emitted value spreads across [base, 2*base].
	for _, tc := range []struct {
		d    time.Duration
		base int
	}{{0, 1}, {50 * time.Millisecond, 1}, {time.Second, 1}, {2500 * time.Millisecond, 3}} {
		got, err := strconv.Atoi(retryAfterSeconds(tc.d))
		if err != nil {
			t.Fatalf("retryAfterSeconds(%v) is not an integer", tc.d)
		}
		if got < tc.base || got > 2*tc.base {
			t.Errorf("retryAfterSeconds(%v) = %d, want within [%d, %d]", tc.d, got, tc.base, 2*tc.base)
		}
	}
}

// TestSuffixErrorInterop pins the cross-package contract the daemon's
// operators rely on: a *core.SuffixError carrying a deadline unwraps to
// context.DeadlineExceeded, while the serve taxonomy's shed errors never
// do — so "the suffix blew its budget" and "the service is saturated"
// cannot be conflated by an errors.Is dispatch.
func TestSuffixErrorInterop(t *testing.T) {
	timedOut := error(&core.SuffixError{Suffix: "example.net", Err: context.DeadlineExceeded})
	if !errors.Is(timedOut, context.DeadlineExceeded) {
		t.Error("SuffixError{DeadlineExceeded} is not errors.Is(DeadlineExceeded)")
	}
	var se *core.SuffixError
	if !errors.As(fmt.Errorf("learn: %w", timedOut), &se) || se.Suffix != "example.net" {
		t.Error("errors.As lost the SuffixError through a wrap")
	}
	for _, shedErr := range []error{ErrQueueFull, ErrAdmissionTimeout, ErrDraining} {
		if errors.Is(shedErr, context.DeadlineExceeded) {
			t.Errorf("%v must not classify as DeadlineExceeded", shedErr)
		}
		if errors.As(shedErr, &se) {
			t.Errorf("%v must not classify as a SuffixError", shedErr)
		}
	}
}
