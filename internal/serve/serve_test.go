package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hoiho/internal/extract"
)

// Test corpora: every suffix serveN.net carries hostnames of the form
// as<A>-pod<B>.serveN.net holding two distinct numbers. Variant "first"
// captures A, variant "second" captures B — so any response's ASN
// identifies exactly which corpus produced it, which is how the reload
// chaos tests prove no request was misrouted across a hot swap.
const nSuffixes = 8

func corpusJSON(variant string) string {
	var sb strings.Builder
	sb.WriteString("[\n")
	for i := 0; i < nSuffixes; i++ {
		if i > 0 {
			sb.WriteString(",\n")
		}
		var re string
		switch variant {
		case "first":
			re = fmt.Sprintf(`^as(\\d+)-pod\\d+\\.serve%d\\.net$`, i)
		case "second":
			re = fmt.Sprintf(`^as\\d+-pod(\\d+)\\.serve%d\\.net$`, i)
		default:
			panic("unknown variant " + variant)
		}
		fmt.Fprintf(&sb, `  {"suffix":"serve%d.net","regexes":["%s"],"class":"good"}`, i, re)
	}
	sb.WriteString("\n]\n")
	return sb.String()
}

func writeCorpus(t testing.TB, path, variant string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(corpusJSON(variant)), 0o644); err != nil {
		t.Fatal(err)
	}
}

// fingerprintOf loads the variant the way the server does and returns
// the fingerprint header value it will stamp.
func fingerprintOf(t testing.TB, variant string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "ncs.json")
	writeCorpus(t, path, variant)
	c, err := extract.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return c.FingerprintString()
}

// newTestServer boots a Server on a "first"-variant corpus file and
// returns it with the corpus path (for reload tests to overwrite).
func newTestServer(t testing.TB, mod func(*Config)) (*Server, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ncs.json")
	writeCorpus(t, path, "first")
	cfg := Config{CorpusPath: path}
	if mod != nil {
		mod(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New without CorpusPath must fail")
	}
	if _, err := New(Config{CorpusPath: filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Error("New with a missing corpus must fail")
	}
	path := filepath.Join(t.TempDir(), "ncs.json")
	writeCorpus(t, path, "first")
	if _, err := New(Config{CorpusPath: path, Classes: "bogus"}); err == nil {
		t.Error("New with unknown classes must fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := New(Config{CorpusPath: bad})
	var re *ReloadError
	if !errors.As(err, &re) {
		t.Errorf("New on a corrupt corpus returned %v, want a *ReloadError", err)
	}
}

func doReq(t testing.TB, h http.Handler, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, target, nil)
	} else {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func TestExtractEndpoint(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := s.Handler()

	w := doReq(t, h, "GET", "/extract?host=as7018-pod42.serve3.net", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %q", w.Code, w.Body.String())
	}
	if got := w.Body.String(); !strings.Contains(got, `"asn": 7018`) || !strings.Contains(got, `"found": true`) {
		t.Errorf("body = %s, want found asn 7018", got)
	}
	if fp := w.Header().Get("X-Hoiho-Corpus"); fp != fingerprintOf(t, "first") {
		t.Errorf("X-Hoiho-Corpus = %q, want the first-variant fingerprint", fp)
	}
	if gen := w.Header().Get("X-Hoiho-Generation"); gen != "1" {
		t.Errorf("X-Hoiho-Generation = %q, want 1", gen)
	}

	// A governed suffix with no match is found:false, still a 200.
	w = doReq(t, h, "GET", "/extract?host=lo0.rt1.serve3.net", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"found": false`) {
		t.Errorf("miss: status %d body %s, want 200 found:false", w.Code, w.Body.String())
	}

	// Missing the host parameter is the caller's error.
	if w = doReq(t, h, "GET", "/extract", ""); w.Code != http.StatusBadRequest {
		t.Errorf("no host: status = %d, want 400", w.Code)
	}
}

func TestExtractBatchEndpoint(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := s.Handler()

	body := "as100-pod1.serve0.net\n\nas200-pod2.serve1.net\nunknown.example.org\n"
	w := doReq(t, h, "POST", "/extract", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %q", w.Code, w.Body.String())
	}
	got := w.Body.String()
	for _, want := range []string{`"asn": 100`, `"asn": 200`, `"found": false`} {
		if !strings.Contains(got, want) {
			t.Errorf("batch body missing %s:\n%s", want, got)
		}
	}

	if w = doReq(t, h, "POST", "/extract", "\n\n"); w.Code != http.StatusBadRequest {
		t.Errorf("empty batch: status = %d, want 400", w.Code)
	}

	s2, _ := newTestServer(t, func(c *Config) { c.MaxBatchBytes = 16 })
	if w = doReq(t, s2.Handler(), "POST", "/extract", strings.Repeat("x", 64)); w.Code != http.StatusBadRequest {
		t.Errorf("oversized batch: status = %d, want 400", w.Code)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := s.Handler()

	if w := doReq(t, h, "GET", "/healthz", ""); w.Code != http.StatusOK {
		t.Errorf("healthz = %d, want 200", w.Code)
	}
	if w := doReq(t, h, "GET", "/readyz", ""); w.Code != http.StatusOK {
		t.Errorf("readyz = %d, want 200", w.Code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
	// Liveness survives drain; readiness and admission do not.
	if w := doReq(t, h, "GET", "/healthz", ""); w.Code != http.StatusOK {
		t.Errorf("draining healthz = %d, want 200", w.Code)
	}
	if w := doReq(t, h, "GET", "/readyz", ""); w.Code != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d, want 503", w.Code)
	}
	w := doReq(t, h, "GET", "/extract?host=as1-pod2.serve0.net", "")
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("draining extract = %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("draining extract carries no Retry-After")
	}
}

func TestReloadAndRollback(t *testing.T) {
	s, path := newTestServer(t, nil)
	h := s.Handler()
	const host = "/extract?host=as111-pod222.serve5.net"

	if w := doReq(t, h, "GET", host, ""); !strings.Contains(w.Body.String(), `"asn": 111`) {
		t.Fatalf("boot corpus: body %s, want asn 111", w.Body.String())
	}

	// A rollback before any reload has nothing to return to.
	if w := doReq(t, h, "POST", "/-/rollback", ""); w.Code != http.StatusConflict {
		t.Errorf("rollback with no prev = %d, want 409", w.Code)
	}

	writeCorpus(t, path, "second")
	if w := doReq(t, h, "POST", "/-/reload", ""); w.Code != http.StatusOK {
		t.Fatalf("reload = %d, body %q", w.Code, w.Body.String())
	}
	w := doReq(t, h, "GET", host, "")
	if !strings.Contains(w.Body.String(), `"asn": 222`) {
		t.Fatalf("after reload: body %s, want asn 222", w.Body.String())
	}
	if gen := w.Header().Get("X-Hoiho-Generation"); gen != "2" {
		t.Errorf("generation after reload = %q, want 2", gen)
	}

	// Rollback flips back to the first variant under a new generation.
	if w := doReq(t, h, "POST", "/-/rollback", ""); w.Code != http.StatusOK {
		t.Fatalf("rollback = %d, body %q", w.Code, w.Body.String())
	}
	w = doReq(t, h, "GET", host, "")
	if !strings.Contains(w.Body.String(), `"asn": 111`) {
		t.Fatalf("after rollback: body %s, want asn 111", w.Body.String())
	}
	if gen := w.Header().Get("X-Hoiho-Generation"); gen != "3" {
		t.Errorf("generation after rollback = %q, want 3", gen)
	}

	st := s.StatusNow()
	if st.Reloads != 2 || st.Rollbacks != 1 {
		t.Errorf("stats = %d reloads / %d rollbacks, want 2/1", st.Reloads, st.Rollbacks)
	}
}

func TestCorruptReloadKeepsServing(t *testing.T) {
	s, path := newTestServer(t, nil)
	h := s.Handler()
	const host = "/extract?host=as9-pod8.serve1.net"
	fpFirst := fingerprintOf(t, "first")

	for _, corrupt := range []string{"", "{truncated", `[]`, `[{"suffix":"","regexes":[],"class":"good"}]`} {
		if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
			t.Fatal(err)
		}
		w := doReq(t, h, "POST", "/-/reload", "")
		if w.Code != http.StatusUnprocessableEntity {
			t.Errorf("corrupt reload %q = %d, want 422", corrupt, w.Code)
		}
		w = doReq(t, h, "GET", host, "")
		if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"asn": 9`) {
			t.Fatalf("after corrupt reload: status %d body %s, want old corpus serving", w.Code, w.Body.String())
		}
		if fp := w.Header().Get("X-Hoiho-Corpus"); fp != fpFirst {
			t.Errorf("after corrupt reload: fingerprint %q, want original %q", fp, fpFirst)
		}
	}
	if st := s.StatusNow(); st.ReloadFailures != 4 || st.Generation != 1 {
		t.Errorf("stats = %d failures / generation %d, want 4 / 1", st.ReloadFailures, st.Generation)
	}
}

func TestStatusz(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := s.Handler()
	doReq(t, h, "GET", "/extract?host=as4-pod5.serve2.net", "")
	doReq(t, h, "GET", "/extract?host=nomatch.serve2.net", "")

	w := doReq(t, h, "GET", "/statusz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("statusz = %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{`"generation": 1`, `"ncs": 8`, `"requests": 2`, `"served": 2`, `"found": 1`} {
		if !strings.Contains(body, want) {
			t.Errorf("statusz missing %s:\n%s", want, body)
		}
	}
}

func TestGateBounds(t *testing.T) {
	g := newGate(2, 1, 20*time.Millisecond)
	ctx := context.Background()
	if err := g.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Slots full: the single queue ticket times out...
	if err := g.acquire(ctx); !errors.Is(err, ErrAdmissionTimeout) {
		t.Errorf("queued acquire = %v, want ErrAdmissionTimeout", err)
	}
	// ...and with the queue also held, excess is shed instantly.
	hold := make(chan error, 1)
	go func() { hold <- g.acquire(ctx) }()
	for g.waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	if err := g.acquire(ctx); !errors.Is(err, ErrQueueFull) {
		t.Errorf("over-queue acquire = %v, want ErrQueueFull", err)
	}
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Errorf("queue-full shed took %v, want immediate", d)
	}
	if err := <-hold; !errors.Is(err, ErrAdmissionTimeout) {
		t.Errorf("held queue ticket = %v, want ErrAdmissionTimeout", err)
	}

	// Deadline-aware: a request whose deadline cannot survive any wait
	// is shed as queue-full rather than parked.
	expired, cancel := context.WithDeadline(ctx, time.Now().Add(-time.Second))
	defer cancel()
	if err := g.acquire(expired); !errors.Is(err, ErrQueueFull) {
		t.Errorf("expired-deadline acquire = %v, want ErrQueueFull", err)
	}

	// Slots release and admission resumes.
	g.release()
	if err := g.acquire(ctx); err != nil {
		t.Errorf("post-release acquire = %v", err)
	}
}
