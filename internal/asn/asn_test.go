package asn

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want ASN
		ok   bool
	}{
		{"701", 701, true},
		{"AS701", 701, true},
		{"as15576", 15576, true},
		{" 3356 ", 3356, true},
		{"4294967295", 4294967295, true},
		{"0", 0, false},
		{"-1", 0, false},
		{"4294967296", 0, false},
		{"abc", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("Parse(%q) = %v,%v want %v,ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

func TestStringAndDigits(t *testing.T) {
	if ASN(701).String() != "701" || ASN(701).Digits() != "701" {
		t.Error("ASN 701 render wrong")
	}
	if None.String() != "-" || None.Digits() != "" {
		t.Error("None render wrong")
	}
}

func TestOrgsSiblings(t *testing.T) {
	o := NewOrgs()
	o.Add("microsoft", 8075, 8069, 12076)
	o.Add("telia", 1299)
	if !o.Siblings(8075, 8069) || !o.Siblings(8069, 12076) {
		t.Error("microsoft siblings not detected")
	}
	if o.Siblings(8075, 1299) {
		t.Error("cross-org siblings")
	}
	if !o.Siblings(8075, 8075) {
		t.Error("self sibling")
	}
	if o.Siblings(None, None) {
		t.Error("None should not be its own sibling")
	}
	if o.Siblings(9999, 9998) {
		t.Error("unknown ASNs are not siblings")
	}
	if !o.Siblings(9999, 9999) {
		t.Error("unknown ASN is its own sibling")
	}
	set := o.SiblingSet(8069)
	want := []ASN{8069, 8075, 12076}
	if len(set) != len(want) {
		t.Fatalf("SiblingSet = %v", set)
	}
	for i := range want {
		if set[i] != want[i] {
			t.Fatalf("SiblingSet = %v, want %v", set, want)
		}
	}
	if s := o.SiblingSet(4242); len(s) != 1 || s[0] != 4242 {
		t.Errorf("unknown SiblingSet = %v", s)
	}
}

func TestOrgsReassign(t *testing.T) {
	o := NewOrgs()
	o.Add("a", 100, 200)
	o.Add("b", 200)
	if o.Siblings(100, 200) {
		t.Error("200 moved to org b; should not be sibling of 100")
	}
	if org, _ := o.Org(200); org != "b" {
		t.Errorf("Org(200) = %q", org)
	}
	if set := o.SiblingSet(100); len(set) != 1 {
		t.Errorf("SiblingSet(100) = %v", set)
	}
}

func TestOrgsRoundTrip(t *testing.T) {
	o := NewOrgs()
	o.Add("microsoft", 8075, 8069)
	o.Add("telia", 1299)
	var buf bytes.Buffer
	if _, err := o.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseOrgs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 || !got.Siblings(8075, 8069) || got.Siblings(8075, 1299) {
		t.Errorf("round trip lost data: %d", got.Len())
	}
	if _, err := ParseOrgs(strings.NewReader("bogus line")); err == nil {
		t.Error("bad line should error")
	}
	if _, err := ParseOrgs(strings.NewReader("x|org")); err == nil {
		t.Error("bad asn should error")
	}
}

func TestRelationships(t *testing.T) {
	r := NewRelationships()
	r.AddP2C(3356, 7018) // 3356 provides transit to 7018
	r.AddP2C(3356, 209)
	r.AddP2P(7018, 209)
	if !r.IsProvider(3356, 7018) || r.IsProvider(7018, 3356) {
		t.Error("IsProvider wrong")
	}
	if !r.IsPeer(7018, 209) || !r.IsPeer(209, 7018) {
		t.Error("IsPeer should be symmetric")
	}
	if !r.AreNeighbors(3356, 7018) || !r.AreNeighbors(7018, 3356) || !r.AreNeighbors(209, 7018) {
		t.Error("AreNeighbors wrong")
	}
	if r.AreNeighbors(3356, 64512) {
		t.Error("non-neighbors reported as neighbors")
	}
	if d := r.Degree(7018); d != 2 {
		t.Errorf("Degree(7018) = %d, want 2", d)
	}
	if d := r.Degree(3356); d != 2 {
		t.Errorf("Degree(3356) = %d, want 2", d)
	}
	if d := r.Degree(64512); d != 0 {
		t.Errorf("Degree(unknown) = %d, want 0", d)
	}
	ps := r.Providers(7018)
	if len(ps) != 1 || ps[0] != 3356 {
		t.Errorf("Providers = %v", ps)
	}
	cs := r.Customers(3356)
	if len(cs) != 2 || cs[0] != 209 || cs[1] != 7018 {
		t.Errorf("Customers = %v", cs)
	}
	all := r.ASNs()
	if len(all) != 3 {
		t.Errorf("ASNs = %v", all)
	}
}

func TestRelationshipsIgnoreDegenerate(t *testing.T) {
	r := NewRelationships()
	r.AddP2C(100, 100)
	r.AddP2C(None, 100)
	r.AddP2P(100, 100)
	r.AddP2P(100, None)
	if len(r.ASNs()) != 0 {
		t.Errorf("degenerate edges recorded: %v", r.ASNs())
	}
}

func TestRelationshipsRoundTrip(t *testing.T) {
	r := NewRelationships()
	r.AddP2C(3356, 7018)
	r.AddP2P(7018, 209)
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "3356|7018|-1") || !strings.Contains(text, "209|7018|0") {
		t.Errorf("serialized:\n%s", text)
	}
	got, err := ParseRelationships(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsProvider(3356, 7018) || !got.IsPeer(209, 7018) {
		t.Error("round trip lost edges")
	}
	for _, bad := range []string{"1|2", "x|2|0", "1|y|-1", "1|2|7"} {
		if _, err := ParseRelationships(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseRelationships(%q) should error", bad)
		}
	}
}

// Property: Siblings is reflexive (nonzero), symmetric, and transitive
// for ASNs added to orgs.
func TestSiblingEquivalenceQuick(t *testing.T) {
	o := NewOrgs()
	orgs := []OrgID{"a", "b", "c"}
	for i := ASN(1); i <= 30; i++ {
		o.Add(orgs[int(i)%3], i)
	}
	f := func(x, y, z uint8) bool {
		a, b, c := ASN(x%30+1), ASN(y%30+1), ASN(z%30+1)
		if !o.Siblings(a, a) {
			return false
		}
		if o.Siblings(a, b) != o.Siblings(b, a) {
			return false
		}
		if o.Siblings(a, b) && o.Siblings(b, c) && !o.Siblings(a, c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSiblings(b *testing.B) {
	o := NewOrgs()
	o.Add("microsoft", 8075, 8069, 12076)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Siblings(8075, 12076)
	}
}
