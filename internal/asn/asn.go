// Package asn models Autonomous System Numbers, organization (sibling)
// groupings in the style of CAIDA's AS-to-organization dataset, and AS
// business relationships (provider-customer / peer) in the style of
// CAIDA's AS-relationship dataset.
//
// The paper uses sibling information when scoring extracted ASNs
// ("including these siblings increased the PPV...", §4) and when the
// modified bdrmapIT decides whether a hostname-extracted ASN is
// reasonable ("matched, or was a sibling of, an ASN in either the
// subsequent or destination ASN sets, or the extracted ASN is a provider
// of one of the ASes in these sets", §5).
package asn

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ASN is an Autonomous System Number. Zero is "no ASN".
type ASN uint32

// None is the absent ASN.
const None ASN = 0

// String renders the ASN in decimal, or "-" when absent.
func (a ASN) String() string {
	if a == None {
		return "-"
	}
	return strconv.FormatUint(uint64(a), 10)
}

// Digits renders the ASN's decimal digits; the empty string when absent.
// It is the representation compared against numbers extracted from
// hostnames.
func (a ASN) Digits() string {
	if a == None {
		return ""
	}
	return strconv.FormatUint(uint64(a), 10)
}

// Parse parses a decimal ASN.
func Parse(s string) (ASN, error) {
	s = strings.TrimPrefix(strings.ToLower(strings.TrimSpace(s)), "as")
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return None, fmt.Errorf("asn: parse %q: %w", s, err)
	}
	if v == 0 {
		return None, fmt.Errorf("asn: zero is reserved")
	}
	return ASN(v), nil
}

// OrgID identifies an organization owning one or more ASNs.
type OrgID string

// Orgs maps ASNs to the organizations that operate them. Two ASNs with
// the same organization are siblings. The zero value is empty and usable.
type Orgs struct {
	asn2org map[ASN]OrgID
	org2asn map[OrgID][]ASN
}

// NewOrgs returns an empty organization database.
func NewOrgs() *Orgs {
	return &Orgs{asn2org: make(map[ASN]OrgID), org2asn: make(map[OrgID][]ASN)}
}

// Add records that org operates each of asns. Adding an ASN twice moves
// it to the most recent organization.
func (o *Orgs) Add(org OrgID, asns ...ASN) {
	for _, a := range asns {
		if a == None {
			continue
		}
		if prev, ok := o.asn2org[a]; ok {
			members := o.org2asn[prev]
			for i, m := range members {
				if m == a {
					o.org2asn[prev] = append(members[:i], members[i+1:]...)
					break
				}
			}
		}
		o.asn2org[a] = org
		o.org2asn[org] = append(o.org2asn[org], a)
	}
}

// Org returns the organization operating a, if known.
func (o *Orgs) Org(a ASN) (OrgID, bool) {
	id, ok := o.asn2org[a]
	return id, ok
}

// Siblings reports whether a and b are operated by the same organization.
// An ASN is always its own sibling. Unknown ASNs have no siblings other
// than themselves.
func (o *Orgs) Siblings(a, b ASN) bool {
	if a == b {
		return a != None
	}
	oa, ok := o.asn2org[a]
	if !ok {
		return false
	}
	ob, ok := o.asn2org[b]
	return ok && oa == ob
}

// SiblingSet returns every ASN sharing a's organization, including a
// itself, sorted. If a is unknown the result is just {a}.
func (o *Orgs) SiblingSet(a ASN) []ASN {
	id, ok := o.asn2org[a]
	if !ok {
		return []ASN{a}
	}
	out := append([]ASN(nil), o.org2asn[id]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of ASNs with a known organization.
func (o *Orgs) Len() int { return len(o.asn2org) }

// WriteTo serializes the database as "asn|org" lines, sorted by ASN.
func (o *Orgs) WriteTo(w io.Writer) (int64, error) {
	asns := make([]ASN, 0, len(o.asn2org))
	for a := range o.asn2org {
		asns = append(asns, a)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	var n int64
	for _, a := range asns {
		c, err := fmt.Fprintf(w, "%d|%s\n", a, o.asn2org[a])
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ParseOrgs reads "asn|org" lines ('#' comments and blanks ignored).
func ParseOrgs(r io.Reader) (*Orgs, error) {
	o := NewOrgs()
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		a, org, ok := strings.Cut(line, "|")
		if !ok {
			return nil, fmt.Errorf("asn: orgs line %d: missing '|'", lineno)
		}
		id, err := Parse(a)
		if err != nil {
			return nil, fmt.Errorf("asn: orgs line %d: %w", lineno, err)
		}
		o.Add(OrgID(strings.TrimSpace(org)), id)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return o, nil
}
