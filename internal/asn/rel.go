package asn

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// RelKind is the business relationship between two adjacent ASes.
type RelKind int8

const (
	// P2C: the first AS is a provider of the second (CAIDA encodes -1).
	P2C RelKind = -1
	// P2P: the ASes are settlement-free peers (CAIDA encodes 0).
	P2P RelKind = 0
)

// Relationships is an AS-level relationship graph. The zero value is not
// usable; construct with NewRelationships.
type Relationships struct {
	providers map[ASN]map[ASN]bool // customer -> providers
	customers map[ASN]map[ASN]bool // provider -> customers
	peers     map[ASN]map[ASN]bool // symmetric
}

// NewRelationships returns an empty relationship graph.
func NewRelationships() *Relationships {
	return &Relationships{
		providers: make(map[ASN]map[ASN]bool),
		customers: make(map[ASN]map[ASN]bool),
		peers:     make(map[ASN]map[ASN]bool),
	}
}

func addEdge(m map[ASN]map[ASN]bool, from, to ASN) {
	set, ok := m[from]
	if !ok {
		set = make(map[ASN]bool)
		m[from] = set
	}
	set[to] = true
}

// AddP2C records that provider sells transit to customer.
func (r *Relationships) AddP2C(provider, customer ASN) {
	if provider == None || customer == None || provider == customer {
		return
	}
	addEdge(r.providers, customer, provider)
	addEdge(r.customers, provider, customer)
}

// AddP2P records a settlement-free peering between a and b.
func (r *Relationships) AddP2P(a, b ASN) {
	if a == None || b == None || a == b {
		return
	}
	addEdge(r.peers, a, b)
	addEdge(r.peers, b, a)
}

// IsProvider reports whether p is a direct provider of c.
func (r *Relationships) IsProvider(p, c ASN) bool { return r.providers[c][p] }

// IsPeer reports whether a and b peer directly.
func (r *Relationships) IsPeer(a, b ASN) bool { return r.peers[a][b] }

// AreNeighbors reports whether a and b share any relationship edge.
func (r *Relationships) AreNeighbors(a, b ASN) bool {
	return r.providers[a][b] || r.providers[b][a] || r.peers[a][b]
}

// Providers returns c's direct providers, sorted.
func (r *Relationships) Providers(c ASN) []ASN { return sortedKeys(r.providers[c]) }

// Customers returns p's direct customers, sorted.
func (r *Relationships) Customers(p ASN) []ASN { return sortedKeys(r.customers[p]) }

// Peers returns a's peers, sorted.
func (r *Relationships) Peers(a ASN) []ASN { return sortedKeys(r.peers[a]) }

// Degree returns the number of distinct relationship neighbors of a. The
// RouterToAsAssignment heuristic breaks election ties by preferring the
// AS with the smaller degree (Huffaker et al. 2010).
func (r *Relationships) Degree(a ASN) int {
	seen := make(map[ASN]bool)
	for n := range r.providers[a] {
		seen[n] = true
	}
	for n := range r.customers[a] {
		seen[n] = true
	}
	for n := range r.peers[a] {
		seen[n] = true
	}
	return len(seen)
}

// ASNs returns every ASN appearing in the graph, sorted.
func (r *Relationships) ASNs() []ASN {
	seen := make(map[ASN]bool)
	for a := range r.providers {
		seen[a] = true
	}
	for a := range r.customers {
		seen[a] = true
	}
	for a := range r.peers {
		seen[a] = true
	}
	return sortedKeys(seen)
}

func sortedKeys(m map[ASN]bool) []ASN {
	out := make([]ASN, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WriteTo serializes the graph in CAIDA as-rel format: "a|b|-1" for
// provider a / customer b, "a|b|0" for peers (each peering written once,
// smaller ASN first), sorted.
func (r *Relationships) WriteTo(w io.Writer) (int64, error) {
	type edge struct {
		a, b ASN
		kind RelKind
	}
	var edges []edge
	for p, cs := range r.customers {
		for c := range cs {
			edges = append(edges, edge{p, c, P2C})
		}
	}
	for a, bs := range r.peers {
		for b := range bs {
			if a < b {
				edges = append(edges, edge{a, b, P2P})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		if edges[i].b != edges[j].b {
			return edges[i].b < edges[j].b
		}
		return edges[i].kind < edges[j].kind
	})
	var n int64
	for _, e := range edges {
		c, err := fmt.Fprintf(w, "%d|%d|%d\n", e.a, e.b, e.kind)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ParseRelationships reads CAIDA as-rel format ('#' comments ignored).
func ParseRelationships(r io.Reader) (*Relationships, error) {
	rel := NewRelationships()
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "|")
		if len(fields) < 3 {
			return nil, fmt.Errorf("asn: rel line %d: want a|b|kind", lineno)
		}
		a, err := Parse(fields[0])
		if err != nil {
			return nil, fmt.Errorf("asn: rel line %d: %w", lineno, err)
		}
		b, err := Parse(fields[1])
		if err != nil {
			return nil, fmt.Errorf("asn: rel line %d: %w", lineno, err)
		}
		switch strings.TrimSpace(fields[2]) {
		case "-1":
			rel.AddP2C(a, b)
		case "0":
			rel.AddP2P(a, b)
		default:
			return nil, fmt.Errorf("asn: rel line %d: unknown kind %q", lineno, fields[2])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rel, nil
}
