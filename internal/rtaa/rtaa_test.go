package rtaa

import (
	"net/netip"
	"testing"

	"hoiho/internal/asn"
	"hoiho/internal/bgp"
	"hoiho/internal/itdk"
	"hoiho/internal/traceroute"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestElect(t *testing.T) {
	rel := asn.NewRelationships()
	rel.AddP2C(100, 200) // 100 has degree 1 after this edge
	rel.AddP2C(100, 300)
	rel.AddP2C(50, 100)
	// degrees: 100 -> 3, 200 -> 1, 300 -> 1, 50 -> 1
	cases := []struct {
		votes map[asn.ASN]int
		want  asn.ASN
	}{
		{map[asn.ASN]int{}, asn.None},
		{map[asn.ASN]int{100: 3, 200: 1}, 100},
		{map[asn.ASN]int{100: 1, 200: 1}, 200},  // degree tie-break: 1 < 3
		{map[asn.ASN]int{300: 1, 200: 1}, 200},  // equal degree: lower ASN
		{map[asn.ASN]int{999: 2, 1000: 2}, 999}, // unknown degrees: lower ASN
	}
	for i, c := range cases {
		if got := Elect(c.votes, rel); got != c.want {
			t.Errorf("case %d: Elect = %v, want %v", i, got, c.want)
		}
	}
	// nil relationships: pure vote count then ASN.
	if got := Elect(map[asn.ASN]int{7: 1, 3: 1}, nil); got != 3 {
		t.Errorf("nil rel Elect = %v", got)
	}
}

// TestAnnotateSupplierBias reproduces the documented weakness: a router
// observed only through a supplier-assigned address is attributed to the
// supplier.
func TestAnnotateSupplierBias(t *testing.T) {
	table := &bgp.Table{}
	if err := table.Announce(netip.MustParsePrefix("10.0.0.0/16"), 100); err != nil {
		t.Fatal(err)
	}
	if err := table.Announce(netip.MustParsePrefix("10.1.0.0/16"), 200); err != nil {
		t.Fatal(err)
	}
	al := itdk.NewAliases()
	al.Assign(addr("10.0.0.1"), 0) // X core
	al.Assign(addr("10.0.1.2"), 1) // Y border, X-numbered (truth: Y)
	al.Assign(addr("10.1.0.1"), 2) // Y core
	corpus := &traceroute.Corpus{}
	corpus.Add(traceroute.Path{
		VP: "vp", Dst: addr("10.1.0.9"),
		Hops: []traceroute.Hop{
			{Addr: addr("10.0.0.1")},
			{Addr: addr("10.0.1.2")},
			{Addr: addr("10.1.0.1")},
		},
	})
	g := itdk.BuildGraph(corpus, al, table, nil)
	ann := Annotate(g, nil)
	if ann[0] != 100 {
		t.Errorf("X core = %v, want 100", ann[0])
	}
	if ann[1] != 100 {
		t.Errorf("Y border = %v; RTAA should (wrongly) say 100", ann[1])
	}
	if ann[2] != 200 {
		t.Errorf("Y core = %v, want 200", ann[2])
	}
}

// TestAnnotateElectionAcrossInterfaces: with aliases intact, the majority
// of a router's interfaces decides.
func TestAnnotateElectionAcrossInterfaces(t *testing.T) {
	table := &bgp.Table{}
	if err := table.Announce(netip.MustParsePrefix("10.0.0.0/16"), 100); err != nil {
		t.Fatal(err)
	}
	if err := table.Announce(netip.MustParsePrefix("10.1.0.0/16"), 200); err != nil {
		t.Fatal(err)
	}
	al := itdk.NewAliases()
	al.Assign(addr("10.0.1.2"), 1) // supplier-assigned
	al.Assign(addr("10.1.0.1"), 1) // own
	al.Assign(addr("10.1.0.5"), 1) // own
	corpus := &traceroute.Corpus{}
	corpus.Add(traceroute.Path{
		VP: "vp", Dst: addr("10.1.0.9"),
		Hops: []traceroute.Hop{
			{Addr: addr("10.0.1.2")},
			{Addr: addr("10.1.0.1")},
			{Addr: addr("10.1.0.5")},
		},
	})
	g := itdk.BuildGraph(corpus, al, table, nil)
	ann := Annotate(g, nil)
	if ann[1] != 200 {
		t.Errorf("router = %v, want 200 (2 of 3 interfaces)", ann[1])
	}
}

func TestAnnotateUnroutedInterfaces(t *testing.T) {
	table := &bgp.Table{}
	al := itdk.NewAliases()
	al.Assign(addr("10.0.0.1"), 0)
	corpus := &traceroute.Corpus{}
	corpus.Add(traceroute.Path{
		VP: "vp", Dst: addr("10.1.0.9"),
		Hops: []traceroute.Hop{{Addr: addr("10.0.0.1")}},
	})
	g := itdk.BuildGraph(corpus, al, table, nil)
	ann := Annotate(g, nil)
	if ann[0] != asn.None {
		t.Errorf("unrouted router annotated %v", ann[0])
	}
}
