// Package rtaa reimplements RouterToAsAssignment, the router-ownership
// heuristic of Huffaker et al. (PAM 2010) that annotated the 2010-2017
// ITDKs (paper §2.1): for each alias-resolved router, elect the AS that
// announces the longest matching prefix for the most of the router's
// interfaces, breaking ties by preferring the AS with the smaller degree,
// then the lower ASN.
//
// Because the heuristic only consults the router's own interface
// addresses, routers observed with a single supplier-assigned
// interconnection address are attributed to the supplying AS — the error
// mode that motivates hostname evidence in the paper.
package rtaa

import (
	"sort"

	"hoiho/internal/asn"
	"hoiho/internal/itdk"
)

// Annotate infers an owner for every node in the graph. rel supplies AS
// degrees for the tie-break; it may be nil, in which case ties fall
// through to the lower ASN.
func Annotate(g *itdk.Graph, rel *asn.Relationships) map[int]asn.ASN {
	out := make(map[int]asn.ASN, len(g.Nodes))
	for _, n := range g.Nodes {
		out[n.ID] = electNode(g, n, rel)
	}
	return out
}

func electNode(g *itdk.Graph, n *itdk.Node, rel *asn.Relationships) asn.ASN {
	votes := make(map[asn.ASN]int)
	for _, a := range n.Ifaces {
		if origin := g.Origin(a); origin != asn.None {
			votes[origin]++
		}
	}
	return Elect(votes, rel)
}

// Elect runs the RouterToAsAssignment election over a vote multiset:
// most votes, then smallest degree, then lowest ASN. It returns asn.None
// for an empty multiset.
func Elect(votes map[asn.ASN]int, rel *asn.Relationships) asn.ASN {
	if len(votes) == 0 {
		return asn.None
	}
	cands := make([]asn.ASN, 0, len(votes))
	for a := range votes {
		cands = append(cands, a)
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if votes[a] != votes[b] {
			return votes[a] > votes[b]
		}
		if rel != nil {
			da, db := rel.Degree(a), rel.Degree(b)
			if da != db {
				return da < db
			}
		}
		return a < b
	})
	return cands[0]
}
