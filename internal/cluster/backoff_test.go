package cluster

// Probe backoff regression tests: the schedule doubles under failure,
// caps at the max, snaps back to the base interval the moment a probe
// succeeds, and the jitter is fully deterministic under the per-member
// seeded source.

import (
	"math/rand"
	"testing"
	"time"
)

func TestNextProbeWaitDoublesCapsAndResets(t *testing.T) {
	base, max := time.Second, 15*time.Second
	wait := base
	want := []time.Duration{
		2 * time.Second, 4 * time.Second, 8 * time.Second,
		15 * time.Second, 15 * time.Second, // capped, stays capped
	}
	for i, w := range want {
		wait = nextProbeWait(wait, base, max, false)
		if wait != w {
			t.Fatalf("failure %d: wait = %v, want %v", i+1, wait, w)
		}
	}
	// One successful probe resets to the base interval immediately — a
	// recovered node must not inherit its outage's backoff.
	if wait = nextProbeWait(wait, base, max, true); wait != base {
		t.Fatalf("wait after recovery = %v, want the base %v", wait, base)
	}
	// And the next failure restarts the doubling from the base.
	if wait = nextProbeWait(wait, base, max, false); wait != 2*base {
		t.Fatalf("first failure after recovery = %v, want %v", wait, 2*base)
	}
}

func TestJitterWaitDeterministicAndBounded(t *testing.T) {
	// Two sources seeded the way probeLoop seeds them — from the member
	// name — must produce identical schedules: restarting a router
	// reproduces the exact probe timeline.
	a := rand.New(rand.NewSource(int64(hashKey("http://node-a:8080"))))
	b := rand.New(rand.NewSource(int64(hashKey("http://node-a:8080"))))
	other := rand.New(rand.NewSource(int64(hashKey("http://node-b:8080"))))
	identical, diverged := 0, false
	for i := 0; i < 256; i++ {
		w := time.Duration(1+i%15) * time.Second
		ja, jb := jitterWait(w, a), jitterWait(w, b)
		if ja != jb {
			t.Fatalf("step %d: same seed produced %v vs %v", i, ja, jb)
		}
		if ja < w/2 || ja > w {
			t.Fatalf("step %d: jitter %v outside [%v, %v]", i, ja, w/2, w)
		}
		identical++
		if jitterWait(w, other) != ja {
			diverged = true
		}
	}
	if identical != 256 {
		t.Fatalf("compared %d schedules, want 256", identical)
	}
	// Distinct members must not share a schedule (that would recreate
	// the lockstep the jitter exists to break).
	if !diverged {
		t.Error("two differently-seeded members produced identical jitter schedules")
	}
}
