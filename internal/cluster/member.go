package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"
)

// member is one hoihod node in the cluster. Health is a single atomic
// bit written from two directions: the probe loop (authoritative, both
// directions) and the forwarding path (demote-only, so a request-time
// failure takes the node out of rotation immediately instead of waiting
// a probe period).
type member struct {
	name string // the configured base URL, also the ring identity
	base *url.URL

	healthy  atomic.Bool
	probeErr atomic.Pointer[string] // last probe failure, for /-/cluster

	// cancel stops this member's probe loop on Leave; Start's context
	// cancellation stops all of them.
	cancel context.CancelFunc
}

// endpoint joins the member's base URL with a server path like
// "/extract" or "/-/rollout/prepare".
func (m *member) endpoint(path string) string {
	u := *m.base
	u.Path, u.RawQuery = path, ""
	return u.String()
}

// probeLoop drives m's health bit: probe, record, back off, repeat. A
// healthy node is probed every ProbeInterval; failures double the wait
// up to ProbeMaxBackoff so a dead node is not hammered. Each wait is
// jittered across [w/2, w] from a per-member deterministic source, so a
// fleet of routers restarted together does not probe in lockstep.
func (rt *Router) probeLoop(ctx context.Context, m *member) {
	defer rt.wg.Done()
	rng := rand.New(rand.NewSource(int64(hashKey(m.name))))
	wait := rt.cfg.ProbeInterval
	timer := time.NewTimer(0) // first probe immediately
	defer timer.Stop()
	for {
		select {
		case <-timer.C:
		case <-ctx.Done():
			return
		}
		ok := rt.probe(ctx, m)
		if ok {
			if !m.healthy.Swap(true) {
				rt.logf("probe: %s healthy", m.name)
			}
		} else if m.healthy.Swap(false) {
			rt.logf("probe: %s unhealthy", m.name)
		}
		wait = nextProbeWait(wait, rt.cfg.ProbeInterval, rt.cfg.ProbeMaxBackoff, ok)
		timer.Reset(jitterWait(wait, rng))
	}
}

// nextProbeWait advances the probe backoff: a successful probe resets
// to the base interval immediately (a recovered node must not inherit
// its outage's backoff), a failure doubles the current wait up to max.
func nextProbeWait(cur, base, max time.Duration, ok bool) time.Duration {
	if ok {
		return base
	}
	w := cur * 2
	if w > max {
		w = max
	}
	return w
}

// jitterWait spreads a probe wait uniformly across [w/2, w] using the
// member's deterministic source, so a fleet of routers restarted
// together does not probe in lockstep yet every schedule is
// reproducible under test.
func jitterWait(w time.Duration, rng *rand.Rand) time.Duration {
	half := w / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// probe performs one readiness check: GET /readyz within ProbeTimeout.
// Only a 200 counts — a draining node answers 503 and correctly drops
// out of rotation.
func (rt *Router) probe(ctx context.Context, m *member) bool {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, m.endpoint("/readyz"), nil)
	if err != nil {
		m.noteProbeErr(err)
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		m.noteProbeErr(err)
		return false
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		m.noteProbeErr(fmt.Errorf("cluster: probe %s: readyz returned %d", m.name, resp.StatusCode))
		return false
	}
	m.probeErr.Store(nil)
	return true
}

func (m *member) noteProbeErr(err error) {
	s := err.Error()
	m.probeErr.Store(&s)
}

// markUnhealthy is the forwarding path's passive demotion: a transport
// failure means the node is gone right now, so it leaves rotation
// immediately and the probe loop brings it back when /readyz recovers.
func (rt *Router) markUnhealthy(m *member, err error) {
	if m.healthy.Swap(false) {
		rt.stats.unhealthy.Add(1)
		rt.logf("forward: %s marked unhealthy: %v", m.name, err)
	}
}
