package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hoiho/internal/faultinject"
)

// nodeFP asks a node's /-/status for its serving fingerprint and
// whether a prepared corpus is still staged.
func nodeFP(t testing.TB, n *testNode) (fp string, preparedFP string) {
	t.Helper()
	st := n.srv.NodeStatusNow()
	return st.Fingerprint, st.PreparedFingerprint
}

// TestRolloutCommit: the happy path publishes the new corpus on every
// node, and extraction responses stamp the new fingerprint afterwards.
func TestRolloutCommit(t *testing.T) {
	nodes := newTestNodes(t, 3)
	rt := newTestRouter(t, nodes, nil)
	fpSecond := fingerprintOf(t, "second")

	res, err := rt.Rollout(context.Background(), []byte(corpusJSON("second")), 0)
	if err != nil {
		t.Fatalf("rollout: %v", err)
	}
	if res.Fingerprint != fpSecond {
		t.Errorf("committed fingerprint %s, want %s", res.Fingerprint, fpSecond)
	}
	if len(res.Nodes) != 3 {
		t.Errorf("committed on %d nodes, want 3", len(res.Nodes))
	}
	for _, nc := range res.Nodes {
		if nc.Generation != 2 {
			t.Errorf("node %s at generation %d after first rollout, want 2", nc.Node, nc.Generation)
		}
	}
	for i, n := range nodes {
		fp, prepared := nodeFP(t, n)
		if fp != fpSecond {
			t.Errorf("node %d serving %s after commit, want %s", i, fp, fpSecond)
		}
		if prepared != "" {
			t.Errorf("node %d retains a prepared corpus after commit", i)
		}
	}
	// The committed corpus captures the second number.
	w, rep := doGet(t, rt, "/extract?host=as7-pod9.cluster3.net")
	if w.Code != 200 || !rep.Found || rep.ASN != 9 {
		t.Errorf("post-rollout extraction = %d %+v, want ASN 9", w.Code, rep)
	}
	if got := w.Header().Get("X-Hoiho-Corpus"); got != fpSecond {
		t.Errorf("post-rollout stamp %s, want %s", got, fpSecond)
	}
	if rt.stats.rollouts.Load() != 1 {
		t.Error("committed rollout not accounted")
	}
}

// TestRolloutPersists: a committed corpus survives a node "restart" —
// commit wrote the shipped bytes over the node's corpus path, so a
// reload from disk keeps the new generation.
func TestRolloutPersists(t *testing.T) {
	nodes := newTestNodes(t, 2)
	rt := newTestRouter(t, nodes, nil)
	fpSecond := fingerprintOf(t, "second")
	if _, err := rt.Rollout(context.Background(), []byte(corpusJSON("second")), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[0].srv.Reload(context.Background()); err != nil {
		t.Fatalf("post-commit reload: %v", err)
	}
	if fp, _ := nodeFP(t, nodes[0]); fp != fpSecond {
		t.Errorf("reload from disk served %s, want the committed %s", fp, fpSecond)
	}
}

// TestRolloutCorruptAborts: a corpus that fails validation on the nodes
// nacks prepare, the epoch aborts, and every node keeps serving the old
// generation with no prepared residue.
func TestRolloutCorruptAborts(t *testing.T) {
	nodes := newTestNodes(t, 3)
	rt := newTestRouter(t, nodes, nil)
	fpFirst := fingerprintOf(t, "first")

	_, err := rt.Rollout(context.Background(), []byte("{definitely not a corpus"), 0)
	var re *RolloutError
	if !errors.As(err, &re) || re.Phase != "prepare" {
		t.Fatalf("corrupt rollout = %v, want a prepare-phase RolloutError", err)
	}
	for i, n := range nodes {
		fp, prepared := nodeFP(t, n)
		if fp != fpFirst {
			t.Errorf("node %d serving %s after abort, want %s", i, fp, fpFirst)
		}
		if prepared != "" {
			t.Errorf("node %d retains a prepared corpus after abort", i)
		}
	}
	if rt.stats.aborted.Load() != 1 {
		t.Error("aborted epoch not accounted")
	}
}

// TestRolloutValidateCatchesGenerationMove: a reload slipping into the
// epoch between prepare and validate makes the prepared corpora stale;
// validate must catch it and abort.
func TestRolloutValidateCatchesGenerationMove(t *testing.T) {
	nodes := newTestNodes(t, 3)
	rt := newTestRouter(t, nodes, nil)
	fpFirst := fingerprintOf(t, "first")

	done := make(chan error, 1)
	go func() {
		_, err := rt.Rollout(context.Background(), []byte(corpusJSON("second")), 300*time.Millisecond)
		done <- err
	}()
	// While the coordinator holds between prepare and validate, reload
	// node 1 — its serving generation moves.
	time.Sleep(100 * time.Millisecond)
	if _, err := nodes[1].srv.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}
	err := <-done
	var re *RolloutError
	if !errors.As(err, &re) || re.Phase != "validate" {
		t.Fatalf("rollout with mid-epoch reload = %v, want a validate-phase RolloutError", err)
	}
	for i, n := range nodes {
		if fp, _ := nodeFP(t, n); fp != fpFirst {
			t.Errorf("node %d serving %s after aborted epoch, want %s", i, fp, fpFirst)
		}
	}
}

// TestRolloutCoordinatorFaultAborts: an injected coordinator-side fault
// against one node in the validate phase aborts the whole epoch.
func TestRolloutCoordinatorFaultAborts(t *testing.T) {
	nodes := newTestNodes(t, 3)
	rt := newTestRouter(t, nodes, nil)
	fpFirst := fingerprintOf(t, "first")

	defer faultinject.Activate(&faultinject.Plan{Rules: []faultinject.Rule{
		{Stage: faultinject.StageClusterRollout, Key: "validate:" + nodes[1].url(),
			Kind: faultinject.KindError, Prob: 1},
	}})()

	_, err := rt.Rollout(context.Background(), []byte(corpusJSON("second")), 0)
	var re *RolloutError
	if !errors.As(err, &re) || re.Phase != "validate" || re.Node != nodes[1].url() {
		t.Fatalf("rollout = %v, want validate failure at node 1", err)
	}
	for i, n := range nodes {
		fp, prepared := nodeFP(t, n)
		if fp != fpFirst || prepared != "" {
			t.Errorf("node %d: fp %s prepared %q after abort", i, fp, prepared)
		}
	}
}

// TestRolloutCommitPartialRollsBack: a commit that fails on one node
// rolls the already-committed nodes back through /-/rollback, restoring
// the pre-epoch corpus everywhere.
func TestRolloutCommitPartialRollsBack(t *testing.T) {
	nodes := newTestNodes(t, 3)
	rt := newTestRouter(t, nodes, nil)
	fpFirst := fingerprintOf(t, "first")

	defer faultinject.Activate(&faultinject.Plan{Rules: []faultinject.Rule{
		{Stage: faultinject.StageClusterRollout, Key: "commit:" + nodes[2].url(),
			Kind: faultinject.KindError, Prob: 1},
	}})()

	_, err := rt.Rollout(context.Background(), []byte(corpusJSON("second")), 0)
	var re *RolloutError
	if !errors.As(err, &re) || re.Phase != "commit" {
		t.Fatalf("rollout = %v, want a commit-phase RolloutError", err)
	}
	for i, n := range nodes {
		if fp, _ := nodeFP(t, n); fp != fpFirst {
			t.Errorf("node %d serving %s after commit repair, want %s", i, fp, fpFirst)
		}
	}
}

// TestRolloutSerialized: the protocol runs one epoch at a time; a
// second rollout during the hold window is refused, not queued.
func TestRolloutSerialized(t *testing.T) {
	nodes := newTestNodes(t, 2)
	rt := newTestRouter(t, nodes, nil)
	done := make(chan error, 1)
	go func() {
		_, err := rt.Rollout(context.Background(), []byte(corpusJSON("second")), 400*time.Millisecond)
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	if _, err := rt.Rollout(context.Background(), []byte(corpusJSON("second")), 0); !errors.Is(err, ErrRolloutInProgress) {
		t.Errorf("concurrent rollout = %v, want ErrRolloutInProgress", err)
	}
	if err := <-done; err != nil {
		t.Errorf("held rollout failed: %v", err)
	}
}

// TestRolloutEndpoint: the operator surface — POST the corpus, get the
// committed result; corrupt input reports the aborting phase.
func TestRolloutEndpoint(t *testing.T) {
	nodes := newTestNodes(t, 2)
	rt := newTestRouter(t, nodes, nil)
	fpSecond := fingerprintOf(t, "second")

	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, httptest.NewRequest("POST", "/-/rollout", strings.NewReader(corpusJSON("second"))))
	if w.Code != 200 {
		t.Fatalf("POST /-/rollout = %d: %s", w.Code, w.Body.String())
	}
	var res RolloutResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint != fpSecond || len(res.Nodes) != 2 {
		t.Errorf("rollout result = %+v", res)
	}

	w2 := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w2, httptest.NewRequest("POST", "/-/rollout", strings.NewReader("{broken")))
	if w2.Code != 502 {
		t.Errorf("corrupt rollout = %d, want 502", w2.Code)
	}
	if !strings.Contains(w2.Body.String(), "prepare") {
		t.Errorf("error body %q does not name the failing phase", w2.Body.String())
	}

	w3 := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w3, httptest.NewRequest("POST", "/-/rollout?hold-validate=bogus", strings.NewReader("x")))
	if w3.Code != 400 {
		t.Errorf("bad hold-validate = %d, want 400", w3.Code)
	}
}
