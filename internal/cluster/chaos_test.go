package cluster

// Chaos tests for the cluster: the acceptance suite for the PR's
// headline guarantees, run under -race.
//
//   - Replica failover: killing one node of an R=2 cluster mid-storm
//     leaks zero 5xx responses and zero fingerprint mismatches — the
//     surviving replica absorbs the shard.
//   - Rollout atomicity: a storm of rollout epochs under sustained
//     traffic, with rotating injected faults (corrupt corpus, failing
//     node, crashing node, coordinator faults, stalled phases), never
//     lets a client observe a fingerprint that was not committed
//     cluster-wide, and every aborted epoch leaves every node on the
//     prior generation.
//
// Faults are deterministic (seeded faultinject plans, probability 1,
// and explicit per-node failure modes), and both tests run under the
// shared internal/leaktest check — a leaked probe loop, hedged loser,
// or fanout goroutine is a test failure.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hoiho/internal/faultinject"
	"hoiho/internal/leaktest"
)

// stormStats aggregates what the traffic workers observed.
type stormStats struct {
	requests  atomic.Uint64
	non200    atomic.Uint64
	mismatch  atomic.Uint64
	forbidden atomic.Uint64
}

// stormTraffic runs workers hammering the router until stop is closed.
// Every response must be a 200 whose ASN matches what its X-Hoiho-Corpus
// stamp promises; a stamp outside allowed (or equal to forbidden) is a
// violation.
func stormTraffic(t *testing.T, rt *Router, workers int, stop chan struct{},
	allowed map[string]uint32, forbiddenFP string) (*stormStats, *sync.WaitGroup) {
	t.Helper()
	stats := &stormStats{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a, b, n := 1+(i+w)%40, 1+i%9, i%nSuffixes
				host := fmt.Sprintf("as%d-pod%d.cluster%d.net", a, b, n)
				rec, rep := doGet(t, rt, "/extract?host="+host)
				stats.requests.Add(1)
				if rec.Code != 200 {
					stats.non200.Add(1)
					continue
				}
				fp := rec.Header().Get("X-Hoiho-Corpus")
				if fp == forbiddenFP {
					stats.forbidden.Add(1)
				}
				wantASN, ok := allowed[fp]
				if !ok {
					stats.mismatch.Add(1)
					continue
				}
				// wantASN 1 means the variant captures the first number,
				// 2 the second: the response must match its stamp.
				want := uint32(a)
				if wantASN == 2 {
					want = uint32(b)
				}
				if !rep.Found || rep.ASN != want {
					stats.mismatch.Add(1)
				}
			}
		}(w)
	}
	return stats, &wg
}

// TestChaosReplicaFailover: R=2, three nodes, sustained storm; one node
// is killed mid-storm. No client sees a 5xx, no response carries a
// wrong corpus, and the router accounts the failover.
func TestChaosReplicaFailover(t *testing.T) {
	check := leaktest.Check(t)
	t.Run("storm", func(t *testing.T) {
		nodes := newTestNodes(t, 3)
		rt := newTestRouter(t, nodes, func(c *Config) { c.TryTimeout = time.Second })
		fpFirst := fingerprintOf(t, "first")
		allowed := map[string]uint32{fpFirst: 1}

		stop := make(chan struct{})
		stats, wg := stormTraffic(t, rt, 8, stop, allowed, "")

		// Let the storm establish, then kill one replica outright: the
		// listener closes, in-flight proxied attempts get transport
		// errors, and failover must absorb all of it.
		time.Sleep(50 * time.Millisecond)
		nodes[2].ts.Close()
		time.Sleep(300 * time.Millisecond)

		close(stop)
		wg.Wait()

		if n := stats.non200.Load(); n != 0 {
			t.Errorf("%d non-200 responses leaked through failover", n)
		}
		if n := stats.mismatch.Load(); n != 0 {
			t.Errorf("%d responses carried a wrong corpus or ASN", n)
		}
		if stats.requests.Load() == 0 {
			t.Fatal("storm made no requests")
		}
		// The kill must have been detected somewhere: either the forward
		// path absorbed transport errors (retries / passive demotion) or
		// the probe loop took the node out of rotation first.
		detected := rt.stats.retries.Load()+rt.stats.unhealthy.Load() > 0
		for _, ms := range rt.StatusNow().Members {
			if ms.Node == nodes[2].url() && !ms.Healthy {
				detected = true
			}
		}
		if !detected {
			t.Error("killing a node produced no observable failover")
		}
	})
	check()
}

// TestChaosRolloutStormAtomicity: 20 rollout epochs under sustained
// traffic. Even epochs are honest and must commit; odd epochs ship a
// third corpus variant that is sabotaged a different way each time and
// must abort. The third variant's fingerprint must never appear in any
// response, and after every epoch all nodes serve exactly the epoch's
// committed (or prior) generation.
func TestChaosRolloutStormAtomicity(t *testing.T) {
	check := leaktest.Check(t)
	t.Run("storm", func(t *testing.T) {
		nodes := newTestNodes(t, 3)
		rt := newTestRouter(t, nodes, func(c *Config) {
			c.RolloutPhaseTimeout = 500 * time.Millisecond
		})
		fpA := fingerprintOf(t, "first")
		fpB := fingerprintOf(t, "second")
		fpC := fingerprintOf(t, "third")
		allowed := map[string]uint32{fpA: 1, fpB: 2}

		stop := make(chan struct{})
		stats, wg := stormTraffic(t, rt, 4, stop, allowed, fpC)

		currentFP := fpA
		currentVariant := "first"
		ctx := context.Background()
		for epoch := 0; epoch < 20; epoch++ {
			if epoch%2 == 0 {
				// Honest epoch: flip to the other good variant.
				next := "second"
				if currentVariant == "second" {
					next = "first"
				}
				res, err := rt.Rollout(ctx, []byte(corpusJSON(next)), 0)
				if err != nil {
					t.Fatalf("epoch %d: honest rollout failed: %v", epoch, err)
				}
				currentVariant = next
				currentFP = res.Fingerprint
			} else {
				// Sabotaged epoch: try to roll out the forbidden variant
				// with a rotating fault. It must abort.
				victim := nodes[epoch%3]
				data := []byte(corpusJSON("third"))
				var restore func()
				switch (epoch / 2) % 5 {
				case 0:
					data = []byte("{corrupt corpus on the wire")
				case 1:
					restore = faultinject.Activate(&faultinject.Plan{Rules: []faultinject.Rule{
						{Stage: faultinject.StageClusterRollout, Key: "prepare:" + victim.url(),
							Kind: faultinject.KindError, Prob: 1},
					}})
				case 2:
					victim.setMode(modeRollout500)
				case 3:
					victim.setMode(modeRolloutCrash)
				case 4:
					// Stall the coordinator past the phase timeout: the
					// validate call starts with an expired context.
					restore = faultinject.Activate(&faultinject.Plan{Rules: []faultinject.Rule{
						{Stage: faultinject.StageClusterRollout, Key: "validate:" + victim.url(),
							Kind: faultinject.KindStall, Prob: 1, Stall: 5 * time.Second},
					}})
				}
				_, err := rt.Rollout(ctx, data, 0)
				if restore != nil {
					restore()
				}
				victim.setMode(modeNormal)
				if err == nil {
					t.Fatalf("epoch %d: sabotaged rollout committed", epoch)
				}
			}
			// Invariant: after every epoch, every node serves exactly the
			// committed generation of that epoch.
			for i, n := range nodes {
				if fp, _ := nodeFP(t, n); fp != currentFP {
					t.Fatalf("epoch %d: node %d serves %s, committed is %s", epoch, i, fp, currentFP)
				}
			}
		}

		close(stop)
		wg.Wait()

		if n := stats.forbidden.Load(); n != 0 {
			t.Errorf("%d responses carried the never-committed corpus %s", n, fpC)
		}
		if n := stats.mismatch.Load(); n != 0 {
			t.Errorf("%d responses carried an uncommitted corpus or wrong ASN", n)
		}
		if n := stats.non200.Load(); n != 0 {
			t.Errorf("%d traffic requests failed during the rollout storm", n)
		}
		if rt.stats.rollouts.Load() != 10 || rt.stats.aborted.Load() != 10 {
			t.Errorf("epochs accounted: %d committed %d aborted, want 10/10",
				rt.stats.rollouts.Load(), rt.stats.aborted.Load())
		}
	})
	check()
}
