package cluster

// Journaled rollouts, delta planning, crash recovery, and anti-entropy.
// The crash tests model coordinator death with injected panics at the
// cluster.journal faultinject stage — the panic fires on the Rollout
// goroutine immediately before the named phase record becomes durable,
// which is exactly the window a SIGKILL would hit — then "restart" the
// coordinator as a fresh Router over the same journal directory and
// drive Resume.

import (
	"bytes"
	"context"
	"errors"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hoiho/internal/corpusbin"
	"hoiho/internal/extract"
	"hoiho/internal/faultinject"
	"hoiho/internal/leaktest"
)

// syncBuf is a concurrency-safe log sink: probe loops log from their
// own goroutines, so a bare bytes.Buffer would race the test's reads.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// newJournaledRouter fronts the nodes with a coordinator journaling
// into dir and logging into the returned buffer.
func newJournaledRouter(t testing.TB, nodes []*testNode, dir string, mod func(*Config)) (*Router, *syncBuf) {
	t.Helper()
	buf := &syncBuf{}
	rt := newTestRouter(t, nodes, func(c *Config) {
		c.JournalPath = dir
		c.Log = log.New(buf, "", 0)
		if mod != nil {
			mod(c)
		}
	})
	return rt, buf
}

// reloadNode rewrites a node's corpus file with a variant and reloads,
// modeling a node whose on-disk state diverged from the cluster.
func reloadNode(t testing.TB, n *testNode, corpus []byte) {
	t.Helper()
	if err := os.WriteFile(n.path, corpus, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := n.srv.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// mustCrash runs fn and requires it to die on an injected panic.
func mustCrash(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected an injected coordinator crash")
		}
	}()
	fn()
}

// TestRolloutDeltaEpoch: the first journaled epoch has no committed
// base and ships full corpora; the second finds every member on the
// committed fingerprint and ships the HBD patch, which commits to the
// same converged state a full rollout would.
func TestRolloutDeltaEpoch(t *testing.T) {
	nodes := newTestNodes(t, 3)
	dir := t.TempDir()
	rt, logs := newJournaledRouter(t, nodes, dir, nil)
	fpSecond := fingerprintOf(t, "second")
	fpFirst := fingerprintOf(t, "first")
	ctx := context.Background()

	if _, err := rt.Rollout(ctx, []byte(corpusJSON("second")), 0); err != nil {
		t.Fatalf("epoch 1: %v", err)
	}
	st, err := rt.journal.load()
	if err != nil || st == nil {
		t.Fatalf("journal after epoch 1: %v, %v", st, err)
	}
	if st.Epoch != 1 || st.Phase != phaseCommitted || st.TargetFP != fpSecond {
		t.Fatalf("journal after epoch 1 = %+v", st)
	}
	for _, jn := range st.Nodes {
		if jn.Delta {
			t.Errorf("epoch 1 planned a delta for %s with no committed base", jn.Node)
		}
	}
	committed, err := rt.journal.readCommitted()
	if err != nil || !corpusbin.IsHBC(committed) {
		t.Fatal("journal does not hold the committed corpus as canonical HBC")
	}

	res, err := rt.Rollout(ctx, []byte(corpusJSON("first")), 0)
	if err != nil {
		t.Fatalf("epoch 2: %v", err)
	}
	if res.Fingerprint != fpFirst {
		t.Fatalf("epoch 2 committed %s, want %s", res.Fingerprint, fpFirst)
	}
	st, _ = rt.journal.load()
	if st.Epoch != 2 || st.Phase != phaseCommitted {
		t.Fatalf("journal after epoch 2 = %+v", st)
	}
	for _, jn := range st.Nodes {
		if !jn.Delta {
			t.Errorf("epoch 2 did not plan a delta for %s despite a matching base", jn.Node)
		}
	}
	if !strings.Contains(logs.String(), "members eligible") {
		t.Error("delta planning left no trace in the coordinator log")
	}
	for i, n := range nodes {
		fp, prepared := nodeFP(t, n)
		if fp != fpFirst || prepared != "" {
			t.Errorf("node %d: fp %s prepared %q after delta epoch", i, fp, prepared)
		}
		lr := n.srv.NodeStatusNow().LastRollout
		if lr == nil || lr.Epoch != 2 || lr.Outcome != "committed" {
			t.Errorf("node %d last_rollout = %+v, want committed epoch 2", i, lr)
		}
	}
	// prev.corpus now holds the epoch-1 target: the delta base for
	// healing a node that missed exactly this epoch.
	prev, err := rt.journal.readPrev()
	if err != nil || prev == nil {
		t.Fatal("commit did not rotate the previous committed corpus")
	}
	if c, err := extract.Load(bytes.NewReader(prev)); err != nil || c.FingerprintString() != fpSecond {
		t.Errorf("prev corpus fingerprints wrong: %v", err)
	}
}

// TestRolloutAcceptsHBDPatch: the operator surface takes a patch
// directly — hoiho -diff output POSTed to /-/rollout — and the
// coordinator resolves it against the journaled committed corpus.
func TestRolloutAcceptsHBDPatch(t *testing.T) {
	nodes := newTestNodes(t, 3)
	rt, _ := newJournaledRouter(t, nodes, t.TempDir(), nil)
	fpThird := fingerprintOf(t, "third")
	ctx := context.Background()

	if _, err := rt.Rollout(ctx, []byte(corpusJSON("second")), 0); err != nil {
		t.Fatal(err)
	}
	// Diff from the journaled base to the next target, as hoiho -diff
	// would against the same corpus files.
	committed, _ := rt.journal.readCommitted()
	base, err := extract.Load(bytes.NewReader(committed))
	if err != nil {
		t.Fatal(err)
	}
	target, err := extract.Load(strings.NewReader(corpusJSON("third")))
	if err != nil {
		t.Fatal(err)
	}
	var patch bytes.Buffer
	if err := extract.Diff(base, target, &patch); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Rollout(ctx, patch.Bytes(), 0)
	if err != nil {
		t.Fatalf("HBD rollout: %v", err)
	}
	if res.Fingerprint != fpThird {
		t.Fatalf("HBD rollout committed %s, want %s", res.Fingerprint, fpThird)
	}
	for i, n := range nodes {
		if fp, _ := nodeFP(t, n); fp != fpThird {
			t.Errorf("node %d serves %s after HBD rollout, want %s", i, fp, fpThird)
		}
	}
}

// TestRolloutHBDRequiresJournal: without a journal there is no durable
// base, so a posted patch is refused before any node is touched.
func TestRolloutHBDRequiresJournal(t *testing.T) {
	nodes := newTestNodes(t, 2)
	rt := newTestRouter(t, nodes, nil)
	baseC, _ := extract.Load(strings.NewReader(corpusJSON("first")))
	targetC, _ := extract.Load(strings.NewReader(corpusJSON("second")))
	var patch bytes.Buffer
	if err := extract.Diff(baseC, targetC, &patch); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Rollout(context.Background(), patch.Bytes(), 0); err == nil || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("journal-less HBD rollout = %v, want a journal-path error", err)
	}
	for i, n := range nodes {
		if fp, _ := nodeFP(t, n); fp != fingerprintOf(t, "first") {
			t.Errorf("node %d changed state on a refused HBD rollout", i)
		}
	}
}

// TestRolloutDeltaNackFallsBackToFull: a node that diverges between
// delta planning and its prepare nacks the patch with a base mismatch;
// the coordinator resends the full corpus to just that node and the
// epoch still commits.
func TestRolloutDeltaNackFallsBackToFull(t *testing.T) {
	nodes := newTestNodes(t, 3)
	rt, logs := newJournaledRouter(t, nodes, t.TempDir(), nil)
	fpThird := fingerprintOf(t, "third")
	ctx := context.Background()

	if _, err := rt.Rollout(ctx, []byte(corpusJSON("second")), 0); err != nil {
		t.Fatal(err)
	}
	// Stall node 1's prepare long enough to reload it onto a foreign
	// corpus after the delta plan was made from its old fingerprint.
	restore := faultinject.Activate(&faultinject.Plan{Rules: []faultinject.Rule{
		{Stage: faultinject.StageClusterRollout, Key: "prepare:" + nodes[1].url(),
			Kind: faultinject.KindStall, Prob: 1, Stall: 800 * time.Millisecond},
	}})
	defer restore()
	done := make(chan error, 1)
	go func() {
		_, err := rt.Rollout(ctx, []byte(corpusJSON("third")), 0)
		done <- err
	}()
	time.Sleep(150 * time.Millisecond)
	reloadNode(t, nodes[1], []byte(corpusJSON("first")))
	if err := <-done; err != nil {
		t.Fatalf("rollout with a mid-epoch divergence: %v", err)
	}
	if !strings.Contains(logs.String(), "nacked the delta base") {
		t.Error("base-mismatch fallback left no trace in the coordinator log")
	}
	for i, n := range nodes {
		if fp, _ := nodeFP(t, n); fp != fpThird {
			t.Errorf("node %d serves %s after nack fallback, want %s", i, fp, fpThird)
		}
	}
}

// TestRolloutSabotagedDeltaNeverCommits: bit-flipped, truncated, and
// wrong-base patches are all rejected at the coordinator before any
// node is contacted, and the fleet keeps serving the committed corpus.
func TestRolloutSabotagedDeltaNeverCommits(t *testing.T) {
	nodes := newTestNodes(t, 3)
	rt, _ := newJournaledRouter(t, nodes, t.TempDir(), nil)
	fpSecond := fingerprintOf(t, "second")
	ctx := context.Background()

	if _, err := rt.Rollout(ctx, []byte(corpusJSON("second")), 0); err != nil {
		t.Fatal(err)
	}
	committed, _ := rt.journal.readCommitted()
	base, _ := extract.Load(bytes.NewReader(committed))
	target, _ := extract.Load(strings.NewReader(corpusJSON("third")))
	var patch bytes.Buffer
	if err := extract.Diff(base, target, &patch); err != nil {
		t.Fatal(err)
	}
	good := patch.Bytes()

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x20
	wrongBase, _ := extract.Load(strings.NewReader(corpusJSON("first")))
	var foreign bytes.Buffer
	if err := extract.Diff(wrongBase, target, &foreign); err != nil {
		t.Fatal(err)
	}
	sabotaged := map[string][]byte{
		"bit-flipped": flipped,
		"truncated":   good[:len(good)/2],
		"wrong-base":  foreign.Bytes(),
	}
	for name, data := range sabotaged {
		if _, err := rt.Rollout(ctx, data, 0); err == nil {
			t.Fatalf("%s delta committed", name)
		}
	}
	if _, err := rt.Rollout(ctx, foreign.Bytes(), 0); !errors.Is(err, corpusbin.ErrDeltaBaseMismatch) {
		t.Errorf("wrong-base delta = %v, want ErrDeltaBaseMismatch", err)
	}
	for i, n := range nodes {
		fp, prepared := nodeFP(t, n)
		if fp != fpSecond || prepared != "" {
			t.Errorf("node %d: fp %s prepared %q after sabotaged deltas", i, fp, prepared)
		}
	}
	if st, _ := rt.journal.load(); st == nil || st.Phase != phaseCommitted || st.TargetFP != fpSecond {
		t.Errorf("journal moved off the committed epoch: %+v", st)
	}
}

// TestResumeAbortsCrashBeforeValidate: a coordinator that dies after
// prepare but before the validate record leaves side buffers staged and
// nothing published; its successor aborts the epoch cleanly and can
// roll out again.
func TestResumeAbortsCrashBeforeValidate(t *testing.T) {
	nodes := newTestNodes(t, 3)
	dir := t.TempDir()
	rtA, _ := newJournaledRouter(t, nodes, dir, nil)
	fpFirst := fingerprintOf(t, "first")
	fpSecond := fingerprintOf(t, "second")
	ctx := context.Background()

	restore := faultinject.Activate(&faultinject.Plan{Rules: []faultinject.Rule{
		{Stage: faultinject.StageClusterJournal, Key: phaseValidate,
			Kind: faultinject.KindPanic, Prob: 1},
	}})
	mustCrash(t, func() { rtA.Rollout(ctx, []byte(corpusJSON("second")), 0) })
	restore()

	// The crash left prepared corpora staged on every node.
	for i, n := range nodes {
		if _, prepared := nodeFP(t, n); prepared == "" {
			t.Errorf("node %d lost its side buffer in the crash window", i)
		}
	}
	rtB, logsB := newJournaledRouter(t, nodes, dir, nil)
	if err := rtB.Resume(ctx); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !strings.Contains(logsB.String(), "aborted cleanly") {
		t.Error("resume did not report the clean abort")
	}
	st, _ := rtB.journal.load()
	if st == nil || st.Phase != phaseAborted || st.Epoch != 1 {
		t.Fatalf("journal after resume = %+v, want epoch 1 aborted", st)
	}
	for i, n := range nodes {
		fp, prepared := nodeFP(t, n)
		if fp != fpFirst || prepared != "" {
			t.Errorf("node %d: fp %s prepared %q after resume abort", i, fp, prepared)
		}
	}
	// The successor coordinator is fully operational, on a fresh epoch.
	res, err := rtB.Rollout(ctx, []byte(corpusJSON("second")), 0)
	if err != nil || res.Fingerprint != fpSecond {
		t.Fatalf("post-resume rollout = %v, %v", res, err)
	}
	if st, _ := rtB.journal.load(); st.Epoch != 2 {
		t.Errorf("post-resume epoch = %d, want 2", st.Epoch)
	}
}

// TestResumeRollsForwardCrashMidCommit: a coordinator that dies after
// the commit record may have published on some nodes; its successor
// rolls the epoch forward to the journaled target and the fleet
// converges.
func TestResumeRollsForwardCrashMidCommit(t *testing.T) {
	nodes := newTestNodes(t, 3)
	dir := t.TempDir()
	rtA, _ := newJournaledRouter(t, nodes, dir, nil)
	fpFirst := fingerprintOf(t, "first")
	ctx := context.Background()

	if _, err := rtA.Rollout(ctx, []byte(corpusJSON("second")), 0); err != nil {
		t.Fatal(err)
	}
	// Die on the committed record: the commit fanout has run (all nodes
	// published) and the corpus files have rotated, but the journal
	// still says commit.
	restore := faultinject.Activate(&faultinject.Plan{Rules: []faultinject.Rule{
		{Stage: faultinject.StageClusterJournal, Key: phaseCommitted,
			Kind: faultinject.KindPanic, Prob: 1},
	}})
	mustCrash(t, func() { rtA.Rollout(ctx, []byte(corpusJSON("first")), 0) })
	restore()
	st, _ := rtA.journal.load()
	if st == nil || st.Phase != phaseCommit || st.Epoch != 2 {
		t.Fatalf("journal after crash = %+v, want epoch 2 in commit", st)
	}

	rtB, logsB := newJournaledRouter(t, nodes, dir, nil)
	if err := rtB.Resume(ctx); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !strings.Contains(logsB.String(), "rolling forward") {
		t.Error("resume did not report the roll-forward")
	}
	st, _ = rtB.journal.load()
	if st == nil || st.Phase != phaseCommitted || st.TargetFP != fpFirst {
		t.Fatalf("journal after roll-forward = %+v, want %s committed", st, fpFirst)
	}
	if st.Epoch != 3 {
		t.Errorf("roll-forward epoch = %d, want a fresh epoch 3", st.Epoch)
	}
	for i, n := range nodes {
		fp, prepared := nodeFP(t, n)
		if fp != fpFirst || prepared != "" {
			t.Errorf("node %d: fp %s prepared %q after roll-forward", i, fp, prepared)
		}
	}
}

// TestAntiEntropyHealsDivergence: the sweep repairs a node restored
// from a stale disk image (full-corpus repair), a node exactly one
// epoch behind (delta repair from prev.corpus), and a node that left
// before an epoch and rejoined after it — all without operator action.
func TestAntiEntropyHealsDivergence(t *testing.T) {
	nodes := newTestNodes(t, 3)
	rt, logs := newJournaledRouter(t, nodes, t.TempDir(), nil)
	fpSecond := fingerprintOf(t, "second")
	fpThird := fingerprintOf(t, "third")
	ctx := context.Background()

	if _, err := rt.Rollout(ctx, []byte(corpusJSON("second")), 0); err != nil {
		t.Fatal(err)
	}
	// Stale disk image: node 2 reloads a corpus from before the epoch.
	reloadNode(t, nodes[2], []byte(corpusJSON("first")))
	rt.antiEntropySweep(ctx)
	if fp, _ := nodeFP(t, nodes[2]); fp != fpSecond {
		t.Fatalf("sweep did not repair the stale node: serves %s", fp)
	}
	if rt.stats.repairs.Load() != 1 {
		t.Errorf("repairs = %d, want 1", rt.stats.repairs.Load())
	}

	// One epoch behind: after the next rollout, prev.corpus is the
	// epoch-1 target; a node reloaded onto it is repaired by delta.
	if _, err := rt.Rollout(ctx, []byte(corpusJSON("third")), 0); err != nil {
		t.Fatal(err)
	}
	prev, _ := rt.journal.readPrev()
	reloadNode(t, nodes[1], prev)
	rt.antiEntropySweep(ctx)
	if fp, _ := nodeFP(t, nodes[1]); fp != fpThird {
		t.Fatalf("sweep did not repair the one-epoch-stale node: serves %s", fp)
	}
	if !strings.Contains(logs.String(), "delta=true") {
		t.Error("one-epoch repair did not use the prev→committed delta")
	}

	// Rejoin across an epoch: node 0 leaves, misses a rollout, rejoins
	// still serving the old corpus; the sweep converges it.
	if err := rt.Leave(nodes[0].url()); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Rollout(ctx, []byte(corpusJSON("second")), 0); err != nil {
		t.Fatal(err)
	}
	if err := rt.Join(ctx, nodes[0].url()); err != nil {
		t.Fatal(err)
	}
	if fp, _ := nodeFP(t, nodes[0]); fp != fpThird {
		t.Fatalf("rejoined node unexpectedly serves %s", fp)
	}
	rt.antiEntropySweep(ctx)
	if fp, _ := nodeFP(t, nodes[0]); fp != fpSecond {
		t.Fatalf("sweep did not heal the rejoined node: serves %s", fp)
	}
	if got := rt.stats.repairs.Load(); got != 3 {
		t.Errorf("repairs = %d, want 3", got)
	}
	if rt.stats.sweeps.Load() != 3 {
		t.Errorf("sweeps = %d, want 3", rt.stats.sweeps.Load())
	}
	// A converged fleet sweeps clean: no further repairs.
	rt.antiEntropySweep(ctx)
	if rt.stats.repairs.Load() != 3 {
		t.Error("sweep of a converged fleet attempted repairs")
	}
	st := rt.StatusNow()
	if st.AntiEntropySweeps != 4 || st.AntiEntropyRepairs != 3 || st.AntiEntropyRepairFails != 0 {
		t.Errorf("status counters = %d/%d/%d, want 4/3/0",
			st.AntiEntropySweeps, st.AntiEntropyRepairs, st.AntiEntropyRepairFails)
	}
}

// TestAntiEntropyRepairFaultFailsClosed: an injected failure on the
// repair path leaves the divergent node untouched and accounted as a
// failed repair; the next sweep heals it.
func TestAntiEntropyRepairFaultFailsClosed(t *testing.T) {
	nodes := newTestNodes(t, 2)
	rt, _ := newJournaledRouter(t, nodes, t.TempDir(), nil)
	fpFirst := fingerprintOf(t, "first")
	fpSecond := fingerprintOf(t, "second")
	ctx := context.Background()

	if _, err := rt.Rollout(ctx, []byte(corpusJSON("second")), 0); err != nil {
		t.Fatal(err)
	}
	reloadNode(t, nodes[1], []byte(corpusJSON("first")))

	restore := faultinject.Activate(&faultinject.Plan{Rules: []faultinject.Rule{
		{Stage: faultinject.StageClusterAntiEntropy, Key: nodes[1].url(),
			Kind: faultinject.KindError, Prob: 1},
	}})
	rt.antiEntropySweep(ctx)
	restore()
	if fp, _ := nodeFP(t, nodes[1]); fp != fpFirst {
		t.Fatalf("failed repair still changed the node: serves %s", fp)
	}
	if rt.stats.repairFails.Load() != 1 || rt.stats.repairs.Load() != 0 {
		t.Errorf("counters after failed repair: %d fails %d repairs, want 1/0",
			rt.stats.repairFails.Load(), rt.stats.repairs.Load())
	}
	rt.antiEntropySweep(ctx)
	if fp, _ := nodeFP(t, nodes[1]); fp != fpSecond {
		t.Fatalf("recovered sweep did not repair: serves %s", fp)
	}
}

// TestAntiEntropyLoopRuns: the background loop itself converges a
// divergent node without any direct sweep calls.
func TestAntiEntropyLoopRuns(t *testing.T) {
	nodes := newTestNodes(t, 2)
	rt, _ := newJournaledRouter(t, nodes, t.TempDir(), func(c *Config) {
		c.AntiEntropyInterval = 30 * time.Millisecond
	})
	fpSecond := fingerprintOf(t, "second")
	ctx := context.Background()
	if _, err := rt.Rollout(ctx, []byte(corpusJSON("second")), 0); err != nil {
		t.Fatal(err)
	}
	reloadNode(t, nodes[0], []byte(corpusJSON("first")))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if fp, _ := nodeFP(t, nodes[0]); fp == fpSecond {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("anti-entropy loop never repaired the divergent node")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAntiEntropyRequiresJournal: the config invariant is enforced.
func TestAntiEntropyRequiresJournal(t *testing.T) {
	_, err := NewRouter(Config{Nodes: []string{"http://x:1"}, AntiEntropyInterval: time.Second})
	if err == nil || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("anti-entropy without journal = %v, want a config error", err)
	}
}

// TestChaosJournalCrashResumeUnderStorm: the PR's headline chaos
// scenario under -race. A coordinator is crashed mid-commit and
// mid-prepare across successive epochs while client traffic storms the
// router; each successor resumes from the journal — rolling forward or
// aborting as the phase dictates — and no client ever sees a failure or
// an uncommitted corpus.
func TestChaosJournalCrashResumeUnderStorm(t *testing.T) {
	check := leaktest.Check(t)
	t.Run("storm", func(t *testing.T) {
		nodes := newTestNodes(t, 3)
		dir := filepath.Join(t.TempDir(), "journal")
		rtA, _ := newJournaledRouter(t, nodes, dir, nil)
		fpA := fingerprintOf(t, "first")
		fpB := fingerprintOf(t, "second")
		allowed := map[string]uint32{fpA: 1, fpB: 2}
		ctx := context.Background()

		stop := make(chan struct{})
		stats, wg := stormTraffic(t, rtA, 4, stop, allowed, "")

		if _, err := rtA.Rollout(ctx, []byte(corpusJSON("second")), 0); err != nil {
			t.Fatalf("epoch 1: %v", err)
		}
		// Crash 1: die on the committed record — every node has
		// published, the journal still says commit.
		restore := faultinject.Activate(&faultinject.Plan{Rules: []faultinject.Rule{
			{Stage: faultinject.StageClusterJournal, Key: phaseCommitted,
				Kind: faultinject.KindPanic, Prob: 1},
		}})
		mustCrash(t, func() { rtA.Rollout(ctx, []byte(corpusJSON("first")), 0) })
		restore()

		rtB, _ := newJournaledRouter(t, nodes, dir, nil)
		if err := rtB.Resume(ctx); err != nil {
			t.Fatalf("resume after commit crash: %v", err)
		}
		for i, n := range nodes {
			if fp, _ := nodeFP(t, n); fp != fpA {
				t.Fatalf("node %d serves %s after roll-forward, want %s", i, fp, fpA)
			}
		}

		// Crash 2: die before the validate record — nothing published,
		// side buffers staged.
		restore = faultinject.Activate(&faultinject.Plan{Rules: []faultinject.Rule{
			{Stage: faultinject.StageClusterJournal, Key: phaseValidate,
				Kind: faultinject.KindPanic, Prob: 1},
		}})
		mustCrash(t, func() { rtB.Rollout(ctx, []byte(corpusJSON("second")), 0) })
		restore()

		rtC, _ := newJournaledRouter(t, nodes, dir, nil)
		if err := rtC.Resume(ctx); err != nil {
			t.Fatalf("resume after prepare crash: %v", err)
		}
		for i, n := range nodes {
			fp, prepared := nodeFP(t, n)
			if fp != fpA || prepared != "" {
				t.Fatalf("node %d: fp %s prepared %q after resume abort", i, fp, prepared)
			}
		}
		// The surviving coordinator finishes the job.
		if _, err := rtC.Rollout(ctx, []byte(corpusJSON("second")), 0); err != nil {
			t.Fatalf("final rollout: %v", err)
		}
		for i, n := range nodes {
			if fp, _ := nodeFP(t, n); fp != fpB {
				t.Fatalf("node %d serves %s at the end, want %s", i, fp, fpB)
			}
		}

		close(stop)
		wg.Wait()
		if n := stats.non200.Load(); n != 0 {
			t.Errorf("%d client requests failed across the crash/resume cycle", n)
		}
		if n := stats.mismatch.Load(); n != 0 {
			t.Errorf("%d responses carried an uncommitted corpus or wrong ASN", n)
		}
		if stats.requests.Load() == 0 {
			t.Fatal("storm made no requests")
		}
		if st, _ := rtC.journal.load(); st == nil || st.Phase != phaseCommitted || st.TargetFP != fpB {
			t.Errorf("final journal state = %+v, want %s committed", st, fpB)
		}
	})
	check()
}
