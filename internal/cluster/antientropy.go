package cluster

// Anti-entropy: the self-healing loop that keeps the fleet converged on
// the journaled committed corpus without operator action. Rollouts
// converge the nodes that were present for the epoch; anti-entropy
// handles everyone else — a node that rejoined after missing an epoch,
// one restored from a stale disk image, or one whose operator reloaded
// the wrong file. Each sweep compares every healthy member's live
// fingerprint against the committed target and repairs divergent nodes
// with a single-node prepare→commit: the prev→committed HBD patch when
// the node sits exactly one epoch behind (the common rejoin case), the
// full committed corpus otherwise. Repair reuses the rollout transport,
// so a delta the node cannot apply nacks as a base mismatch and falls
// back to the full corpus, and a node that prepares a fingerprint other
// than the target is aborted, never committed — the sweep can only move
// nodes toward the committed state.
//
// Sweeps take adminMu with TryLock and step aside whenever a rollout or
// membership change is running; a live rollout converges the fleet
// itself, and repairing mid-epoch would race the coordinator's own
// prepare.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"hoiho/internal/extract"
	"hoiho/internal/faultinject"
)

// antiEntropyLoop runs sweeps every AntiEntropyInterval until ctx ends.
func (rt *Router) antiEntropyLoop(ctx context.Context) {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.AntiEntropyInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-ctx.Done():
			return
		}
		rt.antiEntropySweep(ctx)
	}
}

// antiEntropySweep performs one pass over the membership. Exported
// behavior is driven through the loop; tests call it directly to make
// convergence deterministic.
func (rt *Router) antiEntropySweep(ctx context.Context) {
	if !rt.adminMu.TryLock() {
		return // a rollout or membership change owns the fleet right now
	}
	defer rt.adminMu.Unlock()
	rt.stats.sweeps.Add(1)

	st, err := rt.journal.load()
	if err != nil || st == nil || st.Phase != phaseCommitted {
		return // nothing committed to converge on (or resume still owed)
	}
	committed, err := rt.journal.readCommitted()
	if err != nil || committed == nil {
		return
	}

	// The prev→committed patch is built lazily, at most once per sweep,
	// and only when some member actually sits on the prev fingerprint.
	var repairDelta []byte
	var deltaFailed bool
	prev, _ := rt.journal.readPrev()
	prevFP := ""
	if prev != nil {
		if c, err := extract.Load(bytes.NewReader(prev)); err == nil {
			prevFP = c.FingerprintString()
		}
	}

	v := rt.view.Load()
	for _, m := range v.members {
		if !m.healthy.Load() {
			continue // unreachable; the probe loop owns its comeback
		}
		fp, _, err := rt.nodeStatus(ctx, m)
		if err != nil || fp == st.TargetFP {
			continue
		}
		payload, usedDelta := committed, false
		if prevFP != "" && fp == prevFP && !deltaFailed {
			if repairDelta == nil {
				repairDelta = rt.buildRepairDelta(prev, committed)
				deltaFailed = repairDelta == nil
			}
			if repairDelta != nil {
				payload, usedDelta = repairDelta, true
			}
		}
		if err := rt.repairNode(ctx, m, st, payload, committed, usedDelta); err != nil {
			rt.stats.repairFails.Add(1)
			rt.logf("anti-entropy: repair of %s failed: %v", m.name, err)
			continue
		}
		rt.stats.repairs.Add(1)
		rt.logf("anti-entropy: repaired %s from %s to %s (delta=%v)", m.name, fp, st.TargetFP, usedDelta)
	}
}

// buildRepairDelta diffs the prev corpus into the committed one; nil on
// any failure (the sweep falls back to full-corpus repairs).
func (rt *Router) buildRepairDelta(prev, committed []byte) []byte {
	prevC, err := extract.Load(bytes.NewReader(prev))
	if err != nil {
		return nil
	}
	commC, err := extract.Load(bytes.NewReader(committed))
	if err != nil {
		return nil
	}
	var buf bytes.Buffer
	if err := extract.Diff(prevC, commC, &buf); err != nil {
		rt.logf("anti-entropy: prev→committed diff failed: %v", err)
		return nil
	}
	return buf.Bytes()
}

// repairNode converges one divergent member with a single-node
// prepare→commit of the committed target. The faultinject stage fires
// per attempt (keyed by node name) before the node is contacted.
func (rt *Router) repairNode(ctx context.Context, m *member, st *journalState, payload, full []byte, usedDelta bool) error {
	if err := faultinject.Fire(ctx, faultinject.StageClusterAntiEntropy, m.name); err != nil {
		return err
	}
	epochQ := "epoch=" + strconv.FormatUint(st.Epoch, 10)
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.RolloutPhaseTimeout)
	defer cancel()
	fp, _, err := rt.rolloutPost(pctx, "prepare", m, "/-/rollout/prepare", epochQ, payload)
	if err != nil && usedDelta && errors.Is(err, ErrBaseMismatchNack) {
		fp, _, err = rt.rolloutPost(pctx, "prepare", m, "/-/rollout/prepare", epochQ, full)
	}
	if err != nil {
		return err
	}
	if fp != st.TargetFP {
		// The node prepared something other than the committed target
		// (a class filter, or a corpus that mutated in flight). Never
		// commit it — drop the buffer and leave the node as it was.
		rt.abortNode(ctx, m)
		return fmt.Errorf("cluster: repair prepared %s, committed target is %s", fp, st.TargetFP)
	}
	cctx, ccancel := context.WithTimeout(ctx, rt.cfg.RolloutPhaseTimeout)
	defer ccancel()
	if _, _, err := rt.rolloutPost(cctx, "commit", m, "/-/rollout/commit", "fingerprint="+fp, nil); err != nil {
		return err
	}
	return nil
}
